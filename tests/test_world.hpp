#pragma once

// Shared integration-test world: one test-scale simulator, built and run
// once per test binary, with every aggregator attached. Individual tests
// read from it; none mutate it.

#include <memory>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "telemetry/aggregates.hpp"
#include "telemetry/signaling_dataset.hpp"

namespace tl::testing {

struct TestWorld {
  core::StudyConfig config;
  std::unique_ptr<core::Simulator> sim;
  telemetry::SignalingDataset dataset;
  telemetry::TemporalAggregator* temporal = nullptr;
  telemetry::SectorDayAggregator* sector_day = nullptr;
  telemetry::DistrictAggregator* districts = nullptr;
  telemetry::CauseAggregator* causes = nullptr;
  telemetry::DurationAggregator* durations = nullptr;
  telemetry::TypeMixAggregator* mix = nullptr;
  telemetry::UeDayStore ue_days;

  std::unique_ptr<telemetry::TemporalAggregator> temporal_owned;
  std::unique_ptr<telemetry::SectorDayAggregator> sector_day_owned;
  std::unique_ptr<telemetry::DistrictAggregator> districts_owned;
  std::unique_ptr<telemetry::CauseAggregator> causes_owned;
  std::unique_ptr<telemetry::DurationAggregator> durations_owned;
  std::unique_ptr<telemetry::TypeMixAggregator> mix_owned;

  /// Builds and runs the world exactly once per process.
  static const TestWorld& instance() {
    static TestWorld world = make();
    return world;
  }

 private:
  static TestWorld make() {
    TestWorld w;
    w.config = core::StudyConfig::test_scale();
    w.config.days = 3;  // Mon-Wed: enough for per-day statistics
    w.config.population.count = 6'000;
    w.sim = std::make_unique<core::Simulator>(w.config);

    const auto n_sectors = w.sim->deployment().sectors().size();
    const auto n_districts = w.sim->country().districts().size();
    const auto n_makers = w.sim->catalog().manufacturers().size();
    w.temporal_owned =
        std::make_unique<telemetry::TemporalAggregator>(n_sectors, w.config.days);
    w.sector_day_owned =
        std::make_unique<telemetry::SectorDayAggregator>(n_sectors, w.config.days);
    w.districts_owned =
        std::make_unique<telemetry::DistrictAggregator>(n_districts, n_makers);
    w.causes_owned =
        std::make_unique<telemetry::CauseAggregator>(w.config.days, n_makers);
    w.durations_owned = std::make_unique<telemetry::DurationAggregator>();
    w.mix_owned = std::make_unique<telemetry::TypeMixAggregator>(w.config.days);

    w.temporal = w.temporal_owned.get();
    w.sector_day = w.sector_day_owned.get();
    w.districts = w.districts_owned.get();
    w.causes = w.causes_owned.get();
    w.durations = w.durations_owned.get();
    w.mix = w.mix_owned.get();

    w.sim->add_sink(&w.dataset);
    w.sim->add_sink(w.temporal);
    w.sim->add_sink(w.sector_day);
    w.sim->add_sink(w.districts);
    w.sim->add_sink(w.causes);
    w.sim->add_sink(w.durations);
    w.sim->add_sink(w.mix);
    w.sim->add_metrics_sink(&w.ue_days);
    w.sim->run();
    return w;
  }
};

}  // namespace tl::testing
