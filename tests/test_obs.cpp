// Observability-layer tests: registry semantics (sharded counters summing
// exactly across threads, idempotent registration, enable/disable), the
// exposition writers, ScopedTimer, StudyMonitor, the analysis-layer fixes
// the obs histograms rely on (validated Histogram edges, NaN-safe binning,
// cached ReservoirSample quantiles, exact Ecdf::inverse), and the headline
// guarantee: metrics are observational only — the record stream and the
// durable log's on-disk bytes are byte-identical with metrics on or off,
// at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/ecdf.hpp"
#include "analysis/histogram.hpp"
#include "core/simulator.hpp"
#include "io/file.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/study_monitor.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "util/accumulator.hpp"

namespace tl {
namespace {

using core::DayCheckpoint;
using core::Simulator;
using core::StudyConfig;
using telemetry::RecordLog;

namespace fs = std::filesystem;

// --- registry semantics ------------------------------------------------------

TEST(MetricsRegistry, CountersSumExactlyAcrossThreads) {
  obs::MetricsRegistry reg;
  const obs::Counter counter = reg.counter("test_total", "help text");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 10'000; ++i) counter.inc();
    });
  }
  for (auto& th : threads) th.join();
  counter.inc(5);

  const obs::MetricsSnapshot snap = reg.scrape();
  const obs::CounterSnapshot* c = snap.find_counter("test_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 80'005u);
  EXPECT_EQ(c->help, "help text");
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  obs::MetricsRegistry reg;
  const obs::Counter a = reg.counter("same");
  const obs::Counter b = reg.counter("same");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(reg.scrape().find_counter("same")->value, 5u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {0.0, 1.0}), std::logic_error);
  reg.gauge("g");
  EXPECT_THROW(reg.counter("g"), std::logic_error);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  obs::MetricsRegistry reg;
  const obs::Gauge g = reg.gauge("depth");
  g.set(10.0);
  g.add(-3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(reg.scrape().find_gauge("depth")->value, 8.5);
}

TEST(MetricsRegistry, HistogramBinsUnderOverflowAndNan) {
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("lat", {0.0, 1.0, 2.0});
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.5);
  h.observe(-1.0);                                      // underflow
  h.observe(5.0);                                       // overflow
  h.observe(std::numeric_limits<double>::quiet_NaN());  // nan slot

  const obs::MetricsSnapshot snap = reg.scrape();
  const obs::HistogramSnapshot* s = snap.find_histogram("lat");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->counts.size(), 2u);
  EXPECT_EQ(s->counts[0], 1u);  // 0.5
  EXPECT_EQ(s->counts[1], 2u);  // 1.0, 1.5
  EXPECT_EQ(s->underflow, 1u);
  EXPECT_EQ(s->overflow, 1u);
  EXPECT_EQ(s->nan, 1u);
  EXPECT_EQ(s->count, 5u);  // NaN excluded
  EXPECT_DOUBLE_EQ(s->sum, 0.5 + 1.0 + 1.5 - 1.0 + 5.0);
  EXPECT_DOUBLE_EQ(s->quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s->quantile(0.4), 1.0);  // 2nd of 5 lands in underflow+bin0
  EXPECT_DOUBLE_EQ(s->quantile(0.5), 2.0);  // 3rd of 5 lands in [1,2)
  EXPECT_DOUBLE_EQ(s->quantile(1.0), 2.0);  // overflow -> last edge
  EXPECT_THROW(s->quantile(1.5), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramRejectsBadEdges) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("a", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("b", {1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("c", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("d", {2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, DisabledRegistryDropsOperations) {
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("c");
  c.inc();
  reg.set_enabled(false);
  EXPECT_FALSE(c.live());
  c.inc(100);
  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(reg.scrape().find_counter("c")->value, 2u);
}

TEST(MetricsRegistry, NullHandlesAreNoOps) {
  const obs::Counter c;
  const obs::Gauge g;
  const obs::Histogram h;
  EXPECT_FALSE(c.live());
  c.inc();  // must not crash
  g.set(1.0);
  g.add(1.0);
  h.observe(1.0);
}

TEST(MetricsRegistry, ScrapeIsSortedByName) {
  obs::MetricsRegistry reg;
  reg.counter("zebra");
  reg.counter("alpha");
  reg.counter("middle");
  const obs::MetricsSnapshot snap = reg.scrape();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "middle");
  EXPECT_EQ(snap.counters[2].name, "zebra");
}

TEST(MetricsRegistry, ExponentialEdgesAndDefaults) {
  const std::vector<double> edges = obs::MetricsRegistry::exponential_edges(1.0, 2.0, 3);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[3], 8.0);
  const std::vector<double> lat = obs::MetricsRegistry::latency_edges_s();
  ASSERT_GE(lat.size(), 2u);
  EXPECT_DOUBLE_EQ(lat.front(), 100e-6);
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_GT(lat[i], lat[i - 1]);
  EXPECT_THROW(obs::MetricsRegistry::exponential_edges(0.0, 2.0, 3),
               std::invalid_argument);
}

TEST(GlobalRegistry, ScopedInstallBumpsEpochAndRestores) {
  obs::MetricsRegistry* before = obs::global_registry();
  const std::uint64_t epoch0 = obs::global_epoch();
  {
    obs::MetricsRegistry reg;
    obs::ScopedGlobalRegistry install{&reg};
    EXPECT_EQ(obs::global_registry(), &reg);
    EXPECT_GT(obs::global_epoch(), epoch0);
  }
  EXPECT_EQ(obs::global_registry(), before);
  EXPECT_GT(obs::global_epoch(), epoch0 + 1);
}

// --- ScopedTimer -------------------------------------------------------------

TEST(ScopedTimer, RecordsOneSpanIntoTheHistogram) {
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("span_s", {0.0, 10.0});
  {
    obs::ScopedTimer timer{h};
  }
  EXPECT_EQ(reg.scrape().find_histogram("span_s")->count, 1u);
}

TEST(ScopedTimer, StopIsIdempotentAndReturnsSeconds) {
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("span_s", {0.0, 10.0});
  obs::ScopedTimer timer{h};
  const double first = timer.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(timer.stop(), 0.0);  // second stop records nothing
  EXPECT_EQ(reg.scrape().find_histogram("span_s")->count, 1u);
}

TEST(ScopedTimer, CancelAbandonsTheSpan) {
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("span_s", {0.0, 10.0});
  {
    obs::ScopedTimer timer{h};
    timer.cancel();
  }
  EXPECT_EQ(reg.scrape().find_histogram("span_s")->count, 0u);
}

TEST(ScopedTimer, DeadHistogramSkipsTheClock) {
  obs::ScopedTimer timer{obs::Histogram{}};
  EXPECT_EQ(timer.stop(), 0.0);
}

// --- exposition --------------------------------------------------------------

TEST(Exposition, PrometheusTextFormat) {
  obs::MetricsRegistry reg;
  reg.counter("req_total", "requests").inc(7);
  reg.gauge("depth").set(2.5);
  const obs::Histogram h = reg.histogram("lat_s", {0.0, 1.0, 2.0}, "latency");
  h.observe(-0.5);  // underflow folds into every cumulative bucket
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);  // overflow: only in +Inf

  const std::string text = obs::to_prometheus(reg.scrape());
  EXPECT_NE(text.find("# HELP req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_bucket{le=\"2\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_sum 10.5\n"), std::string::npos);
}

TEST(Exposition, JsonFormat) {
  obs::MetricsRegistry reg;
  reg.counter("c_total").inc(3);
  reg.gauge("g").set(1.25);
  reg.histogram("h_s", {0.0, 1.0}).observe(0.5);

  const std::string json = obs::to_json(reg.scrape());
  EXPECT_NE(json.find("\"c_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"g\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"edges\": [0, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1]"), std::string::npos);
  EXPECT_NE(json.find("\"nan\": 0"), std::string::npos);
}

TEST(Exposition, OutputIsDeterministicAcrossScrapes) {
  obs::MetricsRegistry reg;
  reg.counter("b").inc(1);
  reg.counter("a").inc(2);
  reg.gauge("z").set(4.0);
  EXPECT_EQ(obs::to_prometheus(reg.scrape()), obs::to_prometheus(reg.scrape()));
  EXPECT_EQ(obs::to_json(reg.scrape()), obs::to_json(reg.scrape()));
}

// --- StudyMonitor ------------------------------------------------------------

TEST(StudyMonitor, SnapshotDerivesTotalsAndRates) {
  obs::MetricsRegistry reg;
  const obs::Counter days = reg.counter("tl_sim_days_total");
  const obs::Counter ue_days = reg.counter("tl_sim_ue_days_total");
  const obs::Counter records = reg.counter("tl_sim_records_total");
  reg.gauge("tl_supervise_quarantine_size").set(3.0);

  obs::StudyMonitor monitor{reg};
  days.inc(2);
  ue_days.inc(4'000);
  records.inc(120'000);
  const obs::StudyMonitor::Snapshot snap = monitor.snapshot();
  EXPECT_EQ(snap.days, 2u);
  EXPECT_EQ(snap.ue_days, 4'000u);
  EXPECT_EQ(snap.records, 120'000u);
  EXPECT_DOUBLE_EQ(snap.quarantine_size, 3.0);
  EXPECT_GT(snap.uptime_s, 0.0);
  EXPECT_GT(snap.ue_days_per_sec, 0.0);  // first interval spans construction
  EXPECT_GT(snap.records_per_sec, 0.0);

  // A second snapshot with no new work reports zero interval rates.
  const obs::StudyMonitor::Snapshot idle = monitor.snapshot();
  EXPECT_DOUBLE_EQ(idle.ue_days_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(idle.records_per_sec, 0.0);
  EXPECT_EQ(idle.ue_days, 4'000u);
}

TEST(StudyMonitor, WritesExpositionFiles) {
  obs::MetricsRegistry reg;
  reg.counter("tl_sim_records_total").inc(42);
  obs::StudyMonitor monitor{reg};

  const std::string dir = ::testing::TempDir() + "tl_obs_monitor";
  fs::create_directories(dir);
  monitor.write_prometheus_file(dir + "/metrics.prom");
  monitor.write_json_file(dir + "/metrics.json");

  std::ifstream prom{dir + "/metrics.prom"};
  std::stringstream prom_body;
  prom_body << prom.rdbuf();
  EXPECT_NE(prom_body.str().find("tl_sim_records_total 42"), std::string::npos);
  std::ifstream json{dir + "/metrics.json"};
  std::stringstream json_body;
  json_body << json.rdbuf();
  EXPECT_NE(json_body.str().find("\"tl_sim_records_total\": 42"), std::string::npos);
  fs::remove_all(dir);

  EXPECT_THROW(monitor.write_prometheus_file("/nonexistent-dir/x/metrics.prom"),
               std::runtime_error);
}

TEST(StudyMonitor, ExpositionDumpsPublishAtomically) {
  // Scrape files are replaced via tmp + fsync + rename: after any number of
  // rewrites the destination holds exactly one complete dump and no .tmp
  // sibling survives — an external collector can never read a torn file.
  obs::MetricsRegistry reg;
  obs::StudyMonitor monitor{reg};
  const std::string dir = ::testing::TempDir() + "tl_obs_atomic";
  fs::create_directories(dir);
  const std::string path = dir + "/metrics.prom";
  for (int i = 1; i <= 5; ++i) {
    reg.counter("tl_sim_records_total").inc(7);
    monitor.write_prometheus_file(path);
    EXPECT_FALSE(fs::exists(path + ".tmp")) << i;
    std::ifstream in{path};
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("tl_sim_records_total " + std::to_string(7 * i)),
              std::string::npos)
        << i;
  }
  // A failed rewrite (tmp path unopenable) must leave the old dump intact.
  const auto before = fs::file_size(path);
  fs::create_directory(path + ".tmp");  // squats the tmp name
  EXPECT_THROW(monitor.write_prometheus_file(path), std::runtime_error);
  fs::remove(path + ".tmp");
  EXPECT_EQ(fs::file_size(path), before);
  fs::remove_all(dir);
}

// --- analysis-layer regression fixes ----------------------------------------

TEST(HistogramValidation, RejectsFewerThanTwoEdges) {
  // Regression: edges.size() - 1 underflowed for 0/1 edges, resizing bins_
  // to SIZE_MAX (alloc failure at best).
  EXPECT_THROW(analysis::Histogram{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW(analysis::Histogram{std::vector<double>{1.0}}, std::invalid_argument);
}

TEST(HistogramValidation, RejectsNonMonotoneOrNanEdges) {
  EXPECT_THROW(analysis::Histogram(std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(analysis::Histogram(std::vector<double>{2.0, 1.0, 3.0}),
               std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(analysis::Histogram(std::vector<double>{0.0, nan, 2.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(analysis::Histogram(std::vector<double>{0.0, 1.0}));
}

TEST(HistogramNan, BinIndexReturnsNposForNan) {
  // Regression: NaN compared false against every guard and fell through
  // std::upper_bound into bin 0.
  const analysis::Histogram h{std::vector<double>{0.0, 1.0, 2.0}};
  EXPECT_EQ(h.bin_index(std::numeric_limits<double>::quiet_NaN()),
            analysis::Histogram::npos);
  EXPECT_EQ(h.bin_index(0.5), 0u);
  EXPECT_EQ(h.bin_index(1.5), 1u);
}

TEST(HistogramNan, AddTalliesNanSeparately) {
  analysis::Histogram h{std::vector<double>{0.0, 1.0, 2.0}};
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(0.5);
  h.add(-1.0);
  EXPECT_EQ(h.nan(), 1u);
  EXPECT_EQ(h.bins()[0].count, 1u);
  EXPECT_EQ(h.bins()[1].count, 0u);  // NaN must not land in any bin
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), 1u);  // only binned samples; NaN/underflow excluded
}

TEST(ReservoirQuantile, RepeatedCallsAreIdenticalAndCheap) {
  util::ReservoirSample sample{64};
  for (int i = 0; i < 1'000; ++i) sample.add(static_cast<double>(i % 97));
  const double q1 = sample.quantile(0.25);
  const double q2 = sample.quantile(0.25);
  const double q3 = sample.quantile(0.25);
  EXPECT_EQ(q1, q2);
  EXPECT_EQ(q2, q3);
  // Sweeping quantiles reuses the same cached sorted view: monotone output.
  double prev = sample.quantile(0.0);
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    const double q = sample.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(ReservoirQuantile, AddInvalidatesTheCachedSort) {
  util::ReservoirSample sample{8};
  for (int i = 0; i < 8; ++i) sample.add(1.0);
  EXPECT_DOUBLE_EQ(sample.quantile(1.0), 1.0);
  // Capacity not exceeded yet means every add lands in the reservoir; a new
  // maximum must be visible to the next quantile call.
  util::ReservoirSample fresh{8};
  fresh.add(1.0);
  EXPECT_DOUBLE_EQ(fresh.quantile(1.0), 1.0);
  fresh.add(5.0);
  EXPECT_DOUBLE_EQ(fresh.quantile(1.0), 5.0);
  fresh.add(0.5);
  EXPECT_DOUBLE_EQ(fresh.quantile(0.0), 0.5);
}

TEST(EcdfInverse, ExactAtEveryStep) {
  // Regression: ceil(p * n) - 1 misindexed when p * n rounded just above an
  // integer (e.g. 0.7 * 10 = 7.000000000000001 -> index 7, not 6). The
  // predicate form — smallest i with (i+1)/n >= p — is exact by definition.
  std::vector<double> samples;
  for (int i = 1; i <= 10; ++i) samples.push_back(static_cast<double>(i));
  const analysis::Ecdf ecdf{samples};
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.7), 7.0);   // the historical failure case
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.1), 1.0);   // p = 1/n -> minimum
  EXPECT_DOUBLE_EQ(ecdf.inverse(1.0), 10.0);  // p = 1 -> maximum
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.05), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.inverse(0.71), 8.0);
}

TEST(EcdfInverse, AgreesWithAtForLargeN) {
  // inverse(p) must return the smallest sample v with at(v) >= p — the exact
  // predicate, for every step probability of a 1000-sample distribution.
  std::vector<double> samples;
  for (int i = 0; i < 1'000; ++i) samples.push_back(static_cast<double>(i));
  const analysis::Ecdf ecdf{samples};
  const double n = 1'000.0;
  for (int k = 1; k <= 1'000; k += 7) {
    const double p = static_cast<double>(k) / n;
    const double v = ecdf.inverse(p);
    EXPECT_EQ(v, samples[static_cast<std::size_t>(k) - 1]) << "p=" << p;
    EXPECT_GE(ecdf.at(v), p);
  }
}

// --- determinism with metrics on --------------------------------------------

/// One shared test-scale world (the test_exec pattern): built once, every
/// run restores to day 0.
struct ObsWorld {
  StudyConfig cfg;
  std::unique_ptr<Simulator> sim;
  DayCheckpoint day0;

  static ObsWorld& instance() {
    static ObsWorld world = [] {
      ObsWorld w;
      w.cfg = StudyConfig::test_scale();
      w.cfg.days = 2;
      w.cfg.population.count = 1'200;
      w.sim = std::make_unique<Simulator>(w.cfg);
      w.day0.seed = w.cfg.seed;
      return w;
    }();
    return world;
  }
};

std::vector<std::uint8_t> run_record_bytes(unsigned threads,
                                           obs::MetricsRegistry* registry) {
  ObsWorld& w = ObsWorld::instance();
  std::unique_ptr<obs::ScopedGlobalRegistry> install;
  if (registry != nullptr) {
    install = std::make_unique<obs::ScopedGlobalRegistry>(registry);
  }
  telemetry::SignalingDataset dataset;
  w.sim->set_threads(threads);
  w.sim->restore(w.day0);
  w.sim->add_sink(&dataset);
  w.sim->run();
  w.sim->remove_sink(&dataset);

  std::vector<std::uint8_t> bytes;
  for (const auto& record : dataset.records()) {
    RecordLog::encode_record(record, bytes);
  }
  return bytes;
}

TEST(ObsDeterminism, RecordBytesIdenticalWithMetricsOnAtAnyThreadCount) {
  const std::vector<std::uint8_t> baseline = run_record_bytes(1, nullptr);
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {1u, 2u, 4u}) {
    obs::MetricsRegistry registry;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run_record_bytes(threads, &registry), baseline);
    // The instrumentation really ran: days and records counted.
    const obs::MetricsSnapshot snap = registry.scrape();
    EXPECT_EQ(snap.find_counter("tl_sim_days_total")->value,
              static_cast<std::uint64_t>(ObsWorld::instance().cfg.days));
    EXPECT_EQ(snap.find_counter("tl_sim_records_total")->value,
              baseline.size() / RecordLog::kRecordEncodedSize);
  }
}

TEST(ObsDeterminism, CountersMatchTheRunExactly) {
  obs::MetricsRegistry registry;
  const std::vector<std::uint8_t> bytes = run_record_bytes(2, &registry);
  const ObsWorld& w = ObsWorld::instance();
  const obs::MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.find_counter("tl_sim_ue_days_total")->value,
            static_cast<std::uint64_t>(w.cfg.population.count) * w.cfg.days);
  EXPECT_EQ(snap.find_counter("tl_sim_records_total")->value,
            bytes.size() / RecordLog::kRecordEncodedSize);
  EXPECT_GT(snap.find_counter("tl_exec_pool_tasks_total")->value, 0u);
  EXPECT_GT(snap.find_counter("tl_exec_shards_simulated_total")->value, 0u);
  const obs::HistogramSnapshot* day = snap.find_histogram("tl_sim_day_seconds");
  ASSERT_NE(day, nullptr);
  EXPECT_EQ(day->count, static_cast<std::uint64_t>(w.cfg.days));
}

std::string wal_bytes(const std::string& dir) {
  std::string all;
  auto& real = io::StdioFileSystem::instance();
  for (const auto& name : real.list(dir, "wal-")) {
    std::ifstream is{dir + "/" + name, std::ios::binary};
    std::ostringstream os;
    os << is.rdbuf();
    all += "[" + name + "]";
    all += os.str();
  }
  return all;
}

std::string run_durable_wal(unsigned threads, const std::string& dir,
                            obs::MetricsRegistry* registry) {
  ObsWorld& w = ObsWorld::instance();
  std::unique_ptr<obs::ScopedGlobalRegistry> install;
  if (registry != nullptr) {
    install = std::make_unique<obs::ScopedGlobalRegistry>(registry);
  }
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = dir;
  opt.max_segment_bytes = 24 * 1024;  // several rolls, so boundaries count
  RecordLog log{real, opt};
  telemetry::DurableRecordSink sink{log};
  log.open();
  w.sim->set_threads(threads);
  w.sim->restore(w.day0);
  w.sim->attach_durable_log(&sink);
  w.sim->run();
  w.sim->remove_sink(&sink);
  return wal_bytes(dir);
}

struct WalTempDir {
  explicit WalTempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_obs_" + name) {
    fs::remove_all(path);
  }
  ~WalTempDir() { fs::remove_all(path); }
  std::string path;
};

TEST(ObsDeterminism, WalBytesIdenticalWithMetricsOnAtAnyThreadCount) {
  WalTempDir off_dir{"wal_off"};
  const std::string baseline = run_durable_wal(1, off_dir.path, nullptr);
  ASSERT_FALSE(baseline.empty());

  for (const unsigned threads : {1u, 2u, 4u}) {
    obs::MetricsRegistry registry;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    WalTempDir on_dir{"wal_on_" + std::to_string(threads)};
    EXPECT_EQ(run_durable_wal(threads, on_dir.path, &registry), baseline);
    // WAL instrumentation saw exactly the committed volume.
    const obs::MetricsSnapshot snap = registry.scrape();
    EXPECT_GT(snap.find_counter("tl_wal_bytes_total")->value, 0u);
    EXPECT_GT(snap.find_counter("tl_wal_fsyncs_total")->value, 0u);
    EXPECT_EQ(snap.find_counter("tl_wal_records_total")->value,
              snap.find_counter("tl_sim_records_total")->value);
    EXPECT_EQ(snap.find_counter("tl_wal_recovery_dropped_bytes_total")->value, 0u);
  }
}

}  // namespace
}  // namespace tl
