#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{123}, b{124};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{9};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(-3.5, 8.25);
    ASSERT_GE(v, -3.5);
    ASSERT_LT(v, 8.25);
  }
}

TEST(Rng, BelowIsUnbiasedAndBounded) {
  Rng rng{11};
  constexpr std::uint64_t n = 7;
  std::vector<std::uint64_t> counts(n, 0);
  constexpr int draws = 140'000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.below(n);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, draws * 0.01);
  }
}

TEST(Rng, BelowEdgeCases) {
  Rng rng{13};
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng{15};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng{17};
  double sum = 0.0, sumsq = 0.0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng{19};
  double sum = 0.0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{21};
  double sum = 0.0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{23};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, DeriveIsDeterministicAndIndependent) {
  Rng a = Rng::derive(99, 1, 2, 3);
  Rng b = Rng::derive(99, 1, 2, 3);
  Rng c = Rng::derive(99, 1, 2, 4);
  EXPECT_EQ(a(), b());
  // Adjacent salts must decorrelate.
  Rng a2 = Rng::derive(99, 1, 2, 3);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a2() == c()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, MeanNearHalfForAnySeed) {
  Rng rng{GetParam()};
  double sum = 0.0;
  for (int i = 0; i < 50'000; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / 50'000, 0.5, 0.02);
}

TEST_P(RngSeedSweep, DeriveChildrenAreDecorrelated) {
  Rng child0 = Rng::derive(GetParam(), 0);
  Rng child1 = Rng::derive(GetParam(), 1);
  int equal = 0;
  for (int i = 0; i < 2000; ++i) {
    if (child0() == child1()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace tl::util
