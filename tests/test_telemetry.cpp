// Record sinks and streaming aggregators, driven by hand-crafted records.

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/aggregates.hpp"
#include "telemetry/signaling_dataset.hpp"

namespace tl::telemetry {
namespace {

HandoverRecord make_record(int day, double hour, topology::SectorId source,
                           topology::ObservedRat target, bool success,
                           corenet::CauseId cause = corenet::kCauseNone) {
  HandoverRecord r;
  r.timestamp = util::SimCalendar::at(day, hour);
  r.success = success;
  r.cause = cause;
  r.duration_ms = success ? 43.0f : 1000.0f;
  r.source_sector = source;
  r.target_sector = source + 1;
  r.target_rat = target;
  r.area = geo::AreaType::kUrban;
  r.district = 2;
  r.manufacturer = 1;
  r.device_type = devices::DeviceType::kSmartphone;
  return r;
}

TEST(SignalingDataset, StoresFiltersAndCounts) {
  SignalingDataset ds;
  ds.consume(make_record(0, 9.0, 1, topology::ObservedRat::kG45Nsa, true));
  ds.consume(make_record(0, 10.0, 2, topology::ObservedRat::kG3, false,
                         corenet::kCause4TargetLoadTooHigh));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.failure_count(), 1u);
  const auto failures =
      ds.filter([](const HandoverRecord& r) { return !r.success; });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].cause, corenet::kCause4TargetLoadTooHigh);
  const auto durations = ds.success_durations_ms(topology::ObservedRat::kG45Nsa);
  ASSERT_EQ(durations.size(), 1u);
  EXPECT_FLOAT_EQ(static_cast<float>(durations[0]), 43.0f);
}

TEST(SignalingDataset, CsvExportHasHeaderAndRows) {
  SignalingDataset ds;
  ds.consume(make_record(1, 12.0, 5, topology::ObservedRat::kG3, false,
                         corenet::kCause1SourceCancelled));
  std::ostringstream out;
  ds.export_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("timestamp_ms"), std::string::npos);
  EXPECT_NE(csv.find("failure"), std::string::npos);
  EXPECT_NE(csv.find("3G"), std::string::npos);
}

TEST(TemporalAggregator, BinsByTimeAndArea) {
  TemporalAggregator agg{100, 2};
  auto r = make_record(0, 8.25, 7, topology::ObservedRat::kG45Nsa, true);
  agg.consume(r);
  r.timestamp = util::SimCalendar::at(0, 8.4);
  r.source_sector = 8;
  agg.consume(r);
  r.timestamp = util::SimCalendar::at(1, 23.9);
  r.success = false;
  agg.consume(r);

  const auto& ho = agg.ho_series(geo::AreaType::kUrban);
  EXPECT_EQ(ho[16], 2u);          // day 0, bin 16 (08:00-08:30)
  EXPECT_EQ(ho[48 + 47], 1u);     // day 1, last bin
  EXPECT_EQ(agg.hof_series(geo::AreaType::kUrban)[48 + 47], 1u);
  EXPECT_EQ(agg.ho_series(geo::AreaType::kRural)[16], 0u);

  const auto active = agg.active_sector_series(geo::AreaType::kUrban);
  EXPECT_EQ(active[16], 2u);  // two distinct sectors in the peak bin
  EXPECT_EQ(active[15], 0u);
}

TEST(TemporalAggregator, DuplicateSectorCountsOnce) {
  TemporalAggregator agg{100, 1};
  for (int i = 0; i < 5; ++i) {
    agg.consume(make_record(0, 9.1, 42, topology::ObservedRat::kG45Nsa, true));
  }
  EXPECT_EQ(agg.active_sector_series(geo::AreaType::kUrban)[18], 1u);
  EXPECT_EQ(agg.ho_series(geo::AreaType::kUrban)[18], 5u);
}

TEST(SectorDayAggregator, BuildsObservations) {
  SectorDayAggregator agg{50, 2};
  for (int i = 0; i < 10; ++i) {
    agg.consume(make_record(0, 9.0, 3, topology::ObservedRat::kG45Nsa, i < 9));
  }
  for (int i = 0; i < 4; ++i) {
    agg.consume(make_record(1, 9.0, 3, topology::ObservedRat::kG3, i < 2));
  }
  const auto obs = agg.observations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].sector, 3u);
  EXPECT_EQ(obs[0].day, 0);
  EXPECT_EQ(obs[0].handovers, 10u);
  EXPECT_EQ(obs[0].failures, 1u);
  EXPECT_NEAR(obs[0].hof_rate_pct, 10.0, 1e-12);
  EXPECT_EQ(obs[1].target, topology::ObservedRat::kG3);
  EXPECT_NEAR(obs[1].hof_rate_pct, 50.0, 1e-12);
  EXPECT_EQ(agg.total_handovers(), 14u);
  EXPECT_EQ(agg.total_failures(), 3u);
}

TEST(DistrictAggregator, TalliesDistrictAndMaker) {
  DistrictAggregator agg{5, 3};
  auto r = make_record(0, 9.0, 1, topology::ObservedRat::kG3, false);
  agg.consume(r);
  r.success = true;
  agg.consume(r);
  const auto& d = agg.district(2);
  EXPECT_EQ(d.handovers, 2u);
  EXPECT_EQ(d.failures, 1u);
  EXPECT_EQ(d.by_target[static_cast<std::size_t>(topology::ObservedRat::kG3)], 2u);
  const auto& m = agg.maker(2, 1);
  EXPECT_EQ(m.handovers, 2u);
  EXPECT_EQ(m.failures, 1u);
}

TEST(CauseAggregator, BucketsAndDailyShares) {
  CauseAggregator agg{2, 3};
  // Day 0: 3 failures of cause #4, 1 of a tail cause.
  for (int i = 0; i < 3; ++i) {
    agg.consume(make_record(0, 8.0, 1, topology::ObservedRat::kG3, false,
                            corenet::kCause4TargetLoadTooHigh));
  }
  agg.consume(make_record(0, 8.0, 1, topology::ObservedRat::kG3, false,
                          corenet::CauseId{150}));
  // Day 1: 1 failure of cause #4. Successes are ignored.
  agg.consume(make_record(1, 8.0, 1, topology::ObservedRat::kG3, false,
                          corenet::kCause4TargetLoadTooHigh));
  agg.consume(make_record(1, 8.0, 1, topology::ObservedRat::kG3, true));

  EXPECT_EQ(agg.total_failures(), 5u);
  EXPECT_EQ(agg.totals_by_bucket()[3], 4u);
  EXPECT_EQ(agg.totals_by_bucket()[8], 1u);
  EXPECT_EQ(agg.distinct_causes(), 2u);
  const auto share = agg.daily_share(3);
  EXPECT_NEAR(share.min, 0.75, 1e-12);
  EXPECT_NEAR(share.max, 1.0, 1e-12);
  EXPECT_NEAR(share.mean, 0.875, 1e-12);
  EXPECT_EQ(agg.failures_by_target()[static_cast<std::size_t>(topology::ObservedRat::kG3)],
            5u);
  EXPECT_EQ(agg.by_device()[0][3], 4u);  // smartphones, bucket #4
  EXPECT_EQ(agg.by_maker_area(1, geo::AreaType::kUrban, 3), 4u);
  EXPECT_EQ(agg.durations(3).seen(), 4u);
}

TEST(CauseAggregator, BucketLabels) {
  EXPECT_EQ(CauseAggregator::bucket_of(corenet::kCause1SourceCancelled), 0u);
  EXPECT_EQ(CauseAggregator::bucket_of(corenet::CauseId{500}), 8u);
  EXPECT_NE(std::string{CauseAggregator::bucket_label(0)}.find("#1"), std::string::npos);
}

TEST(DurationAggregator, SuccessOnlyReservoirs) {
  DurationAggregator agg;
  agg.consume(make_record(0, 9.0, 1, topology::ObservedRat::kG45Nsa, true));
  agg.consume(make_record(0, 9.0, 1, topology::ObservedRat::kG45Nsa, false));
  EXPECT_EQ(agg.durations(topology::ObservedRat::kG45Nsa).seen(), 1u);
  EXPECT_EQ(agg.durations(topology::ObservedRat::kG3).seen(), 0u);
}

TEST(TypeMixAggregator, SharesAcrossDays) {
  TypeMixAggregator agg{2};
  auto r = make_record(0, 9.0, 1, topology::ObservedRat::kG45Nsa, true);
  agg.consume(r);
  agg.consume(r);
  r.timestamp = util::SimCalendar::at(1, 9.0);
  r.target_rat = topology::ObservedRat::kG3;
  agg.consume(r);
  EXPECT_EQ(agg.total(), 3u);
  EXPECT_EQ(agg.count(devices::DeviceType::kSmartphone, topology::ObservedRat::kG45Nsa),
            2u);
  const auto share =
      agg.daily_share(devices::DeviceType::kSmartphone, topology::ObservedRat::kG45Nsa);
  EXPECT_NEAR(share.min, 0.0, 1e-12);
  EXPECT_NEAR(share.max, 1.0, 1e-12);
  EXPECT_NEAR(share.mean, 0.5, 1e-12);
}

TEST(UeDayStore, RetainsRowsAndComputesRates) {
  UeDayStore store;
  UeDayMetrics m;
  m.handovers = 10;
  m.failures = 1;
  store.consume(m);
  ASSERT_EQ(store.rows().size(), 1u);
  EXPECT_NEAR(store.rows()[0].hof_rate(), 0.1, 1e-12);
  UeDayMetrics idle;
  EXPECT_EQ(idle.hof_rate(), 0.0);
}

}  // namespace
}  // namespace tl::telemetry
