#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tl::util {
namespace {

std::vector<double> draw(const auto& dist, std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> out(n);
  for (auto& v : out) v = dist.sample(rng);
  return out;
}

double empirical_quantile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * (v.size() - 1))];
}

TEST(NormalQuantile, InvertsKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.95), 1.644854, 1e-4);
  EXPECT_NEAR(normal_quantile(0.05), -1.644854, 1e-4);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232, 1e-4);
}

TEST(NormalQuantile, RejectsOutOfDomain) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.2), std::invalid_argument);
}

TEST(LogNormal, FromMedianP95RecoversTargets) {
  const LogNormal d = LogNormal::from_median_p95(43.0, 90.0);
  EXPECT_NEAR(d.median(), 43.0, 1e-9);
  EXPECT_NEAR(d.quantile(0.95), 90.0, 1e-6);
}

TEST(LogNormal, SampledQuantilesMatchAnalytic) {
  const LogNormal d = LogNormal::from_median_p95(412.0, 1050.0);
  const auto samples = draw(d, 200'000, 31);
  EXPECT_NEAR(empirical_quantile(samples, 0.50), 412.0, 412.0 * 0.03);
  EXPECT_NEAR(empirical_quantile(samples, 0.95), 1050.0, 1050.0 * 0.04);
}

TEST(LogNormal, RejectsBadCalibration) {
  EXPECT_THROW(LogNormal::from_median_p95(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogNormal::from_median_p95(10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogNormal::from_median_p95(10.0, 5.0), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOneAndDecreases) {
  const Zipf z{100, 1.1};
  double total = 0.0;
  double prev = 1.0;
  for (std::size_t k = 0; k < z.size(); ++k) {
    const double p = z.pmf(k);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_THROW(z.pmf(100), std::out_of_range);
}

TEST(Zipf, SamplingMatchesPmf) {
  const Zipf z{10, 1.0};
  Rng rng{33};
  std::vector<int> counts(10, 0);
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), z.pmf(k), 0.01);
  }
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument); }

TEST(TruncatedNormal, StaysWithinBounds) {
  const TruncatedNormal t{0.0, 5.0, -1.0, 2.0};
  Rng rng{35};
  for (int i = 0; i < 20'000; ++i) {
    const double x = t.sample(rng);
    ASSERT_GE(x, -1.0);
    ASSERT_LE(x, 2.0);
  }
}

TEST(TruncatedNormal, DegenerateWindowFallsBackToClamp) {
  // Window far into the tail: rejection gives up and clamps to the edge.
  const TruncatedNormal t{0.0, 0.1, 50.0, 51.0};
  Rng rng{37};
  const double x = t.sample(rng);
  EXPECT_GE(x, 50.0);
  EXPECT_LE(x, 51.0);
}

TEST(DiscreteSampler, MatchesProbabilities) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const DiscreteSampler s{w};
  EXPECT_NEAR(s.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(s.probability(3), 0.4, 1e-12);
  Rng rng{39};
  std::vector<int> counts(4, 0);
  constexpr int n = 400'000;
  for (int i = 0; i < n; ++i) ++counts[s.sample(rng)];
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), s.probability(k), 0.005);
  }
}

TEST(DiscreteSampler, HandlesZeroWeightCategories) {
  const std::vector<double> w{0.0, 1.0, 0.0};
  const DiscreteSampler s{w};
  Rng rng{41};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.sample(rng), 1u);
}

TEST(DiscreteSampler, RejectsInvalidWeights) {
  const std::vector<double> empty;
  const std::vector<double> zeros{0.0, 0.0};
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(DiscreteSampler{empty}, std::invalid_argument);
  EXPECT_THROW(DiscreteSampler{zeros}, std::invalid_argument);
  EXPECT_THROW(DiscreteSampler{negative}, std::invalid_argument);
}

TEST(Pareto, RespectsScaleAndTail) {
  const Pareto p{2.0, 3.0};
  Rng rng{43};
  double sum = 0.0;
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = p.sample(rng);
    ASSERT_GE(x, 2.0);
    sum += x;
  }
  // Mean of Pareto(x_m=2, alpha=3) is alpha*x_m/(alpha-1) = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

struct LogNormalCase {
  double median;
  double p95;
};

class LogNormalSweep : public ::testing::TestWithParam<LogNormalCase> {};

TEST_P(LogNormalSweep, CalibrationRoundTrips) {
  const auto [median, p95] = GetParam();
  const LogNormal d = LogNormal::from_median_p95(median, p95);
  EXPECT_NEAR(d.median(), median, median * 1e-9);
  EXPECT_NEAR(d.quantile(0.95), p95, p95 * 1e-6);
  EXPECT_GT(d.mean(), d.median());  // lognormal is right-skewed
}

INSTANTIATE_TEST_SUITE_P(PaperCalibrations, LogNormalSweep,
                         ::testing::Values(LogNormalCase{43.0, 90.0},
                                           LogNormalCase{412.0, 1050.0},
                                           LogNormalCase{1000.0, 3800.0},
                                           LogNormalCase{81.0, 97.0},
                                           LogNormalCase{10050.0, 10180.0}));

}  // namespace
}  // namespace tl::util
