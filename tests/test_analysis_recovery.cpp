// The headline check: the analysis layer must *recover* the paper's
// findings from simulated records — regressions, ANOVA, correlations.

#include <gtest/gtest.h>

#include "core/hof_dataset.hpp"
#include "core/home_inference.hpp"
#include "core/report.hpp"
#include "core/usage_model.hpp"
#include "test_world.hpp"

namespace tl::core {
namespace {

using testing::TestWorld;

const HofModelingDataset& modeling_dataset() {
  static const HofModelingDataset ds = [] {
    const auto& w = TestWorld::instance();
    return HofModelingDataset::build(*w.sector_day, w.sim->deployment(),
                                     w.sim->country());
  }();
  return ds;
}

TEST(Recovery, MedianHofRatesOrderLikeThePaper) {
  const auto medians = modeling_dataset().median_rate_by_type();
  // Paper §6.3: 0.04% intra, 5.85% to 3G (2G is rare at test scale).
  EXPECT_LT(medians[static_cast<std::size_t>(topology::ObservedRat::kG45Nsa)], 1.0);
  EXPECT_GT(medians[static_cast<std::size_t>(topology::ObservedRat::kG3)], 1.0);
}

TEST(Recovery, AnovaConfirmsHoTypeEffect) {
  const auto anova = modeling_dataset().anova_by_type();
  EXPECT_LT(anova.p_value, 0.001);
  EXPECT_GT(anova.eta_squared, 0.3);  // paper: 0.81 at full scale
}

TEST(Recovery, KruskalWallisAgrees) {
  EXPECT_LT(modeling_dataset().kruskal_wallis_by_type().p_value, 0.001);
}

TEST(Recovery, UnivariateRegressionRecovers3gCoefficient) {
  const auto model = modeling_dataset().nonzero().fit_univariate();
  // Paper Table 4: +5.12 for ->3G vs intra (log scale). Band is wide at
  // test scale but the effect must be large and positive.
  const auto& term_3g = model.term("HO type: 4G/5G-NSA to 3G");
  EXPECT_GT(term_3g.coefficient, 3.0);
  EXPECT_LT(term_3g.coefficient, 7.0);
  EXPECT_LT(term_3g.p_value, 1e-6);
  EXPECT_LT(model.term("(Intercept)").coefficient, 0.0);
}

TEST(Recovery, FullModelKeepsHoTypeDominant) {
  const auto model = modeling_dataset().filtered().fit_full();
  const auto& term_3g = model.term("HO type: 4G/5G-NSA to 3G");
  EXPECT_GT(term_3g.coefficient, 2.0);
  EXPECT_LT(term_3g.p_value, 1e-6);
  // Secondary effects exist but are much smaller (paper Table 5).
  const auto& rural = model.term("Area Type: Rural");
  EXPECT_LT(std::abs(rural.coefficient), 1.5);
  const auto& v3 = model.term("Antenna Vendor: V3");
  EXPECT_GT(v3.coefficient, 0.0);  // V3 runs hotter by construction
}

TEST(Recovery, QuantileRegressionIsStableAcrossTaus) {
  const auto& ds = modeling_dataset();
  const auto filtered = ds.filtered(50.0, 5, 30'000);
  double prev_intercept = -100.0;
  for (const double tau : {0.2, 0.4, 0.6, 0.8}) {
    const auto fit = filtered.fit_quantile(tau);
    ASSERT_GE(fit.terms.size(), 2u);
    // Higher quantile -> higher intercept (log rates shift up).
    EXPECT_GT(fit.terms[0].coefficient, prev_intercept);
    prev_intercept = fit.terms[0].coefficient;
    // The ->3G effect stays large and positive at every quantile
    // (paper Table 8: ~4.8-5.0).
    EXPECT_GT(fit.terms[1].coefficient, 2.5);
  }
}

TEST(Recovery, StepwiseSelectionPicksHoTypeFirst) {
  // Appendix B robustness: the greedy AIC search must pick HO type as the
  // first covariate — it carries almost all the explainable variance.
  const auto result = modeling_dataset().filtered().fit_stepwise();
  ASSERT_FALSE(result.selected.empty());
  EXPECT_EQ(result.selected.front(), "HO type");
  // The selected model is at least as good (by AIC) as HO type alone.
  const auto univariate = modeling_dataset().filtered().fit_univariate();
  EXPECT_LE(result.model.aic, univariate.aic + 1e-6);
}

TEST(Recovery, Table6SummaryShapes) {
  const auto& ds = modeling_dataset();
  const auto hos = ds.summary_daily_hos();
  EXPECT_GE(hos.min, 1.0);
  EXPECT_GT(hos.mean, hos.median);  // heavy right tail, as in Table 6
  const auto rate = ds.summary_hof_rate();
  EXPECT_EQ(rate.min, 0.0);
  EXPECT_GT(rate.mean, rate.median);  // zero-inflated with a long tail
}

TEST(Recovery, FiltersBehave) {
  const auto& ds = modeling_dataset();
  EXPECT_GT(ds.size(), 100u);
  EXPECT_LT(ds.nonzero().size(), ds.size());
  for (const auto& row : ds.without_2g().rows()) {
    EXPECT_NE(row.target, topology::ObservedRat::kG2);
  }
  for (const auto& row : ds.filtered(50.0, 10, 1000).rows()) {
    EXPECT_GT(row.hof_rate_pct, 0.0);
    EXPECT_LT(row.hof_rate_pct, 50.0);
    EXPECT_GE(row.daily_hos, 10u);
    EXPECT_LE(row.daily_hos, 1000u);
  }
}

TEST(Recovery, HomeInferenceTracksCensus) {
  const auto& w = TestWorld::instance();
  const auto result = infer_home_locations(w.sim->country(), w.sim->deployment(),
                                           w.sim->population());
  // Paper Fig. 5: R^2 = 0.92. Wide band at test scale.
  EXPECT_GT(result.r_squared(), 0.75);
  EXPECT_LT(result.r_squared(), 1.0);
  EXPECT_GT(result.fit.slope, 0.0);
}

TEST(Recovery, HoDensityCorrelatesWithPopulation) {
  const auto& w = TestWorld::instance();
  const auto density = district_ho_density(*w.sim, *w.districts);
  // Paper Fig. 6: Pearson 0.97.
  EXPECT_GT(density.pearson, 0.85);
  EXPECT_GT(density.max_hos_per_km2, 50.0 * std::max(density.min_hos_per_km2, 0.01));
}

TEST(Recovery, DistrictRatSharesShowRuralLegacyTail) {
  const auto& w = TestWorld::instance();
  const auto shares = district_rat_shares(*w.sim, *w.districts);
  EXPECT_GT(shares.max_intra_share, 0.95);  // urban districts ~99% intra
  EXPECT_GT(shares.max_3g_share, 0.10);     // some remote district leans on 3G
  EXPECT_GT(shares.mean_3g_least_dense, 0.015);
  for (const auto& s : shares.shares) {
    const double sum = s[0] + s[1] + s[2];
    if (sum > 0.0) EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Recovery, UsageModelMatchesFig3b) {
  const auto& w = TestWorld::instance();
  const UsageModel usage{w.sim->population(), w.sim->coverage()};
  const auto r = usage.compute(3);
  const double sum = r.time_share[0] + r.time_share[1] + r.time_share[2];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Paper: ~82% on 4G/5G, ~8.9% each on 2G and 3G.
  EXPECT_NEAR(r.time_share[2], 0.82, 0.06);
  EXPECT_NEAR(r.time_share[0], 0.089, 0.05);
  EXPECT_NEAR(r.time_share[1], 0.089, 0.05);
  // Traffic: legacy RATs carry only ~5.2% UL / ~2.1% DL.
  EXPECT_LT(r.uplink_share[0] + r.uplink_share[1], 0.12);
  EXPECT_LT(r.downlink_share[0] + r.downlink_share[1],
            r.uplink_share[0] + r.uplink_share[1]);
  EXPECT_GT(r.downlink_share[2], 0.95);
  // Error bars exist and bracket the mean.
  EXPECT_LE(r.time_share_min[2], r.time_share[2]);
  EXPECT_GE(r.time_share_max[2], r.time_share[2]);
}

TEST(Recovery, ManufacturerOutliersSurface) {
  const auto& w = TestWorld::instance();
  const auto result = manufacturer_normalized(*w.sim, *w.districts, 5);
  ASSERT_FALSE(result.rows.empty());
  // Top-share manufacturers behave like their district peers (ratio ~ 1).
  for (const std::size_t idx : result.top5_by_share) {
    EXPECT_NEAR(result.rows[idx].median_hos, 1.0, 0.35);
  }
  // The engineered outliers (KVD / HMD at 7x HOF) rank worst where present.
  if (!result.top5_by_hof.empty()) {
    const auto& worst = result.rows[result.top5_by_hof.front()];
    EXPECT_GT(worst.median_hof_rate, 1.2);
  }
}

TEST(Recovery, Fig13HighMobilityUesFailMore) {
  const auto& w = TestWorld::instance();
  std::vector<double> low_rates, high_rates;
  for (const auto& row : w.ue_days.rows()) {
    if (row.handovers == 0) continue;
    (row.distinct_sectors > 50 ? high_rates : low_rates).push_back(row.hof_rate());
  }
  ASSERT_GT(low_rates.size(), 100u);
  if (high_rates.size() > 30) {
    EXPECT_GE(analysis::quantile(high_rates, 0.75), analysis::quantile(low_rates, 0.75));
  }
  // The bulk of UEs sees (near-)zero HOF rate.
  EXPECT_LT(analysis::median(low_rates), 0.01);
}

TEST(Recovery, DatasetStatsScaleToNationalNumbers) {
  const auto& w = TestWorld::instance();
  const auto stats = dataset_stats(*w.sim, w.sim->records_emitted());
  EXPECT_EQ(stats.ues_measured, w.sim->population().size());
  EXPECT_NEAR(stats.full_scale_ues, 40e6, 1.0);
  EXPECT_GT(stats.full_scale_daily_handovers, 2e8);  // order of the paper's 1.7B
  EXPECT_LT(stats.full_scale_daily_handovers, 1e10);
}

}  // namespace
}  // namespace tl::core
