// Census synthesis and the spatial index.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "geo/census.hpp"
#include "geo/spatial_index.hpp"
#include "util/rng.hpp"

namespace tl::geo {
namespace {

const Country& small_country() {
  static const Country country = [] {
    CensusConfig cfg;
    cfg.districts = 80;
    cfg.total_population = 12'000'000;
    cfg.seed = 99;
    return synthesize_country(cfg);
  }();
  return country;
}

TEST(Census, DistrictCountAndPopulation) {
  const auto& c = small_country();
  EXPECT_EQ(c.districts().size(), 80u);
  // Rounding per district loses a little; total stays within 1%.
  EXPECT_NEAR(static_cast<double>(c.total_population()), 12e6, 12e6 * 0.01);
}

TEST(Census, AreasPartitionTheCountry) {
  const auto& c = small_country();
  EXPECT_NEAR(c.total_area_km2(), c.width_km() * c.height_km(),
              c.total_area_km2() * 1e-6);
  double postcode_area = 0.0;
  for (const auto& pc : c.postcodes()) postcode_area += pc.area_km2;
  EXPECT_NEAR(postcode_area, c.total_area_km2(), c.total_area_km2() * 1e-6);
}

TEST(Census, RankSizeLawHolds) {
  const auto& c = small_country();
  // District 0 (capital centre) is the most populous.
  for (const auto& d : c.districts()) {
    EXPECT_LE(d.population, c.district(0).population);
  }
  EXPECT_EQ(c.district(0).name, "Capital-Centre");
  EXPECT_EQ(c.district(0).region, Region::kCapital);
}

TEST(Census, UrbanCalibrationLandsNearTargets) {
  const auto& c = small_country();
  // Paper: urban postcodes cover 49.6% of territory and hold most people.
  EXPECT_NEAR(c.urban_territory_share(), 0.496, 0.06);
  EXPECT_GT(c.urban_population_share(), 0.65);
}

TEST(Census, DensitySpansOrdersOfMagnitude) {
  const auto& c = small_country();
  double min_density = std::numeric_limits<double>::infinity();
  double max_density = 0.0;
  for (const auto& d : c.districts()) {
    min_density = std::min(min_density, d.population_density());
    max_density = std::max(max_density, d.population_density());
  }
  EXPECT_GT(max_density / min_density, 100.0);
  EXPECT_EQ(c.densest_district(), c.district(0).id);
}

TEST(Census, PostcodesBelongToTheirDistrict) {
  const auto& c = small_country();
  std::size_t total_postcodes = 0;
  for (const auto& d : c.districts()) {
    std::uint64_t pop = 0;
    for (const PostcodeId id : d.postcodes) {
      EXPECT_EQ(c.postcode(id).district, d.id);
      pop += c.postcode(id).residents;
    }
    EXPECT_EQ(pop, d.population);
    total_postcodes += d.postcodes.size();
  }
  EXPECT_EQ(total_postcodes, c.postcodes().size());
}

TEST(Census, UnreliablePostcodeShareNearThreePercent) {
  const auto& c = small_country();
  std::size_t unreliable = 0;
  for (const auto& pc : c.postcodes()) {
    if (!pc.census_reliable) ++unreliable;
  }
  const double share = static_cast<double>(unreliable) / c.postcodes().size();
  EXPECT_NEAR(share, 0.031, 0.02);
}

TEST(Census, DeterministicForSeed) {
  CensusConfig cfg;
  cfg.districts = 30;
  cfg.total_population = 2'000'000;
  cfg.seed = 123;
  const Country a = synthesize_country(cfg);
  const Country b = synthesize_country(cfg);
  ASSERT_EQ(a.postcodes().size(), b.postcodes().size());
  for (std::size_t i = 0; i < a.postcodes().size(); ++i) {
    EXPECT_EQ(a.postcodes()[i].residents, b.postcodes()[i].residents);
    EXPECT_EQ(a.postcodes()[i].centroid, b.postcodes()[i].centroid);
  }
}

TEST(Census, RejectsBadConfig) {
  CensusConfig cfg;
  cfg.districts = 5;
  EXPECT_THROW(synthesize_country(cfg), std::invalid_argument);
  cfg.districts = 100;
  cfg.total_population = 100;
  EXPECT_THROW(synthesize_country(cfg), std::invalid_argument);
}

TEST(Census, AllRegionsRepresented) {
  const auto& c = small_country();
  std::array<int, 4> counts{};
  for (const auto& d : c.districts()) ++counts[static_cast<std::size_t>(d.region)];
  for (const int n : counts) EXPECT_GT(n, 0);
}

// --- SpatialIndex ------------------------------------------------------------

TEST(SpatialIndex, NearestOnEmptyIndex) {
  const SpatialIndex idx{100.0, 100.0, 5.0};
  EXPECT_EQ(idx.nearest({50, 50}), SpatialIndex::kNotFound);
  EXPECT_TRUE(idx.nearest_k({50, 50}, 3).empty());
}

TEST(SpatialIndex, QueryRadiusIsExact) {
  SpatialIndex idx{100.0, 100.0, 5.0};
  idx.insert({10, 10}, 1);
  idx.insert({12, 10}, 2);
  idx.insert({40, 40}, 3);
  const auto near = idx.query_radius({10, 10}, 3.0);
  EXPECT_EQ(near.size(), 2u);
  const auto all = idx.query_radius({25, 25}, 100.0);
  EXPECT_EQ(all.size(), 3u);
}

class SpatialIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpatialIndexProperty, NearestMatchesBruteForce) {
  util::Rng rng{GetParam()};
  SpatialIndex idx{200.0, 150.0, 7.0};
  std::vector<util::GeoPoint> points;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const util::GeoPoint p{rng.uniform(0.0, 200.0), rng.uniform(0.0, 150.0)};
    points.push_back(p);
    idx.insert(p, i);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const util::GeoPoint q{rng.uniform(0.0, 200.0), rng.uniform(0.0, 150.0)};
    const std::uint32_t got = idx.nearest(q);
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t want = 0;
    for (std::uint32_t i = 0; i < points.size(); ++i) {
      const double d = util::squared_distance_km2(points[i], q);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    // Ties allowed: the found point must match the brute-force distance.
    EXPECT_NEAR(util::squared_distance_km2(points[got], q),
                util::squared_distance_km2(points[want], q), 1e-9);
  }
}

TEST_P(SpatialIndexProperty, NearestKIsSortedAndComplete) {
  util::Rng rng{GetParam() ^ 0xabcd};
  SpatialIndex idx{100.0, 100.0, 4.0};
  for (std::uint32_t i = 0; i < 300; ++i) {
    idx.insert({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}, i);
  }
  const util::GeoPoint q{50, 50};
  const auto k5 = idx.nearest_k(q, 5);
  ASSERT_EQ(k5.size(), 5u);
  EXPECT_EQ(k5.front(), idx.nearest(q));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexProperty, ::testing::Values(1u, 7u, 1234u));

}  // namespace
}  // namespace tl::geo
