// Dense linear algebra and special-function accuracy.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/matrix.hpp"
#include "analysis/special_functions.hpp"

namespace tl::analysis {
namespace {

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Matrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at(2, 1), 6.0);
  const Matrix aat = a * at;
  EXPECT_EQ(aat.rows(), 2u);
  EXPECT_EQ(aat(0, 0), 14.0);
  EXPECT_EQ(aat(0, 1), 32.0);
  EXPECT_EQ(aat(1, 1), 77.0);
}

TEST(Matrix, GramEqualsExplicitProduct) {
  Matrix x(4, 2);
  double v = 1.0;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 2; ++c) x(r, c) = v++;
  }
  const Matrix g = x.gram();
  const Matrix ref = x.transpose() * x;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(g(i, j), ref(i, j), 1e-12);
  }
}

TEST(Matrix, TransposeTimesVector) {
  Matrix x(3, 2);
  x(0, 0) = 1; x(0, 1) = 2;
  x(1, 0) = 3; x(1, 1) = 4;
  x(2, 0) = 5; x(2, 1) = 6;
  const auto xty = x.transpose_times({1.0, 1.0, 1.0});
  EXPECT_NEAR(xty[0], 9.0, 1e-12);
  EXPECT_NEAR(xty[1], 12.0, 1e-12);
}

TEST(Cholesky, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 3;
  const Cholesky chol{a};
  const auto x = chol.solve({8.0, 7.0});  // solution (1.25, 1.5)
  EXPECT_NEAR(x[0], 1.25, 1e-10);
  EXPECT_NEAR(x[1], 1.5, 1e-10);
}

TEST(Cholesky, InverseTimesOriginalIsIdentity) {
  Matrix a(3, 3);
  a(0, 0) = 6; a(0, 1) = 2; a(0, 2) = 1;
  a(1, 0) = 2; a(1, 1) = 5; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 2; a(2, 2) = 4;
  const Cholesky chol{a};
  const Matrix product = chol.inverse() * a;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(product(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Cholesky, JitterRescuesNearSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0 + 1e-14;
  EXPECT_NO_THROW(Cholesky{a});
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 0.0;
  a(1, 0) = 0.0; a(1, 1) = -5.0;
  EXPECT_THROW(Cholesky{a}, std::runtime_error);
}

// Reference values from R: pchisq, pt, pf, pnorm.
TEST(SpecialFunctions, ChiSquaredCdf) {
  EXPECT_NEAR(chi_squared_cdf(3.841459, 1), 0.95, 1e-6);
  EXPECT_NEAR(chi_squared_cdf(5.991465, 2), 0.95, 1e-6);
  EXPECT_NEAR(chi_squared_cdf(0.0, 3), 0.0, 1e-12);
  EXPECT_NEAR(chi_squared_cdf(100.0, 3), 1.0, 1e-9);
}

TEST(SpecialFunctions, StudentTCdf) {
  EXPECT_NEAR(student_t_cdf(0.0, 10), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(2.228139, 10), 0.975, 1e-6);
  EXPECT_NEAR(student_t_cdf(-2.228139, 10), 0.025, 1e-6);
  EXPECT_NEAR(student_t_cdf(1.959964, 1e6), 0.975, 1e-4);
}

TEST(SpecialFunctions, TwoSidedP) {
  EXPECT_NEAR(student_t_two_sided_p(2.228139, 10), 0.05, 1e-6);
  EXPECT_NEAR(student_t_two_sided_p(0.0, 10), 1.0, 1e-12);
}

TEST(SpecialFunctions, FCdf) {
  // qf(0.95, 3, 10) = 3.708265
  EXPECT_NEAR(f_cdf(3.708265, 3, 10), 0.95, 1e-6);
  EXPECT_NEAR(f_upper_p(3.708265, 3, 10), 0.05, 1e-6);
  EXPECT_NEAR(f_cdf(0.0, 3, 10), 0.0, 1e-12);
}

TEST(SpecialFunctions, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959964), 0.025, 1e-6);
}

TEST(SpecialFunctions, RegularizedBetaSymmetry) {
  // I_x(a, b) = 1 - I_{1-x}(b, a)
  const double v = regularized_beta(2.5, 3.5, 0.3);
  EXPECT_NEAR(v, 1.0 - regularized_beta(3.5, 2.5, 0.7), 1e-10);
  EXPECT_NEAR(regularized_beta(1.0, 1.0, 0.42), 0.42, 1e-10);  // uniform case
}

TEST(SpecialFunctions, RegularizedGammaBounds) {
  EXPECT_NEAR(regularized_gamma_p(1.0, 0.0), 0.0, 1e-12);
  // P(1, x) = 1 - exp(-x)
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
}

TEST(SpecialFunctions, StudentizedRangeKnownValues) {
  // q_{0.95}(k=3, df=inf) = 3.314 (tabulated).
  EXPECT_NEAR(studentized_range_cdf_inf_df(3.314, 3), 0.95, 0.003);
  // q_{0.95}(k=2, df=inf) = 2.772 = sqrt(2) * 1.96.
  EXPECT_NEAR(studentized_range_cdf_inf_df(2.772, 2), 0.95, 0.003);
  EXPECT_EQ(studentized_range_cdf_inf_df(0.0, 4), 0.0);
  EXPECT_THROW(studentized_range_cdf_inf_df(1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tl::analysis
