// ANOVA, Kruskal-Wallis, OLS and quantile regression.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/anova.hpp"
#include "analysis/linear_model.hpp"
#include "util/rng.hpp"

namespace tl::analysis {
namespace {

TEST(Anova, NoEffectGivesSmallF) {
  util::Rng rng{5};
  std::vector<std::vector<double>> groups(3);
  for (auto& g : groups) {
    for (int i = 0; i < 500; ++i) g.push_back(rng.normal());
  }
  const auto r = one_way_anova(groups);
  EXPECT_LT(r.f_statistic, 5.0);
  EXPECT_GT(r.p_value, 0.001);
  EXPECT_LT(r.eta_squared, 0.02);
}

TEST(Anova, LargeShiftIsSignificant) {
  util::Rng rng{6};
  std::vector<std::vector<double>> groups(3);
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 300; ++i) groups[g].push_back(rng.normal() + g * 3.0);
  }
  const auto r = one_way_anova(groups);
  EXPECT_GT(r.f_statistic, 100.0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.eta_squared, 0.5);
}

TEST(Anova, MatchesHandComputedExample) {
  // Classic small example: groups {1,2,3}, {2,3,4}, {5,6,7}.
  const std::vector<std::vector<double>> groups{{1, 2, 3}, {2, 3, 4}, {5, 6, 7}};
  const auto r = one_way_anova(groups);
  // Grand mean 33/9, SSB = 3*((2-m)^2+(3-m)^2+(6-m)^2), SSW = 6.
  EXPECT_NEAR(r.ss_within, 6.0, 1e-9);
  EXPECT_NEAR(r.ss_between, 26.0, 1e-9);
  EXPECT_NEAR(r.f_statistic, (26.0 / 2.0) / (6.0 / 6.0), 1e-9);
}

TEST(Anova, RejectsDegenerateInput) {
  EXPECT_THROW(one_way_anova(std::vector<std::vector<double>>{{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(one_way_anova(std::vector<std::vector<double>>{{1.0}, {}}),
               std::invalid_argument);
}

TEST(TukeyHsd, FlagsOnlyTheShiftedPair) {
  util::Rng rng{7};
  std::vector<std::vector<double>> groups(3);
  for (int i = 0; i < 400; ++i) {
    groups[0].push_back(rng.normal());
    groups[1].push_back(rng.normal());
    groups[2].push_back(rng.normal() + 1.0);
  }
  const auto comparisons = tukey_hsd(groups);
  ASSERT_EQ(comparisons.size(), 3u);
  for (const auto& c : comparisons) {
    const bool involves_shifted = c.group_a == 2 || c.group_b == 2;
    if (involves_shifted) {
      EXPECT_LT(c.p_value, 0.001);
    } else {
      EXPECT_GT(c.p_value, 0.05);
    }
  }
}

TEST(KruskalWallis, DetectsLocationShift) {
  util::Rng rng{8};
  std::vector<std::vector<double>> groups(2);
  for (int i = 0; i < 300; ++i) {
    groups[0].push_back(rng.normal());
    groups[1].push_back(rng.normal() + 2.0);
  }
  const auto r = kruskal_wallis(groups);
  EXPECT_LT(r.p_value, 1e-9);
  EXPECT_EQ(r.df, 1.0);
}

TEST(KruskalWallis, NullCaseNotSignificant) {
  util::Rng rng{9};
  std::vector<std::vector<double>> groups(3);
  for (auto& g : groups) {
    for (int i = 0; i < 200; ++i) g.push_back(rng.normal());
  }
  EXPECT_GT(kruskal_wallis(groups).p_value, 0.001);
}

TEST(KruskalWallis, TieCorrectionKeepsStatisticFinite) {
  // Heavy ties: values drawn from {0, 1}.
  std::vector<std::vector<double>> groups{{0, 0, 1, 1, 0}, {1, 1, 0, 1, 1}};
  const auto r = kruskal_wallis(groups);
  EXPECT_TRUE(std::isfinite(r.h_statistic));
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

// ---------------------------------------------------------------------------

TEST(DesignBuilder, BuildsInterceptAndDummies) {
  DesignBuilder d{4};
  d.add_numeric("x", std::vector<double>{1, 2, 3, 4});
  const std::vector<std::uint32_t> codes{0, 1, 2, 1};
  d.add_categorical("g", codes, {"a", "b", "c"}, 0);
  EXPECT_EQ(d.parameters(), 4u);  // intercept + x + 2 dummies
  const auto x = d.build_matrix();
  // Row 1: intercept 1, x=2, g=b -> dummy b = 1, dummy c = 0.
  EXPECT_EQ(x[4], 1.0);
  EXPECT_EQ(x[5], 2.0);
  EXPECT_EQ(x[6], 1.0);
  EXPECT_EQ(x[7], 0.0);
  EXPECT_THROW(d.add_numeric("bad", std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Ols, RecoversKnownCoefficients) {
  util::Rng rng{10};
  const std::size_t n = 5'000;
  std::vector<double> x1(n), x2(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.normal();
    x2[i] = rng.normal();
    y[i] = 1.5 - 2.0 * x1[i] + 0.7 * x2[i] + rng.normal() * 0.5;
  }
  DesignBuilder d{n};
  d.add_numeric("x1", x1);
  d.add_numeric("x2", x2);
  const auto model = fit_ols(d, y);
  EXPECT_NEAR(model.term("(Intercept)").coefficient, 1.5, 0.03);
  EXPECT_NEAR(model.term("x1").coefficient, -2.0, 0.03);
  EXPECT_NEAR(model.term("x2").coefficient, 0.7, 0.03);
  EXPECT_GT(model.r_squared, 0.9);
  EXPECT_LT(model.term("x1").p_value, 1e-10);
  // The true value lies inside the 95% CI (holds with margin at this n).
  EXPECT_LT(model.term("x1").ci_lo, -2.0 + 0.05);
  EXPECT_GT(model.term("x1").ci_hi, -2.0 - 0.05);
}

TEST(Ols, CategoricalEffectsMatchGroupMeans) {
  // y = 10 for baseline, 12 for level b (exact, no noise).
  DesignBuilder d{6};
  const std::vector<std::uint32_t> codes{0, 0, 0, 1, 1, 1};
  d.add_categorical("g", codes, {"a", "b"}, 0);
  const std::vector<double> y{10, 10, 10, 12, 12, 12};
  const auto model = fit_ols(d, y);
  EXPECT_NEAR(model.term("(Intercept)").coefficient, 10.0, 1e-9);
  EXPECT_NEAR(model.term("g: b").coefficient, 2.0, 1e-9);
  EXPECT_NEAR(model.rmse, 0.0, 1e-9);
}

TEST(Ols, InsignificantCovariateHasHighP) {
  util::Rng rng{11};
  const std::size_t n = 2'000;
  std::vector<double> x(n), noise(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    noise[i] = rng.normal();
    y[i] = 3.0 * x[i] + rng.normal();
  }
  DesignBuilder d{n};
  d.add_numeric("x", x);
  d.add_numeric("noise", noise);
  const auto model = fit_ols(d, y);
  EXPECT_GT(model.term("noise").p_value, 0.001);
  EXPECT_LT(model.term("x").p_value, 1e-10);
}

TEST(Ols, AicPrefersTrueModel) {
  util::Rng rng{12};
  const std::size_t n = 1'000;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = 2.0 * x[i] + rng.normal();
  }
  DesignBuilder with{n};
  with.add_numeric("x", x);
  DesignBuilder without{n};
  without.add_numeric("junk", std::vector<double>(n, 0.0));
  // A constant column is collinear with the intercept; the jittered
  // Cholesky still solves it, and the fit is just the mean model.
  const auto good = fit_ols(with, y);
  const auto bad = fit_ols(without, y);
  EXPECT_LT(good.aic, bad.aic);
}

TEST(QuantileRegression, MedianFitMatchesOlsOnSymmetricNoise) {
  util::Rng rng{13};
  const std::size_t n = 4'000;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0.0, 10.0);
    y[i] = 5.0 + 1.2 * x[i] + rng.normal();
  }
  DesignBuilder d{n};
  d.add_numeric("x", x);
  const auto fit = fit_quantile(d, y, 0.5);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.terms[0].coefficient, 5.0, 0.15);
  EXPECT_NEAR(fit.terms[1].coefficient, 1.2, 0.03);
}

TEST(QuantileRegression, TauShiftsInterceptByNoiseQuantile) {
  util::Rng rng{14};
  const std::size_t n = 20'000;
  std::vector<double> x(n, 0.0), y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.normal();  // pure noise
  DesignBuilder d{n};
  d.add_numeric("x", x);
  const auto q20 = fit_quantile(d, y, 0.2);
  const auto q80 = fit_quantile(d, y, 0.8);
  EXPECT_NEAR(q20.terms[0].coefficient, -0.8416, 0.05);
  EXPECT_NEAR(q80.terms[0].coefficient, 0.8416, 0.05);
}

TEST(QuantileRegression, RejectsBadTau) {
  DesignBuilder d{10};
  d.add_numeric("x", std::vector<double>(10, 1.0));
  const std::vector<double> y(10, 0.0);
  EXPECT_THROW(fit_quantile(d, y, 0.0), std::invalid_argument);
  EXPECT_THROW(fit_quantile(d, y, 1.0), std::invalid_argument);
}

class OlsSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OlsSizeSweep, CoefficientRecoveryAcrossSampleSizes) {
  util::Rng rng{15 + GetParam()};
  const std::size_t n = GetParam();
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = 4.0 + 1.0 * x[i] + rng.normal() * 0.3;
  }
  DesignBuilder d{n};
  d.add_numeric("x", x);
  const auto model = fit_ols(d, y);
  const double tolerance = 4.0 * 0.3 / std::sqrt(static_cast<double>(n));
  EXPECT_NEAR(model.term("x").coefficient, 1.0, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OlsSizeSweep, ::testing::Values(50u, 500u, 5'000u));

}  // namespace
}  // namespace tl::analysis
