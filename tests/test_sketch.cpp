// QuantileSketch: exactness of the scalar fields, certified rank-error
// bounds against the exact Ecdf on adversarial inputs, merge algebra
// (commutativity / associativity within bounds, exact fields exactly),
// determinism (the property the serve chaos proof rests on), memory
// bounds, and serialization round-trip + corruption rejection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "analysis/ecdf.hpp"
#include "analysis/quantile_sketch.hpp"
#include "util/rng.hpp"

namespace tl {
namespace {

using analysis::Ecdf;
using analysis::QuantileSketch;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<double> sorted_stream(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

std::vector<double> reverse_sorted_stream(std::size_t n) {
  std::vector<double> v = sorted_stream(n);
  std::reverse(v.begin(), v.end());
  return v;
}

std::vector<double> constant_stream(std::size_t n, double x) {
  return std::vector<double>(n, x);
}

/// Pareto-ish heavy tail spanning ~9 decades, the shape HO durations and
/// failure-cause tail counts actually have.
std::vector<double> heavy_tailed_stream(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = std::max(rng.uniform(0.0, 1.0), 1e-9);
    v[i] = 1.0 / std::pow(u, 1.5);
  }
  return v;
}

QuantileSketch sketch_of(const std::vector<double>& xs, std::size_t k = 64) {
  QuantileSketch s{k};
  for (double x : xs) s.insert(x);
  return s;
}

/// Max |cdf(x) - F_exact(x)| probed at every sample value (the supremum of
/// the CDF error is attained at sample points).
double max_cdf_error(const QuantileSketch& s, const std::vector<double>& xs) {
  std::vector<double> finite;
  for (double x : xs) {
    if (!std::isnan(x)) finite.push_back(x);
  }
  const Ecdf exact{finite};
  double worst = 0.0;
  for (double x : finite) {
    worst = std::max(worst, std::abs(s.cdf(x) - exact.at(x)));
  }
  return worst;
}

// --- construction and exact fields -------------------------------------------

TEST(QuantileSketch, RejectsInvalidK) {
  EXPECT_THROW(QuantileSketch{3}, std::invalid_argument);
  EXPECT_THROW(QuantileSketch{7}, std::invalid_argument);  // odd
  EXPECT_THROW(QuantileSketch{0}, std::invalid_argument);
  EXPECT_NO_THROW(QuantileSketch{4});
}

TEST(QuantileSketch, EmptySketchBehaviour) {
  QuantileSketch s{16};
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_THROW(s.cdf(0.0), std::logic_error);
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
}

TEST(QuantileSketch, ExactFieldsMatchStream) {
  const auto xs = heavy_tailed_stream(5000, 7);
  const QuantileSketch s = sketch_of(xs);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_EQ(s.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(s.max(), *std::max_element(xs.begin(), xs.end()));
  double sum = 0.0;
  for (double x : xs) sum += x;
  EXPECT_NEAR(s.sum(), sum, std::abs(sum) * 1e-12);
}

TEST(QuantileSketch, NanRoutingMatchesHistogramConvention) {
  QuantileSketch s{16};
  s.insert(1.0);
  s.insert(kNan);
  s.insert(2.0);
  s.insert(kNan);
  EXPECT_EQ(s.count(), 2u);     // NaN never enters the sketch
  EXPECT_EQ(s.nan_count(), 2u); // ... but is tallied, like Histogram
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 2.0);
  EXPECT_FALSE(std::isnan(s.quantile(0.5)));
}

// --- certified rank-error bounds on adversarial inputs -----------------------

TEST(QuantileSketch, BoundHoldsOnSortedInput) {
  const auto xs = sorted_stream(20'000);
  const QuantileSketch s = sketch_of(xs);
  EXPECT_LE(max_cdf_error(s, xs), s.rank_error_bound());
  EXPECT_LT(s.rank_error_bound(), 0.12);  // levels/(2k) stays small
}

TEST(QuantileSketch, BoundHoldsOnReverseSortedInput) {
  const auto xs = reverse_sorted_stream(20'000);
  const QuantileSketch s = sketch_of(xs);
  EXPECT_LE(max_cdf_error(s, xs), s.rank_error_bound());
}

TEST(QuantileSketch, BoundHoldsOnConstantInput) {
  const auto xs = constant_stream(10'000, 42.0);
  const QuantileSketch s = sketch_of(xs);
  EXPECT_EQ(s.cdf(42.0), 1.0);
  EXPECT_EQ(s.cdf(41.9), 0.0);
  EXPECT_EQ(s.quantile(0.0), 42.0);
  EXPECT_EQ(s.quantile(1.0), 42.0);
}

TEST(QuantileSketch, BoundHoldsOnHeavyTailedInput) {
  const auto xs = heavy_tailed_stream(50'000, 99);
  const QuantileSketch s = sketch_of(xs);
  EXPECT_LE(max_cdf_error(s, xs), s.rank_error_bound());
}

TEST(QuantileSketch, BoundHoldsWithNanInterleaved) {
  auto xs = heavy_tailed_stream(10'000, 3);
  for (std::size_t i = 0; i < xs.size(); i += 97) xs[i] = kNan;
  const QuantileSketch s = sketch_of(xs);
  EXPECT_EQ(s.nan_count(), (xs.size() + 96) / 97);
  EXPECT_LE(max_cdf_error(s, xs), s.rank_error_bound());
}

TEST(QuantileSketch, QuantileRankWithinDocumentedBound) {
  const auto xs = heavy_tailed_stream(30'000, 11);
  const QuantileSketch s = sketch_of(xs);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double bound = s.quantile_rank_error_bound();
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = s.quantile(q);
    // True normalized rank interval of v among the samples.
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), v);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), v);
    const double n = static_cast<double>(sorted.size());
    const double rank_lo = static_cast<double>(lo - sorted.begin()) / n;
    const double rank_hi = static_cast<double>(hi - sorted.begin()) / n;
    EXPECT_GE(rank_hi, q - bound) << "q=" << q;
    EXPECT_LE(rank_lo, q + bound) << "q=" << q;
  }
  EXPECT_THROW(s.quantile(-0.01), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.01), std::invalid_argument);
}

// --- merge algebra -----------------------------------------------------------

TEST(QuantileSketch, MergeRequiresMatchingK) {
  QuantileSketch a{16};
  QuantileSketch b{32};
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(QuantileSketch, MergeKeepsExactFieldsExact) {
  const auto xs = heavy_tailed_stream(7000, 1);
  const auto ys = heavy_tailed_stream(3000, 2);
  QuantileSketch a = sketch_of(xs);
  const QuantileSketch b = sketch_of(ys);
  a.merge(b);
  EXPECT_EQ(a.count(), xs.size() + ys.size());
  auto all = xs;
  all.insert(all.end(), ys.begin(), ys.end());
  EXPECT_EQ(a.min(), *std::min_element(all.begin(), all.end()));
  EXPECT_EQ(a.max(), *std::max_element(all.begin(), all.end()));
}

TEST(QuantileSketch, MergedBoundCoversMergedStream) {
  const auto xs = sorted_stream(9000);
  const auto ys = heavy_tailed_stream(11'000, 5);
  QuantileSketch a = sketch_of(xs);
  a.merge(sketch_of(ys));
  auto all = xs;
  all.insert(all.end(), ys.begin(), ys.end());
  EXPECT_LE(max_cdf_error(a, all), a.rank_error_bound());
}

TEST(QuantileSketch, MergeCommutesWithinBounds) {
  const auto xs = heavy_tailed_stream(5000, 21);
  const auto ys = sorted_stream(5000);
  QuantileSketch ab = sketch_of(xs);
  ab.merge(sketch_of(ys));
  QuantileSketch ba = sketch_of(ys);
  ba.merge(sketch_of(xs));
  EXPECT_EQ(ab.count(), ba.count());
  auto all = xs;
  all.insert(all.end(), ys.begin(), ys.end());
  // Both orders respect their own certified bound over the same stream.
  EXPECT_LE(max_cdf_error(ab, all), ab.rank_error_bound());
  EXPECT_LE(max_cdf_error(ba, all), ba.rank_error_bound());
  for (double q : {0.1, 0.5, 0.9}) {
    const double tol =
        (ab.quantile_rank_error_bound() + ba.quantile_rank_error_bound());
    // Quantile estimates agree to within the summed rank tolerance mapped
    // through the empirical inverse — compare via ranks, not values.
    Ecdf exact{all};
    EXPECT_NEAR(exact.at(ab.quantile(q)), exact.at(ba.quantile(q)), tol);
  }
}

TEST(QuantileSketch, MergeAssociatesWithinBounds) {
  const auto xs = heavy_tailed_stream(4000, 31);
  const auto ys = constant_stream(4000, 3.0);
  const auto zs = reverse_sorted_stream(4000);
  // (x + y) + z
  QuantileSketch left = sketch_of(xs);
  left.merge(sketch_of(ys));
  left.merge(sketch_of(zs));
  // x + (y + z)
  QuantileSketch yz = sketch_of(ys);
  yz.merge(sketch_of(zs));
  QuantileSketch right = sketch_of(xs);
  right.merge(yz);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  auto all = xs;
  all.insert(all.end(), ys.begin(), ys.end());
  all.insert(all.end(), zs.begin(), zs.end());
  EXPECT_LE(max_cdf_error(left, all), left.rank_error_bound());
  EXPECT_LE(max_cdf_error(right, all), right.rank_error_bound());
}

TEST(QuantileSketch, SelfMergeDoublesTheSketch) {
  const auto xs = heavy_tailed_stream(2000, 8);
  QuantileSketch s = sketch_of(xs);
  s.merge(s);
  EXPECT_EQ(s.count(), 2 * xs.size());
  EXPECT_LE(max_cdf_error(s, xs), s.rank_error_bound());  // same distribution
}

// --- determinism (the chaos-proof substrate) ---------------------------------

TEST(QuantileSketch, StreamDeterminism) {
  const auto xs = heavy_tailed_stream(25'000, 13);
  const QuantileSketch a = sketch_of(xs);
  const QuantileSketch b = sketch_of(xs);
  std::vector<std::uint8_t> ba, bb;
  a.serialize(ba);
  b.serialize(bb);
  EXPECT_EQ(ba, bb);  // byte-identical, not merely equal estimates
}

TEST(QuantileSketch, SplitStreamRebuildEqualsContinuousStream) {
  // The chaos recovery path: a sketch restored from bytes and fed the rest
  // of the stream must be byte-identical to one that saw it all. This holds
  // because inserts are deterministic in (state, input) — serialize captures
  // the full state.
  const auto xs = heavy_tailed_stream(10'000, 17);
  for (std::size_t split : {0u, 1u, 63u, 64u, 5000u, 9999u}) {
    QuantileSketch first{64};
    for (std::size_t i = 0; i < split; ++i) first.insert(xs[i]);
    std::vector<std::uint8_t> bytes;
    first.serialize(bytes);
    QuantileSketch resumed = QuantileSketch::deserialize(bytes);
    for (std::size_t i = split; i < xs.size(); ++i) resumed.insert(xs[i]);
    const QuantileSketch continuous = sketch_of(xs);
    std::vector<std::uint8_t> br, bc;
    resumed.serialize(br);
    continuous.serialize(bc);
    ASSERT_EQ(br, bc) << "split at " << split;
  }
}

// --- memory ------------------------------------------------------------------

TEST(QuantileSketch, StoredItemsStayLogarithmic) {
  QuantileSketch s{64};
  std::size_t worst = 0;
  util::Rng rng{23};
  for (std::size_t i = 0; i < 200'000; ++i) {
    s.insert(rng.uniform(0.0, 1.0));
    worst = std::max(worst, s.stored_items());
  }
  // k * (levels + 1) with levels ~ log2(N/k): for N=2e5, k=64 that is
  // 64 * (12 + 1); leave headroom but forbid anything near linear.
  EXPECT_LE(worst, 64u * 16u);
  EXPECT_LE(s.levels(), 14u);
}

// --- serialization -----------------------------------------------------------

TEST(QuantileSketch, SerializeRoundTripsAllStates) {
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 4096u}) {
    const auto xs = heavy_tailed_stream(n, n + 1);
    QuantileSketch s = sketch_of(xs);
    s.insert(kNan);
    std::vector<std::uint8_t> bytes;
    s.serialize(bytes);
    const QuantileSketch back = QuantileSketch::deserialize(bytes);
    std::vector<std::uint8_t> again;
    back.serialize(again);
    ASSERT_EQ(bytes, again) << "n=" << n;
    ASSERT_EQ(back.count(), s.count());
    ASSERT_EQ(back.nan_count(), s.nan_count());
  }
}

TEST(QuantileSketch, DeserializeRejectsCorruption) {
  QuantileSketch s = sketch_of(heavy_tailed_stream(1000, 5));
  std::vector<std::uint8_t> bytes;
  s.serialize(bytes);

  auto expect_rejected = [](std::vector<std::uint8_t> mutated) {
    EXPECT_THROW(QuantileSketch::deserialize(mutated), std::runtime_error);
  };
  // Truncations at every structural boundary.
  expect_rejected({});
  expect_rejected({bytes.begin(), bytes.begin() + 3});
  expect_rejected({bytes.begin(), bytes.end() - 1});
  // Bad magic and version.
  auto bad = bytes;
  bad[0] ^= 0xFF;
  expect_rejected(bad);
  bad = bytes;
  bad[4] = 0x7F;
  expect_rejected(bad);
  // Weighted-count conservation: tamper with the stored count field.
  bad = bytes;
  bad[5 + 4] ^= 0x01;  // first byte of count (after magic+version+k)
  expect_rejected(bad);
  // Trailing garbage is not silently swallowed by the whole-buffer variant.
  bad = bytes;
  bad.push_back(0);
  expect_rejected(bad);
}

TEST(QuantileSketch, CurveIsMonotoneAndSpansRange) {
  const auto xs = heavy_tailed_stream(5000, 41);
  const QuantileSketch s = sketch_of(xs);
  const auto curve = s.curve(33);
  ASSERT_EQ(curve.size(), 33u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].x, curve[i].x);
    EXPECT_LE(curve[i - 1].f, curve[i].f);
  }
  EXPECT_EQ(curve.front().x, s.quantile(0.0));
  EXPECT_EQ(curve.back().x, s.quantile(1.0));
}

}  // namespace
}  // namespace tl
