// Propagation, measurement events, load, coverage, and target selection.

#include <gtest/gtest.h>

#include <algorithm>

#include "geo/census.hpp"
#include "ran/coverage.hpp"
#include "ran/load.hpp"
#include "ran/measurement.hpp"
#include "ran/propagation.hpp"
#include "ran/target_selection.hpp"
#include "topology/deployment.hpp"

namespace tl::ran {
namespace {

struct World {
  geo::Country country;
  topology::Deployment deployment;
  CoverageMap coverage;
};

const World& world() {
  static const World w = [] {
    geo::CensusConfig cc;
    cc.districts = 60;
    cc.total_population = 9'000'000;
    cc.seed = 21;
    geo::Country country = geo::synthesize_country(cc);
    topology::DeploymentConfig dc;
    dc.scale = 0.02;
    dc.seed = 22;
    topology::Deployment dep = topology::Deployment::build(country, dc);
    CoverageMap cov = CoverageMap::build(country, dep, {});
    return World{std::move(country), std::move(dep), std::move(cov)};
  }();
  return w;
}

TEST(Propagation, PathLossGrowsWithDistance) {
  const RadioParams p = radio_params(topology::Rat::kG4);
  EXPECT_LT(path_loss_db(p, 0.1), path_loss_db(p, 1.0));
  EXPECT_LT(path_loss_db(p, 1.0), path_loss_db(p, 10.0));
  // Log-distance: +10*n dB per decade.
  EXPECT_NEAR(path_loss_db(p, 10.0) - path_loss_db(p, 1.0),
              10.0 * p.path_loss_exponent, 1e-9);
}

TEST(Propagation, HigherFrequencyShrinksCells) {
  EXPECT_GT(cell_radius_km(topology::Rat::kG2), cell_radius_km(topology::Rat::kG5Nr));
  EXPECT_GT(cell_radius_km(topology::Rat::kG2), 1.0);
}

TEST(Propagation, ShadowingCentersOnMedian) {
  const RadioParams p = radio_params(topology::Rat::kG4);
  util::Rng rng{1};
  double sum = 0.0;
  constexpr int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rsrp_dbm(p, 1.0, rng);
  EXPECT_NEAR(sum / n, median_rsrp_dbm(p, 1.0), 0.2);
}

TEST(Propagation, RsrqDegradesWithLoad) {
  EXPECT_GT(rsrq_db(-80.0, 0.0), rsrq_db(-80.0, 1.0));
  EXPECT_GT(rsrq_db(-70.0, 0.5), rsrq_db(-100.0, 0.5));
}

TEST(Measurement, A2FiresBelowThreshold) {
  const MobilityConfig cfg;
  EXPECT_TRUE(a2_fires(cfg, {0, -110.0, -15.0}));
  EXPECT_FALSE(a2_fires(cfg, {0, -90.0, -10.0}));
  // Hysteresis keeps borderline serving cells attached.
  EXPECT_FALSE(a2_fires(cfg, {0, cfg.a2_threshold_dbm - 0.5, -12.0}));
}

TEST(Measurement, A3RequiresOffsetPlusHysteresis) {
  const MobilityConfig cfg;  // offset 3 dB, hysteresis 1 dB
  const CellMeasurement serving{1, -95.0, -12.0};
  EXPECT_FALSE(a3_fires(cfg, serving, {2, -93.0, -12.0}));  // +2 dB: not enough
  EXPECT_FALSE(a3_fires(cfg, serving, {2, -91.5, -12.0}));  // +3.5 dB: not enough
  EXPECT_TRUE(a3_fires(cfg, serving, {2, -90.5, -12.0}));   // +4.5 dB: fires
}

TEST(Measurement, EvaluateReportPicksBestNeighbor) {
  const MobilityConfig cfg;
  MeasurementReport report;
  report.serving = {1, -100.0, -14.0};
  report.neighbors = {{2, -94.0, -12.0}, {3, -92.0, -12.0}, {4, -99.0, -13.0}};
  CellMeasurement best;
  EXPECT_EQ(evaluate_report(cfg, report, &best), TriggerEvent::kA3);
  EXPECT_EQ(best.sector, 3u);

  report.neighbors = {{2, -120.0, -18.0}};
  report.serving = {1, -112.0, -16.0};
  EXPECT_EQ(evaluate_report(cfg, report, nullptr), TriggerEvent::kA2);

  report.serving = {1, -80.0, -10.0};
  EXPECT_EQ(evaluate_report(cfg, report, nullptr), TriggerEvent::kNone);
}

TEST(LoadModel, OverloadRampIsZeroBelowThreshold) {
  EXPECT_EQ(LoadModel::overload_rejection_probability(0.5), 0.0);
  EXPECT_EQ(LoadModel::overload_rejection_probability(0.92), 0.0);
  EXPECT_GT(LoadModel::overload_rejection_probability(1.1), 0.0);
  EXPECT_LE(LoadModel::overload_rejection_probability(5.0), 0.60);
}

TEST(LoadModel, UtilizationFollowsDiurnalShape) {
  const mobility::ActivityModel activity;
  const LoadModel lm{activity, 5};
  topology::RadioSector s;
  s.id = 7;
  s.area_type = geo::AreaType::kUrban;
  s.capacity = 1.0f;
  // Peak-hour bin (16) loads higher than deep night (bin 5).
  EXPECT_GT(lm.utilization(s, 0, 16), lm.utilization(s, 0, 5));
  // Deterministic per (sector, day, bin).
  EXPECT_EQ(lm.utilization(s, 3, 20), lm.utilization(s, 3, 20));
}

TEST(Coverage, SparseAreasHaveHigherFallback) {
  const auto& w = world();
  // Fallback pressure must be monotone in 4G sector density: compare the
  // densest decile of postcodes against the sparsest.
  std::vector<std::pair<double, double>> density_and_p;  // (density, p_3g)
  for (const auto& pc : w.country.postcodes()) {
    const auto& profile = w.coverage.at(pc.id);
    density_and_p.emplace_back(profile.density_4g5g, profile.p_fallback_3g);
  }
  std::sort(density_and_p.begin(), density_and_p.end());
  const std::size_t decile = density_and_p.size() / 10;
  ASSERT_GT(decile, 10u);
  double sparse_mean = 0, dense_mean = 0;
  for (std::size_t i = 0; i < decile; ++i) {
    sparse_mean += density_and_p[i].second;
    dense_mean += density_and_p[density_and_p.size() - 1 - i].second;
  }
  // The gradient is deliberately mild (Fig. 12 allows only a ~1.3x rural
  // HOF excess); the Fig. 9b extremes come from pinned coverage holes.
  EXPECT_GT(sparse_mean, 1.2 * dense_mean);
  int pinned = 0;
  for (const auto& pc : w.country.postcodes()) {
    const auto& profile = w.coverage.at(pc.id);
    if (profile.pinned_3g) {
      ++pinned;
      EXPECT_GE(profile.p_fallback_3g, 0.4);
    }
  }
  EXPECT_GT(pinned, 0);
}

TEST(Coverage, DeviceMultiplierOrdering) {
  EXPECT_EQ(CoverageMap::device_fallback_multiplier(devices::DeviceType::kSmartphone), 1.0);
  EXPECT_LT(CoverageMap::device_fallback_multiplier(devices::DeviceType::kM2mIot), 0.1);
  EXPECT_LT(CoverageMap::device_fallback_multiplier(devices::DeviceType::kFeaturePhone),
            0.2);
}

TEST(Coverage, RecalibrationHitsTarget) {
  CoverageMap cov = CoverageMap::build(world().country, world().deployment, {});
  const std::size_t n = world().country.postcodes().size();
  std::vector<double> volume(n, 1.0);
  std::vector<double> with_3g(n, 1.0);
  cov.recalibrate(volume, with_3g, 0.10);
  double mean = 0.0;
  for (const auto& p : cov.profiles()) mean += p.p_fallback_3g;
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, 0.10, 0.02);
}

TEST(Coverage, LegacyDistrictsCarryElevated2g) {
  int elevated = 0;
  for (const auto& p : world().coverage.profiles()) {
    if (p.p_fallback_2g >= 0.002) ++elevated;
  }
  EXPECT_GT(elevated, 0);
}

TEST(TargetSelector, NeverPicksUnsupportedNr) {
  const auto& w = world();
  const TargetSelector selector{w.deployment, w.coverage};
  devices::Ue ue;
  ue.rat_support = topology::RatSupport::kUpTo4G;  // no 5G
  util::Rng rng{9};
  for (const auto& site : w.deployment.sites()) {
    const auto sector =
        selector.pick_sector(site.id, topology::ObservedRat::kG45Nsa, ue, rng);
    if (!sector) continue;
    EXPECT_NE(w.deployment.sector(*sector).rat, topology::Rat::kG5Nr);
  }
}

TEST(TargetSelector, FiveGCapableUesReachNrLayers) {
  const auto& w = world();
  const TargetSelector selector{w.deployment, w.coverage};
  devices::Ue ue;
  ue.rat_support = topology::RatSupport::kUpTo5G;
  util::Rng rng{10};
  int nr_hits = 0;
  for (const auto& site : w.deployment.sites()) {
    const auto sector =
        selector.pick_sector(site.id, topology::ObservedRat::kG45Nsa, ue, rng);
    if (sector && w.deployment.sector(*sector).rat == topology::Rat::kG5Nr) ++nr_hits;
  }
  EXPECT_GT(nr_hits, 0);
}

TEST(TargetSelector, FallbackSharesFollowDeviceMultiplier) {
  const auto& w = world();
  const TargetSelector selector{w.deployment, w.coverage};
  util::Rng rng{11};
  // A rural postcode with 3G availability.
  geo::PostcodeId rural_pc = 0;
  for (const auto& pc : w.country.postcodes()) {
    if (pc.area_type() == geo::AreaType::kRural &&
        w.coverage.at(pc.id).has_rat[static_cast<std::size_t>(topology::Rat::kG3)]) {
      rural_pc = pc.id;
      break;
    }
  }
  devices::Ue phone;
  phone.type = devices::DeviceType::kSmartphone;
  devices::Ue meter;
  meter.type = devices::DeviceType::kM2mIot;
  int phone_fallbacks = 0, meter_fallbacks = 0;
  constexpr int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (selector.decide(phone, rural_pc, false, rng).target_rat ==
        topology::ObservedRat::kG3) {
      ++phone_fallbacks;
    }
    if (selector.decide(meter, rural_pc, false, rng).target_rat ==
        topology::ObservedRat::kG3) {
      ++meter_fallbacks;
    }
  }
  EXPECT_GT(phone_fallbacks, 5 * meter_fallbacks);
}

TEST(TargetSelector, VoiceFallbackIsMarkedSrvcc) {
  const auto& w = world();
  const TargetSelector selector{w.deployment, w.coverage};
  util::Rng rng{12};
  devices::Ue phone;
  phone.type = devices::DeviceType::kSmartphone;
  geo::PostcodeId pc = 0;
  for (const auto& p : w.country.postcodes()) {
    if (w.coverage.at(p.id).has_rat[static_cast<std::size_t>(topology::Rat::kG3)]) {
      pc = p.id;
      break;
    }
  }
  for (int i = 0; i < 200'000; ++i) {
    const auto d = selector.decide(phone, pc, true, rng);
    if (d.target_rat == topology::ObservedRat::kG3) {
      EXPECT_TRUE(d.srvcc);
      return;
    }
  }
  FAIL() << "voice fallback never drawn";
}

}  // namespace
}  // namespace tl::ran
