// Fault-injection, recovery and degradation-tolerance tests: determinism
// under a fixed seed, outage suppression in the serving-sector lookup,
// recovery backoff caps and re-attempt records, quarantine counters, and
// day-checkpoint resume equivalence.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "core/simulator.hpp"
#include "faults/recovery.hpp"
#include "faults/scenarios.hpp"
#include "telemetry/aggregates.hpp"
#include "telemetry/signaling_dataset.hpp"

namespace tl::faults {
namespace {

using core::DayCheckpoint;
using core::Simulator;
using core::StudyConfig;
using telemetry::HandoverRecord;
using topology::kInvalidSector;

StudyConfig small_config() {
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.days = 2;
  cfg.population.count = 1'500;
  return cfg;
}

std::vector<HandoverRecord> run_records(const StudyConfig& cfg,
                                        const FaultSchedule* schedule = nullptr) {
  Simulator sim{cfg};
  if (schedule != nullptr) sim.set_fault_schedule(schedule);
  telemetry::SignalingDataset dataset;
  sim.add_sink(&dataset);
  sim.run();
  return {dataset.records().begin(), dataset.records().end()};
}

void expect_identical(const std::vector<HandoverRecord>& a,
                      const std::vector<HandoverRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].timestamp, b[i].timestamp) << "record " << i;
    ASSERT_EQ(a[i].success, b[i].success) << "record " << i;
    ASSERT_EQ(a[i].duration_ms, b[i].duration_ms) << "record " << i;
    ASSERT_EQ(a[i].cause, b[i].cause) << "record " << i;
    ASSERT_EQ(a[i].anon_user_id, b[i].anon_user_id) << "record " << i;
    ASSERT_EQ(a[i].source_sector, b[i].source_sector) << "record " << i;
    ASSERT_EQ(a[i].target_sector, b[i].target_sector) << "record " << i;
    ASSERT_EQ(a[i].attempt, b[i].attempt) << "record " << i;
  }
}

// --- schedule unit behaviour -------------------------------------------------

TEST(FaultSchedule, EventWindowsAndScopes) {
  FaultSchedule schedule;
  schedule.add(sector_outage(7, at_hour(0, 10.0), at_hour(0, 14.0)));
  schedule.add(vendor_bug_wave(topology::Vendor::kV2, at_hour(1, 0.0), at_hour(2, 0.0), 5.0));
  schedule.add(signaling_storm(geo::Region::kWest, at_hour(0, 8.0), at_hour(0, 9.0), 0.4));
  schedule.add(core_overload_storm(geo::Region::kWest, at_hour(0, 8.0), at_hour(0, 9.0),
                                   3.0, 0.2));
  EXPECT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.size(), 4u);
  EXPECT_EQ(schedule.outages().size(), 1u);
  EXPECT_EQ(schedule.modifiers().size(), 3u);

  // Outage matches only its sector, only inside the window.
  EXPECT_TRUE(schedule.sector_out(7, 0, at_hour(0, 12.0)));
  EXPECT_FALSE(schedule.sector_out(7, 0, at_hour(0, 9.9)));
  EXPECT_FALSE(schedule.sector_out(7, 0, at_hour(0, 14.0)));  // end exclusive
  EXPECT_FALSE(schedule.sector_out(8, 0, at_hour(0, 12.0)));

  // Bug wave multiplies only the matching vendor inside the window.
  EXPECT_DOUBLE_EQ(
      schedule.hof_multiplier(0, topology::Vendor::kV2, geo::Region::kNorth, at_hour(1, 6.0)),
      5.0);
  EXPECT_DOUBLE_EQ(
      schedule.hof_multiplier(0, topology::Vendor::kV1, geo::Region::kNorth, at_hour(1, 6.0)),
      1.0);
  EXPECT_DOUBLE_EQ(
      schedule.hof_multiplier(0, topology::Vendor::kV2, geo::Region::kNorth, at_hour(0, 6.0)),
      1.0);

  // Storm boosts stack; only the core storm carries a HOF multiplier.
  EXPECT_DOUBLE_EQ(schedule.overload_boost(geo::Region::kWest, at_hour(0, 8.5)),
                   0.4 + 0.2);
  EXPECT_DOUBLE_EQ(schedule.overload_boost(geo::Region::kNorth, at_hour(0, 8.5)), 0.0);
  EXPECT_DOUBLE_EQ(
      schedule.hof_multiplier(0, topology::Vendor::kV1, geo::Region::kWest, at_hour(0, 8.5)),
      3.0);
}

TEST(FaultSchedule, ForcedOffCoversOverlappingBins) {
  FaultSchedule schedule;
  // 10:15-10:45 overlaps bins 20 ([10:00,10:30)) and 21 ([10:30,11:00)).
  schedule.add(sector_outage(3, at_hour(0, 10.25), at_hour(0, 10.75)));
  topology::RadioSector sector;
  sector.id = 3;
  sector.site = 1;
  EXPECT_TRUE(schedule.forced_off(sector, 0, 20));
  EXPECT_TRUE(schedule.forced_off(sector, 0, 21));
  EXPECT_FALSE(schedule.forced_off(sector, 0, 19));
  EXPECT_FALSE(schedule.forced_off(sector, 0, 22));
  EXPECT_FALSE(schedule.forced_off(sector, 1, 20));
  sector.id = 4;
  EXPECT_FALSE(schedule.forced_off(sector, 0, 20));
}

TEST(Scenarios, SectorDayIncidentsAreSeedDeterministic) {
  const StudyConfig cfg = small_config();
  const Simulator sim{cfg};
  const Scenario a = sector_day_incidents(sim.deployment(), 3, 2.0, 99);
  const Scenario b = sector_day_incidents(sim.deployment(), 3, 2.0, 99);
  const Scenario c = sector_day_incidents(sim.deployment(), 3, 2.0, 100);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].sector, b.events[i].sector);
    EXPECT_EQ(a.events[i].start, b.events[i].start);
    EXPECT_EQ(a.events[i].end, b.events[i].end);
  }
  EXPECT_GT(a.events.size(), 0u);
  bool differs = a.events.size() != c.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].sector != c.events[i].sector || a.events[i].start != c.events[i].start;
  }
  EXPECT_TRUE(differs);
}

// --- simulator integration ---------------------------------------------------

TEST(FaultInjection, EmptyScheduleIsByteIdentical) {
  const StudyConfig cfg = small_config();
  const auto baseline = run_records(cfg);
  const FaultSchedule empty;
  const auto with_empty = run_records(cfg, &empty);
  expect_identical(baseline, with_empty);
}

TEST(FaultInjection, SameScheduleSameSeedIsByteIdentical) {
  const StudyConfig cfg = small_config();
  FaultSchedule schedule;
  schedule.add(vendor_bug_wave(topology::Vendor::kV1, at_hour(0, 6.0), at_hour(0, 18.0), 8.0));
  schedule.add(signaling_storm(geo::Region::kCapital, at_hour(0, 8.0), at_hour(0, 10.0), 0.5));
  const auto a = run_records(cfg, &schedule);
  const auto b = run_records(cfg, &schedule);
  expect_identical(a, b);
}

TEST(FaultInjection, OutageSuppressesSectorInsideWindowOnly) {
  const StudyConfig cfg = small_config();
  const auto baseline = run_records(cfg);

  // Busiest day-0 target: the sector most exposed to the outage.
  std::vector<std::uint64_t> day0_targets;
  for (const auto& r : baseline) {
    if (r.day() != 0) continue;
    if (r.target_sector >= day0_targets.size()) day0_targets.resize(r.target_sector + 1, 0);
    ++day0_targets[r.target_sector];
  }
  ASSERT_FALSE(day0_targets.empty());
  topology::SectorId victim = 0;
  for (topology::SectorId s = 0; s < day0_targets.size(); ++s) {
    if (day0_targets[s] > day0_targets[victim]) victim = s;
  }
  ASSERT_GT(day0_targets[victim], 0u);

  FaultSchedule schedule;
  schedule.add(single_sector_drill(victim, 0, 0.0, 24.0).events.front());
  const auto faulted = run_records(cfg, &schedule);

  std::uint64_t in_window = 0, day1 = 0;
  for (const auto& r : faulted) {
    if (r.day() == 0 && (r.source_sector == victim || r.target_sector == victim)) {
      ++in_window;
    }
    if (r.day() == 1 && (r.source_sector == victim || r.target_sector == victim)) ++day1;
  }
  EXPECT_EQ(in_window, 0u) << "outage window must fully suppress the sector";

  std::uint64_t baseline_day1 = 0;
  for (const auto& r : baseline) {
    if (r.day() == 1 && (r.source_sector == victim || r.target_sector == victim)) {
      ++baseline_day1;
    }
  }
  // Day 1 is outside the window; per-day RNG streams are independent, so the
  // sector's traffic there is byte-identical to baseline.
  EXPECT_EQ(day1, baseline_day1);
}

TEST(FaultInjection, VendorBugWaveInflatesOnlyItsScope) {
  const StudyConfig cfg = small_config();
  const auto baseline = run_records(cfg);

  FaultSchedule schedule;
  schedule.add(vendor_bug_wave(topology::Vendor::kV1, at_hour(0, 0.0), at_hour(1, 0.0), 20.0));
  const auto faulted = run_records(cfg, &schedule);

  const auto day0_vendor_failures = [](const std::vector<HandoverRecord>& records,
                                       topology::Vendor vendor) {
    std::uint64_t failures = 0;
    for (const auto& r : records) {
      if (r.day() == 0 && r.vendor == vendor && !r.success) ++failures;
    }
    return failures;
  };
  EXPECT_GT(day0_vendor_failures(faulted, topology::Vendor::kV1),
            2 * day0_vendor_failures(baseline, topology::Vendor::kV1));

  // Day 1 (outside the wave) is byte-identical: days are independent units.
  std::vector<HandoverRecord> base_day1, fault_day1;
  for (const auto& r : baseline) {
    if (r.day() == 1) base_day1.push_back(r);
  }
  for (const auto& r : faulted) {
    if (r.day() == 1) fault_day1.push_back(r);
  }
  expect_identical(base_day1, fault_day1);
}

TEST(FaultInjection, IncidentWindowAggregatorSeesTheDip) {
  const StudyConfig cfg = small_config();
  const auto baseline = run_records(cfg);
  std::vector<std::uint64_t> targets;
  for (const auto& r : baseline) {
    if (r.day() != 0) continue;
    if (r.target_sector >= targets.size()) targets.resize(r.target_sector + 1, 0);
    ++targets[r.target_sector];
  }
  topology::SectorId victim = 0;
  for (topology::SectorId s = 0; s < targets.size(); ++s) {
    if (targets[s] > targets[victim]) victim = s;
  }

  const auto window_start = at_hour(0, 8.0);
  const auto window_end = at_hour(0, 16.0);
  FaultSchedule schedule;
  schedule.add(sector_outage(victim, window_start, window_end));

  Simulator sim{cfg};
  sim.set_fault_schedule(&schedule);
  telemetry::IncidentWindowAggregator window{window_start, window_end,
                                             sim.deployment().sectors().size()};
  sim.add_sink(&window);
  sim.run();

  using Phase = telemetry::IncidentWindowAggregator::Phase;
  EXPECT_EQ(window.targeting(victim, Phase::kDuring), 0u);
  EXPECT_GT(window.targeting(victim, Phase::kBefore) + window.targeting(victim, Phase::kAfter),
            0u);
  EXPECT_GT(window.national(Phase::kDuring).handovers, 0u);
}

// --- recovery ----------------------------------------------------------------

TEST(Recovery, BackoffIsCappedExponential) {
  RecoveryConfig cfg;
  cfg.backoff_base_ms = 100.0;
  cfg.backoff_factor = 2.0;
  cfg.backoff_cap_ms = 500.0;
  const RecoveryModel model{cfg};
  EXPECT_DOUBLE_EQ(model.backoff_ms(1), 100.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(2), 200.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(3), 400.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(4), 500.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(10), 500.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(0), 0.0);
}

TEST(Recovery, DecisionRespectsJitterBoundsAndAttemptCap) {
  RecoveryConfig cfg;
  cfg.p_reattempt_target = 1.0;
  cfg.max_reattempts = 3;
  cfg.backoff_base_ms = 100.0;
  cfg.backoff_factor = 2.0;
  cfg.backoff_cap_ms = 1'000.0;
  cfg.backoff_jitter = 0.25;
  const RecoveryModel model{cfg};
  util::Rng rng{7};
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 1 + trial % 3;
    const RecoveryDecision d = model.decide(k, rng);
    ASSERT_EQ(d.action, RecoveryAction::kReestablishTarget);
    const double nominal = model.backoff_ms(k);
    EXPECT_GE(d.backoff_ms, nominal * 0.75 - 1e-9);
    EXPECT_LE(d.backoff_ms, nominal * 1.25 + 1e-9);
  }
  EXPECT_EQ(model.decide(4, rng).action, RecoveryAction::kFallbackToSource);
}

TEST(Recovery, EmitsDeterministicReattemptRecords) {
  StudyConfig cfg = small_config();
  cfg.days = 1;
  cfg.recovery.enabled = true;
  cfg.recovery.p_reattempt_target = 1.0;
  const auto a = run_records(cfg);
  const auto b = run_records(cfg);
  expect_identical(a, b);

  std::uint64_t reattempts = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& r = a[i];
    if (r.attempt == 0) continue;
    ++reattempts;
    // A re-attempt record continues the chain of the record before it: same
    // UE, same target, strictly later execution time.
    ASSERT_GT(i, 0u);
    const auto& prev = a[i - 1];
    EXPECT_EQ(prev.anon_user_id, r.anon_user_id);
    EXPECT_EQ(prev.target_sector, r.target_sector);
    EXPECT_EQ(prev.attempt + 1, r.attempt);
    EXPECT_FALSE(prev.success);
    EXPECT_LT(prev.timestamp, r.timestamp);
    EXPECT_LE(static_cast<int>(r.attempt), cfg.recovery.max_reattempts);
  }
  EXPECT_GT(reattempts, 0u) << "some failures must spawn re-attempt chains";

  // Stock pipeline: no re-attempts ever.
  StudyConfig stock = small_config();
  stock.days = 1;
  for (const auto& r : run_records(stock)) EXPECT_EQ(r.attempt, 0);
}

// --- degradation-tolerant telemetry ------------------------------------------

TEST(ValidatingSink, QuarantinesMalformedRecordsWithCounters) {
  telemetry::SignalingDataset inner;
  telemetry::ValidationLimits limits;
  limits.sector_count = 100;
  telemetry::ValidatingSink sink{inner, limits, 8};

  telemetry::HandoverRecord clean;
  clean.timestamp = 1'000;
  clean.source_sector = 1;
  clean.target_sector = 2;
  clean.success = true;
  clean.cause = corenet::kCauseNone;
  clean.duration_ms = 40.0f;
  sink.consume(clean);

  auto bad = clean;
  bad.target_sector = kInvalidSector;
  sink.consume(bad);
  bad = clean;
  bad.source_sector = 100;  // == sector_count: out of range
  sink.consume(bad);
  bad = clean;
  bad.target_sector = clean.source_sector;
  sink.consume(bad);
  bad = clean;
  bad.duration_ms = -1.0f;
  sink.consume(bad);
  bad = clean;
  bad.timestamp = -5;
  sink.consume(bad);
  bad = clean;
  bad.success = false;  // failure without a cause
  sink.consume(bad);
  bad = clean;
  bad.cause = corenet::kCause8RelocationTimeout;  // success with a cause
  sink.consume(bad);

  // Close day 0, then feed a day-0 straggler: time regression.
  sink.on_day_end(0);
  sink.consume(clean);

  using telemetry::RecordDefect;
  EXPECT_EQ(sink.forwarded(), 1u);
  EXPECT_EQ(sink.quarantined(), 8u);
  EXPECT_EQ(inner.size(), 1u);
  EXPECT_EQ(sink.count(RecordDefect::kBadSectorId), 2u);
  EXPECT_EQ(sink.count(RecordDefect::kSelfHandover), 1u);
  EXPECT_EQ(sink.count(RecordDefect::kBadDuration), 1u);
  EXPECT_EQ(sink.count(RecordDefect::kBadTimestamp), 1u);
  EXPECT_EQ(sink.count(RecordDefect::kCauseMismatch), 2u);
  EXPECT_EQ(sink.count(RecordDefect::kTimeRegression), 1u);
  EXPECT_EQ(sink.quarantine_sample().size(), 8u);
  EXPECT_EQ(sink.completed_day(), 0);

  // A day-1 record passes after the watermark moved.
  auto later = clean;
  later.timestamp = util::kMsPerDay + 1'000;
  sink.consume(later);
  EXPECT_EQ(sink.forwarded(), 2u);
}

TEST(ValidatingSink, IsTransparentForTheOrganicStream) {
  StudyConfig cfg = small_config();
  cfg.days = 1;
  const auto baseline = run_records(cfg);

  Simulator sim{cfg};
  telemetry::SignalingDataset inner;
  telemetry::ValidationLimits limits;
  limits.sector_count =
      static_cast<std::uint32_t>(sim.deployment().sectors().size());
  telemetry::ValidatingSink sink{inner, limits};
  sim.add_sink(&sink);
  sim.run();

  EXPECT_EQ(sink.quarantined(), 0u);
  EXPECT_EQ(sink.forwarded(), baseline.size());
  expect_identical(baseline, {inner.records().begin(), inner.records().end()});
}

// --- checkpoint / resume -----------------------------------------------------

TEST(Checkpoint, ResumeEmitsIdenticalRecords) {
  const StudyConfig cfg = small_config();  // 2 days

  telemetry::SignalingDataset uninterrupted;
  Simulator full{cfg};
  full.add_sink(&uninterrupted);
  full.run();

  // "Crash" after day 0: day 0 records from the first instance...
  telemetry::SignalingDataset part0;
  Simulator first{cfg};
  first.add_sink(&part0);
  first.run_day(0);
  EXPECT_EQ(first.next_day(), 1);
  const DayCheckpoint cp = first.checkpoint();

  // ...and the rest from a fresh instance restored from the checkpoint.
  telemetry::SignalingDataset part1;
  Simulator second{cfg};
  second.restore(cp);
  second.add_sink(&part1);
  second.run();
  EXPECT_EQ(second.next_day(), cfg.days);
  EXPECT_EQ(second.records_emitted(), full.records_emitted());
  for (const auto region : geo::kAllRegions) {
    EXPECT_EQ(second.core_network().mme(region).handovers.procedures,
              full.core_network().mme(region).handovers.procedures);
  }

  std::vector<HandoverRecord> stitched{part0.records().begin(), part0.records().end()};
  stitched.insert(stitched.end(), part1.records().begin(), part1.records().end());
  expect_identical({uninterrupted.records().begin(), uninterrupted.records().end()},
                   stitched);
}

TEST(Checkpoint, FileRoundTripAndValidation) {
  const std::string path = ::testing::TempDir() + "telcolens_ckpt_test.checkpoint";
  std::remove(path.c_str());

  StudyConfig cfg = small_config();
  cfg.checkpoint_path = path;

  telemetry::SignalingDataset uninterrupted;
  {
    StudyConfig plain = small_config();
    Simulator full{plain};
    full.add_sink(&uninterrupted);
    full.run();
  }

  // First instance completes day 0 and "crashes" (falls out of scope).
  telemetry::SignalingDataset part0;
  {
    Simulator first{cfg};
    first.add_sink(&part0);
    first.run_day(0);
    first.save_checkpoint(path);
  }

  // Second instance resumes from the file inside run().
  telemetry::SignalingDataset part1;
  Simulator second{cfg};
  second.add_sink(&part1);
  second.run();
  EXPECT_EQ(second.next_day(), cfg.days);

  std::vector<HandoverRecord> stitched{part0.records().begin(), part0.records().end()};
  stitched.insert(stitched.end(), part1.records().begin(), part1.records().end());
  expect_identical({uninterrupted.records().begin(), uninterrupted.records().end()},
                   stitched);

  // A finished run's checkpoint makes a further run() a no-op.
  telemetry::SignalingDataset nothing;
  Simulator third{cfg};
  third.add_sink(&nothing);
  third.run();
  EXPECT_EQ(nothing.size(), 0u);

  // Seed mismatch and corruption are rejected loudly.
  StudyConfig other = cfg;
  other.seed = 777;
  Simulator mismatched{other};
  EXPECT_THROW(mismatched.load_checkpoint(path), std::runtime_error);

  {
    std::ofstream os{path, std::ios::trunc};
    os << "not a checkpoint\n";
  }
  Simulator fourth{cfg};
  EXPECT_THROW(fourth.load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());

  // Missing file: load returns false and run starts from day 0.
  Simulator fifth{cfg};
  EXPECT_FALSE(fifth.load_checkpoint(path));
  EXPECT_EQ(fifth.next_day(), 0);
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoreRejectsMismatchedSeedAndRange) {
  const StudyConfig cfg = small_config();
  Simulator sim{cfg};
  DayCheckpoint cp = sim.checkpoint();
  cp.seed ^= 1;
  EXPECT_THROW(sim.restore(cp), std::invalid_argument);
  cp = sim.checkpoint();
  cp.next_day = cfg.days + 1;
  EXPECT_THROW(sim.restore(cp), std::invalid_argument);
}

}  // namespace
}  // namespace tl::faults
