// Resource-governance tests: MemoryBudget accounting + hysteretic pressure
// levels, PressurePlan injection, BackpressureGate semantics and the
// throttled-merge byte-identity proof, the allocation-failure status
// taxonomy with governor-granted degraded retries, WAL follow() hardening
// for runt segments, checkpoint-under-ENOSPC, and the pressure chaos suite:
// seeded budget-clamp schedules (TL_CHAOS_SCHEDULES elevates the count in
// CI) under which a governed WalTailer either converges byte-identically to
// an unpressured oracle or emits explicit degradation events whose
// certified rank-error bounds hold against an exact ECDF over the declared
// admitted substream — with national tallies exact either way.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/ecdf.hpp"
#include "exec/sharded_runner.hpp"
#include "govern/governor.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "serve/stream_aggregates.hpp"
#include "serve/wal_tailer.hpp"
#include "supervise/retry.hpp"
#include "supervise/status.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/sinks.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tl {
namespace {

using govern::Accountant;
using govern::BackpressureGate;
using govern::MemoryBudget;
using govern::PressureLevel;
using govern::PressurePlan;
using govern::ScopedGlobalGovernor;
using serve::DegradeLevel;
using serve::StreamAggregates;
using serve::WalTailer;
using telemetry::HandoverRecord;
using telemetry::LogCursor;
using telemetry::RecordLog;
using telemetry::TailState;

namespace stdfs = std::filesystem;

// --- helpers (mirroring tests/test_serve.cpp) --------------------------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_govern_" + name) {
    stdfs::remove_all(path);
  }
  ~TempDir() { stdfs::remove_all(path); }
  std::string path;
};

/// Deterministic in (day, i) — the chaos proofs rebuild the "true" stream
/// from these, including the declared sampled substream.
HandoverRecord make_record(int day, std::uint32_t i) {
  HandoverRecord r;
  r.timestamp = static_cast<util::TimestampMs>(day) * util::kMsPerDay +
                500 * static_cast<util::TimestampMs>(i + 1);
  r.success = (i % 5) != 0;
  r.duration_ms = (i % 83 == 0) ? std::numeric_limits<float>::quiet_NaN()
                                : 25.0f + static_cast<float>((i * 7 + day) % 120);
  r.cause = r.success ? corenet::kCauseNone
                      : static_cast<corenet::CauseId>(2 + i % 4);
  r.anon_user_id = 0xAB00000000ULL + i;
  r.source_sector = 100 + i % 17;
  r.target_sector = 200 + i % 13;
  r.source_rat = topology::ObservedRat::kG45Nsa;
  r.target_rat = static_cast<topology::ObservedRat>(i % 3);
  r.device_type = static_cast<devices::DeviceType>(i % 3);
  r.manufacturer = static_cast<devices::ManufacturerId>(i % 5);
  r.postcode = 700 + i % 9;
  r.district = static_cast<geo::DistrictId>(1 + i % 6);
  r.area = (i % 2) ? geo::AreaType::kUrban : geo::AreaType::kRural;
  r.region = geo::Region::kCapital;
  r.vendor = static_cast<topology::Vendor>(i % 4);
  r.srvcc = (i % 11 == 0);
  r.attempt = static_cast<std::uint8_t>(i % 2);
  return r;
}

constexpr int kPerDay = 150;

void build_wal(const std::string& dir, int days,
               std::uint64_t max_segment_bytes = 16 * 1024) {
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = dir;
  opt.max_segment_bytes = max_segment_bytes;
  opt.write_chunk_bytes = 512;
  RecordLog log{real, opt};
  log.open();
  for (int day = 0; day < days; ++day) {
    for (std::uint32_t i = 0; i < kPerDay; ++i) log.append(make_record(day, i));
    const std::vector<std::uint8_t> state{static_cast<std::uint8_t>(day), 0x5A};
    log.commit_day(day, state);
  }
}

void copy_wal(const std::string& from, const std::string& to) {
  stdfs::create_directories(to);
  auto& real = io::StdioFileSystem::instance();
  for (const auto& name : real.list(from, "wal-")) {
    stdfs::copy_file(from + "/" + name, to + "/" + name,
                     stdfs::copy_options::overwrite_existing);
  }
}

struct CollectingSink final : telemetry::RecordSink {
  std::vector<HandoverRecord> records;
  std::vector<int> days;
  void consume(const HandoverRecord& r) override { records.push_back(r); }
  void on_day_end(int day) override { days.push_back(day); }
};

int chaos_schedule_count() {
  if (const char* env = std::getenv("TL_CHAOS_SCHEDULES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 100;
}

// --- MemoryBudget ------------------------------------------------------------

TEST(MemoryBudget, AccountantsShareSlotsByNameAndTrackPeak) {
  MemoryBudget budget;  // budget 0: accounting only, always Steady
  Accountant a1 = budget.accountant("shard_buffers");
  Accountant a2 = budget.accountant("shard_buffers");
  Accountant b = budget.accountant("wal_day_buffer");
  EXPECT_TRUE(a1.live());

  a1.add(100);
  a2.add(50);
  b.add(25);
  EXPECT_EQ(a1.bytes(), 150u);  // same slot, both holders combined
  EXPECT_EQ(a2.bytes(), 150u);
  EXPECT_EQ(b.bytes(), 25u);
  EXPECT_EQ(budget.used_bytes(), 175u);
  EXPECT_EQ(budget.peak_bytes(), 175u);

  a2.sub(150);
  EXPECT_EQ(budget.used_bytes(), 25u);
  EXPECT_EQ(budget.peak_bytes(), 175u);  // high-water mark sticks
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);

  const MemoryBudget::Snapshot snap = budget.snapshot();
  ASSERT_EQ(snap.accounts.size(), 2u);  // name-sorted
  EXPECT_EQ(snap.accounts[0].name, "shard_buffers");
  EXPECT_EQ(snap.accounts[0].bytes, 0u);
  EXPECT_EQ(snap.accounts[1].name, "wal_day_buffer");
  EXPECT_EQ(snap.accounts[1].bytes, 25u);
  EXPECT_EQ(snap.peak_bytes, 175u);

  // Null-safe handle: every operation is a no-op.
  Accountant null_handle;
  EXPECT_FALSE(null_handle.live());
  null_handle.add(1 << 30);
  null_handle.sub(1);
  EXPECT_EQ(null_handle.bytes(), 0u);
  EXPECT_EQ(budget.used_bytes(), 25u);
}

TEST(MemoryBudget, HystereticLevelsUpgradeAtThresholdDowngradeBelowMargin) {
  MemoryBudget::Options opt;
  opt.budget_bytes = 1000;  // elevated 700, critical 900, hysteresis 50
  MemoryBudget budget{opt};
  Accountant a = budget.accountant("x");

  EXPECT_EQ(budget.level(), PressureLevel::kSteady);
  a.add(699);
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);
  a.add(1);  // 700: at the threshold upgrades
  EXPECT_EQ(budget.level(), PressureLevel::kElevated);
  a.sub(40);  // 660: inside the hysteresis band, holds
  EXPECT_EQ(budget.level(), PressureLevel::kElevated);
  a.sub(11);  // 649 < 700 - 50: downgrades
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);
  a.add(251);  // 900: straight to Critical from Steady
  EXPECT_EQ(budget.level(), PressureLevel::kCritical);
  a.sub(31);  // 869 >= 850: holds Critical
  EXPECT_EQ(budget.level(), PressureLevel::kCritical);
  a.sub(20);  // 849 < 900 - 50, still >= 700: Elevated
  EXPECT_EQ(budget.level(), PressureLevel::kElevated);
  a.sub(700);  // 149: back to Steady
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);
}

TEST(MemoryBudget, PlanClampsApplyAtTicksAndValidateOrdering) {
  PressurePlan plan;
  plan.add(2, 500);
  plan.add(5, 1000);
  EXPECT_EQ(plan.at(0), nullptr);
  EXPECT_EQ(plan.at(1), nullptr);
  ASSERT_NE(plan.at(2), nullptr);
  EXPECT_EQ(plan.at(2)->budget_bytes, 500u);
  EXPECT_EQ(plan.at(4)->budget_bytes, 500u);  // largest scheduled tick <= 4
  EXPECT_EQ(plan.at(5)->budget_bytes, 1000u);
  EXPECT_EQ(plan.at(99)->budget_bytes, 1000u);

  MemoryBudget::Options opt;
  opt.budget_bytes = 1000;
  MemoryBudget budget{opt};
  budget.set_plan(plan);
  Accountant a = budget.accountant("x");
  a.add(400);

  EXPECT_EQ(budget.budget_bytes(), 1000u);  // tick 0: no clamp yet
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);
  budget.tick();
  budget.tick();
  EXPECT_EQ(budget.ticks(), 2u);
  EXPECT_EQ(budget.budget_bytes(), 500u);
  EXPECT_EQ(budget.level(), PressureLevel::kElevated);  // 400 >= 0.7 * 500
  budget.set_tick(5);  // restart path: clock restored, clamp re-resolved
  EXPECT_EQ(budget.budget_bytes(), 1000u);
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);

  PressurePlan unordered;
  unordered.add(3, 100);
  unordered.add(3, 200);
  EXPECT_THROW(budget.set_plan(unordered), std::invalid_argument);
}

TEST(MemoryBudget, AllocationFailurePinsCriticalForHoldTicks) {
  MemoryBudget::Options opt;
  opt.budget_bytes = 1000;
  opt.alloc_failure_hold_ticks = 2;
  MemoryBudget budget{opt};

  EXPECT_EQ(budget.level(), PressureLevel::kSteady);
  budget.record_allocation_failure();
  EXPECT_EQ(budget.allocation_failures(), 1u);
  EXPECT_EQ(budget.level(), PressureLevel::kCritical);  // pinned at zero usage
  budget.tick();
  EXPECT_EQ(budget.level(), PressureLevel::kCritical);  // tick 1 < hold 2
  budget.tick();
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);  // hold expired, usage 0

  // set_tick (the restart path) clears the hold: it was process-local.
  budget.record_allocation_failure();
  budget.set_tick(0);
  EXPECT_EQ(budget.level(), PressureLevel::kSteady);
}

TEST(MemoryBudget, OptionValidation) {
  MemoryBudget::Options bad;
  bad.elevated_fraction = 0.0;
  EXPECT_THROW(MemoryBudget{bad}, std::invalid_argument);
  bad = {};
  bad.critical_fraction = bad.elevated_fraction;
  EXPECT_THROW(MemoryBudget{bad}, std::invalid_argument);
  bad = {};
  bad.hysteresis_fraction = bad.elevated_fraction;
  EXPECT_THROW(MemoryBudget{bad}, std::invalid_argument);
}

TEST(MemoryBudget, ChaosPlanIsSeedDeterministicAndBounded) {
  const PressurePlan p1 = PressurePlan::chaos(7, 50, 1000, 100);
  const PressurePlan p2 = PressurePlan::chaos(7, 50, 1000, 100);
  ASSERT_EQ(p1.clamps().size(), p2.clamps().size());
  ASSERT_FALSE(p1.empty());
  std::uint64_t prev_tick = 0;
  for (std::size_t i = 0; i < p1.clamps().size(); ++i) {
    EXPECT_EQ(p1.clamps()[i].tick, p2.clamps()[i].tick);
    EXPECT_EQ(p1.clamps()[i].budget_bytes, p2.clamps()[i].budget_bytes);
    EXPECT_GT(p1.clamps()[i].tick, prev_tick);  // strictly ascending
    prev_tick = p1.clamps()[i].tick;
    EXPECT_LE(p1.clamps()[i].tick, 50u);
    EXPECT_GE(p1.clamps()[i].budget_bytes, 100u);
    EXPECT_LE(p1.clamps()[i].budget_bytes, 1000u);
  }
  EXPECT_TRUE(PressurePlan::chaos(7, 0, 1000, 100).empty());
}

TEST(MemoryBudget, GlobalGovernorInstallBumpsEpochAndScopesRestore) {
  ASSERT_EQ(govern::global_governor(), nullptr);
  EXPECT_FALSE(govern::account("anything").live());

  const std::uint64_t before = govern::global_epoch();
  MemoryBudget budget;
  {
    ScopedGlobalGovernor install{&budget};
    EXPECT_EQ(govern::global_governor(), &budget);
    EXPECT_GT(govern::global_epoch(), before);
    Accountant a = govern::account("scoped");
    EXPECT_TRUE(a.live());
    a.add(7);
    EXPECT_EQ(budget.used_bytes(), 7u);
  }
  EXPECT_EQ(govern::global_governor(), nullptr);
  EXPECT_GT(govern::global_epoch(), before + 1);  // install + restore
}

// --- BackpressureGate --------------------------------------------------------

TEST(BackpressureGate, WindowZeroAdmitsEverythingImmediately) {
  BackpressureGate gate{0};
  gate.acquire(1'000'000);  // would block forever if the window applied
  EXPECT_EQ(gate.waits(), 0u);
}

TEST(BackpressureGate, BlocksPastWindowUntilReleased) {
  BackpressureGate gate{2};
  gate.acquire(0);
  gate.acquire(1);
  EXPECT_EQ(gate.waits(), 0u);

  std::atomic<bool> admitted{false};
  std::thread producer{[&] {
    gate.acquire(2);  // needs 2 < retired + 2, i.e. one release
    admitted.store(true);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  gate.release();
  producer.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(gate.waits(), 1u);
}

TEST(BackpressureGate, OpenPermanentlyUnblocksWaiters) {
  BackpressureGate gate{1};
  std::thread producer{[&] { gate.acquire(5); }};
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.open();  // the consumer's error path
  producer.join();
  gate.acquire(99);  // and stays open
  SUCCEED();
}

// --- throttled merge byte-identity -------------------------------------------

/// Runs a deterministic per-item payload through the runner and returns the
/// merged stream; also reports the peak number of admitted-but-unmerged
/// shards, which the gate must bound.
std::vector<std::uint64_t> run_throttled(unsigned threads, std::size_t window,
                                         std::size_t* peak_live = nullptr) {
  exec::ShardedDayRunner::Options opt;
  opt.threads = threads;
  opt.shards_per_thread = 3;
  opt.max_live_shards = window;
  exec::ShardedDayRunner runner{opt};

  constexpr std::size_t kItems = 3000;
  const std::size_t shards = runner.shard_count(kItems);
  std::vector<std::vector<std::uint64_t>> per_shard(shards);
  std::vector<std::uint64_t> merged;
  std::atomic<std::size_t> live{0};
  std::atomic<std::size_t> peak{0};
  runner.run(
      kItems,
      [&](std::size_t shard, std::size_t first, std::size_t last) {
        const std::size_t now = live.fetch_add(1) + 1;
        std::size_t seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        for (std::size_t i = first; i < last; ++i) {
          per_shard[shard].push_back(util::derive_seed(0xFACADE, i, 1));
        }
      },
      [&](std::size_t shard) {
        live.fetch_sub(1);
        merged.insert(merged.end(), per_shard[shard].begin(),
                      per_shard[shard].end());
        per_shard[shard].clear();
      });
  if (peak_live != nullptr) *peak_live = peak.load();
  return merged;
}

TEST(BackpressureRunner, ThrottledMergeIsByteIdenticalAtEveryWindow) {
  const std::vector<std::uint64_t> reference = run_throttled(1, 0);
  for (const unsigned threads : {2u, 4u}) {
    for (const std::size_t window : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}, std::size_t{0}}) {
      std::size_t peak_live = 0;
      const std::vector<std::uint64_t> merged =
          run_throttled(threads, window, &peak_live);
      EXPECT_EQ(merged, reference)
          << "threads=" << threads << " window=" << window;
      if (window > 0) {
        // The footprint bound: never more than `window` shards admitted
        // past the gate and not yet merged.
        EXPECT_LE(peak_live, window)
            << "threads=" << threads << " window=" << window;
      }
    }
  }
}

TEST(BackpressureRunner, AutoWindowClampsUnderPressureWithoutChangingBytes) {
  const std::vector<std::uint64_t> reference = run_throttled(1, 0);
  MemoryBudget::Options opt;
  opt.budget_bytes = 100;
  MemoryBudget governor{opt};
  Accountant a = governor.accountant("synthetic");
  a.add(95);  // Critical on the next level() read
  ScopedGlobalGovernor install{&governor};
  EXPECT_EQ(governor.level(), PressureLevel::kCritical);
  EXPECT_EQ(run_throttled(4, 0), reference);
}

// --- allocation-failure taxonomy + degraded retries --------------------------

Status classify(const std::function<void()>& thrower) {
  try {
    thrower();
  } catch (...) {
    return supervise::classify_exception(std::current_exception());
  }
  return Status::ok();
}

TEST(StatusTaxonomy, AllocationFailuresAreResourceExhausted) {
  EXPECT_EQ(classify([] { throw std::bad_alloc{}; }).code(),
            StatusCode::kResourceExhausted);
  // length_error is an allocation failure wearing logic_error's coat:
  // vector::reserve past max_size throws it on the same code paths.
  EXPECT_EQ(classify([] { throw std::length_error{"reserve"}; }).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(classify([] { throw std::logic_error{"bug"}; }).code(),
            StatusCode::kInternal);

  EXPECT_FALSE(is_retryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(is_retryable_with_degradation(StatusCode::kResourceExhausted));
  EXPECT_FALSE(is_retryable_with_degradation(StatusCode::kUnavailable));
  EXPECT_FALSE(is_retryable_with_degradation(StatusCode::kInternal));
}

TEST(DegradedRetry, GovernorGrantsExactlyOneDegradedRetry) {
  MemoryBudget governor;
  ScopedGlobalGovernor install{&governor};
  supervise::RetryPolicy policy;
  policy.max_retries = 0;  // no ordinary retries: the grant must be explicit
  policy.backoff_initial_ms = 0;

  int calls = 0;
  const supervise::RetryReport report = supervise::run_with_retries(
      policy, "alloc", [&](const supervise::CancelToken&) {
        if (++calls == 1) throw std::bad_alloc{};
      });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.degraded_retries, 1);
  EXPECT_EQ(calls, 2);
  // The grant escalated the governor first, so the retry ran degraded.
  EXPECT_EQ(governor.allocation_failures(), 1u);
}

TEST(DegradedRetry, SecondAllocationFailureIsPermanent) {
  MemoryBudget governor;
  ScopedGlobalGovernor install{&governor};
  supervise::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_ms = 0;

  int calls = 0;
  const supervise::RetryReport report = supervise::run_with_retries(
      policy, "alloc", [&](const supervise::CancelToken&) {
        ++calls;
        throw std::bad_alloc{};
      });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(report.degraded_retries, 1);
  EXPECT_EQ(calls, 2);  // original + the one degraded grant, never a third
}

TEST(DegradedRetry, WithoutGovernorResourceExhaustionFailsFast) {
  ASSERT_EQ(govern::global_governor(), nullptr);
  supervise::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_ms = 0;

  int calls = 0;
  const supervise::RetryReport report = supervise::run_with_retries(
      policy, "alloc", [&](const supervise::CancelToken&) {
        ++calls;
        throw std::bad_alloc{};
      });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(report.degraded_retries, 0);
  EXPECT_EQ(calls, 1);  // nothing to degrade with: fail fast, don't thrash
}

// --- follow() hardening: runt segments ---------------------------------------

TEST(RecordLogFollow, RuntTailSegmentIsPendingUntilASuccessorAppears) {
  TempDir dir{"runt_tail"};
  build_wal(dir.path, 2, 4 * 1024);
  auto& real = io::StdioFileSystem::instance();

  LogCursor cursor;
  CollectingSink sink;
  auto result = RecordLog::follow(real, dir.path, cursor, sink);
  EXPECT_EQ(result.state, TailState::kClean);
  ASSERT_EQ(sink.days.size(), 2u);

  // A zero-length segment at the end of the chain is a writer caught
  // mid-roll: the header may still arrive, so the reader must wait.
  const std::uint32_t next =
      static_cast<std::uint32_t>(real.list(dir.path, "wal-").size());
  { std::ofstream os{dir.path + "/" + RecordLog::segment_name(next)}; }
  result = RecordLog::follow(real, dir.path, cursor, sink);
  EXPECT_EQ(result.state, TailState::kPending);
  EXPECT_EQ(result.days_delivered, 0u);

  // The moment a successor segment exists, that runt can never grow again
  // (the writer only appends to the newest segment): torn, not pending —
  // otherwise a reader polls kPending forever on a chain recovery will fix.
  { std::ofstream os{dir.path + "/" + RecordLog::segment_name(next + 1)}; }
  result = RecordLog::follow(real, dir.path, cursor, sink);
  EXPECT_EQ(result.state, TailState::kTorn);
}

TEST(RecordLogFollow, HeaderOnlyRuntMidChainIsTornAndWriterRecoveryUnsticksIt) {
  TempDir dir{"runt_recovery"};
  build_wal(dir.path, 1, 4 * 1024);
  auto& real = io::StdioFileSystem::instance();

  LogCursor cursor;
  CollectingSink sink;
  ASSERT_EQ(RecordLog::follow(real, dir.path, cursor, sink).state,
            TailState::kClean);

  // A short (< header) runt with bytes in it, mid-chain.
  const std::uint32_t next =
      static_cast<std::uint32_t>(real.list(dir.path, "wal-").size());
  {
    std::ofstream os{dir.path + "/" + RecordLog::segment_name(next),
                     std::ios::binary};
    os.write("TLWALOG", 7);  // 7 bytes: less than the 16-byte header
  }
  { std::ofstream os{dir.path + "/" + RecordLog::segment_name(next + 1)}; }
  auto result = RecordLog::follow(real, dir.path, cursor, sink);
  EXPECT_EQ(result.state, TailState::kTorn);

  // Writer recovery drops the runts and re-rolls; the stuck reader's cursor
  // then resumes over the repaired chain without losing a day.
  RecordLog::Options opt;
  opt.directory = dir.path;
  opt.max_segment_bytes = 4 * 1024;
  opt.write_chunk_bytes = 512;
  RecordLog log{real, opt};
  log.open();
  for (std::uint32_t i = 0; i < kPerDay; ++i) log.append(make_record(1, i));
  log.commit_day(1, {});

  result = RecordLog::follow(real, dir.path, cursor, sink);
  EXPECT_EQ(result.state, TailState::kClean);
  ASSERT_EQ(sink.days.size(), 2u);
  EXPECT_EQ(sink.days.back(), 1);
  EXPECT_EQ(sink.records.size(), static_cast<std::size_t>(2 * kPerDay));
}

// --- checkpoint under ENOSPC -------------------------------------------------

TEST(WalTailerEnospc, CheckpointFailsCleanlyAndResumesWhenSpaceReturns) {
  TempDir root{"enospc"};
  const std::string wal = root.path + "/wal";
  build_wal(wal, 4);
  auto& real = io::StdioFileSystem::instance();

  StreamAggregates::Options agg_opt;
  agg_opt.window_days = 3;
  agg_opt.sketch_k = 32;
  StreamAggregates oracle{agg_opt};
  RecordLog::replay(real, wal, oracle);
  std::vector<std::uint8_t> oracle_bytes;
  oracle.serialize(oracle_bytes);

  WalTailer::Options opt;
  opt.wal_directory = wal;
  opt.checkpoint_path = root.path + "/serve.ckpt";
  opt.window_days = agg_opt.window_days;
  opt.sketch_k = agg_opt.sketch_k;
  opt.checkpoint_every_days = 1;
  opt.max_days_per_poll = 1;

  io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
  WalTailer tailer{ffs, opt};
  tailer.open();
  const auto first = tailer.poll();  // day 0: delivered and checkpointed
  EXPECT_TRUE(first.checkpointed);
  const telemetry::LogCursor durable_before = tailer.durable_cursor();

  // The disk fills. Reads (follow) still work, so the poll ingests the next
  // day — but the checkpoint write cannot commit and must surface as a
  // clean, retryable IoError, leaving the previous checkpoint untouched.
  ffs.set_disk_full(true);
  EXPECT_THROW(tailer.poll(), io::IoError);
  EXPECT_EQ(tailer.durable_cursor().segment, durable_before.segment);
  EXPECT_EQ(tailer.durable_cursor().offset, durable_before.offset);

  // A cold restart right now (real fs) must come up from the intact old
  // checkpoint and still reach the oracle bytes.
  {
    WalTailer restarted{real, opt};
    restarted.open();
    while (restarted.poll().state != TailState::kClean) {
    }
    std::vector<std::uint8_t> bytes;
    restarted.aggregates().serialize(bytes);
    EXPECT_EQ(bytes, oracle_bytes);
  }

  // Space returns: the same tailer instance finishes and checkpoints.
  ffs.set_disk_full(false);
  bool checkpointed = false;
  while (true) {
    const auto r = tailer.poll();
    checkpointed = checkpointed || r.checkpointed;
    if (r.state == TailState::kClean) break;
  }
  EXPECT_TRUE(checkpointed);
  std::vector<std::uint8_t> bytes;
  tailer.aggregates().serialize(bytes);
  EXPECT_EQ(bytes, oracle_bytes);

  // And the final checkpoint is durable: a fresh tailer resumes clean with
  // nothing to re-deliver.
  WalTailer resumed{real, opt};
  resumed.open();
  const auto r = resumed.poll();
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_EQ(r.days_delivered, 0u);
  std::vector<std::uint8_t> resumed_bytes;
  resumed.aggregates().serialize(resumed_bytes);
  EXPECT_EQ(resumed_bytes, oracle_bytes);
}

// --- degradation ladder ------------------------------------------------------

/// Feeds days [0, days) of the canonical stream into `aggs`.
void feed_days(StreamAggregates& aggs, int first, int count) {
  for (int day = first; day < first + count; ++day) {
    for (std::uint32_t i = 0; i < kPerDay; ++i) aggs.consume(make_record(day, i));
    aggs.on_day_end(day);
  }
}

TEST(DegradationLadder, SketchOnlyShedsMapsButKeepsNationalTalliesExact) {
  StreamAggregates::Options opt;
  opt.window_days = 4;
  opt.sketch_k = 32;
  StreamAggregates exact{opt};
  feed_days(exact, 0, 4);

  StreamAggregates degraded{opt};
  feed_days(degraded, 0, 2);
  StreamAggregates::DegradeDecision decision;
  decision.level = DegradeLevel::kSketchOnly;
  decision.used_bytes = 9000;
  decision.budget_bytes = 10000;
  degraded.apply_degrade(decision, 2);
  feed_days(degraded, 2, 2);

  // The step was recorded, with the shed detail counted: both window days'
  // district maps plus the lifetime sector map.
  ASSERT_EQ(degraded.degradation_events().size(), 1u);
  const auto& event = degraded.degradation_events()[0];
  EXPECT_EQ(event.from, DegradeLevel::kExact);
  EXPECT_EQ(event.to, DegradeLevel::kSketchOnly);
  EXPECT_EQ(event.effective_day, 2);
  EXPECT_EQ(event.used_bytes, 9000u);
  EXPECT_GT(event.shed_district_keys, 0u);
  EXPECT_GT(event.shed_sector_keys, 0u);

  // Detail shed: district and sector maps stop accumulating...
  EXPECT_TRUE(degraded.sectors().empty());
  for (const auto& day : degraded.window()) {
    EXPECT_TRUE(day.by_district.empty()) << "day " << day.day;
  }
  // ...but nothing else moved: national/vendor/RAT tallies and the sketch
  // are the exact run's (kSketchOnly keeps the sketch full-rate).
  const auto exact_report = exact.report();
  const auto degraded_report = degraded.report();
  EXPECT_EQ(degraded.total_records(), exact.total_records());
  EXPECT_EQ(degraded.total_failures(), exact.total_failures());
  EXPECT_EQ(degraded_report.handovers, exact_report.handovers);
  EXPECT_EQ(degraded_report.failures, exact_report.failures);
  EXPECT_EQ(degraded_report.sketch_count, exact_report.sketch_count);
  EXPECT_EQ(degraded_report.p50_ms, exact_report.p50_ms);
  for (std::size_t v = 0; v < degraded_report.by_vendor.size(); ++v) {
    EXPECT_EQ(degraded_report.by_vendor[v].handovers,
              exact_report.by_vendor[v].handovers);
    EXPECT_EQ(degraded_report.by_vendor[v].failures,
              exact_report.by_vendor[v].failures);
  }
  EXPECT_EQ(degraded_report.degraded_days, 2u);
  EXPECT_EQ(degraded_report.district_detail_days, 0u);
}

TEST(DegradationLadder, SampledAdmissionIsContentKeyedAndCounted) {
  StreamAggregates::Options opt;
  opt.window_days = 2;
  opt.sketch_k = 32;
  opt.sample_modulus = 4;
  StreamAggregates aggs{opt};
  StreamAggregates::DegradeDecision decision;
  decision.level = DegradeLevel::kSampled;
  aggs.apply_degrade(decision, 0);
  feed_days(aggs, 0, 1);

  // The sketch holds exactly the declared substream: successful, finite,
  // admitted by the pure content hash at modulus 4.
  std::uint64_t expected = 0;
  for (std::uint32_t i = 0; i < kPerDay; ++i) {
    const HandoverRecord r = make_record(0, i);
    if (!r.success || std::isnan(r.duration_ms)) continue;
    if (StreamAggregates::sample_admits(r, 4)) ++expected;
  }
  ASSERT_GT(expected, 0u);
  ASSERT_LT(expected, static_cast<std::uint64_t>(kPerDay));
  const auto report = aggs.report();
  EXPECT_EQ(report.sketch_count, expected);
  EXPECT_EQ(report.max_sample_modulus, 4u);
  // National tallies are untouched by sampling: every record counted.
  EXPECT_EQ(aggs.total_records(), static_cast<std::uint64_t>(kPerDay));

  // Admission is a pure function of record content.
  const HandoverRecord probe = make_record(0, 17);
  EXPECT_EQ(StreamAggregates::sample_admits(probe, 4),
            StreamAggregates::sample_admits(probe, 4));
  EXPECT_TRUE(StreamAggregates::sample_admits(probe, 1));
}

TEST(DegradationLadder, EventsSurviveSerializationAndRejectCorruption) {
  StreamAggregates::Options opt;
  opt.window_days = 3;
  opt.sketch_k = 32;
  opt.sample_modulus = 8;
  StreamAggregates aggs{opt};
  feed_days(aggs, 0, 1);
  StreamAggregates::DegradeDecision down;
  down.level = DegradeLevel::kSampled;
  down.used_bytes = 5000;
  down.budget_bytes = 4000;
  aggs.apply_degrade(down, 1);
  feed_days(aggs, 1, 1);
  StreamAggregates::DegradeDecision up;
  up.level = DegradeLevel::kExact;
  aggs.apply_degrade(up, 2);
  feed_days(aggs, 2, 1);

  std::vector<std::uint8_t> bytes;
  aggs.serialize(bytes);
  const StreamAggregates restored = StreamAggregates::deserialize(bytes);
  std::vector<std::uint8_t> round_trip;
  restored.serialize(round_trip);
  EXPECT_EQ(round_trip, bytes);
  ASSERT_EQ(restored.degradation_events().size(), 2u);
  EXPECT_EQ(restored.degradation_events()[0].to, DegradeLevel::kSampled);
  EXPECT_EQ(restored.degradation_events()[0].sample_modulus, 8u);
  EXPECT_EQ(restored.degradation_events()[1].to, DegradeLevel::kExact);
  EXPECT_EQ(restored.level(), DegradeLevel::kExact);
  ASSERT_EQ(restored.window().size(), 3u);
  EXPECT_EQ(restored.window()[1].degrade_level, DegradeLevel::kSampled);
  EXPECT_EQ(restored.window()[1].sample_modulus, 8u);
  EXPECT_EQ(restored.window()[2].degrade_level, DegradeLevel::kExact);

  // Flipping any byte of the image must be caught by structural validation
  // or change the decoded state — never be silently absorbed. Spot-check a
  // corruption in the new v2 fields: an impossible degrade level.
  ASSERT_FALSE(bytes.empty());
  bool rejected_some = false;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[pos] ^= 0xFF;
    try {
      const StreamAggregates decoded = StreamAggregates::deserialize(mutated);
      std::vector<std::uint8_t> re;
      decoded.serialize(re);
      EXPECT_NE(re, bytes) << "corruption at " << pos << " vanished";
    } catch (const std::runtime_error&) {
      rejected_some = true;
    }
  }
  EXPECT_TRUE(rejected_some);
}

TEST(DegradationLadder, EventJournalCapDropsOldestAndCountsThem) {
  StreamAggregates::Options opt;
  opt.window_days = 2;
  opt.sketch_k = 32;
  StreamAggregates aggs{opt};
  for (std::size_t i = 0; i < StreamAggregates::kMaxEvents + 10; ++i) {
    StreamAggregates::DegradeDecision d;
    d.level = (i % 2 == 0) ? DegradeLevel::kSketchOnly : DegradeLevel::kExact;
    aggs.apply_degrade(d, static_cast<int>(i));
    aggs.on_day_end(static_cast<int>(i));
  }
  EXPECT_EQ(aggs.degradation_events().size(), StreamAggregates::kMaxEvents);
  EXPECT_EQ(aggs.degradation_events_dropped(), 10u);
  std::vector<std::uint8_t> bytes;
  aggs.serialize(bytes);
  const StreamAggregates restored = StreamAggregates::deserialize(bytes);
  EXPECT_EQ(restored.degradation_events_dropped(), 10u);
}

// --- the pressure chaos suite ------------------------------------------------

// Every seeded schedule drives a governed WalTailer with a chaotic budget
// plan while seeded I/O faults kill and recover it. The verdict, per
// schedule:
//   - the survivor's serialized aggregates are byte-identical to an
//     UNINTERRUPTED governed run under the same plan (pressure history is
//     deterministic across kill/recover);
//   - if the plan never forced a degradation, those bytes equal the
//     unpressured oracle's exactly;
//   - if it did, the degradation is certified: an explicit well-formed
//     event journal, national/vendor/RAT tallies still exactly equal to the
//     oracle's (detail was shed, data was not), the sketch population is
//     exactly the declared content-keyed substream, and the reported
//     quantiles respect the certified rank-error bound against an exact
//     ECDF built over that substream;
//   - zero allocation failures anywhere.
TEST(PressureChaos, GovernedTailerConvergesOrCertifiesItsDegradation) {
  constexpr int kDays = 10;
  TempDir root{"pressure_chaos"};
  const std::string wal = root.path + "/wal";
  build_wal(wal, kDays);
  auto& real = io::StdioFileSystem::instance();

  StreamAggregates::Options agg_opt;
  agg_opt.window_days = 4;
  agg_opt.sketch_k = 32;
  agg_opt.sample_modulus = 4;

  StreamAggregates oracle{agg_opt};
  RecordLog::replay(real, wal, oracle);
  std::vector<std::uint8_t> oracle_bytes;
  oracle.serialize(oracle_bytes);
  const StreamAggregates::WindowReport oracle_report = oracle.report();
  const std::uint64_t steady_bytes = oracle.approximate_bytes();
  ASSERT_GT(steady_bytes, 0u);
  const std::uint64_t base_budget = steady_bytes * 2;
  const std::uint64_t floor_budget = steady_bytes / 3;

  const auto make_options = [&](const std::string& dir) {
    WalTailer::Options o;
    o.wal_directory = dir;
    o.checkpoint_path = dir + "/serve.ckpt";
    o.window_days = agg_opt.window_days;
    o.sketch_k = agg_opt.sketch_k;
    o.sample_modulus = agg_opt.sample_modulus;
    o.checkpoint_every_days = 1;
    o.max_days_per_poll = 2;
    return o;
  };
  MemoryBudget::Options governor_options;
  governor_options.budget_bytes = base_budget;

  // Fault-free governed-less pass sizes the crash horizon in storage ops.
  std::uint64_t horizon = 0;
  {
    const std::string dir = root.path + "/dry";
    copy_wal(wal, dir);
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    WalTailer tailer{ffs, make_options(dir)};
    tailer.open();
    while (tailer.poll().state != TailState::kClean) {
    }
    horizon = ffs.ops();
    std::vector<std::uint8_t> bytes;
    tailer.aggregates().serialize(bytes);
    ASSERT_EQ(bytes, oracle_bytes);
  }
  ASSERT_GT(horizon, 0u);

  const int schedules = chaos_schedule_count();
  int degraded_schedules = 0;
  int clean_schedules = 0;
  int total_crashes = 0;
  std::uint64_t total_events = 0;

  for (int s = 0; s < schedules; ++s) {
    SCOPED_TRACE("schedule " + std::to_string(s));
    const PressurePlan plan = PressurePlan::chaos(
        util::derive_seed(0x6E55ULL, static_cast<std::uint64_t>(s), 1), kDays,
        base_budget, floor_budget);

    // The pressured oracle: same plan, no I/O faults, one process lifetime.
    std::vector<std::uint8_t> pressured_bytes;
    {
      const std::string dir = root.path + "/oracle";
      stdfs::remove_all(dir);
      copy_wal(wal, dir);
      MemoryBudget governor{governor_options};
      governor.set_plan(plan);
      ScopedGlobalGovernor install{&governor};
      WalTailer tailer{real, make_options(dir)};
      tailer.open();
      while (tailer.poll().state != TailState::kClean) {
      }
      tailer.aggregates().serialize(pressured_bytes);
      ASSERT_EQ(governor.allocation_failures(), 0u);
    }

    // Kill/recover until the tailer survives a whole pass. Every attempt is
    // a fresh "process": a new governor carrying the same configured plan,
    // re-seeded from recovered state by WalTailer::open().
    const std::string dir = root.path + "/run";
    stdfs::remove_all(dir);
    copy_wal(wal, dir);
    const WalTailer::Options run_options = make_options(dir);
    util::Rng meta = util::Rng::derive(0x6E55F00DULL,
                                       static_cast<std::uint64_t>(s));
    bool complete = false;
    int attempts = 0;
    std::vector<std::uint8_t> final_bytes;
    while (!complete && attempts < 64) {
      ++attempts;
      io::IoFaultPlan io_plan;
      if (attempts == 1 || !meta.chance(0.4)) {
        io_plan = io::IoFaultPlan::chaos(meta(), horizon + 8,
                                         s % 3 == 0 ? 0.02 : 0.0);
      }
      io::FaultyFileSystem ffs{real, io_plan, meta()};
      MemoryBudget governor{governor_options};
      governor.set_plan(plan);
      ScopedGlobalGovernor install{&governor};
      WalTailer tailer{ffs, run_options};
      try {
        tailer.open();
        while (tailer.poll().state != TailState::kClean) {
        }
        complete = true;
        tailer.aggregates().serialize(final_bytes);
        EXPECT_EQ(governor.allocation_failures(), 0u);
      } catch (const io::SimulatedCrash&) {
        ++total_crashes;
      } catch (const io::IoError&) {
      }
    }
    ASSERT_TRUE(complete) << "livelocked after " << attempts << " attempts";
    ASSERT_EQ(final_bytes, pressured_bytes)
        << "kill/recover diverged from the uninterrupted pressured run";

    const StreamAggregates final_aggs =
        StreamAggregates::deserialize(final_bytes);
    const auto& events = final_aggs.degradation_events();
    total_events += events.size();

    // Zero silent drops, at any degradation level: lifetime and window
    // national/vendor/RAT tallies exactly match the unpressured oracle.
    EXPECT_EQ(final_aggs.total_records(), oracle.total_records());
    EXPECT_EQ(final_aggs.total_failures(), oracle.total_failures());
    const StreamAggregates::WindowReport report = final_aggs.report();
    EXPECT_EQ(report.handovers, oracle_report.handovers);
    EXPECT_EQ(report.failures, oracle_report.failures);
    for (std::size_t v = 0; v < report.by_vendor.size(); ++v) {
      EXPECT_EQ(report.by_vendor[v].handovers,
                oracle_report.by_vendor[v].handovers);
      EXPECT_EQ(report.by_vendor[v].failures,
                oracle_report.by_vendor[v].failures);
    }
    for (std::size_t t = 0; t < report.by_target.size(); ++t) {
      EXPECT_EQ(report.by_target[t].handovers,
                oracle_report.by_target[t].handovers);
    }

    if (events.empty()) {
      ++clean_schedules;
      EXPECT_EQ(final_bytes, oracle_bytes)
          << "no degradation recorded, yet the bytes differ from the "
             "unpressured oracle";
    } else {
      ++degraded_schedules;
      // The journal is well-formed and auditable.
      int prev_day = -1;
      for (const auto& event : events) {
        EXPECT_NE(event.from, event.to);
        EXPECT_GE(event.effective_day, prev_day);
        prev_day = event.effective_day;
        EXPECT_GT(event.budget_bytes, 0u);
        if (event.to == DegradeLevel::kSampled) {
          EXPECT_EQ(event.sample_modulus, agg_opt.sample_modulus);
        } else {
          EXPECT_EQ(event.sample_modulus, 1u);
        }
      }
      EXPECT_EQ(events.back().to, final_aggs.level());

      // Certified accuracy: rebuild the *declared* admitted substream of
      // the window — per day, successful finite-duration records admitted
      // by the day's stamped modulus — and check the reported quantiles
      // against its exact ECDF within the certified rank-error bound (plus
      // the tie mass at the reported value: an ECDF evaluates the top of a
      // duplicate run, which rank certification does not promise).
      std::vector<double> admitted;
      for (const auto& day : final_aggs.window()) {
        for (std::uint32_t i = 0; i < kPerDay; ++i) {
          const HandoverRecord r = make_record(day.day, i);
          if (!r.success || std::isnan(r.duration_ms)) continue;
          if (day.sample_modulus > 1 &&
              !StreamAggregates::sample_admits(r, day.sample_modulus)) {
            continue;
          }
          admitted.push_back(static_cast<double>(r.duration_ms));
        }
      }
      ASSERT_EQ(report.sketch_count, admitted.size())
          << "sketch population is not the declared substream";
      if (!admitted.empty()) {
        const analysis::Ecdf exact{admitted};
        const double n = static_cast<double>(admitted.size());
        const auto tie_mass = [&](double v) {
          return static_cast<double>(
                     std::count(admitted.begin(), admitted.end(), v)) /
                 n;
        };
        EXPECT_NEAR(exact.at(report.p50_ms), 0.5,
                    report.quantile_rank_error + tie_mass(report.p50_ms) + 1e-9);
        EXPECT_NEAR(exact.at(report.p90_ms), 0.9,
                    report.quantile_rank_error + tie_mass(report.p90_ms) + 1e-9);
        EXPECT_NEAR(exact.at(report.p99_ms), 0.99,
                    report.quantile_rank_error + tie_mass(report.p99_ms) + 1e-9);
      }
    }

    // Restart proof: the checkpoint alone reproduces the same bytes, with
    // no governor installed (nothing left to decide — and a restart without
    // governance must not silently rewrite recorded history).
    {
      WalTailer restarted{real, run_options};
      restarted.open();
      const auto r = restarted.poll();
      std::vector<std::uint8_t> bytes;
      restarted.aggregates().serialize(bytes);
      EXPECT_EQ(r.state, TailState::kClean);
      EXPECT_EQ(r.days_delivered, 0u);
      EXPECT_EQ(bytes, pressured_bytes);
    }
  }

  RecordProperty("schedules", schedules);
  RecordProperty("degraded_schedules", degraded_schedules);
  RecordProperty("clean_schedules", clean_schedules);
  RecordProperty("total_crashes", total_crashes);
  RecordProperty("total_events", static_cast<int>(total_events));
  // The suite must actually exercise both regimes and actually crash.
  EXPECT_GT(degraded_schedules, schedules / 4);
  EXPECT_GT(total_crashes, schedules / 2);
  if (schedules >= 20) {
    EXPECT_GT(clean_schedules, 0);
  }
}

}  // namespace
}  // namespace tl
