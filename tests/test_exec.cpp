// Execution-engine tests: thread-pool semantics (graceful shutdown with
// pending tasks, exception propagation), the sharded runner's ordered-merge
// contract, and the engine's headline guarantee — the record stream (and
// the durable log's on-disk bytes) at K threads is byte-identical to the
// serial run, for K in {2, 3, 8} and for K = 0 (hardware concurrency).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.hpp"
#include "exec/buffers.hpp"
#include "govern/governor.hpp"
#include "exec/sharded_runner.hpp"
#include "exec/thread_pool.hpp"
#include "io/file.hpp"
#include "telemetry/aggregates.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "util/rng.hpp"

namespace tl {
namespace {

using core::DayCheckpoint;
using core::Simulator;
using core::StudyConfig;
using exec::ShardedDayRunner;
using exec::ThreadPool;
using telemetry::HandoverRecord;
using telemetry::RecordLog;
using telemetry::UeDayMetrics;

namespace fs = std::filesystem;

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, ResolvesThreadCounts) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  ThreadPool pool{2};
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool{3};
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool{2};
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::domain_error{"boom"}; });
  EXPECT_NO_THROW(ok.get());
  try {
    bad.get();
    FAIL() << "expected std::domain_error";
  } catch (const std::domain_error& error) {
    EXPECT_STREQ(error.what(), "boom");
  }
}

TEST(ThreadPool, GracefulShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 24; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
        ran.fetch_add(1);
      });
    }
    // Destruction races the queue: most tasks are still pending here, and
    // the graceful contract is that every one of them still runs.
  }
  EXPECT_EQ(ran.load(), 24);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool{1};
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ThrowingTasksDuringDrainParkInFuturesNotTerminate) {
  // Destruction drains the queue; tasks that throw while draining must park
  // their exception in the future (std::terminate would kill the process —
  // the mere completion of this test is the assertion).
  std::vector<std::future<void>> futures;
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&ran, i] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
        if (i % 3 == 0) throw std::domain_error{"drain boom " + std::to_string(i)};
      }));
    }
    // ~ThreadPool runs here with most tasks still queued.
  }
  EXPECT_EQ(ran.load(), 32);
  int threw = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      futures[i].get();
    } catch (const std::domain_error&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw, 32 / 3 + 1);
}

TEST(ThreadPool, ConcurrentShutdownIsSafeAndIdempotent) {
  // Shutdown can race destruction (supervisor teardown paths): both callers
  // must be able to join without double-joining a worker.
  ThreadPool pool{3};
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    });
  }
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&pool] { pool.shutdown(); });
  }
  for (auto& t : closers) t.join();
  pool.shutdown();  // idempotent after the race
  EXPECT_EQ(ran.load(), 16);
}

// --- sharded runner ----------------------------------------------------------

ShardedDayRunner::Options runner_options(unsigned threads, unsigned spt = 2) {
  ShardedDayRunner::Options opt;
  opt.threads = threads;
  opt.shards_per_thread = spt;
  return opt;
}

TEST(ShardedDayRunner, CoversEveryItemExactlyOnceAndMergesInOrder) {
  ShardedDayRunner runner{runner_options(4)};
  const std::size_t n = 1000;
  const std::size_t shards = runner.shard_count(n);
  ASSERT_GT(shards, 1u);
  std::vector<std::vector<std::size_t>> per_shard(shards);
  std::vector<std::size_t> merge_order;
  std::vector<int> covered(n, 0);
  runner.run(
      n,
      [&](std::size_t shard, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) per_shard[shard].push_back(i);
      },
      [&](std::size_t shard) {
        merge_order.push_back(shard);
        for (const std::size_t i : per_shard[shard]) ++covered[i];
      });
  ASSERT_EQ(merge_order.size(), shards);
  for (std::size_t s = 0; s < shards; ++s) EXPECT_EQ(merge_order[s], s);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(covered[i], 1) << "item " << i;
  }
}

TEST(ShardedDayRunner, MergeOrderIgnoresSchedulingSkew) {
  // Early shards sleep longest, so workers finish in roughly reverse shard
  // order — the merge must still run strictly ascending.
  ShardedDayRunner runner{runner_options(4, 1)};
  const std::size_t n = 64;
  const std::size_t shards = runner.shard_count(n);
  std::vector<std::size_t> merge_order;
  runner.run(
      n,
      [&](std::size_t shard, std::size_t, std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds{2 * (shards - shard)});
      },
      [&](std::size_t shard) { merge_order.push_back(shard); });
  ASSERT_EQ(merge_order.size(), shards);
  for (std::size_t s = 0; s < shards; ++s) EXPECT_EQ(merge_order[s], s);
}

TEST(ShardedDayRunner, SimulateExceptionAbortsMergeAndPropagates) {
  ShardedDayRunner runner{runner_options(2, 1)};
  const std::size_t n = 16;
  const std::size_t shards = runner.shard_count(n);
  ASSERT_EQ(shards, 2u);
  std::vector<std::size_t> merged;
  EXPECT_THROW(
      runner.run(
          n,
          [&](std::size_t shard, std::size_t, std::size_t) {
            if (shard == 1) throw std::runtime_error{"shard 1 failed"};
          },
          [&](std::size_t shard) { merged.push_back(shard); }),
      std::runtime_error);
  // Shards past the failing one are never merged; earlier ones may be.
  for (const std::size_t shard : merged) EXPECT_LT(shard, 1u);
}

TEST(ShardedDayRunner, MergeExceptionPropagatesWithoutDeadlock) {
  ShardedDayRunner runner{runner_options(3)};
  std::vector<std::size_t> merged;
  EXPECT_THROW(runner.run(
                   100, [](std::size_t, std::size_t, std::size_t) {},
                   [&](std::size_t shard) {
                     if (shard == 1) throw std::runtime_error{"merge 1 failed"};
                     merged.push_back(shard);
                   }),
               std::runtime_error);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], 0u);
}

TEST(ShardedDayRunner, RunnerIsReusableAcrossRuns) {
  ShardedDayRunner runner{runner_options(2)};
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::size_t> simulated{0};
    std::size_t merged = 0;
    runner.run(
        50,
        [&](std::size_t, std::size_t first, std::size_t last) {
          simulated.fetch_add(last - first);
        },
        [&](std::size_t) { ++merged; });
    EXPECT_EQ(simulated.load(), 50u);
    EXPECT_EQ(merged, runner.shard_count(50));
  }
}

TEST(ShardedDayRunner, TaskHookRunsOncePerShardBeforeSimulate) {
  ShardedDayRunner::Options opt = runner_options(2);
  std::mutex mu;
  std::vector<std::size_t> hooked;
  std::atomic<bool> order_ok{true};
  std::vector<std::atomic<int>> simulated(16);
  opt.task_hook = [&](std::size_t shard, std::size_t first, std::size_t last) {
    std::lock_guard<std::mutex> lock{mu};
    hooked.push_back(shard);
    if (first >= last) order_ok = false;
    if (simulated[shard].load() != 0) order_ok = false;  // hook precedes simulate
  };
  ShardedDayRunner runner{opt};
  const std::size_t shards = runner.shard_count(64);
  ASSERT_LE(shards, simulated.size());
  runner.run(
      64,
      [&](std::size_t shard, std::size_t, std::size_t) {
        simulated[shard].fetch_add(1);
      },
      [](std::size_t) {});
  ASSERT_EQ(hooked.size(), shards);
  std::sort(hooked.begin(), hooked.end());
  for (std::size_t s = 0; s < shards; ++s) EXPECT_EQ(hooked[s], s);
  EXPECT_TRUE(order_ok.load());
}

TEST(ShardedDayRunner, TaskHookExceptionPoisonsItsShardDeterministically) {
  // A hook failure is indistinguishable from a simulate failure: run()
  // rethrows the first poisoned shard in merge order and merges nothing at
  // or after it.
  ShardedDayRunner::Options opt = runner_options(4, 1);
  opt.task_hook = [](std::size_t shard, std::size_t, std::size_t) {
    if (shard == 2) throw std::domain_error{"hook fault on shard 2"};
  };
  ShardedDayRunner runner{opt};
  ASSERT_GT(runner.shard_count(64), 2u);
  std::vector<std::size_t> merged;
  try {
    runner.run(
        64, [](std::size_t, std::size_t, std::size_t) {},
        [&](std::size_t shard) { merged.push_back(shard); });
    FAIL() << "expected the hook's exception";
  } catch (const std::domain_error& error) {
    EXPECT_STREQ(error.what(), "hook fault on shard 2");
  }
  for (const std::size_t shard : merged) EXPECT_LT(shard, 2u);
}

// --- determinism under concurrency ------------------------------------------

/// One test-scale world, reused across every thread count via restore():
/// exactly the pattern the throughput bench and the chaos harness use.
struct ExecWorld {
  StudyConfig cfg;
  std::unique_ptr<Simulator> sim;
  DayCheckpoint day0;

  static ExecWorld& instance() {
    static ExecWorld world = [] {
      ExecWorld w;
      w.cfg = StudyConfig::test_scale();
      w.cfg.days = 2;
      w.cfg.population.count = 2'000;
      w.sim = std::make_unique<Simulator>(w.cfg);
      w.day0.seed = w.cfg.seed;
      return w;
    }();
    return world;
  }
};

struct RunCapture {
  std::vector<std::uint8_t> record_bytes;  // RecordLog encoding of the stream
  std::size_t records = 0;
  std::vector<UeDayMetrics> metrics;
  std::uint64_t records_emitted = 0;
  std::uint64_t total_handovers = 0;
};

RunCapture run_with_threads(unsigned threads) {
  ExecWorld& w = ExecWorld::instance();
  telemetry::SignalingDataset dataset;
  telemetry::UeDayStore ue_days;
  w.sim->set_threads(threads);
  w.sim->restore(w.day0);
  w.sim->add_sink(&dataset);
  w.sim->add_metrics_sink(&ue_days);
  w.sim->run();
  w.sim->remove_sink(&dataset);
  w.sim->remove_metrics_sink(&ue_days);

  RunCapture capture;
  capture.records = dataset.size();
  for (const auto& record : dataset.records()) {
    RecordLog::encode_record(record, capture.record_bytes);
  }
  capture.metrics.assign(ue_days.rows().begin(), ue_days.rows().end());
  capture.records_emitted = w.sim->records_emitted();
  capture.total_handovers = w.sim->core_network().total_handovers();
  return capture;
}

void expect_metrics_eq(const UeDayMetrics& a, const UeDayMetrics& b, std::size_t i) {
  ASSERT_EQ(a.ue, b.ue) << "metrics row " << i;
  ASSERT_EQ(a.day, b.day) << "metrics row " << i;
  ASSERT_EQ(a.handovers, b.handovers) << "metrics row " << i;
  ASSERT_EQ(a.failures, b.failures) << "metrics row " << i;
  ASSERT_EQ(a.distinct_sectors, b.distinct_sectors) << "metrics row " << i;
  ASSERT_EQ(a.radius_of_gyration_km, b.radius_of_gyration_km) << "metrics row " << i;
  ASSERT_EQ(a.device_type, b.device_type) << "metrics row " << i;
}

TEST(Determinism, RecordStreamIsByteIdenticalAcrossThreadCounts) {
  const RunCapture serial = run_with_threads(1);
  ASSERT_GT(serial.records, 100u) << "world too small to prove anything";
  ASSERT_FALSE(serial.metrics.empty());
  EXPECT_EQ(serial.records, serial.records_emitted);

  for (const unsigned threads : {2u, 3u, 8u, 0u}) {
    const RunCapture parallel = run_with_threads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(parallel.records, serial.records);
    // Byte-identity of the full stream, not just per-field equality.
    ASSERT_EQ(parallel.record_bytes, serial.record_bytes);
    ASSERT_EQ(parallel.metrics.size(), serial.metrics.size());
    for (std::size_t i = 0; i < serial.metrics.size(); ++i) {
      expect_metrics_eq(parallel.metrics[i], serial.metrics[i], i);
    }
    EXPECT_EQ(parallel.records_emitted, serial.records_emitted);
    EXPECT_EQ(parallel.total_handovers, serial.total_handovers);
  }
}

TEST(Determinism, CoreNetworkCountersShardReduceExactly) {
  const RunCapture serial = run_with_threads(1);
  ExecWorld& w = ExecWorld::instance();
  const auto serial_core = w.sim->checkpoint().core;

  (void)run_with_threads(8);
  const auto parallel_core = w.sim->checkpoint().core;
  for (const auto region : geo::kAllRegions) {
    SCOPED_TRACE(static_cast<int>(region));
    EXPECT_EQ(parallel_core.mme(region).handovers.procedures,
              serial_core.mme(region).handovers.procedures);
    EXPECT_EQ(parallel_core.mme(region).handovers.failures,
              serial_core.mme(region).handovers.failures);
    EXPECT_EQ(parallel_core.mme(region).path_switches.successes,
              serial_core.mme(region).path_switches.successes);
    EXPECT_EQ(parallel_core.sgsn(region).relocations.procedures,
              serial_core.sgsn(region).relocations.procedures);
    EXPECT_EQ(parallel_core.msc(region).srvcc.procedures,
              serial_core.msc(region).srvcc.procedures);
    EXPECT_EQ(parallel_core.sgw(region).bearer_modifications,
              serial_core.sgw(region).bearer_modifications);
  }
  EXPECT_EQ(serial.total_handovers, serial_core.total_handovers());
}

TEST(Determinism, ThreadCountMayChangeBetweenDays) {
  // Day 0 serial, day 1 on four workers — still the serial stream.
  const RunCapture serial = run_with_threads(1);
  ExecWorld& w = ExecWorld::instance();
  telemetry::SignalingDataset dataset;
  w.sim->restore(w.day0);
  w.sim->add_sink(&dataset);
  w.sim->set_threads(1);
  w.sim->run_day(0);
  w.sim->set_threads(4);
  w.sim->run_day(1);
  w.sim->remove_sink(&dataset);

  std::vector<std::uint8_t> bytes;
  for (const auto& record : dataset.records()) RecordLog::encode_record(record, bytes);
  EXPECT_EQ(bytes, serial.record_bytes);
}

// --- durable log byte-identity ----------------------------------------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_exec_" + name) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::string log_bytes(const std::string& dir) {
  std::string all;
  auto& real = io::StdioFileSystem::instance();
  for (const auto& name : real.list(dir, "wal-")) {
    std::ifstream is{dir + "/" + name, std::ios::binary};
    std::ostringstream os;
    os << is.rdbuf();
    all += "[" + name + "]";
    all += os.str();
  }
  return all;
}

std::string run_durable(unsigned threads, const std::string& dir) {
  ExecWorld& w = ExecWorld::instance();
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = dir;
  opt.max_segment_bytes = 24 * 1024;  // several rolls, so boundaries are tested
  RecordLog log{real, opt};
  telemetry::DurableRecordSink sink{log};
  log.open();
  w.sim->set_threads(threads);
  w.sim->restore(w.day0);
  w.sim->attach_durable_log(&sink);
  w.sim->run();
  w.sim->remove_sink(&sink);
  return log_bytes(dir);
}

TEST(Determinism, DurableLogBytesAreIdenticalAcrossThreadCounts) {
  TempDir serial_dir{"wal_serial"};
  TempDir parallel_dir{"wal_parallel"};
  const std::string serial = run_durable(1, serial_dir.path);
  ASSERT_FALSE(serial.empty());
  const std::string parallel = run_durable(8, parallel_dir.path);
  // WAL frames, day commit markers, embedded checkpoints, segment
  // boundaries: all byte-identical to the serial run.
  EXPECT_EQ(parallel, serial);
}

// --- shard-state reuse across days -------------------------------------------
//
// run_day_sharded keeps its per-shard slab (CoreNetwork + record/metrics
// buffers) alive across days, resetting it at simulate-callback entry;
// StudyConfig::reuse_shard_state = false restores the old
// reconstruct-every-day behavior. The two modes must be indistinguishable in
// every observable: record bytes, metrics rows, WAL bytes, engine counters,
// and the governor's peak accounting (warm buffers re-reserve through the
// same capacity-doubling brackets organic growth uses, so the byte
// high-water mark is the same trajectory either way).

struct ReuseCapture {
  std::vector<std::uint8_t> record_bytes;
  std::vector<UeDayMetrics> metrics;
  std::uint64_t records_emitted = 0;
  std::uint64_t total_handovers = 0;
  std::string wal;
  std::uint64_t governor_peak = 0;
};

ReuseCapture run_reuse_arm(bool reuse, unsigned threads, const std::string& dir,
                           bool switch_threads_mid_study = false) {
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.days = 3;
  cfg.population.count = 2'000;
  cfg.reuse_shard_state = reuse;
  Simulator sim{cfg};

  govern::MemoryBudget budget;  // budget 0: accounting only, always Steady
  govern::ScopedGlobalGovernor install{&budget};

  RecordLog::Options opt;
  opt.directory = dir;
  opt.max_segment_bytes = 24 * 1024;
  RecordLog log{io::StdioFileSystem::instance(), opt};
  telemetry::DurableRecordSink durable{log};
  log.open();

  telemetry::SignalingDataset dataset;
  telemetry::UeDayStore ue_days;
  DayCheckpoint day0;
  day0.seed = cfg.seed;
  sim.set_threads(threads);
  sim.restore(day0);
  sim.attach_durable_log(&durable);
  sim.add_sink(&dataset);
  sim.add_metrics_sink(&ue_days);
  if (switch_threads_mid_study) {
    sim.run_day(0);
    sim.set_threads(threads == 2 ? 4 : 2);  // shard geometry changes mid-study
    sim.run_day(1);
    sim.run_day(2);
  } else {
    sim.run();
  }
  sim.remove_sink(&dataset);
  sim.remove_sink(&durable);
  sim.remove_metrics_sink(&ue_days);

  ReuseCapture c;
  for (const auto& record : dataset.records()) {
    RecordLog::encode_record(record, c.record_bytes);
  }
  c.metrics.assign(ue_days.rows().begin(), ue_days.rows().end());
  c.records_emitted = sim.records_emitted();
  c.total_handovers = sim.core_network().total_handovers();
  c.wal = log_bytes(dir);
  c.governor_peak = budget.peak_bytes();
  return c;
}

void expect_reuse_eq(const ReuseCapture& warm, const ReuseCapture& fresh) {
  ASSERT_FALSE(fresh.record_bytes.empty());
  ASSERT_EQ(warm.record_bytes, fresh.record_bytes);
  ASSERT_EQ(warm.metrics.size(), fresh.metrics.size());
  for (std::size_t i = 0; i < fresh.metrics.size(); ++i) {
    expect_metrics_eq(warm.metrics[i], fresh.metrics[i], i);
  }
  EXPECT_EQ(warm.records_emitted, fresh.records_emitted);
  EXPECT_EQ(warm.total_handovers, fresh.total_handovers);
  ASSERT_FALSE(fresh.wal.empty());
  EXPECT_EQ(warm.wal, fresh.wal);
  EXPECT_EQ(warm.governor_peak, fresh.governor_peak);
}

TEST(ShardStateReuse, OutputsIdenticalToFreshStateAcrossThreadCounts) {
  for (const unsigned threads : {2u, 4u, 0u}) {  // 0 = hardware concurrency
    SCOPED_TRACE("threads=" + std::to_string(threads));
    TempDir fresh_dir{"reuse_fresh_" + std::to_string(threads)};
    TempDir warm_dir{"reuse_warm_" + std::to_string(threads)};
    const ReuseCapture fresh = run_reuse_arm(false, threads, fresh_dir.path);
    const ReuseCapture warm = run_reuse_arm(true, threads, warm_dir.path);
    expect_reuse_eq(warm, fresh);
  }
}

TEST(ShardStateReuse, SurvivesMidStudyThreadCountChange) {
  // Day 0 at 2 workers, days 1-2 at 4: the shard count changes under the
  // reused slab, which must rebuild without leaking day-0 state into day 1.
  TempDir fresh_dir{"reuse_fresh_switch"};
  TempDir warm_dir{"reuse_warm_switch"};
  const ReuseCapture fresh = run_reuse_arm(false, 2, fresh_dir.path, true);
  const ReuseCapture warm = run_reuse_arm(true, 2, warm_dir.path, true);
  expect_reuse_eq(warm, fresh);
}

}  // namespace
}  // namespace tl
