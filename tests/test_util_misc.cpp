// Calendar, hashing, CSV, accumulators, and table formatting.

#include <gtest/gtest.h>

#include <sstream>

#include "util/accumulator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/hash.hpp"
#include "util/sim_time.hpp"
#include "util/table.hpp"

namespace tl::util {
namespace {

TEST(SimCalendar, EpochIsAMonday) {
  EXPECT_EQ(SimCalendar::day_of_week(0), DayOfWeek::kMonday);
  EXPECT_FALSE(SimCalendar::is_weekend(0));
}

TEST(SimCalendar, WeekWrapsCorrectly) {
  EXPECT_EQ(SimCalendar::day_of_week(5 * kMsPerDay), DayOfWeek::kSaturday);
  EXPECT_EQ(SimCalendar::day_of_week(6 * kMsPerDay), DayOfWeek::kSunday);
  EXPECT_EQ(SimCalendar::day_of_week(7 * kMsPerDay), DayOfWeek::kMonday);
  EXPECT_TRUE(SimCalendar::is_weekend_day(12));  // second Saturday
  EXPECT_FALSE(SimCalendar::is_weekend_day(14));
}

TEST(SimCalendar, BinsAndHours) {
  const TimestampMs t = SimCalendar::at(3, 8.75);  // day 3, 08:45
  EXPECT_EQ(SimCalendar::day_index(t), 3);
  EXPECT_EQ(SimCalendar::hour_of_day(t), 8);
  EXPECT_EQ(SimCalendar::half_hour_bin(t), 17);
  EXPECT_NEAR(SimCalendar::fractional_hour(t), 8.75, 1e-9);
  EXPECT_TRUE(SimCalendar::is_night(SimCalendar::at(0, 7.99)));
  EXPECT_FALSE(SimCalendar::is_night(SimCalendar::at(0, 8.0)));
}

TEST(SimCalendar, FormatTimestamp) {
  const TimestampMs t = SimCalendar::at(7, 8.5) + 31 * kMsPerSecond + 113;
  EXPECT_EQ(format_timestamp(t), "d07 Mo 08:30:31.113");
}

TEST(Hash, AnonymizeIsStableAndKeyed) {
  EXPECT_EQ(anonymize(42, 7), anonymize(42, 7));
  EXPECT_NE(anonymize(42, 7), anonymize(42, 8));
  EXPECT_NE(anonymize(42, 7), anonymize(43, 7));
}

TEST(Hash, Fnv1aMatchesReference) {
  // Reference FNV-1a 64-bit of the empty string.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Hash, FormatAnonId) {
  EXPECT_EQ(format_anon_id(0xabcULL), "anon:0000000000000abc");
}

TEST(Csv, RoundTripsQuotedFields) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  std::istringstream in{out.str()};
  // The exporter never emits embedded newlines; parse the first line parts.
  const auto rows = read_csv(in);
  ASSERT_GE(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "plain");
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "with\"quote");
}

TEST(Csv, ParsesEscapedQuotes) {
  const auto cells = parse_csv_line(R"(a,"b""c",d)");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[1], "b\"c");
}

TEST(Accumulator, MatchesExactStatistics) {
  Accumulator acc;
  const std::vector<double> data{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : data) acc.add(x);
  EXPECT_EQ(acc.count(), data.size());
  EXPECT_NEAR(acc.mean(), 5.0, 1e-12);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.sum(), 40.0, 1e-12);
}

TEST(Accumulator, MergeEqualsSinglePass) {
  Accumulator a, b, whole;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    (i < 40 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(ReservoirSample, KeepsEverythingBelowCapacity) {
  ReservoirSample r{100};
  for (int i = 0; i < 50; ++i) r.add(i);
  EXPECT_EQ(r.values().size(), 50u);
  EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirSample, QuantileOverUniformStream) {
  ReservoirSample r{5'000, 77};
  for (int i = 0; i < 100'000; ++i) r.add(i % 1000);
  EXPECT_NEAR(r.quantile(0.5), 500.0, 30.0);
  EXPECT_NEAR(r.quantile(0.95), 950.0, 30.0);
  EXPECT_THROW(r.quantile(1.5), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t{{"A", "LongHeader"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| A      | LongHeader |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2          |"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t{{"A", "B"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.123456, 1), "12.3%");
}

TEST(CliParse, UintAcceptsWholeStringWithinRange) {
  EXPECT_EQ(parse_uint("0"), 0u);
  EXPECT_EQ(parse_uint("42"), 42u);
  EXPECT_EQ(parse_uint("18446744073709551615"), UINT64_MAX);
  // Boundaries of an explicit range are inclusive.
  EXPECT_EQ(parse_uint("1", 1, 8), 1u);
  EXPECT_EQ(parse_uint("8", 1, 8), 8u);
}

TEST(CliParse, UintRejectsJunkSignsOverflowAndRange) {
  EXPECT_FALSE(parse_uint(""));
  EXPECT_FALSE(parse_uint("+7"));   // signs are not silently tolerated
  EXPECT_FALSE(parse_uint("-1"));   // would wrap through unsigned conversion
  EXPECT_FALSE(parse_uint(" 3"));
  EXPECT_FALSE(parse_uint("3 "));
  EXPECT_FALSE(parse_uint("3x"));   // atoi would have said 3
  EXPECT_FALSE(parse_uint("0x10"));
  EXPECT_FALSE(parse_uint("18446744073709551616"));  // UINT64_MAX + 1
  EXPECT_FALSE(parse_uint("0", 1, 8));
  EXPECT_FALSE(parse_uint("9", 1, 8));
}

TEST(CliParse, DoubleAcceptsDecimalsWithinRange) {
  EXPECT_DOUBLE_EQ(parse_double("0.25", 0.0, 1.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("0", 0.0, 1.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(parse_double("1", 0.0, 1.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(parse_double("2.5e-1", 0.0, 1.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-0.5", -1.0, 1.0).value(), -0.5);
}

TEST(CliParse, DoubleRejectsJunkNonFiniteAndRange) {
  EXPECT_FALSE(parse_double("", 0.0, 1.0));
  EXPECT_FALSE(parse_double("0.5rate", 0.0, 1.0));
  EXPECT_FALSE(parse_double(" 0.5", 0.0, 1.0));
  EXPECT_FALSE(parse_double("nan", 0.0, 1.0));   // NaN passes no range check
  EXPECT_FALSE(parse_double("inf", 0.0, 1e308));
  EXPECT_FALSE(parse_double("1e999", 0.0, 1e308));  // overflows to rejection
  EXPECT_FALSE(parse_double("1.01", 0.0, 1.0));
  EXPECT_FALSE(parse_double("-0.01", 0.0, 1.0));
}

}  // namespace
}  // namespace tl::util
