// Serve-mode tests: WAL tail-follow semantics (pending vs torn tails,
// exactly-once delivery, concurrent reader/crashing-writer regression),
// retention on pruned chains, StreamAggregates windowing + serialization,
// WalTailer checkpoint/resume, and the kill-the-tailer chaos proof that
// aggregates converge bit-for-bit to a batch oracle across seeded
// kill/recover schedules (TL_CHAOS_SCHEDULES elevates the count in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "analysis/ecdf.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "serve/stream_aggregates.hpp"
#include "serve/wal_tailer.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/sinks.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tl {
namespace {

using serve::StreamAggregates;
using serve::WalTailer;
using telemetry::HandoverRecord;
using telemetry::LogCursor;
using telemetry::RecordLog;
using telemetry::TailReadResult;
using telemetry::TailState;

namespace stdfs = std::filesystem;

// --- helpers -----------------------------------------------------------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_serve_" + name) {
    stdfs::remove_all(path);
  }
  ~TempDir() { stdfs::remove_all(path); }
  std::string path;
};

/// Deterministic in (day, i) — the writer-crash tests rely on recovery
/// regenerating byte-identical frames from these.
HandoverRecord make_record(int day, std::uint32_t i) {
  HandoverRecord r;
  r.timestamp = static_cast<util::TimestampMs>(day) * util::kMsPerDay +
                500 * static_cast<util::TimestampMs>(i + 1);
  r.success = (i % 5) != 0;
  r.duration_ms = (i % 83 == 0) ? std::numeric_limits<float>::quiet_NaN()
                                : 25.0f + static_cast<float>((i * 7 + day) % 120);
  r.cause = r.success ? corenet::kCauseNone
                      : static_cast<corenet::CauseId>(2 + i % 4);
  r.anon_user_id = 0xAB00000000ULL + i;
  r.source_sector = 100 + i % 17;
  r.target_sector = 200 + i % 13;
  r.source_rat = topology::ObservedRat::kG45Nsa;
  r.target_rat = static_cast<topology::ObservedRat>(i % 3);
  r.device_type = static_cast<devices::DeviceType>(i % 3);
  r.manufacturer = static_cast<devices::ManufacturerId>(i % 5);
  r.postcode = 700 + i % 9;
  r.district = static_cast<geo::DistrictId>(1 + i % 6);
  r.area = (i % 2) ? geo::AreaType::kUrban : geo::AreaType::kRural;
  r.region = geo::Region::kCapital;
  r.vendor = static_cast<topology::Vendor>(i % 4);
  r.srvcc = (i % 11 == 0);
  r.attempt = static_cast<std::uint8_t>(i % 2);
  return r;
}

constexpr int kPerDay = 150;

/// Commits days [first, first + count) with kPerDay records each; the app
/// state payload is a deterministic function of the day.
void commit_days(RecordLog& log, int first, int count) {
  for (int day = first; day < first + count; ++day) {
    for (std::uint32_t i = 0; i < kPerDay; ++i) log.append(make_record(day, i));
    const std::vector<std::uint8_t> state{static_cast<std::uint8_t>(day),
                                          0x5A};
    log.commit_day(day, state);
  }
}

/// A fresh multi-segment WAL at `dir` holding days [0, days).
void build_wal(const std::string& dir, int days,
               std::uint64_t max_segment_bytes = 16 * 1024) {
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = dir;
  opt.max_segment_bytes = max_segment_bytes;
  opt.write_chunk_bytes = 512;
  RecordLog log{real, opt};
  log.open();
  commit_days(log, 0, days);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// A CRC-framed WAL frame exactly as the writer lays it down.
std::vector<std::uint8_t> make_frame(std::uint8_t type,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = util::crc32c(&type, 1);
  crc = util::crc32c(payload.data(), payload.size(), crc);
  put_u32(out, util::mask_crc32c(crc));
  out.push_back(type);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> make_marker_payload(
    int day, std::uint64_t in_day, std::uint64_t total,
    const std::vector<std::uint8_t>& app_state = {}) {
  std::vector<std::uint8_t> p;
  put_u32(p, static_cast<std::uint32_t>(day));
  put_u64(p, in_day);
  put_u64(p, total);
  put_u32(p, static_cast<std::uint32_t>(app_state.size()));
  p.insert(p.end(), app_state.begin(), app_state.end());
  return p;
}

/// Appends raw bytes to the newest segment of `dir` (crafting torn and
/// pending tails the real writer cannot be asked to produce on demand).
void append_raw(const std::string& dir, const std::vector<std::uint8_t>& bytes,
                std::size_t take = SIZE_MAX) {
  auto& real = io::StdioFileSystem::instance();
  const auto names = real.list(dir, "wal-");
  ASSERT_FALSE(names.empty());
  std::ofstream os{dir + "/" + names.back(),
                   std::ios::binary | std::ios::app};
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(std::min(take, bytes.size())));
  ASSERT_TRUE(os.good());
}

/// Collects everything follow() delivers plus the day boundaries.
struct CollectingSink final : telemetry::RecordSink {
  std::vector<HandoverRecord> records;
  std::vector<int> days;
  void consume(const HandoverRecord& r) override { records.push_back(r); }
  void on_day_end(int day) override { days.push_back(day); }
};

int chaos_schedule_count() {
  if (const char* env = std::getenv("TL_CHAOS_SCHEDULES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 100;
}

void copy_wal(const std::string& from, const std::string& to) {
  stdfs::create_directories(to);
  auto& real = io::StdioFileSystem::instance();
  for (const auto& name : real.list(from, "wal-")) {
    stdfs::copy_file(from + "/" + name, to + "/" + name,
                     stdfs::copy_options::overwrite_existing);
  }
}

// --- tail-follow semantics ---------------------------------------------------

TEST(TailFollow, MissingDirectoryIsClean) {
  TempDir tmp{"follow_empty"};
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  const TailReadResult r = RecordLog::follow(real, tmp.path + "/nope", cursor, sink);
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_EQ(r.days_delivered, 0u);
  EXPECT_TRUE(cursor.fresh());
}

TEST(TailFollow, DeliversWholeLogThenClean) {
  TempDir tmp{"follow_all"};
  build_wal(tmp.path, 4);
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  const TailReadResult r = RecordLog::follow(real, tmp.path, cursor, sink);
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_EQ(r.days_delivered, 4u);
  EXPECT_EQ(r.records_delivered, 4u * kPerDay);
  EXPECT_EQ(sink.days, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(cursor.day, 3);
  EXPECT_EQ(cursor.records, 4u * kPerDay);
  // The newest marker's app state rides out.
  EXPECT_EQ(r.last_app_state, (std::vector<std::uint8_t>{3, 0x5A}));

  // Replay oracle: follow() delivered the exact same stream.
  const auto oracle = RecordLog::read_all(real, tmp.path);
  ASSERT_EQ(sink.records.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(sink.records[i].timestamp, oracle[i].timestamp) << i;
    ASSERT_EQ(sink.records[i].anon_user_id, oracle[i].anon_user_id) << i;
  }

  // A second pass delivers nothing — exactly once.
  CollectingSink again;
  const TailReadResult r2 = RecordLog::follow(real, tmp.path, cursor, again);
  EXPECT_EQ(r2.state, TailState::kClean);
  EXPECT_EQ(r2.days_delivered, 0u);
  EXPECT_TRUE(again.records.empty());
}

TEST(TailFollow, MaxDaysBoundsEachPoll) {
  TempDir tmp{"follow_bounded"};
  build_wal(tmp.path, 5);
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  std::vector<TailState> states;
  for (int polls = 0; polls < 10; ++polls) {
    const TailReadResult r = RecordLog::follow(real, tmp.path, cursor, sink, 2);
    EXPECT_LE(r.days_delivered, 2u);
    states.push_back(r.state);
    if (r.state == TailState::kClean) break;
    ASSERT_EQ(r.state, TailState::kMore);
  }
  EXPECT_EQ(states, (std::vector<TailState>{TailState::kMore, TailState::kMore,
                                            TailState::kClean}));
  EXPECT_EQ(sink.days, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TailFollow, PartialFrameHeaderIsPending) {
  TempDir tmp{"follow_pend_hdr"};
  build_wal(tmp.path, 2, 1 << 20);  // single segment
  const auto frame = make_frame(RecordLog::kRecordFrame, [] {
    std::vector<std::uint8_t> payload;
    RecordLog::encode_record(make_record(2, 0), payload);
    return payload;
  }());
  append_raw(tmp.path, frame, 5);  // header cut short
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  const TailReadResult r = RecordLog::follow(real, tmp.path, cursor, sink);
  EXPECT_EQ(r.state, TailState::kPending);
  EXPECT_EQ(r.days_delivered, 2u);  // committed days still flow
  EXPECT_EQ(cursor.day, 1);
}

TEST(TailFollow, PartialPayloadIsPending) {
  TempDir tmp{"follow_pend_pay"};
  build_wal(tmp.path, 1, 1 << 20);
  std::vector<std::uint8_t> payload;
  RecordLog::encode_record(make_record(1, 0), payload);
  const auto frame = make_frame(RecordLog::kRecordFrame, payload);
  append_raw(tmp.path, frame, frame.size() - 7);
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  EXPECT_EQ(RecordLog::follow(real, tmp.path, cursor, sink).state,
            TailState::kPending);
}

TEST(TailFollow, RecordsWithoutMarkerArePendingAndNeverDelivered) {
  TempDir tmp{"follow_no_marker"};
  build_wal(tmp.path, 1, 1 << 20);
  std::vector<std::uint8_t> payload;
  RecordLog::encode_record(make_record(1, 0), payload);
  append_raw(tmp.path, make_frame(RecordLog::kRecordFrame, payload));
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  for (int poll = 0; poll < 3; ++poll) {
    const TailReadResult r = RecordLog::follow(real, tmp.path, cursor, sink);
    EXPECT_EQ(r.state, TailState::kPending);
  }
  // The unmarked record was read three times and delivered zero times.
  EXPECT_EQ(sink.records.size(), static_cast<std::size_t>(kPerDay));
  // Completing the commit delivers the day exactly once.
  append_raw(tmp.path,
             make_frame(RecordLog::kDayMarkerFrame,
                        make_marker_payload(1, 1, kPerDay + 1)));
  const TailReadResult r = RecordLog::follow(real, tmp.path, cursor, sink);
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_EQ(r.days_delivered, 1u);
  EXPECT_EQ(sink.records.size(), static_cast<std::size_t>(kPerDay) + 1);
  EXPECT_EQ(sink.days, (std::vector<int>{0, 1}));
}

TEST(TailFollow, CompleteFrameWithBadCrcIsTorn) {
  TempDir tmp{"follow_torn_crc"};
  build_wal(tmp.path, 1, 1 << 20);
  std::vector<std::uint8_t> payload;
  RecordLog::encode_record(make_record(1, 0), payload);
  auto frame = make_frame(RecordLog::kRecordFrame, payload);
  frame.back() ^= 0xFF;  // complete frame, wrong bytes
  append_raw(tmp.path, frame);
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  const TailReadResult r = RecordLog::follow(real, tmp.path, cursor, sink);
  EXPECT_EQ(r.state, TailState::kTorn);
  EXPECT_EQ(r.days_delivered, 1u);  // the committed prefix still flows
}

TEST(TailFollow, ForeignFrameTypeIsTorn) {
  TempDir tmp{"follow_torn_type"};
  build_wal(tmp.path, 1, 1 << 20);
  append_raw(tmp.path, make_frame(99, {1, 2, 3}));
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  EXPECT_EQ(RecordLog::follow(real, tmp.path, cursor, sink).state,
            TailState::kTorn);
}

TEST(TailFollow, AbsurdFrameLengthIsTorn) {
  TempDir tmp{"follow_torn_len"};
  build_wal(tmp.path, 1, 1 << 20);
  std::vector<std::uint8_t> junk;
  put_u32(junk, 0x7FFFFFFFu);  // > kMaxFrameLen: can never become valid
  put_u32(junk, 0);
  junk.push_back(RecordLog::kRecordFrame);
  append_raw(tmp.path, junk);
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  EXPECT_EQ(RecordLog::follow(real, tmp.path, cursor, sink).state,
            TailState::kTorn);
}

TEST(TailFollow, MarkerCountMismatchThrows) {
  TempDir tmp{"follow_bad_marker"};
  build_wal(tmp.path, 1, 1 << 20);
  // A marker claiming 5 in-day records when none precede it.
  append_raw(tmp.path,
             make_frame(RecordLog::kDayMarkerFrame,
                        make_marker_payload(1, 5, kPerDay + 5)));
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  EXPECT_THROW(RecordLog::follow(real, tmp.path, cursor, sink), io::IoError);
}

TEST(TailFollow, NonMonotonicDayMarkerThrows) {
  TempDir tmp{"follow_day_regress"};
  build_wal(tmp.path, 2, 1 << 20);
  // Day 1 again, after day 1 already committed.
  append_raw(tmp.path,
             make_frame(RecordLog::kDayMarkerFrame,
                        make_marker_payload(1, 0, 2 * kPerDay)));
  auto& real = io::StdioFileSystem::instance();
  LogCursor cursor;
  CollectingSink sink;
  EXPECT_THROW(RecordLog::follow(real, tmp.path, cursor, sink), io::IoError);
}

TEST(TailFollow, CursorSegmentDeletedThrows) {
  TempDir tmp{"follow_seg_gone"};
  build_wal(tmp.path, 6, 8 * 1024);
  auto& real = io::StdioFileSystem::instance();
  const auto names = real.list(tmp.path, "wal-");
  ASSERT_GT(names.size(), 1u);
  LogCursor cursor;
  CollectingSink sink;
  ASSERT_EQ(RecordLog::follow(real, tmp.path, cursor, sink).state,
            TailState::kClean);
  real.remove(tmp.path + "/" + RecordLog::segment_name(cursor.segment));
  EXPECT_THROW(RecordLog::follow(real, tmp.path, cursor, sink), io::IoError);
}

TEST(TailFollow, FreshCursorStartsAtPrunedChainBase) {
  TempDir tmp{"follow_pruned"};
  build_wal(tmp.path, 6, 8 * 1024);
  auto& real = io::StdioFileSystem::instance();
  auto names = real.list(tmp.path, "wal-");
  ASSERT_GT(names.size(), 2u);
  // Prune the first segments, as serve-mode retention would.
  real.remove(tmp.path + "/" + names[0]);
  real.remove(tmp.path + "/" + names[1]);
  LogCursor cursor;
  CollectingSink sink;
  const TailReadResult r = RecordLog::follow(real, tmp.path, cursor, sink);
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_GT(r.days_delivered, 0u);
  EXPECT_LT(r.days_delivered, 6u);
  // The adopted cumulative total means cursor.records reflects the whole
  // stream, not just the surviving segments.
  EXPECT_EQ(cursor.records, 6u * kPerDay);
  EXPECT_EQ(cursor.day, 5);
}

// Satellite regression: a reader polling while a writer appends and then
// crashes mid-segment must see only pending (never torn) tails, deliver
// every day exactly once, and converge after the writer recovers.
TEST(TailFollow, ConcurrentReaderSurvivesWriterCrash) {
  TempDir tmp{"follow_concurrent"};
  auto& real = io::StdioFileSystem::instance();
  constexpr int kDays = 6;

  // Dry run on a scratch directory to size the op horizon for the crash.
  std::uint64_t horizon = 0;
  {
    TempDir scratch{"follow_concurrent_dry"};
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    RecordLog::Options opt;
    opt.directory = scratch.path;
    opt.max_segment_bytes = 16 * 1024;
    opt.write_chunk_bytes = 512;
    RecordLog log{ffs, opt};
    log.open();
    commit_days(log, 0, kDays);
    horizon = ffs.ops();
  }
  ASSERT_GT(horizon, 10u);

  std::atomic<bool> writer_done{false};
  std::atomic<int> crashes{0};

  std::thread writer([&] {
    RecordLog::Options opt;
    opt.directory = tmp.path;
    opt.max_segment_bytes = 16 * 1024;
    opt.write_chunk_bytes = 512;
    // Phase 1: die mid-stream at a planned op.
    {
      io::IoFaultPlan plan;
      plan.add(horizon / 2, io::IoFaultKind::kCrash);
      io::FaultyFileSystem ffs{real, plan, 0x7EA5ULL};
      RecordLog log{ffs, opt};
      try {
        log.open();
        commit_days(log, 0, kDays);
      } catch (const io::SimulatedCrash&) {
        crashes.fetch_add(1);
      }
    }
    // Phase 2: a fresh "process" recovers and finishes the study.
    {
      RecordLog log{real, opt};
      const telemetry::LogRecoveryReport rec = log.open();
      commit_days(log, rec.last_committed_day + 1, kDays - 1 - rec.last_committed_day);
    }
    writer_done.store(true);
  });

  LogCursor cursor;
  CollectingSink sink;
  bool saw_pending = false;
  bool saw_torn = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    TailReadResult r;
    try {
      r = RecordLog::follow(real, tmp.path, cursor, sink, 1);
    } catch (const io::IoError&) {
      // The only IoError a live chain can produce here is a transient view
      // (e.g. listing raced a rename); treat as retry.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (r.state == TailState::kTorn) saw_torn = true;
    if (r.state == TailState::kPending) saw_pending = true;
    if (cursor.day == kDays - 1 && writer_done.load()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "reader stalled";
    if (r.state != TailState::kMore) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  writer.join();

  EXPECT_EQ(crashes.load(), 1);
  EXPECT_FALSE(saw_torn) << "a live writer's tail must never look torn";
  EXPECT_EQ(sink.days, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  const auto oracle = RecordLog::read_all(real, tmp.path);
  ASSERT_EQ(sink.records.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(sink.records[i].timestamp, oracle[i].timestamp) << i;
  }
  RecordProperty("saw_pending", saw_pending ? 1 : 0);
}

// --- pruned-chain writer recovery (base-aware scan) --------------------------

TEST(PrunedChain, WriterReopensAndAppendsAfterRetention) {
  TempDir tmp{"pruned_writer"};
  build_wal(tmp.path, 6, 8 * 1024);
  auto& real = io::StdioFileSystem::instance();
  auto names = real.list(tmp.path, "wal-");
  ASSERT_GT(names.size(), 2u);
  real.remove(tmp.path + "/" + names[0]);
  real.remove(tmp.path + "/" + names[1]);

  RecordLog::Options opt;
  opt.directory = tmp.path;
  opt.max_segment_bytes = 8 * 1024;
  opt.write_chunk_bytes = 512;
  RecordLog log{real, opt};
  const telemetry::LogRecoveryReport rec = log.open();
  EXPECT_EQ(rec.last_committed_day, 5);
  EXPECT_EQ(rec.committed_records, 6u * kPerDay);  // adopted cumulative total
  commit_days(log, 6, 1);
  EXPECT_EQ(log.committed_records(), 7u * kPerDay);

  // The new day tails out of the pruned chain like any other.
  LogCursor cursor;
  CollectingSink sink;
  EXPECT_EQ(RecordLog::follow(real, tmp.path, cursor, sink).state,
            TailState::kClean);
  EXPECT_EQ(cursor.day, 6);
  EXPECT_EQ(cursor.records, 7u * kPerDay);
}

// --- StreamAggregates --------------------------------------------------------

StreamAggregates::Options small_aggs() {
  StreamAggregates::Options o;
  o.window_days = 3;
  o.sketch_k = 32;
  return o;
}

void feed_day(StreamAggregates& aggs, int day) {
  for (std::uint32_t i = 0; i < kPerDay; ++i) aggs.consume(make_record(day, i));
  aggs.on_day_end(day);
}

TEST(StreamAggregatesTest, WindowRetiresOldDaysLifetimeSurvives) {
  StreamAggregates aggs{small_aggs()};
  for (int day = 0; day < 7; ++day) feed_day(aggs, day);
  EXPECT_EQ(aggs.window().size(), 3u);
  EXPECT_EQ(aggs.window().front().day, 4);
  EXPECT_EQ(aggs.window().back().day, 6);
  EXPECT_EQ(aggs.days_sealed(), 7u);
  EXPECT_EQ(aggs.total_records(), 7u * kPerDay);
  // Per-sector lifetime counts cover all 7 days, not just the window.
  std::uint64_t sector_total = 0;
  for (const auto& [sector, tally] : aggs.sectors()) sector_total += tally.handovers;
  EXPECT_EQ(sector_total, 7u * kPerDay);

  const auto report = aggs.report();
  EXPECT_EQ(report.days, 3u);
  EXPECT_EQ(report.first_day, 4);
  EXPECT_EQ(report.last_day, 6);
  EXPECT_EQ(report.handovers, 3u * kPerDay);
  // Every record carries one of 4 vendors and 3 target RATs.
  std::uint64_t vendor_sum = 0;
  for (const auto& t : report.by_vendor) vendor_sum += t.handovers;
  EXPECT_EQ(vendor_sum, report.handovers);
  std::uint64_t district_sum = 0;
  for (const auto& [d, t] : report.by_district) district_sum += t.handovers;
  EXPECT_EQ(district_sum, report.handovers);
}

TEST(StreamAggregatesTest, ReportQuantilesWithinCertifiedBound) {
  StreamAggregates aggs{small_aggs()};
  std::vector<double> durations;
  for (int day = 0; day < 3; ++day) {
    for (std::uint32_t i = 0; i < kPerDay; ++i) {
      const HandoverRecord r = make_record(day, i);
      aggs.consume(r);
      if (r.success && !std::isnan(r.duration_ms)) {
        durations.push_back(static_cast<double>(r.duration_ms));
      }
    }
    aggs.on_day_end(day);
  }
  const auto report = aggs.report();
  ASSERT_EQ(report.sketch_count, durations.size());
  const analysis::Ecdf exact{durations};
  EXPECT_NEAR(exact.at(report.p50_ms), 0.5, report.quantile_rank_error + 1e-9);
  EXPECT_NEAR(exact.at(report.p90_ms), 0.9, report.quantile_rank_error + 1e-9);
  EXPECT_GT(report.p99_ms, report.p50_ms);
}

TEST(StreamAggregatesTest, OutOfOrderDaySealThrows) {
  StreamAggregates aggs{small_aggs()};
  feed_day(aggs, 3);
  EXPECT_THROW(aggs.on_day_end(3), std::logic_error);
  EXPECT_THROW(aggs.on_day_end(1), std::logic_error);
  EXPECT_NO_THROW(aggs.on_day_end(4));
}

TEST(StreamAggregatesTest, SerializeRoundTripsByteIdentically) {
  StreamAggregates aggs{small_aggs()};
  for (int day = 0; day < 5; ++day) feed_day(aggs, day);
  // Leave an open day in flight too.
  aggs.consume(make_record(5, 0));
  std::vector<std::uint8_t> bytes;
  aggs.serialize(bytes);
  StreamAggregates back = StreamAggregates::deserialize(bytes);
  std::vector<std::uint8_t> again;
  back.serialize(again);
  EXPECT_EQ(bytes, again);
  EXPECT_EQ(back.total_records(), aggs.total_records());
  EXPECT_EQ(back.days_sealed(), aggs.days_sealed());
  // The restored instance keeps aggregating identically.
  for (std::uint32_t i = 1; i < kPerDay; ++i) {
    aggs.consume(make_record(5, i));
    back.consume(make_record(5, i));
  }
  aggs.on_day_end(5);
  back.on_day_end(5);
  std::vector<std::uint8_t> a, b;
  aggs.serialize(a);
  back.serialize(b);
  EXPECT_EQ(a, b);
}

TEST(StreamAggregatesTest, DeserializeRejectsCorruption) {
  StreamAggregates aggs{small_aggs()};
  feed_day(aggs, 0);
  std::vector<std::uint8_t> bytes;
  aggs.serialize(bytes);
  auto expect_rejected = [](std::vector<std::uint8_t> mutated) {
    EXPECT_THROW(StreamAggregates::deserialize(mutated), std::runtime_error);
  };
  expect_rejected({});
  expect_rejected({bytes.begin(), bytes.end() - 1});
  auto bad = bytes;
  bad[0] ^= 0xFF;  // magic
  expect_rejected(bad);
  bad = bytes;
  bad[4] = 0x66;  // version
  expect_rejected(bad);
  bad = bytes;
  bad.push_back(0);  // trailing garbage
  expect_rejected(bad);
  bad = bytes;
  // Last byte = MSB of the trailing (open-day) sketch's level count; the
  // inflated count runs past the buffer and the sketch decoder rejects it.
  bad.back() ^= 0x01;
  expect_rejected(bad);
}

// --- WalTailer ---------------------------------------------------------------

WalTailer::Options tailer_options(const TempDir& dir, const std::string& wal) {
  WalTailer::Options o;
  o.wal_directory = wal;
  o.checkpoint_path = dir.path + "/serve.ckpt";
  o.window_days = 3;
  o.sketch_k = 32;
  o.checkpoint_every_days = 2;
  o.retention = false;
  o.max_days_per_poll = 64;
  return o;
}

TEST(WalTailerTest, PollIngestsEverythingAndReports) {
  TempDir tmp{"tailer_basic"};
  build_wal(tmp.path, 5);
  auto& real = io::StdioFileSystem::instance();
  WalTailer tailer{real, tailer_options(tmp, tmp.path)};
  tailer.open();
  const WalTailer::PollResult r = tailer.poll();
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_EQ(r.days_delivered, 5u);
  EXPECT_EQ(r.records_delivered, 5u * kPerDay);
  EXPECT_TRUE(r.checkpointed);  // 5 days >= checkpoint_every_days
  EXPECT_EQ(tailer.cursor(), tailer.durable_cursor());
  const auto report = tailer.report();
  EXPECT_EQ(report.days, 3u);  // window caps the report
  EXPECT_EQ(report.last_day, 4);
}

TEST(WalTailerTest, CheckpointResumeIsExactlyOnce) {
  TempDir tmp{"tailer_resume"};
  build_wal(tmp.path, 6);
  auto& real = io::StdioFileSystem::instance();

  // Batch oracle over the whole log.
  StreamAggregates oracle{small_aggs()};
  RecordLog::replay(real, tmp.path, oracle);
  std::vector<std::uint8_t> oracle_bytes;
  oracle.serialize(oracle_bytes);

  WalTailer::Options opt = tailer_options(tmp, tmp.path);
  opt.max_days_per_poll = 2;  // several polls, several checkpoints
  {
    WalTailer tailer{real, opt};
    tailer.open();
    ASSERT_EQ(tailer.poll().state, TailState::kMore);  // days 0-1
    ASSERT_EQ(tailer.poll().state, TailState::kMore);  // days 2-3
    // Tailer "process" dies here, after 2 checkpoints.
  }
  {
    WalTailer tailer{real, opt};
    tailer.open();  // resumes from the day-3 checkpoint
    EXPECT_EQ(tailer.cursor().day, 3);
    EXPECT_EQ(tailer.aggregates().days_sealed(), 4u);
    WalTailer::PollResult r = tailer.poll();
    EXPECT_EQ(r.days_delivered, 2u);
    ASSERT_EQ(r.state, TailState::kClean);
    std::vector<std::uint8_t> bytes;
    tailer.aggregates().serialize(bytes);
    EXPECT_EQ(bytes, oracle_bytes);  // no day lost, none double-counted
  }
}

TEST(WalTailerTest, CorruptCheckpointIsRejectedNotIgnored) {
  TempDir tmp{"tailer_corrupt"};
  build_wal(tmp.path, 3);
  auto& real = io::StdioFileSystem::instance();
  const WalTailer::Options opt = tailer_options(tmp, tmp.path);
  {
    WalTailer tailer{real, opt};
    tailer.open();
    tailer.poll();
  }
  // Flip one byte mid-file.
  {
    std::fstream f{opt.checkpoint_path,
                   std::ios::binary | std::ios::in | std::ios::out};
    f.seekp(20);
    char c;
    f.seekg(20);
    f.get(c);
    f.seekp(20);
    f.put(static_cast<char>(c ^ 0x01));
  }
  WalTailer tailer{real, opt};
  EXPECT_THROW(tailer.open(), io::IoError);
}

TEST(WalTailerTest, StaleTmpFromCrashedCheckpointIsSwept) {
  TempDir tmp{"tailer_tmp"};
  build_wal(tmp.path, 2);
  auto& real = io::StdioFileSystem::instance();
  const WalTailer::Options opt = tailer_options(tmp, tmp.path);
  {
    std::ofstream os{opt.checkpoint_path + ".tmp", std::ios::binary};
    os << "half a checkpoint";
  }
  WalTailer tailer{real, opt};
  tailer.open();  // fresh start; the tmp is garbage, not state
  EXPECT_FALSE(real.exists(opt.checkpoint_path + ".tmp"));
  EXPECT_TRUE(tailer.cursor().fresh());
  EXPECT_EQ(tailer.poll().days_delivered, 2u);
}

TEST(WalTailerTest, CheckpointOptionMismatchIsRejected) {
  TempDir tmp{"tailer_opts"};
  build_wal(tmp.path, 3);
  auto& real = io::StdioFileSystem::instance();
  WalTailer::Options opt = tailer_options(tmp, tmp.path);
  {
    WalTailer tailer{real, opt};
    tailer.open();
    tailer.poll();
  }
  opt.sketch_k = 64;  // a different sketch resolution cannot merge streams
  WalTailer tailer{real, opt};
  EXPECT_THROW(tailer.open(), io::IoError);
}

TEST(WalTailerTest, RetentionDeletesOnlyBehindDurableCursor) {
  TempDir tmp{"tailer_retention"};
  build_wal(tmp.path, 8, 8 * 1024);
  auto& real = io::StdioFileSystem::instance();
  const std::size_t segments_before = real.list(tmp.path, "wal-").size();
  ASSERT_GT(segments_before, 2u);

  StreamAggregates oracle{small_aggs()};
  RecordLog::replay(real, tmp.path, oracle);
  std::vector<std::uint8_t> oracle_bytes;
  oracle.serialize(oracle_bytes);

  WalTailer::Options opt = tailer_options(tmp, tmp.path);
  opt.retention = true;
  opt.checkpoint_every_days = 1;
  {
    WalTailer tailer{real, opt};
    tailer.open();
    WalTailer::PollResult r = tailer.poll();
    ASSERT_EQ(r.state, TailState::kClean);
    EXPECT_GT(r.segments_retired, 0u);
    // Every surviving segment is at or after the durable cursor's.
    for (const auto& name : real.list(tmp.path, "wal-")) {
      std::uint32_t index = 0;
      ASSERT_EQ(std::sscanf(name.c_str(), "wal-%9u.tlseg", &index), 1);
      EXPECT_GE(index, tailer.durable_cursor().segment);
    }
    EXPECT_LT(real.list(tmp.path, "wal-").size(), segments_before);
  }
  // A restart over the pruned chain reproduces the oracle exactly.
  {
    WalTailer tailer{real, opt};
    tailer.open();
    EXPECT_EQ(tailer.poll().days_delivered, 0u);
    std::vector<std::uint8_t> bytes;
    tailer.aggregates().serialize(bytes);
    EXPECT_EQ(bytes, oracle_bytes);
  }
  // And the writer can still append to it (base-aware recovery).
  {
    RecordLog::Options wopt;
    wopt.directory = tmp.path;
    wopt.max_segment_bytes = 8 * 1024;
    wopt.write_chunk_bytes = 512;
    RecordLog log{real, wopt};
    EXPECT_EQ(log.open().last_committed_day, 7);
    commit_days(log, 8, 1);
  }
}

TEST(WalTailerTest, ExportsServeMetrics) {
  TempDir tmp{"tailer_obs"};
  build_wal(tmp.path, 3);
  auto& real = io::StdioFileSystem::instance();
  obs::MetricsRegistry registry;
  obs::ScopedGlobalRegistry scoped{&registry};
  WalTailer tailer{real, tailer_options(tmp, tmp.path)};
  tailer.open();
  tailer.poll();
  const obs::MetricsSnapshot snap = registry.scrape();
  const auto* days = snap.find_counter("tl_serve_days_total");
  ASSERT_NE(days, nullptr);
  EXPECT_EQ(days->value, 3u);
  const auto* records = snap.find_counter("tl_serve_records_total");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->value, 3u * kPerDay);
  const auto* ckpts = snap.find_counter("tl_serve_checkpoints_total");
  ASSERT_NE(ckpts, nullptr);
  EXPECT_EQ(ckpts->value, 1u);
  const auto* cursor_day = snap.find_gauge("tl_serve_cursor_day");
  ASSERT_NE(cursor_day, nullptr);
  EXPECT_EQ(cursor_day->value, 2.0);
}

TEST(WalTailerTest, PollSupervisedRetriesTransientFaults) {
  TempDir tmp{"tailer_retry"};
  build_wal(tmp.path, 3);
  auto& real = io::StdioFileSystem::instance();
  // One EIO early in the poll's op stream, then clean.
  io::IoFaultPlan plan;
  plan.add(0, io::IoFaultKind::kIoError);
  io::FaultyFileSystem ffs{real, plan, 1};
  WalTailer tailer{ffs, tailer_options(tmp, tmp.path)};
  tailer.open();
  supervise::RetryPolicy policy;
  policy.backoff_initial_ms = 0;
  policy.backoff_cap_ms = 0;
  WalTailer::PollResult result;
  const supervise::RetryReport report = tailer.poll_supervised(policy, &result);
  EXPECT_TRUE(report.ok()) << report.status.to_string();
  EXPECT_EQ(report.retries, 1);
  EXPECT_EQ(result.state, TailState::kClean);
  EXPECT_EQ(tailer.aggregates().days_sealed(), 3u);
}

// --- the chaos proof ---------------------------------------------------------

TEST(ServeChaos, KillTheTailerConvergesBitForBitToBatchOracle) {
  auto& real = io::StdioFileSystem::instance();
  TempDir ref{"chaos_ref"};
  constexpr int kDays = 8;
  build_wal(ref.path, kDays, 8 * 1024);
  ASSERT_GT(real.list(ref.path, "wal-").size(), 2u);

  // The batch oracle: one uninterrupted pass over the full log.
  StreamAggregates oracle{small_aggs()};
  RecordLog::replay(real, ref.path, oracle);
  std::vector<std::uint8_t> oracle_bytes;
  oracle.serialize(oracle_bytes);

  // Exact-vs-sketch sanity once, outside the schedule loop: the oracle's
  // quantiles respect the certified bound against the true durations.
  std::vector<double> durations;
  for (int day = 0; day < kDays; ++day) {
    for (std::uint32_t i = 0; i < kPerDay; ++i) {
      const HandoverRecord r = make_record(day, i);
      if (r.success && !std::isnan(r.duration_ms) && day >= kDays - 3) {
        durations.push_back(static_cast<double>(r.duration_ms));
      }
    }
  }
  const auto oracle_report = oracle.report();
  const analysis::Ecdf exact{durations};
  ASSERT_NEAR(exact.at(oracle_report.p50_ms), 0.5,
              oracle_report.quantile_rank_error + 1e-9);
  ASSERT_NEAR(exact.at(oracle_report.p90_ms), 0.9,
              oracle_report.quantile_rank_error + 1e-9);

  // Fault-free tailer pass to size the op horizon crashes are drawn from.
  auto make_options = [](const std::string& dir) {
    WalTailer::Options o;
    o.wal_directory = dir;
    o.checkpoint_path = dir + "/serve.ckpt";
    o.window_days = 3;
    o.sketch_k = 32;
    o.checkpoint_every_days = 1;
    o.retention = true;
    o.max_days_per_poll = 2;
    return o;
  };
  std::uint64_t horizon = 0;
  {
    TempDir dry{"chaos_dry"};
    copy_wal(ref.path, dry.path);
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    WalTailer tailer{ffs, make_options(dry.path)};
    tailer.open();
    while (tailer.poll().state != TailState::kClean) {
    }
    horizon = ffs.ops();
    std::vector<std::uint8_t> bytes;
    tailer.aggregates().serialize(bytes);
    ASSERT_EQ(bytes, oracle_bytes) << "fault-free tail != batch oracle";
  }
  ASSERT_GT(horizon, 10u);

  const int schedules = chaos_schedule_count();
  int total_crashes = 0;
  int total_io_aborts = 0;
  int schedules_with_retention = 0;

  for (int schedule = 0; schedule < schedules; ++schedule) {
    TempDir dir{"chaos_" + std::to_string(schedule)};
    copy_wal(ref.path, dir.path);
    const WalTailer::Options opt = make_options(dir.path);
    util::Rng meta =
        util::Rng::derive(0x5E4FEULL, static_cast<std::uint64_t>(schedule));
    int attempts = 0;
    std::uint64_t retired = 0;
    bool complete = false;

    while (!complete) {
      ASSERT_LT(attempts, 64) << "schedule " << schedule << " livelocked";
      ++attempts;
      io::IoFaultPlan plan;
      const bool clean = attempts > 1 && meta.chance(0.4);
      if (!clean) {
        const double transient_rate = (schedule % 3 == 0) ? 0.02 : 0.0;
        plan = io::IoFaultPlan::chaos(meta(), horizon + 8, transient_rate);
      }
      io::FaultyFileSystem ffs{real, plan, meta()};
      WalTailer tailer{ffs, opt};
      try {
        tailer.open();  // checkpoint load runs under fault injection too
        while (true) {
          const WalTailer::PollResult r = tailer.poll();
          retired += r.segments_retired;
          ASSERT_NE(r.state, TailState::kTorn)
              << "schedule " << schedule << ": committed log looked torn";
          ASSERT_NE(r.state, TailState::kPending)
              << "schedule " << schedule << ": committed log looked pending";
          if (r.state == TailState::kClean) break;
        }
        complete = true;
        // The survivor's live aggregates are bit-identical to the oracle:
        // exact counters exactly, sketches byte-for-byte.
        std::vector<std::uint8_t> bytes;
        tailer.aggregates().serialize(bytes);
        ASSERT_EQ(bytes, oracle_bytes) << "schedule " << schedule;
      } catch (const io::SimulatedCrash&) {
        ++total_crashes;
      } catch (const io::IoError&) {
        ++total_io_aborts;
      }
    }

    // Restart proof: checkpoint + retained segments alone reproduce the
    // oracle — no reread of retired history, no dependence on the dead
    // tailer's memory.
    {
      WalTailer tailer{real, opt};
      tailer.open();
      const WalTailer::PollResult r = tailer.poll();
      ASSERT_EQ(r.state, TailState::kClean) << "schedule " << schedule;
      ASSERT_EQ(r.days_delivered, 0u) << "schedule " << schedule;
      std::vector<std::uint8_t> bytes;
      tailer.aggregates().serialize(bytes);
      ASSERT_EQ(bytes, oracle_bytes) << "schedule " << schedule;
    }
    if (retired > 0) ++schedules_with_retention;
  }

  // The harness must have actually exercised the crash and retention paths.
  EXPECT_GT(total_crashes, schedules / 2);
  EXPECT_GT(schedules_with_retention, schedules / 2);
  RecordProperty("schedules", schedules);
  RecordProperty("crashes", total_crashes);
  RecordProperty("io_aborts", total_io_aborts);
  RecordProperty("retention_schedules", schedules_with_retention);
}

}  // namespace
}  // namespace tl
