// Summaries, ECDFs, histograms, and correlation measures.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/correlation.hpp"
#include "analysis/ecdf.hpp"
#include "analysis/histogram.hpp"
#include "analysis/summary.hpp"

namespace tl::analysis {
namespace {

TEST(Summary, QuantilesOfKnownData) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_NEAR(quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(v, 1.0), 10.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.5), 5.5, 1e-12);
  EXPECT_NEAR(quantile(v, 0.25), 3.25, 1e-12);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Summary, SixNumberSummaryMatchesR) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const auto s = summarize(v);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_NEAR(s.mean, 5.0, 1e-12);
  EXPECT_NEAR(s.median, 4.5, 1e-12);
  EXPECT_NEAR(s.q1, 4.0, 1e-12);
  EXPECT_NEAR(s.q3, 5.5, 1e-12);
}

TEST(Summary, BoxplotWhiskersAndOutliers) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 100};
  const auto b = boxplot(v);
  EXPECT_EQ(b.n, 9u);
  EXPECT_EQ(b.outliers, 1u);       // the 100
  EXPECT_EQ(b.whisker_hi, 8.0);    // largest point inside the fence
  EXPECT_EQ(b.whisker_lo, 1.0);
}

TEST(Summary, LogTransformDropsNonPositive) {
  const std::vector<double> v{0.0, -1.0, std::exp(1.0), std::exp(2.0)};
  const auto out = log_transform_positive(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], 1.0, 1e-12);
  EXPECT_NEAR(out[1], 2.0, 1e-12);
}

TEST(Ecdf, StepFunctionSemantics) {
  const std::vector<double> v{1.0, 2.0, 2.0, 3.0};
  const Ecdf e{v};
  EXPECT_EQ(e.at(0.5), 0.0);
  EXPECT_EQ(e.at(1.0), 0.25);
  EXPECT_EQ(e.at(2.0), 0.75);
  EXPECT_EQ(e.at(3.0), 1.0);
  EXPECT_EQ(e.at(99.0), 1.0);
}

TEST(Ecdf, InverseIsLeftContinuousQuantile) {
  const std::vector<double> v{10, 20, 30, 40};
  const Ecdf e{v};
  EXPECT_EQ(e.inverse(0.25), 10.0);
  EXPECT_EQ(e.inverse(0.26), 20.0);
  EXPECT_EQ(e.inverse(1.0), 40.0);
  EXPECT_THROW(e.inverse(0.0), std::invalid_argument);
}

TEST(Ecdf, CurveIsMonotone) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(std::sin(i) * 50.0);
  const Ecdf e{v};
  const auto curve = e.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].x, curve[i - 1].x);
    EXPECT_GE(curve[i].f, curve[i - 1].f);
  }
  EXPECT_NEAR(curve.back().f, 1.0, 1e-12);
}

TEST(Histogram, LinearBinning) {
  auto h = Histogram::linear(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.99);
  h.add(2.0);
  h.add(9.99);
  h.add(10.0);   // top edge counts into the last bin
  h.add(-0.1);   // underflow
  h.add(10.01);  // overflow
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bins()[0].count, 2u);
  EXPECT_EQ(h.bins()[1].count, 1u);
  EXPECT_EQ(h.bins()[4].count, 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, LogBinningCoversDecades) {
  auto h = Histogram::logarithmic(1.0, 1000.0, 3);
  EXPECT_EQ(h.bin_index(5.0), 0u);
  EXPECT_EQ(h.bin_index(50.0), 1u);
  EXPECT_EQ(h.bin_index(500.0), 2u);
  EXPECT_EQ(h.bin_index(0.5), Histogram::npos);
  EXPECT_THROW(Histogram::logarithmic(0.0, 10.0, 3), std::invalid_argument);
}

TEST(Histogram, GroupByBins) {
  auto h = Histogram::linear(0.0, 3.0, 3);
  const std::vector<double> x{0.5, 1.5, 1.6, 2.5};
  const std::vector<double> y{10, 20, 30, 40};
  const auto groups = group_by_bins(h, x, y);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], std::vector<double>{10});
  EXPECT_EQ(groups[1], (std::vector<double>{20, 30}));
  EXPECT_EQ(groups[2], std::vector<double>{40});
}

TEST(Correlation, PerfectLinearRelations) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> neg{-1, -2, -3, -4, -5};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
  EXPECT_THROW(pearson(x, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(pearson(x, std::vector<double>(5, 3.0)), std::invalid_argument);
}

TEST(Correlation, SpearmanIsRankBased) {
  // Monotone but nonlinear: Spearman 1, Pearson < 1.
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, SimpleFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const auto fit = simple_linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Correlation, RSquaredDropsWithNoise) {
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(i + ((i * 2654435761u) % 97) * 2.0);  // deterministic noise
  }
  const auto fit = simple_linear_fit(x, y);
  EXPECT_GT(fit.r_squared, 0.5);
  EXPECT_LT(fit.r_squared, 1.0);
}

}  // namespace
}  // namespace tl::analysis
