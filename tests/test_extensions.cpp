// Extensions: ping-pong detection & suppression, EN-DC signaling,
// control-plane events, QoS impact, and record sampling.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/control_plane.hpp"
#include "core/qos_model.hpp"
#include "telemetry/control_events.hpp"
#include "telemetry/pingpong.hpp"
#include "telemetry/sampling.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "test_world.hpp"

namespace tl {
namespace {

using testing::TestWorld;

telemetry::HandoverRecord make_record(std::uint64_t ue, util::TimestampMs t,
                                      topology::SectorId src, topology::SectorId dst,
                                      bool success = true) {
  telemetry::HandoverRecord r;
  r.anon_user_id = ue;
  r.timestamp = t;
  r.source_sector = src;
  r.target_sector = dst;
  r.success = success;
  r.duration_ms = 43.0f;
  return r;
}

// --- Ping-pong ----------------------------------------------------------------

TEST(PingPong, DetectsReturnWithinWindow) {
  telemetry::PingPongDetector detector{5'000};
  detector.consume(make_record(1, 1'000, 10, 20));
  detector.consume(make_record(1, 4'000, 20, 10));  // back within 3 s
  EXPECT_EQ(detector.ping_pongs(), 1u);
  EXPECT_EQ(detector.total_handovers(), 2u);
  EXPECT_NEAR(detector.ping_pong_rate(), 0.5, 1e-12);
  EXPECT_GT(detector.wasted_signaling_ms(), 0.0);
}

TEST(PingPong, IgnoresSlowReturnsAndOtherTargets) {
  telemetry::PingPongDetector detector{5'000};
  detector.consume(make_record(1, 1'000, 10, 20));
  detector.consume(make_record(1, 10'000, 20, 10));  // too late
  detector.consume(make_record(1, 11'000, 10, 30));  // different target
  detector.consume(make_record(1, 12'000, 30, 40));
  EXPECT_EQ(detector.ping_pongs(), 0u);
}

TEST(PingPong, TracksUesIndependently) {
  telemetry::PingPongDetector detector{5'000};
  detector.consume(make_record(1, 1'000, 10, 20));
  detector.consume(make_record(2, 1'500, 20, 10));  // different UE: no PP
  EXPECT_EQ(detector.ping_pongs(), 0u);
  detector.consume(make_record(2, 2'000, 10, 20));  // UE 2 returns: PP
  EXPECT_EQ(detector.ping_pongs(), 1u);
}

TEST(PingPong, FailedHosDoNotCount) {
  telemetry::PingPongDetector detector{5'000};
  detector.consume(make_record(1, 1'000, 10, 20));
  detector.consume(make_record(1, 2'000, 20, 10, /*success=*/false));
  EXPECT_EQ(detector.ping_pongs(), 0u);
  EXPECT_EQ(detector.total_handovers(), 1u);
}

TEST(PingPong, SimulatedWorldHasMeasurablePpRate) {
  // Small dedicated run (the shared world has no PP detector attached).
  core::StudyConfig cfg = core::StudyConfig::test_scale();
  cfg.days = 1;
  cfg.population.count = 2'000;
  core::Simulator sim{cfg};
  telemetry::PingPongDetector detector{10'000};
  sim.add_sink(&detector);
  sim.run();
  ASSERT_GT(detector.total_handovers(), 1'000u);
  EXPECT_GT(detector.ping_pongs(), 0u);
  EXPECT_LT(detector.ping_pong_rate(), 0.5);
}

TEST(PingPong, SuppressionPolicyReducesPpRate) {
  core::StudyConfig cfg = core::StudyConfig::test_scale();
  cfg.days = 1;
  cfg.population.count = 2'000;
  core::StudyConfig with = cfg;
  with.suppress_ping_pong = true;
  with.ping_pong_window_ms = 10'000;

  core::Simulator baseline{cfg};
  telemetry::PingPongDetector detector_base{10'000};
  baseline.add_sink(&detector_base);
  baseline.run();

  core::Simulator suppressed{with};
  telemetry::PingPongDetector detector_supp{10'000};
  suppressed.add_sink(&detector_supp);
  suppressed.run();

  EXPECT_LT(detector_supp.ping_pong_rate(), detector_base.ping_pong_rate());
}

// --- EN-DC ---------------------------------------------------------------------

TEST(EnDc, FiveGAnchoredHoCarriesSgnbLegs) {
  corenet::FailureModel failure_model;
  corenet::DurationModel durations;
  corenet::CauseCatalog causes;
  corenet::HandoverProcedure procedure{failure_model, durations, causes};
  corenet::CoreNetwork core;
  devices::Ue ue;
  ue.hof_multiplier = 0.0f;  // force success
  util::Rng rng{3};

  corenet::HoAttempt attempt;
  attempt.ue = &ue;
  attempt.source_sector = 1;
  attempt.target_sector = 2;
  attempt.endc = true;

  corenet::MessageTrace trace;
  procedure.execute(attempt, core, rng, &trace);
  const auto has = [&](corenet::MessageType t) {
    return std::any_of(trace.begin(), trace.end(),
                       [&](const auto& m) { return m.type == t; });
  };
  EXPECT_TRUE(has(corenet::MessageType::kSgNbReleaseRequest));
  EXPECT_TRUE(has(corenet::MessageType::kSgNbAdditionRequest));
  EXPECT_TRUE(has(corenet::MessageType::kSgNbAdditionRequestAck));
  EXPECT_TRUE(has(corenet::MessageType::kSgNbReconfigurationComplete));

  // Non-EN-DC HOs carry none of this.
  attempt.endc = false;
  trace.clear();
  procedure.execute(attempt, core, rng, &trace);
  EXPECT_FALSE(has(corenet::MessageType::kSgNbReleaseRequest));
}

TEST(EnDc, AddsSignalingTime) {
  corenet::FailureModel failure_model;
  corenet::DurationModel durations;
  corenet::CauseCatalog causes;
  corenet::HandoverProcedure procedure{failure_model, durations, causes};
  corenet::CoreNetwork core;
  devices::Ue ue;
  ue.hof_multiplier = 0.0f;
  util::Rng rng{4};

  corenet::HoAttempt attempt;
  attempt.ue = &ue;
  double plain = 0.0, endc = 0.0;
  for (int i = 0; i < 5'000; ++i) {
    attempt.endc = false;
    plain += procedure.execute(attempt, core, rng).duration_ms;
    attempt.endc = true;
    endc += procedure.execute(attempt, core, rng).duration_ms;
  }
  EXPECT_NEAR(endc / plain, 1.15, 0.03);
}

// --- Control-plane events --------------------------------------------------------

TEST(ControlPlane, GeneratesAllEventTypes) {
  const auto& w = TestWorld::instance();
  const core::ControlPlaneGenerator gen{w.sim->country(), w.sim->activity()};
  telemetry::ControlEventCounter counter;
  int generated_for = 0;
  for (const auto& ue : w.sim->population().ues()) {
    gen.generate_day(ue, 0, 30, counter);
    if (++generated_for >= 500) break;
  }
  EXPECT_GT(counter.count(telemetry::ControlEventType::kAttach), 0u);
  EXPECT_GT(counter.count(telemetry::ControlEventType::kServiceRequest), 0u);
  EXPECT_GT(counter.count(telemetry::ControlEventType::kPaging), 0u);
  EXPECT_GT(counter.count(telemetry::ControlEventType::kTrackingAreaUpdate), 0u);
  // Attach and detach come in cycles.
  EXPECT_EQ(counter.count(telemetry::ControlEventType::kAttach),
            counter.count(telemetry::ControlEventType::kDetach));
}

TEST(ControlPlane, ServiceRequestsFollowTheDiurnalCurve) {
  const auto& w = TestWorld::instance();
  const core::ControlPlaneGenerator gen{w.sim->country(), w.sim->activity()};
  telemetry::ControlEventCounter counter;
  int generated_for = 0;
  for (const auto& ue : w.sim->population().ues()) {
    if (ue.type != devices::DeviceType::kSmartphone) continue;
    gen.generate_day(ue, 0, 30, counter);  // day 0: a Monday
    if (++generated_for >= 800) break;
  }
  // Morning peak hour dwarfs the 03:00 trough.
  EXPECT_GT(counter.count_at(telemetry::ControlEventType::kServiceRequest, 8),
            3 * counter.count_at(telemetry::ControlEventType::kServiceRequest, 3));
}

TEST(ControlPlane, DeterministicPerUeDay) {
  const auto& w = TestWorld::instance();
  const core::ControlPlaneGenerator gen{w.sim->country(), w.sim->activity()};
  telemetry::ControlEventCounter a, b;
  const auto& ue = w.sim->population().ue(0);
  gen.generate_day(ue, 2, 12, a);
  gen.generate_day(ue, 2, 12, b);
  EXPECT_EQ(a.total(), b.total());
  for (int t = 0; t < static_cast<int>(telemetry::kControlEventTypes); ++t) {
    EXPECT_EQ(a.count(static_cast<telemetry::ControlEventType>(t)),
              b.count(static_cast<telemetry::ControlEventType>(t)));
  }
}

TEST(ControlPlane, M2mSignalsFarLessThanSmartphones) {
  const auto& w = TestWorld::instance();
  const core::ControlPlaneGenerator gen{w.sim->country(), w.sim->activity()};
  telemetry::ControlEventCounter phones, meters;
  int n_phones = 0, n_meters = 0;
  for (const auto& ue : w.sim->population().ues()) {
    if (ue.type == devices::DeviceType::kSmartphone && n_phones < 300) {
      gen.generate_day(ue, 0, 30, phones);
      ++n_phones;
    } else if (ue.type == devices::DeviceType::kM2mIot && n_meters < 300) {
      gen.generate_day(ue, 0, 1, meters);
      ++n_meters;
    }
  }
  EXPECT_GT(phones.count(telemetry::ControlEventType::kServiceRequest),
            4 * meters.count(telemetry::ControlEventType::kServiceRequest));
}

// --- QoS impact -------------------------------------------------------------------

TEST(Qos, FailureCostsMoreThanSuccess) {
  const core::QosModel model;
  auto ok = make_record(1, 1'000, 10, 20, true);
  auto bad = make_record(1, 1'000, 10, 20, false);
  bad.duration_ms = ok.duration_ms;
  EXPECT_GT(model.assess(bad).interruption_ms, model.assess(ok).interruption_ms);
  EXPECT_GT(model.assess(bad).lost_mbytes, model.assess(ok).lost_mbytes);
}

TEST(Qos, VerticalSuccessAddsSlowRatPenalty) {
  const core::QosModel model;
  auto intra = make_record(1, 1'000, 10, 20, true);
  auto vertical = intra;
  vertical.target_rat = topology::ObservedRat::kG3;
  vertical.duration_ms = intra.duration_ms;
  EXPECT_GT(model.assess(vertical).lost_mbytes, 10.0 * model.assess(intra).lost_mbytes);
}

TEST(Qos, AggregatorSplitsSuccessAndFailure) {
  core::QosAggregator agg;
  agg.consume(make_record(1, 1'000, 10, 20, true));
  auto bad = make_record(1, 2'000, 20, 30, false);
  bad.duration_ms = 2'000.0f;
  bad.target_rat = topology::ObservedRat::kG3;
  agg.consume(bad);
  EXPECT_EQ(agg.records(), 2u);
  EXPECT_GT(agg.mean_interruption_failure_ms(), agg.mean_interruption_success_ms());
  EXPECT_GT(agg.vertical_share_of_loss(), 0.0);
  EXPECT_LE(agg.vertical_share_of_loss(), 1.0);
}

// --- Sampling ----------------------------------------------------------------------

TEST(Sampling, UniformRateIsRespected) {
  telemetry::SignalingDataset kept;
  telemetry::SamplingSink sampler{kept, telemetry::SamplingPolicy::kUniform, 0.1};
  for (int i = 0; i < 100'000; ++i) {
    sampler.consume(make_record(static_cast<std::uint64_t>(i), i, 1, 2));
  }
  EXPECT_NEAR(sampler.realized_rate(), 0.1, 0.01);
  EXPECT_EQ(kept.size(), sampler.kept());
  EXPECT_NEAR(sampler.weight_of(make_record(0, 0, 1, 2)), 10.0, 1e-12);
}

TEST(Sampling, PerUeKeepsWholeUsers) {
  telemetry::SignalingDataset kept;
  telemetry::SamplingSink sampler{kept, telemetry::SamplingPolicy::kPerUe, 0.2};
  // 500 UEs x 20 records each: every kept UE must have all 20 records.
  for (int ue = 0; ue < 500; ++ue) {
    for (int i = 0; i < 20; ++i) {
      sampler.consume(make_record(static_cast<std::uint64_t>(ue), i, 1, 2));
    }
  }
  std::map<std::uint64_t, int> per_ue;
  for (const auto& r : kept.records()) ++per_ue[r.anon_user_id];
  for (const auto& [ue, count] : per_ue) EXPECT_EQ(count, 20);
  EXPECT_NEAR(sampler.realized_rate(), 0.2, 0.08);
}

TEST(Sampling, StratifiedKeepsAllVerticals) {
  telemetry::SignalingDataset kept;
  telemetry::SamplingSink sampler{kept, telemetry::SamplingPolicy::kStratifiedByTarget,
                                  0.05};
  int verticals = 0;
  for (int i = 0; i < 20'000; ++i) {
    auto r = make_record(static_cast<std::uint64_t>(i), i, 1, 2);
    if (i % 20 == 0) {  // 5% vertical
      r.target_rat = topology::ObservedRat::kG3;
      ++verticals;
    }
    sampler.consume(r);
  }
  int kept_verticals = 0;
  for (const auto& r : kept.records()) {
    if (r.target_rat == topology::ObservedRat::kG3) ++kept_verticals;
  }
  EXPECT_EQ(kept_verticals, verticals);
  auto vertical = make_record(0, 0, 1, 2);
  vertical.target_rat = topology::ObservedRat::kG3;
  EXPECT_EQ(sampler.weight_of(vertical), 1.0);
  EXPECT_NEAR(sampler.weight_of(make_record(0, 0, 1, 2)), 20.0, 1e-12);
}

TEST(Sampling, EstimatesStayUnbiased) {
  // Estimate the vertical share from a 10% uniform sample with HT weights;
  // with constant weights this reduces to the kept-sample share.
  telemetry::SignalingDataset kept;
  telemetry::SamplingSink sampler{kept, telemetry::SamplingPolicy::kUniform, 0.1};
  const double true_share = 0.06;
  util::Rng rng{9};
  for (int i = 0; i < 200'000; ++i) {
    auto r = make_record(static_cast<std::uint64_t>(i), i, 1, 2);
    if (rng.uniform() < true_share) r.target_rat = topology::ObservedRat::kG3;
    sampler.consume(r);
  }
  double weighted_vertical = 0.0, weighted_total = 0.0;
  for (const auto& r : kept.records()) {
    const double w = sampler.weight_of(r);
    weighted_total += w;
    if (r.target_rat == topology::ObservedRat::kG3) weighted_vertical += w;
  }
  EXPECT_NEAR(weighted_vertical / weighted_total, true_share, 0.01);
}

TEST(Sampling, RejectsBadRate) {
  telemetry::SignalingDataset kept;
  EXPECT_THROW(
      telemetry::SamplingSink(kept, telemetry::SamplingPolicy::kUniform, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      telemetry::SamplingSink(kept, telemetry::SamplingPolicy::kUniform, 1.5),
      std::invalid_argument);
}

}  // namespace
}  // namespace tl
