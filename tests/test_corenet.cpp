// Failure model, cause catalog, duration model, HO state machine, entities.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core_network/duration_model.hpp"
#include "core_network/entities.hpp"
#include "core_network/failure_causes.hpp"
#include "core_network/failure_model.hpp"
#include "core_network/ho_state_machine.hpp"

namespace tl::corenet {
namespace {

using topology::ObservedRat;

TEST(FailureModel, BaseRatesOrderIntraBelow3gBelow2g) {
  const FailureModel fm;
  FailureContext ctx;
  ctx.ue_hof_multiplier = 1.0;
  ctx.target = ObservedRat::kG45Nsa;
  const double p_intra = fm.failure_probability(ctx);
  ctx.target = ObservedRat::kG3;
  const double p_3g = fm.failure_probability(ctx);
  ctx.target = ObservedRat::kG2;
  const double p_2g = fm.failure_probability(ctx);
  EXPECT_LT(p_intra, p_3g);
  EXPECT_LT(p_3g, p_2g);
}

TEST(FailureModel, SectorDayMultiplierHasUnitMedian) {
  const FailureModel fm;
  for (const auto target : {ObservedRat::kG45Nsa, ObservedRat::kG3}) {
    std::vector<double> mults;
    for (std::uint32_t sector = 0; sector < 2000; ++sector) {
      mults.push_back(fm.sector_day_multiplier(sector, sector % 28, target));
    }
    std::sort(mults.begin(), mults.end());
    EXPECT_NEAR(mults[mults.size() / 2], 1.0, 0.2);
  }
  // Deterministic, and burstier on the intra path.
  EXPECT_EQ(fm.sector_day_multiplier(5, 3, ObservedRat::kG3),
            fm.sector_day_multiplier(5, 3, ObservedRat::kG3));
  EXPECT_NE(fm.sector_day_multiplier(5, 3, ObservedRat::kG3),
            fm.sector_day_multiplier(5, 4, ObservedRat::kG3));
}

TEST(FailureModel, EffectsMultiply) {
  const FailureModel fm;
  FailureContext base;
  base.target = ObservedRat::kG3;
  base.area = geo::AreaType::kUrban;
  base.region = geo::Region::kCapital;
  base.vendor = topology::Vendor::kV1;
  const double p0 = fm.failure_probability(base);

  FailureContext rural = base;
  rural.area = geo::AreaType::kRural;
  EXPECT_NEAR(fm.failure_probability(rural) / p0, 1.30, 1e-9);

  FailureContext west = base;
  west.region = geo::Region::kWest;
  EXPECT_NEAR(fm.failure_probability(west) / p0, 1.49, 1e-9);

  FailureContext v3 = base;
  v3.vendor = topology::Vendor::kV3;
  EXPECT_NEAR(fm.failure_probability(v3) / p0,
              topology::vendor_hof_multiplier(topology::Vendor::kV3), 1e-9);

  FailureContext loaded = base;
  loaded.overload = 0.4;
  EXPECT_GT(fm.failure_probability(loaded), p0);
}

TEST(FailureModel, ClampsToValidProbability) {
  const FailureModel fm;
  FailureContext ctx;
  ctx.target = ObservedRat::kG2;
  ctx.ue_hof_multiplier = 1e9;
  EXPECT_LE(fm.failure_probability(ctx), 0.92);
  ctx.ue_hof_multiplier = 0.0;
  EXPECT_EQ(fm.failure_probability(ctx), 0.0);
}

TEST(CauseCatalog, CarriesAThousandPlusCauses) {
  const CauseCatalog catalog;
  EXPECT_GE(catalog.total_causes(), 1000u);
  EXPECT_EQ(catalog.description(kCause4TargetLoadTooHigh),
            "Load on target sector is too high");
  EXPECT_NE(catalog.description(kFirstTailCause).find("Vendor V"), std::string::npos);
  EXPECT_THROW(catalog.description(9), std::out_of_range);
}

TEST(CauseCatalog, SrvccCausesOnlyOnSrvccPath) {
  const CauseCatalog catalog;
  CauseContext ctx;
  ctx.target = ObservedRat::kG3;
  ctx.srvcc_attempt = false;
  const auto w = catalog.weights(ctx);
  EXPECT_EQ(w[5], 0.0);  // #6
  EXPECT_EQ(w[6], 0.0);  // #7
  ctx.srvcc_attempt = true;
  ctx.srvcc_subscribed = false;
  const auto w2 = catalog.weights(ctx);
  EXPECT_GT(w2[5], 100.0);  // #6 dominates when unsubscribed
  ctx.srvcc_subscribed = true;
  const auto w3 = catalog.weights(ctx);
  EXPECT_EQ(w3[5], 0.0);
  EXPECT_GT(w3[6], 0.0);
}

TEST(CauseCatalog, InvalidTargetDominatesIntraFailures) {
  const CauseCatalog catalog;
  util::Rng rng{1};
  CauseContext ctx;
  ctx.target = ObservedRat::kG45Nsa;
  std::array<int, 10> counts{};
  constexpr int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const CauseId c = catalog.sample(ctx, rng);
    ++counts[is_dominant_cause(c) ? c : 9];
  }
  // #3 is the top intra cause; the tail stays under ~12%.
  for (int c = 1; c <= 8; ++c) {
    if (c == 3) continue;
    EXPECT_GT(counts[3], counts[c]);
  }
  EXPECT_LT(counts[9] / static_cast<double>(n), 0.15);
}

TEST(CauseCatalog, OverloadBoostsCause4) {
  const CauseCatalog catalog;
  CauseContext calm;
  calm.target = ObservedRat::kG3;
  CauseContext busy = calm;
  busy.overload = 0.5;
  busy.hour = 8;
  EXPECT_GT(catalog.weights(busy)[3], 2.0 * catalog.weights(calm)[3]);
}

TEST(CauseCatalog, M2mProfilesSkewToConfigurationCauses) {
  const CauseCatalog catalog;
  CauseContext phone;
  phone.target = ObservedRat::kG45Nsa;
  phone.device = devices::DeviceType::kSmartphone;
  CauseContext meter = phone;
  meter.device = devices::DeviceType::kM2mIot;
  EXPECT_NEAR(catalog.weights(meter)[2] / catalog.weights(phone)[2], 2.5, 1e-9);
  EXPECT_NEAR(catalog.weights(meter)[7] / catalog.weights(phone)[7], 3.0, 1e-9);
}

TEST(CauseCatalog, TailSamplesManyDistinctCauses) {
  const CauseCatalog catalog;
  util::Rng rng{2};
  CauseContext ctx;
  ctx.target = ObservedRat::kG3;
  std::set<CauseId> tail_seen;
  for (int i = 0; i < 100'000; ++i) {
    const CauseId c = catalog.sample(ctx, rng);
    if (!is_dominant_cause(c)) tail_seen.insert(c);
  }
  EXPECT_GT(tail_seen.size(), 50u);
}

TEST(DurationModel, SuccessMediansMatchFig8) {
  const DurationModel dm;
  util::Rng rng{3};
  for (const auto rat : {ObservedRat::kG45Nsa, ObservedRat::kG3, ObservedRat::kG2}) {
    std::vector<double> samples;
    for (int i = 0; i < 40'000; ++i) samples.push_back(dm.success_duration_ms(rat, rng));
    std::sort(samples.begin(), samples.end());
    const auto calib = DurationModel::success_calibration(rat);
    EXPECT_NEAR(samples[samples.size() / 2], calib.median_ms, calib.median_ms * 0.05);
    EXPECT_NEAR(samples[static_cast<std::size_t>(samples.size() * 0.95)], calib.p95_ms,
                calib.p95_ms * 0.07);
  }
}

TEST(DurationModel, AbortCausesTakeZeroTime) {
  const DurationModel dm;
  util::Rng rng{4};
  EXPECT_EQ(dm.failure_duration_ms(kCause3InvalidTargetId, rng), 0.0);
  EXPECT_EQ(dm.failure_duration_ms(kCause6SrvccNotSubscribed, rng), 0.0);
}

TEST(DurationModel, TimeoutCauseTakesTenSeconds) {
  const DurationModel dm;
  util::Rng rng{5};
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(dm.failure_duration_ms(kCause8RelocationTimeout, rng));
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_GT(samples[samples.size() / 2], 10'000.0);
  EXPECT_LT(samples[static_cast<std::size_t>(samples.size() * 0.95)], 10'300.0);
}

// --- State machine -----------------------------------------------------------

struct Machinery {
  FailureModel failure_model;
  DurationModel durations;
  CauseCatalog causes;
  HandoverProcedure procedure{failure_model, durations, causes};
  CoreNetwork core;
  devices::Ue ue;

  Machinery() {
    ue.id = 1;
    ue.hof_multiplier = 1.0f;
    ue.srvcc_subscribed = true;
  }

  HoAttempt attempt(ObservedRat target) {
    HoAttempt a;
    a.ue = &ue;
    a.source_sector = 10;
    a.target_sector = 20;
    a.target_rat = target;
    a.time = util::SimCalendar::at(1, 9.0);
    return a;
  }
};

std::vector<MessageType> types_of(const MessageTrace& trace) {
  std::vector<MessageType> out;
  for (const auto& m : trace) out.push_back(m.type);
  return out;
}

TEST(StateMachine, SuccessfulIntraHoEmitsFig1Sequence) {
  Machinery m;
  // Force success: zero failure probability via zero UE multiplier.
  m.ue.hof_multiplier = 0.0f;
  util::Rng rng{6};
  MessageTrace trace;
  const auto outcome = m.procedure.execute(m.attempt(ObservedRat::kG45Nsa), m.core, rng,
                                           &trace);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.cause, kCauseNone);
  const auto seq = types_of(trace);
  const std::vector<MessageType> expected{
      MessageType::kMeasurementReport, MessageType::kHoDecision,
      MessageType::kHoRequired,        MessageType::kHoRequest,
      MessageType::kHoRequestAck,      MessageType::kHoCommand,
      MessageType::kRachPreamble,      MessageType::kHoConfirm,
      MessageType::kHoNotify,          MessageType::kPathSwitchRequest,
      MessageType::kUeContextRelease};
  EXPECT_EQ(seq, expected);
  // Timestamps are nondecreasing and span the signaling time.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time, trace[i - 1].time);
  }
}

TEST(StateMachine, InterRatHoUsesForwardRelocation) {
  Machinery m;
  m.ue.hof_multiplier = 0.0f;
  util::Rng rng{7};
  MessageTrace trace;
  m.procedure.execute(m.attempt(ObservedRat::kG3), m.core, rng, &trace);
  const auto seq = types_of(trace);
  EXPECT_NE(std::find(seq.begin(), seq.end(), MessageType::kForwardRelocationRequest),
            seq.end());
  EXPECT_NE(std::find(seq.begin(), seq.end(), MessageType::kForwardRelocationComplete),
            seq.end());
  EXPECT_EQ(std::find(seq.begin(), seq.end(), MessageType::kPathSwitchRequest), seq.end());
}

TEST(StateMachine, UnsubscribedSrvccAlwaysFailsWithCause6) {
  Machinery m;
  m.ue.srvcc_subscribed = false;
  util::Rng rng{8};
  for (int i = 0; i < 50; ++i) {
    auto attempt = m.attempt(ObservedRat::kG3);
    attempt.srvcc = true;
    MessageTrace trace;
    const auto outcome = m.procedure.execute(attempt, m.core, rng, &trace);
    EXPECT_FALSE(outcome.success);
    EXPECT_EQ(outcome.cause, kCause6SrvccNotSubscribed);
    EXPECT_EQ(outcome.duration_ms, 0.0);
    // Truncated right after HO Required, plus the failure indication.
    EXPECT_EQ(trace.back().type, MessageType::kHoFailureIndication);
    trace.pop_back();
    EXPECT_EQ(trace.back().type, MessageType::kHoRequired);
    trace.clear();
  }
}

TEST(StateMachine, FailureTruncationMatchesCause) {
  Machinery m;
  m.ue.hof_multiplier = 1e9f;  // force failure (clamped to 0.92) eventually
  util::Rng rng{9};
  int failures = 0;
  for (int i = 0; i < 400 && failures < 50; ++i) {
    MessageTrace trace;
    const auto outcome =
        m.procedure.execute(m.attempt(ObservedRat::kG3), m.core, rng, &trace);
    if (outcome.success) continue;
    ++failures;
    const auto seq = types_of(trace);
    switch (outcome.cause) {
      case kCause3InvalidTargetId:
        EXPECT_EQ(seq[seq.size() - 2], MessageType::kHoRequired);
        break;
      case kCause4TargetLoadTooHigh:
        EXPECT_EQ(seq[seq.size() - 2], MessageType::kHoRequest);
        break;
      case kCause1SourceCancelled:
        EXPECT_EQ(seq.back(), MessageType::kHoCancel);
        break;
      case kCause2InterferingInitialUe:
        EXPECT_EQ(seq.back(), MessageType::kS1apInitialUeMessage);
        break;
      case kCause8RelocationTimeout:
        EXPECT_EQ(seq[seq.size() - 2], MessageType::kHoConfirm);
        break;
      default:
        EXPECT_EQ(seq.back(), MessageType::kHoFailureIndication);
        break;
    }
  }
  EXPECT_GE(failures, 50);
}

TEST(StateMachine, NullUeIsRejected) {
  Machinery m;
  util::Rng rng{10};
  HoAttempt bad;
  EXPECT_THROW(m.procedure.execute(bad, m.core, rng), std::invalid_argument);
}

TEST(CoreNetwork, RoutesProceduresToRegionalEntities) {
  CoreNetwork core;
  core.record_handover(geo::Region::kNorth, ObservedRat::kG45Nsa, true, false);
  core.record_handover(geo::Region::kNorth, ObservedRat::kG3, false, true);
  core.record_handover(geo::Region::kWest, ObservedRat::kG2, true, false);

  EXPECT_EQ(core.mme(geo::Region::kNorth).handovers.procedures, 2u);
  EXPECT_EQ(core.mme(geo::Region::kNorth).path_switches.procedures, 1u);
  EXPECT_EQ(core.sgsn(geo::Region::kNorth).relocations.failures, 1u);
  EXPECT_EQ(core.msc(geo::Region::kNorth).srvcc.procedures, 1u);
  EXPECT_EQ(core.sgsn(geo::Region::kWest).relocations.successes, 1u);
  EXPECT_EQ(core.total_handovers(), 3u);
  EXPECT_NEAR(core.mme(geo::Region::kNorth).handovers.failure_rate(), 0.5, 1e-12);
}

TEST(Messages, EveryTypeHasAName) {
  for (int t = 0; t <= static_cast<int>(MessageType::kHoFailureIndication); ++t) {
    EXPECT_NE(to_string(static_cast<MessageType>(t)), "?");
  }
}

}  // namespace
}  // namespace tl::corenet
