// Device catalog, APN heuristic, classifier, and UE population.

#include <gtest/gtest.h>

#include <map>

#include "devices/apn.hpp"
#include "devices/classifier.hpp"
#include "devices/population.hpp"
#include "geo/census.hpp"

namespace tl::devices {
namespace {

const Catalog& catalog() {
  static const Catalog c = Catalog::build({2'000, 17});
  return c;
}

struct PopWorld {
  geo::Country country;
  Population population;
};

const PopWorld& pop_world() {
  static const PopWorld w = [] {
    geo::CensusConfig cc;
    cc.districts = 60;
    cc.total_population = 8'000'000;
    cc.seed = 5;
    geo::Country country = geo::synthesize_country(cc);
    PopulationConfig pc;
    pc.count = 40'000;
    pc.seed = 23;
    Population pop = Population::build(country, catalog(), pc);
    return PopWorld{std::move(country), std::move(pop)};
  }();
  return w;
}

TEST(Catalog, RosterSharesSumToOnePerType) {
  std::array<double, 3> sums{};
  for (const auto& m : catalog().manufacturers()) {
    sums[static_cast<std::size_t>(m.type)] += m.share;
  }
  for (const double s : sums) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Catalog, TacLookupRoundTrips) {
  for (const auto& model : catalog().models()) {
    const DeviceModel* found = catalog().find(model.tac);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->manufacturer, model.manufacturer);
  }
  EXPECT_EQ(catalog().find(1), nullptr);
}

TEST(Catalog, OutlierManufacturersCarryTheirMultipliers) {
  EXPECT_NEAR(catalog().by_name("KVD").hof_multiplier, 7.0, 1e-9);
  EXPECT_NEAR(catalog().by_name("HMD").hof_multiplier, 7.0, 1e-9);
  EXPECT_NEAR(catalog().by_name("Simcom").ho_multiplier, 3.93, 1e-9);
  EXPECT_NEAR(catalog().by_name("Google").hof_multiplier, 0.73, 1e-9);
  EXPECT_THROW(catalog().by_name("Nonexistent"), std::out_of_range);
}

TEST(Catalog, SampledModelsFollowMarketShares) {
  util::Rng rng{3};
  std::map<ManufacturerId, int> counts;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[catalog().sample_model(DeviceType::kSmartphone, rng).manufacturer];
  }
  const auto& apple = catalog().by_name("Apple");
  const auto& samsung = catalog().by_name("Samsung");
  EXPECT_NEAR(counts[apple.id] / static_cast<double>(n), 0.548, 0.05);
  EXPECT_NEAR(counts[samsung.id] / static_cast<double>(n), 0.302, 0.05);
}

TEST(Apn, KeywordDetection) {
  EXPECT_TRUE(is_iot_apn("m2m.operator.net"));
  EXPECT_TRUE(is_iot_apn("SMART-METER.energy.net"));
  EXPECT_TRUE(is_iot_apn("fleet.telemetry.net"));
  EXPECT_FALSE(is_iot_apn("internet.operator.net"));
  EXPECT_FALSE(is_iot_apn(""));
}

TEST(Apn, M2mDevicesMostlyGetVerticalApns) {
  util::Rng rng{4};
  int iot = 0;
  constexpr int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (is_iot_apn(sample_apn(DeviceType::kM2mIot, rng))) ++iot;
  }
  EXPECT_NEAR(iot / static_cast<double>(n), 0.88, 0.02);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(is_iot_apn(sample_apn(DeviceType::kSmartphone, rng)));
  }
}

TEST(Classifier, RecoversGroundTruthAtHighAccuracy) {
  util::Rng rng{6};
  int correct = 0;
  constexpr int n = 30'000;
  for (int i = 0; i < n; ++i) {
    const auto type = static_cast<DeviceType>(rng.below(3));
    const DeviceModel& model = catalog().sample_model(type, rng);
    const std::string apn = sample_apn(type, rng);
    if (classify_device(catalog().find(model.tac), apn) == type) ++correct;
  }
  EXPECT_GT(correct / static_cast<double>(n), 0.95);
}

TEST(Classifier, UnknownTacFallsBackToApn) {
  EXPECT_EQ(classify_device(nullptr, "m2m.operator.net"), DeviceType::kM2mIot);
  EXPECT_EQ(classify_device(nullptr, "internet.operator.net"), DeviceType::kSmartphone);
}

TEST(Population, TypeSharesMatchFig4a) {
  const auto shares = pop_world().population.type_shares();
  EXPECT_NEAR(shares[0], 0.591, 0.02);  // smartphones
  EXPECT_NEAR(shares[1], 0.398, 0.02);  // M2M/IoT
  EXPECT_NEAR(shares[2], 0.011, 0.005); // feature phones
}

TEST(Population, RatSupportSharesMatchFig4b) {
  const auto shares = pop_world().population.rat_support_shares();
  EXPECT_NEAR(shares[0], 0.126, 0.02);            // 2G only
  EXPECT_NEAR(shares[1], 0.201, 0.03);            // up to 3G
  EXPECT_NEAR(shares[2] + shares[3], 0.672, 0.03); // 4G/5G capable
}

TEST(Population, SmartphoneCapabilitySplit) {
  std::array<std::uint64_t, 4> counts{};
  std::uint64_t smartphones = 0;
  for (const auto& ue : pop_world().population.ues()) {
    if (ue.type != DeviceType::kSmartphone) continue;
    ++smartphones;
    ++counts[static_cast<std::size_t>(ue.rat_support)];
  }
  const double up_to_4g = counts[2] / static_cast<double>(smartphones);
  const double is_5g = counts[3] / static_cast<double>(smartphones);
  EXPECT_NEAR(up_to_4g, 0.514, 0.05);
  EXPECT_NEAR(is_5g, 0.485, 0.05);
}

TEST(Population, LegacyShareOfM2m) {
  std::uint64_t m2m = 0, legacy = 0;
  for (const auto& ue : pop_world().population.ues()) {
    if (ue.type != DeviceType::kM2mIot) continue;
    ++m2m;
    if (ue.rat_support <= topology::RatSupport::kUpTo3G) ++legacy;
  }
  EXPECT_GT(legacy / static_cast<double>(m2m), 0.75);  // paper: >80%
}

TEST(Population, HomesFollowCensusPopulation) {
  const auto& w = pop_world();
  std::vector<double> census, homes;
  for (const auto& d : w.country.districts()) {
    census.push_back(static_cast<double>(d.population));
    homes.push_back(static_cast<double>(w.population.in_district(d.id).size()));
  }
  double cx = 0, cy = 0, cxy = 0, cxx = 0, cyy = 0;
  const std::size_t n = census.size();
  for (std::size_t i = 0; i < n; ++i) {
    cx += census[i];
    cy += homes[i];
  }
  cx /= n;
  cy /= n;
  for (std::size_t i = 0; i < n; ++i) {
    cxy += (census[i] - cx) * (homes[i] - cy);
    cxx += (census[i] - cx) * (census[i] - cx);
    cyy += (homes[i] - cy) * (homes[i] - cy);
  }
  EXPECT_GT(cxy / std::sqrt(cxx * cyy), 0.85);
}

TEST(Population, AnonIdsAreUniqueAndKeyed) {
  const auto& pop = pop_world().population;
  std::vector<std::uint64_t> ids;
  for (const auto& ue : pop.ues()) ids.push_back(ue.anon_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Population, SrvccSubscriptionRatesByType) {
  std::array<std::uint64_t, 3> total{}, subscribed{};
  for (const auto& ue : pop_world().population.ues()) {
    const auto t = static_cast<std::size_t>(ue.type);
    ++total[t];
    if (ue.srvcc_subscribed) ++subscribed[t];
  }
  EXPECT_NEAR(subscribed[0] / static_cast<double>(total[0]), 0.92, 0.02);
  EXPECT_NEAR(subscribed[1] / static_cast<double>(total[1]), 0.30, 0.03);
  EXPECT_NEAR(subscribed[2] / static_cast<double>(total[2]), 0.80, 0.07);
}

TEST(Population, RejectsZeroCount) {
  PopulationConfig pc;
  pc.count = 0;
  EXPECT_THROW(Population::build(pop_world().country, catalog(), pc),
               std::invalid_argument);
}

}  // namespace
}  // namespace tl::devices
