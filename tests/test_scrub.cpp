// Storage-integrity tests: scrub detection over sealed WAL segments (bit
// rot, truncation, marker arithmetic, mirror divergence), seal-time segment
// mirroring, read-repair from the surviving replica (byte-identity verified
// by CRC against a clean oracle, including across a crash mid-repair),
// certified quarantine with exact day/record accounting when both copies are
// damaged, retention x mirror lockstep, the WalTailer integration (loss
// ledger, checkpoint v2 round trip, deterministic scrub cadence), read-side
// fault injection semantics, and the seeded bit-rot chaos suite
// (TL_CHAOS_SCHEDULES elevates the schedule count in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint_codec.hpp"
#include "core/simulator.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "serve/stream_aggregates.hpp"
#include "serve/wal_tailer.hpp"
#include "supervise/status.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/scrub.hpp"
#include "telemetry/sinks.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tl {
namespace {

using serve::StreamAggregates;
using serve::WalTailer;
using telemetry::DefectClass;
using telemetry::HandoverRecord;
using telemetry::IntegrityReport;
using telemetry::LogCursor;
using telemetry::LogIntegrity;
using telemetry::LogScrubber;
using telemetry::RecordLog;
using telemetry::RepairAction;
using telemetry::ScrubReport;
using telemetry::SegmentAudit;
using telemetry::TailReadResult;
using telemetry::TailState;
using telemetry::audit_segment;

namespace stdfs = std::filesystem;

// --- helpers -----------------------------------------------------------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_scrub_" + name) {
    stdfs::remove_all(path);
  }
  ~TempDir() { stdfs::remove_all(path); }
  std::string path;
};

/// Deterministic in (day, i) — identical to test_serve's generator so the
/// byte-identity arguments carry over.
HandoverRecord make_record(int day, std::uint32_t i) {
  HandoverRecord r;
  r.timestamp = static_cast<util::TimestampMs>(day) * util::kMsPerDay +
                500 * static_cast<util::TimestampMs>(i + 1);
  r.success = (i % 5) != 0;
  r.duration_ms = 25.0f + static_cast<float>((i * 7 + day) % 120);
  r.cause = r.success ? corenet::kCauseNone
                      : static_cast<corenet::CauseId>(2 + i % 4);
  r.anon_user_id = 0xAB00000000ULL + i;
  r.source_sector = 100 + i % 17;
  r.target_sector = 200 + i % 13;
  r.source_rat = topology::ObservedRat::kG45Nsa;
  r.target_rat = static_cast<topology::ObservedRat>(i % 3);
  r.device_type = static_cast<devices::DeviceType>(i % 3);
  r.manufacturer = static_cast<devices::ManufacturerId>(i % 5);
  r.postcode = 700 + i % 9;
  r.district = static_cast<geo::DistrictId>(1 + i % 6);
  r.area = (i % 2) ? geo::AreaType::kUrban : geo::AreaType::kRural;
  r.region = geo::Region::kCapital;
  r.vendor = static_cast<topology::Vendor>(i % 4);
  r.srvcc = (i % 11 == 0);
  r.attempt = static_cast<std::uint8_t>(i % 2);
  return r;
}

constexpr int kPerDay = 150;

void commit_days(RecordLog& log, int first, int count) {
  for (int day = first; day < first + count; ++day) {
    for (std::uint32_t i = 0; i < kPerDay; ++i) log.append(make_record(day, i));
    const std::vector<std::uint8_t> state{static_cast<std::uint8_t>(day), 0x5A};
    log.commit_day(day, state);
  }
}

/// A mirrored multi-segment WAL holding days [0, days). With 4 KiB segments
/// each day (~7 KiB of frames) seals its own segment, so the chain has
/// `days - 1` sealed+mirrored segments plus the active tail.
void build_mirrored_wal(const std::string& wal, const std::string& mirror,
                        int days, std::uint64_t max_segment_bytes = 4 * 1024) {
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = wal;
  opt.mirror_directory = mirror;
  opt.max_segment_bytes = max_segment_bytes;
  opt.write_chunk_bytes = 512;
  RecordLog log{real, opt};
  log.open();
  commit_days(log, 0, days);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::vector<std::uint8_t> make_frame(std::uint8_t type,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = util::crc32c(&type, 1);
  crc = util::crc32c(payload.data(), payload.size(), crc);
  put_u32(out, util::mask_crc32c(crc));
  out.push_back(type);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> make_marker_payload(int day, std::uint64_t in_day,
                                              std::uint64_t total) {
  std::vector<std::uint8_t> p;
  put_u32(p, static_cast<std::uint32_t>(day));
  put_u64(p, in_day);
  put_u64(p, total);
  put_u32(p, 0);  // no app state
  return p;
}

std::vector<std::uint8_t> segment_header(std::uint32_t index) {
  std::vector<std::uint8_t> h;
  h.insert(h.end(), RecordLog::kMagic, RecordLog::kMagic + sizeof RecordLog::kMagic);
  put_u32(h, index);
  put_u32(h, util::mask_crc32c(util::crc32c(h.data(), 12)));
  return h;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  stdfs::create_directories(stdfs::path(path).parent_path());
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

void append_to(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& b) {
  out.insert(out.end(), b.begin(), b.end());
}

int chaos_schedule_count() {
  if (const char* env = std::getenv("TL_CHAOS_SCHEDULES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 100;
}

void copy_wal(const std::string& from, const std::string& to) {
  stdfs::create_directories(to);
  auto& real = io::StdioFileSystem::instance();
  for (const auto& name : real.list(from, "wal-")) {
    stdfs::copy_file(from + "/" + name, to + "/" + name,
                     stdfs::copy_options::overwrite_existing);
  }
}

struct CollectingSink final : telemetry::RecordSink {
  std::vector<HandoverRecord> records;
  std::vector<int> days;
  void consume(const HandoverRecord& r) override { records.push_back(r); }
  void on_day_end(int day) override { days.push_back(day); }
};

std::uint32_t crc_of(const std::string& path) {
  return telemetry::file_crc32c(io::StdioFileSystem::instance(), path);
}

/// Per-file CRC oracle over a chain directory.
std::vector<std::pair<std::string, std::uint32_t>> chain_crcs(
    const std::string& dir) {
  auto& real = io::StdioFileSystem::instance();
  std::vector<std::pair<std::string, std::uint32_t>> out;
  for (const auto& name : real.list(dir, "wal-")) {
    out.emplace_back(name, crc_of(dir + "/" + name));
  }
  return out;
}

// --- seal-time mirroring -----------------------------------------------------

TEST(Mirroring, SealedSegmentsAreMirroredByteIdentical) {
  TempDir tmp{"mirror_seal"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 5);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const auto mirrors = real.list(tmp.path + "/mirror", "wal-");
  ASSERT_GE(primaries.size(), 3u);
  // Every sealed segment has a byte-identical replica; the active tail has
  // none (it is still the writer's property).
  ASSERT_EQ(mirrors.size(), primaries.size() - 1);
  for (std::size_t i = 0; i + 1 < primaries.size(); ++i) {
    EXPECT_EQ(mirrors[i], primaries[i]);
    EXPECT_EQ(crc_of(tmp.path + "/mirror/" + mirrors[i]),
              crc_of(tmp.path + "/wal/" + primaries[i]))
        << primaries[i];
  }
  EXPECT_FALSE(real.exists(tmp.path + "/mirror/" + primaries.back()));
}

TEST(Mirroring, ReopenedWriterCatchesUpMissedMirrors) {
  TempDir tmp{"mirror_catchup"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  ASSERT_GE(primaries.size(), 3u);
  // Simulate a crash that lost a replica after the seal.
  real.remove(tmp.path + "/mirror/" + primaries[1]);

  RecordLog::Options opt;
  opt.directory = tmp.path + "/wal";
  opt.mirror_directory = tmp.path + "/mirror";
  opt.max_segment_bytes = 4 * 1024;
  RecordLog log{real, opt};
  log.open();  // integrity pass runs before recovery's scan
  EXPECT_TRUE(real.exists(tmp.path + "/mirror/" + primaries[1]));
  EXPECT_EQ(crc_of(tmp.path + "/mirror/" + primaries[1]),
            crc_of(tmp.path + "/wal/" + primaries[1]));
  EXPECT_EQ(log.committed_records(), 4u * kPerDay);
}

// --- scrub detection ---------------------------------------------------------

TEST(Scrub, CleanChainScrubsClean) {
  TempDir tmp{"clean"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 6);
  auto& real = io::StdioFileSystem::instance();
  LogScrubber scrubber{real, {tmp.path + "/wal", tmp.path + "/mirror"}};
  const ScrubReport report = scrubber.run();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_scanned, 6u * kPerDay);
  EXPECT_EQ(report.markers_scanned, 6u);
  EXPECT_EQ(report.first_day, 0);
  EXPECT_EQ(report.last_day, 5);
  EXPECT_EQ(report.tail_state, TailState::kClean);
  EXPECT_EQ(report.sealed_segments, report.segments_scanned - 1);
  EXPECT_EQ(report.mirror_segments_scanned, report.sealed_segments);
  EXPECT_EQ(report.tail_suspect_bytes, 0u);
}

TEST(Scrub, MissingDirectoryIsVacuouslyClean) {
  TempDir tmp{"no_chain"};
  auto& real = io::StdioFileSystem::instance();
  LogScrubber scrubber{real, {tmp.path + "/nope", ""}};
  const ScrubReport report = scrubber.run();
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.has_tail);
}

TEST(Scrub, DetectsSingleBitRotAnywhereInSealedSegment) {
  TempDir tmp{"detect_rot"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  ASSERT_GE(primaries.size(), 2u);
  const std::string victim = tmp.path + "/wal/" + primaries[0];
  const std::uint64_t size = real.file_size(victim);
  // Header, frame header, record payload, marker payload, and the very last
  // byte: every region of a sealed segment is CRC-covered.
  for (const std::uint64_t offset :
       {std::uint64_t{3}, std::uint64_t{17}, std::uint64_t{60}, size / 2,
        size - 1}) {
    const std::uint32_t before = crc_of(victim);
    io::inject_bit_rot(real, victim, offset, 0x10);
    LogScrubber scrubber{real, {tmp.path + "/wal", tmp.path + "/mirror"}};
    const ScrubReport report = scrubber.run();
    ASSERT_FALSE(report.clean()) << "offset " << offset;
    EXPECT_EQ(report.defects[0].segment, 0u);
    EXPECT_FALSE(report.defects[0].in_mirror);
    io::inject_bit_rot(real, victim, offset, 0x10);  // XOR back to clean
    EXPECT_EQ(crc_of(victim), before);
  }
}

TEST(Scrub, DetectsMirrorDamageAndMissingMirror) {
  TempDir tmp{"detect_mirror"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  ASSERT_GE(primaries.size(), 3u);
  io::inject_bit_rot(real, tmp.path + "/mirror/" + primaries[0], 40, 0x02);
  real.remove(tmp.path + "/mirror/" + primaries[1]);

  LogScrubber scrubber{real, {tmp.path + "/wal", tmp.path + "/mirror"}};
  const ScrubReport report = scrubber.run();
  ASSERT_EQ(report.defects.size(), 2u);
  EXPECT_EQ(report.defects[0].segment, 0u);
  EXPECT_TRUE(report.defects[0].in_mirror);
  EXPECT_EQ(report.defects[1].segment, 1u);
  EXPECT_TRUE(report.defects[1].in_mirror);
  EXPECT_EQ(report.defects[1].defect, DefectClass::kMirrorMissing);
}

TEST(Scrub, DetectsTruncatedSealedSegment) {
  TempDir tmp{"detect_trunc"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const std::string victim = tmp.path + "/wal/" + primaries[1];
  real.truncate(victim, real.file_size(victim) - 5);

  LogScrubber scrubber{real, {tmp.path + "/wal", ""}};
  const ScrubReport report = scrubber.run();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.defects[0].segment, 1u);
  EXPECT_EQ(report.defects[0].defect, DefectClass::kTruncatedFrame);
}

TEST(Scrub, AuditCatchesMarkerArithmeticViolations) {
  TempDir tmp{"audit_marker"};
  auto& real = io::StdioFileSystem::instance();

  // CRC-valid marker claiming 3 records where 0 frames precede it.
  std::vector<std::uint8_t> bad = segment_header(0);
  append_to(bad, make_frame(RecordLog::kDayMarkerFrame,
                            make_marker_payload(0, 3, 3)));
  write_file(tmp.path + "/bad.tlseg", bad);
  const SegmentAudit a = audit_segment(real, tmp.path + "/bad.tlseg", 0);
  ASSERT_TRUE(a.has_defect);
  EXPECT_EQ(a.defect, DefectClass::kMarkerMismatch);

  // Non-monotonic days across two otherwise valid markers.
  std::vector<std::uint8_t> nonmono = segment_header(0);
  append_to(nonmono, make_frame(RecordLog::kDayMarkerFrame,
                                make_marker_payload(2, 0, 5)));
  append_to(nonmono, make_frame(RecordLog::kDayMarkerFrame,
                                make_marker_payload(1, 0, 5)));
  write_file(tmp.path + "/nonmono.tlseg", nonmono);
  const SegmentAudit b = audit_segment(real, tmp.path + "/nonmono.tlseg", 0);
  ASSERT_TRUE(b.has_defect);
  EXPECT_EQ(b.defect, DefectClass::kMarkerMismatch);

  // A consistent marker-only segment is clean and sealed.
  std::vector<std::uint8_t> good = segment_header(0);
  append_to(good, make_frame(RecordLog::kDayMarkerFrame,
                             make_marker_payload(0, 0, 0)));
  write_file(tmp.path + "/good.tlseg", good);
  EXPECT_TRUE(audit_segment(real, tmp.path + "/good.tlseg", 0).clean_sealed());
}

TEST(Scrub, CrossSegmentTotalsMismatchIsADefect) {
  TempDir tmp{"cross_totals"};
  auto& real = io::StdioFileSystem::instance();
  const std::string dir = tmp.path + "/wal";
  std::vector<std::uint8_t> s0 = segment_header(0);
  append_to(s0, make_frame(RecordLog::kDayMarkerFrame,
                           make_marker_payload(0, 0, 10)));
  write_file(dir + "/" + RecordLog::segment_name(0), s0);
  // Claims a cumulative total of 25 where segment 0 left off at 10.
  std::vector<std::uint8_t> s1 = segment_header(1);
  append_to(s1, make_frame(RecordLog::kDayMarkerFrame,
                           make_marker_payload(1, 0, 25)));
  write_file(dir + "/" + RecordLog::segment_name(1), s1);
  write_file(dir + "/" + RecordLog::segment_name(2), segment_header(2));

  LogScrubber scrubber{real, {dir, ""}};
  const ScrubReport report = scrubber.run();
  ASSERT_EQ(report.defects.size(), 1u);
  EXPECT_EQ(report.defects[0].segment, 1u);
  EXPECT_EQ(report.defects[0].defect, DefectClass::kMarkerMismatch);
}

// --- read-repair -------------------------------------------------------------

TEST(Repair, PrimaryRestoredFromMirrorByteIdentical) {
  TempDir tmp{"repair_primary"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 5);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const std::string victim = tmp.path + "/wal/" + primaries[1];
  const std::uint32_t want = crc_of(victim);
  io::inject_bit_rot(real, victim, 100, 0x40);

  LogIntegrity integrity{real, {tmp.path + "/wal", tmp.path + "/mirror"}};
  const IntegrityReport report = integrity.check_and_repair();
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].action, RepairAction::kPrimaryRestored);
  EXPECT_EQ(report.events[0].segment, 1u);
  EXPECT_EQ(report.events[0].crc32c, want);
  EXPECT_TRUE(report.fully_repaired());
  EXPECT_EQ(crc_of(victim), want);
  // Idempotent: a second pass finds nothing to do.
  EXPECT_TRUE(LogIntegrity(real, {tmp.path + "/wal", tmp.path + "/mirror"})
                  .check_and_repair()
                  .events.empty());
}

TEST(Repair, MirrorRestoredFromCleanPrimary) {
  TempDir tmp{"repair_mirror"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const std::string replica = tmp.path + "/mirror/" + primaries[0];
  io::inject_bit_rot(real, replica, 25, 0x08);

  LogIntegrity integrity{real, {tmp.path + "/wal", tmp.path + "/mirror"}};
  const IntegrityReport report = integrity.check_and_repair();
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].action, RepairAction::kMirrorRestored);
  EXPECT_EQ(crc_of(replica), crc_of(tmp.path + "/wal/" + primaries[0]));
}

TEST(Repair, CrashMidRepairResumesToByteIdentical) {
  TempDir tmp{"repair_crash"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const std::string victim_name = primaries[1];
  const std::uint32_t want = crc_of(tmp.path + "/wal/" + victim_name);

  // Kill the repair at every mutating op it performs; after each kill a
  // fresh pass over the real filesystem must still converge to the oracle.
  for (std::uint64_t kill_at = 0;; ++kill_at) {
    io::inject_bit_rot(real, tmp.path + "/wal/" + victim_name, 70, 0x01);
    io::IoFaultPlan plan;
    plan.add(kill_at, io::IoFaultKind::kCrash);
    io::FaultyFileSystem ffs{real, plan, kill_at};
    bool crashed = false;
    try {
      LogIntegrity{ffs, {tmp.path + "/wal", tmp.path + "/mirror"}}
          .check_and_repair();
    } catch (const io::SimulatedCrash&) {
      crashed = true;
    }
    const IntegrityReport resumed =
        LogIntegrity{real, {tmp.path + "/wal", tmp.path + "/mirror"}}
            .check_and_repair();
    EXPECT_TRUE(resumed.fully_repaired()) << "kill at op " << kill_at;
    EXPECT_EQ(crc_of(tmp.path + "/wal/" + victim_name), want)
        << "kill at op " << kill_at;
    EXPECT_EQ(crc_of(tmp.path + "/mirror/" + victim_name), want)
        << "kill at op " << kill_at;
    if (!crashed) break;  // the plan outlived the repair: full sweep done
    ASSERT_LT(kill_at, 64u) << "repair never completed without crashing";
  }
}

TEST(Repair, WriterOpenRepairsRotBeforeRecovery) {
  TempDir tmp{"writer_open"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 5);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const std::string victim = tmp.path + "/wal/" + primaries[0];
  const std::uint32_t want = crc_of(victim);
  io::inject_bit_rot(real, victim, 55, 0x80);

  RecordLog::Options opt;
  opt.directory = tmp.path + "/wal";
  opt.mirror_directory = tmp.path + "/mirror";
  opt.max_segment_bytes = 4 * 1024;
  RecordLog log{real, opt};
  log.open();
  // Without the pre-scan integrity pass recovery would truncate the chain at
  // the rotted byte; with it the full history survives.
  EXPECT_EQ(log.committed_records(), 5u * kPerDay);
  EXPECT_EQ(crc_of(victim), want);
  commit_days(log, 5, 1);
  EXPECT_EQ(log.committed_records(), 6u * kPerDay);
}

// --- certified quarantine ----------------------------------------------------

TEST(Quarantine, DoubleFaultYieldsExactAccounting) {
  TempDir tmp{"quarantine"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 6);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  ASSERT_GE(primaries.size(), 4u);
  // Golden audits give the day range the victim carries.
  const ScrubReport golden =
      LogScrubber{real, {tmp.path + "/wal", tmp.path + "/mirror"}}.run();
  const std::uint32_t victim = 2;
  const SegmentAudit& vaudit = golden.audits[victim];
  io::inject_bit_rot(real, tmp.path + "/wal/" + primaries[victim], 90, 0x04);
  io::inject_bit_rot(real, tmp.path + "/mirror/" + primaries[victim], 91, 0x04);

  LogIntegrity integrity{real, {tmp.path + "/wal", tmp.path + "/mirror"}};
  const IntegrityReport report = integrity.check_and_repair();
  EXPECT_FALSE(report.fully_repaired());
  ASSERT_EQ(report.quarantined_segments, (std::vector<std::uint32_t>{victim}));
  EXPECT_TRUE(report.accounting_exact);
  EXPECT_EQ(report.records_lost, vaudit.records);
  EXPECT_EQ(report.quarantine_first_day, vaudit.first_day);
  EXPECT_EQ(report.quarantine_last_day, vaudit.last_day);

  // The reader skips the hole with the same accounting and flags the stream.
  LogCursor cursor;
  CollectingSink sink;
  telemetry::FollowOptions fo;
  fo.quarantined = report.quarantined_segments;
  const TailReadResult r =
      RecordLog::follow(real, tmp.path + "/wal", cursor, sink, fo);
  EXPECT_EQ(r.state, TailState::kQuarantined);
  EXPECT_TRUE(r.quarantine_skipped);
  EXPECT_TRUE(r.quarantine_exact);
  EXPECT_EQ(r.records_quarantined, vaudit.records);
  EXPECT_EQ(r.days_quarantined,
            static_cast<std::uint64_t>(vaudit.last_day - vaudit.first_day + 1));
  EXPECT_EQ(r.records_delivered + r.records_quarantined, 6u * kPerDay);
  EXPECT_EQ(cursor.records, 6u * kPerDay);  // adopted totals span the hole
  for (int day = vaudit.first_day; day <= vaudit.last_day; ++day) {
    EXPECT_EQ(std::count(sink.days.begin(), sink.days.end(), day), 0) << day;
  }
  // Delivered records are exactly the surviving days' — never a wrong byte.
  for (const HandoverRecord& rec : sink.records) {
    const int day = static_cast<int>(rec.timestamp / util::kMsPerDay);
    EXPECT_TRUE(day < vaudit.first_day || day > vaudit.last_day);
  }
}

TEST(Quarantine, DeferredAccountingCommitsExactlyOnce) {
  TempDir tmp{"deferred"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const std::uint32_t tail_index =
      static_cast<std::uint32_t>(primaries.size() - 1);
  const std::uint32_t victim = tail_index - 1;
  const ScrubReport golden = LogScrubber{real, {tmp.path + "/wal", ""}}.run();
  const std::uint64_t hole_records = golden.audits[victim].records;
  // Empty the tail down to its header: the hole has no closing anchor yet.
  real.truncate(tmp.path + "/wal/" + primaries[tail_index],
                RecordLog::kSegmentHeaderSize);
  const std::vector<std::uint32_t> quarantined{victim};

  LogCursor cursor;
  CollectingSink sink;
  telemetry::FollowOptions fo;
  fo.quarantined = quarantined;
  const TailReadResult first =
      RecordLog::follow(real, tmp.path + "/wal", cursor, sink, fo);
  EXPECT_EQ(first.state, TailState::kQuarantined);
  EXPECT_TRUE(first.quarantine_skipped);
  EXPECT_EQ(first.records_quarantined, 0u);  // deferred: no anchor yet
  EXPECT_EQ(first.days_quarantined, 0u);
  const int last_delivered_day = cursor.day;

  // The writer seals the next day (as a marker-only day, crafted so the
  // cumulative total includes the quarantined records, exactly as the real
  // writer would have persisted it).
  {
    std::ofstream os{tmp.path + "/wal/" + primaries[tail_index],
                     std::ios::binary | std::ios::app};
    const auto frame = make_frame(
        RecordLog::kDayMarkerFrame,
        make_marker_payload(last_delivered_day + 2, 0, 4u * kPerDay));
    os.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
    ASSERT_TRUE(os.good());
  }

  const TailReadResult second =
      RecordLog::follow(real, tmp.path + "/wal", cursor, sink, fo);
  EXPECT_EQ(second.state, TailState::kQuarantined);
  EXPECT_EQ(second.records_quarantined, hole_records);
  EXPECT_EQ(second.days_quarantined, 1u);
  EXPECT_TRUE(second.quarantine_exact);
  EXPECT_EQ(cursor.records, 4u * kPerDay);

  // Exactly-once: a further poll past the committed hole contributes zero.
  const TailReadResult third =
      RecordLog::follow(real, tmp.path + "/wal", cursor, sink, fo);
  EXPECT_EQ(third.state, TailState::kClean);
  EXPECT_FALSE(third.quarantine_skipped);
  EXPECT_EQ(third.records_quarantined, 0u);
}

// --- WalTailer integration ---------------------------------------------------

WalTailer::Options tailer_options(const std::string& root) {
  WalTailer::Options o;
  o.wal_directory = root + "/wal";
  o.checkpoint_path = root + "/serve.ckpt";
  o.mirror_directory = root + "/mirror";
  o.window_days = 4;
  o.sketch_k = 64;
  o.checkpoint_every_days = 1;
  o.max_days_per_poll = 64;
  return o;
}

/// Polls until the tailer is caught up; returns the final PollResult with
/// the intermediate scrub/repair/quarantine counters accumulated in.
WalTailer::PollResult drain(WalTailer& tailer) {
  WalTailer::PollResult total;
  for (;;) {
    const WalTailer::PollResult r = tailer.poll();
    total.state = r.state;
    total.days_delivered += r.days_delivered;
    total.records_delivered += r.records_delivered;
    total.scrubs_run += r.scrubs_run;
    total.segments_repaired += r.segments_repaired;
    total.segments_quarantined += r.segments_quarantined;
    total.records_quarantined += r.records_quarantined;
    if (r.state != TailState::kMore) return total;
  }
}

std::vector<std::uint8_t> oracle_aggregate_bytes(const std::string& wal,
                                                 const WalTailer::Options& o) {
  StreamAggregates oracle{{o.window_days, o.sketch_k, o.sample_modulus}};
  RecordLog::replay(io::StdioFileSystem::instance(), wal, oracle);
  std::vector<std::uint8_t> bytes;
  oracle.serialize(bytes);
  return bytes;
}

TEST(TailerIntegrity, ReadRepairsRotMidStreamAndConverges) {
  TempDir tmp{"tailer_repair"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 6);
  auto& real = io::StdioFileSystem::instance();
  const std::vector<std::uint8_t> oracle =
      oracle_aggregate_bytes(tmp.path + "/wal", tailer_options(tmp.path));
  const auto primaries = real.list(tmp.path + "/wal", "wal-");

  // Consume two days, then rot a segment the cursor has not reached yet.
  WalTailer::Options opt = tailer_options(tmp.path);
  opt.max_days_per_poll = 2;
  WalTailer tailer{real, opt};
  tailer.open();
  EXPECT_EQ(tailer.poll().state, TailState::kMore);
  const std::string victim = tmp.path + "/wal/" + primaries[3];
  const std::uint32_t want = crc_of(victim);
  io::inject_bit_rot(real, victim, 120, 0x20);

  const WalTailer::PollResult r = drain(tailer);
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_GE(r.scrubs_run, 1u);
  EXPECT_EQ(r.segments_repaired, 1u);
  EXPECT_EQ(r.segments_quarantined, 0u);
  EXPECT_EQ(crc_of(victim), want);
  std::vector<std::uint8_t> bytes;
  tailer.aggregates().serialize(bytes);
  EXPECT_EQ(bytes, oracle);
  EXPECT_TRUE(tailer.quarantined_segments().empty());
}

TEST(TailerIntegrity, QuarantineLedgerAndCheckpointV2Roundtrip) {
  TempDir tmp{"tailer_quarantine"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 6);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const ScrubReport golden =
      LogScrubber{real, {tmp.path + "/wal", tmp.path + "/mirror"}}.run();
  const std::uint32_t victim = 1;
  io::inject_bit_rot(real, tmp.path + "/wal/" + primaries[victim], 64, 0x01);
  io::inject_bit_rot(real, tmp.path + "/mirror/" + primaries[victim], 65, 0x01);

  WalTailer tailer{real, tailer_options(tmp.path)};
  tailer.open();
  const WalTailer::PollResult r = drain(tailer);
  EXPECT_EQ(r.state, TailState::kQuarantined);
  EXPECT_EQ(r.segments_quarantined, 1u);
  EXPECT_EQ(tailer.quarantined_segments(),
            (std::vector<std::uint32_t>{victim}));
  EXPECT_EQ(tailer.records_lost(), golden.audits[victim].records);
  EXPECT_TRUE(tailer.loss_accounting_exact());
  EXPECT_EQ(tailer.loss_first_day(), golden.audits[victim].first_day);
  EXPECT_EQ(tailer.loss_last_day(), golden.audits[victim].last_day);
  EXPECT_EQ(r.records_delivered + tailer.records_lost(), 6u * kPerDay);

  // The ledger made the checkpoint a v2 image.
  {
    std::ifstream is{tmp.path + "/serve.ckpt", std::ios::binary};
    ASSERT_TRUE(is.good());
    is.seekg(8);
    EXPECT_EQ(is.get(), 2);
  }

  // Cold restart: ledger rehydrates, the hole is not re-read or re-counted.
  WalTailer restart{real, tailer_options(tmp.path)};
  restart.open();
  EXPECT_EQ(restart.quarantined_segments(), tailer.quarantined_segments());
  EXPECT_EQ(restart.records_lost(), tailer.records_lost());
  EXPECT_EQ(restart.days_lost(), tailer.days_lost());
  EXPECT_TRUE(restart.loss_accounting_exact());
  const WalTailer::PollResult rr = restart.poll();
  EXPECT_EQ(rr.days_delivered, 0u);
  EXPECT_EQ(rr.records_quarantined, 0u);
  EXPECT_EQ(restart.records_lost(), tailer.records_lost());
}

TEST(TailerIntegrity, CleanChainKeepsV1Checkpoint) {
  TempDir tmp{"tailer_v1"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 3);
  auto& real = io::StdioFileSystem::instance();
  WalTailer tailer{real, tailer_options(tmp.path)};
  tailer.open();
  EXPECT_EQ(drain(tailer).state, TailState::kClean);
  std::ifstream is{tmp.path + "/serve.ckpt", std::ios::binary};
  ASSERT_TRUE(is.good());
  is.seekg(8);
  EXPECT_EQ(is.get(), 1);  // no loss ever certified: byte-compatible v1
}

TEST(TailerIntegrity, FailOnDataLossThrowsTypedError) {
  TempDir tmp{"tailer_strict"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  io::inject_bit_rot(real, tmp.path + "/wal/" + primaries[1], 30, 0x01);
  io::inject_bit_rot(real, tmp.path + "/mirror/" + primaries[1], 30, 0x01);

  WalTailer::Options opt = tailer_options(tmp.path);
  opt.fail_on_data_loss = true;
  WalTailer tailer{real, opt};
  tailer.open();
  EXPECT_THROW(tailer.poll(), supervise::DataLossError);
  // The taxonomy classifies it as certified loss, not a retryable fault.
  try {
    throw supervise::DataLossError{"x"};
  } catch (...) {
    EXPECT_EQ(supervise::classify_exception(std::current_exception()).code(),
              StatusCode::kDataLoss);
  }
}

TEST(TailerIntegrity, ScrubCadenceIsDeterministicInDeliveredDays) {
  TempDir tmp{"tailer_cadence"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 6);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  // Mirror-side rot is invisible to the read path; only the proactive
  // cadence can find (and repair) it before the replica is ever needed.
  io::inject_bit_rot(real, tmp.path + "/mirror/" + primaries[0], 33, 0x04);

  std::vector<std::uint64_t> scrub_history;
  for (int run = 0; run < 2; ++run) {
    const std::string root = tmp.path + "/run" + std::to_string(run);
    copy_wal(tmp.path + "/wal", root + "/wal");
    copy_wal(tmp.path + "/mirror", root + "/mirror");
    WalTailer::Options opt = tailer_options(root);
    opt.scrub_every_days = 2;
    opt.max_days_per_poll = 1;
    WalTailer tailer{real, opt};
    tailer.open();
    const WalTailer::PollResult r = drain(tailer);
    EXPECT_EQ(r.state, TailState::kClean);
    scrub_history.push_back(r.scrubs_run);
    EXPECT_EQ(r.scrubs_run, 3u);  // 6 delivered days / cadence 2
    EXPECT_EQ(r.segments_repaired, 1u);
    EXPECT_EQ(crc_of(root + "/mirror/" + primaries[0]),
              crc_of(root + "/wal/" + primaries[0]));
  }
  EXPECT_EQ(scrub_history[0], scrub_history[1]);
}

// --- retention x mirror ------------------------------------------------------

TEST(Retention, MirrorsRetireInLockstepWithPrimaries) {
  TempDir tmp{"retention_lockstep"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 6);
  auto& real = io::StdioFileSystem::instance();
  WalTailer::Options opt = tailer_options(tmp.path);
  opt.retention = true;
  WalTailer tailer{real, opt};
  tailer.open();
  EXPECT_EQ(drain(tailer).state, TailState::kClean);

  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  const auto mirrors = real.list(tmp.path + "/mirror", "wal-");
  // Everything strictly behind the durable cursor is gone from both chains;
  // what the primary chain keeps, the mirror also keeps (minus the tail,
  // which never had a replica).
  ASSERT_FALSE(primaries.empty());
  EXPECT_EQ(primaries.front(),
            RecordLog::segment_name(tailer.durable_cursor().segment));
  std::vector<std::string> expect_mirrors(primaries.begin(),
                                          primaries.end() - 1);
  EXPECT_EQ(mirrors, expect_mirrors);
}

TEST(Retention, NeededMirrorSurvivesAndStillRepairs) {
  TempDir tmp{"retention_needed"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 6);
  auto& real = io::StdioFileSystem::instance();
  const std::vector<std::uint8_t> oracle =
      oracle_aggregate_bytes(tmp.path + "/wal", tailer_options(tmp.path));

  WalTailer::Options opt = tailer_options(tmp.path);
  opt.retention = true;
  opt.max_days_per_poll = 2;
  WalTailer tailer{real, opt};
  tailer.open();
  EXPECT_EQ(tailer.poll().state, TailState::kMore);  // cursor mid-chain

  // Mirrors at or after the durable cursor must still exist...
  const std::uint32_t cursor_seg = tailer.durable_cursor().segment;
  const auto primaries = real.list(tmp.path + "/wal", "wal-");
  for (const auto& name : primaries) {
    if (name == primaries.back()) continue;  // tail has no replica
    EXPECT_TRUE(real.exists(tmp.path + "/mirror/" + name)) << name;
  }
  // ...because the read path ahead may still need them: rot a primary the
  // cursor has not consumed and finish the stream through its replica.
  ASSERT_GT(primaries.size(), 2u);
  const std::string victim = primaries[primaries.size() - 2];
  std::uint32_t victim_index = 0;
  ASSERT_EQ(std::sscanf(victim.c_str(), "wal-%9u.tlseg", &victim_index), 1);
  ASSERT_GE(victim_index, cursor_seg);
  io::inject_bit_rot(real, tmp.path + "/wal/" + victim, 48, 0x02);
  const WalTailer::PollResult r = drain(tailer);
  EXPECT_EQ(r.state, TailState::kClean);
  EXPECT_EQ(r.segments_repaired, 1u);
  std::vector<std::uint8_t> bytes;
  tailer.aggregates().serialize(bytes);
  EXPECT_EQ(bytes, oracle);
}

// --- read-side fault injection ----------------------------------------------

TEST(ReadFaults, BitRotIsTransientAndSingleBit) {
  TempDir tmp{"read_bitrot"};
  auto& real = io::StdioFileSystem::instance();
  std::vector<std::uint8_t> payload(256);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  write_file(tmp.path + "/f.bin", payload);

  io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 7};
  io::IoFaultPlan reads;
  reads.add(0, io::IoFaultKind::kBitRot);
  ffs.set_read_fault_plan(reads);

  std::vector<std::uint8_t> got(payload.size());
  {
    auto f = ffs.open(tmp.path + "/f.bin", io::OpenMode::kRead);
    ASSERT_EQ(f->read(got.data(), got.size()), got.size());
  }
  int flipped = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(got[i] ^ payload[i]);
    while (diff != 0) {
      flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 1);  // exactly one bit, in the returned bytes only
  EXPECT_EQ(ffs.read_ops(), 1u);
  {
    auto f = ffs.open(tmp.path + "/f.bin", io::OpenMode::kRead);
    ASSERT_EQ(f->read(got.data(), got.size()), got.size());
  }
  EXPECT_EQ(got, payload);  // transient: the file itself is untouched
  EXPECT_EQ(ffs.read_ops(), 2u);
}

TEST(ReadFaults, ReadErrorThrowsAndPlansAreSeeded) {
  TempDir tmp{"read_eio"};
  auto& real = io::StdioFileSystem::instance();
  write_file(tmp.path + "/f.bin", std::vector<std::uint8_t>(64, 0x5A));

  io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 1};
  io::IoFaultPlan reads;
  reads.add(0, io::IoFaultKind::kReadError);
  ffs.set_read_fault_plan(reads);
  std::uint8_t buf[64];
  auto f = ffs.open(tmp.path + "/f.bin", io::OpenMode::kRead);
  EXPECT_THROW(f->read(buf, sizeof buf), io::IoError);

  // read_chaos is a pure function of (seed, horizon, rate).
  const io::IoFaultPlan a = io::IoFaultPlan::read_chaos(99, 1000, 0.05);
  const io::IoFaultPlan b = io::IoFaultPlan::read_chaos(99, 1000, 0.05);
  ASSERT_EQ(a.faults().size(), b.faults().size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].op_index, b.faults()[i].op_index);
    EXPECT_EQ(static_cast<int>(a.faults()[i].kind),
              static_cast<int>(b.faults()[i].kind));
  }
}

TEST(ReadFaults, ScrubberToleratesTransientReadFaults) {
  // A transient bit flip seen during an audit looks like a defect, but the
  // repair path re-reads the real bytes — so a "repair" triggered by a ghost
  // defect is a no-op copy that leaves the chain byte-identical.
  TempDir tmp{"read_ghost"};
  build_mirrored_wal(tmp.path + "/wal", tmp.path + "/mirror", 4);
  auto& real = io::StdioFileSystem::instance();
  const auto before_primary = chain_crcs(tmp.path + "/wal");
  const auto before_mirror = chain_crcs(tmp.path + "/mirror");

  io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 3};
  ffs.set_read_fault_plan(io::IoFaultPlan::read_chaos(3, 200, 0.02));
  try {
    LogIntegrity{ffs, {tmp.path + "/wal", tmp.path + "/mirror"}}
        .check_and_repair();
  } catch (const io::IoError&) {
    // A kReadError (or a copy-verify catching a ghost) may abort the pass;
    // the on-disk chain must still be untouched.
  }
  EXPECT_EQ(chain_crcs(tmp.path + "/wal"), before_primary);
  EXPECT_EQ(chain_crcs(tmp.path + "/mirror"), before_mirror);
}

// --- the bit-rot chaos suite -------------------------------------------------

struct ChaosVictim {
  std::uint32_t segment = 0;
  bool primary = false;
  bool mirror = false;
};

TEST(BitRotChaos, SeededSchedulesRepairOrCertify) {
  TempDir tmp{"chaos"};
  const std::string gold = tmp.path + "/gold";
  build_mirrored_wal(gold + "/wal", gold + "/mirror", 8);
  auto& real = io::StdioFileSystem::instance();
  const auto primaries = real.list(gold + "/wal", "wal-");
  const std::uint32_t sealed =
      static_cast<std::uint32_t>(primaries.size() - 1);
  ASSERT_GE(sealed, 4u);
  const ScrubReport golden = LogScrubber{real, {gold + "/wal", ""}}.run();
  const WalTailer::Options base_opt = tailer_options(tmp.path);
  const std::vector<std::uint8_t> oracle =
      oracle_aggregate_bytes(gold + "/wal", base_opt);
  CollectingSink golden_stream;
  RecordLog::replay(real, gold + "/wal", golden_stream);

  // Fault-free op horizon for the kill/resume arm.
  std::uint64_t horizon = 0;
  {
    const std::string root = tmp.path + "/dry";
    copy_wal(gold + "/wal", root + "/wal");
    copy_wal(gold + "/mirror", root + "/mirror");
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    WalTailer tailer{ffs, tailer_options(root)};
    tailer.open();
    drain(tailer);
    horizon = ffs.ops();
  }

  const int schedules = chaos_schedule_count();
  int detected_all = 0, verdicts = 0;
  for (int s = 0; s < schedules; ++s) {
    SCOPED_TRACE("schedule " + std::to_string(s));
    util::Rng rng = util::Rng::derive(0xb17507, static_cast<std::uint64_t>(s));
    const std::string root = tmp.path + "/s" + std::to_string(s);
    copy_wal(gold + "/wal", root + "/wal");
    copy_wal(gold + "/mirror", root + "/mirror");
    const int mode = s % 3;  // 0: repairable rot; 1: + double fault; 2: + kills

    // Distinct victim segments; one flip per damaged copy. The certified
    // loss victim must be interior — a marker anchor on BOTH sides — for
    // the accounting to be exact: an end-of-chain hole stays deferred
    // until the writer commits again (covered by
    // Quarantine.DeferredAccountingCommitsExactlyOnce), and a hole at the
    // chain head leaves the first lost day unknowable from the stream.
    std::vector<std::uint32_t> interior;
    for (std::uint32_t seg = 1; seg < sealed; ++seg) {
      if (golden.audits[seg].last_day < golden.last_day) interior.push_back(seg);
    }
    ASSERT_FALSE(interior.empty());
    std::vector<ChaosVictim> victims;
    std::set<std::uint32_t> used;
    if (mode == 1) {
      ChaosVictim v;
      v.segment = interior[rng.below(interior.size())];
      v.primary = v.mirror = true;  // the certified-loss victim
      used.insert(v.segment);
      victims.push_back(v);
    }
    const std::size_t n = victims.size() + 1 + rng.below(2);
    while (victims.size() < n) {
      const std::uint32_t seg = static_cast<std::uint32_t>(rng.below(sealed));
      if (!used.insert(seg).second) continue;
      ChaosVictim v;
      v.segment = seg;
      if (rng.chance(0.5)) {
        v.primary = true;
      } else {
        v.mirror = true;
      }
      victims.push_back(v);
    }
    for (const ChaosVictim& v : victims) {
      const std::string name = RecordLog::segment_name(v.segment);
      if (v.primary) {
        const std::string path = root + "/wal/" + name;
        io::inject_bit_rot(real, path, rng.below(real.file_size(path)),
                           static_cast<std::uint8_t>(1u << rng.below(8)));
      }
      if (v.mirror) {
        const std::string path = root + "/mirror/" + name;
        io::inject_bit_rot(real, path, rng.below(real.file_size(path)),
                           static_cast<std::uint8_t>(1u << rng.below(8)));
      }
    }

    // Layer 1 verdict: detection is total — every damaged copy surfaces.
    const ScrubReport found =
        LogScrubber{real, {root + "/wal", root + "/mirror"}}.run();
    bool all_found = true;
    for (const ChaosVictim& v : victims) {
      const auto hit = [&](bool in_mirror) {
        for (const auto& d : found.defects) {
          if (d.segment == v.segment && d.in_mirror == in_mirror) return true;
        }
        return false;
      };
      if (v.primary && !hit(false)) all_found = false;
      if (v.mirror && !hit(true)) all_found = false;
    }
    EXPECT_TRUE(all_found);
    detected_all += all_found ? 1 : 0;

    // Tail the damaged chain (mode 2: under seeded kills + transient EIO,
    // resuming from the checkpoint after every death).
    WalTailer::Options opt = tailer_options(root);
    opt.scrub_every_days = 3;
    WalTailer::PollResult last;
    bool complete = false;
    std::vector<std::uint8_t> bytes;
    std::vector<std::uint32_t> ledger;
    std::uint64_t records_lost = 0, days_lost = 0;
    bool exact = false;
    int first_lost = -1, last_lost = -1;
    for (int attempt = 0; attempt < 64 && !complete; ++attempt) {
      io::IoFaultPlan plan;
      if (mode == 2 && attempt < 8) {
        plan = io::IoFaultPlan::chaos(rng(), horizon + 16, 0.01);
      }
      io::FaultyFileSystem ffs{real, plan, rng()};
      WalTailer tailer{ffs, opt};
      try {
        tailer.open();
        last = drain(tailer);
        tailer.scrub_now();  // settle any latent mirror-side rot
        complete = true;
        tailer.aggregates().serialize(bytes);
        ledger = tailer.quarantined_segments();
        records_lost = tailer.records_lost();
        days_lost = tailer.days_lost();
        exact = tailer.loss_accounting_exact();
        first_lost = tailer.loss_first_day();
        last_lost = tailer.loss_last_day();
      } catch (const io::SimulatedCrash&) {
      } catch (const io::IoError&) {
      }
    }
    ASSERT_TRUE(complete);

    if (mode != 1) {
      // Layers 1+2: full repair — stream converges to the oracle and every
      // file of both chains is byte-identical to the golden copy.
      EXPECT_EQ(last.state, TailState::kClean);
      EXPECT_TRUE(ledger.empty());
      EXPECT_EQ(bytes, oracle);
      EXPECT_EQ(chain_crcs(root + "/wal"), chain_crcs(gold + "/wal"));
      EXPECT_EQ(chain_crcs(root + "/mirror"), chain_crcs(gold + "/mirror"));
      verdicts += (last.state == TailState::kClean && bytes == oracle &&
                   ledger.empty())
                      ? 1
                      : 0;
    } else {
      // Layer 3: certified loss with exact accounting, never a wrong byte.
      const std::uint32_t victim = victims[0].segment;
      const SegmentAudit& va = golden.audits[victim];
      EXPECT_EQ(ledger, (std::vector<std::uint32_t>{victim}));
      EXPECT_TRUE(exact);
      EXPECT_EQ(records_lost, va.records);
      EXPECT_EQ(days_lost,
                static_cast<std::uint64_t>(va.last_day - va.first_day + 1));
      EXPECT_EQ(first_lost, va.first_day);
      EXPECT_EQ(last_lost, va.last_day);

      // Expected degraded stream: the golden stream minus the lost days.
      StreamAggregates expect{{opt.window_days, opt.sketch_k,
                               opt.sample_modulus}};
      std::size_t i = 0;
      for (const int day : golden_stream.days) {
        for (; i < golden_stream.records.size() &&
               static_cast<int>(golden_stream.records[i].timestamp /
                                util::kMsPerDay) == day;
             ++i) {
          if (day < va.first_day || day > va.last_day) {
            expect.consume(golden_stream.records[i]);
          }
        }
        if (day < va.first_day || day > va.last_day) expect.on_day_end(day);
      }
      std::vector<std::uint8_t> expect_bytes;
      expect.serialize(expect_bytes);
      EXPECT_EQ(bytes, expect_bytes);
      verdicts += (exact && records_lost == va.records && bytes == expect_bytes)
                      ? 1
                      : 0;
    }
  }
  EXPECT_EQ(detected_all, schedules);
  EXPECT_EQ(verdicts, schedules);
}

TEST(BitRotChaos, RealSimulatorChainRepairsAcrossThreadCounts) {
  TempDir tmp{"sim_threads"};
  auto& real = io::StdioFileSystem::instance();
  std::vector<std::vector<std::pair<std::string, std::uint32_t>>> crcs;
  for (const unsigned threads : {1u, 2u, 4u}) {
    core::StudyConfig config = core::StudyConfig::test_scale();
    config.days = 3;
    config.population.count = 250;
    config.threads = threads;
    const std::string root = tmp.path + "/t" + std::to_string(threads);
    RecordLog::Options opt;
    opt.directory = root + "/wal";
    opt.mirror_directory = root + "/mirror";
    opt.max_segment_bytes = 8 * 1024;
    RecordLog log{real, opt};
    telemetry::DurableRecordSink sink{log};
    log.open();
    core::Simulator sim{config};
    core::DayCheckpoint day0;
    day0.seed = config.seed;
    sim.restore(day0);
    sim.attach_durable_log(&sink);
    sim.run();
    sim.remove_sink(&sink);
    crcs.push_back(chain_crcs(root + "/wal"));
    ASSERT_GE(crcs.back().size(), 2u) << "expected a multi-segment chain";
  }
  // The WAL bytes are thread-count-invariant, so one oracle covers all.
  EXPECT_EQ(crcs[0], crcs[1]);
  EXPECT_EQ(crcs[0], crcs[2]);

  // Rot a sealed segment of each chain and repair from its replica.
  for (const unsigned threads : {1u, 2u, 4u}) {
    const std::string root = tmp.path + "/t" + std::to_string(threads);
    const auto names = real.list(root + "/wal", "wal-");
    const std::string victim = root + "/wal/" + names[0];
    const std::uint32_t want = crc_of(victim);
    io::inject_bit_rot(real, victim, 77, 0x08);
    const IntegrityReport report =
        LogIntegrity{real, {root + "/wal", root + "/mirror"}}.check_and_repair();
    EXPECT_TRUE(report.fully_repaired()) << threads;
    EXPECT_TRUE(report.repaired_any()) << threads;
    EXPECT_EQ(crc_of(victim), want) << threads;
  }
}

}  // namespace
}  // namespace tl
