// Mobility classes, activity curves, trace generation, and metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "devices/catalog.hpp"
#include "geo/census.hpp"
#include "mobility/activity.hpp"
#include "mobility/metrics.hpp"
#include "mobility/trace_generator.hpp"

namespace tl::mobility {
namespace {

const geo::Country& country() {
  static const geo::Country c = [] {
    geo::CensusConfig cc;
    cc.districts = 40;
    cc.total_population = 5'000'000;
    cc.seed = 3;
    return geo::synthesize_country(cc);
  }();
  return c;
}

const ActivityModel& activity() {
  static const ActivityModel m;
  return m;
}

devices::Ue make_ue(devices::DeviceType type, topology::RatSupport support,
                    devices::UeId id = 1) {
  devices::Ue ue;
  ue.id = id;
  ue.type = type;
  ue.rat_support = support;
  ue.home_postcode = 0;
  ue.ho_rate_multiplier = 1.0f;
  return ue;
}

TEST(MobilityClass, MixesAreDistributions) {
  for (const auto type : devices::kAllDeviceTypes) {
    for (const bool modern : {false, true}) {
      const auto mix = mobility_mix(type, modern);
      double sum = 0.0;
      for (const double p : mix) {
        EXPECT_GE(p, 0.0);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(MobilityClass, LegacyM2mIsOverwhelminglyStatic) {
  util::Rng rng{11};
  int stationary = 0;
  constexpr int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (sample_mobility_class(devices::DeviceType::kM2mIot,
                              topology::RatSupport::kUpTo2G,
                              rng) == MobilityClass::kStationary) {
      ++stationary;
    }
  }
  EXPECT_NEAR(stationary / static_cast<double>(n), 0.70, 0.02);
}

TEST(Activity, WeekdayShapeMatchesPaper) {
  const auto& curve = activity().curve(DayShape::kWeekday, geo::AreaType::kUrban);
  // Peak at 08:00-08:30 (bin 16).
  for (int b = 0; b < 48; ++b) EXPECT_LE(curve[b], curve[16] + 1e-12);
  // x3 ramp between 06:00 (bin 12) and 08:00 (bin 16).
  EXPECT_GT(curve[16] / curve[12], 2.5);
  // Second (lower) peak at 15:00 (bin 30) above its midday surroundings.
  EXPECT_GT(curve[30], curve[26]);
  EXPECT_LT(curve[30], curve[16]);
  // ~11% decline per 30 minutes after the afternoon peak.
  EXPECT_NEAR(curve[31] / curve[30], 0.89, 1e-9);
  // Night minimum in 02:00-03:30 (bins 4-7).
  double min_v = 1e9;
  int min_bin = -1;
  for (int b = 0; b < 48; ++b) {
    if (curve[b] < min_v) {
      min_v = curve[b];
      min_bin = b;
    }
  }
  EXPECT_GE(min_bin, 4);
  EXPECT_LE(min_bin, 7);
}

TEST(Activity, SundayPeakIsAboutAThirdBelowWeekday) {
  const auto& weekday = activity().curve(DayShape::kWeekday, geo::AreaType::kUrban);
  const auto& sunday = activity().curve(DayShape::kSunday, geo::AreaType::kUrban);
  double wmax = 0, smax = 0;
  int s_argmax = 0;
  for (int b = 0; b < 48; ++b) {
    wmax = std::max(wmax, weekday[b]);
    if (sunday[b] > smax) {
      smax = sunday[b];
      s_argmax = b;
    }
  }
  EXPECT_NEAR(smax / wmax, 0.67, 0.03);
  // Weekend single peak lands in 12:00-13:00 (bins 24-25).
  EXPECT_GE(s_argmax, 24);
  EXPECT_LE(s_argmax, 25);
}

TEST(Activity, RuralCurveIsFlatterSameMass) {
  const auto& urban = activity().curve(DayShape::kWeekday, geo::AreaType::kUrban);
  const auto& rural = activity().curve(DayShape::kWeekday, geo::AreaType::kRural);
  double urban_range = 0, rural_range = 0;
  for (int b = 0; b < 48; ++b) {
    urban_range = std::max(urban_range, urban[b]);
    rural_range = std::max(rural_range, rural[b]);
  }
  EXPECT_LT(rural_range, urban_range);
}

TEST(Activity, SampledTimesFollowTheCurve) {
  util::Rng rng{13};
  std::array<int, 48> counts{};
  constexpr int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const auto t = activity().sample_event_time(0, geo::AreaType::kUrban, rng);
    EXPECT_EQ(util::SimCalendar::day_index(t), 0);
    ++counts[util::SimCalendar::half_hour_bin(t)];
  }
  // Peak bin should collect roughly weight(16)/sum of the mass.
  const auto& curve = activity().curve(DayShape::kWeekday, geo::AreaType::kUrban);
  double total = 0;
  for (const double v : curve) total += v;
  EXPECT_NEAR(counts[16] / static_cast<double>(n), curve[16] / total, 0.004);
  EXPECT_GT(counts[16], counts[5] * 3);
}

TEST(TraceGenerator, PlansAreStableAndTyped) {
  const TraceGenerator gen{country(), activity(), 77};
  const auto ue = make_ue(devices::DeviceType::kSmartphone, topology::RatSupport::kUpTo5G);
  const UePlan a = gen.plan_for(ue);
  const UePlan b = gen.plan_for(ue);
  EXPECT_EQ(a.mobility_class, b.mobility_class);
  EXPECT_EQ(a.home, b.home);
  EXPECT_EQ(a.work, b.work);
  EXPECT_NEAR(a.depart_home_h, b.depart_home_h, 1e-12);
}

TEST(TraceGenerator, TracesAreSortedWithinDay) {
  const TraceGenerator gen{country(), activity(), 77};
  const auto ue = make_ue(devices::DeviceType::kSmartphone, topology::RatSupport::kUpTo5G);
  const UePlan plan = gen.plan_for(ue);
  const auto trace = gen.generate(ue, plan, 2);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time, trace[i].time);
  }
  for (const auto& ev : trace) {
    EXPECT_EQ(util::SimCalendar::day_index(ev.time), 2);
    EXPECT_GE(ev.position.x_km, 0.0);
    EXPECT_LE(ev.position.x_km, country().width_km());
  }
}

TEST(TraceGenerator, WeekendsCarryFewerEvents) {
  const TraceGenerator gen{country(), activity(), 77};
  const auto ue = make_ue(devices::DeviceType::kSmartphone, topology::RatSupport::kUpTo5G);
  const UePlan plan = gen.plan_for(ue);
  std::size_t weekday_events = 0, sunday_events = 0;
  for (int week = 0; week < 4; ++week) {
    weekday_events += gen.generate(ue, plan, week * 7 + 4).size();  // Fridays
    sunday_events += gen.generate(ue, plan, week * 7 + 6).size();   // Sundays
  }
  EXPECT_LT(sunday_events, weekday_events);
}

TEST(TraceGenerator, StationaryUeStaysHome) {
  const TraceGenerator gen{country(), activity(), 77};
  // Legacy M2M: overwhelmingly stationary; find one.
  for (devices::UeId id = 0; id < 200; ++id) {
    auto ue = make_ue(devices::DeviceType::kM2mIot, topology::RatSupport::kUpTo2G, id);
    const UePlan plan = gen.plan_for(ue);
    if (plan.mobility_class != MobilityClass::kStationary) continue;
    const auto trace = gen.generate(ue, plan, 1);
    for (const auto& ev : trace) {
      EXPECT_LT(util::distance_km(ev.position, plan.home), 1.0);
    }
    return;
  }
  FAIL() << "no stationary UE found in 200 draws";
}

TEST(TraceGenerator, HighSpeedCoversTheRoute) {
  const TraceGenerator gen{country(), activity(), 177};
  for (devices::UeId id = 0; id < 3000; ++id) {
    auto ue = make_ue(devices::DeviceType::kSmartphone, topology::RatSupport::kUpTo5G, id);
    const UePlan plan = gen.plan_for(ue);
    if (plan.mobility_class != MobilityClass::kHighSpeed) continue;
    const auto trace = gen.generate(ue, plan, 1);
    double max_dist = 0.0;
    for (const auto& ev : trace) {
      max_dist = std::max(max_dist, util::distance_km(ev.position, plan.home));
    }
    EXPECT_GT(max_dist, 50.0);
    return;
  }
  FAIL() << "no high-speed UE found";
}

TEST(Metrics, GyrationOfSinglePointIsZero) {
  const std::vector<util::GeoPoint> pts{{10, 10}};
  const std::vector<double> dwell{100.0};
  EXPECT_EQ(radius_of_gyration(pts, dwell), 0.0);
  EXPECT_EQ(radius_of_gyration({}, {}), 0.0);
}

TEST(Metrics, GyrationOfSymmetricPairIsHalfDistance) {
  const std::vector<util::GeoPoint> pts{{0, 0}, {10, 0}};
  const std::vector<double> dwell{1.0, 1.0};
  EXPECT_NEAR(radius_of_gyration(pts, dwell), 5.0, 1e-12);
}

TEST(Metrics, GyrationWeightsByDwell) {
  const std::vector<util::GeoPoint> pts{{0, 0}, {10, 0}};
  const std::vector<double> uneven{9.0, 1.0};
  // cm at (1, 0); g = sqrt(0.9*1 + 0.1*81) = 3.
  EXPECT_NEAR(radius_of_gyration(pts, uneven), 3.0, 1e-12);
}

TEST(Metrics, RejectsBadInput) {
  EXPECT_THROW(radius_of_gyration(std::vector<util::GeoPoint>{{0, 0}},
                                  std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(radius_of_gyration(std::vector<util::GeoPoint>{{0, 0}},
                                  std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(Metrics, BuilderCountsDistinctSectors) {
  MobilityMetricsBuilder b;
  EXPECT_TRUE(b.empty());
  b.add_visit(1, {0, 0}, 10);
  b.add_visit(2, {1, 0}, 10);
  b.add_visit(1, {0, 0}, 10);
  EXPECT_EQ(b.distinct_sectors(), 2u);
  EXPECT_GT(b.radius_of_gyration_km(), 0.0);
  b.clear();
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace tl::mobility
