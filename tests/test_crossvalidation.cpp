// Cross-validation properties: the streaming aggregators and the retained
// dataset are independent code paths over the same record stream — every
// statistic computable both ways must agree exactly. Parameterized over
// seeds so the invariants hold across different synthetic countries.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/simulator.hpp"
#include "telemetry/aggregates.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "topology/snapshot.hpp"
#include "util/csv.hpp"

namespace tl {
namespace {

struct RunOutput {
  core::StudyConfig config;
  std::unique_ptr<core::Simulator> sim;
  telemetry::SignalingDataset dataset;
  std::unique_ptr<telemetry::SectorDayAggregator> sector_day;
  std::unique_ptr<telemetry::TemporalAggregator> temporal;
  std::unique_ptr<telemetry::CauseAggregator> causes;
  std::unique_ptr<telemetry::TypeMixAggregator> mix;
};

RunOutput run_with_seed(std::uint64_t seed) {
  RunOutput out;
  out.config = core::StudyConfig::test_scale();
  out.config.days = 2;
  out.config.seed = seed;
  out.config.finalize();
  out.config.population.count = 2'500;
  out.sim = std::make_unique<core::Simulator>(out.config);
  const auto n_sectors = out.sim->deployment().sectors().size();
  out.sector_day =
      std::make_unique<telemetry::SectorDayAggregator>(n_sectors, out.config.days);
  out.temporal =
      std::make_unique<telemetry::TemporalAggregator>(n_sectors, out.config.days);
  out.causes = std::make_unique<telemetry::CauseAggregator>(
      out.config.days, out.sim->catalog().manufacturers().size());
  out.mix = std::make_unique<telemetry::TypeMixAggregator>(out.config.days);
  out.sim->add_sink(&out.dataset);
  out.sim->add_sink(out.sector_day.get());
  out.sim->add_sink(out.temporal.get());
  out.sim->add_sink(out.causes.get());
  out.sim->add_sink(out.mix.get());
  out.sim->run();
  return out;
}

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static RunOutput& run() {
    static std::map<std::uint64_t, RunOutput> cache;
    auto it = cache.find(GetParam());
    if (it == cache.end()) it = cache.emplace(GetParam(), run_with_seed(GetParam())).first;
    return it->second;
  }
};

TEST_P(CrossValidation, SectorDayTotalsMatchDataset) {
  auto& r = run();
  EXPECT_EQ(r.sector_day->total_handovers(), r.dataset.size());
  EXPECT_EQ(r.sector_day->total_failures(), r.dataset.failure_count());
  // Per-observation counts reassemble into the dataset total.
  std::uint64_t from_observations = 0;
  for (const auto& obs : r.sector_day->observations()) from_observations += obs.handovers;
  EXPECT_EQ(from_observations, r.dataset.size());
}

TEST_P(CrossValidation, TemporalSeriesSumMatchesDataset) {
  auto& r = run();
  std::uint64_t total = 0;
  for (const auto area : {geo::AreaType::kRural, geo::AreaType::kUrban}) {
    for (const auto c : r.temporal->ho_series(area)) total += c;
  }
  EXPECT_EQ(total, r.dataset.size());
}

TEST_P(CrossValidation, CauseTotalsMatchDatasetFailures) {
  auto& r = run();
  EXPECT_EQ(r.causes->total_failures(), r.dataset.failure_count());
  std::uint64_t by_bucket = 0;
  for (const auto c : r.causes->totals_by_bucket()) by_bucket += c;
  EXPECT_EQ(by_bucket, r.dataset.failure_count());
  std::uint64_t by_target = 0;
  for (const auto c : r.causes->failures_by_target()) by_target += c;
  EXPECT_EQ(by_target, r.dataset.failure_count());
}

TEST_P(CrossValidation, TypeMixTotalsMatchDataset) {
  auto& r = run();
  EXPECT_EQ(r.mix->total(), r.dataset.size());
  std::uint64_t sum = 0;
  for (const auto type : devices::kAllDeviceTypes) {
    for (const auto rat :
         {topology::ObservedRat::kG2, topology::ObservedRat::kG3,
          topology::ObservedRat::kG45Nsa}) {
      sum += r.mix->count(type, rat);
    }
  }
  EXPECT_EQ(sum, r.dataset.size());
}

TEST_P(CrossValidation, RecordCsvRoundTripsRowCount) {
  auto& r = run();
  std::ostringstream os;
  r.dataset.export_csv(os);
  std::istringstream is{os.str()};
  const auto rows = util::read_csv(is);
  ASSERT_EQ(rows.size(), r.dataset.size() + 1);  // + header
  EXPECT_EQ(rows[0][0], "timestamp_ms");
}

TEST_P(CrossValidation, TopologyExportMatchesLiveSectors) {
  auto& r = run();
  std::ostringstream os;
  const std::size_t rows = topology::export_topology_csv(
      r.sim->deployment(), r.sim->country(), os, 2024);
  EXPECT_EQ(rows, r.sim->deployment().sectors().size());
  // Earlier years export strictly fewer sectors.
  std::ostringstream past;
  const std::size_t rows_2012 = topology::export_topology_csv(
      r.sim->deployment(), r.sim->country(), past, 2012);
  EXPECT_LT(rows_2012, rows);
}

TEST_P(CrossValidation, CensusExportCoversEveryPostcode) {
  auto& r = run();
  std::ostringstream os;
  EXPECT_EQ(topology::export_census_csv(r.sim->country(), os),
            r.sim->country().postcodes().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Values(42u, 1337u, 777u));

}  // namespace
}  // namespace tl
