// Durability tests: CRC32C vectors, the File/FileSystem seam, seeded I/O
// fault injection, record-log framing and torn-tail recovery, the binary
// checkpoint codec, atomic checkpoint files, validating-sink degradation
// counters, and the kill/recover chaos harness that proves crash consistency
// across >= 100 seeded fault schedules (TL_CHAOS_SCHEDULES elevates the
// count in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint_codec.hpp"
#include "core/simulator.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "telemetry/sinks.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tl {
namespace {

using core::DayCheckpoint;
using core::Simulator;
using core::StudyConfig;
using telemetry::DurableRecordSink;
using telemetry::HandoverRecord;
using telemetry::LogRecoveryReport;
using telemetry::RecordLog;

namespace fs = std::filesystem;

// --- helpers -----------------------------------------------------------------

/// Fresh directory under the gtest temp root, wiped on construction and
/// destruction so reruns never see stale segments.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_durability_" + name) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

StudyConfig chaos_config() {
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.days = 3;
  cfg.population.count = 400;
  return cfg;
}

HandoverRecord make_record(int day, std::uint32_t i) {
  HandoverRecord r;
  r.timestamp = static_cast<util::TimestampMs>(day) * util::kMsPerDay +
                1000 * static_cast<util::TimestampMs>(i + 1);
  r.success = (i % 3) != 0;
  r.duration_ms = 40.0f + static_cast<float>(i);
  r.cause = r.success ? corenet::kCauseNone : static_cast<corenet::CauseId>(2 + i % 5);
  r.anon_user_id = 0x1122334455667788ULL + i;
  r.source_sector = 10 + i;
  r.target_sector = 11 + i;
  r.source_rat = topology::ObservedRat::kG45Nsa;
  r.target_rat = (i % 4 == 0) ? topology::ObservedRat::kG3 : topology::ObservedRat::kG45Nsa;
  r.device_type = devices::DeviceType::kSmartphone;
  r.manufacturer = static_cast<devices::ManufacturerId>(i % 7);
  r.postcode = 900 + i;
  r.district = 42;
  r.area = geo::AreaType::kRural;
  r.region = geo::Region::kWest;
  r.vendor = topology::Vendor::kV2;
  r.srvcc = (i % 4 == 0);
  r.attempt = static_cast<std::uint8_t>(i % 3);
  return r;
}

void expect_record_eq(const HandoverRecord& a, const HandoverRecord& b,
                      std::size_t index) {
  ASSERT_EQ(a.timestamp, b.timestamp) << "record " << index;
  ASSERT_EQ(a.success, b.success) << "record " << index;
  ASSERT_EQ(a.duration_ms, b.duration_ms) << "record " << index;
  ASSERT_EQ(a.cause, b.cause) << "record " << index;
  ASSERT_EQ(a.anon_user_id, b.anon_user_id) << "record " << index;
  ASSERT_EQ(a.source_sector, b.source_sector) << "record " << index;
  ASSERT_EQ(a.target_sector, b.target_sector) << "record " << index;
  ASSERT_EQ(a.source_rat, b.source_rat) << "record " << index;
  ASSERT_EQ(a.target_rat, b.target_rat) << "record " << index;
  ASSERT_EQ(a.device_type, b.device_type) << "record " << index;
  ASSERT_EQ(a.manufacturer, b.manufacturer) << "record " << index;
  ASSERT_EQ(a.postcode, b.postcode) << "record " << index;
  ASSERT_EQ(a.district, b.district) << "record " << index;
  ASSERT_EQ(a.area, b.area) << "record " << index;
  ASSERT_EQ(a.region, b.region) << "record " << index;
  ASSERT_EQ(a.vendor, b.vendor) << "record " << index;
  ASSERT_EQ(a.srvcc, b.srvcc) << "record " << index;
  ASSERT_EQ(a.attempt, b.attempt) << "record " << index;
}

void expect_identical(const std::vector<HandoverRecord>& a,
                      const std::vector<HandoverRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_record_eq(a[i], b[i], i);
}

/// All log bytes, segments concatenated in order — the chaos harness's
/// byte-identity oracle.
std::string log_bytes(const std::string& dir) {
  std::string all;
  auto& real = io::StdioFileSystem::instance();
  for (const auto& name : real.list(dir, "wal-")) {
    std::ifstream is{dir + "/" + name, std::ios::binary};
    std::ostringstream os;
    os << is.rdbuf();
    all += "[" + name + "]";  // segment boundaries must match too
    all += os.str();
  }
  return all;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

// --- CRC32C ------------------------------------------------------------------

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 / iSCSI test vectors (Castagnoli polynomial).
  EXPECT_EQ(util::crc32c("123456789", 9), 0xE3069283u);
  const std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(util::crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(util::crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  EXPECT_EQ(util::crc32c("", 0), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = util::crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    util::Crc32c inc;
    inc.update(data.data(), split);
    inc.update(data.data() + split, data.size() - split);
    ASSERT_EQ(inc.value(), whole) << "split at " << split;
  }
}

TEST(Crc32c, MaskRoundTripAndDisplacement) {
  util::Rng rng{123};
  for (int i = 0; i < 1000; ++i) {
    const auto crc = static_cast<std::uint32_t>(rng());
    const std::uint32_t masked = util::mask_crc32c(crc);
    EXPECT_EQ(util::unmask_crc32c(masked), crc);
    // Masking exists so a CRC stored in CRC'd data never matches itself.
    EXPECT_NE(masked, crc);
  }
}

// --- the real filesystem -----------------------------------------------------

TEST(StdioFileSystem, WriteSyncReadRoundTrip) {
  TempDir tmp{"stdio"};
  auto& fsys = io::StdioFileSystem::instance();
  fsys.create_directories(tmp.path);
  const std::string path = tmp.path + "/file.bin";

  {
    auto f = fsys.open(path, io::OpenMode::kTruncate);
    ASSERT_EQ(f->write("hello ", 6), 6u);
    f->sync();
    ASSERT_EQ(f->write("world", 5), 5u);
    EXPECT_EQ(f->size(), 11u);
    f->close();
  }
  {
    auto f = fsys.open(path, io::OpenMode::kAppend);
    ASSERT_EQ(f->write("!", 1), 1u);
    f->close();
  }
  EXPECT_TRUE(fsys.exists(path));
  EXPECT_EQ(fsys.file_size(path), 12u);

  auto f = fsys.open(path, io::OpenMode::kRead);
  char buf[32] = {};
  EXPECT_EQ(f->read(buf, sizeof buf), 12u);
  EXPECT_EQ(std::string(buf, 12), "hello world!");
  f->seek(6);
  EXPECT_EQ(f->read(buf, 5), 5u);
  EXPECT_EQ(std::string(buf, 5), "world");

  fsys.truncate(path, 5);
  EXPECT_EQ(fsys.file_size(path), 5u);
  fsys.rename(path, tmp.path + "/renamed.bin");
  EXPECT_FALSE(fsys.exists(path));
  const auto names = fsys.list(tmp.path, "");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "renamed.bin");
  fsys.remove(tmp.path + "/renamed.bin");
  EXPECT_FALSE(fsys.exists(tmp.path + "/renamed.bin"));

  EXPECT_THROW(fsys.open(tmp.path + "/missing.bin", io::OpenMode::kRead),
               io::IoError);
}

// --- fault injection ---------------------------------------------------------

TEST(FaultyFileSystem, ShortWriteAndIoErrorAndSyncFailure) {
  TempDir tmp{"faulty_transients"};
  auto& real = io::StdioFileSystem::instance();
  real.create_directories(tmp.path);

  io::IoFaultPlan plan;
  plan.add(0, io::IoFaultKind::kShortWrite);   // op 0: first write torn
  plan.add(1, io::IoFaultKind::kIoError);      // op 1: second write -> EIO
  plan.add(2, io::IoFaultKind::kSyncFailure);  // op 2: sync -> EIO
  io::FaultyFileSystem ffs{real, plan, /*seed=*/7};

  const std::string path = tmp.path + "/t.bin";
  auto f = ffs.open(path, io::OpenMode::kTruncate);
  const std::string payload = "0123456789";
  const std::size_t n = f->write(payload.data(), payload.size());
  EXPECT_LT(n, payload.size());  // short write persisted only a prefix
  EXPECT_THROW(f->write(payload.data(), payload.size()), io::IoError);
  EXPECT_THROW(f->sync(), io::IoError);
  // After the scheduled faults are exhausted the file works normally.
  EXPECT_EQ(f->write(payload.data(), payload.size()), payload.size());
  f->sync();
  f->close();
  EXPECT_EQ(ffs.ops(), 5u);
  EXPECT_FALSE(ffs.dead());
  ASSERT_EQ(ffs.fired().size(), 3u);
  EXPECT_EQ(real.file_size(path), n + payload.size());
}

TEST(FaultyFileSystem, CrashKillsFilesystemAndRollsBackUnsyncedBytes) {
  TempDir tmp{"faulty_crash"};
  auto& real = io::StdioFileSystem::instance();
  real.create_directories(tmp.path);

  io::IoFaultPlan plan;
  plan.add(2, io::IoFaultKind::kCrash);  // ops: write, sync, then crash
  io::FaultyFileSystem ffs{real, plan, /*seed=*/99};

  const std::string path = tmp.path + "/c.bin";
  auto f = ffs.open(path, io::OpenMode::kTruncate);
  ASSERT_EQ(f->write("durable!", 8), 8u);
  f->sync();  // these 8 bytes are now behind the durability barrier
  EXPECT_THROW(f->write("doomed bytes", 12), io::SimulatedCrash);
  EXPECT_TRUE(ffs.dead());

  // Everything after the filesystem died throws SimulatedCrash, not IoError.
  EXPECT_THROW(f->write("x", 1), io::SimulatedCrash);
  EXPECT_THROW(f->sync(), io::SimulatedCrash);
  EXPECT_THROW(ffs.open(path, io::OpenMode::kRead), io::SimulatedCrash);
  EXPECT_THROW(ffs.remove(path), io::SimulatedCrash);

  // The synced prefix survived; un-synced bytes were fair game.
  const std::uint64_t size = real.file_size(path);
  EXPECT_GE(size, 8u);
  EXPECT_LE(size, 8u + 12u);
  std::ifstream is{path, std::ios::binary};
  std::string head(8, '\0');
  is.read(head.data(), 8);
  EXPECT_EQ(head, "durable!");
}

TEST(FaultyFileSystem, ChaosPlanIsSeedDeterministic) {
  const auto a = io::IoFaultPlan::chaos(42, 500, 0.05);
  const auto b = io::IoFaultPlan::chaos(42, 500, 0.05);
  const auto c = io::IoFaultPlan::chaos(43, 500, 0.05);
  ASSERT_EQ(a.faults().size(), b.faults().size());
  for (std::size_t i = 0; i < a.faults().size(); ++i) {
    EXPECT_EQ(a.faults()[i].op_index, b.faults()[i].op_index);
    EXPECT_EQ(a.faults()[i].kind, b.faults()[i].kind);
  }
  // Exactly one crash, and it terminates the plan.
  int crashes = 0;
  for (const auto& fault : a.faults()) {
    if (fault.kind == io::IoFaultKind::kCrash) ++crashes;
  }
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(a.faults().back().kind, io::IoFaultKind::kCrash);
  EXPECT_LT(a.faults().back().op_index, 500u);
  // Different seeds should not all land on the same schedule.
  EXPECT_TRUE(a.faults().size() != c.faults().size() ||
              a.faults().back().op_index != c.faults().back().op_index);
}

// --- record codec ------------------------------------------------------------

TEST(RecordCodec, RoundTripPreservesEveryField) {
  for (std::uint32_t i = 0; i < 32; ++i) {
    const HandoverRecord r = make_record(i % 5, i);
    std::vector<std::uint8_t> bytes;
    RecordLog::encode_record(r, bytes);
    ASSERT_EQ(bytes.size(), RecordLog::kRecordEncodedSize);
    const HandoverRecord back = RecordLog::decode_record(bytes);
    expect_record_eq(r, back, i);
  }
}

TEST(RecordCodec, RejectsWrongSize) {
  std::vector<std::uint8_t> bytes;
  RecordLog::encode_record(make_record(0, 0), bytes);
  bytes.pop_back();
  EXPECT_THROW(RecordLog::decode_record(bytes), std::runtime_error);
}

// --- record log --------------------------------------------------------------

RecordLog::Options small_log(const std::string& dir) {
  RecordLog::Options opt;
  opt.directory = dir;
  opt.max_segment_bytes = 2048;  // force frequent rolls
  opt.write_chunk_bytes = 64;
  return opt;
}

TEST(RecordLogTest, FreshLogThenCommitRoundTrip) {
  TempDir tmp{"log_fresh"};
  auto& real = io::StdioFileSystem::instance();
  RecordLog log{real, small_log(tmp.path)};

  const LogRecoveryReport fresh = log.open();
  EXPECT_FALSE(fresh.log_existed);
  EXPECT_EQ(fresh.last_committed_day, -1);
  EXPECT_EQ(fresh.committed_records, 0u);
  EXPECT_EQ(fresh.dropped_bytes, 0u);
  EXPECT_TRUE(fresh.app_state.empty());

  std::vector<HandoverRecord> written;
  for (int day = 0; day < 3; ++day) {
    for (std::uint32_t i = 0; i < 20; ++i) {
      written.push_back(make_record(day, i));
      log.append(written.back());
    }
    EXPECT_EQ(log.buffered_records(), 20u);
    const std::vector<std::uint8_t> state = {std::uint8_t(0xAB), std::uint8_t(day)};
    log.commit_day(day, state);
    EXPECT_EQ(log.buffered_records(), 0u);
    EXPECT_EQ(log.last_committed_day(), day);
  }
  EXPECT_EQ(log.committed_records(), written.size());

  // Small segments -> the stream must span multiple files.
  EXPECT_GT(real.list(tmp.path, "wal-").size(), 1u);

  expect_identical(RecordLog::read_all(real, tmp.path), written);

  // Re-open finds a clean log: nothing dropped, marker state preserved.
  RecordLog again{real, small_log(tmp.path)};
  const LogRecoveryReport rep = again.open();
  EXPECT_TRUE(rep.log_existed);
  EXPECT_EQ(rep.last_committed_day, 2);
  EXPECT_EQ(rep.committed_records, written.size());
  EXPECT_EQ(rep.dropped_bytes, 0u);
  EXPECT_EQ(rep.dropped_records, 0u);
  ASSERT_EQ(rep.app_state.size(), 2u);
  EXPECT_EQ(rep.app_state[0], 0xAB);
  EXPECT_EQ(rep.app_state[1], 2);
}

TEST(RecordLogTest, ReplayDeliversDayBoundaries) {
  TempDir tmp{"log_replay"};
  auto& real = io::StdioFileSystem::instance();
  RecordLog log{real, small_log(tmp.path)};
  log.open();
  for (int day = 0; day < 2; ++day) {
    for (std::uint32_t i = 0; i < 5; ++i) log.append(make_record(day, i));
    log.commit_day(day, {});
  }

  struct CountingSink final : telemetry::RecordSink {
    std::vector<HandoverRecord> records;
    std::vector<int> day_ends;
    void consume(const HandoverRecord& r) override { records.push_back(r); }
    void on_day_end(int day) override { day_ends.push_back(day); }
  } sink;
  EXPECT_EQ(RecordLog::replay(real, tmp.path, sink), 10u);
  EXPECT_EQ(sink.records.size(), 10u);
  ASSERT_EQ(sink.day_ends.size(), 2u);
  EXPECT_EQ(sink.day_ends[0], 0);
  EXPECT_EQ(sink.day_ends[1], 1);

  // Replaying through a ValidatingSink (an existing analysis entry point):
  // recovered records are clean and day watermarks advance.
  telemetry::SignalingDataset dataset;
  telemetry::ValidatingSink validating{dataset};
  EXPECT_EQ(RecordLog::replay(real, tmp.path, validating), 10u);
  EXPECT_EQ(validating.forwarded(), 10u);
  EXPECT_EQ(validating.quarantined(), 0u);
  EXPECT_EQ(validating.completed_day(), 1);
}

TEST(RecordLogTest, MisuseThrows) {
  TempDir tmp{"log_misuse"};
  auto& real = io::StdioFileSystem::instance();
  RecordLog log{real, small_log(tmp.path)};
  EXPECT_THROW(log.append(make_record(0, 0)), std::logic_error);
  EXPECT_THROW(log.commit_day(0, {}), std::logic_error);
  log.open();
  log.append(make_record(0, 0));
  log.commit_day(0, {});
  EXPECT_THROW(log.commit_day(0, {}), std::logic_error);  // not increasing
}

TEST(RecordLogTest, TornGarbageTailIsTruncatedAndReported) {
  TempDir tmp{"log_torn_garbage"};
  auto& real = io::StdioFileSystem::instance();
  std::vector<HandoverRecord> committed;
  {
    RecordLog log{real, small_log(tmp.path)};
    log.open();
    for (int day = 0; day < 2; ++day) {
      for (std::uint32_t i = 0; i < 4; ++i) {
        committed.push_back(make_record(day, i));
        log.append(committed.back());
      }
      log.commit_day(day, {});
    }
  }

  // A torn write: garbage lands after the last commit marker.
  const auto segments = real.list(tmp.path, "wal-");
  ASSERT_FALSE(segments.empty());
  const std::string tail = tmp.path + "/" + segments.back();
  const std::uint64_t clean_size = real.file_size(tail);
  {
    std::ofstream os{tail, std::ios::binary | std::ios::app};
    os.write("\x13\x37garbage-torn-tail", 19);
  }

  RecordLog log{real, small_log(tmp.path)};
  const LogRecoveryReport rep = log.open();
  EXPECT_EQ(rep.last_committed_day, 1);
  EXPECT_EQ(rep.committed_records, committed.size());
  EXPECT_EQ(rep.dropped_bytes, 19u);
  EXPECT_EQ(rep.dropped_records, 0u);
  EXPECT_EQ(real.file_size(tail), clean_size);  // truncated back exactly
  expect_identical(RecordLog::read_all(real, tmp.path), committed);

  // The re-armed log keeps committing where it left off.
  log.append(make_record(2, 0));
  log.commit_day(2, {});
  EXPECT_EQ(RecordLog::read_all(real, tmp.path).size(), committed.size() + 1);
}

TEST(RecordLogTest, UncommittedRecordFramesAreCountedAsDropped) {
  TempDir tmp{"log_torn_frames"};
  auto& real = io::StdioFileSystem::instance();
  std::vector<HandoverRecord> committed;
  {
    RecordLog log{real, small_log(tmp.path)};
    log.open();
    for (std::uint32_t i = 0; i < 3; ++i) {
      committed.push_back(make_record(0, i));
      log.append(committed.back());
    }
    log.commit_day(0, {});
  }

  // Hand-craft three VALID record frames after the marker — a commit that
  // died between writing its records and its day marker.
  const auto segments = real.list(tmp.path, "wal-");
  const std::string tail = tmp.path + "/" + segments.back();
  {
    std::vector<std::uint8_t> torn;
    for (std::uint32_t i = 0; i < 3; ++i) {
      std::vector<std::uint8_t> payload;
      RecordLog::encode_record(make_record(1, i), payload);
      const auto put32 = [&torn](std::uint32_t x) {
        torn.push_back(static_cast<std::uint8_t>(x));
        torn.push_back(static_cast<std::uint8_t>(x >> 8));
        torn.push_back(static_cast<std::uint8_t>(x >> 16));
        torn.push_back(static_cast<std::uint8_t>(x >> 24));
      };
      put32(static_cast<std::uint32_t>(payload.size()));
      std::uint32_t crc = util::crc32c("\x01", 1);  // kRecordFrame type byte
      crc = util::crc32c(payload.data(), payload.size(), crc);
      put32(util::mask_crc32c(crc));
      torn.push_back(RecordLog::kRecordFrame);
      torn.insert(torn.end(), payload.begin(), payload.end());
    }
    std::ofstream os{tail, std::ios::binary | std::ios::app};
    os.write(reinterpret_cast<const char*>(torn.data()),
             static_cast<std::streamsize>(torn.size()));
  }

  RecordLog log{real, small_log(tmp.path)};
  const LogRecoveryReport rep = log.open();
  EXPECT_EQ(rep.last_committed_day, 0);
  EXPECT_EQ(rep.committed_records, 3u);
  EXPECT_EQ(rep.dropped_records, 3u);  // complete but uncommitted frames
  EXPECT_EQ(rep.dropped_bytes,
            3u * (RecordLog::kFrameHeaderSize + RecordLog::kRecordEncodedSize));
  expect_identical(RecordLog::read_all(real, tmp.path), committed);
}

TEST(RecordLogTest, BitFlipInvalidatesEverythingFromTheFlippedFrame) {
  TempDir tmp{"log_bitflip"};
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = tmp.path;  // default (large) segments: one file
  {
    RecordLog log{real, opt};
    log.open();
    for (std::uint32_t i = 0; i < 8; ++i) log.append(make_record(0, i));
    log.commit_day(0, {});
    for (std::uint32_t i = 0; i < 8; ++i) log.append(make_record(1, i));
    log.commit_day(1, {});
  }
  const std::string seg0 = tmp.path + "/" + RecordLog::segment_name(0);
  auto bytes = slurp(seg0);

  // Flip one bit inside the first record frame of day 1 (just past day 0's
  // marker). Recovery must fall back to the day-0 marker.
  const std::size_t day0_bytes =
      RecordLog::kSegmentHeaderSize +
      8 * (RecordLog::kFrameHeaderSize + RecordLog::kRecordEncodedSize) +
      RecordLog::kFrameHeaderSize + 24;  // marker payload without app state
  ASSERT_LT(day0_bytes + 12, bytes.size());
  bytes[day0_bytes + 12] ^= 0x40;
  spit(seg0, bytes);

  RecordLog log{real, opt};
  const LogRecoveryReport rep = log.open();
  EXPECT_EQ(rep.last_committed_day, 0);
  EXPECT_EQ(rep.committed_records, 8u);
  EXPECT_GT(rep.dropped_bytes, 0u);
  EXPECT_EQ(RecordLog::read_all(real, tmp.path).size(), 8u);
}

TEST(RecordLogTest, FullyCorruptFirstSegmentRecoversToEmptyLog) {
  TempDir tmp{"log_corrupt_head"};
  auto& real = io::StdioFileSystem::instance();
  {
    RecordLog log{real, small_log(tmp.path)};
    log.open();
    log.append(make_record(0, 0));
    log.commit_day(0, {});
  }
  // Destroy the segment header itself: no committed prefix survives.
  const std::string seg0 = tmp.path + "/" + RecordLog::segment_name(0);
  auto bytes = slurp(seg0);
  bytes[0] ^= 0xFF;
  spit(seg0, bytes);

  RecordLog log{real, small_log(tmp.path)};
  const LogRecoveryReport rep = log.open();
  EXPECT_TRUE(rep.log_existed);
  EXPECT_EQ(rep.last_committed_day, -1);
  EXPECT_EQ(rep.committed_records, 0u);
  EXPECT_GT(rep.dropped_bytes, 0u);
  EXPECT_TRUE(RecordLog::read_all(real, tmp.path).empty());
  // And the log is usable again from scratch.
  log.append(make_record(0, 0));
  log.commit_day(0, {});
  EXPECT_EQ(RecordLog::read_all(real, tmp.path).size(), 1u);
}

// --- binary checkpoint codec -------------------------------------------------

DayCheckpoint sample_checkpoint() {
  DayCheckpoint cp;
  cp.next_day = 17;
  cp.seed = 0xDEADBEEFCAFEF00DULL;
  cp.records_emitted = 123'456'789;
  std::uint64_t n = 1;
  for (const auto region : geo::kAllRegions) {
    auto& mme = cp.core.mme(region);
    mme.handovers.procedures = n++;
    mme.handovers.successes = n++;
    mme.handovers.failures = n++;
    mme.path_switches.procedures = n++;
    mme.path_switches.successes = n++;
    mme.path_switches.failures = n++;
    auto& sgsn = cp.core.sgsn(region);
    sgsn.relocations.procedures = n++;
    sgsn.relocations.successes = n++;
    sgsn.relocations.failures = n++;
    auto& msc = cp.core.msc(region);
    msc.srvcc.procedures = n++;
    msc.srvcc.successes = n++;
    msc.srvcc.failures = n++;
    cp.core.sgw(region).bearer_modifications = n++;
  }
  return cp;
}

TEST(CheckpointCodec, RoundTrip) {
  const DayCheckpoint cp = sample_checkpoint();
  const auto bytes = core::encode_checkpoint(cp);
  const DayCheckpoint back = core::decode_checkpoint(bytes);
  EXPECT_EQ(back.next_day, cp.next_day);
  EXPECT_EQ(back.seed, cp.seed);
  EXPECT_EQ(back.records_emitted, cp.records_emitted);
  for (const auto region : geo::kAllRegions) {
    EXPECT_EQ(back.core.mme(region).handovers.procedures,
              cp.core.mme(region).handovers.procedures);
    EXPECT_EQ(back.core.mme(region).path_switches.failures,
              cp.core.mme(region).path_switches.failures);
    EXPECT_EQ(back.core.sgsn(region).relocations.successes,
              cp.core.sgsn(region).relocations.successes);
    EXPECT_EQ(back.core.msc(region).srvcc.procedures,
              cp.core.msc(region).srvcc.procedures);
    EXPECT_EQ(back.core.sgw(region).bearer_modifications,
              cp.core.sgw(region).bearer_modifications);
  }
}

TEST(CheckpointCodec, RejectsTruncationAndBitFlips) {
  const auto bytes = core::encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(core::decode_checkpoint(cut), std::runtime_error)
        << "truncated to " << len;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto flipped = bytes;
    flipped[i] ^= 0x01;
    EXPECT_THROW(core::decode_checkpoint(flipped), std::runtime_error)
        << "bit flip at " << i;
  }
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_THROW(core::decode_checkpoint(extended), std::runtime_error);
}

// --- checkpoint file: atomic write, hardened load ----------------------------

TEST(CheckpointFile, SaveIsAtomicAndLeavesNoTempResidue) {
  TempDir tmp{"ckpt_atomic"};
  fs::create_directories(tmp.path);
  const std::string path = tmp.path + "/study.checkpoint";

  StudyConfig cfg = chaos_config();
  Simulator sim{cfg};
  sim.run_day(0);
  sim.save_checkpoint(path);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Overwrite through the same path: still atomic, still loadable.
  sim.run_day(1);
  sim.save_checkpoint(path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  Simulator resumed{cfg};
  ASSERT_TRUE(resumed.load_checkpoint(path));
  EXPECT_EQ(resumed.next_day(), 2);
  EXPECT_EQ(resumed.records_emitted(), sim.records_emitted());
}

TEST(CheckpointFile, LoadRejectsTruncationBitFlipsAndTrailingGarbage) {
  TempDir tmp{"ckpt_hardened"};
  fs::create_directories(tmp.path);
  const std::string path = tmp.path + "/study.checkpoint";

  StudyConfig cfg = chaos_config();
  Simulator sim{cfg};
  sim.run_day(0);
  sim.save_checkpoint(path);
  const auto good = slurp(path);
  ASSERT_GT(good.size(), 16u);

  // One long-lived victim: every failed load must leave it untouched (the
  // no-partial-restore guarantee), which the next iteration then depends on.
  Simulator victim{cfg};
  const auto expect_rejected = [&](const std::vector<std::uint8_t>& bad,
                                   const std::string& what) {
    spit(path, bad);
    EXPECT_THROW(victim.load_checkpoint(path), std::runtime_error) << what;
    EXPECT_EQ(victim.next_day(), 0) << what;
    EXPECT_EQ(victim.records_emitted(), 0u) << what;
  };

  // Every proper prefix must be rejected (torn write at any byte offset).
  for (std::size_t len = 0; len < good.size(); len += 7) {
    expect_rejected({good.begin(), good.begin() + len},
                    "truncated to " + std::to_string(len));
  }
  // Any single bit flip must be rejected (CRC trailer).
  util::Rng rng{2024};
  for (int i = 0; i < 64; ++i) {
    auto flipped = good;
    const std::size_t pos = rng.below(good.size());
    flipped[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    expect_rejected(flipped, "bit flip at " + std::to_string(pos));
  }
  // Bytes appended after a valid checkpoint must be rejected too.
  auto extended = good;
  const std::string junk = "trailing junk";
  extended.insert(extended.end(), junk.begin(), junk.end());
  expect_rejected(extended, "trailing garbage");

  // The pristine file still loads (the reject sweep never corrupted state).
  spit(path, good);
  ASSERT_TRUE(victim.load_checkpoint(path));
  EXPECT_EQ(victim.next_day(), 1);
}

// --- validating sink ---------------------------------------------------------

TEST(ValidatingSinkTest, CountsEveryDefectClass) {
  telemetry::SignalingDataset inner;
  telemetry::ValidationLimits limits;
  limits.sector_count = 100;
  telemetry::ValidatingSink sink{inner, limits};

  sink.consume(make_record(0, 0));  // clean
  HandoverRecord r = make_record(0, 1);
  r.source_sector = topology::kInvalidSector;
  sink.consume(r);  // kBadSectorId (sentinel)
  r = make_record(0, 2);
  r.target_sector = 100;  // == sector_count -> out of range
  sink.consume(r);        // kBadSectorId (range)
  r = make_record(0, 3);
  r.target_sector = r.source_sector;
  sink.consume(r);  // kSelfHandover
  r = make_record(0, 4);
  r.duration_ms = -1.0f;
  sink.consume(r);  // kBadDuration
  r = make_record(0, 5);
  r.duration_ms = limits.max_duration_ms * 2;
  sink.consume(r);  // kBadDuration
  r = make_record(0, 6);
  r.timestamp = -5;
  sink.consume(r);  // kBadTimestamp
  r = make_record(0, 7);
  r.success = true;
  r.cause = 3;
  sink.consume(r);  // kCauseMismatch
  r = make_record(0, 8);
  r.success = false;
  r.cause = corenet::kCauseNone;
  sink.consume(r);  // kCauseMismatch

  sink.on_day_end(0);
  sink.consume(make_record(0, 9));  // kTimeRegression: day 0 already closed
  sink.consume(make_record(1, 0));  // clean, next day

  EXPECT_EQ(sink.forwarded(), 2u);
  EXPECT_EQ(sink.quarantined(), 9u);
  EXPECT_EQ(sink.count(telemetry::RecordDefect::kBadSectorId), 2u);
  EXPECT_EQ(sink.count(telemetry::RecordDefect::kSelfHandover), 1u);
  EXPECT_EQ(sink.count(telemetry::RecordDefect::kBadDuration), 2u);
  EXPECT_EQ(sink.count(telemetry::RecordDefect::kBadTimestamp), 1u);
  EXPECT_EQ(sink.count(telemetry::RecordDefect::kTimeRegression), 1u);
  EXPECT_EQ(sink.count(telemetry::RecordDefect::kCauseMismatch), 2u);
  EXPECT_EQ(sink.quarantine_sample().size(), 9u);
  EXPECT_EQ(inner.size(), 2u);
}

TEST(ValidatingSinkTest, WatermarkSurvivesResume) {
  // First process: closes day 1, then dies.
  telemetry::SignalingDataset inner1;
  telemetry::ValidatingSink before{inner1};
  before.consume(make_record(0, 0));
  before.on_day_end(0);
  before.consume(make_record(1, 0));
  before.on_day_end(1);
  EXPECT_EQ(before.completed_day(), 1);

  // Resumed process restores the watermark from the recovered checkpoint:
  // records regressing into closed days stay quarantined across the crash.
  telemetry::SignalingDataset inner2;
  telemetry::ValidatingSink after{inner2};
  after.restore_watermark(before.completed_day());
  EXPECT_EQ(after.completed_day(), 1);
  after.consume(make_record(0, 1));  // regressed into closed day 0
  after.consume(make_record(1, 1));  // regressed into closed day 1
  after.consume(make_record(2, 0));  // current day: clean
  EXPECT_EQ(after.count(telemetry::RecordDefect::kTimeRegression), 2u);
  EXPECT_EQ(after.forwarded(), 1u);

  // The watermark never moves backwards.
  after.restore_watermark(0);
  EXPECT_EQ(after.completed_day(), 1);
  after.restore_watermark(-1);
  EXPECT_EQ(after.completed_day(), 1);
}

TEST(ValidatingSinkTest, StacksOnTopOfDurableSink) {
  TempDir tmp{"stacked"};
  auto& real = io::StdioFileSystem::instance();
  RecordLog log{real, small_log(tmp.path)};
  log.open();
  DurableRecordSink durable{log};
  telemetry::ValidatingSink validating{durable};

  validating.consume(make_record(0, 0));
  HandoverRecord bad = make_record(0, 1);
  bad.target_sector = bad.source_sector;
  validating.consume(bad);  // quarantined: must never reach the log
  validating.consume(make_record(0, 2));
  validating.on_day_end(0);  // forwarded -> durable commit

  EXPECT_EQ(validating.quarantined(), 1u);
  EXPECT_EQ(log.last_committed_day(), 0);
  const auto recovered = RecordLog::read_all(real, tmp.path);
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_NE(recovered[0].source_sector, recovered[0].target_sector);
  EXPECT_NE(recovered[1].source_sector, recovered[1].target_sector);
}

// --- simulator + durable log -------------------------------------------------

TEST(SimulatorDurability, DurableRunMatchesPlainRunAndReplays) {
  const StudyConfig cfg = chaos_config();

  telemetry::SignalingDataset plain;
  Simulator reference{cfg};
  reference.add_sink(&plain);
  reference.run();

  TempDir tmp{"sim_durable"};
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = tmp.path;
  RecordLog log{real, opt};
  DurableRecordSink sink{log};
  Simulator sim{cfg};
  sim.attach_durable_log(&sink);
  sim.run();

  EXPECT_EQ(log.last_committed_day(), cfg.days - 1);
  EXPECT_EQ(log.committed_records(), plain.size());
  expect_identical(RecordLog::read_all(real, tmp.path),
                   {plain.records().begin(), plain.records().end()});

  // The last marker's embedded checkpoint is the end-of-study state.
  RecordLog reader{real, opt};
  const LogRecoveryReport rep = reader.open();
  const DayCheckpoint cp = core::decode_checkpoint(rep.app_state);
  EXPECT_EQ(cp.next_day, cfg.days);
  EXPECT_EQ(cp.seed, cfg.seed);
  EXPECT_EQ(cp.records_emitted, plain.size());

  // A fresh simulator attached to the finished log has nothing left to do.
  RecordLog done_log{real, opt};
  DurableRecordSink done_sink{done_log};
  Simulator done{cfg};
  done.attach_durable_log(&done_sink);
  done.run();
  EXPECT_EQ(done.next_day(), cfg.days);
  EXPECT_EQ(done_log.committed_records(), plain.size());
}

TEST(SimulatorDurability, ResumeFromLogRejectsMismatchedSeed) {
  TempDir tmp{"sim_seed_mismatch"};
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.directory = tmp.path;

  StudyConfig cfg = chaos_config();
  {
    RecordLog log{real, opt};
    DurableRecordSink sink{log};
    Simulator sim{cfg};
    sim.attach_durable_log(&sink);
    sim.run();
  }
  StudyConfig other = cfg;
  other.seed ^= 0x5555;
  RecordLog log{real, opt};
  DurableRecordSink sink{log};
  Simulator sim{other};
  sim.attach_durable_log(&sink);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

/// Sink that dies after consuming `budget` records (or, with budget < 0, in
/// on_day_end) — the "analysis plugin with a bug" failure mode.
class ExplodingSink final : public telemetry::RecordSink {
 public:
  explicit ExplodingSink(std::int64_t budget) : budget_(budget) {}

  void consume(const HandoverRecord&) override {
    if (budget_ >= 0 && consumed_++ >= budget_) {
      throw std::runtime_error{"sink exploded mid-day"};
    }
  }
  void on_day_end(int) override {
    if (budget_ < 0) throw std::runtime_error{"sink exploded at day end"};
  }

 private:
  std::int64_t budget_ = 0;
  std::int64_t consumed_ = 0;
};

TEST(SimulatorDurability, SinkThrowMidDayRollsBackAndReplaysExactlyOnce) {
  const StudyConfig cfg = chaos_config();

  telemetry::SignalingDataset clean;
  Simulator reference{cfg};
  reference.add_sink(&clean);
  reference.run();

  // Mid-day sink failure WITHOUT a durable log: the day must roll back
  // wholesale — cursor, record counter, core counters — so a retry replays
  // it exactly once instead of double-counting the partial emission.
  Simulator sim{cfg};
  ExplodingSink bomb{25};
  sim.add_sink(&bomb);
  EXPECT_THROW(sim.run_day(0), std::runtime_error);
  EXPECT_EQ(sim.next_day(), 0);
  EXPECT_EQ(sim.records_emitted(), 0u);
  EXPECT_EQ(sim.core_network().total_handovers(), 0u);
  sim.remove_sink(&bomb);

  telemetry::SignalingDataset replay;
  sim.add_sink(&replay);
  sim.run();
  EXPECT_EQ(sim.next_day(), cfg.days);
  expect_identical({replay.records().begin(), replay.records().end()},
                   {clean.records().begin(), clean.records().end()});
}

TEST(SimulatorDurability, SinkThrowMidDayNeverCommitsAPartialDayToTheLog) {
  const StudyConfig cfg = chaos_config();
  auto& real = io::StdioFileSystem::instance();

  TempDir ref_dir{"sink_throw_ref"};
  RecordLog::Options ref_opt;
  ref_opt.directory = ref_dir.path;
  {
    RecordLog log{real, ref_opt};
    DurableRecordSink sink{log};
    Simulator reference{cfg};
    reference.attach_durable_log(&sink);
    reference.run();
  }
  const std::string ref_bytes = log_bytes(ref_dir.path);

  TempDir dir{"sink_throw"};
  RecordLog::Options opt;
  opt.directory = dir.path;

  // Phase 1: a buggy secondary sink kills day 0 mid-emission. The durable
  // buffer must be discarded with the rest of the day — nothing reached disk.
  {
    RecordLog log{real, opt};
    log.open();
    DurableRecordSink sink{log};
    Simulator sim{cfg};
    sim.attach_durable_log(&sink);
    ExplodingSink bomb{25};
    sim.add_sink(&bomb);
    EXPECT_THROW(sim.run_day(0), std::runtime_error);
    EXPECT_EQ(log.last_committed_day(), -1);
    EXPECT_EQ(sim.next_day(), 0);
    EXPECT_EQ(sim.records_emitted(), 0u);
  }
  EXPECT_TRUE(real.list(dir.path, "wal-").empty() ||
              RecordLog::read_all(real, dir.path).empty());

  // Phase 2: resume from the log; the interrupted day replays exactly once
  // and the final WAL is byte-identical to the never-interrupted run.
  {
    RecordLog log{real, opt};
    DurableRecordSink sink{log};
    Simulator sim{cfg};
    sim.attach_durable_log(&sink);
    sim.run();
    EXPECT_EQ(log.last_committed_day(), cfg.days - 1);
  }
  EXPECT_EQ(log_bytes(dir.path), ref_bytes);
}

TEST(SimulatorDurability, SinkThrowAfterDurableCommitDoesNotRollBack) {
  // The durable sink commits in registration order; a later sink throwing in
  // on_day_end finds the day already on disk — rolling back state would then
  // disagree with the log, so run_day must keep the completed day.
  const StudyConfig cfg = chaos_config();
  auto& real = io::StdioFileSystem::instance();

  TempDir ref_dir{"day_end_ref"};
  RecordLog::Options ref_opt;
  ref_opt.directory = ref_dir.path;
  {
    RecordLog log{real, ref_opt};
    DurableRecordSink sink{log};
    Simulator reference{cfg};
    reference.attach_durable_log(&sink);
    reference.run();
  }

  TempDir dir{"day_end"};
  RecordLog::Options opt;
  opt.directory = dir.path;
  {
    RecordLog log{real, opt};
    log.open();
    DurableRecordSink sink{log};
    Simulator sim{cfg};
    sim.attach_durable_log(&sink);  // registered first: commits first
    ExplodingSink bomb{-1};         // throws in on_day_end, after the commit
    sim.add_sink(&bomb);
    EXPECT_THROW(sim.run_day(0), std::runtime_error);
    EXPECT_EQ(log.last_committed_day(), 0);
    EXPECT_EQ(sim.next_day(), 1);  // the day is durable — no rollback
    sim.remove_sink(&bomb);
    sim.run();
  }
  EXPECT_EQ(log_bytes(dir.path), log_bytes(ref_dir.path));
}

// --- the chaos harness -------------------------------------------------------

int chaos_schedule_count() {
  if (const char* env = std::getenv("TL_CHAOS_SCHEDULES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 100;
}

/// One complete study under a fault plan, resuming until it finishes.
/// Returns the number of injected crashes survived.
struct ChaosOutcome {
  int crashes = 0;
  int io_aborts = 0;
  int attempts = 0;
};

TEST(ChaosHarness, KillRecoverSchedulesYieldByteIdenticalStreams) {
  const StudyConfig cfg = chaos_config();
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.max_segment_bytes = 24 * 1024;  // several rolls per study
  opt.write_chunk_bytes = 1024;

  // The world build dominates cost; one simulator serves every schedule
  // (restore() resets all mutable state, exactly like a fresh process).
  Simulator sim{cfg};
  DayCheckpoint day0;
  day0.seed = cfg.seed;

  // Reference: an uninterrupted run through a fault-free decorated
  // filesystem. Its op count is the horizon crashes are drawn from; its
  // bytes and records are the oracle every chaotic schedule must reproduce.
  TempDir ref_dir{"chaos_ref"};
  std::uint64_t horizon = 0;
  {
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    RecordLog::Options ref_opt = opt;
    ref_opt.directory = ref_dir.path;
    RecordLog log{ffs, ref_opt};
    DurableRecordSink sink{log};
    log.open();
    sim.restore(day0);
    sim.attach_durable_log(&sink);
    sim.run();
    sim.remove_sink(&sink);
    horizon = ffs.ops();
  }
  const std::string ref_bytes = log_bytes(ref_dir.path);
  const std::vector<HandoverRecord> ref_records =
      RecordLog::read_all(real, ref_dir.path);
  ASSERT_GT(horizon, 20u);
  ASSERT_FALSE(ref_records.empty());
  ASSERT_GT(real.list(ref_dir.path, "wal-").size(), 1u);

  const int schedules = chaos_schedule_count();
  int total_crashes = 0;
  int total_io_aborts = 0;
  int multi_crash_schedules = 0;

  for (int schedule = 0; schedule < schedules; ++schedule) {
    TempDir dir{"chaos_" + std::to_string(schedule)};
    util::Rng meta = util::Rng::derive(0xC4A05ULL, static_cast<std::uint64_t>(schedule));
    ChaosOutcome outcome;
    bool complete = false;

    while (!complete) {
      ASSERT_LT(outcome.attempts, 64) << "schedule " << schedule << " livelocked";
      ++outcome.attempts;
      // Most attempts die at a seeded point (crashes can hit recovery I/O of
      // the NEXT attempt too, not just steady-state commits). Every third
      // schedule also suffers transient faults. A clean-retry chance bounds
      // the loop; the first attempt always carries the planned crash.
      io::IoFaultPlan plan;
      const bool clean = outcome.attempts > 1 && meta.chance(0.4);
      if (!clean) {
        const double transient_rate = (schedule % 3 == 0) ? 0.01 : 0.0;
        plan = io::IoFaultPlan::chaos(meta(), horizon + 8, transient_rate);
      }
      io::FaultyFileSystem ffs{real, plan, meta()};
      RecordLog::Options run_opt = opt;
      run_opt.directory = dir.path;
      RecordLog log{ffs, run_opt};
      DurableRecordSink sink{log};
      try {
        log.open();  // recovery itself runs under fault injection
        sim.restore(day0);
        sim.attach_durable_log(&sink);
        sim.run();
        complete = true;
      } catch (const io::SimulatedCrash&) {
        ++outcome.crashes;
      } catch (const io::IoError&) {
        ++outcome.io_aborts;  // transient EIO/fsync failure aborted a commit
      }
      sim.remove_sink(&sink);
    }

    total_crashes += outcome.crashes;
    total_io_aborts += outcome.io_aborts;
    if (outcome.crashes > 1) ++multi_crash_schedules;

    // Crash consistency: the recovered-and-resumed log is byte-identical to
    // the uninterrupted run — zero lost records, zero duplicates, identical
    // segment boundaries.
    ASSERT_EQ(log_bytes(dir.path), ref_bytes) << "schedule " << schedule;
    const auto records = RecordLog::read_all(real, dir.path);
    ASSERT_EQ(records.size(), ref_records.size()) << "schedule " << schedule;
    expect_identical(records, ref_records);
  }

  // The harness must actually have exercised crash paths, not just clean runs.
  EXPECT_GT(total_crashes, schedules / 2);
  EXPECT_GT(multi_crash_schedules, 0);
  RecordProperty("schedules", schedules);
  RecordProperty("crashes", total_crashes);
  RecordProperty("io_aborts", total_io_aborts);
}

TEST(ChaosHarness, ParallelRunsSurviveKillAndResumeByteIdentically) {
  // The strongest durability claim the parallel engine makes: a sharded run
  // killed mid-WAL and resumed (possibly at a different thread count) still
  // converges to the exact bytes of an uninterrupted SERIAL run — commit
  // markers, embedded checkpoints, and segment boundaries included. All log
  // I/O happens on the merge (caller) thread, so the WAL never observes
  // shard scheduling; this test is the end-to-end proof.
  const StudyConfig cfg = chaos_config();
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.max_segment_bytes = 24 * 1024;
  opt.write_chunk_bytes = 1024;

  Simulator sim{cfg};
  DayCheckpoint day0;
  day0.seed = cfg.seed;

  // Serial, fault-free reference — the oracle.
  TempDir ref_dir{"pchaos_ref"};
  std::uint64_t horizon = 0;
  {
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    RecordLog::Options ref_opt = opt;
    ref_opt.directory = ref_dir.path;
    RecordLog log{ffs, ref_opt};
    DurableRecordSink sink{log};
    log.open();
    sim.set_threads(1);
    sim.restore(day0);
    sim.attach_durable_log(&sink);
    sim.run();
    sim.remove_sink(&sink);
    horizon = ffs.ops();
  }
  const std::string ref_bytes = log_bytes(ref_dir.path);
  ASSERT_GT(horizon, 20u);

  // Fewer schedules than the serial harness: each parallel attempt costs the
  // same UE-day work plus pool scheduling, and the serial harness already
  // covers the fault-plan space densely. This pass targets the interaction.
  const int schedules = std::max(8, chaos_schedule_count() / 8);
  int total_crashes = 0;

  for (int schedule = 0; schedule < schedules; ++schedule) {
    TempDir dir{"pchaos_" + std::to_string(schedule)};
    util::Rng meta =
        util::Rng::derive(0x9A7A11E1ULL, static_cast<std::uint64_t>(schedule));
    int attempts = 0;
    bool complete = false;

    while (!complete) {
      ASSERT_LT(attempts, 64) << "schedule " << schedule << " livelocked";
      ++attempts;
      io::IoFaultPlan plan;
      const bool clean = attempts > 1 && meta.chance(0.4);
      if (!clean) {
        const double transient_rate = (schedule % 3 == 0) ? 0.01 : 0.0;
        plan = io::IoFaultPlan::chaos(meta(), horizon + 8, transient_rate);
      }
      io::FaultyFileSystem ffs{real, plan, meta()};
      RecordLog::Options run_opt = opt;
      run_opt.directory = dir.path;
      RecordLog log{ffs, run_opt};
      DurableRecordSink sink{log};
      // Resume at a different worker count than the previous attempt died
      // at — the WAL must not care.
      sim.set_threads(2 + static_cast<unsigned>(meta.below(3)));  // 2..4
      try {
        log.open();
        sim.restore(day0);
        sim.attach_durable_log(&sink);
        sim.run();
        complete = true;
      } catch (const io::SimulatedCrash&) {
        ++total_crashes;
      } catch (const io::IoError&) {
        // transient fault aborted a commit; next attempt recovers
      }
      sim.remove_sink(&sink);
    }

    ASSERT_EQ(log_bytes(dir.path), ref_bytes) << "schedule " << schedule;
  }
  sim.set_threads(1);

  EXPECT_GT(total_crashes, schedules / 2);
  RecordProperty("schedules", schedules);
  RecordProperty("crashes", total_crashes);
}

}  // namespace
}  // namespace tl
