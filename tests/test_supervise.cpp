// Supervised-execution tests: the tl::Status taxonomy and exception
// classification, cooperative cancellation tokens, the seeded task/poison
// fault injector, StudySupervisor's reaction ladder (retry with backoff,
// watchdog deadlines, bisection + quarantine) over synthetic item sets, and
// the headline property — a supervised simulator run under a seeded fault
// storm quarantines exactly the poison UEs and emits a record stream (and
// durable WAL bytes) identical to an uninjected serial run over the
// surviving population, at every thread count and across kill/resume.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint_codec.hpp"
#include "core/simulator.hpp"
#include "io/faulty_file.hpp"
#include "io/file.hpp"
#include "supervise/cancellation.hpp"
#include "supervise/retry.hpp"
#include "supervise/status.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/task_fault_injector.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/signaling_dataset.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace tl {
namespace {

using core::DayCheckpoint;
using core::Simulator;
using core::StudyConfig;
using supervise::CancelledError;
using supervise::CancelToken;
using supervise::classify_exception;
using supervise::DayReport;
using supervise::PermanentError;
using supervise::StudySupervisor;
using supervise::SupervisionError;
using supervise::SupervisorOptions;
using supervise::TaskFault;
using supervise::TaskFaultConfig;
using supervise::TaskFaultInjector;
using supervise::TransientError;
using telemetry::HandoverRecord;
using telemetry::RecordLog;

namespace fs = std::filesystem;

// --- helpers -----------------------------------------------------------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_supervise_" + name) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

/// Committed WAL bytes plus segment boundaries, same oracle as the
/// durability chaos harness uses.
std::string log_bytes(const std::string& dir) {
  auto& real = io::StdioFileSystem::instance();
  std::vector<std::string> names = real.list(dir, "wal-");
  std::sort(names.begin(), names.end());
  std::string all;
  for (const auto& name : names) {
    std::ifstream is{dir + "/" + name, std::ios::binary};
    std::ostringstream os;
    os << is.rdbuf();
    all += "[" + name + "]";
    all += os.str();
  }
  return all;
}

std::exception_ptr capture(const std::function<void()>& thrower) {
  try {
    thrower();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

// --- status taxonomy ---------------------------------------------------------

TEST(Status, CodesRenderAndClassifyRetryability) {
  EXPECT_EQ(to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(to_string(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_EQ(to_string(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(to_string(StatusCode::kInternal), "INTERNAL");

  // The retry policy in one place: transient-looking codes retry, failures
  // pinned to the input or the environment do not.
  for (const StatusCode code :
       {StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable, StatusCode::kUnknown}) {
    EXPECT_TRUE(is_retryable(code)) << to_string(code);
  }
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kResourceExhausted,
        StatusCode::kInvalidArgument, StatusCode::kInternal,
        StatusCode::kAborted}) {
    EXPECT_FALSE(is_retryable(code)) << to_string(code);
  }
}

TEST(Status, DefaultIsOkAndRenderingIncludesMessage) {
  const Status ok;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);

  const Status st{StatusCode::kDeadlineExceeded, "shard 3 exceeded 500 ms"};
  EXPECT_FALSE(st.is_ok());
  EXPECT_TRUE(st.retryable());
  EXPECT_NE(st.to_string().find("DEADLINE_EXCEEDED"), std::string::npos);
  EXPECT_NE(st.to_string().find("shard 3 exceeded 500 ms"), std::string::npos);
}

TEST(Status, ClassifyMapsTheExceptionTaxonomy) {
  const auto classify = [](const std::function<void()>& thrower) {
    return classify_exception(capture(thrower));
  };
  EXPECT_EQ(classify([] { throw CancelledError{StatusCode::kCancelled}; }).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(
      classify([] { throw CancelledError{StatusCode::kDeadlineExceeded}; }).code(),
      StatusCode::kDeadlineExceeded);
  EXPECT_EQ(classify([] { throw io::IoError{"EIO"}; }).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(classify([] { throw TransientError{"flap"}; }).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(classify([] { throw PermanentError{"poison"}; }).code(),
            StatusCode::kInternal);
  EXPECT_EQ(classify([] { throw std::bad_alloc{}; }).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(classify([] { throw std::invalid_argument{"bad"}; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(classify([] { throw std::logic_error{"bug"}; }).code(),
            StatusCode::kInternal);
  EXPECT_EQ(classify([] { throw std::runtime_error{"???"}; }).code(),
            StatusCode::kUnknown);
  // Context survives the mapping.
  EXPECT_NE(classify([] { throw io::IoError{"fsync wal-0001"}; })
                .message()
                .find("fsync wal-0001"),
            std::string::npos);
}

TEST(Status, ClassifyRefusesToAbsorbSimulatedCrash) {
  // A simulated process death must unwind, never become a retryable Status.
  EXPECT_THROW(classify_exception(capture([] { throw io::SimulatedCrash{}; })),
               io::SimulatedCrash);
}

// --- cancellation ------------------------------------------------------------

TEST(CancelTokenTest, FirstCancelWinsAndResetRearms) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.throw_if_cancelled());

  token.cancel(StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);

  // A later, different cancel reason does not overwrite the recorded cause.
  token.cancel(StatusCode::kCancelled);
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);

  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.throw_if_cancelled());
}

TEST(CancelTokenTest, ThrowIfCancelledCarriesTheReason) {
  CancelToken token;
  token.cancel(StatusCode::kDeadlineExceeded);
  try {
    token.throw_if_cancelled();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& error) {
    EXPECT_EQ(error.code(), StatusCode::kDeadlineExceeded);
  }
}

// --- task fault injector -----------------------------------------------------

TEST(TaskFaultInjectorTest, DecisionsArePureSeededAndAttemptCapped) {
  TaskFaultConfig cfg;
  cfg.seed = 0xFA11;
  cfg.throw_rate = 0.05;
  cfg.io_error_rate = 0.05;
  cfg.slow_rate = 0.05;
  cfg.max_faulty_attempts = 2;
  const TaskFaultInjector inj{cfg};

  int faulty = 0;
  const int keys = 2'000;
  for (int k = 0; k < keys; ++k) {
    const int day = k % 7;
    const auto shard = static_cast<std::size_t>(k / 7);
    const TaskFault fault = inj.decide_task(day, shard, 1);
    // Purity: the decision is a function of (seed, day, shard, attempt).
    ASSERT_EQ(inj.decide_task(day, shard, 1), fault);
    if (fault != TaskFault::kNone) ++faulty;
    // Convergence guarantee: past the cap, a (day, shard) never faults again.
    EXPECT_EQ(inj.decide_task(day, shard, cfg.max_faulty_attempts + 1),
              TaskFault::kNone);
  }
  // 15% nominal fault rate over 2000 keys: a loose statistical band.
  EXPECT_GT(faulty, keys / 10);
  EXPECT_LT(faulty, keys / 4);
}

TEST(TaskFaultInjectorTest, PoisonSetIsUeKeyedAndIncludesExplicitIds) {
  TaskFaultConfig cfg;
  cfg.seed = 0xFA12;
  cfg.poison_ue_fraction = 0.01;
  cfg.poison_ues = {42, 7, 42};  // unsorted, duplicated — injector canonicalizes
  const TaskFaultInjector inj{cfg};

  const auto set = inj.poison_set(5'000);
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  EXPECT_TRUE(std::binary_search(set.begin(), set.end(), 7u));
  EXPECT_TRUE(std::binary_search(set.begin(), set.end(), 42u));
  // ~1% sampled on top of the two explicit ids.
  EXPECT_GT(set.size(), 20u);
  EXPECT_LT(set.size(), 110u);
  for (const std::uint32_t ue : set) EXPECT_TRUE(inj.is_poison(ue));

  // UE-keyed means the set is independent of days, shards, and thread
  // counts by construction: same seed, same universe, same set.
  const TaskFaultInjector again{cfg};
  EXPECT_EQ(again.poison_set(5'000), set);
}

TEST(TaskFaultInjectorTest, OnUeThrowsDeterministicallyForPoison) {
  TaskFaultConfig cfg;
  cfg.seed = 0xFA13;
  cfg.poison_ues = {9};
  TaskFaultInjector inj{cfg};

  EXPECT_NO_THROW(inj.on_ue(8, nullptr));
  EXPECT_THROW(inj.on_ue(9, nullptr), PermanentError);

  // The hang subset stalls until the cap, then fails the same way: every
  // attempt at a poison UE fails no matter who is watching.
  cfg.poison_hang_fraction = 1.0;
  cfg.hang_cap_ms = 1;
  const TaskFaultInjector hanging{cfg};
  EXPECT_THROW(hanging.on_ue(9, nullptr), PermanentError);
}

TEST(TaskFaultInjectorTest, OnTaskBeginThrowsTheDecidedExceptionType) {
  TaskFaultConfig cfg;
  cfg.seed = 0xFA14;
  cfg.throw_rate = 0.25;
  cfg.io_error_rate = 0.25;
  const TaskFaultInjector inj{cfg};

  bool saw_throw = false;
  bool saw_io = false;
  for (std::size_t shard = 0; shard < 200 && !(saw_throw && saw_io); ++shard) {
    switch (inj.decide_task(0, shard, 1)) {
      case TaskFault::kThrow:
        saw_throw = true;
        EXPECT_THROW(inj.on_task_begin(0, shard, 1, nullptr), std::runtime_error);
        break;
      case TaskFault::kIoError:
        saw_io = true;
        EXPECT_THROW(inj.on_task_begin(0, shard, 1, nullptr), io::IoError);
        break;
      default:
        EXPECT_NO_THROW(inj.on_task_begin(0, shard, 1, nullptr));
        break;
    }
  }
  EXPECT_TRUE(saw_throw);
  EXPECT_TRUE(saw_io);
}

// --- supervisor over synthetic items ----------------------------------------

/// Drives one supervised day over items 0..items-1. Simulation stages item
/// ids into per-shard vectors; merge concatenates them. `poison` items
/// always throw PermanentError (in probes too — per-item determinism is the
/// bisection contract). `shard_fault` runs only in shard attempts, like the
/// injector's task channel.
DayReport run_synthetic_day(
    StudySupervisor& sup, int day, std::size_t items,
    std::span<const std::uint32_t> pre_quarantined,
    std::vector<std::uint32_t> poison, std::vector<std::uint32_t>& merged,
    const std::function<void(std::size_t shard, const CancelToken*)>& shard_fault =
        {}) {
  std::sort(poison.begin(), poison.end());
  std::vector<std::vector<std::uint32_t>> staged(sup.shard_count(items));
  const auto emit = [&](std::vector<std::uint32_t>& out, std::size_t first,
                        std::size_t last, const CancelToken* cancel,
                        std::span<const std::uint32_t> skip) {
    out.clear();
    for (std::size_t i = first; i < last; ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      if (std::binary_search(skip.begin(), skip.end(), id)) continue;
      if (cancel != nullptr) cancel->throw_if_cancelled();
      if (std::binary_search(poison.begin(), poison.end(), id)) {
        throw PermanentError{"poison item " + std::to_string(id)};
      }
      out.push_back(id);
    }
  };
  return sup.run_day(
      day, items, pre_quarantined,
      [&](std::size_t shard, std::size_t first, std::size_t last,
          const CancelToken* cancel, std::span<const std::uint32_t> skip) {
        if (shard_fault) shard_fault(shard, cancel);
        emit(staged[shard], first, last, cancel, skip);
      },
      [&](std::size_t first, std::size_t last, const CancelToken* cancel,
          std::span<const std::uint32_t> skip) {
        std::vector<std::uint32_t> scratch;
        emit(scratch, first, last, cancel, skip);
      },
      [&](std::size_t shard) {
        merged.insert(merged.end(), staged[shard].begin(), staged[shard].end());
      });
}

std::vector<std::uint32_t> iota_minus(std::size_t items,
                                      const std::vector<std::uint32_t>& removed) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < items; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    if (!std::binary_search(removed.begin(), removed.end(), id)) out.push_back(id);
  }
  return out;
}

SupervisorOptions fast_options(unsigned threads = 2) {
  SupervisorOptions opt;
  opt.threads = threads;
  opt.shards_per_thread = 2;
  opt.max_retries = 4;
  opt.backoff_initial_ms = 1;
  opt.backoff_cap_ms = 4;
  return opt;
}

TEST(StudySupervisorTest, CleanDayMergesAllItemsInOrder) {
  StudySupervisor sup{fast_options()};
  std::vector<std::uint32_t> merged;
  const DayReport report = run_synthetic_day(sup, 0, 96, {}, {}, merged);

  EXPECT_EQ(merged, iota_minus(96, {}));
  EXPECT_EQ(report.day, 0);
  EXPECT_EQ(report.shards, sup.shard_count(96));
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_FALSE(report.degraded());
  ASSERT_EQ(report.outcomes.size(), report.shards);
  for (const auto& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.status.is_ok());
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_TRUE(outcome.trail.empty());
  }
}

TEST(StudySupervisorTest, PreQuarantinedItemsAreSkipped) {
  StudySupervisor sup{fast_options()};
  std::vector<std::uint32_t> merged;
  const std::vector<std::uint32_t> skip = {3, 40, 95};
  const DayReport report = run_synthetic_day(sup, 0, 96, skip, {}, merged);
  EXPECT_EQ(merged, iota_minus(96, skip));
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(StudySupervisorTest, TransientFailureIsRetriedAndCounted) {
  StudySupervisor sup{fast_options()};
  std::vector<std::uint32_t> merged;
  std::atomic<int> shard1_attempts{0};
  const DayReport report = run_synthetic_day(
      sup, 0, 96, {}, {}, merged, [&](std::size_t shard, const CancelToken*) {
        if (shard == 1 && shard1_attempts.fetch_add(1) == 0) {
          throw TransientError{"first attempt flap"};
        }
      });

  EXPECT_EQ(merged, iota_minus(96, {}));
  EXPECT_EQ(report.retries, 1u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_TRUE(report.degraded());
  const auto& outcome = report.outcomes[1];
  EXPECT_EQ(outcome.attempts, 2);
  ASSERT_EQ(outcome.trail.size(), 1u);
  EXPECT_EQ(outcome.trail[0].code, StatusCode::kUnavailable);
  EXPECT_EQ(sup.summary().transient_failures, 1u);
}

TEST(StudySupervisorTest, RetryExhaustionEscalatesToBisectionThenRecovers) {
  // Five straight transient failures exhaust max_retries=4; the probe pass
  // finds nothing reproducible, so the shard re-runs with a fresh budget and
  // succeeds — degraded day, empty quarantine.
  StudySupervisor sup{fast_options()};
  std::vector<std::uint32_t> merged;
  std::atomic<int> attempts{0};
  const DayReport report = run_synthetic_day(
      sup, 0, 96, {}, {}, merged, [&](std::size_t shard, const CancelToken*) {
        if (shard == 2 && attempts.fetch_add(1) < 5) {
          throw TransientError{"persistent flap"};
        }
      });

  EXPECT_EQ(merged, iota_minus(96, {}));
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_GT(report.bisection_probes, 0u);
  EXPECT_GE(report.outcomes[2].attempts, 6);
}

TEST(StudySupervisorTest, WatchdogDeadlineCancelsHangingShard) {
  SupervisorOptions opt = fast_options();
  opt.shard_deadline_ms = 40;
  StudySupervisor sup{opt};
  std::vector<std::uint32_t> merged;
  std::atomic<int> hangs{0};
  const DayReport report = run_synthetic_day(
      sup, 0, 96, {}, {}, merged, [&](std::size_t shard, const CancelToken* cancel) {
        if (shard == 0 && hangs.fetch_add(1) == 0) {
          // Cooperative hang: only the watchdog can end this before the
          // 5 s safety bound.
          const auto give_up =
              std::chrono::steady_clock::now() + std::chrono::seconds(5);
          while (std::chrono::steady_clock::now() < give_up) {
            if (cancel != nullptr) cancel->throw_if_cancelled();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });

  EXPECT_EQ(merged, iota_minus(96, {}));
  EXPECT_GE(report.timeouts, 1u);
  EXPECT_GE(report.retries, 1u);
  ASSERT_FALSE(report.outcomes[0].trail.empty());
  EXPECT_EQ(report.outcomes[0].trail[0].code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(StudySupervisorTest, PoisonItemIsBisectedAndQuarantined) {
  std::vector<std::uint32_t> merged;
  std::vector<std::uint32_t> seen_callbacks;
  SupervisorOptions opt = fast_options();
  opt.on_quarantine = [&](const supervise::QuarantinedItem& q) {
    seen_callbacks.push_back(q.item);
  };
  StudySupervisor watched{opt};
  const DayReport report =
      run_synthetic_day(watched, 3, 96, {}, {13}, merged);

  EXPECT_EQ(merged, iota_minus(96, {13}));
  ASSERT_EQ(report.quarantined.size(), 1u);
  const auto& q = report.quarantined[0];
  EXPECT_EQ(q.item, 13u);
  EXPECT_EQ(q.day, 3);
  EXPECT_EQ(q.status.code(), StatusCode::kInternal);
  EXPECT_NE(q.status.message().find("poison item 13"), std::string::npos);
  ASSERT_FALSE(q.trail.empty());  // the shard attempts that led here
  EXPECT_EQ(seen_callbacks, std::vector<std::uint32_t>{13});
  EXPECT_GT(report.bisection_probes, 0u);
  EXPECT_TRUE(report.degraded());
  // The condemned item's shard completed over the survivors.
  for (const auto& outcome : report.outcomes) EXPECT_TRUE(outcome.status.is_ok());
}

TEST(StudySupervisorTest, MultiplePoisonsAcrossAndWithinShards) {
  StudySupervisor sup{fast_options()};
  std::vector<std::uint32_t> merged;
  const std::vector<std::uint32_t> poison = {5, 6, 40, 90};
  const DayReport report = run_synthetic_day(sup, 0, 96, {}, poison, merged);

  EXPECT_EQ(merged, iota_minus(96, poison));
  ASSERT_EQ(report.quarantined.size(), poison.size());
  for (std::size_t i = 0; i < poison.size(); ++i) {
    EXPECT_EQ(report.quarantined[i].item, poison[i]);  // sorted by item
  }
}

TEST(StudySupervisorTest, QuarantineDisabledTurnsPoisonIntoSupervisionError) {
  SupervisorOptions opt = fast_options();
  opt.quarantine_enabled = false;
  StudySupervisor sup{opt};
  std::vector<std::uint32_t> merged;
  EXPECT_THROW(run_synthetic_day(sup, 0, 96, {}, {13}, merged), SupervisionError);
}

TEST(StudySupervisorTest, NonReproducibleShardFailureEventuallyGivesUp) {
  // The shard fails deterministically but no single item reproduces it
  // under probing (an interaction bug): after max_bisection_rounds re-runs
  // the supervisor must refuse to loop forever.
  SupervisorOptions opt = fast_options();
  opt.max_bisection_rounds = 2;
  StudySupervisor sup{opt};
  std::vector<std::uint32_t> merged;
  EXPECT_THROW(
      run_synthetic_day(sup, 0, 96, {}, {}, merged,
                        [&](std::size_t shard, const CancelToken*) {
                          if (shard == 0) throw PermanentError{"interaction bug"};
                        }),
      SupervisionError);
}

TEST(StudySupervisorTest, SimulatedCrashPropagatesUnabsorbed) {
  StudySupervisor sup{fast_options()};
  std::vector<std::uint32_t> merged;
  EXPECT_THROW(run_synthetic_day(sup, 0, 96, {}, {}, merged,
                                 [&](std::size_t shard, const CancelToken*) {
                                   if (shard == 1) throw io::SimulatedCrash{};
                                 }),
               io::SimulatedCrash);
}

TEST(StudySupervisorTest, BackoffIsDeterministicJitteredAndCapped) {
  SupervisorOptions opt = fast_options();
  opt.backoff_initial_ms = 100;
  opt.backoff_cap_ms = 400;
  opt.backoff_multiplier = 2.0;
  StudySupervisor sup{opt};

  // First attempt never sleeps.
  EXPECT_EQ(sup.backoff_ms(0, 0, 0), 0u);
  EXPECT_EQ(sup.backoff_ms(0, 0, 1), 0u);
  // Jitter keeps each retry within [0.5, 1.5) of the exponential base.
  for (int day = 0; day < 4; ++day) {
    for (std::size_t shard = 0; shard < 4; ++shard) {
      EXPECT_GE(sup.backoff_ms(day, shard, 2), 50u);
      EXPECT_LT(sup.backoff_ms(day, shard, 2), 150u);
      EXPECT_GE(sup.backoff_ms(day, shard, 3), 100u);
      EXPECT_LT(sup.backoff_ms(day, shard, 3), 300u);
      // Deep retries are capped (400 ms base, jittered).
      EXPECT_LT(sup.backoff_ms(day, shard, 10), 600u);
      // Same key, same sleep: scheduling is reproducible.
      EXPECT_EQ(sup.backoff_ms(day, shard, 2), sup.backoff_ms(day, shard, 2));
    }
  }
}

TEST(StudySupervisorTest, SummaryAccumulatesAcrossDays) {
  StudySupervisor sup{fast_options()};
  std::vector<std::uint32_t> merged;
  const DayReport day0 = run_synthetic_day(sup, 0, 96, {}, {13}, merged);
  ASSERT_EQ(day0.quarantined.size(), 1u);

  // Day 1 starts with day 0's quarantine — no rediscovery, no new failures.
  merged.clear();
  const std::vector<std::uint32_t> carried = {13};
  const DayReport day1 = run_synthetic_day(sup, 1, 96, carried, {13}, merged);
  EXPECT_TRUE(day1.quarantined.empty());
  EXPECT_EQ(merged, iota_minus(96, carried));

  const auto& summary = sup.summary();
  EXPECT_EQ(summary.days, 2u);
  EXPECT_EQ(summary.degraded_days, 1u);
  EXPECT_GE(summary.permanent_failures, 1u);
  ASSERT_EQ(summary.quarantine.items.size(), 1u);
  EXPECT_EQ(summary.quarantine.items[0].item, 13u);

  sup.reset_summary();
  EXPECT_EQ(sup.summary().days, 0u);
  EXPECT_TRUE(sup.summary().quarantine.items.empty());
}

// --- supervised simulator: the byte-determinism property --------------------

/// One shared test-scale world (construction dominates cost), reset via
/// restore(day0) between runs like the exec determinism suite does.
struct SupWorld {
  StudyConfig cfg;
  std::unique_ptr<Simulator> sim;
  DayCheckpoint day0;

  static SupWorld& instance() {
    static SupWorld world = [] {
      SupWorld w;
      w.cfg = StudyConfig::test_scale();
      w.cfg.days = 2;
      w.cfg.population.count = 1'400;
      w.sim = std::make_unique<Simulator>(w.cfg);
      w.day0.seed = w.cfg.seed;
      return w;
    }();
    return world;
  }
};

/// Detaches the sink and clears the supervisor even when run() throws.
/// The sinks live on each helper's stack while the simulator is a shared
/// static: a failed run that skipped the manual remove_sink() would leave a
/// dangling pointer for the NEXT test to dereference mid-simulation.
struct AttachedSink {
  AttachedSink(Simulator& sim, telemetry::RecordSink& sink) : sim_(sim), sink_(sink) {
    sim_.add_sink(&sink_);
  }
  AttachedSink(Simulator& sim, telemetry::DurableRecordSink& sink)
      : sim_(sim), sink_(sink) {
    sim_.attach_durable_log(&sink);
  }
  ~AttachedSink() {
    sim_.remove_sink(&sink_);  // also clears the durable-log wiring
    sim_.set_supervisor(nullptr);
  }

 private:
  Simulator& sim_;
  telemetry::RecordSink& sink_;
};

/// Sanitizers stretch wall time (TSan ~20x) without stretching the watchdog:
/// deadlines that are generous in a plain build fire on legitimate work and
/// turn timing tests into give-up cascades. Scale them at compile time.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TL_TEST_UNDER_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define TL_TEST_UNDER_TSAN 1
#endif
#if defined(TL_TEST_UNDER_TSAN)
constexpr int kDeadlineScale = 20;
#else
constexpr int kDeadlineScale = 1;
#endif

/// The poison UEs injected by every storm test: spread across the id space,
/// with an adjacent pair (one shard must condemn two neighbours).
const std::vector<std::uint32_t> kPoisonUes = {7, 702, 703, 1'399};

struct SupCapture {
  std::vector<std::uint8_t> record_bytes;
  std::uint32_t record_crc = 0;
  std::uint64_t records_emitted = 0;
  std::uint64_t total_handovers = 0;
  std::vector<devices::UeId> quarantined;
};

/// Serial, unsupervised, uninjected run over the population minus
/// `withdrawn` — the oracle every supervised storm must reproduce.
SupCapture run_oracle(const std::vector<std::uint32_t>& withdrawn) {
  SupWorld& w = SupWorld::instance();
  telemetry::SignalingDataset dataset;
  w.sim->set_supervisor(nullptr);
  w.sim->set_threads(1);
  w.sim->restore(w.day0);
  w.sim->set_quarantined_ues({withdrawn.begin(), withdrawn.end()});
  {
    AttachedSink attached{*w.sim, dataset};
    w.sim->run();
  }

  SupCapture capture;
  for (const auto& record : dataset.records()) {
    RecordLog::encode_record(record, capture.record_bytes);
  }
  capture.record_crc =
      util::crc32c(capture.record_bytes.data(), capture.record_bytes.size());
  capture.records_emitted = w.sim->records_emitted();
  capture.total_handovers = w.sim->core_network().total_handovers();
  capture.quarantined = w.sim->quarantined_ues();
  return capture;
}

SupCapture run_supervised(StudySupervisor& sup, unsigned sim_threads = 1) {
  SupWorld& w = SupWorld::instance();
  telemetry::SignalingDataset dataset;
  w.sim->set_threads(sim_threads);
  w.sim->restore(w.day0);
  w.sim->set_supervisor(&sup);
  {
    AttachedSink attached{*w.sim, dataset};
    w.sim->run();
  }

  SupCapture capture;
  for (const auto& record : dataset.records()) {
    RecordLog::encode_record(record, capture.record_bytes);
  }
  capture.record_crc =
      util::crc32c(capture.record_bytes.data(), capture.record_bytes.size());
  capture.records_emitted = w.sim->records_emitted();
  capture.total_handovers = w.sim->core_network().total_handovers();
  capture.quarantined = w.sim->quarantined_ues();
  return capture;
}

TaskFaultConfig storm_config() {
  TaskFaultConfig fc;
  fc.seed = 0xFA01;
  fc.throw_rate = 0.04;
  fc.io_error_rate = 0.04;
  fc.hang_rate = 0.02;
  fc.slow_rate = 0.05;
  fc.slow_ms = 1;
  fc.max_faulty_attempts = 3;
  fc.hang_cap_ms = 40;  // self-resolving: no deadline needed
  fc.poison_ues = kPoisonUes;
  return fc;
}

TEST(SupervisedSimulator, FaultStormMatchesSerialOracleAtEveryThreadCount) {
  const SupCapture oracle = run_oracle(kPoisonUes);
  ASSERT_GT(oracle.records_emitted, 100u) << "world too small to prove anything";

  const TaskFaultInjector injector{storm_config()};
  for (const unsigned threads : {1u, 2u, 4u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SupervisorOptions opt;
    opt.threads = threads;
    opt.shards_per_thread = 4;
    opt.max_retries = 4;
    opt.backoff_initial_ms = 1;
    opt.backoff_cap_ms = 8;
    opt.injector = &injector;
    StudySupervisor sup{opt};

    const SupCapture storm = run_supervised(sup);

    // Quarantine = exactly the poison set, discovered by bisection.
    EXPECT_EQ(storm.quarantined,
              std::vector<devices::UeId>(kPoisonUes.begin(), kPoisonUes.end()));
    // Output = byte-for-byte the uninjected serial run over the survivors.
    EXPECT_EQ(storm.record_crc, oracle.record_crc);
    ASSERT_EQ(storm.record_bytes, oracle.record_bytes);
    EXPECT_EQ(storm.records_emitted, oracle.records_emitted);
    EXPECT_EQ(storm.total_handovers, oracle.total_handovers);

    // The storm must actually have stormed: every poison UE implies at
    // least one failed attempt, and the summary says the days degraded.
    const auto& summary = sup.summary();
    EXPECT_EQ(summary.days, 2u);
    EXPECT_GE(summary.degraded_days, 1u);
    EXPECT_GE(summary.permanent_failures, 1u);
    EXPECT_GT(summary.bisection_probes, 0u);
    EXPECT_EQ(summary.quarantine.items.size(), kPoisonUes.size());
  }
}

TEST(SupervisedSimulator, HangStormWithDeadlinesStaysByteIdentical) {
  // Hangs that only the watchdog can end (the cap is far beyond the
  // deadline): timeouts fire, shards retry, bytes must not change.
  const SupCapture oracle = run_oracle({});

  TaskFaultConfig fc;
  fc.seed = 0xFA02;
  fc.hang_rate = 0.5;
  fc.max_faulty_attempts = 2;
  fc.hang_cap_ms = 30'000;
  const TaskFaultInjector injector{fc};

  SupervisorOptions opt;
  opt.threads = 2;
  opt.shards_per_thread = 4;
  // Scaled so legitimate shard work still beats the watchdog under TSan;
  // the hangs above dwarf it either way, so timeouts keep firing.
  opt.shard_deadline_ms = 200 * kDeadlineScale;
  opt.backoff_initial_ms = 1;
  opt.backoff_cap_ms = 4;
  opt.injector = &injector;
  StudySupervisor sup{opt};

  const SupCapture storm = run_supervised(sup);
  EXPECT_TRUE(storm.quarantined.empty());
  ASSERT_EQ(storm.record_bytes, oracle.record_bytes);
  EXPECT_GE(sup.summary().timeouts, 1u);
  EXPECT_GE(sup.summary().retries, 1u);
}

TEST(SupervisedSimulator, WalBytesMatchPreQuarantinedSerialRun) {
  SupWorld& w = SupWorld::instance();
  auto& real = io::StdioFileSystem::instance();

  // Oracle: serial, unsupervised, poison UEs withdrawn up front.
  TempDir ref_dir{"wal_ref"};
  {
    RecordLog::Options opt;
    opt.directory = ref_dir.path;
    RecordLog log{real, opt};
    telemetry::DurableRecordSink sink{log};
    w.sim->set_supervisor(nullptr);
    w.sim->set_threads(1);
    w.sim->restore(w.day0);
    w.sim->set_quarantined_ues({kPoisonUes.begin(), kPoisonUes.end()});
    AttachedSink attached{*w.sim, sink};
    w.sim->run();
  }
  const std::string ref_bytes = log_bytes(ref_dir.path);
  ASSERT_FALSE(ref_bytes.empty());

  // Supervised storm run, quarantining the same UEs as it goes. The WAL —
  // records, segment boundaries, and the commit markers' embedded
  // checkpoints (which carry the quarantine set) — must match exactly.
  TempDir storm_dir{"wal_storm"};
  const TaskFaultInjector injector{storm_config()};
  SupervisorOptions opt;
  opt.threads = 4;
  opt.shards_per_thread = 4;
  opt.backoff_initial_ms = 1;
  opt.backoff_cap_ms = 8;
  opt.injector = &injector;
  StudySupervisor sup{opt};
  {
    RecordLog::Options log_opt;
    log_opt.directory = storm_dir.path;
    RecordLog log{real, log_opt};
    telemetry::DurableRecordSink sink{log};
    w.sim->restore(w.day0);
    w.sim->set_supervisor(&sup);
    AttachedSink attached{*w.sim, sink};
    w.sim->run();
  }
  EXPECT_EQ(log_bytes(storm_dir.path), ref_bytes);
}

// --- kill/resume under a supervised fault storm ------------------------------

int supervised_chaos_schedules() {
  if (const char* env = std::getenv("TL_CHAOS_SCHEDULES")) {
    const int n = std::atoi(env);
    if (n > 0) return std::max(2, n / 10);
  }
  return 10;
}

TEST(SupervisedChaos, KillResumeUnderFaultStormYieldsIdenticalWal) {
  // Three fault layers at once: the task/poison injector (absorbed by the
  // supervisor), transient disk errors (absorbed by the caller's retry
  // loop), and hard crash points (kill the run; resume from the WAL).
  // Every schedule must still converge to the reference bytes — including
  // the commit markers that carry the quarantine set across the crash.
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.days = 3;
  cfg.population.count = 400;
  auto& real = io::StdioFileSystem::instance();
  RecordLog::Options opt;
  opt.max_segment_bytes = 24 * 1024;
  opt.write_chunk_bytes = 1024;

  TaskFaultConfig fc;
  fc.seed = 0xFA03;
  fc.throw_rate = 0.05;
  fc.io_error_rate = 0.05;
  fc.slow_rate = 0.02;
  fc.slow_ms = 1;
  fc.max_faulty_attempts = 2;
  fc.poison_ues = {3, 201};
  const TaskFaultInjector injector{fc};

  SupervisorOptions sup_opt;
  sup_opt.threads = 2;
  sup_opt.shards_per_thread = 2;
  sup_opt.backoff_initial_ms = 1;
  sup_opt.backoff_cap_ms = 4;
  sup_opt.injector = &injector;
  StudySupervisor sup{sup_opt};

  Simulator sim{cfg};
  DayCheckpoint day0;
  day0.seed = cfg.seed;
  sim.set_supervisor(&sup);

  // Reference: supervised storm through a fault-free decorated filesystem.
  TempDir ref_dir{"chaos_ref"};
  std::uint64_t horizon = 0;
  {
    io::FaultyFileSystem ffs{real, io::IoFaultPlan{}, 0};
    RecordLog::Options ref_opt = opt;
    ref_opt.directory = ref_dir.path;
    RecordLog log{ffs, ref_opt};
    telemetry::DurableRecordSink sink{log};
    log.open();
    sim.restore(day0);
    sim.attach_durable_log(&sink);
    sim.run();
    sim.remove_sink(&sink);
    horizon = ffs.ops();
  }
  const std::string ref_bytes = log_bytes(ref_dir.path);
  const std::vector<devices::UeId> ref_quarantine = sim.quarantined_ues();
  ASSERT_EQ(ref_quarantine,
            std::vector<devices::UeId>(fc.poison_ues.begin(), fc.poison_ues.end()));
  ASSERT_GT(horizon, 20u);

  const int schedules = supervised_chaos_schedules();
  int total_crashes = 0;
  for (int schedule = 0; schedule < schedules; ++schedule) {
    TempDir dir{"chaos_" + std::to_string(schedule)};
    util::Rng meta =
        util::Rng::derive(0x5C4A05ULL, static_cast<std::uint64_t>(schedule));
    int attempts = 0;
    bool complete = false;
    while (!complete) {
      ASSERT_LT(attempts, 64) << "schedule " << schedule << " livelocked";
      ++attempts;
      io::IoFaultPlan plan;
      const bool clean = attempts > 1 && meta.chance(0.4);
      if (!clean) {
        const double transient_rate = (schedule % 3 == 0) ? 0.01 : 0.0;
        plan = io::IoFaultPlan::chaos(meta(), horizon + 8, transient_rate);
      }
      io::FaultyFileSystem ffs{real, plan, meta()};
      RecordLog::Options run_opt = opt;
      run_opt.directory = dir.path;
      RecordLog log{ffs, run_opt};
      telemetry::DurableRecordSink sink{log};
      try {
        log.open();
        sim.restore(day0);
        sim.attach_durable_log(&sink);
        sim.run();
        complete = true;
      } catch (const io::SimulatedCrash&) {
        ++total_crashes;
      } catch (const io::IoError&) {
        // transient disk fault aborted a commit; retry resumes from the log
      }
      sim.remove_sink(&sink);
    }
    ASSERT_EQ(log_bytes(dir.path), ref_bytes) << "schedule " << schedule;
    EXPECT_EQ(sim.quarantined_ues(), ref_quarantine) << "schedule " << schedule;
  }
  EXPECT_GT(total_crashes, 0);
}

// --- checkpoint formats carry the quarantine ---------------------------------

DayCheckpoint quarantine_checkpoint() {
  DayCheckpoint cp;
  cp.next_day = 4;
  cp.seed = 0xABCDEF01ULL;
  cp.records_emitted = 777;
  cp.core.mme(geo::kAllRegions[0]).handovers.procedures = 99;
  cp.quarantined_ues = {1, 5, 99, 70'000};
  return cp;
}

TEST(CheckpointQuarantine, BinaryV2RoundTripsTheQuarantineSet) {
  const DayCheckpoint cp = quarantine_checkpoint();
  const auto bytes = core::encode_checkpoint(cp);
  const DayCheckpoint back = core::decode_checkpoint(bytes);
  EXPECT_EQ(back.next_day, cp.next_day);
  EXPECT_EQ(back.seed, cp.seed);
  EXPECT_EQ(back.records_emitted, cp.records_emitted);
  EXPECT_EQ(back.quarantined_ues, cp.quarantined_ues);

  DayCheckpoint empty = cp;
  empty.quarantined_ues.clear();
  EXPECT_TRUE(core::decode_checkpoint(core::encode_checkpoint(empty))
                  .quarantined_ues.empty());
}

TEST(CheckpointQuarantine, LegacyV1CheckpointsStillDecode) {
  // A v1 checkpoint is the v2 fixed section with version=1 and no
  // quarantine list: old WAL commit markers must keep resuming.
  DayCheckpoint cp = quarantine_checkpoint();
  cp.quarantined_ues.clear();
  auto bytes = core::encode_checkpoint(cp);
  bytes.resize(bytes.size() - 8);  // drop u32 count + u32 crc
  bytes[4] = 1;                    // version LE
  bytes[5] = 0;
  const std::uint32_t crc = util::crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(util::mask_crc32c(crc) >> (8 * i)));
  }
  const DayCheckpoint back = core::decode_checkpoint(bytes);
  EXPECT_EQ(back.next_day, cp.next_day);
  EXPECT_EQ(back.seed, cp.seed);
  EXPECT_EQ(back.records_emitted, cp.records_emitted);
  EXPECT_TRUE(back.quarantined_ues.empty());
}

TEST(CheckpointQuarantine, RejectsNonCanonicalQuarantineList) {
  DayCheckpoint cp = quarantine_checkpoint();
  cp.quarantined_ues = {5, 1, 99, 70'000};  // encoder trusts the caller here
  const auto bytes = core::encode_checkpoint(cp);
  EXPECT_THROW(core::decode_checkpoint(bytes), std::runtime_error);
}

TEST(CheckpointQuarantine, TextCheckpointRoundTripsTheQuarantineSet) {
  SupWorld& w = SupWorld::instance();
  TempDir dir{"text_cp"};
  const std::string path = dir.path + "/study.ckpt";
  fs::create_directories(dir.path);

  w.sim->set_supervisor(nullptr);
  w.sim->restore(w.day0);
  w.sim->set_quarantined_ues({30, 2});
  w.sim->save_checkpoint(path);

  w.sim->set_quarantined_ues({});
  ASSERT_TRUE(w.sim->load_checkpoint(path));
  EXPECT_EQ(w.sim->quarantined_ues(), (std::vector<devices::UeId>{2, 30}));
  w.sim->set_quarantined_ues({});
}


// --- run_with_retries: the single-operation slice of the retry ladder -------

supervise::RetryPolicy fast_retry_policy() {
  supervise::RetryPolicy policy;
  policy.max_retries = 4;
  policy.backoff_initial_ms = 0;
  policy.backoff_cap_ms = 0;
  return policy;
}

TEST(RunWithRetries, SucceedsAfterTransientFailures) {
  int calls = 0;
  const supervise::RetryReport report = supervise::run_with_retries(
      fast_retry_policy(), "flaky poll", [&](const supervise::CancelToken&) {
        if (++calls < 3) throw supervise::TransientError{"blip"};
      });
  EXPECT_TRUE(report.ok()) << report.status.to_string();
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(report.timeouts, 0);
  EXPECT_EQ(calls, 3);
}

TEST(RunWithRetries, PermanentFailureDoesNotRetry) {
  int calls = 0;
  const supervise::RetryReport report = supervise::run_with_retries(
      fast_retry_policy(), "broken op", [&](const supervise::CancelToken&) {
        ++calls;
        throw supervise::PermanentError{"structurally wrong"};
      });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kInternal);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetries, ExhaustionReportsAborted) {
  supervise::RetryPolicy policy = fast_retry_policy();
  policy.max_retries = 2;
  int calls = 0;
  const supervise::RetryReport report = supervise::run_with_retries(
      policy, "always down", [&](const supervise::CancelToken&) {
        ++calls;
        throw supervise::TransientError{"still down"};
      });
  EXPECT_EQ(report.status.code(), StatusCode::kAborted);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_NE(report.status.message().find("retries exhausted"),
            std::string::npos);
}

TEST(RunWithRetries, DeadlineWatchdogCancelsTheToken) {
  supervise::RetryPolicy policy = fast_retry_policy();
  policy.max_retries = 1;
  policy.attempt_deadline_ms = 20;
  const supervise::RetryReport report = supervise::run_with_retries(
      policy, "stuck op", [&](const supervise::CancelToken& token) {
        // Cooperative loop: spins until the watchdog cancels it.
        while (true) {
          token.throw_if_cancelled();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.timeouts, 2);
  EXPECT_EQ(report.status.code(), StatusCode::kAborted);
}

TEST(RunWithRetries, SimulatedCrashPropagatesUncounted) {
  EXPECT_THROW(supervise::run_with_retries(
                   fast_retry_policy(), "dying op",
                   [&](const supervise::CancelToken&) {
                     throw io::SimulatedCrash{};
                   }),
               io::SimulatedCrash);
}

TEST(RunWithRetries, BackoffScheduleIsDeterministicAndCapped) {
  supervise::RetryPolicy policy;
  policy.backoff_initial_ms = 8;
  policy.backoff_cap_ms = 50;
  policy.backoff_multiplier = 2.0;
  // The first attempt never sleeps.
  EXPECT_EQ(supervise::retry_backoff_ms(policy, 1), 0u);
  for (int attempt = 2; attempt <= 8; ++attempt) {
    const std::uint64_t ms = supervise::retry_backoff_ms(policy, attempt);
    // Jitter scales the capped exponential by [0.5, 1.5).
    EXPECT_LE(ms, policy.backoff_cap_ms * 3 / 2) << attempt;
    EXPECT_EQ(ms, supervise::retry_backoff_ms(policy, attempt)) << attempt;
  }
  EXPECT_GE(supervise::retry_backoff_ms(policy, 2),
            policy.backoff_initial_ms / 2);
}

}  // namespace
}  // namespace tl
