// End-to-end simulator integration against the shared test world.

#include <gtest/gtest.h>

#include <set>

#include "analysis/summary.hpp"
#include "test_world.hpp"

namespace tl::core {
namespace {

using testing::TestWorld;
using topology::ObservedRat;

TEST(Simulator, EmitsRecordsToAllSinks) {
  const auto& w = TestWorld::instance();
  EXPECT_GT(w.sim->records_emitted(), 10'000u);
  EXPECT_EQ(w.dataset.size(), w.sim->records_emitted());
  EXPECT_EQ(w.mix->total(), w.sim->records_emitted());
}

TEST(Simulator, AllRecordsHave4g5gSource) {
  for (const auto& r : TestWorld::instance().dataset.records()) {
    EXPECT_EQ(r.source_rat, ObservedRat::kG45Nsa);
  }
}

TEST(Simulator, RecordFieldsAreConsistentJoins) {
  const auto& w = TestWorld::instance();
  for (const auto& r : w.dataset.records()) {
    const auto& sector = w.sim->deployment().sector(r.source_sector);
    EXPECT_EQ(r.vendor, sector.vendor);
    EXPECT_EQ(r.district, sector.district);
    EXPECT_EQ(r.area, sector.area_type);
    EXPECT_EQ(r.region, sector.region);
    EXPECT_NE(r.source_sector, r.target_sector);
    EXPECT_GE(r.timestamp, 0);
    EXPECT_LT(r.day(), w.config.days);
    EXPECT_GE(r.duration_ms, 0.0f);
  }
}

TEST(Simulator, TargetRatMatchesTargetSector) {
  const auto& w = TestWorld::instance();
  for (const auto& r : w.dataset.records()) {
    const auto& target = w.sim->deployment().sector(r.target_sector);
    EXPECT_EQ(topology::observe(target.rat), r.target_rat);
  }
}

TEST(Simulator, HoTypeMixLandsOnTable2) {
  const auto& w = TestWorld::instance();
  const double total = static_cast<double>(w.mix->total());
  double to_3g = 0.0;
  for (const auto type : devices::kAllDeviceTypes) {
    to_3g += static_cast<double>(w.mix->count(type, ObservedRat::kG3));
  }
  EXPECT_NEAR(to_3g / total, 0.0586, 0.025);
  const double smart_intra = static_cast<double>(
      w.mix->count(devices::DeviceType::kSmartphone, ObservedRat::kG45Nsa));
  EXPECT_NEAR(smart_intra / total, 0.8828, 0.05);
  const double m2m_total =
      static_cast<double>(w.mix->count(devices::DeviceType::kM2mIot, ObservedRat::kG45Nsa) +
                          w.mix->count(devices::DeviceType::kM2mIot, ObservedRat::kG3));
  EXPECT_NEAR(m2m_total / total, 0.0575, 0.04);
  // 2G handovers are a vanishing fraction.
  double to_2g = 0.0;
  for (const auto type : devices::kAllDeviceTypes) {
    to_2g += static_cast<double>(w.mix->count(type, ObservedRat::kG2));
  }
  EXPECT_LT(to_2g / total, 0.002);
}

TEST(Simulator, DurationsMatchFig8) {
  const auto& w = TestWorld::instance();
  const auto& intra = w.durations->durations(ObservedRat::kG45Nsa);
  ASSERT_GT(intra.seen(), 1000u);
  EXPECT_NEAR(intra.quantile(0.5), 43.0, 6.0);
  EXPECT_NEAR(intra.quantile(0.95), 90.0, 12.0);
  const auto& g3 = w.durations->durations(ObservedRat::kG3);
  ASSERT_GT(g3.seen(), 100u);
  EXPECT_NEAR(g3.quantile(0.5), 412.0, 80.0);
}

TEST(Simulator, FailureRatesOrderByTargetRat) {
  const auto& w = TestWorld::instance();
  std::array<std::uint64_t, 3> hos{}, hofs{};
  for (const auto& r : w.dataset.records()) {
    const auto t = static_cast<std::size_t>(r.target_rat);
    ++hos[t];
    if (!r.success) ++hofs[t];
  }
  const auto idx_intra = static_cast<std::size_t>(ObservedRat::kG45Nsa);
  const auto idx_3g = static_cast<std::size_t>(ObservedRat::kG3);
  ASSERT_GT(hos[idx_intra], 0u);
  ASSERT_GT(hos[idx_3g], 0u);
  const double rate_intra =
      static_cast<double>(hofs[idx_intra]) / static_cast<double>(hos[idx_intra]);
  const double rate_3g =
      static_cast<double>(hofs[idx_3g]) / static_cast<double>(hos[idx_3g]);
  EXPECT_GT(rate_3g, 10.0 * rate_intra);
  EXPECT_LT(rate_intra, 0.01);
}

TEST(Simulator, MajorityOfFailuresAreOn3gPath) {
  const auto& w = TestWorld::instance();
  const auto by_target = w.causes->failures_by_target();
  const double total = static_cast<double>(w.causes->total_failures());
  ASSERT_GT(total, 100.0);
  // Paper: 75% of HOFs on ->3G, ~25% intra, ~0.03% on ->2G.
  EXPECT_NEAR(by_target[static_cast<std::size_t>(ObservedRat::kG3)] / total, 0.75, 0.15);
  EXPECT_LT(by_target[static_cast<std::size_t>(ObservedRat::kG2)] / total, 0.05);
}

TEST(Simulator, DominantCausesCoverMostFailures) {
  const auto& w = TestWorld::instance();
  const auto buckets = w.causes->totals_by_bucket();
  std::uint64_t dominant = 0;
  for (std::size_t b = 0; b < 8; ++b) dominant += buckets[b];
  const double share = static_cast<double>(dominant) /
                       static_cast<double>(w.causes->total_failures());
  EXPECT_NEAR(share, 0.92, 0.06);
}

TEST(Simulator, UeMetricsMatchPopulationAndDays) {
  const auto& w = TestWorld::instance();
  // One row per UE per day: modern UEs from the EPC path, legacy UEs from
  // the SGSN-side mobility view.
  EXPECT_EQ(w.ue_days.rows().size(),
            w.sim->population().size() * static_cast<std::uint64_t>(w.config.days));
}

TEST(Simulator, SmartphonesAreTheMobileClass) {
  const auto& w = TestWorld::instance();
  std::vector<double> smart_sectors, m2m_sectors;
  for (const auto& row : w.ue_days.rows()) {
    if (row.device_type == devices::DeviceType::kSmartphone) {
      smart_sectors.push_back(row.distinct_sectors);
    } else if (row.device_type == devices::DeviceType::kM2mIot) {
      m2m_sectors.push_back(row.distinct_sectors);
    }
  }
  ASSERT_GT(smart_sectors.size(), 100u);
  ASSERT_GT(m2m_sectors.size(), 100u);
  const double smart_median = analysis::median(smart_sectors);
  const double m2m_median = analysis::median(m2m_sectors);
  // Paper §5.3: smartphone median 22 sectors/day vs 1 for M2M. At test
  // scale the deployment is sparse, so assert the ordering and bands.
  EXPECT_GE(smart_median, 4.0);
  EXPECT_LE(m2m_median, 2.0);
  EXPECT_GT(smart_median, 2.0 * m2m_median);
}

TEST(Simulator, DeterministicAcrossRuns) {
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.days = 1;
  cfg.population.count = 800;
  Simulator a{cfg};
  Simulator b{cfg};
  telemetry::SignalingDataset da, db;
  a.add_sink(&da);
  b.add_sink(&db);
  a.run();
  b.run();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.records()[i].timestamp, db.records()[i].timestamp);
    EXPECT_EQ(da.records()[i].source_sector, db.records()[i].source_sector);
    EXPECT_EQ(da.records()[i].success, db.records()[i].success);
    EXPECT_EQ(da.records()[i].cause, db.records()[i].cause);
  }
}

TEST(Simulator, SeedChangesOutput) {
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.days = 1;
  cfg.population.count = 800;
  StudyConfig cfg2 = cfg;
  cfg2.seed = 4242;
  cfg2.finalize();
  cfg2.population.count = 800;
  Simulator a{cfg};
  Simulator b{cfg2};
  telemetry::SignalingDataset da, db;
  a.add_sink(&da);
  b.add_sink(&db);
  a.run();
  b.run();
  EXPECT_NE(da.size(), db.size());
}

TEST(Simulator, RejectsNullSinksAndNegativeDays) {
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.days = 1;
  cfg.population.count = 500;
  Simulator sim{cfg};
  EXPECT_THROW(sim.add_sink(nullptr), std::invalid_argument);
  EXPECT_THROW(sim.add_metrics_sink(nullptr), std::invalid_argument);
  EXPECT_THROW(sim.run_day(-1), std::invalid_argument);
}

TEST(Simulator, CoreNetworkCountersAgreeWithRecords) {
  const auto& w = TestWorld::instance();
  std::uint64_t core_total = 0;
  for (const auto region : geo::kAllRegions) {
    core_total += w.sim->core_network().mme(region).handovers.procedures;
  }
  EXPECT_EQ(core_total, w.sim->records_emitted());
}

}  // namespace
}  // namespace tl::core
