// Deployment builder, energy saving, and neighbor relations.

#include <gtest/gtest.h>

#include <map>

#include "geo/census.hpp"
#include "topology/deployment.hpp"
#include "topology/energy_saving.hpp"
#include "topology/neighbor_map.hpp"

namespace tl::topology {
namespace {

struct World {
  geo::Country country;
  Deployment deployment;
};

const World& world() {
  static const World w = [] {
    geo::CensusConfig cc;
    cc.districts = 80;
    cc.total_population = 12'000'000;
    cc.seed = 99;
    geo::Country country = geo::synthesize_country(cc);
    DeploymentConfig dc;
    dc.scale = 0.03;  // ~720 sites
    dc.seed = 7;
    Deployment dep = Deployment::build(country, dc);
    return World{std::move(country), std::move(dep)};
  }();
  return w;
}

TEST(Deployment, SiteAndSectorCounts) {
  const auto& dep = world().deployment;
  EXPECT_NEAR(static_cast<double>(dep.sites().size()), 0.03 * 24'000, 2.0);
  // ~4-7 sectors per site once multi-layer sites are counted.
  const double per_site =
      static_cast<double>(dep.sectors().size()) / dep.sites().size();
  EXPECT_GT(per_site, 3.0);
  EXPECT_LT(per_site, 12.0);
}

TEST(Deployment, RatMixMatchesPaper) {
  const auto& dep = world().deployment;
  const auto by_rat = dep.sector_count_by_rat();
  const double total = static_cast<double>(dep.live_sector_count());
  EXPECT_NEAR(by_rat[static_cast<std::size_t>(Rat::kG4)] / total, 0.55, 0.08);
  EXPECT_NEAR(by_rat[static_cast<std::size_t>(Rat::kG2)] / total, 0.18, 0.06);
  EXPECT_NEAR(by_rat[static_cast<std::size_t>(Rat::kG3)] / total, 0.18, 0.06);
  EXPECT_NEAR(by_rat[static_cast<std::size_t>(Rat::kG5Nr)] / total, 0.084, 0.05);
}

TEST(Deployment, UrbanSectorShareNear80Percent) {
  EXPECT_NEAR(world().deployment.urban_sector_fraction(), 0.80, 0.06);
}

TEST(Deployment, FiveGOnlyInUrbanSites) {
  for (const auto& s : world().deployment.sectors()) {
    if (s.rat == Rat::kG5Nr) EXPECT_EQ(s.area_type, geo::AreaType::kUrban);
  }
}

TEST(Deployment, SectorsInheritSiteAttributes) {
  const auto& dep = world().deployment;
  for (const auto& sector : dep.sectors()) {
    const auto& site = dep.site(sector.site);
    EXPECT_EQ(sector.vendor, site.vendor);
    EXPECT_EQ(sector.postcode, site.postcode);
    EXPECT_EQ(sector.region, site.region);
  }
}

TEST(Deployment, SectorsInPostcodeIndexIsConsistent) {
  const auto& dep = world().deployment;
  std::size_t indexed = 0;
  for (const auto& pc : world().country.postcodes()) {
    for (const SectorId sid : dep.sectors_in_postcode(pc.id)) {
      EXPECT_EQ(dep.sector(sid).postcode, pc.id);
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, dep.sectors().size());
}

TEST(Deployment, VendorMixFollowsRegions) {
  const auto& dep = world().deployment;
  std::map<geo::Region, std::map<Vendor, int>> counts;
  for (const auto& site : dep.sites()) ++counts[site.region][site.vendor];
  // The dominant configured vendor should dominate in each region with
  // enough sites (West -> V3, North -> V2).
  if (counts[geo::Region::kWest].size() > 1) {
    int total = 0;
    for (const auto& [v, n] : counts[geo::Region::kWest]) total += n;
    EXPECT_GT(counts[geo::Region::kWest][Vendor::kV3], total / 3);
  }
}

TEST(Deployment, EvolutionShowsGrowthAndLegacyDecline) {
  const auto evo = world().deployment.evolution(2009, 2023);
  ASSERT_EQ(evo.size(), 15u);
  // Total deployment grows massively over the window.
  EXPECT_GT(evo.back().total(), 3 * evo.front().total());
  // 2G peaked early and declines after decommissioning starts.
  const auto g2_2015 = evo[6].by_rat[static_cast<std::size_t>(Rat::kG2)];
  const auto g2_2023 = evo.back().by_rat[static_cast<std::size_t>(Rat::kG2)];
  EXPECT_LT(g2_2023, g2_2015);
  // 5G exists only from 2019.
  EXPECT_EQ(evo[9].by_rat[static_cast<std::size_t>(Rat::kG5Nr)], 0u);  // 2018
  EXPECT_GT(evo.back().by_rat[static_cast<std::size_t>(Rat::kG5Nr)], 0u);
  // Growth 2018 -> 2023 in the ~59% ballpark the paper reports.
  const double growth = static_cast<double>(evo.back().total()) /
                        static_cast<double>(evo[9].total());
  EXPECT_GT(growth, 1.2);
  EXPECT_LT(growth, 2.5);
}

TEST(Deployment, RejectsBadScale) {
  DeploymentConfig dc;
  dc.scale = 0.0;
  EXPECT_THROW(Deployment::build(world().country, dc), std::invalid_argument);
  dc.scale = 0.01;
  dc.share_4g = 0.9;  // shares no longer sum to 1
  EXPECT_THROW(Deployment::build(world().country, dc), std::invalid_argument);
}

TEST(Rat, ObservationCollapses4gAnd5g) {
  EXPECT_EQ(observe(Rat::kG4), ObservedRat::kG45Nsa);
  EXPECT_EQ(observe(Rat::kG5Nr), ObservedRat::kG45Nsa);
  EXPECT_EQ(observe(Rat::kG2), ObservedRat::kG2);
  EXPECT_EQ(observe(Rat::kG3), ObservedRat::kG3);
}

TEST(Rat, SupportLattice) {
  EXPECT_TRUE(supports(RatSupport::kUpTo2G, Rat::kG2));
  EXPECT_FALSE(supports(RatSupport::kUpTo2G, Rat::kG3));
  EXPECT_TRUE(supports(RatSupport::kUpTo4G, Rat::kG4));
  EXPECT_FALSE(supports(RatSupport::kUpTo4G, Rat::kG5Nr));
  EXPECT_TRUE(supports(RatSupport::kUpTo5G, Rat::kG5Nr));
}

TEST(EnergySaving, NonBoostersAlwaysActive) {
  const EnergySavingPolicy policy{1};
  RadioSector s;
  s.id = 42;
  s.capacity_booster = false;
  for (int bin = 0; bin < 48; ++bin) EXPECT_TRUE(policy.is_active(s, 0, bin));
}

TEST(EnergySaving, PlateauKeepsAlmostEverythingOn) {
  // 08:00-17:00 sleeps only ~3% of boosters; with a 25% booster share that
  // is ~99% of all sectors active, as in Fig. 7 (bottom).
  EXPECT_NEAR(EnergySavingPolicy::expected_active_fraction(0.25, 20), 0.9925, 0.005);
  EXPECT_LT(EnergySavingPolicy::expected_active_fraction(0.25, 2), 0.85);
}

TEST(EnergySaving, EveningDeclineIsMonotone) {
  for (int bin = 35; bin < 48; ++bin) {
    EXPECT_GE(EnergySavingPolicy::booster_sleep_fraction(bin),
              EnergySavingPolicy::booster_sleep_fraction(bin - 1));
  }
}

TEST(EnergySaving, StableAcrossDaysPerSector) {
  const EnergySavingPolicy policy{7};
  RadioSector s;
  s.id = 1001;
  s.capacity_booster = true;
  for (int bin = 0; bin < 48; ++bin) {
    EXPECT_EQ(policy.is_active(s, 0, bin), policy.is_active(s, 13, bin));
  }
}

TEST(EnergySaving, SleepFractionRanksBoosters) {
  const EnergySavingPolicy policy{7};
  int active_night = 0, active_noon = 0, boosters = 0;
  for (const auto& s : world().deployment.sectors()) {
    if (!s.capacity_booster) continue;
    ++boosters;
    active_night += policy.is_active(s, 0, 4) ? 1 : 0;
    active_noon += policy.is_active(s, 0, 24) ? 1 : 0;
  }
  ASSERT_GT(boosters, 50);
  EXPECT_LT(active_night, active_noon);
  EXPECT_NEAR(static_cast<double>(active_noon) / boosters, 0.97, 0.03);
}

TEST(NeighborMap, ListsExcludeSelfAndAreBounded) {
  const NeighborMap nm{world().deployment, 6};
  for (const auto& site : world().deployment.sites()) {
    const auto neighbors = nm.neighbors_of(site.id);
    EXPECT_LE(neighbors.size(), 6u);
    for (const SiteId n : neighbors) EXPECT_NE(n, site.id);
  }
  EXPECT_GT(nm.average_degree(), 4.0);
}

}  // namespace
}  // namespace tl::topology
