// Property tests over the HO state machine: for every combination of
// target RAT, SRVCC, and EN-DC, across many seeds, the signaling ladder
// must satisfy the Fig. 1 invariants.

#include <gtest/gtest.h>

#include <tuple>

#include "core_network/ho_state_machine.hpp"

namespace tl::corenet {
namespace {

using topology::ObservedRat;

struct Flavor {
  ObservedRat target;
  bool srvcc;
  bool endc;
};

class HoLadderProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {  // (flavor, seed)
 protected:
  static constexpr Flavor kFlavors[] = {
      {ObservedRat::kG45Nsa, false, false}, {ObservedRat::kG45Nsa, false, true},
      {ObservedRat::kG3, false, false},     {ObservedRat::kG3, true, false},
      {ObservedRat::kG2, false, false},
  };

  Flavor flavor() const { return kFlavors[std::get<0>(GetParam())]; }
  std::uint64_t seed() const { return static_cast<std::uint64_t>(std::get<1>(GetParam())); }
};

TEST_P(HoLadderProperty, LadderInvariantsHold) {
  FailureModel failure_model;
  DurationModel durations;
  CauseCatalog causes;
  HandoverProcedure procedure{failure_model, durations, causes};
  CoreNetwork core;

  devices::Ue ue;
  ue.id = 9;
  ue.srvcc_subscribed = true;
  ue.hof_multiplier = 3.0f;  // get a healthy mix of successes and failures

  util::Rng rng{seed()};
  const Flavor f = flavor();
  for (int i = 0; i < 300; ++i) {
    HoAttempt attempt;
    attempt.ue = &ue;
    attempt.source_sector = 5;
    attempt.target_sector = 6;
    attempt.target_rat = f.target;
    attempt.srvcc = f.srvcc;
    attempt.endc = f.endc;
    attempt.time = util::SimCalendar::at(i % 7, 0.5 + (i % 40) * 0.5);

    MessageTrace trace;
    const HoOutcome outcome = procedure.execute(attempt, core, rng, &trace);

    // 1. Every procedure starts with a Measurement Report, then a decision.
    ASSERT_GE(trace.size(), 3u);
    EXPECT_EQ(trace[0].type, MessageType::kMeasurementReport);
    EXPECT_EQ(trace[1].type, MessageType::kHoDecision);
    EXPECT_EQ(trace[2].type, MessageType::kHoRequired);

    // 2. Timestamps are nondecreasing and span exactly the signaling time.
    for (std::size_t m = 1; m < trace.size(); ++m) {
      EXPECT_GE(trace[m].time, trace[m - 1].time);
    }
    EXPECT_NEAR(static_cast<double>(trace.back().time - trace.front().time),
                outcome.duration_ms, 1.5);

    // 3. Success ends in UE Context Release; failure never does.
    if (outcome.success) {
      EXPECT_EQ(trace.back().type, MessageType::kUeContextRelease);
      EXPECT_EQ(outcome.cause, kCauseNone);
    } else {
      EXPECT_NE(trace.back().type, MessageType::kUeContextRelease);
      EXPECT_NE(outcome.cause, kCauseNone);
      EXPECT_GE(outcome.duration_ms, 0.0);
    }

    // 4. Inter-RAT flavors use Forward Relocation, never Path Switch;
    //    intra flavors the other way around (on success).
    bool has_fwd = false, has_path_switch = false, has_sgnb = false;
    for (const auto& m : trace) {
      has_fwd |= m.type == MessageType::kForwardRelocationRequest;
      has_path_switch |= m.type == MessageType::kPathSwitchRequest;
      has_sgnb |= m.type == MessageType::kSgNbReleaseRequest ||
                  m.type == MessageType::kSgNbAdditionRequest;
    }
    if (f.target != ObservedRat::kG45Nsa) {
      EXPECT_FALSE(has_path_switch);
      if (outcome.success) EXPECT_TRUE(has_fwd);
    } else if (outcome.success) {
      EXPECT_TRUE(has_path_switch);
      EXPECT_FALSE(has_fwd);
    }

    // 5. SgNB legs appear only on EN-DC procedures.
    if (!f.endc) EXPECT_FALSE(has_sgnb);
    if (f.endc && outcome.success) EXPECT_TRUE(has_sgnb);

    // 6. Every message carries the attempt's sector pair.
    for (const auto& m : trace) {
      EXPECT_EQ(m.source_sector, attempt.source_sector);
      EXPECT_EQ(m.target_sector, attempt.target_sector);
    }
  }
}

TEST_P(HoLadderProperty, CausesStayConsistentWithFlavor) {
  FailureModel failure_model;
  DurationModel durations;
  CauseCatalog causes;
  HandoverProcedure procedure{failure_model, durations, causes};
  CoreNetwork core;

  devices::Ue ue;
  ue.id = 10;
  ue.srvcc_subscribed = true;
  ue.hof_multiplier = 1e6f;  // force failures

  util::Rng rng{seed() ^ 0x55};
  const Flavor f = flavor();
  for (int i = 0; i < 200; ++i) {
    HoAttempt attempt;
    attempt.ue = &ue;
    attempt.target_rat = f.target;
    attempt.srvcc = f.srvcc;
    attempt.endc = f.endc;
    attempt.time = util::SimCalendar::at(0, 10.0);
    const HoOutcome outcome = procedure.execute(attempt, core, rng);
    if (outcome.success) continue;
    // SRVCC-specific causes require the SRVCC path.
    if (!f.srvcc) {
      EXPECT_NE(outcome.cause, kCause6SrvccNotSubscribed);
      EXPECT_NE(outcome.cause, kCause7PsToCsFailure);
    }
    // The cause is always describable.
    EXPECT_FALSE(causes.description(outcome.cause).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(FlavorsAndSeeds, HoLadderProperty,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 99)));

}  // namespace
}  // namespace tl::corenet
