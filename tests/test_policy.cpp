// Policy engine + A/B experiment tests: the calibrated-baseline byte-
// identity contract (golden stream/WAL CRCs from the pre-policy-engine
// pipeline, thread-count invariance, kill/resume), seed stability of the
// non-baseline policies, the per-neighbor penalty ring, the synthetic
// measurement feed, the tl_policy_* counters, the analysis ping-pong
// detector, and determinism of the experiment harness's reduced report.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/pingpong.hpp"
#include "core/simulator.hpp"
#include "experiment/ab_experiment.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "policy/measurements.hpp"
#include "policy/policies.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/sinks.hpp"
#include "util/crc32c.hpp"
#include "util/sim_time.hpp"

namespace tl {
namespace {

using core::DayCheckpoint;
using core::Simulator;
using core::StudyConfig;
using telemetry::DurableRecordSink;
using telemetry::RecordLog;

namespace fs = std::filesystem;

// The pre-PR pipeline's serial output at StudyConfig::test_scale() with a
// durable log attached, captured before the decision point moved behind
// HandoverPolicy. The baseline policy must reproduce these bytes forever.
constexpr std::uint64_t kGoldenRecords = 180'927;
constexpr std::uint32_t kGoldenStreamCrc = 0xd7c405c3;
constexpr std::uint32_t kGoldenWalCrc = 0x88a5c3d8;

/// CRC32C over the wire encoding of every record the simulator emits.
class ChecksumSink final : public telemetry::RecordSink {
 public:
  void consume(const telemetry::HandoverRecord& record) override {
    buffer_.clear();
    RecordLog::encode_record(record, buffer_);
    crc_.update(buffer_.data(), buffer_.size());
    ++records_;
  }
  std::uint32_t checksum() const noexcept { return crc_.value(); }
  std::uint64_t records() const noexcept { return records_; }

 private:
  util::Crc32c crc_;
  std::uint64_t records_ = 0;
  std::vector<std::uint8_t> buffer_;
};

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(::testing::TempDir() + "tl_policy_" + name) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::uint32_t wal_crc(const std::string& dir) {
  util::Crc32c crc;
  for (std::uint32_t seg = 0;; ++seg) {
    std::ifstream f{dir + "/" + RecordLog::segment_name(seg), std::ios::binary};
    if (!f) break;
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string bytes = ss.str();
    crc.update(bytes.data(), bytes.size());
  }
  return crc.value();
}

struct RunResult {
  std::uint64_t records = 0;
  std::uint32_t stream_crc = 0;
};

/// One full run from day 0 on a fresh simulator with `config`.
RunResult run_stream(const StudyConfig& config) {
  Simulator sim{config};
  ChecksumSink sink;
  sim.add_sink(&sink);
  sim.run();
  return {sink.records(), sink.checksum()};
}

// --- config / factory --------------------------------------------------------

TEST(PolicyConfig, NamesAndDefault) {
  EXPECT_EQ(policy::to_string(policy::PolicyKind::kCalibratedBaseline),
            "calibrated-baseline");
  EXPECT_EQ(policy::to_string(policy::PolicyKind::kSignalThreshold),
            "signal-threshold");
  EXPECT_EQ(policy::to_string(policy::PolicyKind::kLoadBalancing), "load-balancing");
  EXPECT_EQ(policy::to_string(policy::PolicyKind::kRatPreference), "rat-preference");
  // The default study runs the byte-identical baseline.
  EXPECT_EQ(StudyConfig{}.policy.kind, policy::PolicyKind::kCalibratedBaseline);
}

TEST(PolicyConfig, MakePolicyInstantiatesEveryKindAndRejectsUnknown) {
  policy::PolicyConfig cfg;
  for (const auto kind :
       {policy::PolicyKind::kCalibratedBaseline, policy::PolicyKind::kSignalThreshold,
        policy::PolicyKind::kLoadBalancing, policy::PolicyKind::kRatPreference}) {
    cfg.kind = kind;
    const auto p = policy::make_policy(cfg);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), policy::to_string(kind));
  }
  cfg.kind = static_cast<policy::PolicyKind>(250);
  EXPECT_THROW(policy::make_policy(cfg), std::invalid_argument);
}

// --- per-UE-day policy state -------------------------------------------------

TEST(UeDayState, PenaltyTimersExpireAndMissLookups) {
  policy::UeDayState state;
  EXPECT_FALSE(state.penalized(7, 0));
  state.add_penalty(7, 5'000);
  EXPECT_TRUE(state.penalized(7, 0));
  EXPECT_TRUE(state.penalized(7, 4'999));
  EXPECT_FALSE(state.penalized(7, 5'000));  // until is exclusive
  EXPECT_FALSE(state.penalized(8, 0));      // other sectors unaffected
}

TEST(UeDayState, PenaltyRingRecyclesTheOldestSlot) {
  policy::UeDayState state;
  for (std::uint32_t i = 0; i < policy::UeDayState::kPenaltySlots; ++i) {
    state.add_penalty(100 + i, 1'000'000);
  }
  EXPECT_TRUE(state.penalized(100, 0));
  // One more penalty overwrites the oldest entry (sector 100), nothing else.
  state.add_penalty(999, 1'000'000);
  EXPECT_FALSE(state.penalized(100, 0));
  EXPECT_TRUE(state.penalized(101, 0));
  EXPECT_TRUE(state.penalized(999, 0));
}

TEST(UeDayState, BeginUeDayDerivesAPrivateStreamPerUeAndDay) {
  const auto cfg = StudyConfig::test_scale();
  Simulator sim{cfg};
  const auto policy = policy::make_policy(policy::PolicyConfig{});
  policy::UeDayState a, b, c;
  policy->begin_ue_day(sim.policy_env(), sim.population().ue(0), 0, a);
  policy->begin_ue_day(sim.policy_env(), sim.population().ue(0), 0, b);
  policy->begin_ue_day(sim.policy_env(), sim.population().ue(0), 1, c);
  // Same (seed, ue, day) → the same stream; a different day → a different one.
  EXPECT_EQ(a.rng.uniform(), b.rng.uniform());
  policy::UeDayState a2;
  policy->begin_ue_day(sim.policy_env(), sim.population().ue(0), 0, a2);
  EXPECT_NE(a2.rng.uniform(), c.rng.uniform());
}

// --- synthetic measurements --------------------------------------------------

TEST(Measurements, PureFunctionOfSeedSectorUeDayBin) {
  const auto cfg = StudyConfig::test_scale();
  Simulator sim{cfg};
  const policy::PolicyEnv& env = sim.policy_env();
  const auto& sector = sim.deployment().sectors().front();
  const auto& site = sim.deployment().site(sector.site);

  policy::HoOpportunity opp;
  opp.ue = &sim.population().ue(0);
  opp.position = site.location;
  opp.day = 0;
  opp.bin = 10;

  const double at_site = policy::measured_rsrp_dbm(env, opp, sector.id);
  EXPECT_EQ(at_site, policy::measured_rsrp_dbm(env, opp, sector.id));

  // A different half-hour bin re-keys the shadowing term.
  policy::HoOpportunity other_bin = opp;
  other_bin.bin = 11;
  EXPECT_NE(at_site, policy::measured_rsrp_dbm(env, other_bin, sector.id));

  // 50 km of distance decays far more than shadowing can mask (~56 dB vs
  // at most 8 dB of spread).
  policy::HoOpportunity far = opp;
  far.position.x_km += 50.0;
  EXPECT_LT(policy::measured_rsrp_dbm(env, far, sector.id), at_site - 20.0);

  // RSRQ proxy stays in a sane LTE-ish band.
  const ran::CellMeasurement m = policy::measure_cell(env, opp, sector.id);
  EXPECT_EQ(m.rsrp_dbm, at_site);
  EXPECT_LE(m.rsrq_db, -10.0 + 1e-9);
  EXPECT_GE(m.rsrq_db, -18.0 - 1e-9);
}

// --- baseline byte identity --------------------------------------------------

TEST(BaselineByteIdentity, GoldenSerialStreamAndWalBytes) {
  StudyConfig cfg = StudyConfig::test_scale();
  ASSERT_EQ(cfg.threads, 1u);

  TempDir dir{"golden"};
  RecordLog::Options opt;
  opt.directory = dir.path;
  RecordLog log{io::StdioFileSystem::instance(), opt};
  DurableRecordSink durable{log};

  Simulator sim{cfg};
  ChecksumSink sink;
  sim.add_sink(&sink);
  sim.attach_durable_log(&durable);
  sim.run();

  EXPECT_EQ(sink.records(), kGoldenRecords);
  EXPECT_EQ(sink.checksum(), kGoldenStreamCrc);
  EXPECT_EQ(wal_crc(dir.path), kGoldenWalCrc);
}

TEST(BaselineByteIdentity, ThreadSweepReproducesTheGoldenBytes) {
  StudyConfig cfg = StudyConfig::test_scale();
  Simulator sim{cfg};
  DayCheckpoint day0;
  day0.seed = cfg.seed;

  for (const unsigned threads : {1u, 2u, 4u, 0u}) {  // 0 = all hardware
    TempDir dir{"sweep_" + std::to_string(threads)};
    RecordLog::Options opt;
    opt.directory = dir.path;
    RecordLog log{io::StdioFileSystem::instance(), opt};
    DurableRecordSink durable{log};

    sim.set_threads(threads);
    sim.restore(day0);
    ChecksumSink sink;
    sim.add_sink(&sink);
    sim.attach_durable_log(&durable);
    sim.run();
    sim.remove_sink(&durable);
    sim.remove_sink(&sink);

    EXPECT_EQ(sink.records(), kGoldenRecords) << threads << " threads";
    EXPECT_EQ(sink.checksum(), kGoldenStreamCrc) << threads << " threads";
    EXPECT_EQ(wal_crc(dir.path), kGoldenWalCrc) << threads << " threads";
  }
}

/// Kill after day 0's durable commit, resume in a fresh process image; the
/// final WAL must match the uninterrupted run under `config`. Returns the
/// resumed WAL's CRC.
std::uint32_t kill_resume_wal_crc(const StudyConfig& config) {
  auto& real = io::StdioFileSystem::instance();
  TempDir dir{"kill_resume"};
  RecordLog::Options opt;
  opt.directory = dir.path;

  {
    RecordLog log{real, opt};
    log.open();  // run() opens lazily; a bare run_day does not
    DurableRecordSink durable{log};
    Simulator sim{config};
    sim.attach_durable_log(&durable);
    sim.run_day(0);
    EXPECT_EQ(log.last_committed_day(), 0);
    // Simulator and log destroyed here: the "kill". Day 0 is on disk.
  }
  {
    RecordLog log{real, opt};
    DurableRecordSink durable{log};
    Simulator sim{config};
    sim.attach_durable_log(&durable);
    // run() recovers from the log's last committed marker and resumes at
    // day 1; a replayed day 0 would duplicate its bytes and break the CRC.
    sim.run();
    EXPECT_EQ(log.last_committed_day(), config.days - 1);
    EXPECT_EQ(sim.next_day(), config.days);
  }
  return wal_crc(dir.path);
}

TEST(BaselineByteIdentity, KillResumeReproducesTheGoldenWal) {
  EXPECT_EQ(kill_resume_wal_crc(StudyConfig::test_scale()), kGoldenWalCrc);
}

TEST(PolicyDeterminism, KillResumeHoldsForNonBaselinePolicies) {
  // Per-UE-day policy state keeps days independent replay units, so the
  // kill/resume contract must hold under *any* policy, not just baseline.
  StudyConfig cfg = StudyConfig::test_scale();
  cfg.policy.kind = policy::PolicyKind::kSignalThreshold;

  TempDir ref_dir{"st_ref"};
  RecordLog::Options opt;
  opt.directory = ref_dir.path;
  {
    RecordLog log{io::StdioFileSystem::instance(), opt};
    DurableRecordSink durable{log};
    Simulator sim{cfg};
    sim.attach_durable_log(&durable);
    sim.run();
  }
  EXPECT_EQ(kill_resume_wal_crc(cfg), wal_crc(ref_dir.path));
}

// --- non-baseline determinism ------------------------------------------------

TEST(PolicyDeterminism, NonBaselinePoliciesAreSeedStableAndDistinct) {
  for (const auto kind :
       {policy::PolicyKind::kSignalThreshold, policy::PolicyKind::kLoadBalancing,
        policy::PolicyKind::kRatPreference}) {
    StudyConfig cfg = StudyConfig::test_scale();
    cfg.policy.kind = kind;
    const RunResult first = run_stream(cfg);
    SCOPED_TRACE(policy::to_string(kind));
    ASSERT_GT(first.records, 0u);

    // Same seed → the same stream, run to run and at any thread count.
    EXPECT_EQ(run_stream(cfg).stream_crc, first.stream_crc);
    StudyConfig threaded = cfg;
    threaded.threads = 2;
    const RunResult sharded = run_stream(threaded);
    EXPECT_EQ(sharded.records, first.records);
    EXPECT_EQ(sharded.stream_crc, first.stream_crc);

    // The policy actually changes the stream, and the stream follows the seed.
    EXPECT_NE(first.stream_crc, kGoldenStreamCrc);
    StudyConfig reseeded = cfg;
    reseeded.seed = cfg.seed + 1;
    reseeded.finalize();
    reseeded.population.count = cfg.population.count;
    EXPECT_NE(run_stream(reseeded).stream_crc, first.stream_crc);
  }
}

TEST(PolicyObservability, CountersAccountForEveryDecision) {
  obs::MetricsRegistry registry;
  obs::ScopedGlobalRegistry install{&registry};

  StudyConfig cfg = StudyConfig::test_scale();
  Simulator sim{cfg};
  sim.run();

  const obs::MetricsSnapshot snap = registry.scrape();
  const auto count = [&snap](const char* name) {
    const auto* c = snap.find_counter(name);
    return c == nullptr ? 0ull : c->value;
  };
  const std::uint64_t handovers = count("tl_policy_handovers_total");
  // Recovery is off at test scale: one record per commanded handover.
  EXPECT_EQ(handovers, sim.records_emitted());
  EXPECT_EQ(count("tl_policy_decisions_total"),
            handovers + count("tl_policy_holds_total"));
  EXPECT_EQ(count("tl_policy_overrides_total"), 0u);  // baseline never diverges
}

TEST(PolicyObservability, LoadBalancingReportsItsDiversions) {
  obs::MetricsRegistry registry;
  obs::ScopedGlobalRegistry install{&registry};

  StudyConfig cfg = StudyConfig::test_scale();
  cfg.policy.kind = policy::PolicyKind::kLoadBalancing;
  Simulator sim{cfg};
  sim.run();

  const obs::MetricsSnapshot snap = registry.scrape();
  const auto* overrides = snap.find_counter("tl_policy_overrides_total");
  ASSERT_NE(overrides, nullptr);
  EXPECT_GT(overrides->value, 0u);
}

// --- ping-pong detector ------------------------------------------------------

TEST(PingPongDetector, RejectsBadConstruction) {
  EXPECT_THROW(analysis::PingPongDetector(-1, 4), std::invalid_argument);
  EXPECT_THROW(analysis::PingPongDetector(5'000, 0), std::invalid_argument);
}

TEST(PingPongDetector, CountsAReverseHopInsideTheWindow) {
  analysis::PingPongDetector det{5'000};
  EXPECT_FALSE(det.observe({1, 1'000, 10, 20}));
  EXPECT_TRUE(det.observe({1, 5'999, 20, 10}));
  EXPECT_EQ(det.hops(), 2u);
  EXPECT_EQ(det.ping_pongs(), 1u);
  EXPECT_EQ(det.bouncing_ues(), 1u);
  EXPECT_DOUBLE_EQ(det.rate(), 0.5);
}

TEST(PingPongDetector, IgnoresAReverseHopOutsideTheWindow) {
  analysis::PingPongDetector det{5'000};
  EXPECT_FALSE(det.observe({1, 1'000, 10, 20}));
  EXPECT_FALSE(det.observe({1, 6'001, 20, 10}));  // 5'001 ms later
  EXPECT_EQ(det.ping_pongs(), 0u);
  EXPECT_EQ(det.bouncing_ues(), 0u);
}

TEST(PingPongDetector, BoundaryIsInclusive) {
  analysis::PingPongDetector det{5'000};
  EXPECT_FALSE(det.observe({1, 0, 10, 20}));
  EXPECT_TRUE(det.observe({1, 5'000, 20, 10}));
}

TEST(PingPongDetector, EachAnchorIsConsumedOnce) {
  // A→B→A→B: the middle B→A anchors on the first A→B, the final A→B anchors
  // on B→A — two ping-pongs, not three.
  analysis::PingPongDetector det{10'000};
  EXPECT_FALSE(det.observe({1, 0, 1, 2}));
  EXPECT_TRUE(det.observe({1, 1'000, 2, 1}));
  EXPECT_TRUE(det.observe({1, 2'000, 1, 2}));
  EXPECT_EQ(det.ping_pongs(), 2u);

  // A second reverse hop cannot reuse the consumed anchor.
  analysis::PingPongDetector det2{10'000};
  EXPECT_FALSE(det2.observe({1, 0, 1, 2}));
  EXPECT_TRUE(det2.observe({1, 1'000, 2, 1}));
  EXPECT_FALSE(det2.observe({1, 1'500, 2, 1}));  // same direction, no anchor
  EXPECT_EQ(det2.ping_pongs(), 1u);
}

TEST(PingPongDetector, UesAreIndependent) {
  analysis::PingPongDetector det{5'000};
  EXPECT_FALSE(det.observe({1, 0, 10, 20}));
  EXPECT_FALSE(det.observe({2, 1'000, 20, 10}));  // other UE: no bounce
  EXPECT_TRUE(det.observe({1, 2'000, 20, 10}));
  EXPECT_EQ(det.bouncing_ues(), 1u);
}

TEST(PingPongDetector, HistoryDepthBoundsTheLookback) {
  // Depth 1: the unrelated hop evicts A→B, so the reverse finds no anchor.
  analysis::PingPongDetector det{60'000, 1};
  EXPECT_FALSE(det.observe({1, 0, 1, 2}));
  EXPECT_FALSE(det.observe({1, 100, 3, 4}));
  EXPECT_FALSE(det.observe({1, 200, 2, 1}));
  EXPECT_EQ(det.ping_pongs(), 0u);

  // Depth 2 keeps both and finds it.
  analysis::PingPongDetector det2{60'000, 2};
  EXPECT_FALSE(det2.observe({1, 0, 1, 2}));
  EXPECT_FALSE(det2.observe({1, 100, 3, 4}));
  EXPECT_TRUE(det2.observe({1, 200, 2, 1}));
}

TEST(PingPongDetector, ResetDropsHistoryAndCounters) {
  analysis::PingPongDetector det{5'000};
  det.observe({1, 0, 10, 20});
  det.observe({1, 100, 20, 10});
  ASSERT_EQ(det.ping_pongs(), 1u);
  det.reset();
  EXPECT_EQ(det.hops(), 0u);
  EXPECT_EQ(det.ping_pongs(), 0u);
  EXPECT_EQ(det.bouncing_ues(), 0u);
  EXPECT_DOUBLE_EQ(det.rate(), 0.0);
  // Pre-reset hops no longer anchor anything.
  EXPECT_FALSE(det.observe({1, 200, 20, 10}));
}

// --- A/B experiment harness --------------------------------------------------

experiment::ExperimentConfig ab_config() {
  experiment::ExperimentConfig cfg;
  cfg.study = StudyConfig::test_scale();
  cfg.study.threads = 0;
  cfg.policy_a.kind = policy::PolicyKind::kCalibratedBaseline;
  cfg.policy_b.kind = policy::PolicyKind::kLoadBalancing;
  cfg.label_a = "baseline";
  cfg.label_b = "load-balancing";
  return cfg;
}

std::string serialized(const experiment::ExperimentReport& report) {
  std::ostringstream os;
  report.serialize(os);
  return os.str();
}

TEST(AbExperiment, BaselineArmMatchesTheGoldenStream) {
  experiment::ExperimentConfig cfg = ab_config();
  cfg.policy_b = cfg.policy_a;  // baseline vs baseline
  const auto report = experiment::AbExperiment{cfg}.run();

  // Arm A runs the default policy on the default world: the golden stream.
  EXPECT_EQ(report.a.records, kGoldenRecords);
  EXPECT_EQ(report.a.stream_crc, kGoldenStreamCrc);

  // Identical arms reduce identically — the null experiment is exactly null.
  EXPECT_EQ(report.b.records, report.a.records);
  EXPECT_EQ(report.b.stream_crc, report.a.stream_crc);
  EXPECT_EQ(report.b.failures, report.a.failures);
  EXPECT_EQ(report.b.ping_pongs, report.a.ping_pongs);
  EXPECT_EQ(report.b.cause_buckets, report.a.cause_buckets);
  EXPECT_DOUBLE_EQ(
      experiment::ExperimentReport::delta_pct(report.a.hof_rate(), report.b.hof_rate()),
      0.0);
}

TEST(AbExperiment, ReportIsDeterministicAcrossRunsAndThreadCounts) {
  const std::string first = serialized(experiment::AbExperiment{ab_config()}.run());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(serialized(experiment::AbExperiment{ab_config()}.run()), first);

  experiment::ExperimentConfig serial = ab_config();
  serial.study.threads = 1;
  EXPECT_EQ(serialized(experiment::AbExperiment{serial}.run()), first);
}

TEST(AbExperiment, LoadBalancingShrinksTheRuralPeakHourSpike) {
  const auto report = experiment::AbExperiment{ab_config()}.run();

  // The headline claims ab_study prints, pinned as regressions: load-aware
  // target re-selection must keep beating the baseline on the rural
  // peak-hour HOF rate, with the →3G share moving (quantifiably) too.
  EXPECT_GT(report.a.failures, 0u);
  EXPECT_LT(report.b.hof_rate(), report.a.hof_rate());
  const auto rural = report.peak_hour_diff(geo::AreaType::kRural);
  EXPECT_LT(rural.b_rate, rural.a_rate);
  EXPECT_NE(report.b.share_to(topology::ObservedRat::kG3),
            report.a.share_to(topology::ObservedRat::kG3));
}

}  // namespace
}  // namespace tl
