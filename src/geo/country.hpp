#pragma once

// The synthesized country: districts, postcodes, and lookups over them.

#include <cstdint>
#include <span>
#include <vector>

#include "geo/district.hpp"
#include "geo/region.hpp"

namespace tl::geo {

class Country {
 public:
  Country(std::vector<District> districts, std::vector<Postcode> postcodes,
          double width_km, double height_km);

  std::span<const District> districts() const noexcept { return districts_; }
  std::span<const Postcode> postcodes() const noexcept { return postcodes_; }

  const District& district(DistrictId id) const { return districts_.at(id); }
  const Postcode& postcode(PostcodeId id) const { return postcodes_.at(id); }
  const District& district_of(const Postcode& pc) const { return districts_.at(pc.district); }

  double width_km() const noexcept { return width_km_; }
  double height_km() const noexcept { return height_km_; }

  std::uint64_t total_population() const noexcept { return total_population_; }
  double total_area_km2() const noexcept { return total_area_km2_; }

  /// Fraction of territory covered by urban postcodes (paper: 49.6%).
  double urban_territory_share() const noexcept { return urban_area_km2_ / total_area_km2_; }
  /// Fraction of residents living in urban postcodes.
  double urban_population_share() const noexcept;

  /// The district with the largest population density (the capital centre).
  DistrictId densest_district() const noexcept { return densest_district_; }

 private:
  std::vector<District> districts_;
  std::vector<Postcode> postcodes_;
  double width_km_;
  double height_km_;
  std::uint64_t total_population_ = 0;
  double total_area_km2_ = 0.0;
  double urban_area_km2_ = 0.0;
  std::uint64_t urban_population_ = 0;
  DistrictId densest_district_ = 0;
};

}  // namespace tl::geo
