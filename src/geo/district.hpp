#pragma once

// Districts and postcodes: the geographic units of the census office.
//
// The paper aggregates at two granularities — 300+ districts (Figs. 5, 6, 9,
// 11) and postcode-level urban/rural classes (>10k residents = urban, §3.2).

#include <cstdint>
#include <string>
#include <vector>

#include "geo/region.hpp"
#include "util/geo_point.hpp"

namespace tl::geo {

using DistrictId = std::uint32_t;
using PostcodeId = std::uint32_t;

enum class AreaType : std::uint8_t {
  kRural = 0,
  kUrban = 1,
};

constexpr std::string_view to_string(AreaType a) noexcept {
  return a == AreaType::kUrban ? "Urban" : "Rural";
}

/// Census threshold: postcodes with more than 10k residents are urban.
inline constexpr std::uint32_t kUrbanResidentThreshold = 10'000;

struct Postcode {
  PostcodeId id = 0;
  DistrictId district = 0;
  std::uint32_t residents = 0;
  double area_km2 = 0.0;
  tl::util::GeoPoint centroid;
  /// ~3.1% of postcodes lack reliable census information (§5.1 footnote);
  /// geo-temporal analyses drop them and the HOF models treat their area
  /// class as unknown.
  bool census_reliable = true;

  AreaType area_type() const noexcept {
    return residents > kUrbanResidentThreshold ? AreaType::kUrban : AreaType::kRural;
  }

  double population_density() const noexcept {
    return area_km2 > 0.0 ? static_cast<double>(residents) / area_km2 : 0.0;
  }
};

struct District {
  DistrictId id = 0;
  std::string name;
  Region region = Region::kNorth;
  std::uint64_t population = 0;
  double area_km2 = 0.0;
  tl::util::GeoPoint centroid;
  std::vector<PostcodeId> postcodes;

  double population_density() const noexcept {
    return area_km2 > 0.0 ? static_cast<double>(population) / area_km2 : 0.0;
  }
};

}  // namespace tl::geo
