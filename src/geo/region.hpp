#pragma once

// The four sector regions used as a regression covariate (Table 3):
// West, South, North, and the Capital area.

#include <array>
#include <cstdint>
#include <string_view>

namespace tl::geo {

enum class Region : std::uint8_t {
  kCapital = 0,
  kNorth,
  kSouth,
  kWest,
};

inline constexpr std::array<Region, 4> kAllRegions{Region::kCapital, Region::kNorth,
                                                   Region::kSouth, Region::kWest};

constexpr std::string_view to_string(Region r) noexcept {
  switch (r) {
    case Region::kCapital: return "Capital area";
    case Region::kNorth: return "North";
    case Region::kSouth: return "South";
    case Region::kWest: return "West";
  }
  return "?";
}

}  // namespace tl::geo
