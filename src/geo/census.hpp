#pragma once

// Synthetic census office.
//
// Generates a country whose geodemographics match what the paper reports
// about the studied one: 300+ districts, a dominant capital, population
// densities spanning four orders of magnitude, and an urban/rural postcode
// split in which urban postcodes hold most residents while covering roughly
// half the territory (49.6% in the paper).

#include <cstdint>
#include <vector>

#include "geo/country.hpp"

namespace tl::geo {

struct CensusConfig {
  std::uint32_t districts = 320;
  std::uint64_t total_population = 47'000'000;
  double country_width_km = 1000.0;
  double country_height_km = 850.0;
  /// Rank-size exponent for district populations (Zipf's law for cities).
  double zipf_exponent = 1.05;
  /// Share of territory that urban postcodes should cover (paper: 49.6%).
  double urban_territory_share = 0.496;
  std::uint64_t seed = 7;
};

/// Builds the synthetic country; deterministic given the config.
Country synthesize_country(const CensusConfig& config);

}  // namespace tl::geo
