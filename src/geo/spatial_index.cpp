#include "geo/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::geo {

using tl::util::GeoPoint;

SpatialIndex::SpatialIndex(double width_km, double height_km, double cell_km)
    : width_km_(width_km), height_km_(height_km), cell_km_(cell_km) {
  if (width_km <= 0 || height_km <= 0 || cell_km <= 0) {
    throw std::invalid_argument{"SpatialIndex: non-positive dimension"};
  }
  nx_ = std::max(1, static_cast<int>(std::ceil(width_km / cell_km)));
  ny_ = std::max(1, static_cast<int>(std::ceil(height_km / cell_km)));
  cells_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
}

std::size_t SpatialIndex::cell_of(const GeoPoint& p) const noexcept {
  int cx = static_cast<int>(p.x_km / cell_km_);
  int cy = static_cast<int>(p.y_km / cell_km_);
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
         static_cast<std::size_t>(cx);
}

void SpatialIndex::insert(const GeoPoint& p, std::uint32_t item) {
  cells_[cell_of(p)].push_back({p, item});
  ++count_;
}

void SpatialIndex::cells_in_ring(int cx, int cy, int ring,
                                 std::vector<std::size_t>& out) const {
  const auto push = [&](int x, int y) {
    if (x >= 0 && x < nx_ && y >= 0 && y < ny_) {
      out.push_back(static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_) +
                    static_cast<std::size_t>(x));
    }
  };
  if (ring == 0) {
    push(cx, cy);
    return;
  }
  for (int x = cx - ring; x <= cx + ring; ++x) {
    push(x, cy - ring);
    push(x, cy + ring);
  }
  for (int y = cy - ring + 1; y <= cy + ring - 1; ++y) {
    push(cx - ring, y);
    push(cx + ring, y);
  }
}

std::vector<std::uint32_t> SpatialIndex::query_radius(const GeoPoint& p,
                                                      double radius_km) const {
  std::vector<std::uint32_t> out;
  const int cx = std::clamp(static_cast<int>(p.x_km / cell_km_), 0, nx_ - 1);
  const int cy = std::clamp(static_cast<int>(p.y_km / cell_km_), 0, ny_ - 1);
  const int max_ring = static_cast<int>(std::ceil(radius_km / cell_km_)) + 1;
  const double r2 = radius_km * radius_km;
  std::vector<std::size_t> ring_cells;
  for (int ring = 0; ring <= max_ring; ++ring) {
    ring_cells.clear();
    cells_in_ring(cx, cy, ring, ring_cells);
    for (const std::size_t c : ring_cells) {
      for (const Entry& e : cells_[c]) {
        if (tl::util::squared_distance_km2(e.point, p) <= r2) out.push_back(e.item);
      }
    }
  }
  return out;
}

std::uint32_t SpatialIndex::nearest(const GeoPoint& p) const {
  const auto result = nearest_k(p, 1);
  return result.empty() ? kNotFound : result.front();
}

std::vector<std::uint32_t> SpatialIndex::nearest_k(const GeoPoint& p, std::size_t k) const {
  std::vector<std::pair<double, std::uint32_t>> found;  // (squared distance, item)
  if (count_ == 0 || k == 0) return {};
  const int cx = std::clamp(static_cast<int>(p.x_km / cell_km_), 0, nx_ - 1);
  const int cy = std::clamp(static_cast<int>(p.y_km / cell_km_), 0, ny_ - 1);
  const int max_ring = std::max(nx_, ny_);
  std::vector<std::size_t> ring_cells;
  int settled_ring = -1;
  for (int ring = 0; ring <= max_ring; ++ring) {
    ring_cells.clear();
    cells_in_ring(cx, cy, ring, ring_cells);
    for (const std::size_t c : ring_cells) {
      for (const Entry& e : cells_[c]) {
        found.emplace_back(tl::util::squared_distance_km2(e.point, p), e.item);
      }
    }
    if (found.size() >= k && settled_ring < 0) {
      // Entries one ring further out may still be closer than the farthest
      // candidate (grid cells are square); search exactly one more ring.
      settled_ring = ring + 1;
    }
    if (settled_ring >= 0 && ring >= settled_ring) break;
  }
  std::sort(found.begin(), found.end());
  std::vector<std::uint32_t> out;
  out.reserve(std::min(k, found.size()));
  for (std::size_t i = 0; i < found.size() && i < k; ++i) out.push_back(found[i].second);
  return out;
}

}  // namespace tl::geo
