#include "geo/census.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace tl::geo {

namespace {

using tl::util::GeoPoint;
using tl::util::Rng;

std::string district_name(std::uint32_t rank) {
  if (rank == 0) return "Capital-Centre";
  char buf[32];
  std::snprintf(buf, sizeof buf, "District-%03u", rank);
  return buf;
}

Region classify_region(const GeoPoint& p, const GeoPoint& capital, double width_km,
                       double height_km) {
  // The capital area is a disc around the capital centre; the rest of the
  // country splits into West (left band), then North/South by latitude.
  const double capital_radius = 0.11 * std::min(width_km, height_km);
  if (tl::util::distance_km(p, capital) < capital_radius) return Region::kCapital;
  if (p.x_km < 0.33 * width_km) return Region::kWest;
  return p.y_km >= 0.5 * height_km ? Region::kNorth : Region::kSouth;
}

}  // namespace

Country synthesize_country(const CensusConfig& config) {
  if (config.districts < 10) throw std::invalid_argument{"synthesize_country: too few districts"};
  if (config.total_population < config.districts * 100) {
    throw std::invalid_argument{"synthesize_country: population too small"};
  }

  Rng rng = Rng::derive(config.seed, 0xce45u);
  const std::uint32_t n = config.districts;

  // --- District populations: rank-size (Zipf) law. -------------------------
  tl::util::Zipf zipf{n, config.zipf_exponent};
  std::vector<double> pop_share(n);
  for (std::uint32_t i = 0; i < n; ++i) pop_share[i] = zipf.pmf(i);

  // --- Spatial layout. ------------------------------------------------------
  const GeoPoint capital{config.country_width_km * 0.52, config.country_height_km * 0.48};
  std::vector<District> districts(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    District& d = districts[i];
    d.id = i;
    d.name = district_name(i);
    d.population = static_cast<std::uint64_t>(
        pop_share[i] * static_cast<double>(config.total_population));
    if (d.population == 0) d.population = 100;
    if (i == 0) {
      d.centroid = capital;
    } else if (i < 12) {
      // Populous districts ring the capital (metropolitan belt).
      const double angle = rng.uniform(0.0, 2.0 * M_PI);
      const double radius = rng.uniform(15.0, 0.1 * config.country_width_km);
      d.centroid = {capital.x_km + radius * std::cos(angle),
                    capital.y_km + radius * std::sin(angle)};
    } else {
      d.centroid = {rng.uniform(0.02, 0.98) * config.country_width_km,
                    rng.uniform(0.02, 0.98) * config.country_height_km};
    }
    d.region = classify_region(d.centroid, capital, config.country_width_km,
                               config.country_height_km);
  }

  // --- District areas: the country partitions exactly; dense districts are
  // small (capital centre), sparse ones sprawl. ------------------------------
  const double total_area = config.country_width_km * config.country_height_km;
  std::vector<double> area_weight(n);
  double weight_sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double noise = std::exp(rng.normal(0.0, 0.55));
    area_weight[i] = std::pow(pop_share[i], -0.22) * noise;
    weight_sum += area_weight[i];
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    districts[i].area_km2 = area_weight[i] / weight_sum * total_area;
  }

  // --- Postcodes. -----------------------------------------------------------
  std::vector<Postcode> postcodes;
  for (auto& d : districts) {
    // Mean postcode size ~12k residents; at least 3 per district.
    const auto n_postcodes = static_cast<std::uint32_t>(std::clamp<double>(
        std::round(static_cast<double>(d.population) / 12'000.0), 3.0, 400.0));

    // Split population with exponential (Dirichlet(1)) weights skewed so a
    // couple of town-centre postcodes dominate in rural districts too.
    std::vector<double> weights(n_postcodes);
    double wsum = 0.0;
    for (auto& w : weights) {
      w = rng.exponential(1.0) + (rng.chance(0.15) ? rng.exponential(0.3) : 0.0);
      wsum += w;
    }

    const double district_radius = std::sqrt(d.area_km2 / M_PI);
    std::uint64_t residents_left = d.population;
    for (std::uint32_t j = 0; j < n_postcodes; ++j) {
      Postcode pc;
      pc.id = static_cast<PostcodeId>(postcodes.size());
      pc.district = d.id;
      if (j + 1 == n_postcodes) {
        pc.residents = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(residents_left, 0xffffffffULL));
      } else {
        const auto share = static_cast<std::uint64_t>(
            weights[j] / wsum * static_cast<double>(d.population));
        pc.residents = static_cast<std::uint32_t>(std::min(share, residents_left));
      }
      residents_left -= pc.residents;
      pc.census_reliable = !rng.chance(0.031);
      pc.centroid = {d.centroid.x_km + rng.normal(0.0, district_radius / 2.2),
                     d.centroid.y_km + rng.normal(0.0, district_radius / 2.2)};
      pc.centroid.x_km = std::clamp(pc.centroid.x_km, 0.0, config.country_width_km);
      pc.centroid.y_km = std::clamp(pc.centroid.y_km, 0.0, config.country_height_km);
      postcodes.push_back(pc);
    }

    // Postcode areas: sublinear in residents so town postcodes are compact.
    const std::size_t first = postcodes.size() - n_postcodes;
    double area_sum = 0.0;
    std::vector<double> raw(n_postcodes);
    for (std::uint32_t j = 0; j < n_postcodes; ++j) {
      raw[j] = std::pow(static_cast<double>(postcodes[first + j].residents) + 50.0, 0.35) *
               std::exp(rng.normal(0.0, 0.3));
      area_sum += raw[j];
    }
    for (std::uint32_t j = 0; j < n_postcodes; ++j) {
      postcodes[first + j].area_km2 = raw[j] / area_sum * d.area_km2;
    }
    d.postcodes.resize(n_postcodes);
    for (std::uint32_t j = 0; j < n_postcodes; ++j) {
      d.postcodes[j] = static_cast<PostcodeId>(first + j);
    }
  }

  // --- Calibrate the urban territory share to the configured target by
  // shifting area between urban and rural postcodes within each district
  // (keeps district areas exact). --------------------------------------------
  double urban_area = 0.0;
  double rural_area = 0.0;
  for (const auto& pc : postcodes) {
    (pc.area_type() == AreaType::kUrban ? urban_area : rural_area) += pc.area_km2;
  }
  if (urban_area > 0.0 && rural_area > 0.0) {
    const double total = urban_area + rural_area;
    const double f_urban = config.urban_territory_share * total / urban_area;
    const double f_rural = (1.0 - config.urban_territory_share) * total / rural_area;
    for (auto& d : districts) {
      double u = 0.0;
      double r = 0.0;
      for (const PostcodeId id : d.postcodes) {
        (postcodes[id].area_type() == AreaType::kUrban ? u : r) += postcodes[id].area_km2;
      }
      if (u == 0.0 || r == 0.0) continue;  // single-class district: leave as is
      // Local blend of the global factors, renormalized to the district area.
      const double scaled = u * f_urban + r * f_rural;
      const double renorm = (u + r) / scaled;
      for (const PostcodeId id : d.postcodes) {
        auto& pc = postcodes[id];
        pc.area_km2 *= (pc.area_type() == AreaType::kUrban ? f_urban : f_rural) * renorm;
      }
    }
  }

  return Country{std::move(districts), std::move(postcodes), config.country_width_km,
                 config.country_height_km};
}

}  // namespace tl::geo
