#pragma once

// Uniform-grid spatial index over the country plane.
//
// The trace generator issues millions of "which sites are near this UE"
// queries; a fixed grid with ~cell-sized buckets answers them in O(1)
// expected time without any balancing machinery.

#include <cstdint>
#include <vector>

#include "util/geo_point.hpp"

namespace tl::geo {

class SpatialIndex {
 public:
  /// Grid covering [0,width] x [0,height] with roughly `cell_km` cells.
  SpatialIndex(double width_km, double height_km, double cell_km);

  void insert(const tl::util::GeoPoint& p, std::uint32_t item);

  /// All items within `radius_km` of `p` (exact post-filter).
  std::vector<std::uint32_t> query_radius(const tl::util::GeoPoint& p,
                                          double radius_km) const;

  /// The nearest item to `p`, expanding the search ring until found.
  /// Returns kNotFound when the index is empty.
  std::uint32_t nearest(const tl::util::GeoPoint& p) const;

  /// Up to `k` nearest items, ordered by distance.
  std::vector<std::uint32_t> nearest_k(const tl::util::GeoPoint& p, std::size_t k) const;

  std::size_t size() const noexcept { return count_; }

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

 private:
  struct Entry {
    tl::util::GeoPoint point;
    std::uint32_t item;
  };

  std::size_t cell_of(const tl::util::GeoPoint& p) const noexcept;
  void cells_in_ring(int cx, int cy, int ring, std::vector<std::size_t>& out) const;

  double width_km_;
  double height_km_;
  double cell_km_;
  int nx_;
  int ny_;
  std::vector<std::vector<Entry>> cells_;
  std::size_t count_ = 0;
};

}  // namespace tl::geo
