#include "geo/country.hpp"

#include <stdexcept>

namespace tl::geo {

Country::Country(std::vector<District> districts, std::vector<Postcode> postcodes,
                 double width_km, double height_km)
    : districts_(std::move(districts)),
      postcodes_(std::move(postcodes)),
      width_km_(width_km),
      height_km_(height_km) {
  if (districts_.empty() || postcodes_.empty()) {
    throw std::invalid_argument{"Country: needs districts and postcodes"};
  }
  double best_density = -1.0;
  for (const auto& d : districts_) {
    total_population_ += d.population;
    total_area_km2_ += d.area_km2;
    if (d.population_density() > best_density) {
      best_density = d.population_density();
      densest_district_ = d.id;
    }
  }
  for (const auto& pc : postcodes_) {
    if (pc.area_type() == AreaType::kUrban) {
      urban_area_km2_ += pc.area_km2;
      urban_population_ += pc.residents;
    }
  }
  if (total_area_km2_ <= 0.0) throw std::invalid_argument{"Country: zero area"};
}

double Country::urban_population_share() const noexcept {
  return total_population_ > 0
             ? static_cast<double>(urban_population_) / static_cast<double>(total_population_)
             : 0.0;
}

}  // namespace tl::geo
