#include "experiment/ab_experiment.hpp"

#include <cstdio>
#include <ostream>

#include "analysis/pingpong.hpp"
#include "core/simulator.hpp"
#include "telemetry/record_log.hpp"
#include "util/crc32c.hpp"
#include "util/sim_time.hpp"

namespace tl::experiment {

namespace {

/// Per-arm stream probe: encoded-record CRC (the arm's identity) plus the
/// ping-pong feed over successful hops.
class StreamProbe final : public telemetry::RecordSink {
 public:
  explicit StreamProbe(std::int64_t window_ms) : pingpong_(window_ms) {}

  void consume(const telemetry::HandoverRecord& record) override {
    buffer_.clear();
    telemetry::RecordLog::encode_record(record, buffer_);
    crc_.update(buffer_.data(), buffer_.size());
    if (record.success) {
      pingpong_.observe(analysis::HandoverHop{record.anon_user_id, record.timestamp,
                                              record.source_sector, record.target_sector});
    }
  }

  std::uint32_t crc() const noexcept { return crc_.value(); }
  const analysis::PingPongDetector& pingpong() const noexcept { return pingpong_; }

 private:
  util::Crc32c crc_;
  analysis::PingPongDetector pingpong_;
  std::vector<std::uint8_t> buffer_;
};

/// Hourly HO/HOF tallies per area (the TemporalAggregator's 30-min series
/// folded to hour-of-day would also work, but tallying directly keeps this
/// harness independent of its lazy bitmap allocation).
class HourlyProbe final : public telemetry::RecordSink {
 public:
  void consume(const telemetry::HandoverRecord& record) override {
    const std::size_t area = static_cast<std::size_t>(record.area);
    const int hour = util::SimCalendar::hour_of_day(record.timestamp);
    ++ho_[area][static_cast<std::size_t>(hour)];
    if (!record.success) ++hof_[area][static_cast<std::size_t>(hour)];
  }

  const std::array<std::array<std::uint64_t, 24>, 2>& ho() const noexcept { return ho_; }
  const std::array<std::array<std::uint64_t, 24>, 2>& hof() const noexcept { return hof_; }

 private:
  std::array<std::array<std::uint64_t, 24>, 2> ho_{};
  std::array<std::array<std::uint64_t, 24>, 2> hof_{};
};

void kv(std::ostream& os, const char* key, const std::string& arm, std::uint64_t value) {
  os << key << '.' << arm << ' ' << value << '\n';
}

void kvf(std::ostream& os, const char* key, const std::string& arm, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", value);
  os << key << '.' << arm << ' ' << buf << '\n';
}

void serialize_arm(std::ostream& os, const ArmReport& r) {
  const std::string& arm = r.label;
  os << "policy." << arm << ' ' << r.policy << '\n';
  kv(os, "records", arm, r.records);
  kv(os, "failures", arm, r.failures);
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", r.stream_crc);
  os << "stream_crc." << arm << ' ' << crc << '\n';
  kvf(os, "hof_rate", arm, r.hof_rate());
  for (std::size_t t = 0; t < 3; ++t) {
    const auto rat = static_cast<topology::ObservedRat>(t);
    os << "ho_to." << to_string(rat) << '.' << arm << ' ' << r.by_target[t] << '\n';
    os << "hof_to." << to_string(rat) << '.' << arm << ' ' << r.hof_by_target[t] << '\n';
  }
  for (std::size_t bkt = 0; bkt < telemetry::CauseAggregator::kBuckets; ++bkt) {
    os << "cause_bucket." << bkt << '.' << arm << ' ' << r.cause_buckets[bkt] << '\n';
  }
  for (std::size_t a = 0; a < 2; ++a) {
    const auto area = static_cast<geo::AreaType>(a);
    os << "ho." << to_string(area) << '.' << arm << ' ' << r.area_handovers[a] << '\n';
    os << "hof." << to_string(area) << '.' << arm << ' ' << r.area_failures[a] << '\n';
    for (int h = 0; h < 24; ++h) {
      os << "hourly_ho." << to_string(area) << '.' << h << '.' << arm << ' '
         << r.hourly_handovers[a][static_cast<std::size_t>(h)] << '\n';
      os << "hourly_hof." << to_string(area) << '.' << h << '.' << arm << ' '
         << r.hourly_failures[a][static_cast<std::size_t>(h)] << '\n';
    }
  }
  for (std::size_t d = 0; d < r.district_handovers.size(); ++d) {
    os << "district." << d << '.' << arm << ' ' << r.district_handovers[d] << ' '
       << r.district_failures[d] << '\n';
  }
  kv(os, "pp_hops", arm, r.pp_hops);
  kv(os, "ping_pongs", arm, r.ping_pongs);
  kv(os, "bouncing_ues", arm, r.bouncing_ues);
  kvf(os, "ping_pong_rate", arm, r.ping_pong_rate());
}

}  // namespace

double ArmReport::hof_rate_in_hour(geo::AreaType area, int hour) const noexcept {
  const std::size_t a = static_cast<std::size_t>(area);
  const std::size_t h = static_cast<std::size_t>(hour);
  return hourly_handovers[a][h] == 0
             ? 0.0
             : static_cast<double>(hourly_failures[a][h]) /
                   static_cast<double>(hourly_handovers[a][h]);
}

double ArmReport::area_hof_rate(geo::AreaType area) const noexcept {
  const std::size_t a = static_cast<std::size_t>(area);
  return area_handovers[a] == 0 ? 0.0
                                : static_cast<double>(area_failures[a]) /
                                      static_cast<double>(area_handovers[a]);
}

int ArmReport::peak_hour(geo::AreaType area) const noexcept {
  const auto& series = hourly_handovers[static_cast<std::size_t>(area)];
  int best = 0;
  for (int h = 1; h < 24; ++h) {
    if (series[static_cast<std::size_t>(h)] > series[static_cast<std::size_t>(best)]) {
      best = h;
    }
  }
  return best;
}

ExperimentReport::PeakHourDiff ExperimentReport::peak_hour_diff(
    geo::AreaType area) const noexcept {
  PeakHourDiff diff;
  diff.hour = a.peak_hour(area);
  diff.a_rate = a.hof_rate_in_hour(area, diff.hour);
  diff.b_rate = b.hof_rate_in_hour(area, diff.hour);
  diff.delta_pct = delta_pct(diff.a_rate, diff.b_rate);
  return diff;
}

void ExperimentReport::serialize(std::ostream& os) const {
  os << "experiment v1\n";
  os << "seed " << seed << '\n';
  os << "days " << days << '\n';
  os << "ping_pong_window_ms " << ping_pong_window_ms << '\n';
  serialize_arm(os, a);
  serialize_arm(os, b);
  // Headline diffs (B vs A), derived but serialized so a report diff reads
  // standalone.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", delta_pct(a.hof_rate(), b.hof_rate()));
  os << "delta.hof_rate_pct " << buf << '\n';
  std::snprintf(buf, sizeof buf, "%.4f",
                delta_pct(a.share_to(topology::ObservedRat::kG3),
                          b.share_to(topology::ObservedRat::kG3)));
  os << "delta.share_3g_pct " << buf << '\n';
  std::snprintf(buf, sizeof buf, "%.4f",
                delta_pct(a.ping_pong_rate(), b.ping_pong_rate()));
  os << "delta.ping_pong_rate_pct " << buf << '\n';
  const PeakHourDiff rural = peak_hour_diff(geo::AreaType::kRural);
  std::snprintf(buf, sizeof buf, "%.4f", rural.delta_pct);
  os << "delta.rural_peak_hour_hof_pct h=" << rural.hour << ' ' << buf << '\n';
}

void ExperimentReport::print(std::ostream& os) const {
  char buf[160];
  os << "A/B experiment (seed " << seed << ", " << days << " days)\n";
  os << "  arm A: " << a.label << " [" << a.policy << "]\n";
  os << "  arm B: " << b.label << " [" << b.policy << "]\n\n";
  std::snprintf(buf, sizeof buf, "  %-28s %14s %14s %10s\n", "metric", a.label.c_str(),
                b.label.c_str(), "B vs A");
  os << buf;
  const auto row = [&](const char* name, double va, double vb, const char* fmt) {
    char ca[32], cb[32], cd[32];
    std::snprintf(ca, sizeof ca, fmt, va);
    std::snprintf(cb, sizeof cb, fmt, vb);
    std::snprintf(cd, sizeof cd, "%+.1f%%", delta_pct(va, vb));
    std::snprintf(buf, sizeof buf, "  %-28s %14s %14s %10s\n", name, ca, cb, cd);
    os << buf;
  };
  row("handover attempts", static_cast<double>(a.records), static_cast<double>(b.records),
      "%.0f");
  row("failures (HOF)", static_cast<double>(a.failures), static_cast<double>(b.failures),
      "%.0f");
  row("HOF rate", a.hof_rate(), b.hof_rate(), "%.5f");
  row("share ->3G", a.share_to(topology::ObservedRat::kG3),
      b.share_to(topology::ObservedRat::kG3), "%.5f");
  row("share ->2G", a.share_to(topology::ObservedRat::kG2),
      b.share_to(topology::ObservedRat::kG2), "%.6f");
  row("urban HOF rate", a.area_hof_rate(geo::AreaType::kUrban),
      b.area_hof_rate(geo::AreaType::kUrban), "%.5f");
  row("rural HOF rate", a.area_hof_rate(geo::AreaType::kRural),
      b.area_hof_rate(geo::AreaType::kRural), "%.5f");
  row("ping-pong rate", a.ping_pong_rate(), b.ping_pong_rate(), "%.5f");

  const PeakHourDiff rural = peak_hour_diff(geo::AreaType::kRural);
  std::snprintf(buf, sizeof buf,
                "\n  rural peak hour (A volume): %02d:00  HOF %.5f -> %.5f (%+.1f%%)\n",
                rural.hour, rural.a_rate, rural.b_rate, rural.delta_pct);
  os << buf;

  os << "\n  failure-cause mix (share of each arm's HOFs):\n";
  for (std::size_t bkt = 0; bkt < telemetry::CauseAggregator::kBuckets; ++bkt) {
    const double sa = a.failures == 0 ? 0.0
                                      : static_cast<double>(a.cause_buckets[bkt]) /
                                            static_cast<double>(a.failures);
    const double sb = b.failures == 0 ? 0.0
                                      : static_cast<double>(b.cause_buckets[bkt]) /
                                            static_cast<double>(b.failures);
    std::snprintf(buf, sizeof buf, "    %-34s %8.4f %8.4f\n",
                  telemetry::CauseAggregator::bucket_label(bkt), sa, sb);
    os << buf;
  }
}

ExperimentReport AbExperiment::run() {
  ExperimentReport report;
  report.seed = config_.study.seed;
  report.days = config_.study.days;
  report.ping_pong_window_ms = config_.ping_pong_window_ms;
  report.a = run_arm(config_.policy_a, config_.label_a);
  report.b = run_arm(config_.policy_b, config_.label_b);
  return report;
}

ArmReport AbExperiment::run_arm(const policy::PolicyConfig& policy,
                                const std::string& label) {
  core::StudyConfig cfg = config_.study;
  cfg.policy = policy;
  core::Simulator sim{cfg};

  const std::size_t n_districts = sim.country().districts().size();
  const std::size_t n_makers = sim.catalog().manufacturers().size();

  telemetry::DistrictAggregator districts{n_districts, n_makers};
  telemetry::CauseAggregator causes{cfg.days, n_makers};
  HourlyProbe hourly;
  StreamProbe probe{config_.ping_pong_window_ms};
  sim.add_sink(&districts);
  sim.add_sink(&causes);
  sim.add_sink(&hourly);
  sim.add_sink(&probe);
  sim.run();

  ArmReport r;
  r.label = label;
  r.policy = std::string{policy::to_string(policy.kind)};
  r.stream_crc = probe.crc();
  r.cause_buckets = causes.totals_by_bucket();
  r.hof_by_target = causes.failures_by_target();
  r.hourly_handovers = hourly.ho();
  r.hourly_failures = hourly.hof();

  r.district_handovers.resize(n_districts, 0);
  r.district_failures.resize(n_districts, 0);
  for (std::size_t d = 0; d < n_districts; ++d) {
    const auto& tally = districts.district(static_cast<geo::DistrictId>(d));
    r.district_handovers[d] = tally.handovers;
    r.district_failures[d] = tally.failures;
    r.records += tally.handovers;
    r.failures += tally.failures;
    for (std::size_t t = 0; t < 3; ++t) r.by_target[t] += tally.by_target[t];
  }
  for (std::size_t a = 0; a < 2; ++a) {
    for (int h = 0; h < 24; ++h) {
      r.area_handovers[a] += r.hourly_handovers[a][static_cast<std::size_t>(h)];
      r.area_failures[a] += r.hourly_failures[a][static_cast<std::size_t>(h)];
    }
  }
  r.pp_hops = probe.pingpong().hops();
  r.ping_pongs = probe.pingpong().ping_pongs();
  r.bouncing_ues = probe.pingpong().bouncing_ues();
  return r;
}

}  // namespace tl::experiment
