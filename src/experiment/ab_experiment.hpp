#pragma once

// Deterministic A/B experiment harness over the handover policy engine.
//
// Runs policy A and policy B on the *same* seed/topology/population (each
// arm rebuilds the identical world from the shared StudyConfig; only
// StudyConfig::policy differs), feeds both record streams through the
// existing analysis aggregators plus the analysis ping-pong detector, and
// reduces everything into an ExperimentReport: HOF rate, →3G fallback
// share, per-cause mix, ping-pong rate, district / urban-rural and hourly
// breakdowns, with a serialized form that is byte-stable across runs and
// thread counts (the record streams themselves are — see src/policy's
// determinism contract — so everything reduced from them is too).

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "geo/district.hpp"
#include "telemetry/aggregates.hpp"

namespace tl::experiment {

struct ExperimentConfig {
  /// Shared world: scale, seed, days, population, ... — everything except
  /// the policy, which is overridden per arm.
  core::StudyConfig study;
  policy::PolicyConfig policy_a;  ///< arm A (conventionally the baseline)
  policy::PolicyConfig policy_b;
  std::string label_a = "A";
  std::string label_b = "B";
  /// Window for the ping-pong-rate metric (A→B→A re-handovers).
  std::int64_t ping_pong_window_ms = 5'000;
};

/// Everything one arm's record stream reduces to.
struct ArmReport {
  std::string label;
  std::string policy;

  std::uint64_t records = 0;     ///< HO attempts observed (== handovers)
  std::uint64_t failures = 0;    ///< failed attempts (HOFs)
  std::uint32_t stream_crc = 0;  ///< CRC32C over the encoded record stream

  /// HO / HOF counts by target RAT class (indexed by topology::ObservedRat).
  std::array<std::uint64_t, 3> by_target{};
  std::array<std::uint64_t, 3> hof_by_target{};

  /// Failure counts per dominant-cause bucket (CauseAggregator::kBuckets).
  std::array<std::uint64_t, telemetry::CauseAggregator::kBuckets> cause_buckets{};

  /// Urban/rural splits (indexed by geo::AreaType).
  std::array<std::uint64_t, 2> area_handovers{};
  std::array<std::uint64_t, 2> area_failures{};
  /// Hour-of-day breakdown per area class: [area][hour].
  std::array<std::array<std::uint64_t, 24>, 2> hourly_handovers{};
  std::array<std::array<std::uint64_t, 24>, 2> hourly_failures{};

  /// Per-district totals (index = DistrictId).
  std::vector<std::uint64_t> district_handovers;
  std::vector<std::uint64_t> district_failures;

  /// Ping-pong metric (successful hops only).
  std::uint64_t pp_hops = 0;
  std::uint64_t ping_pongs = 0;
  std::uint64_t bouncing_ues = 0;

  double hof_rate() const noexcept {
    return records == 0 ? 0.0
                        : static_cast<double>(failures) / static_cast<double>(records);
  }
  /// Share of HOs targeting `rat` (the →3G fallback share, etc.).
  double share_to(topology::ObservedRat rat) const noexcept {
    return records == 0 ? 0.0
                        : static_cast<double>(by_target[static_cast<std::size_t>(rat)]) /
                              static_cast<double>(records);
  }
  double ping_pong_rate() const noexcept {
    return pp_hops == 0 ? 0.0
                        : static_cast<double>(ping_pongs) / static_cast<double>(pp_hops);
  }
  double hof_rate_in_hour(geo::AreaType area, int hour) const noexcept;
  double area_hof_rate(geo::AreaType area) const noexcept;
  /// Hour of day with the most handovers in `area` (ties: earliest hour).
  int peak_hour(geo::AreaType area) const noexcept;
};

struct ExperimentReport {
  std::uint64_t seed = 0;
  int days = 0;
  std::int64_t ping_pong_window_ms = 5'000;
  ArmReport a;
  ArmReport b;

  /// Relative change of B vs A, in percent (0 when A's value is 0).
  static double delta_pct(double a_value, double b_value) noexcept {
    return a_value == 0.0 ? 0.0 : (b_value - a_value) / a_value * 100.0;
  }

  /// Peak-hour HOF comparison on one area class. The peak hour is chosen
  /// from arm A's volume so both arms are compared over the same hour.
  struct PeakHourDiff {
    int hour = 0;
    double a_rate = 0.0;
    double b_rate = 0.0;
    double delta_pct = 0.0;
  };
  PeakHourDiff peak_hour_diff(geo::AreaType area) const noexcept;

  /// Byte-stable machine form: fixed-order "key value" lines (CI's
  /// determinism gate diffs two of these).
  void serialize(std::ostream& os) const;
  /// Human-readable side-by-side tables plus headline deltas.
  void print(std::ostream& os) const;
};

class AbExperiment {
 public:
  explicit AbExperiment(ExperimentConfig config) : config_(std::move(config)) {}

  /// Runs both arms (A first) and reduces the report. Each arm honors
  /// config.study.threads — the reduced report is invariant under it.
  ExperimentReport run();

  const ExperimentConfig& config() const noexcept { return config_; }

 private:
  ArmReport run_arm(const policy::PolicyConfig& policy, const std::string& label);

  ExperimentConfig config_;
};

}  // namespace tl::experiment
