#pragma once

// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// frame of the durable record log and the checkpoint file trailer.
//
// Dependency-free software implementation (slice-by-8 over precomputed
// tables). The Castagnoli polynomial is chosen over CRC32 (IEEE) for its
// better error-detection properties on storage payloads; it is also what
// leveldb/rocksdb frame their WALs with, so torn-tail detection behaves the
// way operators expect from production log formats.

#include <cstddef>
#include <cstdint>

namespace tl::util {

/// CRC32C of `size` bytes at `data`, continuing from `crc` (pass 0 for a
/// fresh checksum). The returned value is the plain (unmasked) CRC.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t crc = 0) noexcept;

/// Incremental accumulator for multi-buffer frames.
class Crc32c {
 public:
  void update(const void* data, std::size_t size) noexcept {
    crc_ = crc32c(data, size, crc_);
  }
  std::uint32_t value() const noexcept { return crc_; }
  void reset() noexcept { crc_ = 0; }

 private:
  std::uint32_t crc_ = 0;
};

/// Masked form for values stored next to the data they cover (rocksdb-style
/// rotation+offset): a CRC of bytes that themselves contain CRCs would
/// otherwise be fixed-point prone. The log stores masked CRCs on disk.
constexpr std::uint32_t mask_crc32c(std::uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
constexpr std::uint32_t unmask_crc32c(std::uint32_t masked) noexcept {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace tl::util
