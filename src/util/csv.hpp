#pragma once

// Minimal CSV reading/writing for dataset export and example tooling.
// Handles quoting of fields containing separators, quotes, or newlines.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tl::util {

class CsvWriter {
 public:
  /// Writes to an externally owned stream; `sep` between fields.
  explicit CsvWriter(std::ostream& os, char sep = ',') : os_(os), sep_(sep) {}

  void write_row(const std::vector<std::string>& cells);

  static std::string escape(std::string_view cell, char sep);

 private:
  std::ostream& os_;
  char sep_;
};

/// Parses a single CSV line honoring quotes; `sep` between fields.
std::vector<std::string> parse_csv_line(std::string_view line, char sep = ',');

/// Reads all rows from a stream (one row per logical line; quoted newlines
/// are not supported — the telcolens exporters never emit them).
std::vector<std::vector<std::string>> read_csv(std::istream& is, char sep = ',');

}  // namespace tl::util
