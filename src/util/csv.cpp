#include "util/csv.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace tl::util {

std::string CsvWriter::escape(std::string_view cell, char sep) {
  const bool needs_quotes = cell.find(sep) != std::string_view::npos ||
                            cell.find('"') != std::string_view::npos ||
                            cell.find('\n') != std::string_view::npos;
  if (!needs_quotes) return std::string{cell};
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << sep_;
    os_ << escape(cells[i], sep_);
  }
  os_ << '\n';
  // A silently short CSV (ENOSPC mid-export) poisons every downstream
  // analysis that reads it; surface stream failure at the row that hit it.
  if (!os_) {
    throw std::runtime_error{"CsvWriter: stream write failed (device full?)"};
  }
}

std::vector<std::string> parse_csv_line(std::string_view line, char sep) {
  std::vector<std::string> out;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == sep) {
      out.push_back(std::move(cell));
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  out.push_back(std::move(cell));
  return out;
}

std::vector<std::vector<std::string>> read_csv(std::istream& is, char sep) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(parse_csv_line(line, sep));
  }
  return rows;
}

}  // namespace tl::util
