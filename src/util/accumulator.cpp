#include "util/accumulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::util {

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void ReservoirSample::add(double x) noexcept {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    sorted_dirty_ = true;
    return;
  }
  const std::uint64_t j = rng_.below(seen_);
  if (j < capacity_) {
    sample_[static_cast<std::size_t>(j)] = x;
    sorted_dirty_ = true;
  }
}

double ReservoirSample::quantile(double p) const {
  if (sample_.empty()) throw std::logic_error{"ReservoirSample::quantile: empty"};
  if (p < 0.0 || p > 1.0) throw std::invalid_argument{"quantile: p outside [0,1]"};
  if (sorted_dirty_) {
    sorted_ = sample_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_dirty_ = false;
  }
  const double idx = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace tl::util
