#include "util/cli.hpp"

#include <charconv>
#include <cmath>

namespace tl::util {

std::optional<std::uint64_t> parse_uint(std::string_view text,
                                        std::uint64_t lo,
                                        std::uint64_t hi) noexcept {
  if (text.empty() || text.front() == '+' || text.front() == '-') {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text, double lo,
                                   double hi) noexcept {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value,
                      std::chars_format::general);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  if (!std::isfinite(value) || value < lo || value > hi) return std::nullopt;
  return value;
}

}  // namespace tl::util
