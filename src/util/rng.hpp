#pragma once

// Deterministic random number generation for the simulator.
//
// Every stochastic component in telcolens draws from an explicitly threaded
// Rng instance; there is no global RNG. Streams are derived from a master
// seed plus entity identifiers (UE id, sector id, day index, ...) so that
// simulation output is bitwise reproducible and trivially parallelizable.

#include <cstdint>
#include <limits>

namespace tl::util {

/// SplitMix64: used to expand seeds into full Xoshiro state.
/// Reference: Sebastiano Vigna, public domain.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes (seed, salts) into the child-stream seed behind Rng::derive().
///
/// Thread-safety guarantee (the parallel execution engine depends on it):
/// stream derivation is a pure function — it reads and writes no shared,
/// global, or thread-local state, so any number of threads may derive
/// per-(seed, ue, day) streams concurrently with no synchronization, and
/// identical inputs yield identical streams on every platform (the math is
/// exact unsigned 64-bit arithmetic; constexpr-evaluable as proof).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t salt_a,
                                                  std::uint64_t salt_b = 0,
                                                  std::uint64_t salt_c = 0) noexcept {
  // Mix the salts through SplitMix64 one at a time so that nearby ids
  // produce decorrelated streams.
  std::uint64_t s = seed;
  std::uint64_t mixed = splitmix64(s);
  s ^= salt_a + 0x9e3779b97f4a7c15ULL;
  mixed ^= splitmix64(s);
  s ^= salt_b + 0xd1b54a32d192ed03ULL;
  mixed ^= splitmix64(s);
  s ^= salt_c + 0x8cb92ba72f3d8dd7ULL;
  mixed ^= splitmix64(s);
  return mixed;
}

/// Xoshiro256** PRNG. Fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by running SplitMix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal variate (polar Marsaglia; caches the spare value).
  double normal() noexcept;

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Derives a child stream from a master seed and a sequence of salts via
  /// derive_seed(). Static and pure: independent of any generator's state,
  /// safe to call concurrently from any thread (see derive_seed above).
  /// Rng *instances* are not thread-safe — normal() caches a spare variate —
  /// so each worker derives its own per-(seed, ue, day) instance instead of
  /// sharing one.
  [[nodiscard]] static Rng derive(std::uint64_t seed, std::uint64_t salt_a,
                                  std::uint64_t salt_b = 0,
                                  std::uint64_t salt_c = 0) noexcept {
    return Rng{derive_seed(seed, salt_a, salt_b, salt_c)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace tl::util
