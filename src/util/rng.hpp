#pragma once

// Deterministic random number generation for the simulator.
//
// Every stochastic component in telcolens draws from an explicitly threaded
// Rng instance; there is no global RNG. Streams are derived from a master
// seed plus entity identifiers (UE id, sector id, day index, ...) so that
// simulation output is bitwise reproducible and trivially parallelizable.

#include <cstdint>
#include <limits>

namespace tl::util {

/// SplitMix64: used to expand seeds into full Xoshiro state.
/// Reference: Sebastiano Vigna, public domain.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG. Fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by running SplitMix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal variate (polar Marsaglia; caches the spare value).
  double normal() noexcept;

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Derives a child stream from this master seed and a sequence of salts.
  /// Independent of this generator's current state.
  static Rng derive(std::uint64_t seed, std::uint64_t salt_a, std::uint64_t salt_b = 0,
                    std::uint64_t salt_c = 0) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace tl::util
