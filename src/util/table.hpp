#pragma once

// Fixed-width text tables for the bench harnesses.
//
// Every bench regenerates one of the paper's tables/figures as rows printed
// to stdout; this printer keeps those readouts aligned and diff-friendly.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tl::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  /// Percentage with '%' suffix.
  static std::string pct(double fraction, int precision = 2);

  /// Renders with a header rule and column padding.
  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a titled section banner around a table (used by benches).
void print_section(std::ostream& os, const std::string& title);

}  // namespace tl::util
