#include "util/rng.hpp"

#include <cmath>

namespace tl::util {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  // Lemire's multiply-and-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::exponential(double lambda) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

}  // namespace tl::util
