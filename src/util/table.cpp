#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tl::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument{"TextTable: no headers"};
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"TextTable: row arity mismatch"};
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print(std::ostream& os) const {
  os << to_string();
  if (!os) throw std::runtime_error{"TextTable::print: stream write failed"};
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace tl::util
