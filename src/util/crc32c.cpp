#include "util/crc32c.hpp"

#include <array>

namespace tl::util {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // tables[0] is the classic byte-at-a-time table; tables[1..7] extend it so
  // eight input bytes fold into the CRC with eight independent loads.
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

Tables build_tables() noexcept {
  Tables tables;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      crc = tables.t[0][crc & 0xffu] ^ (crc >> 8);
      tables.t[slice][i] = crc;
    }
  }
  return tables;
}

const Tables& tables() noexcept {
  static const Tables t = build_tables();
  return t;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = tables().t;
  crc = ~crc;
  while (size >= 8) {
    crc ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xffu] ^ t[6][(crc >> 8) & 0xffu] ^ t[5][(crc >> 16) & 0xffu] ^
          t[4][crc >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tl::util
