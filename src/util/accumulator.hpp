#pragma once

// Streaming statistics over unbounded record streams.
//
// Aggregating sinks cannot retain every handover record (the real pipeline
// sees ~1.7B/day); Welford accumulators give exact mean/variance in O(1)
// memory, and ReservoirSample keeps an unbiased fixed-size subsample for
// quantile-style readouts at country scale.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace tl::util {

/// Welford online mean/variance with min/max tracking.
class Accumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const Accumulator& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Algorithm-R reservoir sample of fixed capacity.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity, std::uint64_t seed = 0x5eed)
      : capacity_(capacity), rng_(seed) {
    sample_.reserve(capacity);
  }

  void add(double x) noexcept;

  std::uint64_t seen() const noexcept { return seen_; }
  const std::vector<double>& values() const noexcept { return sample_; }

  /// Quantile over the reservoir, p in [0,1]. The sorted view is cached and
  /// only rebuilt after add() dirtied it, so quantile sweeps (every scrape
  /// of a monitoring readout) sort once instead of once per call.
  double quantile(double p) const;

 private:
  std::size_t capacity_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<double> sample_;
  mutable std::vector<double> sorted_;  // cache: sample_ sorted
  mutable bool sorted_dirty_ = true;
};

}  // namespace tl::util
