#include "util/sim_time.hpp"

#include <cstdio>

namespace tl::util {

const char* to_short_name(DayOfWeek day) noexcept {
  switch (day) {
    case DayOfWeek::kMonday: return "Mo";
    case DayOfWeek::kTuesday: return "Tu";
    case DayOfWeek::kWednesday: return "We";
    case DayOfWeek::kThursday: return "Th";
    case DayOfWeek::kFriday: return "Fr";
    case DayOfWeek::kSaturday: return "Sa";
    case DayOfWeek::kSunday: return "Su";
  }
  return "??";
}

std::string format_timestamp(TimestampMs t) {
  const int day = SimCalendar::day_index(t);
  const std::int64_t ms = SimCalendar::ms_of_day(t);
  const int hour = static_cast<int>(ms / kMsPerHour);
  const int minute = static_cast<int>((ms / kMsPerMinute) % 60);
  const int second = static_cast<int>((ms / kMsPerSecond) % 60);
  const int millis = static_cast<int>(ms % kMsPerSecond);
  char buf[40];
  std::snprintf(buf, sizeof buf, "d%02d %s %02d:%02d:%02d.%03d", day,
                to_short_name(SimCalendar::day_of_week(t)), hour, minute, second, millis);
  return buf;
}

}  // namespace tl::util
