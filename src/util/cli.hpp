#pragma once

// Strict command-line value parsing for the example binaries.
//
// The drills and reports take numeric flags (--threads, --days, fault
// rates); a mistyped value silently becoming 0 via atoi is exactly the kind
// of operational foot-gun this repo's robustness work exists to remove.
// These helpers parse the ENTIRE string (no trailing junk, no empty input,
// no negative values sneaking through unsigned conversions) and range-check
// the result; std::nullopt means "reject and print usage".

#include <cstdint>
#include <optional>
#include <string_view>

namespace tl::util {

/// Parses a base-10 unsigned integer occupying the whole of `text`, then
/// range-checks it against [lo, hi]. Rejects empty input, signs, whitespace,
/// trailing characters, and overflow.
std::optional<std::uint64_t> parse_uint(std::string_view text,
                                        std::uint64_t lo = 0,
                                        std::uint64_t hi = UINT64_MAX) noexcept;

/// Parses a finite decimal number occupying the whole of `text`, then
/// range-checks it against [lo, hi]. Rejects empty input, trailing
/// characters, inf/nan, and hex floats.
std::optional<double> parse_double(std::string_view text, double lo,
                                   double hi) noexcept;

}  // namespace tl::util
