#pragma once

// Planar geography for the synthetic country.
//
// The paper only uses geography for district areas, urban/rural splits and
// the radius of gyration; a local tangent-plane approximation in kilometres
// is faithful at country scale and keeps distance math exact and fast.

#include <cmath>

namespace tl::util {

/// A point on the synthetic country's plane, in kilometres.
struct GeoPoint {
  double x_km = 0.0;
  double y_km = 0.0;

  friend constexpr bool operator==(const GeoPoint&, const GeoPoint&) = default;

  constexpr GeoPoint operator+(const GeoPoint& o) const noexcept {
    return {x_km + o.x_km, y_km + o.y_km};
  }
  constexpr GeoPoint operator-(const GeoPoint& o) const noexcept {
    return {x_km - o.x_km, y_km - o.y_km};
  }
  constexpr GeoPoint operator*(double s) const noexcept { return {x_km * s, y_km * s}; }

  double norm() const noexcept { return std::hypot(x_km, y_km); }
};

inline double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  return (a - b).norm();
}

inline double squared_distance_km2(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return dx * dx + dy * dy;
}

}  // namespace tl::util
