#pragma once

// Hashing and subscriber-identifier anonymization.
//
// The operator pipeline anonymizes IMSI/IMEI before analysts touch the data;
// we reproduce that boundary: raw identities exist only inside the device
// population generator, and every telemetry record carries a keyed hash.

#include <cstdint>
#include <string>
#include <string_view>

namespace tl::util {

/// FNV-1a over bytes; stable across platforms.
constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a 64-bit value (Stafford variant 13 finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Keyed anonymization of a numeric subscriber identity. One-way under a
/// secret key (the MNO's pseudonymization salt).
constexpr std::uint64_t anonymize(std::uint64_t identity, std::uint64_t key) noexcept {
  return mix64(identity ^ mix64(key));
}

/// Formats an anonymized id as the operator tooling prints it, e.g.
/// "anon:1f9a0c…" — 16 hex digits.
std::string format_anon_id(std::uint64_t anon_id);

}  // namespace tl::util
