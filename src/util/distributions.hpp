#pragma once

// Distribution toolkit used across the generator: heavy-tailed populations
// (Zipf), skewed durations (lognormal), bounded effects (truncated normal),
// and O(1) categorical sampling (alias method).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace tl::util {

/// Lognormal distribution parameterized by the underlying normal's mu/sigma.
class LogNormal {
 public:
  LogNormal(double mu, double sigma) noexcept : mu_(mu), sigma_(sigma) {}

  /// Builds the distribution from a target median and p95 of the lognormal
  /// itself (convenient when calibrating against reported percentiles).
  static LogNormal from_median_p95(double median, double p95);

  double sample(Rng& rng) const noexcept;
  double median() const noexcept;
  double mean() const noexcept;
  double quantile(double p) const;

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Zipf (discrete power-law) over ranks 1..n with exponent s.
/// Sampling via inverse transform over the precomputed CDF: O(log n).
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of rank k (0-based).
  double pmf(std::size_t k) const;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Normal truncated to [lo, hi]; samples by rejection with a bounded
/// fallback to clamping for extreme truncation.
class TruncatedNormal {
 public:
  TruncatedNormal(double mean, double stddev, double lo, double hi) noexcept;
  double sample(Rng& rng) const noexcept;

 private:
  double mean_, stddev_, lo_, hi_;
};

/// Walker's alias method: O(n) build, O(1) categorical sampling.
class DiscreteSampler {
 public:
  /// Weights need not be normalized; must be non-negative with positive sum.
  explicit DiscreteSampler(std::span<const double> weights);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return prob_.size(); }

  /// Normalized probability of category i.
  double probability(std::size_t i) const noexcept { return normalized_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;
};

/// Pareto (type I) with scale x_m and shape alpha.
class Pareto {
 public:
  Pareto(double x_m, double alpha) noexcept : x_m_(x_m), alpha_(alpha) {}
  double sample(Rng& rng) const noexcept;

 private:
  double x_m_, alpha_;
};

/// Standard normal quantile function (Acklam's rational approximation),
/// exposed for calibration helpers.
double normal_quantile(double p);

}  // namespace tl::util
