#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::util {

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument{"normal_quantile: p must be in (0,1)"};
  }
  // Peter Acklam's rational approximation, |relative error| < 1.15e-9.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

LogNormal LogNormal::from_median_p95(double median, double p95) {
  if (median <= 0 || p95 <= median) {
    throw std::invalid_argument{"LogNormal::from_median_p95: need 0 < median < p95"};
  }
  const double mu = std::log(median);
  const double z95 = normal_quantile(0.95);
  const double sigma = (std::log(p95) - mu) / z95;
  return LogNormal{mu, sigma};
}

double LogNormal::sample(Rng& rng) const noexcept {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double LogNormal::median() const noexcept { return std::exp(mu_); }

double LogNormal::mean() const noexcept {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument{"Zipf: n must be positive"};
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t Zipf::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Zipf::pmf(std::size_t k) const {
  if (k >= cdf_.size()) throw std::out_of_range{"Zipf::pmf: rank out of range"};
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

TruncatedNormal::TruncatedNormal(double mean, double stddev, double lo, double hi) noexcept
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi) {}

double TruncatedNormal::sample(Rng& rng) const noexcept {
  // Rejection works well while the window covers meaningful mass; bail out
  // to clamping after a bounded number of attempts so sampling stays O(1).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = rng.normal(mean_, stddev_);
    if (x >= lo_ && x <= hi_) return x;
  }
  return std::clamp(mean_, lo_, hi_);
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"DiscreteSampler: empty weights"};
  const std::size_t n = weights.size();
  double sum = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"DiscreteSampler: negative weight"};
    sum += w;
  }
  if (sum <= 0.0) throw std::invalid_argument{"DiscreteSampler: zero total weight"};

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / sum;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  const std::size_t i = rng.below(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

double Pareto::sample(Rng& rng) const noexcept {
  double u;
  do {
    u = rng.uniform();
  } while (u <= 0.0);
  return x_m_ / std::pow(u, 1.0 / alpha_);
}

}  // namespace tl::util
