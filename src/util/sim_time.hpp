#pragma once

// Simulation clock and calendar for the 4-week study window.
//
// All timestamps are integral milliseconds since the study epoch
// (Monday 2024-01-29 00:00:00, the first day of the paper's capture).
// The calendar knows only what the analysis needs: day index, day of week,
// weekday/weekend, time of day, and 30-minute/hourly bin indices.

#include <cstdint>
#include <string>

namespace tl::util {

/// Milliseconds since the study epoch.
using TimestampMs = std::int64_t;

inline constexpr std::int64_t kMsPerSecond = 1000;
inline constexpr std::int64_t kMsPerMinute = 60 * kMsPerSecond;
inline constexpr std::int64_t kMsPerHour = 60 * kMsPerMinute;
inline constexpr std::int64_t kMsPerDay = 24 * kMsPerHour;
inline constexpr int kStudyDays = 28;        // four weeks, as in the paper
inline constexpr int kBinsPerDay30Min = 48;  // Fig. 7 granularity

enum class DayOfWeek : std::uint8_t {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

/// Returns the short English name ("Mo", "Tu", ...).
const char* to_short_name(DayOfWeek day) noexcept;

/// Calendar utilities over study timestamps.
class SimCalendar {
 public:
  /// Day index since epoch (day 0 = Monday 2024-01-29).
  static constexpr int day_index(TimestampMs t) noexcept {
    return static_cast<int>(t / kMsPerDay);
  }

  static constexpr DayOfWeek day_of_week(TimestampMs t) noexcept {
    return static_cast<DayOfWeek>(day_index(t) % 7);
  }

  static constexpr bool is_weekend(TimestampMs t) noexcept {
    const auto dow = day_of_week(t);
    return dow == DayOfWeek::kSaturday || dow == DayOfWeek::kSunday;
  }

  static constexpr DayOfWeek day_of_week_for_day(int day) noexcept {
    return static_cast<DayOfWeek>(day % 7);
  }

  static constexpr bool is_weekend_day(int day) noexcept {
    const auto dow = day_of_week_for_day(day);
    return dow == DayOfWeek::kSaturday || dow == DayOfWeek::kSunday;
  }

  /// Milliseconds elapsed within the day, in [0, kMsPerDay).
  static constexpr std::int64_t ms_of_day(TimestampMs t) noexcept {
    return t % kMsPerDay;
  }

  /// Hour of day in [0, 24).
  static constexpr int hour_of_day(TimestampMs t) noexcept {
    return static_cast<int>(ms_of_day(t) / kMsPerHour);
  }

  /// 30-minute bin of the day in [0, 48).
  static constexpr int half_hour_bin(TimestampMs t) noexcept {
    return static_cast<int>(ms_of_day(t) / (30 * kMsPerMinute));
  }

  /// Fractional hour of day in [0, 24).
  static constexpr double fractional_hour(TimestampMs t) noexcept {
    return static_cast<double>(ms_of_day(t)) / static_cast<double>(kMsPerHour);
  }

  /// Timestamp at `hour_fraction` hours (e.g. 7.5 = 07:30) into `day`.
  static constexpr TimestampMs at(int day, double hour_fraction) noexcept {
    return static_cast<TimestampMs>(day) * kMsPerDay +
           static_cast<TimestampMs>(hour_fraction * static_cast<double>(kMsPerHour));
  }

  /// True for the paper's nighttime home-inference window [00:00, 08:00).
  static constexpr bool is_night(TimestampMs t) noexcept {
    return hour_of_day(t) < 8;
  }
};

/// "d07 Tu 08:31:02.113" — human-readable timestamp for logs and examples.
std::string format_timestamp(TimestampMs t);

}  // namespace tl::util
