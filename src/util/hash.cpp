#include "util/hash.hpp"

#include <cstdio>

namespace tl::util {

std::string format_anon_id(std::uint64_t anon_id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "anon:%016llx", static_cast<unsigned long long>(anon_id));
  return buf;
}

}  // namespace tl::util
