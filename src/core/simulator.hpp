#pragma once

// The countrywide simulator: ties every substrate together and streams
// handover records through registered sinks, one study day at a time.
//
// Construction builds the full world (census -> country -> deployment ->
// catalog -> population -> coverage profiles -> core network). run()/
// run_day() then replay UE movement through the RAN decision logic and the
// EPC handover state machine. Everything is deterministic in the seed.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "obs/metrics.hpp"
#include "core_network/duration_model.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/recovery.hpp"
#include "core_network/entities.hpp"
#include "core_network/failure_causes.hpp"
#include "core_network/failure_model.hpp"
#include "core_network/ho_state_machine.hpp"
#include "devices/population.hpp"
#include "geo/country.hpp"
#include "mobility/activity.hpp"
#include "mobility/trace_generator.hpp"
#include "policy/policy.hpp"
#include "ran/coverage.hpp"
#include "ran/load.hpp"
#include "ran/sector_locator.hpp"
#include "ran/target_selection.hpp"
#include "telemetry/record_log.hpp"
#include "telemetry/sinks.hpp"
#include "topology/deployment.hpp"
#include "topology/energy_saving.hpp"

namespace tl::exec {
class ShardedDayRunner;
}

namespace tl::supervise {
class CancelToken;
class StudySupervisor;
}

namespace tl::core {

/// Everything needed to resume a run after the last completed day: the day
/// cursor, the record counter, the core-network entity counters, and the
/// quarantined-UE set (UEs withdrawn from the population by supervised
/// degradation — resuming without it would replay different bytes). All
/// other simulator state is either immutable after construction or derived
/// per (seed, ue, day), so days are independent replay units.
struct DayCheckpoint {
  int next_day = 0;
  std::uint64_t seed = 0;  // guards against resuming a mismatched study
  std::uint64_t records_emitted = 0;
  corenet::CoreNetwork core;
  std::vector<devices::UeId> quarantined_ues;  // sorted, unique
};

class Simulator {
 public:
  explicit Simulator(StudyConfig config);
  ~Simulator();

  /// Sinks are borrowed; they must outlive the simulator's run calls.
  void add_sink(telemetry::RecordSink* sink);
  void add_metrics_sink(telemetry::MetricsSink* sink);
  /// Detaches a previously added record sink (no-op when absent); also
  /// clears the durable-log coupling when `sink` is the attached log sink.
  /// The world build dominates construction cost, so a long-lived simulator
  /// swaps sinks between runs instead of being rebuilt.
  void remove_sink(telemetry::RecordSink* sink);
  /// Detaches a previously added metrics sink (no-op when absent).
  void remove_metrics_sink(telemetry::MetricsSink* sink);

  /// Registers `sink` as a record sink AND couples it to the checkpoint
  /// protocol: every day commit marker written by the log embeds this
  /// simulator's serialized checkpoint, so the day cursor, core-network
  /// counters, and record bytes become one atomic commit unit. run()
  /// restores from the log's recovered state (which takes precedence over
  /// `config().checkpoint_path`) — resuming after a kill at any byte offset
  /// yields a record stream byte-identical to an uninterrupted run.
  void attach_durable_log(telemetry::DurableRecordSink* sink);

  /// Installs (or clears, with nullptr) a borrowed fault-injection
  /// schedule: outages veto sectors in locate_sector (via the energy
  /// policy's availability override) and modifier events inflate failure
  /// probabilities / target overload on matching HO attempts. An empty or
  /// absent schedule leaves output byte-identical.
  void set_fault_schedule(const faults::FaultSchedule* schedule);
  const faults::FaultSchedule* fault_schedule() const noexcept { return faults_; }

  /// Runs the remaining configured days (all of them on a fresh instance).
  /// When `config().checkpoint_path` is set, resumes from that file if
  /// present and rewrites it after every completed day.
  void run();
  /// Runs a single day (idempotent per day; callers sequence days). Running
  /// the day at the checkpoint cursor advances the cursor; out-of-order
  /// replays leave it alone. With `config().threads` != 1 the day executes
  /// on the parallel engine (src/exec): UE shards simulate concurrently and
  /// merge back in canonical UE order, so sinks — including an attached
  /// durable log — observe a stream byte-identical to the serial run.
  void run_day(int day);

  /// Installs (or clears, with nullptr) a borrowed supervisor: subsequent
  /// days execute through StudySupervisor::run_day — shard attempts get
  /// retries with backoff, watchdog deadlines (cooperative cancellation
  /// polled in the per-trace-event hot loop), and poison-UE bisection +
  /// quarantine — instead of aborting on the first shard failure. Output
  /// stays byte-identical to an unsupervised serial run over the surviving
  /// (non-quarantined) population. The supervisor must outlive the runs.
  void set_supervisor(supervise::StudySupervisor* supervisor) noexcept {
    supervisor_ = supervisor;
  }
  supervise::StudySupervisor* supervisor() const noexcept { return supervisor_; }

  /// Replaces the quarantined-UE set (sorted internally). Quarantined UEs
  /// are skipped by every execution path — serial, sharded, supervised — so
  /// a fresh simulator seeded with a previous run's quarantine reproduces
  /// its surviving-population stream exactly.
  void set_quarantined_ues(std::vector<devices::UeId> ues);
  const std::vector<devices::UeId>& quarantined_ues() const noexcept {
    return quarantined_ues_;
  }

  /// Re-targets subsequent run()/run_day() calls at `threads` workers
  /// (0 = all hardware threads, 1 = serial). Simulation output is invariant
  /// under this knob; only wall-clock changes. The worker pool is rebuilt
  /// lazily on the next parallel day, so a long-lived simulator can sweep
  /// thread counts (the throughput bench does) without a world rebuild.
  void set_threads(unsigned threads) noexcept { config_.threads = threads; }

  /// Snapshot after the last completed day; feed to a fresh Simulator's
  /// restore() to continue the run with an identical record stream.
  DayCheckpoint checkpoint() const;
  /// Restores the day cursor and counters. Throws std::invalid_argument on
  /// a seed mismatch (the checkpoint belongs to a different study).
  void restore(const DayCheckpoint& checkpoint);
  /// File forms of checkpoint()/restore(). load_checkpoint returns false
  /// when `path` does not exist and throws std::runtime_error on a corrupt
  /// or mismatched file.
  void save_checkpoint(const std::string& path) const;
  bool load_checkpoint(const std::string& path);
  /// First day the next run() call will simulate.
  int next_day() const noexcept { return next_day_; }

  const StudyConfig& config() const noexcept { return config_; }
  const geo::Country& country() const noexcept { return *country_; }
  const topology::Deployment& deployment() const noexcept { return *deployment_; }
  const devices::Catalog& catalog() const noexcept { return *catalog_; }
  const devices::Population& population() const noexcept { return *population_; }
  const ran::CoverageMap& coverage() const noexcept { return *coverage_; }
  const mobility::ActivityModel& activity() const noexcept { return activity_; }
  const mobility::TraceGenerator& traces() const noexcept { return *traces_; }
  const corenet::CoreNetwork& core_network() const noexcept { return core_; }
  const corenet::FailureModel& failure_model() const noexcept { return failure_model_; }
  const corenet::CauseCatalog& cause_catalog() const noexcept { return causes_; }

  /// The handover decision policy (src/policy) consulted at every HO
  /// opportunity, instantiated from config().policy at construction. The
  /// default CalibratedBaselinePolicy replays the legacy decision sequence
  /// byte-for-byte.
  const policy::HandoverPolicy& policy() const noexcept { return *policy_; }
  /// The const world view handed to the policy on every decision — exposed
  /// so tests and tools can drive policies outside the hot loop.
  const policy::PolicyEnv& policy_env() const noexcept { return policy_env_; }
  /// The shared serving/target sector locator (also inside policy_env()).
  const ran::SectorLocator& locator() const noexcept { return *locator_; }

  std::uint64_t records_emitted() const noexcept { return records_emitted_; }

 private:
  /// Where one UE-day emits: the core network booking its procedures, the
  /// record/metrics sinks receiving its stream, and a record counter. The
  /// serial path aims it at the simulator's own state; the parallel path at
  /// per-shard buffers that merge back in UE order. Keeping every mutation
  /// behind this frame is what makes simulate_ue_day const — safe to call
  /// concurrently for disjoint UE-days by construction.
  struct EmitFrame {
    corenet::CoreNetwork* core = nullptr;
    std::span<telemetry::RecordSink* const> sinks;
    std::span<telemetry::MetricsSink* const> metrics_sinks;
    std::uint64_t records = 0;
    /// Cooperative cancellation, polled once per trace event. Null (the
    /// serial/sharded paths) costs a single branch per event; the
    /// supervised path points it at the shard attempt's token so a
    /// watchdog-fired deadline interrupts the UE mid-day.
    const supervise::CancelToken* cancel = nullptr;
  };

  void run_day_serial(int day);
  void run_day_sharded(int day, unsigned threads);
  /// Per-shard staging state (private CoreNetwork + record/metrics buffers)
  /// kept across days: shards reset-not-reallocate on entry, so day N+1
  /// simulates into warm buffers instead of re-paying allocation growth and
  /// governor syncs in the hot loop. Defined in simulator.cpp.
  struct DayShards;
  /// Defined in simulator_supervised.cpp (the only TU that needs the
  /// supervisor's full type).
  void run_day_supervised(int day);
  bool is_quarantined(devices::UeId ue) const noexcept;
  void simulate_ue_day(const devices::Ue& ue, const mobility::UePlan& plan, int day,
                       EmitFrame& out) const;
  /// Legacy-only UEs never surface at the EPC observation point, but their
  /// mobility (visited 2G/3G sectors, gyration) still exists network-side
  /// (SGSN view) and feeds the §3.3 metrics. Emits metrics, no records.
  void simulate_legacy_ue_day(const devices::Ue& ue, const mobility::UePlan& plan,
                              int day, EmitFrame& out) const;
  /// Probe pass: samples traces, measures where HO events actually land,
  /// and re-calibrates the coverage fallback probabilities on that volume.
  void calibrate_coverage();
  /// Serving/target sector on the site nearest `position` for the UE's RAT
  /// class (delegates to the shared ran::SectorLocator).
  topology::SectorId locate_sector(const util::GeoPoint& position,
                                   topology::ObservedRat rat_class,
                                   const devices::Ue& ue, int day, int bin,
                                   util::Rng& rng) const {
    return locator_->locate(position, rat_class, ue, day, bin, rng);
  }
  /// Epoch-checked obs handle refresh, called at the top of run_day (a
  /// single-threaded boundary). Simulators are long-lived — the throughput
  /// bench installs a registry after the world build — so handles cannot be
  /// captured at construction.
  void resolve_obs();

  StudyConfig config_;
  std::unique_ptr<geo::Country> country_;
  std::unique_ptr<topology::Deployment> deployment_;
  std::unique_ptr<devices::Catalog> catalog_;
  std::unique_ptr<devices::Population> population_;
  std::unique_ptr<ran::CoverageMap> coverage_;
  mobility::ActivityModel activity_;
  std::unique_ptr<mobility::TraceGenerator> traces_;
  std::unique_ptr<ran::TargetSelector> selector_;
  std::unique_ptr<ran::SectorLocator> locator_;
  std::unique_ptr<policy::HandoverPolicy> policy_;
  /// Const world view the policy sees; rebuilt only when the fault schedule
  /// changes (the referenced components are stable after construction).
  policy::PolicyEnv policy_env_;
  ran::LoadModel load_model_;
  topology::EnergySavingPolicy energy_;
  corenet::FailureModel failure_model_;
  corenet::DurationModel durations_;
  corenet::CauseCatalog causes_;
  corenet::HandoverProcedure procedure_;
  corenet::CoreNetwork core_;
  faults::RecoveryModel recovery_;
  const faults::FaultSchedule* faults_ = nullptr;

  /// Cached per-UE plans (stable across days).
  std::vector<mobility::UePlan> plans_;

  std::vector<telemetry::RecordSink*> sinks_;
  std::vector<telemetry::MetricsSink*> metrics_sinks_;
  telemetry::DurableRecordSink* durable_ = nullptr;
  /// Parallel engine, created on the first sharded day and kept across days
  /// (and across set_threads() calls that don't change the count).
  std::unique_ptr<exec::ShardedDayRunner> runner_;
  /// Reusable shard staging slab (see DayShards). Rebuilt only when the
  /// shard geometry changes; released wholesale under memory pressure.
  std::unique_ptr<DayShards> day_shards_;
  supervise::StudySupervisor* supervisor_ = nullptr;
  /// UEs withdrawn from the study by supervised degradation (sorted,
  /// unique). Part of the checkpoint: resume must skip the same UEs.
  std::vector<devices::UeId> quarantined_ues_;
  std::uint64_t records_emitted_ = 0;
  int next_day_ = 0;

  std::uint64_t obs_epoch_ = UINT64_MAX;
  /// Epoch the runner_'s construction-captured handles belong to; a registry
  /// swap forces a runner (and pool) rebuild on the next sharded day.
  std::uint64_t runner_obs_epoch_ = UINT64_MAX;
  obs::Counter obs_days_;
  obs::Counter obs_ue_days_;
  obs::Counter obs_records_;
  obs::Gauge obs_quarantined_;
  obs::Histogram obs_day_seconds_;
  /// Serial-path span recorded into the shared "tl_exec_shard_sim_seconds"
  /// family so --profile stage accounting works at 1 thread too.
  obs::Histogram obs_serial_sim_seconds_;
};

}  // namespace tl::core
