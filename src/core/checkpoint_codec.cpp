#include "core/checkpoint_codec.hpp"

#include <stdexcept>

#include "util/crc32c.hpp"

namespace tl::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'L', 'C', 'P'};
// v1: fixed layout, no quarantine list. v2 appends `u32 count` plus `count`
// ascending u32 UE ids between the region counters and the CRC trailer, so
// the quarantined set commits atomically with the records and the cursor.
constexpr std::uint16_t kVersionV1 = 1;
constexpr std::uint16_t kVersionV2 = 2;

void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}
void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

// magic + version + next_day + seed + records + 13 counters per region
constexpr std::size_t kRegionCounters = 13;
constexpr std::size_t kFixedSize =
    4 + 2 + 4 + 8 + 8 + geo::kAllRegions.size() * kRegionCounters * 8;
constexpr std::size_t kV1Size = kFixedSize + 4;  // + crc

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const DayCheckpoint& cp) {
  std::vector<std::uint8_t> out;
  out.reserve(kFixedSize + 8 + cp.quarantined_ues.size() * 4);
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u16(out, kVersionV2);
  put_u32(out, static_cast<std::uint32_t>(cp.next_day));
  put_u64(out, cp.seed);
  put_u64(out, cp.records_emitted);
  for (const auto region : geo::kAllRegions) {
    const auto& mme = cp.core.mme(region);
    const auto& sgsn = cp.core.sgsn(region);
    const auto& msc = cp.core.msc(region);
    const auto& sgw = cp.core.sgw(region);
    put_u64(out, mme.handovers.procedures);
    put_u64(out, mme.handovers.successes);
    put_u64(out, mme.handovers.failures);
    put_u64(out, mme.path_switches.procedures);
    put_u64(out, mme.path_switches.successes);
    put_u64(out, mme.path_switches.failures);
    put_u64(out, sgsn.relocations.procedures);
    put_u64(out, sgsn.relocations.successes);
    put_u64(out, sgsn.relocations.failures);
    put_u64(out, msc.srvcc.procedures);
    put_u64(out, msc.srvcc.successes);
    put_u64(out, msc.srvcc.failures);
    put_u64(out, sgw.bearer_modifications);
  }
  put_u32(out, static_cast<std::uint32_t>(cp.quarantined_ues.size()));
  for (const auto ue : cp.quarantined_ues) put_u32(out, ue);
  put_u32(out, util::mask_crc32c(util::crc32c(out.data(), out.size())));
  return out;
}

DayCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  const auto corrupt = [] {
    return std::runtime_error{"decode_checkpoint: corrupt checkpoint bytes"};
  };
  // Structure first (so the CRC offset is trustworthy), CRC second, field
  // parse last: truncation and extension fail the exact-size checks, bit
  // flips fail either the structure checks or the CRC.
  if (bytes.size() < kV1Size) throw corrupt();
  const std::uint8_t* p = bytes.data();
  if (p[0] != kMagic[0] || p[1] != kMagic[1] || p[2] != kMagic[2] || p[3] != kMagic[3]) {
    throw corrupt();
  }
  const std::uint16_t version = static_cast<std::uint16_t>(p[4] | (p[5] << 8));
  std::uint32_t quarantine_count = 0;
  if (version == kVersionV1) {
    if (bytes.size() != kV1Size) throw corrupt();
  } else if (version == kVersionV2) {
    if (bytes.size() < kFixedSize + 8) throw corrupt();
    quarantine_count = get_u32(p + kFixedSize);
    // Exact-size check against the declared count: a flipped count byte (or
    // a truncated/extended list) can no longer masquerade as valid.
    const std::uint64_t expected =
        static_cast<std::uint64_t>(kFixedSize) + 8 +
        static_cast<std::uint64_t>(quarantine_count) * 4;
    if (bytes.size() != expected) throw corrupt();
  } else {
    throw corrupt();
  }
  const std::uint32_t stored = util::unmask_crc32c(get_u32(p + bytes.size() - 4));
  if (stored != util::crc32c(p, bytes.size() - 4)) throw corrupt();

  DayCheckpoint cp;
  cp.next_day = static_cast<int>(get_u32(p + 6));
  cp.seed = get_u64(p + 10);
  cp.records_emitted = get_u64(p + 18);
  std::size_t offset = 26;
  for (const auto region : geo::kAllRegions) {
    auto& mme = cp.core.mme(region);
    auto& sgsn = cp.core.sgsn(region);
    auto& msc = cp.core.msc(region);
    auto& sgw = cp.core.sgw(region);
    std::uint64_t* fields[kRegionCounters] = {
        &mme.handovers.procedures,   &mme.handovers.successes,
        &mme.handovers.failures,     &mme.path_switches.procedures,
        &mme.path_switches.successes, &mme.path_switches.failures,
        &sgsn.relocations.procedures, &sgsn.relocations.successes,
        &sgsn.relocations.failures,  &msc.srvcc.procedures,
        &msc.srvcc.successes,        &msc.srvcc.failures,
        &sgw.bearer_modifications};
    for (auto* field : fields) {
      *field = get_u64(p + offset);
      offset += 8;
    }
  }
  if (version == kVersionV2) {
    cp.quarantined_ues.reserve(quarantine_count);
    offset = kFixedSize + 4;
    for (std::uint32_t i = 0; i < quarantine_count; ++i) {
      const std::uint32_t ue = get_u32(p + offset);
      offset += 4;
      // The set is canonical (sorted, unique) by construction; anything else
      // behind a valid CRC would be an encoder bug — reject it.
      if (!cp.quarantined_ues.empty() && ue <= cp.quarantined_ues.back()) {
        throw corrupt();
      }
      cp.quarantined_ues.push_back(ue);
    }
  }
  return cp;
}

}  // namespace tl::core
