#include "core/checkpoint_codec.hpp"

#include <stdexcept>

#include "util/crc32c.hpp"

namespace tl::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'L', 'C', 'P'};
constexpr std::uint16_t kVersion = 1;

void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}
void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

// magic + version + next_day + seed + records + 13 counters per region + crc
constexpr std::size_t kRegionCounters = 13;
constexpr std::size_t kEncodedSize =
    4 + 2 + 4 + 8 + 8 + geo::kAllRegions.size() * kRegionCounters * 8 + 4;

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const DayCheckpoint& cp) {
  std::vector<std::uint8_t> out;
  out.reserve(kEncodedSize);
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u16(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(cp.next_day));
  put_u64(out, cp.seed);
  put_u64(out, cp.records_emitted);
  for (const auto region : geo::kAllRegions) {
    const auto& mme = cp.core.mme(region);
    const auto& sgsn = cp.core.sgsn(region);
    const auto& msc = cp.core.msc(region);
    const auto& sgw = cp.core.sgw(region);
    put_u64(out, mme.handovers.procedures);
    put_u64(out, mme.handovers.successes);
    put_u64(out, mme.handovers.failures);
    put_u64(out, mme.path_switches.procedures);
    put_u64(out, mme.path_switches.successes);
    put_u64(out, mme.path_switches.failures);
    put_u64(out, sgsn.relocations.procedures);
    put_u64(out, sgsn.relocations.successes);
    put_u64(out, sgsn.relocations.failures);
    put_u64(out, msc.srvcc.procedures);
    put_u64(out, msc.srvcc.successes);
    put_u64(out, msc.srvcc.failures);
    put_u64(out, sgw.bearer_modifications);
  }
  put_u32(out, util::mask_crc32c(util::crc32c(out.data(), out.size())));
  return out;
}

DayCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  const auto corrupt = [] {
    return std::runtime_error{"decode_checkpoint: corrupt checkpoint bytes"};
  };
  if (bytes.size() != kEncodedSize) throw corrupt();
  const std::uint8_t* p = bytes.data();
  if (p[0] != kMagic[0] || p[1] != kMagic[1] || p[2] != kMagic[2] || p[3] != kMagic[3]) {
    throw corrupt();
  }
  if ((p[4] | (p[5] << 8)) != kVersion) throw corrupt();
  const std::uint32_t stored = util::unmask_crc32c(get_u32(p + kEncodedSize - 4));
  if (stored != util::crc32c(p, kEncodedSize - 4)) throw corrupt();

  DayCheckpoint cp;
  cp.next_day = static_cast<int>(get_u32(p + 6));
  cp.seed = get_u64(p + 10);
  cp.records_emitted = get_u64(p + 18);
  std::size_t offset = 26;
  for (const auto region : geo::kAllRegions) {
    auto& mme = cp.core.mme(region);
    auto& sgsn = cp.core.sgsn(region);
    auto& msc = cp.core.msc(region);
    auto& sgw = cp.core.sgw(region);
    std::uint64_t* fields[kRegionCounters] = {
        &mme.handovers.procedures,   &mme.handovers.successes,
        &mme.handovers.failures,     &mme.path_switches.procedures,
        &mme.path_switches.successes, &mme.path_switches.failures,
        &sgsn.relocations.procedures, &sgsn.relocations.successes,
        &sgsn.relocations.failures,  &msc.srvcc.procedures,
        &msc.srvcc.successes,        &msc.srvcc.failures,
        &sgw.bearer_modifications};
    for (auto* field : fields) {
      *field = get_u64(p + offset);
      offset += 8;
    }
  }
  return cp;
}

}  // namespace tl::core
