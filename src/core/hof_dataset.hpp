#pragma once

// The §6.3 modeling dataset and the paper's statistical models over it.
//
// Rows are (source sector, day, HO type) observations with the daily HOF
// rate as dependent variable and the Table 3 covariates joined from the
// topology and census datasets. On top: the ANOVA / Kruskal-Wallis tests,
// the OLS models of Tables 4, 5 and 7, and the quantile regressions of
// Tables 8 and 9 — all expected to recover the generative model's effects.

#include <array>
#include <span>
#include <vector>

#include "analysis/anova.hpp"
#include "analysis/linear_model.hpp"
#include "analysis/summary.hpp"
#include "geo/country.hpp"
#include "telemetry/aggregates.hpp"
#include "topology/deployment.hpp"

namespace tl::core {

/// Area class for the regression: postcodes without reliable census data
/// form their own (baseline) level, which is why the paper's Table 5 shows
/// separate coefficients for both Rural and Urban.
enum class AreaClass : std::uint8_t {
  kUnclassified = 0,
  kRural,
  kUrban,
};

struct ModelObservation {
  topology::SectorId sector = 0;
  int day = 0;
  topology::ObservedRat target = topology::ObservedRat::kG45Nsa;
  std::uint32_t daily_hos = 0;
  std::uint32_t failures = 0;
  double hof_rate_pct = 0.0;
  topology::Vendor vendor = topology::Vendor::kV1;
  AreaClass area = AreaClass::kUnclassified;
  geo::Region region = geo::Region::kCapital;
  double district_population = 0.0;
};

class HofModelingDataset {
 public:
  /// Joins the sector-day aggregates with topology and census context.
  static HofModelingDataset build(const telemetry::SectorDayAggregator& aggregator,
                                  const topology::Deployment& deployment,
                                  const geo::Country& country);

  std::span<const ModelObservation> rows() const noexcept { return rows_; }
  std::size_t size() const noexcept { return rows_.size(); }

  /// Rows with a non-zero HOF rate (the log models regress over these).
  HofModelingDataset nonzero() const;
  /// The paper's outlier filter: HOF rate < `max_rate_pct` and daily HOs in
  /// [min_hos, max_hos].
  HofModelingDataset filtered(double max_rate_pct = 50.0, std::uint32_t min_hos = 10,
                              std::uint32_t max_hos = 30'000) const;
  /// Drops HOs toward 2G (Table 7's robustness variant).
  HofModelingDataset without_2g() const;

  /// Table 6: summary statistics of daily HOs and HOF rate.
  analysis::SixNumberSummary summary_daily_hos() const;
  analysis::SixNumberSummary summary_hof_rate() const;

  /// Median HOF rate (pct) per HO type — the §6.3 "first look" numbers
  /// (0.04 / 5.85 / 21.42 in the paper).
  std::array<double, 3> median_rate_by_type() const;

  /// log(HOF rate) groups per HO type over non-zero rows, for ANOVA / KW.
  std::array<std::vector<double>, 3> log_rate_groups() const;
  analysis::AnovaResult anova_by_type() const;
  analysis::KruskalWallisResult kruskal_wallis_by_type() const;

  /// Table 4: univariate log-linear model, intra 4G/5G-NSA as baseline.
  analysis::LinearModel fit_univariate() const;
  /// Tables 5 / 7: all covariates (HO type, daily HOs, area class, vendor,
  /// region, district population).
  analysis::LinearModel fit_full() const;
  /// Tables 8 / 9: quantile regression on HO type alone.
  analysis::QuantileFit fit_quantile(double tau) const;

  /// Appendix B robustness: forward step-wise covariate selection by AIC.
  /// Starts from the intercept-only model and greedily adds the covariate
  /// group that improves AIC most, stopping when nothing does.
  struct StepwiseResult {
    std::vector<std::string> selected;  // covariate groups, in pick order
    analysis::LinearModel model;        // fit over the selected groups
  };
  StepwiseResult fit_stepwise() const;

  /// The covariate groups the step-wise search considers (Table 3).
  static const std::vector<std::string>& covariate_groups();

 private:
  analysis::DesignBuilder build_design(bool full) const;
  /// Design restricted to the named covariate groups.
  analysis::DesignBuilder build_design_for(const std::vector<std::string>& groups) const;
  std::vector<double> log_rates() const;

  std::vector<ModelObservation> rows_;
};

}  // namespace tl::core
