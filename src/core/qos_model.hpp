#pragma once

// Quality-of-Service impact model (§8 future work: "explore the impact of
// HOFs on performance metrics, such as throughput ... from the operator's
// perspective").
//
// Converts handover records into user-plane damage: every HO interrupts the
// data path for its signaling time; a failed HO adds an RRC
// re-establishment outage (long for timeout/cancellation causes, per Fig.
// 14b); a successful *vertical* HO parks the UE on a slower RAT for a hold
// period, costing throughput relative to staying on 4G/5G.

#include <array>

#include "telemetry/records.hpp"
#include "telemetry/sinks.hpp"

namespace tl::core {

struct QosParams {
  /// Sustained user throughput per observed RAT class {2G, 3G, 4G/5G}, Mbps.
  std::array<double, 3> throughput_mbps{0.1, 4.0, 45.0};
  /// RRC re-establishment time added after a failed HO, ms.
  double reestablishment_ms = 450.0;
  /// How long a vertical HO strands the UE on the legacy RAT before it
  /// reselects back, ms.
  double fallback_hold_ms = 30'000.0;
  /// Fraction of UEs actively transferring data when a HO strikes.
  double active_transfer_share = 0.25;
};

/// User-plane damage attributed to one handover record.
struct SessionImpact {
  /// Data-path interruption (success: signaling time; failure: + recovery).
  double interruption_ms = 0.0;
  /// Throughput-loss equivalent in megabytes versus an uninterrupted 4G/5G
  /// session (interruption loss + slow-RAT residency loss).
  double lost_mbytes = 0.0;
};

class QosModel {
 public:
  explicit QosModel(const QosParams& params = {}) : params_(params) {}

  SessionImpact assess(const telemetry::HandoverRecord& record) const noexcept;

  const QosParams& params() const noexcept { return params_; }

 private:
  QosParams params_;
};

/// Streaming aggregation of QoS damage (per device type and overall).
class QosAggregator : public telemetry::RecordSink {
 public:
  explicit QosAggregator(const QosParams& params = {}) : model_(params) {}

  void consume(const telemetry::HandoverRecord& record) override;

  double total_interruption_ms() const noexcept { return total_interruption_ms_; }
  double total_lost_mbytes() const noexcept { return total_lost_mbytes_; }
  std::uint64_t records() const noexcept { return records_; }

  /// Mean interruption per successful HO vs per failed HO, ms.
  double mean_interruption_success_ms() const noexcept;
  double mean_interruption_failure_ms() const noexcept;

  /// Damage attributable to vertical HOs (success + failure).
  double vertical_share_of_loss() const noexcept;

 private:
  QosModel model_;
  std::uint64_t records_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t failures_ = 0;
  double total_interruption_ms_ = 0.0;
  double total_lost_mbytes_ = 0.0;
  double success_interruption_ms_ = 0.0;
  double failure_interruption_ms_ = 0.0;
  double vertical_lost_mbytes_ = 0.0;
};

}  // namespace tl::core
