// Simulator <-> StudySupervisor glue: the only TU in tl_core that needs the
// supervisor's full type. The supervisor is generic over item indices; here
// items become UEs (UeId == population index), the per-shard staging becomes
// CoreNetwork + record/metrics buffers, and the merge becomes the same
// ordered drain the unsupervised sharded path uses — which is why a
// supervised run's output is byte-identical to an unsupervised serial run
// over the surviving population.

#include <algorithm>
#include <span>
#include <vector>

#include "core/simulator.hpp"
#include "exec/buffers.hpp"
#include "supervise/supervisor.hpp"

namespace tl::core {

void Simulator::run_day_supervised(int day) {
  supervise::StudySupervisor& sup = *supervisor_;
  const auto& ues = population_->ues();
  const bool want_metrics = config_.collect_ue_metrics && !metrics_sinks_.empty();
  const supervise::TaskFaultInjector* injector = sup.options().injector;

  struct Shard {
    corenet::CoreNetwork core;
    exec::RecordBuffer records;
    exec::MetricsBuffer metrics;
    std::uint64_t emitted = 0;
  };
  std::vector<Shard> shards(sup.shard_count(ues.size()));

  // Shared by shard attempts (worker threads) and bisection probes (caller
  // thread): simulate [first, last) into `staging`, honoring the skip set
  // and the cancellation token. Resets the staging on entry so a retried
  // attempt can never double-emit.
  const auto simulate_range = [&](Shard& staging, std::size_t first,
                                  std::size_t last,
                                  const supervise::CancelToken* cancel,
                                  std::span<const std::uint32_t> skip) {
    staging = Shard{};
    telemetry::RecordSink* record_sink = &staging.records;
    telemetry::MetricsSink* metrics_sink = &staging.metrics;
    EmitFrame out;
    out.core = &staging.core;
    out.sinks = {&record_sink, 1};
    if (want_metrics) out.metrics_sinks = {&metrics_sink, 1};
    out.cancel = cancel;
    for (std::size_t i = first; i < last; ++i) {
      const auto& ue = ues[i];
      if (std::binary_search(skip.begin(), skip.end(),
                             static_cast<std::uint32_t>(ue.id))) {
        continue;
      }
      if (cancel != nullptr) cancel->throw_if_cancelled();
      // Poison channel of the chaos injector: per-UE, day- and
      // thread-independent, so bisection isolates the same UEs everywhere.
      if (injector != nullptr) injector->on_ue(ue.id, cancel);
      if (topology::supports(ue.rat_support, topology::Rat::kG4)) {
        simulate_ue_day(ue, plans_[ue.id], day, out);
      } else if (want_metrics) {
        simulate_legacy_ue_day(ue, plans_[ue.id], day, out);
      }
    }
    staging.emitted = out.records;
  };

  const supervise::DayReport report = sup.run_day(
      day, ues.size(), quarantined_ues_,
      [&](std::size_t shard, std::size_t first, std::size_t last,
          const supervise::CancelToken* cancel,
          std::span<const std::uint32_t> skip) {
        simulate_range(shards[shard], first, last, cancel, skip);
      },
      [&](std::size_t first, std::size_t last,
          const supervise::CancelToken* cancel,
          std::span<const std::uint32_t> skip) {
        Shard scratch;  // probe output is evidence, not data — discarded
        simulate_range(scratch, first, last, cancel, skip);
      },
      [&](std::size_t shard) {
        Shard& s = shards[shard];
        s.records.drain_to({sinks_.data(), sinks_.size()});
        s.metrics.drain_to({metrics_sinks_.data(), metrics_sinks_.size()});
        core_.accumulate(s.core);
        records_emitted_ += s.emitted;
      });

  // Fold the day's quarantine into the persistent set BEFORE run_day()'s
  // on_day_end loop fires: the durable log's commit marker must embed the
  // post-day checkpoint including the UEs this very day withdrew.
  for (const auto& q : report.quarantined) {
    const auto pos = std::lower_bound(quarantined_ues_.begin(),
                                      quarantined_ues_.end(), q.item);
    if (pos == quarantined_ues_.end() || *pos != q.item) {
      quarantined_ues_.insert(pos, q.item);
    }
  }
}

}  // namespace tl::core
