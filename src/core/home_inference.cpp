#include "core/home_inference.hpp"

#include <cmath>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace tl::core {

HomeInferenceResult infer_home_locations(const geo::Country& country,
                                         const topology::Deployment& deployment,
                                         const devices::Population& population,
                                         int min_nights, int study_days,
                                         std::uint64_t seed) {
  HomeInferenceResult result;
  const auto districts = country.districts();
  result.inferred_users.assign(districts.size(), 0);
  result.census_population.resize(districts.size());
  for (std::size_t i = 0; i < districts.size(); ++i) {
    result.census_population[i] = districts[i].population;
  }

  for (const auto& ue : population.ues()) {
    // Nights-observed model: each UE has a stable camping availability; the
    // number of nights it is observable is Binomial(study_days, availability).
    util::Rng rng = util::Rng::derive(seed, 0x4073u, ue.id);
    const double availability = 0.55 + 0.43 * rng.uniform();
    int nights = 0;
    for (int d = 0; d < study_days; ++d) {
      if (rng.chance(availability)) ++nights;
    }
    if (nights < min_nights) continue;

    // Dominant night cell: the site nearest the (jittered) home anchor.
    const auto& pc = country.postcode(ue.home_postcode);
    util::GeoPoint night_anchor{pc.centroid.x_km + rng.normal(0.0, 0.4),
                                pc.centroid.y_km + rng.normal(0.0, 0.4)};
    const topology::SiteId site = deployment.site_index().nearest(night_anchor);
    if (site == geo::SpatialIndex::kNotFound) continue;
    const geo::PostcodeId mapped_pc = deployment.site(site).postcode;
    const geo::DistrictId district = country.postcode(mapped_pc).district;
    ++result.inferred_users[district];
  }

  // Fig. 5 fits census population against the inferred MNO user base.
  std::vector<double> x(districts.size());
  std::vector<double> y(districts.size());
  for (std::size_t i = 0; i < districts.size(); ++i) {
    x[i] = static_cast<double>(result.inferred_users[i]);
    y[i] = static_cast<double>(result.census_population[i]);
  }
  result.fit = analysis::simple_linear_fit(x, y);
  return result;
}

}  // namespace tl::core
