#pragma once

// Control-plane event generation for the full signaling dataset (§3.1).
//
// Rates are per-UE-day, modulated by the diurnal activity curve so paging
// and service requests follow the same daily rhythm as handovers:
//   - attach/detach: ~1-2 cycles/day (overnight detach common for phones,
//     rare for always-on M2M modules)
//   - service requests: proportional to user activity
//   - paging: mobile-terminated traffic, heavier for smartphones
//   - TAU: periodic (the standard T3412 timer) plus movement-triggered
//     updates when the UE crosses tracking areas (proxied by HO count).

#include "devices/population.hpp"
#include "geo/country.hpp"
#include "mobility/activity.hpp"
#include "telemetry/control_events.hpp"

namespace tl::core {

struct ControlPlaneRates {
  /// Mean daily event counts per device type {smartphone, M2M/IoT, feature}.
  double attach_cycles[3] = {1.6, 0.3, 1.2};
  double service_requests[3] = {90.0, 9.0, 20.0};
  double pagings[3] = {45.0, 3.0, 12.0};
  /// Periodic TAU interval (T3412), hours.
  double periodic_tau_hours = 3.0;
  /// Movement TAUs per handover (tracking areas span many cells).
  double tau_per_handover = 0.06;
};

class ControlPlaneGenerator {
 public:
  ControlPlaneGenerator(const geo::Country& country,
                        const mobility::ActivityModel& activity,
                        ControlPlaneRates rates = {}, std::uint64_t seed = 0xc0de)
      : country_(country), activity_(activity), rates_(rates), seed_(seed) {}

  /// Emits one UE-day of control-plane events to `sink`, given the number
  /// of handovers the UE performed that day (drives movement TAUs).
  /// Deterministic per (seed, ue, day).
  void generate_day(const devices::Ue& ue, int day, std::uint32_t handovers,
                    telemetry::ControlEventSink& sink) const;

  const ControlPlaneRates& rates() const noexcept { return rates_; }

 private:
  const geo::Country& country_;
  const mobility::ActivityModel& activity_;
  ControlPlaneRates rates_;
  std::uint64_t seed_;
};

}  // namespace tl::core
