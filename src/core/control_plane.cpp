#include "core/control_plane.hpp"

#include <cmath>

namespace tl::core {

namespace {

std::size_t poisson_draw(double mean, util::Rng& rng) {
  if (mean <= 0.0) return 0;
  if (mean < 50.0) {
    const double limit = std::exp(-mean);
    double prod = rng.uniform();
    std::size_t n = 0;
    while (prod > limit) {
      prod *= rng.uniform();
      ++n;
    }
    return n;
  }
  return static_cast<std::size_t>(
      std::max(0.0, std::round(mean + std::sqrt(mean) * rng.normal())));
}

}  // namespace

void ControlPlaneGenerator::generate_day(const devices::Ue& ue, int day,
                                         std::uint32_t handovers,
                                         telemetry::ControlEventSink& sink) const {
  util::Rng rng = util::Rng::derive(seed_, 0xc7e1u, ue.id,
                                    static_cast<std::uint64_t>(day));
  const auto& pc = country_.postcode(ue.home_postcode);
  const geo::AreaType area = pc.area_type();
  const auto type_idx = static_cast<std::size_t>(ue.type);

  telemetry::ControlPlaneEvent event;
  event.anon_user_id = ue.anon_id;
  event.device_type = ue.type;
  event.area = area;

  const auto emit_n = [&](telemetry::ControlEventType type, std::size_t n,
                          bool diurnal) {
    event.type = type;
    for (std::size_t i = 0; i < n; ++i) {
      event.timestamp =
          diurnal ? activity_.sample_event_time(day, area, rng)
                  : static_cast<util::TimestampMs>(day) * util::kMsPerDay +
                        static_cast<util::TimestampMs>(rng.uniform() * util::kMsPerDay);
      sink.consume(event);
    }
  };

  // Attach/detach cycles: each cycle is one attach and one detach; phones
  // commonly detach overnight (airplane mode, power off).
  const std::size_t cycles = poisson_draw(rates_.attach_cycles[type_idx], rng);
  emit_n(telemetry::ControlEventType::kAttach, cycles, /*diurnal=*/true);
  emit_n(telemetry::ControlEventType::kDetach, cycles, /*diurnal=*/true);

  // Service requests and paging follow the activity curve.
  emit_n(telemetry::ControlEventType::kServiceRequest,
         poisson_draw(rates_.service_requests[type_idx], rng), true);
  emit_n(telemetry::ControlEventType::kPaging,
         poisson_draw(rates_.pagings[type_idx], rng), true);

  // TAU: periodic timer around the clock, plus movement-triggered updates.
  const double periodic = 24.0 / std::max(rates_.periodic_tau_hours, 0.25);
  emit_n(telemetry::ControlEventType::kTrackingAreaUpdate,
         poisson_draw(periodic, rng), /*diurnal=*/false);
  emit_n(telemetry::ControlEventType::kTrackingAreaUpdate,
         poisson_draw(rates_.tau_per_handover * handovers, rng), /*diurnal=*/true);
}

}  // namespace tl::core
