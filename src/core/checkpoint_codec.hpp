#pragma once

// Binary (de)serialization of DayCheckpoint for embedding inside the durable
// record log's day commit markers.
//
// Persisting the checkpoint *inside* the marker is what makes "records
// through day D" and "resume state after day D" a single atomic unit: the
// marker frame either survives (CRC-valid, behind an fsync) carrying both,
// or recovery discards both together. There is no ordering window between
// two files to reconcile. The standalone text checkpoint file
// (Simulator::save_checkpoint) remains as a human-readable secondary for
// runs without a durable log.

#include <cstdint>
#include <span>
#include <vector>

#include "core/simulator.hpp"

namespace tl::core {

/// Fixed-layout little-endian encoding with a CRC32C trailer.
std::vector<std::uint8_t> encode_checkpoint(const DayCheckpoint& checkpoint);

/// Throws std::runtime_error on truncation, bad magic/version, or CRC
/// mismatch — a corrupt checkpoint never partially restores.
DayCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

}  // namespace tl::core
