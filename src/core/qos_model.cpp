#include "core/qos_model.hpp"

namespace tl::core {

SessionImpact QosModel::assess(const telemetry::HandoverRecord& record) const noexcept {
  SessionImpact impact;
  impact.interruption_ms = record.duration_ms;
  if (!record.success) impact.interruption_ms += params_.reestablishment_ms;

  // Loss while the data path is down, assuming full-rate 4G/5G transfer for
  // the active-transfer share of sessions. Mbps * ms / 8e3 = MB.
  const double full_rate =
      params_.throughput_mbps[static_cast<std::size_t>(topology::ObservedRat::kG45Nsa)];
  impact.lost_mbytes = params_.active_transfer_share * full_rate *
                       impact.interruption_ms / 8'000.0;

  // A successful vertical HO strands the UE on the slower RAT for a while:
  // the loss is the throughput gap over the hold period.
  if (record.success && record.is_vertical()) {
    const double slow_rate =
        params_.throughput_mbps[static_cast<std::size_t>(record.target_rat)];
    const double gap_mbps = full_rate - slow_rate;
    if (gap_mbps > 0.0) {
      impact.lost_mbytes +=
          params_.active_transfer_share * gap_mbps * params_.fallback_hold_ms / 8'000.0;
    }
  }
  return impact;
}

void QosAggregator::consume(const telemetry::HandoverRecord& record) {
  const SessionImpact impact = model_.assess(record);
  ++records_;
  total_interruption_ms_ += impact.interruption_ms;
  total_lost_mbytes_ += impact.lost_mbytes;
  if (record.success) {
    ++successes_;
    success_interruption_ms_ += impact.interruption_ms;
  } else {
    ++failures_;
    failure_interruption_ms_ += impact.interruption_ms;
  }
  if (record.is_vertical()) vertical_lost_mbytes_ += impact.lost_mbytes;
}

double QosAggregator::mean_interruption_success_ms() const noexcept {
  return successes_ ? success_interruption_ms_ / static_cast<double>(successes_) : 0.0;
}

double QosAggregator::mean_interruption_failure_ms() const noexcept {
  return failures_ ? failure_interruption_ms_ / static_cast<double>(failures_) : 0.0;
}

double QosAggregator::vertical_share_of_loss() const noexcept {
  return total_lost_mbytes_ > 0.0 ? vertical_lost_mbytes_ / total_lost_mbytes_ : 0.0;
}

}  // namespace tl::core
