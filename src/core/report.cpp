#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/correlation.hpp"
#include "analysis/summary.hpp"

namespace tl::core {

DatasetStats dataset_stats(const Simulator& sim, std::uint64_t total_records) {
  DatasetStats s;
  s.districts = sim.country().districts().size();
  s.cell_sites = sim.deployment().sites().size();
  s.radio_sectors = sim.deployment().sectors().size();
  s.ues_measured = sim.population().size();
  s.days = sim.config().days;
  s.daily_handovers =
      s.days > 0 ? static_cast<double>(total_records) / static_cast<double>(s.days) : 0.0;
  s.scale = sim.config().scale;
  const double inv = s.scale > 0.0 ? 1.0 / s.scale : 0.0;
  s.full_scale_sites = static_cast<double>(s.cell_sites) * inv;
  s.full_scale_sectors = static_cast<double>(s.radio_sectors) * inv;
  s.full_scale_ues = static_cast<double>(s.ues_measured) *
                     (StudyConfig::kFullScaleUes /
                      std::max(1.0, static_cast<double>(sim.config().population.count)));
  s.full_scale_daily_handovers =
      s.daily_handovers * StudyConfig::kFullScaleUes /
      std::max(1.0, static_cast<double>(sim.config().population.count));
  return s;
}

DistrictHoDensity district_ho_density(const Simulator& sim,
                                      const telemetry::DistrictAggregator& districts) {
  DistrictHoDensity out;
  const auto all = sim.country().districts();
  const int days = std::max(sim.config().days, 1);
  for (const auto& d : all) {
    const auto& tally = districts.district(d.id);
    const double daily_hos = static_cast<double>(tally.handovers) / days;
    out.hos_per_km2.push_back(daily_hos / std::max(d.area_km2, 1e-6));
    out.population_density.push_back(d.population_density());
  }
  out.pearson = analysis::pearson(out.hos_per_km2, out.population_density);
  out.max_hos_per_km2 = *std::max_element(out.hos_per_km2.begin(), out.hos_per_km2.end());
  out.min_hos_per_km2 = *std::min_element(out.hos_per_km2.begin(), out.hos_per_km2.end());
  out.mean_hos_per_km2 = analysis::mean(out.hos_per_km2);
  return out;
}

DistrictRatShares district_rat_shares(const Simulator& sim,
                                      const telemetry::DistrictAggregator& districts) {
  DistrictRatShares out;
  const auto all = sim.country().districts();
  std::vector<std::pair<double, std::size_t>> density_order;
  for (const auto& d : all) {
    const auto& tally = districts.district(d.id);
    std::array<double, 3> share{};
    if (tally.handovers > 0) {
      for (std::size_t rat = 0; rat < 3; ++rat) {
        share[rat] = static_cast<double>(tally.by_target[rat]) /
                     static_cast<double>(tally.handovers);
      }
    }
    out.shares.push_back(share);
    density_order.emplace_back(d.population_density(), out.shares.size() - 1);
    out.max_2g_share = std::max(out.max_2g_share, share[0]);
    out.max_3g_share = std::max(out.max_3g_share, share[1]);
    out.max_intra_share = std::max(out.max_intra_share, share[2]);
  }
  std::sort(density_order.begin(), density_order.end());
  const std::size_t least_dense =
      std::max<std::size_t>(2, static_cast<std::size_t>(0.06 * all.size()));
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < density_order.size() && counted < least_dense; ++i) {
    const auto& share = out.shares[density_order[i].second];
    if (share[0] + share[1] + share[2] == 0.0) continue;  // no observed HOs
    sum += share[1];
    ++counted;
  }
  out.mean_3g_least_dense = counted ? sum / static_cast<double>(counted) : 0.0;
  return out;
}

ManufacturerNormalized manufacturer_normalized(
    const Simulator& sim, const telemetry::DistrictAggregator& districts,
    std::size_t min_devices_per_pair) {
  ManufacturerNormalized out;
  const auto makers = sim.catalog().manufacturers();
  const auto all_districts = sim.country().districts();

  // Device counts per (district, manufacturer) and per (district, type).
  // Normalization is within device type: a maker's HOs/UE against the same
  // type's district average, so observability differences between classes
  // do not masquerade as behaviour.
  const std::size_t n_makers = makers.size();
  std::vector<std::uint32_t> ue_count(all_districts.size() * n_makers, 0);
  std::vector<std::uint32_t> ue_by_type(all_districts.size() * 3u, 0);
  for (const auto& ue : sim.population().ues()) {
    ++ue_count[ue.home_district * n_makers + ue.manufacturer];
    ++ue_by_type[ue.home_district * 3u + static_cast<std::size_t>(ue.type)];
  }

  for (const auto& maker : makers) {
    ManufacturerNormalized::Row row;
    row.name = maker.name;
    row.id = maker.id;
    const auto type_idx = static_cast<std::size_t>(maker.type);
    for (const auto& d : all_districts) {
      const std::uint32_t n_ue = ue_count[d.id * n_makers + maker.id];
      const std::uint32_t n_type_ue = ue_by_type[d.id * 3u + type_idx];
      if (n_ue < min_devices_per_pair || n_type_ue == 0) continue;
      const auto& dt = districts.district(d.id);
      const auto& mt = districts.maker(d.id, maker.id);
      const std::uint64_t type_hos = dt.hos_by_type[type_idx];
      if (type_hos == 0 || mt.handovers == 0) continue;
      const double district_hos_per_ue =
          static_cast<double>(type_hos) / static_cast<double>(n_type_ue);
      const double maker_hos_per_ue =
          static_cast<double>(mt.handovers) / static_cast<double>(n_ue);
      row.normalized_hos.push_back(maker_hos_per_ue / district_hos_per_ue);

      const double district_hof_rate = static_cast<double>(dt.hofs_by_type[type_idx]) /
                                       static_cast<double>(type_hos);
      const double maker_hof_rate =
          static_cast<double>(mt.failures) / static_cast<double>(mt.handovers);
      if (district_hof_rate > 0.0) {
        row.normalized_hof_rate.push_back(maker_hof_rate / district_hof_rate);
      }
    }
    if (row.normalized_hos.size() < 3 || row.normalized_hof_rate.size() < 3) continue;
    row.median_hos = analysis::median(row.normalized_hos);
    row.median_hof_rate = analysis::median(row.normalized_hof_rate);
    out.rows.push_back(std::move(row));
  }

  // Top-5 smartphone makers by national UE count (Fig. 11's left group),
  // and top-5 by median normalized HOF rate (its right group).
  std::vector<std::uint64_t> national_count(n_makers, 0);
  for (const auto& ue : sim.population().ues()) ++national_count[ue.manufacturer];
  std::vector<std::size_t> order(out.rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return national_count[out.rows[a].id] > national_count[out.rows[b].id];
  });
  for (const std::size_t idx : order) {
    if (makers[out.rows[idx].id].type != devices::DeviceType::kSmartphone) continue;
    out.top5_by_share.push_back(idx);
    if (out.top5_by_share.size() == 5) break;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return out.rows[a].median_hof_rate > out.rows[b].median_hof_rate;
  });
  for (std::size_t i = 0; i < order.size() && i < 5; ++i) {
    out.top5_by_hof.push_back(order[i]);
  }
  return out;
}

}  // namespace tl::core
