#include "core/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/checkpoint_codec.hpp"
#include "exec/buffers.hpp"
#include "exec/sharded_runner.hpp"
#include "govern/governor.hpp"
#include "io/file.hpp"
#include "mobility/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "policy/policies.hpp"
#include "ran/propagation.hpp"
#include "supervise/cancellation.hpp"
#include "util/crc32c.hpp"

namespace tl::core {

using topology::ObservedRat;
using topology::kInvalidSector;

Simulator::Simulator(StudyConfig config)
    : config_(std::move(config)),
      load_model_(activity_, config_.seed * 31 + 7),
      energy_(config_.seed * 31 + 8),
      failure_model_([&] {
        corenet::FailureModelConfig fm;
        fm.seed = config_.seed * 31 + 9;
        return fm;
      }()),
      causes_(config_.seed * 31 + 10),
      procedure_(failure_model_, durations_, causes_),
      recovery_(config_.recovery) {
  country_ = std::make_unique<geo::Country>(geo::synthesize_country(config_.census));
  deployment_ = std::make_unique<topology::Deployment>(
      topology::Deployment::build(*country_, config_.deployment));
  catalog_ = std::make_unique<devices::Catalog>(devices::Catalog::build(config_.catalog));
  population_ = std::make_unique<devices::Population>(
      devices::Population::build(*country_, *catalog_, config_.population));
  coverage_ = std::make_unique<ran::CoverageMap>(
      ran::CoverageMap::build(*country_, *deployment_, config_.coverage));
  traces_ = std::make_unique<mobility::TraceGenerator>(*country_, activity_,
                                                       config_.seed * 31 + 11);
  selector_ = std::make_unique<ran::TargetSelector>(*deployment_, *coverage_);
  locator_ = std::make_unique<ran::SectorLocator>(*deployment_, *selector_, energy_);
  policy_ = policy::make_policy(config_.policy);
  policy_env_.deployment = deployment_.get();
  policy_env_.coverage = coverage_.get();
  policy_env_.selector = selector_.get();
  policy_env_.locator = locator_.get();
  policy_env_.load = &load_model_;
  policy_env_.seed = config_.seed;
  policy_env_.suppress_ping_pong = config_.suppress_ping_pong;
  policy_env_.ping_pong_window_ms = config_.ping_pong_window_ms;

  plans_.reserve(population_->size());
  for (const auto& ue : population_->ues()) plans_.push_back(traces_->plan_for(ue));

  calibrate_coverage();
}

Simulator::~Simulator() = default;

void Simulator::calibrate_coverage() {
  // Sample modern UEs evenly and replay one weekday of movement, crediting
  // each event (weighted by the device's fallback multiplier) to the
  // postcode whose site would serve it — the same lookup the hot loop does.
  std::vector<double> volume(country_->postcodes().size(), 0.0);
  std::vector<double> volume_3g(country_->postcodes().size(), 0.0);
  const std::size_t target_sample = 4'000;
  const std::size_t stride =
      std::max<std::size_t>(1, population_->size() / target_sample);
  constexpr int kProbeDay = 0;  // a Monday
  util::Rng probe_rng = util::Rng::derive(config_.seed, 0xca1bu);
  for (std::size_t i = 0; i < population_->size(); i += stride) {
    const auto& ue = population_->ue(static_cast<devices::UeId>(i));
    if (!topology::supports(ue.rat_support, topology::Rat::kG4)) continue;
    const auto trace = traces_->generate(ue, plans_[ue.id], kProbeDay);
    const double mult = ran::CoverageMap::device_fallback_multiplier(ue.type);
    // Replay the hot loop's serving chain so `volume` approximates the HOs
    // that would actually be recorded (same-sector opportunities are skipped
    // there and must not count toward the denominator).
    topology::SectorId serving =
        locate_sector(plans_[ue.id].home, ObservedRat::kG45Nsa, ue, kProbeDay, 0,
                      probe_rng);
    for (const auto& event : trace) {
      const topology::SiteId site = deployment_->site_index().nearest(event.position);
      if (site == geo::SpatialIndex::kNotFound) continue;
      const geo::PostcodeId pc = deployment_->site(site).postcode;
      const int bin = util::SimCalendar::half_hour_bin(event.time);
      const topology::SectorId intra_target =
          locate_sector(event.position, ObservedRat::kG45Nsa, ue, kProbeDay, bin,
                        probe_rng);
      // A drawn fallback executes wherever the coverage profile advertises
      // 3G and a target sector is locatable — even if the intra HO would
      // have been a same-sector no-op.
      const bool fallback_executable =
          coverage_->at(pc).has_rat[static_cast<std::size_t>(topology::Rat::kG3)] &&
          locate_sector(event.position, ObservedRat::kG3, ue, kProbeDay, bin,
                        probe_rng) != kInvalidSector;
      if (fallback_executable) volume_3g[pc] += mult;
      if (intra_target == kInvalidSector) continue;
      if (intra_target != serving) {
        volume[pc] += mult;
        serving = intra_target;
      } else if (fallback_executable) {
        // Counts only via the fallback numerator; approximate its small
        // denominator contribution (it records a HO when the fallback fires).
        volume[pc] += mult * coverage_->at(pc).p_fallback_3g;
      }
    }
  }
  coverage_->recalibrate(volume, volume_3g,
                         config_.coverage.target_share_3g /
                             std::max(config_.coverage.smartphone_volume_share, 0.5));
}

void Simulator::add_sink(telemetry::RecordSink* sink) {
  if (sink == nullptr) throw std::invalid_argument{"Simulator::add_sink: null sink"};
  sinks_.push_back(sink);
}

void Simulator::add_metrics_sink(telemetry::MetricsSink* sink) {
  if (sink == nullptr) throw std::invalid_argument{"Simulator::add_metrics_sink: null"};
  metrics_sinks_.push_back(sink);
}

void Simulator::remove_sink(telemetry::RecordSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  if (durable_ == sink) durable_ = nullptr;
}

void Simulator::remove_metrics_sink(telemetry::MetricsSink* sink) {
  metrics_sinks_.erase(std::remove(metrics_sinks_.begin(), metrics_sinks_.end(), sink),
                       metrics_sinks_.end());
}

void Simulator::set_quarantined_ues(std::vector<devices::UeId> ues) {
  std::sort(ues.begin(), ues.end());
  ues.erase(std::unique(ues.begin(), ues.end()), ues.end());
  if (!ues.empty() && ues.back() >= population_->size()) {
    throw std::invalid_argument{"Simulator::set_quarantined_ues: UE id out of range"};
  }
  quarantined_ues_ = std::move(ues);
}

bool Simulator::is_quarantined(devices::UeId ue) const noexcept {
  return !quarantined_ues_.empty() &&
         std::binary_search(quarantined_ues_.begin(), quarantined_ues_.end(), ue);
}

void Simulator::set_fault_schedule(const faults::FaultSchedule* schedule) {
  faults_ = schedule;
  energy_.set_availability_override(schedule);
  failure_model_.set_fault_schedule(schedule);
  locator_->set_fault_schedule(schedule);
}

void Simulator::attach_durable_log(telemetry::DurableRecordSink* sink) {
  if (sink == nullptr) {
    throw std::invalid_argument{"Simulator::attach_durable_log: null sink"};
  }
  add_sink(sink);
  durable_ = sink;
  sink->set_checkpoint_provider([this] { return encode_checkpoint(checkpoint()); });
}

void Simulator::run() {
  if (next_day_ == 0) {
    if (durable_ != nullptr) {
      // The durable log is the authoritative resume source: the checkpoint
      // embedded in its last committed day marker is, by construction, in
      // lockstep with the record bytes that precede it.
      auto& log = durable_->log();
      if (!log.is_open()) log.open();
      const telemetry::LogRecoveryReport& recovered = log.recovery();
      if (!recovered.app_state.empty()) {
        const DayCheckpoint cp = decode_checkpoint(recovered.app_state);
        if (cp.seed != config_.seed) {
          throw std::runtime_error{"Simulator::run: record log checkpoint seed mismatch"};
        }
        if (cp.next_day != recovered.last_committed_day + 1) {
          throw std::runtime_error{
              "Simulator::run: record log marker day disagrees with its checkpoint"};
        }
        restore(cp);
      }
    } else if (!config_.checkpoint_path.empty()) {
      load_checkpoint(config_.checkpoint_path);
    }
  }
  for (int day = next_day_; day < config_.days; ++day) {
    run_day(day);
    if (!config_.checkpoint_path.empty()) save_checkpoint(config_.checkpoint_path);
  }
}

DayCheckpoint Simulator::checkpoint() const {
  DayCheckpoint cp;
  cp.next_day = next_day_;
  cp.seed = config_.seed;
  cp.records_emitted = records_emitted_;
  cp.core = core_;
  cp.quarantined_ues = quarantined_ues_;
  return cp;
}

void Simulator::restore(const DayCheckpoint& checkpoint) {
  if (checkpoint.seed != config_.seed) {
    throw std::invalid_argument{"Simulator::restore: checkpoint seed mismatch"};
  }
  if (checkpoint.next_day < 0 || checkpoint.next_day > config_.days) {
    throw std::invalid_argument{"Simulator::restore: day cursor out of range"};
  }
  next_day_ = checkpoint.next_day;
  records_emitted_ = checkpoint.records_emitted;
  core_ = checkpoint.core;
  set_quarantined_ues(checkpoint.quarantined_ues);
}

void Simulator::save_checkpoint(const std::string& path) const {
  // Crash-safe protocol: compose the payload (with a CRC32C trailer so the
  // loader can reject bit rot, not just truncation), write it to a sibling
  // temp file, fsync, then rename over the target. A crash at any point
  // leaves either the old checkpoint or the new one — never a torn mix.
  std::ostringstream body;
  body << "telcolens-checkpoint v3\n";
  body << "seed " << config_.seed << "\n";
  body << "next_day " << next_day_ << "\n";
  body << "records_emitted " << records_emitted_ << "\n";
  body << "quarantined " << quarantined_ues_.size();
  for (const auto ue : quarantined_ues_) body << " " << ue;
  body << "\n";
  for (const auto region : geo::kAllRegions) {
    const auto& mme = core_.mme(region);
    const auto& sgsn = core_.sgsn(region);
    const auto& msc = core_.msc(region);
    const auto& sgw = core_.sgw(region);
    body << "region " << static_cast<int>(region) << " " << mme.handovers.procedures
         << " " << mme.handovers.successes << " " << mme.handovers.failures << " "
         << mme.path_switches.procedures << " " << mme.path_switches.successes << " "
         << mme.path_switches.failures << " " << sgsn.relocations.procedures << " "
         << sgsn.relocations.successes << " " << sgsn.relocations.failures << " "
         << msc.srvcc.procedures << " " << msc.srvcc.successes << " "
         << msc.srvcc.failures << " " << sgw.bearer_modifications << "\n";
  }
  std::string payload = body.str();
  char trailer[16];
  std::snprintf(trailer, sizeof trailer, "crc %08x\n",
                util::crc32c(payload.data(), payload.size()));
  payload += trailer;

  const std::string tmp = path + ".tmp";
  auto& fs = io::StdioFileSystem::instance();
  try {
    auto file = fs.open(tmp, io::OpenMode::kTruncate);
    if (file->write(payload.data(), payload.size()) != payload.size()) {
      throw io::IoError{"short write (device full?)"};
    }
    file->sync();
    file->close();
    fs.rename(tmp, path);
  } catch (const io::IoError& error) {
    if (fs.exists(tmp)) fs.remove(tmp);
    throw std::runtime_error{"save_checkpoint: " + std::string{error.what()} + " on " +
                             path};
  }
}

bool Simulator::load_checkpoint(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) return false;  // no checkpoint yet: start from day 0
  const auto corrupt = [&path]() -> std::runtime_error {
    return std::runtime_error{"load_checkpoint: corrupt checkpoint " + path};
  };
  // Verify the CRC trailer over the raw bytes before parsing anything:
  // truncation, bit flips, and trailing garbage all fail here, and no
  // simulator state is touched until the whole file has validated.
  std::ostringstream slurp;
  slurp << file.rdbuf();
  const std::string content = slurp.str();
  const std::size_t crc_pos = content.rfind("\ncrc ");
  if (crc_pos == std::string::npos) throw corrupt();
  const std::string payload = content.substr(0, crc_pos + 1);
  unsigned long stored_crc = 0;
  try {
    std::size_t digits = 0;
    stored_crc = std::stoul(content.substr(crc_pos + 5), &digits, 16);
    if (digits == 0) throw corrupt();
  } catch (const std::logic_error&) {
    throw corrupt();
  }
  char expected_trailer[16];
  std::snprintf(expected_trailer, sizeof expected_trailer, "crc %08lx\n", stored_crc);
  if (content != payload + expected_trailer) throw corrupt();  // trailing garbage
  if (stored_crc != util::crc32c(payload.data(), payload.size())) throw corrupt();

  std::istringstream is{payload};
  std::string magic, version, key;
  if (!(is >> magic >> version) || magic != "telcolens-checkpoint" ||
      (version != "v2" && version != "v3")) {
    throw corrupt();
  }
  DayCheckpoint cp;
  if (!(is >> key >> cp.seed) || key != "seed") throw corrupt();
  if (!(is >> key >> cp.next_day) || key != "next_day") throw corrupt();
  if (!(is >> key >> cp.records_emitted) || key != "records_emitted") throw corrupt();
  if (version == "v3") {
    // v3 adds the quarantined-UE set; v2 files (pre-supervision) imply none.
    std::size_t count = 0;
    if (!(is >> key >> count) || key != "quarantined") throw corrupt();
    cp.quarantined_ues.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      devices::UeId ue = 0;
      if (!(is >> ue)) throw corrupt();
      if (!cp.quarantined_ues.empty() && ue <= cp.quarantined_ues.back()) {
        throw corrupt();  // canonical form is sorted + unique
      }
      cp.quarantined_ues.push_back(ue);
    }
  }
  for (std::size_t i = 0; i < geo::kAllRegions.size(); ++i) {
    int region_index = -1;
    if (!(is >> key >> region_index) || key != "region" || region_index < 0 ||
        region_index >= static_cast<int>(geo::kAllRegions.size())) {
      throw corrupt();
    }
    const auto region = static_cast<geo::Region>(region_index);
    auto& mme = cp.core.mme(region);
    auto& sgsn = cp.core.sgsn(region);
    auto& msc = cp.core.msc(region);
    auto& sgw = cp.core.sgw(region);
    if (!(is >> mme.handovers.procedures >> mme.handovers.successes >>
          mme.handovers.failures >> mme.path_switches.procedures >>
          mme.path_switches.successes >> mme.path_switches.failures >>
          sgsn.relocations.procedures >> sgsn.relocations.successes >>
          sgsn.relocations.failures >> msc.srvcc.procedures >> msc.srvcc.successes >>
          msc.srvcc.failures >> sgw.bearer_modifications)) {
      throw corrupt();
    }
  }
  if (cp.seed != config_.seed) {
    throw std::runtime_error{"load_checkpoint: seed mismatch in " + path};
  }
  restore(cp);
  return true;
}

void Simulator::resolve_obs() {
  policy_->resolve_obs();  // own epoch guard
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_days_ = obs::Counter{};
    obs_ue_days_ = obs::Counter{};
    obs_records_ = obs::Counter{};
    obs_quarantined_ = obs::Gauge{};
    obs_day_seconds_ = obs::Histogram{};
    obs_serial_sim_seconds_ = obs::Histogram{};
    return;
  }
  obs_days_ = reg->counter("tl_sim_days_total", "Study days simulated");
  obs_ue_days_ = reg->counter("tl_sim_ue_days_total",
                              "UE-days simulated (quarantined UEs excluded)");
  obs_records_ = reg->counter("tl_sim_records_total",
                              "Handover records emitted to the sinks");
  obs_quarantined_ = reg->gauge("tl_sim_quarantined_ues",
                                "UEs currently withdrawn from the study");
  obs_day_seconds_ =
      reg->histogram("tl_sim_day_seconds",
                     obs::MetricsRegistry::latency_edges_s(),
                     "Wall time per simulated study day");
  // Same family ShardedDayRunner records its worker spans into (registration
  // is idempotent by name): the serial path books its whole UE loop here, so
  // stage accounting — and the throughput bench's --profile breakdown — is
  // populated at 1 thread too instead of silently reading zero.
  obs_serial_sim_seconds_ =
      reg->histogram("tl_exec_shard_sim_seconds",
                     obs::MetricsRegistry::latency_edges_s(),
                     "Worker-side simulate time per shard");
}

void Simulator::run_day(int day) {
  if (day < 0) throw std::invalid_argument{"Simulator::run_day: negative day"};
  resolve_obs();
  obs::ScopedTimer day_span{obs_day_seconds_};
  // The day is transactional: if anything below throws — a sink mid-day, a
  // failed durable commit, an unsupervised shard failure — the simulator
  // state rolls back to the day's start, so a later retry (or a resumed
  // process) replays the day exactly once instead of double-counting the
  // partial attempt. The quarantine set deliberately survives the rollback:
  // it is discovered deterministically and a re-run would re-derive it.
  const corenet::CoreNetwork core_before = core_;
  const std::uint64_t emitted_before = records_emitted_;
  try {
    const unsigned threads = exec::ThreadPool::resolve_threads(config_.threads);
    if (supervisor_ != nullptr && population_->size() > 1) {
      run_day_supervised(day);
    } else if (threads > 1 && population_->size() > 1) {
      run_day_sharded(day, threads);
    } else {
      run_day_serial(day);
    }
    // Sequential progress advances the checkpoint cursor; replaying an
    // already-completed day leaves it alone. The cursor moves BEFORE the
    // sinks' day-end hooks so a durable log's commit marker embeds the
    // post-day checkpoint (resume point = day + 1) atomically with the
    // day's records.
    if (day == next_day_) next_day_ = day + 1;
    for (auto* sink : sinks_) sink->on_day_end(day);
    obs_days_.inc();
    obs_ue_days_.inc(population_->size() - quarantined_ues_.size());
    obs_records_.inc(records_emitted_ - emitted_before);
    obs_quarantined_.set(static_cast<double>(quarantined_ues_.size()));
  } catch (...) {
    day_span.cancel();  // aborted days stay out of the latency profile
    // Once the durable log has committed the day, the day happened — a
    // later sink's failure must not rewind state the log already persisted.
    const bool committed =
        durable_ != nullptr && durable_->log().last_committed_day() >= day;
    if (!committed) {
      core_ = core_before;
      records_emitted_ = emitted_before;
      if (next_day_ == day + 1) next_day_ = day;
      if (durable_ != nullptr) durable_->log().discard_day();
    }
    throw;
  }
}

void Simulator::run_day_serial(int day) {
  // The serial path is one shard covering the whole population; booking it
  // into the shard-sim family keeps the stage breakdown comparable across
  // thread counts (1 thread = 1 span per day).
  obs::ScopedTimer sim_span{obs_serial_sim_seconds_};
  EmitFrame out;
  out.core = &core_;
  out.sinks = {sinks_.data(), sinks_.size()};
  out.metrics_sinks = {metrics_sinks_.data(), metrics_sinks_.size()};
  try {
    for (const auto& ue : population_->ues()) {
      if (is_quarantined(ue.id)) continue;
      // Only 4G/5G-capable devices produce records at the EPC observation
      // point (§8): legacy-only UEs handover inside 2G/3G, which the MME
      // never sees — but their mobility metrics still exist network-side.
      if (topology::supports(ue.rat_support, topology::Rat::kG4)) {
        simulate_ue_day(ue, plans_[ue.id], day, out);
      } else if (config_.collect_ue_metrics && !metrics_sinks_.empty()) {
        simulate_legacy_ue_day(ue, plans_[ue.id], day, out);
      }
    }
  } catch (...) {
    sim_span.cancel();  // aborted days stay out of the profile (as run_day)
    throw;
  }
  records_emitted_ += out.records;
}

// One private world-view per shard: procedures book into the shard's own
// CoreNetwork and records/metrics land in shard buffers, so workers share
// nothing mutable. The slab persists across days — the fix for the
// parallel-path slowdown was to stop rebuilding it (fresh CoreNetwork +
// empty buffers, re-paying allocation growth and governor syncs) every day.
struct Simulator::DayShards {
  struct Shard {
    corenet::CoreNetwork core;
    exec::RecordBuffer records;
    exec::MetricsBuffer metrics;
    std::uint64_t emitted = 0;
    /// Previous day's emission counts: the reserve() hints that let a cold
    /// (or geometry-rebuilt) shard pre-size instead of growing push by push.
    std::size_t record_hint = 0;
    std::size_t metrics_hint = 0;
  };
  std::vector<Shard> shards;
};

void Simulator::run_day_sharded(int day, unsigned threads) {
  if (runner_ == nullptr || runner_->thread_count() != threads ||
      runner_obs_epoch_ != obs::global_epoch()) {
    exec::ShardedDayRunner::Options opt;
    opt.threads = threads;
    opt.min_items_per_shard = config_.min_ues_per_shard;
    runner_ = std::make_unique<exec::ShardedDayRunner>(opt);
    runner_obs_epoch_ = obs::global_epoch();
  }
  const auto& ues = population_->ues();
  const std::size_t shard_count = runner_->shard_count(ues.size());
  if (day_shards_ == nullptr) day_shards_ = std::make_unique<DayShards>();
  auto& shards = day_shards_->shards;
  if (shards.size() != shard_count || !config_.reuse_shard_state) {
    // Geometry change (thread sweep, population change) or reuse disabled:
    // retained capacities and hints belong to different UE ranges — drop
    // the slab and let the day grow it organically, as a fresh run would.
    shards.clear();
    shards.resize(shard_count);
  }
  const bool want_metrics = config_.collect_ue_metrics && !metrics_sinks_.empty();
  runner_->run(
      ues.size(),
      [&](std::size_t shard, std::size_t first, std::size_t last) {
        DayShards::Shard& s = shards[shard];
        // Reset on ENTRY, not after merge: an aborted day leaves stale
        // contents behind, and entry-reset makes every attempt (including a
        // transactional replay of the same day) self-contained. clear()
        // keeps the warm allocation; reserve() only acts on a cold shard.
        s.core = corenet::CoreNetwork{};
        s.records.clear();
        s.records.reserve(s.record_hint);
        s.metrics.clear();
        if (want_metrics) s.metrics.reserve(s.metrics_hint);
        s.emitted = 0;
        telemetry::RecordSink* record_sink = &s.records;
        telemetry::MetricsSink* metrics_sink = &s.metrics;
        EmitFrame out;
        out.core = &s.core;
        out.sinks = {&record_sink, 1};
        if (want_metrics) out.metrics_sinks = {&metrics_sink, 1};
        for (std::size_t i = first; i < last; ++i) {
          const auto& ue = ues[i];
          if (is_quarantined(ue.id)) continue;
          if (topology::supports(ue.rat_support, topology::Rat::kG4)) {
            simulate_ue_day(ue, plans_[ue.id], day, out);
          } else if (want_metrics) {
            simulate_legacy_ue_day(ue, plans_[ue.id], day, out);
          }
        }
        s.emitted = out.records;
      },
      [&](std::size_t shard) {
        DayShards::Shard& s = shards[shard];
        s.record_hint = s.records.size();
        s.metrics_hint = s.metrics.size();
        s.records.drain_to({sinks_.data(), sinks_.size()});
        s.metrics.drain_to({metrics_sinks_.data(), metrics_sinks_.size()});
        // Counters shard-reduce in merge order: exact integer sums, no
        // atomics, no dependence on which worker finished first.
        core_.accumulate(s.core);
        records_emitted_ += s.emitted;
      });
  // Reuse trades resident bytes for allocation-free steady state; under
  // governor pressure (or with reuse disabled) give the memory back at the
  // day boundary — exactly where the old always-release behavior sat.
  govern::MemoryBudget* governor = govern::global_governor();
  const bool pressured =
      governor != nullptr && governor->level() != govern::PressureLevel::kSteady;
  if (pressured || !config_.reuse_shard_state) {
    shards.clear();
    shards.shrink_to_fit();
  }
}

void Simulator::simulate_legacy_ue_day(const devices::Ue& ue,
                                       const mobility::UePlan& plan, int day,
                                       EmitFrame& out) const {
  util::Rng rng = util::Rng::derive(config_.seed, 0x1e64u, ue.id,
                                    static_cast<std::uint64_t>(day));
  const mobility::DailyTrace trace = traces_->generate(ue, plan, day);
  const topology::ObservedRat rat_class =
      ue.rat_support == topology::RatSupport::kUpTo2G ? topology::ObservedRat::kG2
                                                      : topology::ObservedRat::kG3;

  mobility::MobilityMetricsBuilder metrics;
  util::TimestampMs t0 = static_cast<util::TimestampMs>(day) * util::kMsPerDay;
  topology::SectorId serving = locate_sector(plan.home, rat_class, ue, day, 0, rng);
  util::TimestampMs serving_since = t0;
  std::uint32_t handovers = 0;

  for (const auto& event : trace) {
    if (out.cancel != nullptr) out.cancel->throw_if_cancelled();
    if (serving == kInvalidSector) break;
    const int bin = util::SimCalendar::half_hour_bin(event.time);
    const topology::SectorId target =
        locate_sector(event.position, rat_class, ue, day, bin, rng);
    if (target == kInvalidSector || target == serving) continue;
    const auto& source = deployment_->sector(serving);
    metrics.add_visit(serving, deployment_->site(source.site).location,
                      static_cast<double>(event.time - serving_since));
    serving = target;
    serving_since = event.time;
    ++handovers;
  }
  if (serving != kInvalidSector) {
    const auto& last = deployment_->sector(serving);
    metrics.add_visit(serving, deployment_->site(last.site).location,
                      static_cast<double>((static_cast<util::TimestampMs>(day) + 1) *
                                              util::kMsPerDay -
                                          serving_since));
  }
  telemetry::UeDayMetrics m;
  m.ue = ue.id;
  m.day = day;
  m.handovers = handovers;
  m.failures = 0;  // legacy HOFs are outside this study's observation point
  m.distinct_sectors =
      metrics.empty() ? (serving != kInvalidSector ? 1u : 0u) : metrics.distinct_sectors();
  m.radius_of_gyration_km = static_cast<float>(metrics.radius_of_gyration_km());
  m.device_type = ue.type;
  for (auto* sink : out.metrics_sinks) sink->consume(m);
}

void Simulator::simulate_ue_day(const devices::Ue& ue, const mobility::UePlan& plan,
                                int day, EmitFrame& out) const {
  util::Rng rng = util::Rng::derive(config_.seed, 0x51e0u, ue.id,
                                    static_cast<std::uint64_t>(day));
  const mobility::DailyTrace trace = traces_->generate(ue, plan, day);

  mobility::MobilityMetricsBuilder metrics;

  // Initial serving sector: where the UE wakes up (home at midnight).
  util::TimestampMs t0 = static_cast<util::TimestampMs>(day) * util::kMsPerDay;
  topology::SectorId serving =
      locate_sector(plan.home, ObservedRat::kG45Nsa, ue, day, 0, rng);
  if (serving == kInvalidSector && !trace.empty()) {
    serving = locate_sector(trace.front().position, ObservedRat::kG45Nsa, ue, day, 0, rng);
  }

  std::uint32_t handovers = 0;
  std::uint32_t failures = 0;
  util::TimestampMs serving_since = t0;
  // Per-UE-day policy state: ping-pong suppression + recovery barring fields
  // maintained here, plus whatever the policy keeps privately. Fresh per
  // UE-day, so days stay independent replay units under every policy and
  // checkpoints carry no policy state.
  policy::UeDayState pstate;
  policy_->begin_ue_day(policy_env_, ue, day, pstate);

  const double voice_share = config_.voice_share[static_cast<std::size_t>(ue.type)];

  for (const auto& event : trace) {
    // Cooperative cancellation point: the watchdog's deadline reaches into
    // the hot loop here, once per trace event (one relaxed atomic load).
    if (out.cancel != nullptr) out.cancel->throw_if_cancelled();
    if (serving == kInvalidSector) break;  // out of coverage world; nothing observable
    const int bin = util::SimCalendar::half_hour_bin(event.time);
    const auto& source = deployment_->sector(serving);

    // RAN decision: the policy decides whether this opportunity becomes a
    // handover and toward which sector. The voice-activity draw stays on the
    // main stream ahead of the call (every policy shares it).
    const bool voice_active = rng.chance(voice_share);
    policy::HoOpportunity opp;
    opp.ue = &ue;
    opp.serving = serving;
    opp.position = event.position;
    opp.postcode =
        deployment_->site(deployment_->site_index().nearest(event.position)).postcode;
    opp.time = event.time;
    opp.day = day;
    opp.bin = bin;
    opp.voice_active = voice_active;

    const policy::HoDecision decision = policy_->decide(policy_env_, opp, pstate, rng);
    if (!decision.handover) continue;  // hold: no record, exactly the legacy skips
    const topology::SectorId target = decision.target;

    const auto& target_sector = deployment_->sector(target);
    double overload = ran::LoadModel::overload_rejection_probability(
        load_model_.utilization(target_sector, day, bin));
    if (faults_ != nullptr && !faults_->empty()) {
      // Signaling/core-overload storms reach the attempt through the same
      // overload channel organic congestion uses, so Cause #4 rises with it.
      overload = std::min(1.0, overload + faults_->overload_boost(source.region, event.time));
    }

    corenet::HoAttempt attempt;
    attempt.ue = &ue;
    attempt.source_sector = serving;
    attempt.target_sector = target;
    attempt.target_rat = decision.target_rat;
    attempt.source_vendor = source.vendor;
    attempt.area = source.area_type;
    attempt.region = source.region;
    attempt.time = event.time;
    attempt.target_overload = overload;
    attempt.srvcc = decision.srvcc;
    // EN-DC applies when the UE rides an NR secondary on either end of the
    // HO (the EPC still logs plain 4G/5G-NSA).
    attempt.endc = source.rat == topology::Rat::kG5Nr ||
                   target_sector.rat == topology::Rat::kG5Nr;

    corenet::HoOutcome outcome = procedure_.execute(attempt, *out.core, rng);

    telemetry::HandoverRecord record;
    record.timestamp = event.time;
    record.success = outcome.success;
    record.duration_ms = static_cast<float>(outcome.duration_ms);
    record.cause = outcome.cause;
    record.anon_user_id = ue.anon_id;
    record.source_sector = serving;
    record.target_sector = target;
    record.source_rat = ObservedRat::kG45Nsa;
    record.target_rat = decision.target_rat;
    record.device_type = ue.type;
    record.manufacturer = ue.manufacturer;
    record.postcode = source.postcode;
    record.district = source.district;
    record.area = source.area_type;
    record.region = source.region;
    record.vendor = source.vendor;
    record.srvcc = decision.srvcc;
    for (auto* sink : out.sinks) sink->consume(record);
    ++out.records;

    ++handovers;
    if (!outcome.success) ++failures;

    // The time the (eventually) successful HO executed; re-attempts push it
    // past the triggering trace event.
    util::TimestampMs ho_time = event.time;
    if (!outcome.success && config_.recovery.enabled) {
      // T304 expired: the UE runs RRC re-establishment. Either it lands on
      // the (still strongest) target and the HO is re-attempted after a
      // capped-exponential backoff, or it falls back to the source cell and
      // the chain ends ("MS continues on the old lchan").
      const util::TimestampMs day_end =
          (static_cast<util::TimestampMs>(day) + 1) * util::kMsPerDay;
      for (int retry = 1; retry <= config_.recovery.max_reattempts && !outcome.success;
           ++retry) {
        const faults::RecoveryDecision recovery = recovery_.decide(retry, rng);
        if (recovery.action == faults::RecoveryAction::kFallbackToSource) break;
        const util::TimestampMs t =
            ho_time + static_cast<util::TimestampMs>(recovery.backoff_ms);
        if (t >= day_end) break;  // chain truncated at the day boundary
        ho_time = t;
        attempt.time = t;
        outcome = procedure_.execute(attempt, *out.core, rng);
        record.timestamp = t;
        record.success = outcome.success;
        record.duration_ms = static_cast<float>(outcome.duration_ms);
        record.cause = outcome.cause;
        record.attempt = static_cast<std::uint8_t>(retry);
        for (auto* sink : out.sinks) sink->consume(record);
        ++out.records;
        ++handovers;
        if (!outcome.success) ++failures;
      }
      if (!outcome.success && config_.recovery.bar_failed_target_ms > 0) {
        pstate.barred_sector = target;
        pstate.barred_until = ho_time + config_.recovery.bar_failed_target_ms;
      }
    }

    // Policy feedback once the attempt chain settles (penalty timers, ...).
    policy_->on_outcome(policy_env_, opp, decision, outcome.success, pstate);

    if (outcome.success) {
      // Book the dwell on the sector we are leaving, then switch.
      metrics.add_visit(serving, deployment_->site(source.site).location,
                        static_cast<double>(ho_time - serving_since));
      pstate.previous_serving = serving;
      pstate.last_ho_time = ho_time;
      serving = target;
      serving_since = ho_time;
      // Fallbacks are transient: the UE reselects back to 4G/5G before its
      // next observable HO (the paper never sees 3G->4G, only the next
      // 4G-sourced HO). Model that by restoring a 4G/5G serving sector.
      if (decision.target_rat != ObservedRat::kG45Nsa) {
        const topology::SectorId back =
            locate_sector(event.position, ObservedRat::kG45Nsa, ue, day, bin, rng);
        if (back != kInvalidSector) serving = back;
      }
    }
  }

  if (config_.collect_ue_metrics && !out.metrics_sinks.empty()) {
    if (serving != kInvalidSector) {
      const auto& last = deployment_->sector(serving);
      metrics.add_visit(serving, deployment_->site(last.site).location,
                        static_cast<double>((static_cast<util::TimestampMs>(day) + 1) *
                                                util::kMsPerDay -
                                            serving_since));
    }
    telemetry::UeDayMetrics m;
    m.ue = ue.id;
    m.day = day;
    m.handovers = handovers;
    m.failures = failures;
    m.distinct_sectors = metrics.empty() ? (serving != kInvalidSector ? 1u : 0u)
                                         : metrics.distinct_sectors();
    m.radius_of_gyration_km = static_cast<float>(metrics.radius_of_gyration_km());
    m.device_type = ue.type;
    for (auto* sink : out.metrics_sinks) sink->consume(m);
  }
}

}  // namespace tl::core
