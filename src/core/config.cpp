#include "core/config.hpp"

#include <algorithm>
#include <cmath>

namespace tl::core {

void StudyConfig::finalize() {
  census.seed = seed * 31 + 1;
  deployment.seed = seed * 31 + 2;
  catalog.seed = seed * 31 + 3;
  population.seed = seed * 31 + 4;

  deployment.scale = scale;
  population.count = static_cast<std::uint32_t>(
      std::max(2'000.0, scale * kFullScaleUes));
  // The synthetic census keeps its resident counts at national scale (the
  // urban threshold of 10k residents is absolute); only the MNO-side
  // entities (sites, UEs) shrink.
}

StudyConfig StudyConfig::test_scale() {
  StudyConfig cfg;
  cfg.scale = 0.004;  // ~96 sites, ~1.4k sectors
  cfg.days = 2;
  cfg.census.districts = 40;
  cfg.census.total_population = 6'000'000;
  cfg.finalize();
  cfg.population.count = 3'000;
  return cfg;
}

StudyConfig StudyConfig::bench_scale() {
  StudyConfig cfg;
  cfg.scale = 0.05;  // 1.2k sites, ~18k sectors
  cfg.days = 7;
  cfg.census.districts = 320;
  cfg.census.total_population = 47'000'000;
  cfg.finalize();
  cfg.population.count = 60'000;
  return cfg;
}

StudyConfig StudyConfig::modeling_scale() {
  StudyConfig cfg = bench_scale();
  cfg.days = 14;
  cfg.finalize();
  cfg.population.count = 80'000;
  return cfg;
}

}  // namespace tl::core
