#pragma once

// Study configuration: one knob tree for the whole pipeline, with presets
// for test scale (seconds) and bench scale (the default for regenerating
// the paper's tables and figures).

#include <cstdint>
#include <string>

#include "devices/catalog.hpp"
#include "devices/population.hpp"
#include "faults/recovery.hpp"
#include "geo/census.hpp"
#include "policy/config.hpp"
#include "ran/coverage.hpp"
#include "topology/deployment.hpp"

namespace tl::core {

struct StudyConfig {
  /// Linear scale versus the real study (40M UEs / 24k sites / 350k+
  /// sectors). Shares and shapes are scale-invariant.
  double scale = 0.004;

  int days = 7;
  std::uint64_t seed = 42;

  /// Worker threads for the parallel execution engine (src/exec): each study
  /// day is sharded by UE across this many workers and merged back in
  /// canonical UE order, so the emitted record stream — including durable
  /// log bytes — is byte-identical at every thread count. 1 = serial
  /// (in-place, no sharding), 0 = all hardware threads.
  unsigned threads = 1;

  /// Floor on UEs per shard for the parallel engine: populations below
  /// threads * shards_per_thread * this no longer fan out into shards too
  /// small to amortize their fixed setup cost. Pure scheduling knob —
  /// output bytes are invariant under it.
  std::size_t min_ues_per_shard = 256;

  /// Reuse per-shard staging state (CoreNetwork + record/metrics buffers)
  /// across days instead of reallocating it every day. Byte-identical
  /// either way (each shard resets on entry); false restores the old
  /// fresh-allocation-per-day behavior and exists for the reuse
  /// equivalence tests and as an escape hatch.
  bool reuse_shard_state = true;

  geo::CensusConfig census;
  topology::DeploymentConfig deployment;
  devices::CatalogConfig catalog;
  devices::PopulationConfig population;
  ran::CoverageConfig coverage;

  /// Probability that a HO happens during an active voice call, per device
  /// type {smartphone, M2M/IoT, feature phone}: the SRVCC trigger.
  double voice_share[3] = {0.10, 0.004, 0.38};

  /// Emit per-UE-day mobility metrics to metrics sinks.
  bool collect_ue_metrics = true;

  /// Handover decision policy (src/policy). The default calibrated baseline
  /// reproduces the stock pipeline's record stream byte-for-byte; any other
  /// kind is seeded-deterministic but produces its own stream.
  policy::PolicyConfig policy;

  /// Ping-pong suppression (related work [15]: "sub cell movement
  /// detection"): the RAN holds a UE on its serving sector when the chosen
  /// target is the sector it just left within the window. Off by default —
  /// the ablation bench measures what the policy buys.
  bool suppress_ping_pong = false;
  std::int64_t ping_pong_window_ms = 5'000;

  /// Post-HOF UE recovery modeling (RRC re-establishment vs fallback to
  /// source, capped-exponential re-attempt backoff, temporary target
  /// barring). Off by default: the stock pipeline's output is untouched.
  faults::RecoveryConfig recovery;

  /// When non-empty, Simulator::run() writes a checkpoint here after every
  /// completed day and resumes from it on the next run() — a mid-run crash
  /// (injected or real) costs at most one day of recomputation and the
  /// resumed record stream is identical to an uninterrupted run.
  std::string checkpoint_path;

  /// Applies `scale` and `seed` consistently across the nested configs.
  /// Call after editing scale/seed/days.
  void finalize();

  /// Tiny deployment for unit tests (runs in well under a second).
  static StudyConfig test_scale();
  /// Default bench scale: large enough for stable national statistics.
  static StudyConfig bench_scale();
  /// Heavier preset for the regression/modeling benches.
  static StudyConfig modeling_scale();

  /// Full-scale reference values used when reporting "equivalent" national
  /// numbers (Table 1).
  static constexpr double kFullScaleUes = 40e6;
  static constexpr double kFullScaleSites = 24'000;
  static constexpr double kFullScaleDailyHos = 1.7e9;
};

}  // namespace tl::core
