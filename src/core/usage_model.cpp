#include "core/usage_model.hpp"

#include <algorithm>
#include <cmath>

namespace tl::core {

namespace {

using devices::DeviceType;
using topology::RatSupport;

/// Fraction of the day a device holds active connectivity (duty cycle).
double duty_cycle(const devices::Ue& ue) noexcept {
  switch (ue.type) {
    case DeviceType::kSmartphone: return 0.95;
    case DeviceType::kFeaturePhone: return 0.60;
    case DeviceType::kM2mIot:
      // Modern modules (routers, trackers) hold sessions; legacy smart
      // meters wake rarely.
      return ue.rat_support >= RatSupport::kUpTo4G ? 0.85
             : ue.rat_support == RatSupport::kUpTo3G ? 0.45
                                                     : 0.55;
  }
  return 0.8;
}

/// Time allocation over observed RAT classes {2G, 3G, 4G/5G-NSA}.
std::array<double, 3> rat_allocation(const devices::Ue& ue,
                                     const ran::CoverageProfile& home) noexcept {
  switch (ue.rat_support) {
    case RatSupport::kUpTo2G: return {1.0, 0.0, 0.0};
    case RatSupport::kUpTo3G: return {0.15, 0.85, 0.0};
    case RatSupport::kUpTo4G:
    case RatSupport::kUpTo5G: {
      // Modern devices camp on 4G/5G; the legacy residual scales with the
      // local fallback pressure.
      const double on_3g = std::min(0.12, 0.010 + 4.0 * home.p_fallback_3g * 0.02);
      const double on_2g = std::min(0.01, home.p_fallback_2g * 2.0 + 0.0005);
      return {on_2g, on_3g, 1.0 - on_2g - on_3g};
    }
  }
  return {0.0, 0.0, 1.0};
}

/// Daily traffic (UL, DL) in MB generated on each observed RAT class.
void accumulate_traffic(const devices::Ue& ue, const std::array<double, 3>& alloc,
                        std::array<double, 3>& ul, std::array<double, 3>& dl) noexcept {
  // Peak per-day volumes if the device spent the whole day on that class.
  // Legacy radios cap throughput: 2G ~ tens of kbps, 3G ~ few Mbps.
  double base_ul = 0.0, base_dl = 0.0;
  switch (ue.type) {
    case DeviceType::kSmartphone: base_ul = 55.0; base_dl = 900.0; break;
    case DeviceType::kM2mIot: base_ul = 12.0; base_dl = 6.0; break;
    case DeviceType::kFeaturePhone: base_ul = 4.0; base_dl = 9.0; break;
  }
  constexpr std::array<double, 3> kRateFactor{0.04, 0.75, 1.0};  // 2G, 3G, 4G/5G
  for (std::size_t rat = 0; rat < 3; ++rat) {
    ul[rat] += base_ul * alloc[rat] * kRateFactor[rat];
    dl[rat] += base_dl * alloc[rat] * kRateFactor[rat];
  }
}

}  // namespace

UsageModel::UsageModel(const devices::Population& population,
                       const ran::CoverageMap& coverage, std::uint64_t seed)
    : population_(population), coverage_(coverage), seed_(seed) {}

RatUsage UsageModel::compute(int days) const {
  RatUsage usage;
  std::array<double, 3> time_total{};
  std::array<double, 3> ul{};
  std::array<double, 3> dl{};
  usage.time_share_min = {1.0, 1.0, 1.0};
  usage.time_share_max = {0.0, 0.0, 0.0};

  for (int day = 0; day < std::max(days, 1); ++day) {
    util::Rng rng = util::Rng::derive(seed_, 0xda7eu, static_cast<std::uint64_t>(day));
    std::array<double, 3> day_time{};
    for (const auto& ue : population_.ues()) {
      const auto& home = coverage_.at(ue.home_postcode);
      const auto alloc = rat_allocation(ue, home);
      // Small per-UE-day jitter so daily bars breathe like Fig. 3b's.
      const double hours = duty_cycle(ue) * 24.0 * std::exp(rng.normal(0.0, 0.05));
      for (std::size_t rat = 0; rat < 3; ++rat) day_time[rat] += hours * alloc[rat];
      accumulate_traffic(ue, alloc, ul, dl);
    }
    double day_sum = day_time[0] + day_time[1] + day_time[2];
    if (day_sum <= 0.0) continue;
    for (std::size_t rat = 0; rat < 3; ++rat) {
      const double share = day_time[rat] / day_sum;
      time_total[rat] += share;
      usage.time_share_min[rat] = std::min(usage.time_share_min[rat], share);
      usage.time_share_max[rat] = std::max(usage.time_share_max[rat], share);
    }
  }

  const int d = std::max(days, 1);
  for (std::size_t rat = 0; rat < 3; ++rat) {
    usage.time_share[rat] = time_total[rat] / static_cast<double>(d);
  }
  const double ul_sum = ul[0] + ul[1] + ul[2];
  const double dl_sum = dl[0] + dl[1] + dl[2];
  for (std::size_t rat = 0; rat < 3; ++rat) {
    usage.uplink_share[rat] = ul_sum > 0.0 ? ul[rat] / ul_sum : 0.0;
    usage.downlink_share[rat] = dl_sum > 0.0 ? dl[rat] / dl_sum : 0.0;
  }
  return usage;
}

}  // namespace tl::core
