#pragma once

// Report builders: the district-level and population-level reductions that
// back Table 1 and Figs. 6, 9, 11. (Temporal, duration, cause, and modeling
// outputs come straight from their aggregators / HofModelingDataset.)

#include <array>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "telemetry/aggregates.hpp"

namespace tl::core {

/// Table 1: dataset statistics, configured scale and full-scale equivalent.
struct DatasetStats {
  std::size_t districts = 0;
  std::size_t cell_sites = 0;
  std::size_t radio_sectors = 0;
  std::size_t ues_measured = 0;
  int days = 0;
  double daily_handovers = 0.0;
  double scale = 0.0;
  /// Counts rescaled to the paper's 1.0-scale deployment for comparison.
  double full_scale_sites = 0.0;
  double full_scale_sectors = 0.0;
  double full_scale_ues = 0.0;
  double full_scale_daily_handovers = 0.0;
};
DatasetStats dataset_stats(const Simulator& sim, std::uint64_t total_records);

/// Fig. 6: daily HOs per square km per district vs population density.
struct DistrictHoDensity {
  std::vector<double> hos_per_km2;       // per district, daily
  std::vector<double> population_density;  // residents per km2
  double pearson = 0.0;
  double max_hos_per_km2 = 0.0;
  double min_hos_per_km2 = 0.0;
  double mean_hos_per_km2 = 0.0;
};
DistrictHoDensity district_ho_density(const Simulator& sim,
                                      const telemetry::DistrictAggregator& districts);

/// Fig. 9: HO-type shares per district, with the paper's headline stats.
struct DistrictRatShares {
  /// Per district: {to 2G, to 3G, intra} shares of its HOs.
  std::vector<std::array<double, 3>> shares;
  double max_intra_share = 0.0;
  double max_3g_share = 0.0;
  double max_2g_share = 0.0;
  /// Average 3G share among the 6% least densely populated districts.
  double mean_3g_least_dense = 0.0;
};
DistrictRatShares district_rat_shares(const Simulator& sim,
                                      const telemetry::DistrictAggregator& districts);

/// Fig. 11: normalized district-level HOs and HOF rate per manufacturer.
struct ManufacturerNormalized {
  struct Row {
    std::string name;
    devices::ManufacturerId id = 0;
    /// Per-district normalized values (>= min-device districts only).
    std::vector<double> normalized_hos;
    std::vector<double> normalized_hof_rate;
    double median_hos = 0.0;
    double median_hof_rate = 0.0;
  };
  std::vector<Row> rows;  // all manufacturers with enough data

  /// Top-5 by UE count and top-5 by median normalized HOF rate.
  std::vector<std::size_t> top5_by_share;
  std::vector<std::size_t> top5_by_hof;
};
ManufacturerNormalized manufacturer_normalized(
    const Simulator& sim, const telemetry::DistrictAggregator& districts,
    std::size_t min_devices_per_pair = 20);

}  // namespace tl::core
