#include "core/hof_dataset.hpp"

#include <cmath>
#include <stdexcept>

namespace tl::core {

HofModelingDataset HofModelingDataset::build(
    const telemetry::SectorDayAggregator& aggregator,
    const topology::Deployment& deployment, const geo::Country& country) {
  HofModelingDataset ds;
  for (const auto& obs : aggregator.observations()) {
    const auto& sector = deployment.sector(obs.sector);
    const auto& pc = country.postcode(sector.postcode);
    ModelObservation row;
    row.sector = obs.sector;
    row.day = obs.day;
    row.target = obs.target;
    row.daily_hos = obs.handovers;
    row.failures = obs.failures;
    row.hof_rate_pct = obs.hof_rate_pct;
    row.vendor = sector.vendor;
    row.area = !pc.census_reliable ? AreaClass::kUnclassified
               : pc.area_type() == geo::AreaType::kUrban ? AreaClass::kUrban
                                                         : AreaClass::kRural;
    row.region = sector.region;
    row.district_population =
        static_cast<double>(country.district(sector.district).population);
    ds.rows_.push_back(row);
  }
  return ds;
}

HofModelingDataset HofModelingDataset::nonzero() const {
  HofModelingDataset out;
  for (const auto& r : rows_) {
    if (r.hof_rate_pct > 0.0) out.rows_.push_back(r);
  }
  return out;
}

HofModelingDataset HofModelingDataset::filtered(double max_rate_pct,
                                                std::uint32_t min_hos,
                                                std::uint32_t max_hos) const {
  HofModelingDataset out;
  for (const auto& r : rows_) {
    if (r.hof_rate_pct > 0.0 && r.hof_rate_pct < max_rate_pct && r.daily_hos >= min_hos &&
        r.daily_hos <= max_hos) {
      out.rows_.push_back(r);
    }
  }
  return out;
}

HofModelingDataset HofModelingDataset::without_2g() const {
  HofModelingDataset out;
  for (const auto& r : rows_) {
    if (r.target != topology::ObservedRat::kG2) out.rows_.push_back(r);
  }
  return out;
}

analysis::SixNumberSummary HofModelingDataset::summary_daily_hos() const {
  std::vector<double> v;
  v.reserve(rows_.size());
  for (const auto& r : rows_) v.push_back(static_cast<double>(r.daily_hos));
  return analysis::summarize(v);
}

analysis::SixNumberSummary HofModelingDataset::summary_hof_rate() const {
  std::vector<double> v;
  v.reserve(rows_.size());
  for (const auto& r : rows_) v.push_back(r.hof_rate_pct);
  return analysis::summarize(v);
}

std::array<double, 3> HofModelingDataset::median_rate_by_type() const {
  std::array<std::vector<double>, 3> groups;
  for (const auto& r : rows_) {
    groups[static_cast<std::size_t>(r.target)].push_back(r.hof_rate_pct);
  }
  std::array<double, 3> medians{};
  for (std::size_t t = 0; t < 3; ++t) {
    if (!groups[t].empty()) medians[t] = analysis::median(groups[t]);
  }
  return medians;
}

std::array<std::vector<double>, 3> HofModelingDataset::log_rate_groups() const {
  std::array<std::vector<double>, 3> groups;
  for (const auto& r : rows_) {
    if (r.hof_rate_pct > 0.0) {
      groups[static_cast<std::size_t>(r.target)].push_back(std::log(r.hof_rate_pct));
    }
  }
  return groups;
}

analysis::AnovaResult HofModelingDataset::anova_by_type() const {
  const auto groups = log_rate_groups();
  std::vector<std::vector<double>> present;
  for (const auto& g : groups) {
    if (!g.empty()) present.push_back(g);
  }
  return analysis::one_way_anova(present);
}

analysis::KruskalWallisResult HofModelingDataset::kruskal_wallis_by_type() const {
  const auto groups = log_rate_groups();
  std::vector<std::vector<double>> present;
  for (const auto& g : groups) {
    if (!g.empty()) present.push_back(g);
  }
  return analysis::kruskal_wallis(present);
}

std::vector<double> HofModelingDataset::log_rates() const {
  std::vector<double> y;
  y.reserve(rows_.size());
  for (const auto& r : rows_) {
    if (r.hof_rate_pct <= 0.0) {
      throw std::logic_error{
          "HofModelingDataset: log models need a nonzero()/filtered() subset"};
    }
    y.push_back(std::log(r.hof_rate_pct));
  }
  return y;
}

const std::vector<std::string>& HofModelingDataset::covariate_groups() {
  static const std::vector<std::string> kGroups{
      "HO type",       "Number of daily HOs",  "Area Type",
      "Antenna Vendor", "Sector Region",        "District population"};
  return kGroups;
}

analysis::DesignBuilder HofModelingDataset::build_design_for(
    const std::vector<std::string>& groups) const {
  analysis::DesignBuilder design{rows_.size()};
  const auto wants = [&](std::string_view name) {
    for (const auto& g : groups) {
      if (g == name) return true;
    }
    return false;
  };

  if (wants("HO type")) {
    std::vector<std::uint32_t> type_codes;
    type_codes.reserve(rows_.size());
    bool any_2g = false;
    for (const auto& r : rows_) {
      type_codes.push_back(static_cast<std::uint32_t>(r.target));
      any_2g = any_2g || r.target == topology::ObservedRat::kG2;
    }
    // Treatment coding with intra 4G/5G-NSA as baseline. When the subset
    // has no 2G rows (Table 7), drop the level entirely to keep the design
    // full rank. ObservedRat order is {2G, 3G, 4G/5G}; remap baseline-first.
    std::vector<std::uint32_t> remapped(type_codes.size());
    if (any_2g) {
      for (std::size_t i = 0; i < type_codes.size(); ++i) {
        remapped[i] = 2u - type_codes[i];  // {kG2 -> 2, kG3 -> 1, kG45Nsa -> 0}
      }
      design.add_categorical("HO type", remapped,
                             {"Intra 4G/5G-NSA", "4G/5G-NSA to 3G", "4G/5G-NSA to 2G"},
                             0);
    } else {
      for (std::size_t i = 0; i < type_codes.size(); ++i) {
        remapped[i] =
            type_codes[i] == static_cast<std::uint32_t>(topology::ObservedRat::kG3) ? 1u
                                                                                    : 0u;
      }
      design.add_categorical("HO type", remapped, {"Intra 4G/5G-NSA", "4G/5G-NSA to 3G"},
                             0);
    }
  }

  if (wants("Number of daily HOs")) {
    std::vector<double> daily_hos;
    daily_hos.reserve(rows_.size());
    for (const auto& r : rows_) daily_hos.push_back(static_cast<double>(r.daily_hos));
    design.add_numeric("Number of daily HOs", daily_hos);
  }
  if (wants("Area Type")) {
    std::vector<std::uint32_t> codes;
    codes.reserve(rows_.size());
    for (const auto& r : rows_) codes.push_back(static_cast<std::uint32_t>(r.area));
    design.add_categorical("Area Type", codes, {"Unclassified", "Rural", "Urban"}, 0);
  }
  if (wants("Antenna Vendor")) {
    std::vector<std::uint32_t> codes;
    codes.reserve(rows_.size());
    for (const auto& r : rows_) codes.push_back(static_cast<std::uint32_t>(r.vendor));
    design.add_categorical("Antenna Vendor", codes, {"V1", "V2", "V3", "V4"}, 0);
  }
  if (wants("Sector Region")) {
    std::vector<std::uint32_t> codes;
    codes.reserve(rows_.size());
    for (const auto& r : rows_) codes.push_back(static_cast<std::uint32_t>(r.region));
    design.add_categorical("Sector Region", codes,
                           {"Capital area", "North", "South", "West"}, 0);
  }
  if (wants("District population")) {
    std::vector<double> pop;
    pop.reserve(rows_.size());
    for (const auto& r : rows_) pop.push_back(r.district_population);
    design.add_numeric("District population", pop);
  }
  return design;
}

analysis::DesignBuilder HofModelingDataset::build_design(bool full) const {
  if (full) return build_design_for(covariate_groups());
  return build_design_for({"HO type"});
}

HofModelingDataset::StepwiseResult HofModelingDataset::fit_stepwise() const {
  const std::vector<double> y = log_rates();
  StepwiseResult result;
  // Intercept-only baseline AIC.
  analysis::DesignBuilder empty{rows_.size()};
  // fit_ols needs at least one covariate column beyond the intercept for a
  // meaningful comparison; score the empty model via a constant column that
  // the jittered Cholesky tolerates.
  empty.add_numeric("(null)", std::vector<double>(rows_.size(), 0.0));
  double best_aic = analysis::fit_ols(empty, y).aic;

  std::vector<std::string> remaining = covariate_groups();
  while (!remaining.empty()) {
    double step_best_aic = best_aic;
    std::size_t step_best_index = remaining.size();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      std::vector<std::string> candidate = result.selected;
      candidate.push_back(remaining[i]);
      const double aic = analysis::fit_ols(build_design_for(candidate), y).aic;
      if (aic < step_best_aic) {
        step_best_aic = aic;
        step_best_index = i;
      }
    }
    if (step_best_index == remaining.size()) break;  // no improvement
    result.selected.push_back(remaining[step_best_index]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(step_best_index));
    best_aic = step_best_aic;
  }
  result.model = analysis::fit_ols(
      build_design_for(result.selected.empty() ? std::vector<std::string>{"HO type"}
                                               : result.selected),
      y);
  return result;
}

analysis::LinearModel HofModelingDataset::fit_univariate() const {
  const auto design = build_design(/*full=*/false);
  return analysis::fit_ols(design, log_rates());
}

analysis::LinearModel HofModelingDataset::fit_full() const {
  const auto design = build_design(/*full=*/true);
  return analysis::fit_ols(design, log_rates());
}

analysis::QuantileFit HofModelingDataset::fit_quantile(double tau) const {
  const auto design = build_design(/*full=*/false);
  return analysis::fit_quantile(design, log_rates(), tau);
}

}  // namespace tl::core
