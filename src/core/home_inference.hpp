#pragma once

// Nighttime home-location inference (Fig. 5, §4.3).
//
// The paper derives each user's home postcode from the main cell site the
// UE camps on between 00:00 and 08:00 on at least 14 nights, aggregates to
// districts, and compares against census (R^2 = 0.92). We reproduce the
// procedure: find each UE's dominant night site, map it to its postcode's
// district, tally per district, and fit inferred-vs-census population.

#include <cstdint>
#include <vector>

#include "analysis/correlation.hpp"
#include "devices/population.hpp"
#include "geo/country.hpp"
#include "topology/deployment.hpp"

namespace tl::core {

struct HomeInferenceResult {
  /// Inferred MNO user count per district.
  std::vector<std::uint64_t> inferred_users;
  /// Census population per district (aligned by district id).
  std::vector<std::uint64_t> census_population;
  /// Linear fit of census ~ inferred (Fig. 5's reported R^2).
  analysis::SimpleFit fit;

  double r_squared() const noexcept { return fit.r_squared; }
};

/// Runs the inference over the whole population. `min_nights` mirrors the
/// paper's >= 14-night stability requirement: UEs observed fewer nights
/// (modeled as a per-UE stable availability draw) are dropped.
HomeInferenceResult infer_home_locations(const geo::Country& country,
                                         const topology::Deployment& deployment,
                                         const devices::Population& population,
                                         int min_nights = 14, int study_days = 28,
                                         std::uint64_t seed = 0x40fe);

}  // namespace tl::core
