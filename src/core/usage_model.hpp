#pragma once

// RAT usage and traffic-volume model (Fig. 3b, §4.1).
//
// Connectivity-time shares per RAT emerge from the population: legacy-only
// devices (32% of UEs) live on 2G/3G full-time but are mostly low-duty
// M2M/feature devices; 4G/5G-capable UEs spend a small residual on legacy
// layers during fallbacks. Traffic volumes are per-UE lognormal draws with
// RAT-bound rates, reproducing the paper's asymmetry: legacy RATs hold 18%
// of connectivity time but only ~5.2% UL / ~2.1% DL of the bytes.

#include <array>

#include "devices/population.hpp"
#include "ran/coverage.hpp"
#include "util/rng.hpp"

namespace tl::core {

struct RatUsage {
  /// Time share per observed RAT class {2G, 3G, 4G/5G-NSA}; sums to 1.
  std::array<double, 3> time_share{};
  /// Uplink / downlink byte share per observed RAT class.
  std::array<double, 3> uplink_share{};
  std::array<double, 3> downlink_share{};
  /// Min/max daily time share over the study (Fig. 3b error bars).
  std::array<double, 3> time_share_min{};
  std::array<double, 3> time_share_max{};
};

class UsageModel {
 public:
  UsageModel(const devices::Population& population, const ran::CoverageMap& coverage,
             std::uint64_t seed = 0x05a6e);

  /// Aggregates usage over `days` simulated days.
  RatUsage compute(int days) const;

 private:
  const devices::Population& population_;
  const ran::CoverageMap& coverage_;
  std::uint64_t seed_;
};

}  // namespace tl::core
