#pragma once

// Per-shard telemetry buffers for the deterministic execution engine.
//
// A worker thread never touches the study's real sinks: it writes into a
// private RecordBuffer / MetricsBuffer, and the merge step replays those
// buffers into the real sinks on the caller's thread, shard by shard in
// canonical UE order. Consumers therefore observe exactly the serial
// stream — same records, same order, same bytes — regardless of how many
// workers produced it.
//
// These buffers are the engine's dominant transient allocation (every
// in-flight shard holds one), so they report their vector capacities to the
// resource governor: each buffer resolves a shared named Accountant at
// construction (null-safe no-op without a governor) and syncs on capacity
// changes — a relaxed atomic delta, safe from worker threads, paid only
// when the vector actually grows.
//
// Buffers are built to be REUSED across days: clear() empties the contents
// but keeps the allocation (and its governor accounting) in place, and
// reserve() pre-grows in the same doubling steps push-growth would take, so
// a warm buffer's capacity trajectory — and therefore its byte accounting —
// is exactly what a fresh buffer reaching the same high-water mark would
// have reported. Rebuilding the shard vector every day was the root of the
// sharded path's allocation churn (see DESIGN §4's post-mortem); the
// simulator now keeps one slab of these per shard for the whole study.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "govern/governor.hpp"
#include "telemetry/records.hpp"
#include "telemetry/sinks.hpp"

namespace tl::exec {

namespace detail {

/// Capacity-accounting mixin for the two buffer types. Movable (the moved-
/// from buffer stops accounting), deliberately not copyable — a copy would
/// need its own accounted capacity and nothing copies these.
template <typename T>
class AccountedVector {
 public:
  explicit AccountedVector(const char* account_name)
      : account_(govern::account(account_name)) {}
  ~AccountedVector() { account_.sub(accounted_bytes_); }

  AccountedVector(AccountedVector&& other) noexcept
      : items_(std::move(other.items_)),
        account_(other.account_),
        accounted_capacity_(other.accounted_capacity_),
        accounted_bytes_(other.accounted_bytes_) {
    other.items_.clear();
    other.accounted_capacity_ = 0;
    other.accounted_bytes_ = 0;
  }
  AccountedVector& operator=(AccountedVector&& other) noexcept {
    if (this != &other) {
      account_.sub(accounted_bytes_);
      items_ = std::move(other.items_);
      account_ = other.account_;
      accounted_capacity_ = other.accounted_capacity_;
      accounted_bytes_ = other.accounted_bytes_;
      other.items_.clear();
      other.accounted_capacity_ = 0;
      other.accounted_bytes_ = 0;
    }
    return *this;
  }
  AccountedVector(const AccountedVector&) = delete;
  AccountedVector& operator=(const AccountedVector&) = delete;

  void push(const T& item) {
    items_.push_back(item);
    // Governor sync is batched behind capacity changes: the hot path pays a
    // single pointer-sized compare per push, and the (atomic) accounting
    // delta only when the vector actually reallocates — which a warm,
    // pre-reserved buffer never does.
    if (items_.capacity() != accounted_capacity_) sync();
  }

  /// Empties the contents but keeps the allocation: the day-over-day reuse
  /// primitive. Accounting is unchanged (capacity is what's accounted).
  void clear() noexcept { items_.clear(); }

  /// Pre-grows to hold at least `n` items, stepping capacity through the
  /// same doubling sequence push-growth uses. Matching the organic growth
  /// pattern keeps the governor's byte trajectory identical whether a
  /// buffer was warmed by a hint or grown by pushes — which is what lets
  /// the reuse tests pin peak accounting against a fresh-state run.
  void reserve(std::size_t n) {
    if (n <= items_.capacity()) return;
    std::size_t cap = std::max<std::size_t>(1, items_.capacity());
    while (cap < n) cap *= 2;
    items_.reserve(cap);
    sync();
  }

  void release() {
    items_.clear();
    items_.shrink_to_fit();
    sync();
  }

  const std::vector<T>& items() const noexcept { return items_; }

 private:
  void sync() {
    accounted_capacity_ = items_.capacity();
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(accounted_capacity_) * sizeof(T);
    if (bytes >= accounted_bytes_) {
      account_.add(bytes - accounted_bytes_);
    } else {
      account_.sub(accounted_bytes_ - bytes);
    }
    accounted_bytes_ = bytes;
  }

  std::vector<T> items_;
  govern::Accountant account_;
  std::size_t accounted_capacity_ = 0;
  std::uint64_t accounted_bytes_ = 0;
};

}  // namespace detail

class RecordBuffer final : public telemetry::RecordSink {
 public:
  RecordBuffer() : buffer_("exec_record_buffers") {}

  void consume(const telemetry::HandoverRecord& record) override {
    buffer_.push(record);
  }

  /// Hands the whole buffered run to each sink in order (one consume_span
  /// per sink — batch merge, not per-record replay), then clears the buffer
  /// KEEPING its capacity: the next day's shard writes into warm memory
  /// instead of re-paying allocation growth. Call release() to give the
  /// memory back (end of study, or a shard slab being torn down).
  void drain_to(std::span<telemetry::RecordSink* const> sinks) {
    for (auto* sink : sinks) sink->consume_span(buffer_.items());
    buffer_.clear();
  }

  /// Pre-grows for an expected record count (e.g. the previous day's
  /// emission count for this shard). No-op when already large enough.
  void reserve(std::size_t expected) { buffer_.reserve(expected); }
  /// Empties without releasing capacity (reuse) — the simulate callback
  /// resets its shard on entry so a retried attempt can never double-emit.
  void clear() noexcept { buffer_.clear(); }
  /// Releases contents AND capacity (accounting drops to zero).
  void release() { buffer_.release(); }

  std::size_t size() const noexcept { return buffer_.items().size(); }
  const std::vector<telemetry::HandoverRecord>& records() const noexcept {
    return buffer_.items();
  }

 private:
  detail::AccountedVector<telemetry::HandoverRecord> buffer_;
};

class MetricsBuffer final : public telemetry::MetricsSink {
 public:
  MetricsBuffer() : buffer_("exec_metrics_buffers") {}

  void consume(const telemetry::UeDayMetrics& metrics) override {
    buffer_.push(metrics);
  }

  void drain_to(std::span<telemetry::MetricsSink* const> sinks) {
    for (auto* sink : sinks) sink->consume_span(buffer_.items());
    buffer_.clear();
  }

  void reserve(std::size_t expected) { buffer_.reserve(expected); }
  void clear() noexcept { buffer_.clear(); }
  void release() { buffer_.release(); }

  std::size_t size() const noexcept { return buffer_.items().size(); }

 private:
  detail::AccountedVector<telemetry::UeDayMetrics> buffer_;
};

}  // namespace tl::exec
