#pragma once

// Per-shard telemetry buffers for the deterministic execution engine.
//
// A worker thread never touches the study's real sinks: it writes into a
// private RecordBuffer / MetricsBuffer, and the merge step replays those
// buffers into the real sinks on the caller's thread, shard by shard in
// canonical UE order. Consumers therefore observe exactly the serial
// stream — same records, same order, same bytes — regardless of how many
// workers produced it.
//
// These buffers are the engine's dominant transient allocation (every
// in-flight shard holds one), so they report their vector capacities to the
// resource governor: each buffer resolves a shared named Accountant at
// construction (null-safe no-op without a governor) and syncs on capacity
// changes — a relaxed atomic delta, safe from worker threads, paid only
// when the vector actually grows.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "govern/governor.hpp"
#include "telemetry/records.hpp"
#include "telemetry/sinks.hpp"

namespace tl::exec {

namespace detail {

/// Capacity-accounting mixin for the two buffer types. Movable (the moved-
/// from buffer stops accounting), deliberately not copyable — a copy would
/// need its own accounted capacity and nothing copies these.
template <typename T>
class AccountedVector {
 public:
  explicit AccountedVector(const char* account_name)
      : account_(govern::account(account_name)) {}
  ~AccountedVector() { account_.sub(accounted_bytes_); }

  AccountedVector(AccountedVector&& other) noexcept
      : items_(std::move(other.items_)),
        account_(other.account_),
        accounted_bytes_(other.accounted_bytes_) {
    other.items_.clear();
    other.accounted_bytes_ = 0;
  }
  AccountedVector& operator=(AccountedVector&& other) noexcept {
    if (this != &other) {
      account_.sub(accounted_bytes_);
      items_ = std::move(other.items_);
      account_ = other.account_;
      accounted_bytes_ = other.accounted_bytes_;
      other.items_.clear();
      other.accounted_bytes_ = 0;
    }
    return *this;
  }
  AccountedVector(const AccountedVector&) = delete;
  AccountedVector& operator=(const AccountedVector&) = delete;

  void push(const T& item) {
    items_.push_back(item);
    if (items_.capacity() * sizeof(T) != accounted_bytes_) sync();
  }

  void release() {
    items_.clear();
    items_.shrink_to_fit();
    sync();
  }

  const std::vector<T>& items() const noexcept { return items_; }

 private:
  void sync() {
    const std::uint64_t bytes = items_.capacity() * sizeof(T);
    if (bytes >= accounted_bytes_) {
      account_.add(bytes - accounted_bytes_);
    } else {
      account_.sub(accounted_bytes_ - bytes);
    }
    accounted_bytes_ = bytes;
  }

  std::vector<T> items_;
  govern::Accountant account_;
  std::uint64_t accounted_bytes_ = 0;
};

}  // namespace detail

class RecordBuffer final : public telemetry::RecordSink {
 public:
  RecordBuffer() : buffer_("exec_record_buffers") {}

  void consume(const telemetry::HandoverRecord& record) override {
    buffer_.push(record);
  }

  /// Replays every buffered record, in arrival order, through `sinks`, then
  /// releases the buffer's memory (a drained shard holds nothing).
  void drain_to(std::span<telemetry::RecordSink* const> sinks) {
    for (const auto& record : buffer_.items()) {
      for (auto* sink : sinks) sink->consume(record);
    }
    buffer_.release();
  }

  std::size_t size() const noexcept { return buffer_.items().size(); }
  const std::vector<telemetry::HandoverRecord>& records() const noexcept {
    return buffer_.items();
  }

 private:
  detail::AccountedVector<telemetry::HandoverRecord> buffer_;
};

class MetricsBuffer final : public telemetry::MetricsSink {
 public:
  MetricsBuffer() : buffer_("exec_metrics_buffers") {}

  void consume(const telemetry::UeDayMetrics& metrics) override {
    buffer_.push(metrics);
  }

  void drain_to(std::span<telemetry::MetricsSink* const> sinks) {
    for (const auto& row : buffer_.items()) {
      for (auto* sink : sinks) sink->consume(row);
    }
    buffer_.release();
  }

  std::size_t size() const noexcept { return buffer_.items().size(); }

 private:
  detail::AccountedVector<telemetry::UeDayMetrics> buffer_;
};

}  // namespace tl::exec
