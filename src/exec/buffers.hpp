#pragma once

// Per-shard telemetry buffers for the deterministic execution engine.
//
// A worker thread never touches the study's real sinks: it writes into a
// private RecordBuffer / MetricsBuffer, and the merge step replays those
// buffers into the real sinks on the caller's thread, shard by shard in
// canonical UE order. Consumers therefore observe exactly the serial
// stream — same records, same order, same bytes — regardless of how many
// workers produced it.

#include <cstddef>
#include <span>
#include <vector>

#include "telemetry/records.hpp"
#include "telemetry/sinks.hpp"

namespace tl::exec {

class RecordBuffer final : public telemetry::RecordSink {
 public:
  void consume(const telemetry::HandoverRecord& record) override {
    records_.push_back(record);
  }

  /// Replays every buffered record, in arrival order, through `sinks`, then
  /// releases the buffer's memory (a drained shard holds nothing).
  void drain_to(std::span<telemetry::RecordSink* const> sinks) {
    for (const auto& record : records_) {
      for (auto* sink : sinks) sink->consume(record);
    }
    records_.clear();
    records_.shrink_to_fit();
  }

  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<telemetry::HandoverRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<telemetry::HandoverRecord> records_;
};

class MetricsBuffer final : public telemetry::MetricsSink {
 public:
  void consume(const telemetry::UeDayMetrics& metrics) override {
    rows_.push_back(metrics);
  }

  void drain_to(std::span<telemetry::MetricsSink* const> sinks) {
    for (const auto& row : rows_) {
      for (auto* sink : sinks) sink->consume(row);
    }
    rows_.clear();
    rows_.shrink_to_fit();
  }

  std::size_t size() const noexcept { return rows_.size(); }

 private:
  std::vector<telemetry::UeDayMetrics> rows_;
};

}  // namespace tl::exec
