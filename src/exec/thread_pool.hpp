#pragma once

// Fixed-size worker pool for the deterministic execution engine.
//
// Design constraints, in order: (1) exceptions thrown by a task must reach
// the caller that submitted it, with type and message intact; (2) shutdown
// is graceful — every task already queued runs to completion before the
// workers join, so a pool going out of scope never strands work; (3) no
// task-ordering guarantees — determinism is the ShardedDayRunner's job
// (ordered merge), never the scheduler's. Keeping the pool order-oblivious
// is what lets it load-balance freely without touching output bytes.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace tl::exec {

class ThreadPool {
 public:
  /// Resolves a requested thread count: 0 means "all hardware threads"
  /// (std::thread::hardware_concurrency, itself clamped to >= 1).
  static unsigned resolve_threads(unsigned requested) noexcept;

  /// Spawns `resolve_threads(threads)` workers immediately.
  explicit ThreadPool(unsigned threads = 0);

  /// Graceful: drains the queue, then joins. Equivalent to shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues `task` and returns the future that carries its completion or
  /// its exception (future.get() rethrows). Throws std::runtime_error after
  /// shutdown() has begun.
  std::future<void> submit(std::function<void()> task);

  /// Stops accepting work, runs every already-queued task, joins all
  /// workers. Idempotent and safe to race from several threads; called by
  /// the destructor. A queued task that throws during the drain parks its
  /// exception in its paired future (std::packaged_task semantics) — it
  /// never reaches std::terminate, even when the pool is mid-destruction.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;

  // Obs handles, captured at construction from the then-global registry.
  // Pools are short-lived relative to a registry swap (the simulator
  // rebuilds its runner — and thus its pool — on registry epoch change),
  // so a per-pool capture is sufficient and keeps the hot path to one
  // relaxed load per op. Null-safe no-ops when no registry is installed.
  obs::Counter tasks_total_;
  obs::Gauge queue_depth_;
  obs::Histogram task_seconds_;
};

}  // namespace tl::exec
