#include "exec/sharded_runner.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

namespace tl::exec {

ShardedDayRunner::ShardedDayRunner() : ShardedDayRunner(Options{}) {}

ShardedDayRunner::ShardedDayRunner(Options options)
    : options_(options), pool_(options.threads) {
  if (options_.shards_per_thread == 0) options_.shards_per_thread = 1;
}

std::size_t ShardedDayRunner::shard_count(std::size_t item_count) const noexcept {
  const std::size_t cap = static_cast<std::size_t>(pool_.size()) *
                          static_cast<std::size_t>(options_.shards_per_thread);
  return std::max<std::size_t>(1, std::min(item_count, cap));
}

void ShardedDayRunner::run(std::size_t item_count, const SimulateFn& simulate,
                           const MergeFn& merge) {
  if (item_count == 0) return;
  const std::size_t shards = shard_count(item_count);

  struct ShardState {
    bool done = false;
    std::exception_ptr error;
  };
  std::vector<ShardState> states(shards);
  std::mutex mutex;
  std::condition_variable shard_done;

  // Every task references the locals above, so run() may not unwind until
  // each submitted task has finished — including on the error paths below.
  std::size_t submitted = 0;
  const auto wait_for_submitted = [&] {
    std::unique_lock<std::mutex> lock{mutex};
    for (std::size_t shard = 0; shard < submitted; ++shard) {
      shard_done.wait(lock, [&] { return states[shard].done; });
    }
  };

  try {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const std::size_t first = shard * item_count / shards;
      const std::size_t last = (shard + 1) * item_count / shards;
      pool_.submit([this, &states, &mutex, &shard_done, &simulate, shard, first, last] {
        std::exception_ptr error;
        try {
          if (options_.task_hook) options_.task_hook(shard, first, last);
          simulate(shard, first, last);
        } catch (...) {
          error = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock{mutex};
          states[shard].error = error;
          states[shard].done = true;
        }
        shard_done.notify_all();
      });
      ++submitted;
    }
  } catch (...) {
    wait_for_submitted();
    throw;
  }

  // Pipelined ordered merge: shard k merges the moment shards 0..k have all
  // finished simulating, while later shards are still running. On error,
  // stop merging but keep waiting — the workers still hold our stack.
  std::exception_ptr first_error;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    {
      std::unique_lock<std::mutex> lock{mutex};
      shard_done.wait(lock, [&] { return states[shard].done; });
      if (states[shard].error != nullptr && first_error == nullptr) {
        first_error = states[shard].error;
      }
    }
    if (first_error != nullptr) continue;
    try {
      merge(shard);
    } catch (...) {
      first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace tl::exec
