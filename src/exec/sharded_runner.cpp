#include "exec/sharded_runner.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <future>
#include <mutex>
#include <vector>

#include "govern/governor.hpp"
#include "obs/scoped_timer.hpp"

namespace tl::exec {

ShardedDayRunner::ShardedDayRunner() : ShardedDayRunner(Options{}) {}

ShardedDayRunner::ShardedDayRunner(Options options)
    : options_(options), pool_(options.threads) {
  if (options_.shards_per_thread == 0) options_.shards_per_thread = 1;
  if (obs::MetricsRegistry* reg = obs::global_registry()) {
    shards_total_ = reg->counter("tl_exec_shards_simulated_total",
                                 "Shards simulated by the day runner");
    throttle_waits_total_ =
        reg->counter("tl_govern_backpressure_waits_total",
                     "Shard starts delayed by the backpressure gate");
    shard_sim_seconds_ =
        reg->histogram("tl_exec_shard_sim_seconds",
                       obs::MetricsRegistry::latency_edges_s(),
                       "Worker-side simulate time per shard");
    shard_merge_seconds_ =
        reg->histogram("tl_exec_shard_merge_seconds",
                       obs::MetricsRegistry::latency_edges_s(),
                       "Caller-side ordered merge time per shard");
  }
}

std::size_t ShardedDayRunner::shard_count(std::size_t item_count) const noexcept {
  std::size_t cap = static_cast<std::size_t>(pool_.size()) *
                    static_cast<std::size_t>(options_.shards_per_thread);
  if (options_.min_items_per_shard > 1) {
    // Size floor: never split finer than min_items_per_shard items/shard.
    // Contiguous ranges merge in ascending order either way, so the shard
    // count is a pure scheduling knob — output bytes are invariant under it.
    cap = std::min(cap, std::max<std::size_t>(
                            1, item_count / options_.min_items_per_shard));
  }
  return std::max<std::size_t>(1, std::min(item_count, cap));
}

std::size_t ShardedDayRunner::gate_window(std::size_t shards) const {
  std::size_t window = options_.max_live_shards;
  if (window == 0) {
    // Auto: throttle only when the governor reports pressure, and then hold
    // the staging footprint to roughly one in-flight shard per worker. The
    // window choice never affects output bytes (merge order is fixed), so
    // reading the hysteretic level here is safe even though it can differ
    // between runs.
    govern::MemoryBudget* governor = govern::global_governor();
    if (governor == nullptr ||
        governor->level() == govern::PressureLevel::kSteady) {
      return 0;
    }
    window = pool_.size();
  }
  return window >= shards ? 0 : window;
}

void ShardedDayRunner::run(std::size_t item_count, const SimulateFn& simulate,
                           const MergeFn& merge) {
  if (item_count == 0) return;
  const std::size_t shards = shard_count(item_count);
  // Bounded hand-off: shard s may not start simulating until fewer than
  // `window` shards sit between it and the merge floor. Tasks are submitted
  // in ascending shard order to a FIFO pool and merged in ascending order,
  // so the gate can only delay starts, never reorder anything — see
  // BackpressureGate for the deadlock-freedom argument. Every early exit
  // below must open() the gate before waiting on worker futures.
  govern::BackpressureGate gate{gate_window(shards)};

  struct ShardState {
    bool done = false;
    std::exception_ptr error;
  };
  std::vector<ShardState> states(shards);
  std::mutex mutex;
  std::condition_variable shard_done;

  // Every task references the locals above, so run() may not unwind until
  // each submitted task has finished — including on the error paths below.
  // The futures are waited too (not just the done flags): the pool wraps
  // each task with its own instrumentation, and the future is set strictly
  // after those trailing writes, so a caller tearing down the metrics
  // registry right after run() cannot race them.
  std::size_t submitted = 0;
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  const auto wait_for_submitted = [&] {
    std::unique_lock<std::mutex> lock{mutex};
    for (std::size_t shard = 0; shard < submitted; ++shard) {
      shard_done.wait(lock, [&] { return states[shard].done; });
    }
  };
  const auto wait_for_futures = [&] {
    for (auto& future : futures) {
      if (future.valid()) future.wait();
    }
  };

  try {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const std::size_t first = shard * item_count / shards;
      const std::size_t last = (shard + 1) * item_count / shards;
      futures.push_back(pool_.submit([this, &states, &mutex, &shard_done, &simulate,
                                      &gate, shard, first, last] {
        gate.acquire(shard);
        std::exception_ptr error;
        obs::ScopedTimer span{shard_sim_seconds_};
        try {
          if (options_.task_hook) options_.task_hook(shard, first, last);
          simulate(shard, first, last);
          span.stop();
          shards_total_.inc();
        } catch (...) {
          span.cancel();  // failed shards must not skew the latency profile
          error = std::current_exception();
        }
        // Notify while holding the lock: the caller destroys `shard_done`
        // (it lives on run()'s stack) as soon as its predicate turns true,
        // and a waiter can only re-check the predicate after this unlock —
        // so an outside-the-lock notify could touch a destroyed cv.
        std::lock_guard<std::mutex> lock{mutex};
        states[shard].error = error;
        states[shard].done = true;
        shard_done.notify_all();
      }));
      ++submitted;
    }
  } catch (...) {
    gate.open();
    wait_for_submitted();
    wait_for_futures();
    throw;
  }

  // Pipelined ordered merge: shard k merges the moment shards 0..k have all
  // finished simulating, while later shards are still running. On error,
  // stop merging but keep waiting — the workers still hold our stack.
  std::exception_ptr first_error;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    {
      std::unique_lock<std::mutex> lock{mutex};
      shard_done.wait(lock, [&] { return states[shard].done; });
      if (states[shard].error != nullptr && first_error == nullptr) {
        first_error = states[shard].error;
      }
    }
    if (first_error != nullptr) {
      gate.open();  // no more merges will retire slots; unblock the workers
      continue;
    }
    try {
      obs::ScopedTimer span{shard_merge_seconds_};
      merge(shard);
    } catch (...) {
      first_error = std::current_exception();
      gate.open();
    }
    gate.release();
  }
  wait_for_futures();
  throttle_waits_total_.inc(gate.waits());
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace tl::exec
