#include "exec/thread_pool.hpp"

#include <stdexcept>
#include <utility>

#include "obs/scoped_timer.hpp"

namespace tl::exec {

unsigned ThreadPool::resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (obs::MetricsRegistry* reg = obs::global_registry()) {
    tasks_total_ = reg->counter("tl_exec_pool_tasks_total",
                                "Tasks executed by the worker pool");
    queue_depth_ = reg->gauge("tl_exec_pool_queue_depth",
                              "Tasks currently queued, not yet started");
    task_seconds_ =
        reg->histogram("tl_exec_pool_task_seconds",
                       obs::MetricsRegistry::latency_edges_s(),
                       "Wall time per pool task");
  }
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // Instrumentation lives INSIDE the packaged task: every metric write must
  // happen-before the task's completion is observable (via the future or any
  // signal the task itself sends), because callers may tear down the metrics
  // registry as soon as they have seen all their tasks finish. A trailing
  // worker-side observe after task() would race that teardown.
  std::packaged_task<void()> packaged{
      [counter = tasks_total_, seconds = task_seconds_,
       task = std::move(task)] {
        counter.inc();
        obs::ScopedTimer span{seconds};
        task();  // a throw still records the span, then parks in the future
      }};
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (shutting_down_) {
      throw std::runtime_error{"ThreadPool::submit: pool is shut down"};
    }
    queue_.push_back(std::move(packaged));
    // Increment while still holding the lock: a worker can only pop (and
    // then decrement) after this unlock, so the gauge's running sum is
    // always >= 0. Incrementing after the unlock let a fast worker
    // decrement first and expositions scrape a transient depth of -1.
    queue_depth_.add(1.0);
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::shutdown() {
  // Claim the worker handles under the lock so concurrent shutdown() calls
  // (or shutdown racing the destructor) each join a disjoint set — the
  // loser of the swap sees an empty vector and returns immediately.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    shutting_down_ = true;
    workers.swap(workers_);
  }
  work_available_.notify_all();
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Graceful shutdown: keep draining until the queue is truly empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_.add(-1.0);
    task();  // a throwing task parks its exception in the paired future
  }
}

}  // namespace tl::exec
