#pragma once

// Deterministic sharded fan-out / ordered merge.
//
// The engine's determinism contract: partition N independent items (UE-days
// of one study day) into contiguous shards, simulate shards concurrently on
// a ThreadPool in whatever order the scheduler likes, but MERGE the shard
// results on the caller's thread in ascending shard order — each merge
// starting as soon as its shard (and every earlier one) has finished. Since
// shards are contiguous index ranges, ascending-shard merge reproduces the
// serial item order exactly; everything order-sensitive (record sinks, the
// durable log, counter reduction) lives in the merge callback and therefore
// never observes scheduling.
//
// Exceptions: a simulate callback that throws poisons its shard; run()
// waits for every in-flight shard, performs no further merges, and rethrows
// the poisoned exception that comes first in merge order — deterministic
// for deterministic failures. Merge callbacks run on the caller's thread,
// so their exceptions propagate directly (later shards are abandoned,
// their simulate results discarded with the shard state).

#include <cstddef>
#include <functional>
#include <memory>

#include "exec/thread_pool.hpp"

namespace tl::exec {

class ShardedDayRunner {
 public:
  struct Options {
    /// Worker threads; 0 = all hardware threads.
    unsigned threads = 0;
    /// Shards per worker (> 1 lets finished workers steal ahead of a slow
    /// shard instead of idling at the merge barrier). Default 2: the old
    /// default of 4 oversharded small runs — 8 tiny shards at 2 threads,
    /// each re-paying per-shard setup (buffer growth, state reset) for a
    /// few milliseconds of simulation. Two per worker keeps one shard of
    /// slack for load balancing at a quarter of the fixed cost.
    unsigned shards_per_thread = 2;
    /// Floor on shard size: shard_count never splits finer than one shard
    /// per `min_items_per_shard` items (1 = no floor, the generic default —
    /// the runner cannot know what an item costs). Callers whose items are
    /// cheap (the simulator's UE-days) raise it so tiny populations do not
    /// fan out into shards whose fixed setup cost exceeds their work.
    std::size_t min_items_per_shard = 1;
    /// Backpressure window: at most this many shards may be past the gate
    /// (simulating or simulated-but-unmerged) ahead of the merge floor,
    /// bounding the buffered-records footprint to O(window) shards instead
    /// of O(all shards). 0 = auto: unbounded at Steady pressure, one
    /// window-per-worker clamp when the global governor reports pressure.
    /// Throttling only delays when a shard *starts*; the ascending merge
    /// order — and therefore every output byte — is unchanged (proved at
    /// several windows by tests/test_govern.cpp).
    std::size_t max_live_shards = 0;
    /// Chaos/observability seam: invoked on the worker thread at the top of
    /// every shard task, before the simulate callback. An exception thrown
    /// here poisons the shard exactly like one thrown by simulate — which
    /// is the point: it lets a TaskFaultInjector (src/supervise) attack the
    /// task boundary without touching the code under test.
    std::function<void(std::size_t shard, std::size_t first, std::size_t last)>
        task_hook;
  };

  ShardedDayRunner();  // default Options
  explicit ShardedDayRunner(Options options);

  unsigned thread_count() const noexcept { return pool_.size(); }

  /// The underlying pool, for callers (StudySupervisor) that schedule their
  /// own attempts while reusing this runner's workers and shard geometry.
  ThreadPool& pool() noexcept { return pool_; }

  /// Number of shards run() will use for `item_count` items: at most
  /// threads * shards_per_thread, never more than one shard per item.
  std::size_t shard_count(std::size_t item_count) const noexcept;

  /// Shard callback: process items [first, last) of shard `shard`. Runs on
  /// a worker thread; must only touch per-shard state.
  using SimulateFn =
      std::function<void(std::size_t shard, std::size_t first, std::size_t last)>;
  /// Merge callback: fold shard `shard` into global state. Runs on the
  /// calling thread, strictly in ascending shard order.
  using MergeFn = std::function<void(std::size_t shard)>;

  /// Fans `simulate` out over the pool and merges in order; returns after
  /// every shard is simulated and merged. No-op for item_count == 0.
  void run(std::size_t item_count, const SimulateFn& simulate, const MergeFn& merge);

 private:
  Options options_;
  ThreadPool pool_;

  /// Effective gate window for a run over `shards` shards (0 = no gate).
  std::size_t gate_window(std::size_t shards) const;

  // Construction-captured obs handles (see ThreadPool for the rationale).
  obs::Counter shards_total_;
  obs::Counter throttle_waits_total_;
  obs::Histogram shard_sim_seconds_;
  obs::Histogram shard_merge_seconds_;
};

}  // namespace tl::exec
