#pragma once

// QuantileSketch: a bounded-memory, mergeable, *deterministic* quantile /
// ECDF summary for streaming ingest (the piece Ecdf and ReservoirSample
// cannot provide: Ecdf retains every sample, ReservoirSample neither merges
// nor bounds rank error).
//
// The structure is the classic multi-level collapse sketch (Munro-Paterson /
// Manku-Rajagopalan-Lindsay): level i holds at most one sorted buffer of
// exactly k samples, each representing 2^i stream items. Inserts fill an
// unsorted base buffer; when it reaches k items it is sorted and promoted,
// collapsing pairwise up the levels. A collapse merge-sorts 2k items of
// weight w and keeps alternate elements (k items of weight 2w); the parity
// of the kept positions alternates per level, so the whole structure is a
// pure deterministic function of the input sequence — two sketches fed the
// same stream are byte-identical, which is what lets the serve-mode chaos
// harness demand bit-for-bit convergence after kill/recover.
//
// Error accounting is *certified*, not asymptotic: every buffer carries the
// absolute rank error of its summary (a collapse of buffers with errors
// e1, e2 at weight w produces e1 + e2 + w), and rank_error_bound() is the
// sum over live buffers divided by the count. For a stream of N items this
// works out to about levels/(2k) = O(log(N/k)/k); the bound reported is
// exact for the actual collapse history, and the property tests assert
// estimates never exceed it. Quantile queries add one unit of the heaviest
// buffer weight for discreteness (quantile_rank_error_bound()).
//
// Merging folds the other sketch's buffers into this one level-by-level
// (errors travel with the buffers), so merged bounds stay certified. Merge
// is deterministic given operand states but not bit-associative — different
// merge trees give different (all bound-respecting) states. count/min/max/
// sum/nan_count are exact under any merge order.
//
// NaN inputs follow analysis::Histogram's convention: routed to a dedicated
// nan tally, never into the sketch, never into count().
//
// Memory: stored_items() <= k * (1 + ceil(log2(N/k))) doubles plus O(1) per
// level — e.g. k=128, N=10^9: ~24 levels, ~3k doubles, ~25 KB per sketch.

#include <cstdint>
#include <span>
#include <vector>

namespace tl::analysis {

class QuantileSketch {
 public:
  static constexpr std::size_t kDefaultK = 256;

  /// `k` is the per-level buffer capacity; must be even and >= 4 (throws
  /// std::invalid_argument otherwise). Larger k = tighter rank error.
  explicit QuantileSketch(std::size_t k = kDefaultK);

  /// Streams one sample. NaN goes to the nan tally (Histogram convention).
  void insert(double x);

  /// Folds `other` into this sketch. Both must share the same k (throws
  /// std::logic_error otherwise). Exact fields stay exact; the certified
  /// error bound grows by other's. Self-merge doubles the sketch.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const noexcept { return count_; }      ///< finite inserts
  std::uint64_t nan_count() const noexcept { return nan_count_; }
  std::size_t k() const noexcept { return k_; }
  bool empty() const noexcept { return count_ == 0; }
  /// Exact extremes / sum over all finite inserts; NaN when empty.
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;

  /// Estimated F(x) = fraction of samples <= x, within rank_error_bound().
  /// Throws std::logic_error when empty.
  double cdf(double x) const;

  /// Estimated quantile: smallest retained value whose estimated rank
  /// reaches q*count(), q in [0,1] (throws std::invalid_argument outside,
  /// std::logic_error when empty). The true rank of the returned value is
  /// within quantile_rank_error_bound()*count() of q*count().
  double quantile(double q) const;

  /// Certified normalized rank error of cdf(): max |cdf(x) - F(x)|.
  double rank_error_bound() const noexcept;
  /// cdf() bound plus one heaviest-buffer weight of discreteness — the
  /// guarantee quantile() queries carry.
  double quantile_rank_error_bound() const noexcept;

  /// Retained samples across all buffers (the memory footprint in doubles).
  std::size_t stored_items() const noexcept;
  /// Number of collapse levels currently allocated.
  std::size_t levels() const noexcept { return levels_.size(); }

  /// Compact ECDF curve over `points` evenly spaced ranks (for reports).
  struct CurvePoint {
    double x;
    double f;
  };
  std::vector<CurvePoint> curve(std::size_t points) const;

  /// Deterministic byte serialization: two sketches with identical state
  /// produce identical bytes (the chaos harness compares these directly).
  void serialize(std::vector<std::uint8_t>& out) const;
  /// Inverse of serialize(); consumes exactly one sketch from the front of
  /// `bytes` and advances `offset`. Validates structure (sorted buffers,
  /// weighted-count conservation) and throws std::runtime_error on any
  /// malformed input.
  static QuantileSketch deserialize(std::span<const std::uint8_t> bytes,
                                    std::size_t& offset);
  static QuantileSketch deserialize(std::span<const std::uint8_t> bytes);

 private:
  struct Level {
    std::vector<double> items;   ///< sorted, size k when occupied, else empty
    std::uint64_t error = 0;     ///< certified absolute rank error (occupied)
    std::uint8_t parity = 0;     ///< alternating collapse offset, persists
  };

  /// Places a sorted weight-2^level buffer, collapsing up as needed.
  void promote(std::vector<double> buffer, std::size_t level, std::uint64_t error);
  /// Estimated absolute rank of x (weighted count of samples <= x).
  double estimated_rank(double x) const noexcept;
  /// Sum of live buffer errors (absolute ranks).
  std::uint64_t total_error() const noexcept;
  /// Weight of the heaviest occupied buffer (1 when only the base holds data).
  std::uint64_t heaviest_weight() const noexcept;
  /// All retained (value, weight) pairs sorted by value.
  std::vector<std::pair<double, std::uint64_t>> weighted_sorted() const;

  std::size_t k_;
  std::uint64_t count_ = 0;
  std::uint64_t nan_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::vector<double> base_;   ///< unsorted level "-1", weight 1, error 0
  std::vector<Level> levels_;
};

}  // namespace tl::analysis
