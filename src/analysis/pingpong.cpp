#include "analysis/pingpong.hpp"

#include <stdexcept>

namespace tl::analysis {

PingPongDetector::PingPongDetector(std::int64_t window_ms, std::size_t history_depth)
    : window_ms_(window_ms), history_depth_(history_depth) {
  if (window_ms < 0) throw std::invalid_argument{"PingPongDetector: negative window"};
  if (history_depth == 0) throw std::invalid_argument{"PingPongDetector: zero depth"};
}

bool PingPongDetector::observe(const HandoverHop& hop) {
  ++hops_;
  UeHistory& h = by_ue_[hop.ue];
  if (h.ring.empty()) h.ring.reserve(history_depth_);

  // Match the most recent unconsumed reverse hop inside the window. Scanning
  // newest-first makes A→B→A→B pair each bounce with its nearest reverse.
  bool bounced = false;
  const std::size_t n = h.ring.size();
  for (std::size_t back = 0; back < n; ++back) {
    const std::size_t idx = (h.next + n - 1 - back) % n;
    Entry& e = h.ring[idx];
    if (hop.time_ms - e.time_ms > window_ms_) break;  // ring is time-ordered
    if (!e.consumed && e.from == hop.to && e.to == hop.from) {
      e.consumed = true;
      bounced = true;
      break;
    }
  }
  if (bounced) {
    ++ping_pongs_;
    if (h.ping_pongs == 0) ++bouncing_ues_;
    ++h.ping_pongs;
  }

  Entry entry{hop.time_ms, hop.from, hop.to, false};
  if (h.ring.size() < history_depth_) {
    h.ring.push_back(entry);
    h.next = h.ring.size() % history_depth_;
  } else {
    h.ring[h.next] = entry;
    h.next = (h.next + 1) % history_depth_;
  }
  return bounced;
}

void PingPongDetector::reset() {
  by_ue_.clear();
  hops_ = 0;
  ping_pongs_ = 0;
  bouncing_ues_ = 0;
}

}  // namespace tl::analysis
