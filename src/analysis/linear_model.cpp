#include "analysis/linear_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/matrix.hpp"
#include "analysis/special_functions.hpp"
#include "util/distributions.hpp"

namespace tl::analysis {

DesignBuilder::DesignBuilder(std::size_t n_observations) : n_(n_observations) {
  if (n_ == 0) throw std::invalid_argument{"DesignBuilder: zero observations"};
}

void DesignBuilder::add_numeric(std::string name, std::span<const double> values) {
  if (values.size() != n_) throw std::invalid_argument{"add_numeric: length mismatch"};
  names_.push_back(std::move(name));
  columns_.emplace_back(values.begin(), values.end());
}

void DesignBuilder::add_categorical(std::string name, std::span<const std::uint32_t> codes,
                                    std::vector<std::string> level_names,
                                    std::uint32_t baseline) {
  if (codes.size() != n_) throw std::invalid_argument{"add_categorical: length mismatch"};
  if (baseline >= level_names.size()) {
    throw std::invalid_argument{"add_categorical: baseline out of range"};
  }
  for (const std::uint32_t c : codes) {
    if (c >= level_names.size()) {
      throw std::invalid_argument{"add_categorical: code out of range"};
    }
  }
  for (std::uint32_t level = 0; level < level_names.size(); ++level) {
    if (level == baseline) continue;
    std::vector<double> indicator(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      if (codes[i] == level) indicator[i] = 1.0;
    }
    names_.push_back(name + ": " + level_names[level]);
    columns_.push_back(std::move(indicator));
  }
}

std::vector<double> DesignBuilder::build_matrix() const {
  const std::size_t p = parameters();
  std::vector<double> x(n_ * p);
  for (std::size_t r = 0; r < n_; ++r) {
    x[r * p] = 1.0;
    for (std::size_t c = 0; c < columns_.size(); ++c) x[r * p + c + 1] = columns_[c][r];
  }
  return x;
}

namespace {

/// Weighted Gram accumulation without materializing X: columns are the
/// design's covariates; the intercept is implicit column 0.
struct GramAccumulator {
  const DesignBuilder& design;
  const std::vector<double> x;  // row-major design incl. intercept
  std::size_t n;
  std::size_t p;

  explicit GramAccumulator(const DesignBuilder& d)
      : design(d), x(d.build_matrix()), n(d.observations()), p(d.parameters()) {}

  Matrix weighted_gram(std::span<const double> w) const {
    Matrix g(p, p);
    for (std::size_t r = 0; r < n; ++r) {
      const double wr = w.empty() ? 1.0 : w[r];
      if (wr == 0.0) continue;
      const double* row = x.data() + r * p;
      for (std::size_t i = 0; i < p; ++i) {
        const double vi = wr * row[i];
        if (vi == 0.0) continue;
        for (std::size_t j = i; j < p; ++j) g(i, j) += vi * row[j];
      }
    }
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
    }
    return g;
  }

  std::vector<double> weighted_xty(std::span<const double> y,
                                   std::span<const double> w) const {
    std::vector<double> b(p, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      const double wy = (w.empty() ? 1.0 : w[r]) * y[r];
      if (wy == 0.0) continue;
      const double* row = x.data() + r * p;
      for (std::size_t c = 0; c < p; ++c) b[c] += row[c] * wy;
    }
    return b;
  }

  double predict(std::size_t r, std::span<const double> beta) const {
    const double* row = x.data() + r * p;
    double yhat = 0.0;
    for (std::size_t c = 0; c < p; ++c) yhat += row[c] * beta[c];
    return yhat;
  }
};

std::vector<std::string> term_names_with_intercept(const DesignBuilder& d) {
  std::vector<std::string> names;
  names.reserve(d.parameters());
  names.emplace_back("(Intercept)");
  for (const auto& n : d.term_names()) names.push_back(n);
  return names;
}

}  // namespace

const Term& LinearModel::term(const std::string& name) const {
  for (const auto& t : terms) {
    if (t.name == name) return t;
  }
  throw std::out_of_range{"LinearModel::term: no term named " + name};
}

LinearModel fit_ols(const DesignBuilder& design, std::span<const double> y) {
  const std::size_t n = design.observations();
  const std::size_t p = design.parameters();
  if (y.size() != n) throw std::invalid_argument{"fit_ols: y length mismatch"};
  if (n <= p) throw std::invalid_argument{"fit_ols: more parameters than observations"};

  GramAccumulator acc{design};
  const Matrix gram = acc.weighted_gram({});
  const std::vector<double> xty = acc.weighted_xty(y, {});
  const Cholesky chol{gram};
  const std::vector<double> beta = chol.solve(xty);

  double rss = 0.0;
  double tss = 0.0;
  double ymean = 0.0;
  for (const double v : y) ymean += v;
  ymean /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double e = y[r] - acc.predict(r, beta);
    rss += e * e;
    tss += (y[r] - ymean) * (y[r] - ymean);
  }

  const double sigma2 = rss / static_cast<double>(n - p);
  const Matrix cov_unscaled = chol.inverse();
  const double df = static_cast<double>(n - p);
  // 95% CI half-width factor: t quantile ~ normal for the dfs here, but use
  // the exact t for small-sample correctness in unit tests.
  const double alpha = 0.975;
  double t_crit = util::normal_quantile(alpha);
  if (df < 200.0) {
    // Invert the t CDF by bisection; df is tiny only in tests.
    double lo = 0.0, hi = 100.0;
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (lo + hi);
      (student_t_cdf(mid, df) < alpha ? lo : hi) = mid;
    }
    t_crit = 0.5 * (lo + hi);
  }

  LinearModel model;
  model.n = n;
  model.parameters = p;
  const auto names = term_names_with_intercept(design);
  for (std::size_t c = 0; c < p; ++c) {
    Term t;
    t.name = names[c];
    t.coefficient = beta[c];
    t.std_error = std::sqrt(sigma2 * cov_unscaled(c, c));
    t.t_value = t.std_error > 0.0 ? t.coefficient / t.std_error
                                  : std::numeric_limits<double>::infinity();
    t.p_value = std::isfinite(t.t_value) ? student_t_two_sided_p(t.t_value, df) : 0.0;
    t.ci_lo = t.coefficient - t_crit * t.std_error;
    t.ci_hi = t.coefficient + t_crit * t.std_error;
    model.terms.push_back(std::move(t));
  }
  model.r_squared = tss > 0.0 ? 1.0 - rss / tss : 1.0;
  model.adjusted_r_squared =
      1.0 - (1.0 - model.r_squared) * static_cast<double>(n - 1) / df;
  model.rmse = std::sqrt(rss / static_cast<double>(n));
  model.aic = static_cast<double>(n) * (std::log(2.0 * M_PI) +
                                        std::log(rss / static_cast<double>(n)) + 1.0) +
              2.0 * static_cast<double>(p + 1);
  return model;
}

QuantileFit fit_quantile(const DesignBuilder& design, std::span<const double> y,
                         double tau, int max_iterations, double tol) {
  if (tau <= 0.0 || tau >= 1.0) throw std::invalid_argument{"fit_quantile: tau in (0,1)"};
  const std::size_t n = design.observations();
  const std::size_t p = design.parameters();
  if (y.size() != n) throw std::invalid_argument{"fit_quantile: y length mismatch"};
  if (n <= p) throw std::invalid_argument{"fit_quantile: too few observations"};

  GramAccumulator acc{design};

  // Start from the OLS solution.
  const Cholesky ols_chol{acc.weighted_gram({})};
  std::vector<double> beta = ols_chol.solve(acc.weighted_xty(y, {}));

  std::vector<double> w(n, 1.0);
  std::vector<double> residuals(n, 0.0);
  const double eps = 1e-6;
  QuantileFit fit;
  fit.tau = tau;
  fit.n = n;

  for (int it = 0; it < max_iterations; ++it) {
    double max_delta = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      residuals[r] = y[r] - acc.predict(r, beta);
      const double a = residuals[r] >= 0.0 ? tau : 1.0 - tau;
      w[r] = a / std::max(std::fabs(residuals[r]), eps);
    }
    const Cholesky chol{acc.weighted_gram(w)};
    const std::vector<double> next = chol.solve(acc.weighted_xty(y, w));
    for (std::size_t c = 0; c < p; ++c) {
      max_delta = std::max(max_delta, std::fabs(next[c] - beta[c]));
    }
    beta = next;
    fit.iterations = static_cast<std::size_t>(it + 1);
    if (max_delta < tol) {
      fit.converged = true;
      break;
    }
  }

  // Powell sandwich covariance: tau(1-tau) * D^-1 (X'X) D^-1 with
  // D = X' diag(f_hat) X and f_hat a uniform-kernel density at zero.
  for (std::size_t r = 0; r < n; ++r) residuals[r] = y[r] - acc.predict(r, beta);
  std::vector<double> abs_res(residuals.size());
  for (std::size_t r = 0; r < n; ++r) abs_res[r] = std::fabs(residuals[r]);
  std::nth_element(abs_res.begin(), abs_res.begin() + static_cast<std::ptrdiff_t>(n / 2),
                   abs_res.end());
  const double scale = std::max(abs_res[n / 2], 1e-8);
  const double h = scale * std::pow(static_cast<double>(n), -1.0 / 3.0) * 1.5;
  std::vector<double> density_w(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    if (std::fabs(residuals[r]) < h) density_w[r] = 1.0 / (2.0 * h);
  }
  const Matrix d = acc.weighted_gram(density_w);
  const Matrix xtx = acc.weighted_gram({});
  const Cholesky d_chol{d};
  const Matrix d_inv = d_chol.inverse();
  const Matrix sandwich = d_inv * xtx * d_inv;

  const auto names = term_names_with_intercept(design);
  const double z_crit = util::normal_quantile(0.975);
  for (std::size_t c = 0; c < p; ++c) {
    Term t;
    t.name = names[c];
    t.coefficient = beta[c];
    t.std_error = std::sqrt(std::max(0.0, tau * (1.0 - tau) * sandwich(c, c)));
    t.t_value = t.std_error > 0.0 ? t.coefficient / t.std_error
                                  : std::numeric_limits<double>::infinity();
    t.p_value = std::isfinite(t.t_value)
                    ? 2.0 * (1.0 - normal_cdf(std::fabs(t.t_value)))
                    : 0.0;
    t.ci_lo = t.coefficient - z_crit * t.std_error;
    t.ci_hi = t.coefficient + z_crit * t.std_error;
    fit.terms.push_back(std::move(t));
  }
  return fit;
}

}  // namespace tl::analysis
