#include "analysis/quantile_sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tl::analysis {
namespace {

constexpr std::uint8_t kSerialVersion = 1;
constexpr char kSerialMagic[4] = {'T', 'L', 'Q', 'S'};
// Far beyond any state this process could hold; lets deserialize reject
// garbage lengths before allocating.
constexpr std::uint32_t kMaxLevels = 64;
constexpr std::uint32_t kMaxK = 1u << 20;

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_f64(std::vector<std::uint8_t>& v, double x) {
  put_u64(v, std::bit_cast<std::uint64_t>(x));
}

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos;

  [[noreturn]] static void corrupt() {
    throw std::runtime_error{"QuantileSketch::deserialize: malformed input"};
  }
  void need(std::size_t n) const {
    if (pos + n > bytes.size()) corrupt();
  }
  std::uint8_t u8() {
    need(1);
    return bytes[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
    pos += 4;
    return x;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
    pos += 8;
    return x;
  }
  double f64() { return std::bit_cast<double>(u64()); }
};

}  // namespace

QuantileSketch::QuantileSketch(std::size_t k) : k_(k) {
  if (k_ < 4 || (k_ % 2) != 0) {
    throw std::invalid_argument{"QuantileSketch: k must be even and >= 4"};
  }
  base_.reserve(k_);
}

double QuantileSketch::min() const noexcept {
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}
double QuantileSketch::max() const noexcept {
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}
double QuantileSketch::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_)
                : std::numeric_limits<double>::quiet_NaN();
}

void QuantileSketch::insert(double x) {
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  base_.push_back(x);
  if (base_.size() == k_) {
    std::vector<double> full = std::move(base_);
    base_.clear();
    base_.reserve(k_);
    std::sort(full.begin(), full.end());
    promote(std::move(full), 0, 0);
  }
}

void QuantileSketch::promote(std::vector<double> buffer, std::size_t level,
                             std::uint64_t error) {
  while (true) {
    if (levels_.size() <= level) levels_.resize(level + 1);
    Level& slot = levels_[level];
    if (slot.items.empty()) {
      slot.items = std::move(buffer);
      slot.error = error;
      return;
    }
    // Collapse: merge the resident and incoming weight-2^level buffers and
    // keep alternate positions of the merged run. Keeping parity p turns a
    // weighted rank w*c into 2w*(kept <= x), off by at most w — hence the
    // +weight in the certified error. The parity flip makes successive
    // collapses cancel instead of drift.
    std::vector<double> merged;
    merged.resize(2 * k_);
    std::merge(slot.items.begin(), slot.items.end(), buffer.begin(), buffer.end(),
               merged.begin());
    std::vector<double> kept;
    kept.reserve(k_);
    for (std::size_t i = slot.parity; i < merged.size(); i += 2) kept.push_back(merged[i]);
    const std::uint64_t weight = std::uint64_t{1} << level;
    error = slot.error + error + weight;
    slot.parity ^= 1;
    slot.items.clear();
    slot.error = 0;
    buffer = std::move(kept);
    ++level;
  }
}

void QuantileSketch::merge(const QuantileSketch& other_in) {
  if (other_in.k_ != k_) {
    throw std::logic_error{"QuantileSketch::merge: mismatched k"};
  }
  // Self-merge reads state while promote() mutates it; work from a copy.
  const QuantileSketch copy = (&other_in == this) ? other_in : QuantileSketch{k_};
  const QuantileSketch& other = (&other_in == this) ? copy : other_in;
  if (other.count_ == 0 && other.nan_count_ == 0) return;

  nan_count_ += other.nan_count_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
  // Base items stream in (no scalar updates — those were folded above).
  for (const double x : other.base_) {
    base_.push_back(x);
    if (base_.size() == k_) {
      std::vector<double> full = std::move(base_);
      base_.clear();
      base_.reserve(k_);
      std::sort(full.begin(), full.end());
      promote(std::move(full), 0, 0);
    }
  }
  // Buffers travel whole, carrying their certified errors.
  for (std::size_t level = 0; level < other.levels_.size(); ++level) {
    const Level& src = other.levels_[level];
    if (!src.items.empty()) promote(src.items, level, src.error);
  }
}

double QuantileSketch::estimated_rank(double x) const noexcept {
  double rank = 0.0;
  for (const double v : base_) {
    if (v <= x) rank += 1.0;
  }
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const Level& slot = levels_[level];
    if (slot.items.empty()) continue;
    const auto it = std::upper_bound(slot.items.begin(), slot.items.end(), x);
    rank += static_cast<double>(std::uint64_t{1} << level) *
            static_cast<double>(it - slot.items.begin());
  }
  return rank;
}

std::uint64_t QuantileSketch::total_error() const noexcept {
  std::uint64_t e = 0;
  for (const Level& slot : levels_) {
    if (!slot.items.empty()) e += slot.error;
  }
  return e;
}

std::uint64_t QuantileSketch::heaviest_weight() const noexcept {
  std::uint64_t w = 1;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    if (!levels_[level].items.empty()) w = std::uint64_t{1} << level;
  }
  return w;
}

double QuantileSketch::rank_error_bound() const noexcept {
  if (count_ == 0) return 0.0;
  return static_cast<double>(total_error()) / static_cast<double>(count_);
}

double QuantileSketch::quantile_rank_error_bound() const noexcept {
  if (count_ == 0) return 0.0;
  return (static_cast<double>(total_error()) + static_cast<double>(heaviest_weight())) /
         static_cast<double>(count_);
}

std::size_t QuantileSketch::stored_items() const noexcept {
  std::size_t n = base_.size();
  for (const Level& slot : levels_) n += slot.items.size();
  return n;
}

double QuantileSketch::cdf(double x) const {
  if (count_ == 0) throw std::logic_error{"QuantileSketch::cdf: empty sketch"};
  return estimated_rank(x) / static_cast<double>(count_);
}

std::vector<std::pair<double, std::uint64_t>> QuantileSketch::weighted_sorted() const {
  std::vector<std::pair<double, std::uint64_t>> items;
  items.reserve(stored_items());
  for (const double v : base_) items.emplace_back(v, 1);
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    for (const double v : levels_[level].items) {
      items.emplace_back(v, std::uint64_t{1} << level);
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) throw std::logic_error{"QuantileSketch::quantile: empty sketch"};
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument{"QuantileSketch::quantile: q outside [0, 1]"};
  }
  if (q == 0.0) return min_;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted_sorted()) {
    cumulative += weight;
    if (static_cast<double>(cumulative) >= target) {
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

std::vector<QuantileSketch::CurvePoint> QuantileSketch::curve(std::size_t points) const {
  std::vector<CurvePoint> out;
  if (count_ == 0 || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1 ? 1.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(points - 1);
    const double x = quantile(q);
    out.push_back({x, cdf(x)});
  }
  return out;
}

void QuantileSketch::serialize(std::vector<std::uint8_t>& out) const {
  out.insert(out.end(), kSerialMagic, kSerialMagic + sizeof kSerialMagic);
  out.push_back(kSerialVersion);
  put_u32(out, static_cast<std::uint32_t>(k_));
  put_u64(out, count_);
  put_u64(out, nan_count_);
  put_f64(out, min_);
  put_f64(out, max_);
  put_f64(out, sum_);
  put_u32(out, static_cast<std::uint32_t>(base_.size()));
  for (const double v : base_) put_f64(out, v);
  put_u32(out, static_cast<std::uint32_t>(levels_.size()));
  for (const Level& slot : levels_) {
    out.push_back(slot.items.empty() ? 0 : 1);
    out.push_back(slot.parity);
    put_u64(out, slot.error);
    for (const double v : slot.items) put_f64(out, v);
  }
}

QuantileSketch QuantileSketch::deserialize(std::span<const std::uint8_t> bytes,
                                           std::size_t& offset) {
  Reader r{bytes, offset};
  r.need(sizeof kSerialMagic + 1);
  for (const char c : kSerialMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c)) Reader::corrupt();
  }
  if (r.u8() != kSerialVersion) Reader::corrupt();
  const std::uint32_t k = r.u32();
  if (k < 4 || (k % 2) != 0 || k > kMaxK) Reader::corrupt();
  QuantileSketch sketch{k};
  sketch.count_ = r.u64();
  sketch.nan_count_ = r.u64();
  sketch.min_ = r.f64();
  sketch.max_ = r.f64();
  sketch.sum_ = r.f64();
  const std::uint32_t base_size = r.u32();
  if (base_size >= k) Reader::corrupt();
  sketch.base_.reserve(k);
  for (std::uint32_t i = 0; i < base_size; ++i) {
    const double v = r.f64();
    if (std::isnan(v)) Reader::corrupt();
    sketch.base_.push_back(v);
  }
  const std::uint32_t level_count = r.u32();
  if (level_count > kMaxLevels) Reader::corrupt();
  std::uint64_t weighted = base_size;
  sketch.levels_.resize(level_count);
  for (std::uint32_t level = 0; level < level_count; ++level) {
    Level& slot = sketch.levels_[level];
    const std::uint8_t occupied = r.u8();
    if (occupied > 1) Reader::corrupt();
    slot.parity = r.u8();
    if (slot.parity > 1) Reader::corrupt();
    slot.error = r.u64();
    if (occupied) {
      slot.items.reserve(k);
      double prev = -std::numeric_limits<double>::infinity();
      for (std::uint32_t i = 0; i < k; ++i) {
        const double v = r.f64();
        if (std::isnan(v) || v < prev) Reader::corrupt();  // buffers are sorted
        slot.items.push_back(v);
        prev = v;
      }
      weighted += (std::uint64_t{1} << level) * k;
    } else if (slot.error != 0) {
      Reader::corrupt();
    }
  }
  // Collapses conserve weighted item count exactly; a mismatch means the
  // payload does not describe a sketch this code could have produced.
  if (weighted != sketch.count_) Reader::corrupt();
  if (sketch.count_ > 0 &&
      (std::isnan(sketch.min_) || std::isnan(sketch.max_) || sketch.min_ > sketch.max_)) {
    Reader::corrupt();
  }
  offset = r.pos;
  return sketch;
}

QuantileSketch QuantileSketch::deserialize(std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  QuantileSketch sketch = deserialize(bytes, offset);
  if (offset != bytes.size()) Reader::corrupt();
  return sketch;
}

}  // namespace tl::analysis
