#pragma once

// Ping-pong handover detection: rapid A→B→A re-handovers within a sliding
// per-UE window (related work [15]'s "sub cell movement" pathology). The
// detector is a standalone analysis utility over minimal hop tuples — no
// telemetry dependency — so the experiment harness, ablation benches, and
// unit tests all consume the same definition.
//
// Definition: a successful hop (from → to) at time t completes a ping-pong
// iff the same UE executed the reverse hop (to → from) at some time t' with
// t - t' <= window_ms. Each earlier hop can anchor at most one ping-pong (a
// bounce consumes its reverse), so A→B→A→B counts two ping-pongs, not three.
// Only successful handovers move the UE, so callers feed executed hops.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tl::analysis {

/// One executed (successful) handover of one UE.
struct HandoverHop {
  std::uint64_t ue = 0;
  std::int64_t time_ms = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

class PingPongDetector {
 public:
  /// `window_ms`: how recent the reverse hop must be. `history_depth`: hops
  /// remembered per UE (bounded state; the window logic prunes anyway —
  /// depth only matters when many distinct hops land inside one window).
  explicit PingPongDetector(std::int64_t window_ms = 5'000, std::size_t history_depth = 4);

  /// Feeds one hop. Hops of the same UE must arrive in nondecreasing time
  /// order (any interleaving across UEs is fine). Returns true iff this hop
  /// completed a ping-pong.
  bool observe(const HandoverHop& hop);

  std::uint64_t hops() const noexcept { return hops_; }
  std::uint64_t ping_pongs() const noexcept { return ping_pongs_; }
  /// Share of hops that completed a ping-pong (0 when no hops).
  double rate() const noexcept {
    return hops_ == 0 ? 0.0 : static_cast<double>(ping_pongs_) / static_cast<double>(hops_);
  }
  /// UEs that completed at least one ping-pong.
  std::uint64_t bouncing_ues() const noexcept { return bouncing_ues_; }

  /// Drops all per-UE history and counters.
  void reset();

  std::int64_t window_ms() const noexcept { return window_ms_; }

 private:
  struct Entry {
    std::int64_t time_ms = 0;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    bool consumed = false;  ///< already anchored a ping-pong
  };
  struct UeHistory {
    std::vector<Entry> ring;  ///< capacity history_depth, oldest overwritten
    std::size_t next = 0;
    std::uint64_t ping_pongs = 0;
  };

  std::int64_t window_ms_;
  std::size_t history_depth_;
  std::unordered_map<std::uint64_t, UeHistory> by_ue_;
  std::uint64_t hops_ = 0;
  std::uint64_t ping_pongs_ = 0;
  std::uint64_t bouncing_ues_ = 0;
};

}  // namespace tl::analysis
