#pragma once

// Special functions needed for p-values: regularized incomplete gamma and
// beta functions, and the CDFs of the chi-squared, Student-t, and F
// distributions built on them. Implemented from first principles (Numerical
// Recipes-style series/continued fractions) — no external math library.

namespace tl::analysis {

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized incomplete beta I_x(a, b) for a,b > 0, x in [0,1].
double regularized_beta(double a, double b, double x);

/// Chi-squared CDF with k degrees of freedom.
double chi_squared_cdf(double x, double k);

/// Student-t CDF with nu degrees of freedom.
double student_t_cdf(double t, double nu);

/// Two-sided p-value for a t statistic.
double student_t_two_sided_p(double t, double nu);

/// F distribution CDF with (d1, d2) degrees of freedom.
double f_cdf(double x, double d1, double d2);

/// Upper-tail p-value of an F statistic.
double f_upper_p(double x, double d1, double d2);

/// Standard normal CDF.
double normal_cdf(double z);

/// CDF of the studentized range statistic with k groups and infinite
/// degrees of freedom (range of k iid standard normals). Used for
/// Tukey HSD at the sample sizes of this study, where residual df is huge.
double studentized_range_cdf_inf_df(double q, int k);

}  // namespace tl::analysis
