#pragma once

// Descriptive statistics: quantiles, the paper's Table-6-style six-number
// summary, and boxplot statistics (Figs. 11, 12, 18).

#include <span>
#include <vector>

namespace tl::analysis {

/// Linear-interpolated quantile of unsorted data; p in [0, 1].
double quantile(std::span<const double> values, double p);

/// Quantile of data already sorted ascending.
double quantile_sorted(std::span<const double> sorted, double p);

double median(std::span<const double> values);
double mean(std::span<const double> values);
/// Sample variance (n-1); 0 for fewer than two values.
double variance(std::span<const double> values);
double stddev(std::span<const double> values);

/// Min / 1st Qu / Median / Mean / 3rd Qu / Max, as R's summary() prints.
struct SixNumberSummary {
  double min = 0, q1 = 0, median = 0, mean = 0, q3 = 0, max = 0;
};
SixNumberSummary summarize(std::span<const double> values);

/// Boxplot statistics with 1.5*IQR whiskers.
struct BoxplotStats {
  double q1 = 0, median = 0, q3 = 0;
  double whisker_lo = 0, whisker_hi = 0;
  double mean = 0;
  std::size_t n = 0;
  std::size_t outliers = 0;
};
BoxplotStats boxplot(std::span<const double> values);

/// Natural-log transform with the paper's handling of zeros: entries <= 0
/// are dropped (the models regress log HOF rate over non-zero rates).
std::vector<double> log_transform_positive(std::span<const double> values);

}  // namespace tl::analysis
