#include "analysis/special_functions.hpp"

#include <cmath>
#include <stdexcept>

namespace tl::analysis {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

/// Series expansion of P(a,x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for Q(a,x) = 1 - P(a,x), valid for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

/// Lentz continued fraction for the incomplete beta function.
double beta_continued_fraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = static_cast<double>(m) * (b - m) * x /
                ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument{"regularized_gamma_p: a must be > 0"};
  if (x < 0.0) throw std::invalid_argument{"regularized_gamma_p: x must be >= 0"};
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) throw std::invalid_argument{"regularized_beta: a,b must be > 0"};
  if (x < 0.0 || x > 1.0) throw std::invalid_argument{"regularized_beta: x outside [0,1]"};
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double chi_squared_cdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(k / 2.0, x / 2.0);
}

double student_t_cdf(double t, double nu) {
  if (nu <= 0.0) throw std::invalid_argument{"student_t_cdf: nu must be > 0"};
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * regularized_beta(nu / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_two_sided_p(double t, double nu) {
  const double x = nu / (nu + t * t);
  return regularized_beta(nu / 2.0, 0.5, x);
}

double f_cdf(double x, double d1, double d2) {
  if (x <= 0.0) return 0.0;
  return regularized_beta(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2));
}

double f_upper_p(double x, double d1, double d2) { return 1.0 - f_cdf(x, d1, d2); }

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double studentized_range_cdf_inf_df(double q, int k) {
  if (k < 2) throw std::invalid_argument{"studentized_range_cdf_inf_df: k must be >= 2"};
  if (q <= 0.0) return 0.0;
  // P(Q < q) = k * Integral phi(z) * [Phi(z) - Phi(z - q)]^(k-1) dz.
  // Simpson's rule over z in [-8, 8 + q]; the integrand decays like phi(z).
  const double lo = -8.0;
  const double hi = 8.0 + q;
  const int n = 2000;  // even
  const double h = (hi - lo) / n;
  auto integrand = [&](double z) {
    const double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
    const double inner = normal_cdf(z) - normal_cdf(z - q);
    return phi * std::pow(inner, k - 1);
  };
  double sum = integrand(lo) + integrand(hi);
  for (int i = 1; i < n; ++i) {
    sum += integrand(lo + i * h) * (i % 2 ? 4.0 : 2.0);
  }
  const double integral = sum * h / 3.0;
  const double cdf = k * integral;
  return cdf < 0.0 ? 0.0 : (cdf > 1.0 ? 1.0 : cdf);
}

}  // namespace tl::analysis
