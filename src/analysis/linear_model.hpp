#pragma once

// Linear models over mixed numeric/categorical covariates — the machinery
// behind Tables 4, 5, 7 (OLS on log HOF rate) and Tables 8, 9 (quantile
// regression). Categorical factors use treatment coding against an explicit
// baseline level, exactly as R's lm() does, so coefficient tables are
// directly comparable with the paper's.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tl::analysis {

/// A design matrix assembled column-by-column with an implicit intercept.
class DesignBuilder {
 public:
  /// Declares the number of observations; all columns must match it.
  explicit DesignBuilder(std::size_t n_observations);

  /// Adds a numeric covariate.
  void add_numeric(std::string name, std::span<const double> values);

  /// Adds a categorical covariate given per-row level indices and level
  /// names. `baseline` is absorbed into the intercept; remaining levels get
  /// one indicator column each, named "<name>: <level>".
  void add_categorical(std::string name, std::span<const std::uint32_t> codes,
                       std::vector<std::string> level_names, std::uint32_t baseline = 0);

  std::size_t observations() const noexcept { return n_; }
  std::size_t parameters() const noexcept { return names_.size() + 1; }  // + intercept
  const std::vector<std::string>& term_names() const noexcept { return names_; }

  /// Row-major design matrix including the leading intercept column.
  std::vector<double> build_matrix() const;

 private:
  std::size_t n_;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

struct Term {
  std::string name;
  double coefficient = 0;
  double std_error = 0;
  double t_value = 0;
  double p_value = 0;
  double ci_lo = 0;  // 95% confidence interval
  double ci_hi = 0;
};

struct LinearModel {
  std::vector<Term> terms;  // terms[0] is the intercept
  double r_squared = 0;
  double adjusted_r_squared = 0;
  double rmse = 0;
  double aic = 0;
  std::size_t n = 0;
  std::size_t parameters = 0;

  /// Finds a term by exact name; throws if missing.
  const Term& term(const std::string& name) const;
};

/// Ordinary least squares fit of y against the design.
LinearModel fit_ols(const DesignBuilder& design, std::span<const double> y);

struct QuantileFit {
  double tau = 0;
  std::vector<Term> terms;  // std errors via the Powell sandwich estimator
  std::size_t n = 0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Quantile regression at level tau via iteratively reweighted least
/// squares on a smoothed check loss. Converges to the linear-programming
/// solution as the smoothing vanishes; adequate at the sample sizes used
/// here (verified against known closed-form cases in the test suite).
QuantileFit fit_quantile(const DesignBuilder& design, std::span<const double> y,
                         double tau, int max_iterations = 200, double tol = 1e-9);

}  // namespace tl::analysis
