#include "analysis/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace tl::analysis {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument{"Matrix multiply: shape mismatch"};
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += v * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double vi = row[i];
      if (vi == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += vi * row[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

std::vector<double> Matrix::transpose_times(const std::vector<double>& y) const {
  if (y.size() != rows_) throw std::invalid_argument{"transpose_times: length mismatch"};
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double yr = y[r];
    if (yr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row[c] * yr;
  }
  return out;
}

namespace {

bool try_factor(const Matrix& a, Matrix& l) {
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return true;
}

}  // namespace

Cholesky::Cholesky(const Matrix& spd) {
  if (spd.rows() != spd.cols()) throw std::invalid_argument{"Cholesky: non-square"};
  if (try_factor(spd, l_)) return;
  // Jitter retry: rescue nearly singular Gram matrices (e.g. a factor level
  // that appears in very few rows) with a diagonal ridge proportional to the
  // matrix scale.
  double scale = 0.0;
  for (std::size_t i = 0; i < spd.rows(); ++i) scale = std::max(scale, spd(i, i));
  Matrix jittered = spd;
  const double ridge = scale > 0 ? scale * 1e-10 : 1e-10;
  for (std::size_t i = 0; i < spd.rows(); ++i) jittered(i, i) += ridge;
  if (!try_factor(jittered, l_)) {
    throw std::runtime_error{"Cholesky: matrix is not positive definite"};
  }
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument{"Cholesky::solve: length mismatch"};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = l_.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const std::vector<double> col = solve(e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

}  // namespace tl::analysis
