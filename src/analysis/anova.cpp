#include "analysis/anova.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "analysis/special_functions.hpp"

namespace tl::analysis {

namespace {

void validate_groups(std::span<const std::vector<double>> groups) {
  if (groups.size() < 2) throw std::invalid_argument{"need at least 2 groups"};
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument{"empty group"};
  }
}

}  // namespace

AnovaResult one_way_anova(std::span<const std::vector<double>> groups) {
  validate_groups(groups);
  const std::size_t k = groups.size();
  std::size_t n_total = 0;
  double grand_sum = 0.0;
  for (const auto& g : groups) {
    n_total += g.size();
    for (const double v : g) grand_sum += v;
  }
  if (n_total <= k) throw std::invalid_argument{"one_way_anova: too few observations"};
  const double grand_mean = grand_sum / static_cast<double>(n_total);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& g : groups) {
    double gsum = 0.0;
    for (const double v : g) gsum += v;
    const double gmean = gsum / static_cast<double>(g.size());
    ss_between += static_cast<double>(g.size()) * (gmean - grand_mean) * (gmean - grand_mean);
    for (const double v : g) ss_within += (v - gmean) * (v - gmean);
  }

  AnovaResult r;
  r.ss_between = ss_between;
  r.ss_within = ss_within;
  r.df_between = static_cast<double>(k - 1);
  r.df_within = static_cast<double>(n_total - k);
  const double ms_between = ss_between / r.df_between;
  const double ms_within = ss_within / r.df_within;
  r.f_statistic = ms_within > 0.0 ? ms_between / ms_within
                                  : std::numeric_limits<double>::infinity();
  r.p_value = std::isfinite(r.f_statistic)
                  ? f_upper_p(r.f_statistic, r.df_between, r.df_within)
                  : 0.0;
  const double ss_total = ss_between + ss_within;
  r.eta_squared = ss_total > 0.0 ? ss_between / ss_total : 0.0;
  return r;
}

std::vector<TukeyComparison> tukey_hsd(std::span<const std::vector<double>> groups) {
  validate_groups(groups);
  const std::size_t k = groups.size();
  const AnovaResult anova = one_way_anova(groups);
  const double ms_within = anova.ss_within / anova.df_within;

  std::vector<double> means(k);
  std::vector<double> sizes(k);
  for (std::size_t i = 0; i < k; ++i) {
    double sum = 0.0;
    for (const double v : groups[i]) sum += v;
    means[i] = sum / static_cast<double>(groups[i].size());
    sizes[i] = static_cast<double>(groups[i].size());
  }

  std::vector<TukeyComparison> out;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      TukeyComparison c;
      c.group_a = a;
      c.group_b = b;
      c.mean_difference = means[b] - means[a];
      // Tukey-Kramer standard error for unequal n.
      const double se = std::sqrt(ms_within / 2.0 * (1.0 / sizes[a] + 1.0 / sizes[b]));
      c.q_statistic = se > 0.0 ? std::fabs(c.mean_difference) / se
                               : std::numeric_limits<double>::infinity();
      c.p_value = std::isfinite(c.q_statistic)
                      ? 1.0 - studentized_range_cdf_inf_df(c.q_statistic,
                                                           static_cast<int>(k))
                      : 0.0;
      out.push_back(c);
    }
  }
  return out;
}

KruskalWallisResult kruskal_wallis(std::span<const std::vector<double>> groups) {
  validate_groups(groups);
  const std::size_t k = groups.size();

  // Pool all observations, remembering group membership.
  struct Tagged {
    double value;
    std::size_t group;
  };
  std::vector<Tagged> pooled;
  for (std::size_t g = 0; g < k; ++g) {
    for (const double v : groups[g]) pooled.push_back({v, g});
  }
  const std::size_t n = pooled.size();
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& a, const Tagged& b) { return a.value < b.value; });

  // Average ranks with tie correction term.
  std::vector<double> rank_sum(k, 0.0);
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && pooled[j + 1].value == pooled[i].value) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) tie_correction += t * t * t - t;
    for (std::size_t m = i; m <= j; ++m) rank_sum[pooled[m].group] += avg_rank;
    i = j + 1;
  }

  const double dn = static_cast<double>(n);
  double h = 0.0;
  for (std::size_t g = 0; g < k; ++g) {
    const double ng = static_cast<double>(groups[g].size());
    h += rank_sum[g] * rank_sum[g] / ng;
  }
  h = 12.0 / (dn * (dn + 1.0)) * h - 3.0 * (dn + 1.0);
  const double correction = 1.0 - tie_correction / (dn * dn * dn - dn);
  if (correction > 0.0) h /= correction;

  KruskalWallisResult r;
  r.h_statistic = h;
  r.df = static_cast<double>(k - 1);
  r.p_value = 1.0 - chi_squared_cdf(h, r.df);
  return r;
}

}  // namespace tl::analysis
