#pragma once

// Small dense linear algebra backing the regression models.
// Row-major storage; sizes are regression-scale (p ~ 10s of covariates),
// so simple O(p^3) factorizations are the right tool.

#include <cstddef>
#include <vector>

namespace tl::analysis {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;

  /// X'X for a tall design matrix, computed without materializing X'.
  Matrix gram() const;

  /// X'y for a tall design matrix and vector y (y.size() == rows()).
  std::vector<double> transpose_times(const std::vector<double>& y) const;

  const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization of a symmetric positive-definite matrix.
/// Throws std::runtime_error if the matrix is not SPD (after a tiny jitter
/// retry, which covers near-singular design matrices from sparse factors).
class Cholesky {
 public:
  explicit Cholesky(const Matrix& spd);

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Inverse of A (used for coefficient covariance).
  Matrix inverse() const;

 private:
  Matrix l_;  // lower triangular factor
};

}  // namespace tl::analysis
