#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tl::analysis {

Histogram::Histogram(std::vector<double> edges, bool log_scale)
    : edges_(std::move(edges)), log_scale_(log_scale) {
  // Fewer than 2 edges used to underflow `edges_.size() - 1` below and
  // resize bins_ to SIZE_MAX. Validate instead, and insist on strictly
  // increasing edges (the !(a < b) form also rejects NaN edges).
  if (edges_.size() < 2) {
    throw std::invalid_argument{"Histogram: need at least 2 bin edges"};
  }
  for (std::size_t i = 0; i + 1 < edges_.size(); ++i) {
    if (!(edges_[i] < edges_[i + 1])) {
      throw std::invalid_argument{"Histogram: edges must be strictly increasing"};
    }
  }
  bins_.resize(edges_.size() - 1);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    bins_[i].lo = edges_[i];
    bins_[i].hi = edges_[i + 1];
  }
}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument{"Histogram::linear: bad range"};
  std::vector<double> edges(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(bins);
  }
  return Histogram{std::move(edges), false};
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  if (bins == 0 || lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument{"Histogram::logarithmic: bad range"};
  }
  std::vector<double> edges(bins + 1);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(bins));
  }
  return Histogram{std::move(edges), true};
}

std::size_t Histogram::bin_index(double x) const noexcept {
  // NaN compares false against every guard below, so it used to slip into
  // std::upper_bound (every comparison false -> begin()+1) and count as a
  // bin-0 sample. It belongs in no bin.
  if (std::isnan(x)) return npos;
  if (x < edges_.front()) return npos;
  if (x > edges_.back()) return npos;
  if (x == edges_.back()) return bins_.size() - 1;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

void Histogram::add(double x) noexcept {
  const std::size_t idx = bin_index(x);
  if (idx == npos) {
    if (std::isnan(x)) {
      ++nan_;
    } else if (x < edges_.front()) {
      ++underflow_;
    } else {
      ++overflow_;
    }
    return;
  }
  ++bins_[idx].count;
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

std::string Histogram::label(std::size_t bin) const {
  if (bin >= bins_.size()) throw std::out_of_range{"Histogram::label"};
  char buf[80];
  if (log_scale_) {
    std::snprintf(buf, sizeof buf, "[%.3g, %.3g)", bins_[bin].lo, bins_[bin].hi);
  } else {
    std::snprintf(buf, sizeof buf, "[%.2f, %.2f)", bins_[bin].lo, bins_[bin].hi);
  }
  return buf;
}

std::vector<std::vector<double>> group_by_bins(const Histogram& h,
                                               std::span<const double> x,
                                               std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument{"group_by_bins: length mismatch"};
  std::vector<std::vector<double>> groups(h.bins().size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t bin = h.bin_index(x[i]);
    if (bin != Histogram::npos) groups[bin].push_back(y[i]);
  }
  return groups;
}

}  // namespace tl::analysis
