#pragma once

// Association measures: Pearson (Fig. 6 density correlation 0.97, Fig. 7
// HO/active-sector correlation 0.9), Spearman, and the R^2 of a simple
// linear fit (Fig. 5 census-vs-inferred population, R^2 = 0.92).

#include <span>

namespace tl::analysis {

/// Pearson correlation coefficient; throws if inputs differ in length or
/// have fewer than two points or zero variance.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> x, std::span<const double> y);

/// Simple linear regression y = a + b x.
struct SimpleFit {
  double intercept = 0;
  double slope = 0;
  double r_squared = 0;
};
SimpleFit simple_linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace tl::analysis
