#include "analysis/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::analysis {

double quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument{"quantile: empty input"};
  if (p < 0.0 || p > 1.0) throw std::invalid_argument{"quantile: p outside [0,1]"};
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> values, double p) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, p);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument{"mean: empty input"};
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return ss / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

SixNumberSummary summarize(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument{"summarize: empty input"};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  SixNumberSummary s;
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q3 = quantile_sorted(sorted, 0.75);
  s.mean = mean(values);
  return s;
}

BoxplotStats boxplot(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument{"boxplot: empty input"};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  BoxplotStats b;
  b.n = sorted.size();
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.5);
  b.q3 = quantile_sorted(sorted, 0.75);
  b.mean = mean(values);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = sorted.front();
  b.whisker_hi = sorted.back();
  for (const double v : sorted) {
    if (v >= lo_fence) {
      b.whisker_lo = v;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  for (const double v : sorted) {
    if (v < lo_fence || v > hi_fence) ++b.outliers;
  }
  return b;
}

std::vector<double> log_transform_positive(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) {
    if (v > 0.0) out.push_back(std::log(v));
  }
  return out;
}

}  // namespace tl::analysis
