#pragma once

// Binning utilities for the figure reproductions: linear bins (Fig. 7's
// 30-minute series) and logarithmic bins (Fig. 13's mobility-metric axes).

#include <span>
#include <string>
#include <vector>

namespace tl::analysis {

struct Bin {
  double lo = 0;      // inclusive
  double hi = 0;      // exclusive (last bin inclusive)
  std::size_t count = 0;
};

class Histogram {
 public:
  /// Custom bins from explicit edges (bins+1 of them). Throws
  /// std::invalid_argument on fewer than 2 edges or edges that are not
  /// strictly increasing (which also rejects NaN edges) — the obs layer
  /// builds its latency histograms through this and relies on the check.
  explicit Histogram(std::vector<double> edges, bool log_scale = false);

  /// Uniform bins over [lo, hi).
  static Histogram linear(double lo, double hi, std::size_t bins);
  /// Log-spaced bins over [lo, hi), lo > 0.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  /// Bin index for x, or npos if outside range or NaN. (NaN used to fall
  /// through every range guard into std::upper_bound — all comparisons
  /// false — and silently land in bin 0.)
  std::size_t bin_index(double x) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const std::vector<Bin>& bins() const noexcept { return bins_; }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  /// NaN samples seen by add(); excluded from every bin and from total().
  std::size_t nan() const noexcept { return nan_; }

  /// "[1e2, 1e3)"-style label of a bin.
  std::string label(std::size_t bin) const;

 private:
  std::vector<double> edges_;  // bins_.size() + 1 strictly increasing edges
  std::vector<Bin> bins_;
  bool log_scale_ = false;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
};

/// Groups values of `y` by the bin of the paired `x` (same length); returns
/// one vector of y-values per bin. Used for "HOF rate vs binned mobility".
std::vector<std::vector<double>> group_by_bins(const Histogram& h,
                                               std::span<const double> x,
                                               std::span<const double> y);

}  // namespace tl::analysis
