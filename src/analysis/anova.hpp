#pragma once

// One-way analysis of variance with effect size and Tukey HSD post-hoc
// comparisons, plus the Kruskal–Wallis rank test — the §6.3/Appendix-B
// toolchain the paper uses to establish the HO-type effect on HOF rates.

#include <span>
#include <string>
#include <vector>

namespace tl::analysis {

struct AnovaResult {
  double f_statistic = 0;
  double df_between = 0;
  double df_within = 0;
  double p_value = 0;
  double eta_squared = 0;  // SS_between / SS_total
  double ss_between = 0;
  double ss_within = 0;
};

/// One-way ANOVA over k groups. Throws if fewer than 2 groups or any group
/// is empty, or if total sample size <= number of groups.
AnovaResult one_way_anova(std::span<const std::vector<double>> groups);

struct TukeyComparison {
  std::size_t group_a = 0;
  std::size_t group_b = 0;
  double mean_difference = 0;
  double q_statistic = 0;
  double p_value = 0;  // via studentized range with infinite df
};

/// Tukey-Kramer HSD pairwise comparisons (unequal group sizes allowed).
/// Uses the infinite-df studentized range distribution — appropriate here,
/// where residual dfs are in the millions.
std::vector<TukeyComparison> tukey_hsd(std::span<const std::vector<double>> groups);

struct KruskalWallisResult {
  double h_statistic = 0;  // tie-corrected
  double df = 0;
  double p_value = 0;
};

/// Kruskal–Wallis one-way rank test with tie correction.
KruskalWallisResult kruskal_wallis(std::span<const std::vector<double>> groups);

}  // namespace tl::analysis
