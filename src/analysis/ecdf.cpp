#include "analysis/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::analysis {

Ecdf::Ecdf(std::span<const double> samples) : sorted_(samples.begin(), samples.end()) {
  if (sorted_.empty()) throw std::invalid_argument{"Ecdf: empty input"};
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double p) const {
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument{"Ecdf::inverse: p outside (0,1]"};
  // Contract: the smallest sample v with F(v) >= p, i.e. the smallest index
  // i with (i+1)/n >= p — the exact predicate at() evaluates. Deriving i via
  // ceil(p*n)-1 drifts off by one when p*n rounds across an integer (large
  // n, boundary p like 1/n or k/n), so start from the float estimate and
  // correct against the predicate itself.
  const double n = static_cast<double>(sorted_.size());
  const auto satisfies = [&](std::size_t i) {
    return static_cast<double>(i + 1) / n >= p;
  };
  std::size_t idx = std::min(static_cast<std::size_t>(p * n), sorted_.size() - 1);
  while (idx > 0 && satisfies(idx - 1)) --idx;
  while (!satisfies(idx)) ++idx;  // terminates: satisfies(n-1) is 1.0 >= p
  return sorted_[idx];
}

std::vector<Ecdf::CurvePoint> Ecdf::curve(std::size_t points) const {
  if (points < 2) throw std::invalid_argument{"Ecdf::curve: need at least 2 points"};
  std::vector<CurvePoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = static_cast<double>(i + 1) / static_cast<double>(points);
    const double x = inverse(p);
    out.push_back({x, at(x)});
  }
  return out;
}

}  // namespace tl::analysis
