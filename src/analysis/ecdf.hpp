#pragma once

// Empirical cumulative distribution functions (Figs. 8, 10, 13, 16).

#include <span>
#include <vector>

namespace tl::analysis {

class Ecdf {
 public:
  /// Builds from unsorted samples. Throws on empty input.
  explicit Ecdf(std::span<const double> samples);

  /// F(x) = fraction of samples <= x.
  double at(double x) const noexcept;

  /// Inverse: smallest sample value v with F(v) >= p, p in (0, 1].
  double inverse(double p) const;

  std::size_t size() const noexcept { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

  /// Evaluates F at `points` evenly spaced sample values — a compact curve
  /// for printing ("series" output of the figure benches).
  struct CurvePoint {
    double x;
    double f;
  };
  std::vector<CurvePoint> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace tl::analysis
