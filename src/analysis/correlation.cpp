#include "analysis/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tl::analysis {

namespace {

void check_pair(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument{"correlation: length mismatch"};
  if (x.size() < 2) throw std::invalid_argument{"correlation: need at least 2 points"};
}

std::vector<double> ranks_with_ties(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return v[a] < v[b];
  });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  check_pair(x, y);
  const std::size_t n = x.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw std::invalid_argument{"pearson: zero variance input"};
  }
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  check_pair(x, y);
  const auto rx = ranks_with_ties(x);
  const auto ry = ranks_with_ties(y);
  return pearson(rx, ry);
}

SimpleFit simple_linear_fit(std::span<const double> x, std::span<const double> y) {
  check_pair(x, y);
  const std::size_t n = x.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument{"simple_linear_fit: constant x"};
  SimpleFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace tl::analysis
