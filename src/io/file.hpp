#pragma once

// Minimal storage abstraction for the durable pipeline.
//
// Everything that must survive a crash (the record log, checkpoint files)
// writes through this interface instead of raw iostreams, for two reasons:
// (1) durability needs fsync, which iostreams cannot express, and (2) the
// chaos harness needs a seam where seeded I/O faults — short writes, EIO,
// failed fsyncs, hard crash points — can be injected without touching the
// code under test (see io/faulty_file.hpp). The production implementation
// (StdioFileSystem) is a thin veneer over stdio + POSIX fsync.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tl::io {

/// A storage operation failed (EIO, ENOSPC, failed fsync, ...). Durable
/// writers treat any IoError as "this commit did not happen" and rely on
/// recovery-on-reopen to discard the partial state.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by the fault-injection layer at a scheduled hard crash point:
/// models the process dying mid-I/O. Deliberately NOT derived from IoError —
/// error-handling code that catches IoError must not be able to swallow a
/// simulated process death.
class SimulatedCrash : public std::exception {
 public:
  const char* what() const noexcept override {
    return "simulated process crash (injected)";
  }
};

enum class OpenMode : std::uint8_t {
  kRead,    // existing file, read-only
  kTruncate,  // create or truncate, write-only
  kAppend,  // create if absent, writes go to the end
};

/// One open file. Writers are append-oriented: the durable log never
/// overwrites in place (recovery truncates via the FileSystem instead).
class File {
 public:
  virtual ~File() = default;

  /// Appends `size` bytes; returns the number actually written. A short
  /// count models ENOSPC-style partial writes — callers must treat it as a
  /// failed durable write. Throws IoError on hard failure.
  virtual std::size_t write(const void* data, std::size_t size) = 0;

  /// Reads up to `size` bytes from the current position; returns the number
  /// read (0 at EOF). Throws IoError on hard failure.
  virtual std::size_t read(void* data, std::size_t size) = 0;

  /// Repositions the read cursor (read-mode files only).
  virtual void seek(std::uint64_t offset) = 0;

  /// Pushes user-space buffers to the OS. Throws IoError.
  virtual void flush() = 0;

  /// Durability barrier: flush + fsync. Data written before a successful
  /// sync() must survive a crash; data written after may not. Throws IoError.
  virtual void sync() = 0;

  /// Current size in bytes.
  virtual std::uint64_t size() = 0;

  /// Idempotent close; flushes. Errors on close are swallowed (the durable
  /// protocol only trusts data behind an explicit successful sync()).
  virtual void close() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Throws IoError if the file cannot be opened in `mode`.
  virtual std::unique_ptr<File> open(const std::string& path, OpenMode mode) = 0;

  virtual bool exists(const std::string& path) = 0;
  virtual std::uint64_t file_size(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics). The
  /// cornerstone of the write-temp-then-rename checkpoint protocol.
  virtual void rename(const std::string& from, const std::string& to) = 0;

  virtual void remove(const std::string& path) = 0;

  /// Truncates a (closed) file to `size` bytes — how recovery discards a
  /// torn tail.
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;

  /// Creates `path` and parents as needed; no-op if it already exists.
  virtual void create_directories(const std::string& path) = 0;

  /// Names (not paths) of regular files directly under `dir` that start
  /// with `prefix`, sorted ascending. Empty if `dir` does not exist.
  virtual std::vector<std::string> list(const std::string& dir,
                                        const std::string& prefix) = 0;
};

/// The real filesystem: stdio streams + POSIX fsync + std::filesystem
/// metadata operations. Stateless; the singleton is shared freely.
class StdioFileSystem final : public FileSystem {
 public:
  std::unique_ptr<File> open(const std::string& path, OpenMode mode) override;
  bool exists(const std::string& path) override;
  std::uint64_t file_size(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void create_directories(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir,
                                const std::string& prefix) override;

  /// Process-wide instance.
  static StdioFileSystem& instance();
};

}  // namespace tl::io
