#pragma once

// Seeded I/O fault injection: the PR-1 fault-schedule philosophy pushed down
// into the storage layer.
//
// FaultyFileSystem decorates a real FileSystem and injects faults against a
// deterministic plan keyed to a global *mutating-operation counter* (every
// write/flush/sync on any file advances it). Four fault kinds:
//
//  - kShortWrite:  a write persists only a prefix and returns the short
//                  count (ENOSPC-style torn write, process survives).
//  - kIoError:     the operation throws IoError (EIO; nothing persisted).
//  - kSyncFailure: sync() throws IoError; the data MAY have reached disk but
//                  the caller must not trust it (fsync contract).
//  - kCrash:       process death. The current write persists only a seeded
//                  prefix, every open file is rolled back to a seeded point
//                  no earlier than its last successful sync (un-synced bytes
//                  are fair game, exactly like a real kernel), the filesystem
//                  goes dead, and SimulatedCrash is thrown. All further
//                  operations on the dead filesystem throw SimulatedCrash.
//
// The chaos harness wraps the durable pipeline in one of these, lets it die
// at a scheduled point, then re-opens the *real* filesystem to verify that
// recovery restores a consistent prefix of the record stream.
//
// Read-side faults live on a SEPARATE plan with its own op counter (every
// read() on any file advances it), so read fault schedules compose with the
// write-side plans without perturbing their time base:
//
//  - kBitRot:    the read succeeds but one seeded bit of the returned buffer
//                is flipped (transient media error / bad cable; the file on
//                disk is untouched).
//  - kReadError: the read throws IoError (EIO on the read path).
//
// Persistent latent corruption — the storage-integrity scrubber's actual
// prey — is injected with inject_bit_rot(), which flips bits in the file
// itself through any FileSystem without consuming fault-plan ops.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/file.hpp"
#include "util/rng.hpp"

namespace tl::io {

enum class IoFaultKind : std::uint8_t {
  kShortWrite = 0,
  kIoError,
  kSyncFailure,
  kCrash,
  kBitRot,     ///< read-plan only: flip one seeded bit in the returned bytes
  kReadError,  ///< read-plan only: the read throws IoError
};

const char* to_string(IoFaultKind kind) noexcept;

/// One scheduled fault: fires when the filesystem's mutating-op counter
/// reaches `op_index` (ops are numbered from 0).
struct IoFault {
  std::uint64_t op_index = 0;
  IoFaultKind kind = IoFaultKind::kCrash;
};

/// A deterministic fault schedule. Build explicitly with add(), or derive a
/// seeded chaos plan with `chaos()`.
class IoFaultPlan {
 public:
  IoFaultPlan() = default;

  void add(std::uint64_t op_index, IoFaultKind kind) {
    faults_.push_back({op_index, kind});
  }

  /// Seeded plan for the chaos harness: exactly one crash at a uniformly
  /// drawn op in [0, horizon_ops), preceded by transient faults (short
  /// writes / EIO / failed fsyncs) at the given per-op rate. The same
  /// (seed, horizon) always yields the same plan.
  static IoFaultPlan chaos(std::uint64_t seed, std::uint64_t horizon_ops,
                           double transient_rate = 0.0);

  /// Seeded READ-side plan: kBitRot / kReadError faults at the given per-op
  /// rate over [0, horizon_ops) of the read-op counter; no crash. The same
  /// (seed, horizon, rate) always yields the same plan.
  static IoFaultPlan read_chaos(std::uint64_t seed, std::uint64_t horizon_ops,
                                double fault_rate);

  /// The fault scheduled at `op_index`, or nullptr.
  const IoFault* at(std::uint64_t op_index) const noexcept;

  bool empty() const noexcept { return faults_.empty(); }
  const std::vector<IoFault>& faults() const noexcept { return faults_; }

 private:
  std::vector<IoFault> faults_;
};

class FaultyFileSystem final : public FileSystem {
 public:
  /// Decorates `inner` (borrowed; must outlive this object). `seed` drives
  /// the torn-write prefix lengths and rollback points.
  FaultyFileSystem(FileSystem& inner, IoFaultPlan plan, std::uint64_t seed = 0);
  ~FaultyFileSystem() override;

  std::unique_ptr<File> open(const std::string& path, OpenMode mode) override;
  bool exists(const std::string& path) override;
  std::uint64_t file_size(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void create_directories(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir,
                                const std::string& prefix) override;

  /// Disk-full mode: while set, every write() persists nothing and returns
  /// 0 (ENOSPC as a sustained condition, not a one-shot fault). Unlike the
  /// plan's kShortWrite, disk-full writes do NOT consume plan ops — the
  /// plan's time base stays aligned with the writes that would exist
  /// without the outage, so clearing it resumes the schedule unchanged.
  void set_disk_full(bool full) noexcept;
  bool disk_full() const noexcept;

  /// Installs (or replaces) the read-side fault plan. Read faults are keyed
  /// to a dedicated read-op counter so they never shift the mutating-op time
  /// base of the write plan. kBitRot flips one seeded bit in the bytes a
  /// read returns; kReadError / kIoError throw; kCrash kills the filesystem.
  void set_read_fault_plan(IoFaultPlan plan) noexcept;

  /// Mutating operations performed so far (the fault-plan time base).
  std::uint64_t ops() const noexcept;
  /// Read operations performed so far (the read-fault-plan time base).
  std::uint64_t read_ops() const noexcept;
  /// True once a kCrash fault has fired; every subsequent operation throws
  /// SimulatedCrash.
  bool dead() const noexcept;
  /// Faults that have fired so far, in order.
  const std::vector<IoFault>& fired() const noexcept;

  /// Shared fault-injection state (opaque; public only so the decorated
  /// file handles defined in the implementation can reach it).
  struct State;

 private:
  std::shared_ptr<State> state_;
};

/// Persistent latent corruption: XORs `mask` into the byte at `offset` of
/// the file at `path`, in place, through `fs` (read-modify-write of the
/// whole file plus sync — the scrub chaos harness only rots small segment
/// files). `mask` must be non-zero and `offset` in range; throws IoError
/// otherwise. Unlike the read plan's kBitRot this damages the bytes on
/// disk, exactly like decayed media, so every later reader sees it until
/// read-repair restores the segment.
void inject_bit_rot(FileSystem& fs, const std::string& path,
                    std::uint64_t offset, std::uint8_t mask);

}  // namespace tl::io
