#include "io/file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace tl::io {
namespace {

namespace stdfs = std::filesystem;

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw IoError{op + " failed on " + path + ": " + std::strerror(errno)};
}

class StdioFile final : public File {
 public:
  StdioFile(std::FILE* f, std::string path) : f_(f), path_(std::move(path)) {}
  ~StdioFile() override { close(); }

  std::size_t write(const void* data, std::size_t size) override {
    const std::size_t n = std::fwrite(data, 1, size, f_);
    if (n < size && std::ferror(f_)) throw_errno("write", path_);
    return n;
  }

  std::size_t read(void* data, std::size_t size) override {
    const std::size_t n = std::fread(data, 1, size, f_);
    if (n < size && std::ferror(f_)) throw_errno("read", path_);
    return n;
  }

  void seek(std::uint64_t offset) override {
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      throw_errno("seek", path_);
    }
  }

  void flush() override {
    if (std::fflush(f_) != 0) throw_errno("flush", path_);
  }

  void sync() override {
    flush();
#ifdef _WIN32
    if (_commit(_fileno(f_)) != 0) throw_errno("fsync", path_);
#else
    if (::fsync(fileno(f_)) != 0) throw_errno("fsync", path_);
#endif
  }

  std::uint64_t size() override {
    const long pos = std::ftell(f_);
    if (pos < 0) throw_errno("ftell", path_);
    if (std::fseek(f_, 0, SEEK_END) != 0) throw_errno("seek", path_);
    const long end = std::ftell(f_);
    if (end < 0) throw_errno("ftell", path_);
    if (std::fseek(f_, pos, SEEK_SET) != 0) throw_errno("seek", path_);
    return static_cast<std::uint64_t>(end);
  }

  void close() override {
    if (f_ == nullptr) return;
    std::fclose(f_);  // close errors intentionally swallowed; see File::close
    f_ = nullptr;
  }

 private:
  std::FILE* f_;
  std::string path_;
};

const char* mode_string(OpenMode mode) noexcept {
  switch (mode) {
    case OpenMode::kRead: return "rb";
    case OpenMode::kTruncate: return "wb";
    case OpenMode::kAppend: return "ab";
  }
  return "rb";
}

}  // namespace

std::unique_ptr<File> StdioFileSystem::open(const std::string& path, OpenMode mode) {
  std::FILE* f = std::fopen(path.c_str(), mode_string(mode));
  if (f == nullptr) throw_errno("open", path);
  return std::make_unique<StdioFile>(f, path);
}

bool StdioFileSystem::exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

std::uint64_t StdioFileSystem::file_size(const std::string& path) {
  std::error_code ec;
  const auto n = stdfs::file_size(path, ec);
  if (ec) throw IoError{"file_size failed on " + path + ": " + ec.message()};
  return static_cast<std::uint64_t>(n);
}

void StdioFileSystem::rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(from, to, ec);
  if (ec) throw IoError{"rename " + from + " -> " + to + " failed: " + ec.message()};
}

void StdioFileSystem::remove(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) throw IoError{"remove failed on " + path + ": " + ec.message()};
}

void StdioFileSystem::truncate(const std::string& path, std::uint64_t size) {
  std::error_code ec;
  stdfs::resize_file(path, size, ec);
  if (ec) throw IoError{"truncate failed on " + path + ": " + ec.message()};
}

void StdioFileSystem::create_directories(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) throw IoError{"create_directories failed on " + path + ": " + ec.message()};
}

std::vector<std::string> StdioFileSystem::list(const std::string& dir,
                                               const std::string& prefix) {
  std::vector<std::string> names;
  std::error_code ec;
  if (!stdfs::is_directory(dir, ec)) return names;
  for (const auto& entry : stdfs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

StdioFileSystem& StdioFileSystem::instance() {
  static StdioFileSystem fs;
  return fs;
}

}  // namespace tl::io
