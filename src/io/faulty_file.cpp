#include "io/faulty_file.hpp"

#include <algorithm>
#include <atomic>

namespace tl::io {

const char* to_string(IoFaultKind kind) noexcept {
  switch (kind) {
    case IoFaultKind::kShortWrite: return "short write";
    case IoFaultKind::kIoError: return "io error";
    case IoFaultKind::kSyncFailure: return "sync failure";
    case IoFaultKind::kCrash: return "crash";
    case IoFaultKind::kBitRot: return "bit rot";
    case IoFaultKind::kReadError: return "read error";
  }
  return "?";
}

IoFaultPlan IoFaultPlan::chaos(std::uint64_t seed, std::uint64_t horizon_ops,
                               double transient_rate) {
  IoFaultPlan plan;
  if (horizon_ops == 0) return plan;
  util::Rng rng = util::Rng::derive(seed, 0x10fa017ULL);
  const std::uint64_t crash_op = rng.below(horizon_ops);
  for (std::uint64_t op = 0; op < crash_op; ++op) {
    if (transient_rate > 0.0 && rng.chance(transient_rate)) {
      static constexpr IoFaultKind kTransients[3] = {
          IoFaultKind::kShortWrite, IoFaultKind::kIoError, IoFaultKind::kSyncFailure};
      plan.add(op, kTransients[rng.below(3)]);
    }
  }
  plan.add(crash_op, IoFaultKind::kCrash);
  return plan;
}

IoFaultPlan IoFaultPlan::read_chaos(std::uint64_t seed, std::uint64_t horizon_ops,
                                    double fault_rate) {
  IoFaultPlan plan;
  if (horizon_ops == 0 || fault_rate <= 0.0) return plan;
  util::Rng rng = util::Rng::derive(seed, 0xb17507ULL);
  for (std::uint64_t op = 0; op < horizon_ops; ++op) {
    if (rng.chance(fault_rate)) {
      plan.add(op, rng.below(2) == 0 ? IoFaultKind::kBitRot
                                     : IoFaultKind::kReadError);
    }
  }
  return plan;
}

const IoFault* IoFaultPlan::at(std::uint64_t op_index) const noexcept {
  // Plans are built in ascending op order; binary search keeps the per-op
  // cost negligible even for dense transient schedules.
  const auto it = std::lower_bound(
      faults_.begin(), faults_.end(), op_index,
      [](const IoFault& f, std::uint64_t op) { return f.op_index < op; });
  if (it == faults_.end() || it->op_index != op_index) return nullptr;
  return &*it;
}

namespace {
class FaultyFile;
}  // namespace

struct FaultyFileSystem::State {
  FileSystem& inner;
  IoFaultPlan plan;
  IoFaultPlan read_plan;
  util::Rng rng;
  std::uint64_t ops = 0;
  std::uint64_t read_ops = 0;
  bool dead = false;
  std::atomic<bool> disk_full{false};
  std::vector<IoFault> fired;
  std::vector<FaultyFile*> open_files;

  State(FileSystem& fs, IoFaultPlan p, std::uint64_t seed)
      : inner(fs), plan(std::move(p)), rng(util::Rng::derive(seed, 0xc4a5ULL)) {}

  void ensure_alive() const {
    if (dead) throw SimulatedCrash{};
  }

  /// Consumes one mutating-op tick; returns the fault scheduled for it.
  const IoFault* tick() {
    const IoFault* fault = plan.at(ops++);
    if (fault != nullptr) fired.push_back(*fault);
    return fault;
  }

  /// Consumes one read-op tick against the read plan.
  const IoFault* read_tick() {
    const IoFault* fault = read_plan.at(read_ops++);
    if (fault != nullptr) fired.push_back(*fault);
    return fault;
  }

  [[noreturn]] void crash();
};

namespace {

class FaultyFile final : public File {
 public:
  FaultyFile(std::shared_ptr<FaultyFileSystem::State> state, std::unique_ptr<File> inner,
             std::string path, bool writable)
      : state_(std::move(state)),
        inner_(std::move(inner)),
        path_(std::move(path)),
        writable_(writable) {
    if (writable_) {
      written_size_ = inner_->size();
      synced_size_ = written_size_;
    }
    state_->open_files.push_back(this);
  }

  ~FaultyFile() override {
    auto& files = state_->open_files;
    files.erase(std::remove(files.begin(), files.end(), this), files.end());
  }

  std::size_t write(const void* data, std::size_t size) override {
    state_->ensure_alive();
    // Checked before tick(): a full disk rejects the write without
    // consuming a plan op (see set_disk_full).
    if (state_->disk_full.load(std::memory_order_relaxed)) return 0;
    const IoFault* fault = state_->tick();
    if (fault == nullptr) {
      const std::size_t n = inner_->write(data, size);
      written_size_ += n;
      return n;
    }
    switch (fault->kind) {
      case IoFaultKind::kShortWrite: {
        const std::size_t keep =
            size == 0 ? 0 : static_cast<std::size_t>(state_->rng.below(size));
        written_size_ += inner_->write(data, keep);
        return keep;
      }
      case IoFaultKind::kIoError:
      case IoFaultKind::kSyncFailure:
        throw IoError{"injected EIO on write to " + path_};
      case IoFaultKind::kCrash: {
        // The dying write lands a seeded prefix, like a real torn page.
        const std::size_t keep =
            size == 0 ? 0 : static_cast<std::size_t>(state_->rng.below(size + 1));
        written_size_ += inner_->write(data, keep);
        state_->crash();
      }
      case IoFaultKind::kBitRot:
      case IoFaultKind::kReadError: {
        // Read-side kinds are inert in a write plan: the write succeeds.
        const std::size_t n = inner_->write(data, size);
        written_size_ += n;
        return n;
      }
    }
    return 0;  // unreachable
  }

  std::size_t read(void* data, std::size_t size) override {
    state_->ensure_alive();
    const IoFault* fault = state_->read_tick();
    if (fault == nullptr) return inner_->read(data, size);
    switch (fault->kind) {
      case IoFaultKind::kBitRot: {
        // The bytes on disk are fine; what came off the wire is not.
        const std::size_t n = inner_->read(data, size);
        if (n > 0) {
          const std::uint64_t bit = state_->rng.below(n * 8);
          static_cast<std::uint8_t*>(data)[bit / 8] ^=
              static_cast<std::uint8_t>(1u << (bit % 8));
        }
        return n;
      }
      case IoFaultKind::kCrash:
        state_->crash();
      default:
        throw IoError{"injected " + std::string{to_string(fault->kind)} +
                      " on read of " + path_};
    }
  }

  void seek(std::uint64_t offset) override {
    state_->ensure_alive();
    inner_->seek(offset);
  }

  void flush() override {
    state_->ensure_alive();
    const IoFault* fault = state_->tick();
    if (fault != nullptr) {
      if (fault->kind == IoFaultKind::kCrash) state_->crash();
      throw IoError{"injected " + std::string{to_string(fault->kind)} + " on flush of " +
                    path_};
    }
    inner_->flush();
  }

  void sync() override {
    state_->ensure_alive();
    const IoFault* fault = state_->tick();
    if (fault != nullptr) {
      if (fault->kind == IoFaultKind::kCrash) state_->crash();
      // A failed fsync leaves durability unknown: the bytes stay in the
      // inner file (they MAY have hit disk) but synced_size_ is not
      // advanced, so a later crash is free to roll them back.
      throw IoError{"injected " + std::string{to_string(fault->kind)} + " on fsync of " +
                    path_};
    }
    inner_->sync();
    synced_size_ = written_size_;
  }

  std::uint64_t size() override {
    state_->ensure_alive();
    return inner_->size();
  }

  void close() override {
    if (inner_ != nullptr && !state_->dead) inner_->close();
  }

  /// Crash handling: everything past the last successful sync may or may
  /// not have hit the platters; pick a survival point uniformly in that
  /// window, exactly like a kernel dropping dirty pages.
  void roll_back_to_crash_point() {
    if (!writable_ || inner_ == nullptr) return;
    inner_->flush();  // make written_size_ real before truncating under it
    const std::uint64_t window = written_size_ - synced_size_;
    const std::uint64_t survive =
        synced_size_ + (window == 0 ? 0 : state_->rng.below(window + 1));
    inner_->close();
    state_->inner.truncate(path_, survive);
    inner_.reset();
  }

  void abandon() { inner_.reset(); }

 private:
  std::shared_ptr<FaultyFileSystem::State> state_;
  std::unique_ptr<File> inner_;
  std::string path_;
  bool writable_;
  std::uint64_t written_size_ = 0;  // bytes actually forwarded to the inner file
  std::uint64_t synced_size_ = 0;   // written_size_ at the last successful sync()
};

}  // namespace

void FaultyFileSystem::State::crash() {
  dead = true;
  for (FaultyFile* file : open_files) file->roll_back_to_crash_point();
  for (FaultyFile* file : open_files) file->abandon();
  throw SimulatedCrash{};
}

FaultyFileSystem::FaultyFileSystem(FileSystem& inner, IoFaultPlan plan,
                                   std::uint64_t seed)
    : state_(std::make_shared<State>(inner, std::move(plan), seed)) {}

FaultyFileSystem::~FaultyFileSystem() = default;

std::unique_ptr<File> FaultyFileSystem::open(const std::string& path, OpenMode mode) {
  state_->ensure_alive();
  auto inner = state_->inner.open(path, mode);
  return std::make_unique<FaultyFile>(state_, std::move(inner), path,
                                      mode != OpenMode::kRead);
}

bool FaultyFileSystem::exists(const std::string& path) {
  state_->ensure_alive();
  return state_->inner.exists(path);
}

std::uint64_t FaultyFileSystem::file_size(const std::string& path) {
  state_->ensure_alive();
  return state_->inner.file_size(path);
}

void FaultyFileSystem::rename(const std::string& from, const std::string& to) {
  state_->ensure_alive();
  const IoFault* fault = state_->tick();
  if (fault != nullptr) {
    if (fault->kind == IoFaultKind::kCrash) state_->crash();
    throw IoError{"injected " + std::string{to_string(fault->kind)} + " on rename of " +
                  from};
  }
  state_->inner.rename(from, to);
}

void FaultyFileSystem::remove(const std::string& path) {
  state_->ensure_alive();
  const IoFault* fault = state_->tick();
  if (fault != nullptr) {
    if (fault->kind == IoFaultKind::kCrash) state_->crash();
    throw IoError{"injected " + std::string{to_string(fault->kind)} + " on remove of " +
                  path};
  }
  state_->inner.remove(path);
}

void FaultyFileSystem::truncate(const std::string& path, std::uint64_t size) {
  state_->ensure_alive();
  const IoFault* fault = state_->tick();
  if (fault != nullptr) {
    if (fault->kind == IoFaultKind::kCrash) state_->crash();
    throw IoError{"injected " + std::string{to_string(fault->kind)} + " on truncate of " +
                  path};
  }
  state_->inner.truncate(path, size);
}

void FaultyFileSystem::create_directories(const std::string& path) {
  state_->ensure_alive();
  state_->inner.create_directories(path);
}

std::vector<std::string> FaultyFileSystem::list(const std::string& dir,
                                                const std::string& prefix) {
  state_->ensure_alive();
  return state_->inner.list(dir, prefix);
}

void FaultyFileSystem::set_disk_full(bool full) noexcept {
  state_->disk_full.store(full, std::memory_order_relaxed);
}
bool FaultyFileSystem::disk_full() const noexcept {
  return state_->disk_full.load(std::memory_order_relaxed);
}

void FaultyFileSystem::set_read_fault_plan(IoFaultPlan plan) noexcept {
  state_->read_plan = std::move(plan);
}

std::uint64_t FaultyFileSystem::ops() const noexcept { return state_->ops; }
std::uint64_t FaultyFileSystem::read_ops() const noexcept {
  return state_->read_ops;
}
bool FaultyFileSystem::dead() const noexcept { return state_->dead; }
const std::vector<IoFault>& FaultyFileSystem::fired() const noexcept {
  return state_->fired;
}

void inject_bit_rot(FileSystem& fs, const std::string& path,
                    std::uint64_t offset, std::uint8_t mask) {
  if (mask == 0) throw IoError{"inject_bit_rot: zero mask would be a no-op"};
  const std::uint64_t size = fs.file_size(path);
  if (offset >= size) {
    throw IoError{"inject_bit_rot: offset " + std::to_string(offset) +
                  " past end of " + path};
  }
  std::vector<std::uint8_t> bytes(size);
  {
    auto file = fs.open(path, OpenMode::kRead);
    std::size_t have = 0;
    while (have < bytes.size()) {
      const std::size_t n = file->read(bytes.data() + have, bytes.size() - have);
      if (n == 0) throw IoError{"inject_bit_rot: short read of " + path};
      have += n;
    }
  }
  bytes[offset] ^= mask;
  auto file = fs.open(path, OpenMode::kTruncate);
  if (file->write(bytes.data(), bytes.size()) != bytes.size()) {
    throw IoError{"inject_bit_rot: short write of " + path};
  }
  file->sync();
  file->close();
}

}  // namespace tl::io
