#pragma once

// The serve-mode consumer: tails the record WAL as days land, keeps
// StreamAggregates current, and makes its own progress crash-durable.
//
// Protocol (the order is the correctness argument):
//
//  1. poll() runs RecordLog::follow() from the in-memory cursor, streaming
//     newly committed days into the aggregates. follow() advances records
//     and cursor in lockstep per day, so an interruption anywhere leaves
//     both at a day boundary.
//  2. Every checkpoint_every_days sealed days, checkpoint() snapshots
//     (cursor, serialized aggregates) into one file: write to
//     <checkpoint_path>.tmp, CRC32C trailer over the whole image, sync,
//     rename over checkpoint_path. The rename is the commit point; a crash
//     at any earlier step leaves the previous checkpoint intact.
//  3. Only after a checkpoint is durable may retention delete WAL segments
//     strictly behind the *durable* cursor — oldest first, so a crash
//     mid-retention leaves a contiguous chain. The WAL bytes a restart
//     needs (durable cursor -> tail) are therefore always on disk.
//
// Restart = load checkpoint (if any), re-run follow() from the durable
// cursor: days checkpointed are never re-delivered, days after the
// checkpoint are re-delivered into the restored aggregates exactly once.
// The chaos harness (tests/test_serve.cpp) kills this loop at every seeded
// I/O point and asserts the final serialized aggregates are byte-identical
// to a batch oracle's.
//
// All I/O goes through io::FileSystem, so FaultyFileSystem injects faults
// underneath; poll_supervised() wraps a poll in the shared retry taxonomy
// (transient IoError retries with backoff, SimulatedCrash propagates).
//
// Resource governance: when a global govern::MemoryBudget is installed, the
// tailer registers the "serve_aggregates" accountant and installs a
// DegradePolicy on its aggregates. At every day seal it syncs the
// accountant to StreamAggregates::approximate_bytes() (a pure function of
// logical state), ticks the governor's injection clock, and maps the
// hysteretic pressure level onto the degradation ladder
// (Steady -> kExact, Elevated -> kSketchOnly, Critical -> kSampled).
// Because accounted bytes and the clamp plan are pure functions of the
// delivered stream, the degradation history is deterministic — and open()
// re-seeds the governor's tick (from days_sealed) and hysteresis memory
// (from the restored level) so a kill/recover run replays the remainder of
// a pressure plan identically to an uninterrupted one.

#include <cstdint>
#include <string>
#include <vector>

#include "govern/governor.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "serve/stream_aggregates.hpp"
#include "supervise/retry.hpp"
#include "telemetry/record_log.hpp"

namespace tl::serve {

class WalTailer {
 public:
  struct Options {
    std::string wal_directory;
    std::string checkpoint_path;
    /// Rolling report window and sketch resolution (StreamAggregates).
    std::size_t window_days = 28;
    std::size_t sketch_k = 128;
    /// Sketch-sampling modulus at DegradeLevel::kSampled (StreamAggregates).
    std::uint32_t sample_modulus = 8;
    /// Checkpoint after this many newly sealed days (>= 1).
    std::uint64_t checkpoint_every_days = 1;
    /// Delete WAL segments strictly behind the durable cursor. Off by
    /// default: retention is only safe when this tailer is the log's sole
    /// consumer of history.
    bool retention = false;
    /// Days delivered per poll() before reporting kMore, bounding the time
    /// between cancellation checks in a supervised loop.
    std::uint64_t max_days_per_poll = 64;
    /// Mirror chain of the WAL (RecordLog::Options::mirror_directory of the
    /// writer). When set, a torn/corrupt follow triggers a storage-integrity
    /// pass: damaged sealed segments are restored from their mirror replica
    /// (read-repair) before the poll is retried; segments damaged in both
    /// copies are quarantined with certified accounting instead of wedging
    /// the tailer. Retention deletes mirror segments in lockstep with their
    /// primaries. Empty: no redundancy — sealed damage goes straight to
    /// certified quarantine.
    std::string mirror_directory;
    /// Proactive scrub cadence: after this many newly delivered days, run a
    /// detection+repair pass even though nothing failed — latent rot is
    /// found (and repaired from the mirror) before a reader ever trips on
    /// it. 0 disables; the cadence is deterministic in the delivered-day
    /// count, never wall clock.
    std::uint64_t scrub_every_days = 0;
    /// Strict mode: certified data loss (a newly quarantined segment)
    /// throws supervise::DataLossError (-> StatusCode::kDataLoss) instead
    /// of degrading. For consumers that would rather halt than serve a
    /// stream with a hole, however well-accounted.
    bool fail_on_data_loss = false;
  };

  /// `fs` is borrowed and must outlive the tailer.
  WalTailer(io::FileSystem& fs, Options options);

  /// Loads the checkpoint if one exists (its absence means a fresh start).
  /// Throws io::IoError on a checkpoint that fails validation — that file
  /// is produced by an atomic rename, so a torn one is real corruption, and
  /// with retention on, silently starting fresh would lose history.
  /// Removes a stale .tmp from a crashed checkpoint attempt.
  void open();
  bool is_open() const noexcept { return open_; }

  struct PollResult {
    telemetry::TailState state = telemetry::TailState::kClean;
    std::uint64_t days_delivered = 0;
    std::uint64_t records_delivered = 0;
    bool checkpointed = false;
    std::uint64_t segments_retired = 0;
    /// Storage-integrity activity during this poll.
    std::uint64_t scrubs_run = 0;
    std::uint64_t segments_repaired = 0;      ///< restored from a replica
    std::uint64_t segments_quarantined = 0;   ///< newly certified lost
    std::uint64_t records_quarantined = 0;    ///< skipped past this poll
  };

  /// One tail pass: follow + (maybe) checkpoint + (maybe) retention.
  /// kMore means committed days remain beyond max_days_per_poll — call
  /// again. Throws io::IoError on unrecoverable log corruption or when any
  /// step's I/O fails (the next poll retries idempotently).
  PollResult poll();

  /// poll() under run_with_retries: transient failures back off and retry,
  /// permanent ones surface in the report, SimulatedCrash propagates. On
  /// success `result` (if non-null) holds the last attempt's PollResult.
  supervise::RetryReport poll_supervised(const supervise::RetryPolicy& policy,
                                         PollResult* result = nullptr);

  /// Forces a checkpoint of the current state (no-op when nothing sealed
  /// since the last one).
  void checkpoint();

  const telemetry::LogCursor& cursor() const noexcept { return cursor_; }
  /// The cursor the on-disk checkpoint holds (what a restart resumes from).
  const telemetry::LogCursor& durable_cursor() const noexcept {
    return durable_cursor_;
  }
  const StreamAggregates& aggregates() const noexcept { return aggregates_; }
  StreamAggregates::WindowReport report() const { return aggregates_.report(); }
  const Options& options() const noexcept { return options_; }

  /// Certified-loss ledger (persisted in the checkpoint, v2): segments the
  /// reader skips, and the exact day/record accounting of what they held.
  const std::vector<std::uint32_t>& quarantined_segments() const noexcept {
    return quarantined_;
  }
  std::uint64_t records_lost() const noexcept { return records_lost_; }
  std::uint64_t days_lost() const noexcept { return days_lost_; }
  bool loss_accounting_exact() const noexcept { return loss_exact_; }
  int loss_first_day() const noexcept { return loss_first_day_; }
  int loss_last_day() const noexcept { return loss_last_day_; }

  /// Runs a storage-integrity pass now (scrub + read-repair + quarantine),
  /// independent of the cadence. Returns true when it repaired or newly
  /// quarantined anything. Throws supervise::DataLossError on new
  /// quarantine when fail_on_data_loss is set.
  bool scrub_now();

  // --- checkpoint wire format (exposed for tests) ---
  static constexpr char kCheckpointMagic[8] = {'T', 'L', 'S', 'R',
                                               'V', 'C', 'P', '1'};

 private:
  void load_checkpoint(const std::string& path);
  std::uint64_t retire_segments();
  /// One integrity pass; merges repairs/quarantine into the tailer state and
  /// (optionally) the poll result. Returns true when anything changed.
  bool run_integrity(PollResult* result);
  /// Epoch-checked obs handle refresh (open() and poll() boundaries).
  void resolve_obs();
  /// Epoch-checked governor refresh; on a governor swap the accountant is
  /// re-resolved and counted bytes restart from zero against the new slot.
  void resolve_governor();
  /// Installs the aggregates' degrade hook (re-run after any aggregates_
  /// replacement: std::function members do not survive a restore).
  void install_degrade_policy();
  /// The per-seal governor consult: sync accountant, tick, map pressure to
  /// the degradation ladder.
  StreamAggregates::DegradeDecision consult_governor();
  /// Syncs the "serve_aggregates" accountant to approximate_bytes().
  void sync_govern_account();

  io::FileSystem& fs_;
  Options options_;
  bool open_ = false;
  telemetry::LogCursor cursor_;
  telemetry::LogCursor durable_cursor_;
  bool have_checkpoint_ = false;  ///< durable_cursor_ is backed by a file
  std::uint64_t days_since_checkpoint_ = 0;
  std::uint64_t days_since_scrub_ = 0;
  bool ledger_dirty_ = false;  ///< loss ledger changed since last checkpoint
  StreamAggregates aggregates_;

  /// Certified-loss state (checkpoint v2 payload).
  std::vector<std::uint32_t> quarantined_;  // ascending
  std::uint64_t records_lost_ = 0;
  std::uint64_t days_lost_ = 0;
  bool loss_exact_ = true;
  int loss_first_day_ = -1;
  int loss_last_day_ = -1;

  govern::MemoryBudget* governor_ = nullptr;
  govern::Accountant govern_account_;  // "serve_aggregates"
  std::uint64_t govern_epoch_ = UINT64_MAX;
  std::uint64_t accounted_bytes_ = 0;

  std::uint64_t obs_epoch_ = UINT64_MAX;
  obs::Counter obs_polls_;
  obs::Counter obs_days_;
  obs::Counter obs_records_;
  obs::Counter obs_checkpoints_;
  obs::Counter obs_checkpoint_bytes_;
  obs::Counter obs_segments_retired_;
  obs::Gauge obs_cursor_day_;
  obs::Gauge obs_sketch_items_;
};

}  // namespace tl::serve
