#include "serve/stream_aggregates.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace tl::serve {
namespace {

// Little-endian byte helpers, matching the sketch's serialization idiom.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  [[noreturn]] static void corrupt(const std::string& why) {
    throw std::runtime_error{"StreamAggregates::deserialize: " + why};
  }
  void need(std::size_t n) const {
    if (pos + n > bytes.size()) corrupt("truncated input");
  }
  std::uint8_t u8() {
    need(1);
    return bytes[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
};

constexpr char kMagic[4] = {'T', 'L', 'S', 'A'};
constexpr std::uint8_t kVersion = 1;

void put_tally(std::vector<std::uint8_t>& out,
               const StreamAggregates::Tally& t) {
  put_u64(out, t.handovers);
  put_u64(out, t.failures);
}

StreamAggregates::Tally read_tally(Reader& r) {
  StreamAggregates::Tally t;
  t.handovers = r.u64();
  t.failures = r.u64();
  if (t.failures > t.handovers) Reader::corrupt("tally failures > handovers");
  return t;
}

void put_tally_map(std::vector<std::uint8_t>& out,
                   const std::map<std::uint32_t, StreamAggregates::Tally>& m) {
  put_u64(out, m.size());
  for (const auto& [key, tally] : m) {
    put_u32(out, key);
    put_tally(out, tally);
  }
}

std::map<std::uint32_t, StreamAggregates::Tally> read_tally_map(Reader& r) {
  const std::uint64_t size = r.u64();
  // 20 bytes per entry: a size beyond the remaining bytes is garbage.
  if (size > (r.bytes.size() - r.pos) / 20) Reader::corrupt("map size");
  std::map<std::uint32_t, StreamAggregates::Tally> m;
  std::int64_t previous = -1;
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint32_t key = r.u32();
    if (static_cast<std::int64_t>(key) <= previous) {
      Reader::corrupt("map keys not strictly increasing");
    }
    previous = key;
    m.emplace(key, read_tally(r));
  }
  return m;
}

}  // namespace

StreamAggregates::StreamAggregates(Options options)
    : options_(options), open_(options.sketch_k) {
  if (options_.window_days == 0) {
    throw std::invalid_argument{"StreamAggregates: window_days must be >= 1"};
  }
}

void StreamAggregates::consume(const telemetry::HandoverRecord& record) {
  ++total_records_;
  ++open_.handovers;
  const bool failed = !record.success;
  if (failed) {
    ++total_failures_;
    ++open_.failures;
  }
  const auto vendor = static_cast<std::size_t>(record.vendor);
  if (vendor < open_.by_vendor.size()) {
    ++open_.by_vendor[vendor].handovers;
    if (failed) ++open_.by_vendor[vendor].failures;
  }
  const auto target = static_cast<std::size_t>(record.target_rat);
  if (target < open_.by_target.size()) {
    ++open_.by_target[target].handovers;
    if (failed) ++open_.by_target[target].failures;
  }
  Tally& district = open_.by_district[record.district];
  ++district.handovers;
  if (failed) ++district.failures;
  Tally& sector = sectors_[record.source_sector];
  ++sector.handovers;
  if (failed) ++sector.failures;
  // Successful-HO signaling time, like DurationAggregator (failure
  // durations measure the abort path, a different distribution). NaN goes
  // to the sketch's nan tally.
  if (record.success) {
    open_.durations.insert(static_cast<double>(record.duration_ms));
  }
}

void StreamAggregates::on_day_end(int day) {
  if (day <= last_sealed_day_) {
    throw std::logic_error{"StreamAggregates: days must seal in increasing "
                           "order (got " +
                           std::to_string(day) + " after " +
                           std::to_string(last_sealed_day_) + ")"};
  }
  open_.day = day;
  window_.push_back(std::move(open_));
  open_ = DayStats(options_.sketch_k);
  while (window_.size() > options_.window_days) window_.pop_front();
  ++days_sealed_;
  last_sealed_day_ = day;
}

StreamAggregates::WindowReport StreamAggregates::report() const {
  WindowReport report;
  if (window_.empty()) return report;
  report.first_day = window_.front().day;
  report.last_day = window_.back().day;
  report.days = window_.size();
  analysis::QuantileSketch merged(options_.sketch_k);
  for (const DayStats& day : window_) {
    report.handovers += day.handovers;
    report.failures += day.failures;
    for (std::size_t v = 0; v < day.by_vendor.size(); ++v) {
      report.by_vendor[v].handovers += day.by_vendor[v].handovers;
      report.by_vendor[v].failures += day.by_vendor[v].failures;
    }
    for (std::size_t t = 0; t < day.by_target.size(); ++t) {
      report.by_target[t].handovers += day.by_target[t].handovers;
      report.by_target[t].failures += day.by_target[t].failures;
    }
    for (const auto& [district, tally] : day.by_district) {
      Tally& merged_tally = report.by_district[district];
      merged_tally.handovers += tally.handovers;
      merged_tally.failures += tally.failures;
    }
    merged.merge(day.durations);
  }
  report.sketch_count = merged.count();
  if (!merged.empty()) {
    report.p50_ms = merged.quantile(0.50);
    report.p90_ms = merged.quantile(0.90);
    report.p99_ms = merged.quantile(0.99);
    report.quantile_rank_error = merged.quantile_rank_error_bound();
  }
  return report;
}

std::size_t StreamAggregates::stored_sketch_items() const noexcept {
  std::size_t items = open_.durations.stored_items();
  for (const DayStats& day : window_) items += day.durations.stored_items();
  return items;
}

namespace {

void put_day(std::vector<std::uint8_t>& out,
             const StreamAggregates::DayStats& day) {
  put_u32(out, static_cast<std::uint32_t>(day.day));
  put_u64(out, day.handovers);
  put_u64(out, day.failures);
  for (const auto& t : day.by_vendor) put_tally(out, t);
  for (const auto& t : day.by_target) put_tally(out, t);
  put_tally_map(out, day.by_district);
  day.durations.serialize(out);
}

StreamAggregates::DayStats read_day(Reader& r, std::size_t sketch_k) {
  StreamAggregates::DayStats day(sketch_k);
  day.day = static_cast<std::int32_t>(r.u32());
  day.handovers = r.u64();
  day.failures = r.u64();
  if (day.failures > day.handovers) Reader::corrupt("day failures > handovers");
  for (auto& t : day.by_vendor) t = read_tally(r);
  for (auto& t : day.by_target) t = read_tally(r);
  day.by_district = read_tally_map(r);
  day.durations = analysis::QuantileSketch::deserialize(r.bytes, r.pos);
  if (day.durations.k() != sketch_k) Reader::corrupt("sketch k mismatch");
  return day;
}

}  // namespace

void StreamAggregates::serialize(std::vector<std::uint8_t>& out) const {
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  out.push_back(kVersion);
  put_u32(out, static_cast<std::uint32_t>(options_.window_days));
  put_u32(out, static_cast<std::uint32_t>(options_.sketch_k));
  put_u64(out, total_records_);
  put_u64(out, total_failures_);
  put_u64(out, days_sealed_);
  put_u32(out, static_cast<std::uint32_t>(last_sealed_day_));
  put_tally_map(out, sectors_);
  put_u32(out, static_cast<std::uint32_t>(window_.size()));
  for (const DayStats& day : window_) put_day(out, day);
  put_day(out, open_);
}

StreamAggregates StreamAggregates::deserialize(
    std::span<const std::uint8_t> bytes, std::size_t& offset) {
  Reader r{bytes, offset};
  r.need(sizeof kMagic + 1);
  for (char expected : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(expected)) {
      Reader::corrupt("bad magic");
    }
  }
  if (r.u8() != kVersion) Reader::corrupt("unsupported version");
  Options options;
  options.window_days = r.u32();
  options.sketch_k = r.u32();
  if (options.window_days == 0 || options.window_days > (1u << 20)) {
    Reader::corrupt("window_days out of range");
  }
  StreamAggregates aggs(options);  // validates sketch_k via the open sketch
  aggs.total_records_ = r.u64();
  aggs.total_failures_ = r.u64();
  aggs.days_sealed_ = r.u64();
  aggs.last_sealed_day_ = static_cast<std::int32_t>(r.u32());
  if (aggs.total_failures_ > aggs.total_records_) {
    Reader::corrupt("total failures > total records");
  }
  aggs.sectors_ = read_tally_map(r);
  const std::uint32_t ring = r.u32();
  if (ring > options.window_days) Reader::corrupt("ring larger than window");
  int previous_day = -2;
  for (std::uint32_t i = 0; i < ring; ++i) {
    DayStats day = read_day(r, options.sketch_k);
    if (day.day < 0 || day.day <= previous_day) {
      Reader::corrupt("ring days not strictly increasing");
    }
    previous_day = day.day;
    aggs.window_.push_back(std::move(day));
  }
  if (!aggs.window_.empty() &&
      aggs.window_.back().day != aggs.last_sealed_day_) {
    Reader::corrupt("last sealed day disagrees with ring");
  }
  aggs.open_ = read_day(r, options.sketch_k);
  if (aggs.open_.day != -1) Reader::corrupt("open day carries a day index");
  offset = r.pos;
  return aggs;
}

StreamAggregates StreamAggregates::deserialize(
    std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  StreamAggregates aggs = deserialize(bytes, offset);
  if (offset != bytes.size()) {
    throw std::runtime_error{
        "StreamAggregates::deserialize: trailing bytes after state"};
  }
  return aggs;
}

}  // namespace tl::serve
