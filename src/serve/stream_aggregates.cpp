#include "serve/stream_aggregates.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/rng.hpp"

namespace tl::serve {

const char* to_string(DegradeLevel level) noexcept {
  switch (level) {
    case DegradeLevel::kExact: return "exact";
    case DegradeLevel::kSketchOnly: return "sketch-only";
    case DegradeLevel::kSampled: return "sampled";
  }
  return "?";
}

namespace {

// Little-endian byte helpers, matching the sketch's serialization idiom.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  [[noreturn]] static void corrupt(const std::string& why) {
    throw std::runtime_error{"StreamAggregates::deserialize: " + why};
  }
  void need(std::size_t n) const {
    if (pos + n > bytes.size()) corrupt("truncated input");
  }
  std::uint8_t u8() {
    need(1);
    return bytes[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
};

constexpr char kMagic[4] = {'T', 'L', 'S', 'A'};
// v2 added the degradation ladder (per-day level/modulus, event journal).
constexpr std::uint8_t kVersion = 2;

// Salt for the content-keyed sketch-sampling hash. Part of the wire
// contract: certifying a sampled day's quantiles requires recomputing the
// same admitted substream.
constexpr std::uint64_t kSampleSalt = 0x5a3d1e5ab0a5e5ULL;

void put_tally(std::vector<std::uint8_t>& out,
               const StreamAggregates::Tally& t) {
  put_u64(out, t.handovers);
  put_u64(out, t.failures);
}

StreamAggregates::Tally read_tally(Reader& r) {
  StreamAggregates::Tally t;
  t.handovers = r.u64();
  t.failures = r.u64();
  if (t.failures > t.handovers) Reader::corrupt("tally failures > handovers");
  return t;
}

void put_tally_map(std::vector<std::uint8_t>& out,
                   const std::map<std::uint32_t, StreamAggregates::Tally>& m) {
  put_u64(out, m.size());
  for (const auto& [key, tally] : m) {
    put_u32(out, key);
    put_tally(out, tally);
  }
}

std::map<std::uint32_t, StreamAggregates::Tally> read_tally_map(Reader& r) {
  const std::uint64_t size = r.u64();
  // 20 bytes per entry: a size beyond the remaining bytes is garbage.
  if (size > (r.bytes.size() - r.pos) / 20) Reader::corrupt("map size");
  std::map<std::uint32_t, StreamAggregates::Tally> m;
  std::int64_t previous = -1;
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint32_t key = r.u32();
    if (static_cast<std::int64_t>(key) <= previous) {
      Reader::corrupt("map keys not strictly increasing");
    }
    previous = key;
    m.emplace(key, read_tally(r));
  }
  return m;
}

}  // namespace

StreamAggregates::StreamAggregates(Options options)
    : options_(options), open_(options.sketch_k) {
  if (options_.window_days == 0) {
    throw std::invalid_argument{"StreamAggregates: window_days must be >= 1"};
  }
  if (options_.sample_modulus == 0) {
    throw std::invalid_argument{"StreamAggregates: sample_modulus must be >= 1"};
  }
}

bool StreamAggregates::sample_admits(const telemetry::HandoverRecord& record,
                                     std::uint32_t modulus) noexcept {
  if (modulus <= 1) return true;
  return util::derive_seed(kSampleSalt, record.anon_user_id,
                           static_cast<std::uint64_t>(record.timestamp)) %
             modulus ==
         0;
}

void StreamAggregates::consume(const telemetry::HandoverRecord& record) {
  ++total_records_;
  ++open_.handovers;
  const bool failed = !record.success;
  if (failed) {
    ++total_failures_;
    ++open_.failures;
  }
  const auto vendor = static_cast<std::size_t>(record.vendor);
  if (vendor < open_.by_vendor.size()) {
    ++open_.by_vendor[vendor].handovers;
    if (failed) ++open_.by_vendor[vendor].failures;
  }
  const auto target = static_cast<std::size_t>(record.target_rat);
  if (target < open_.by_target.size()) {
    ++open_.by_target[target].handovers;
    if (failed) ++open_.by_target[target].failures;
  }
  // The unbounded-cardinality maps stop accumulating below kExact; the
  // national/vendor/RAT tallies above stay exact at every level.
  if (level_ < DegradeLevel::kSketchOnly) {
    Tally& district = open_.by_district[record.district];
    ++district.handovers;
    if (failed) ++district.failures;
    Tally& sector = sectors_[record.source_sector];
    ++sector.handovers;
    if (failed) ++sector.failures;
  }
  // Successful-HO signaling time, like DurationAggregator (failure
  // durations measure the abort path, a different distribution). NaN goes
  // to the sketch's nan tally. At kSampled, admission is a pure hash of
  // record identity — the declared basis of the day's certified bound.
  if (record.success && (open_.sample_modulus <= 1 ||
                         sample_admits(record, open_.sample_modulus))) {
    open_.durations.insert(static_cast<double>(record.duration_ms));
  }
}

void StreamAggregates::on_day_end(int day) {
  if (day <= last_sealed_day_) {
    throw std::logic_error{"StreamAggregates: days must seal in increasing "
                           "order (got " +
                           std::to_string(day) + " after " +
                           std::to_string(last_sealed_day_) + ")"};
  }
  open_.day = day;
  window_.push_back(std::move(open_));
  open_ = DayStats(options_.sketch_k);
  open_.degrade_level = level_;
  open_.sample_modulus =
      level_ == DegradeLevel::kSampled ? options_.sample_modulus : 1;
  while (window_.size() > options_.window_days) window_.pop_front();
  ++days_sealed_;
  last_sealed_day_ = day;
  // Level changes only here, at seal boundaries: a day is accumulated
  // entirely at one level, so its stamped (level, modulus) is a complete
  // description of how to certify it.
  if (degrade_policy_) apply_degrade(degrade_policy_(day + 1), day + 1);
}

void StreamAggregates::apply_degrade(const DegradeDecision& decision,
                                     int effective_day) {
  if (decision.level == level_) return;
  DegradationEvent event;
  event.effective_day = effective_day;
  event.from = level_;
  event.to = decision.level;
  event.used_bytes = decision.used_bytes;
  event.budget_bytes = decision.budget_bytes;
  event.sample_modulus =
      decision.level == DegradeLevel::kSampled ? options_.sample_modulus : 1;
  if (level_ < DegradeLevel::kSketchOnly &&
      decision.level >= DegradeLevel::kSketchOnly) {
    // First crossing below exact: shed the unbounded-cardinality maps, and
    // record exactly how much detail went — shed, never silently dropped.
    event.shed_district_keys = open_.by_district.size();
    for (DayStats& day : window_) {
      event.shed_district_keys += day.by_district.size();
      day.by_district.clear();
    }
    open_.by_district.clear();
    event.shed_sector_keys = sectors_.size();
    sectors_.clear();
  }
  level_ = decision.level;
  open_.degrade_level = level_;
  open_.sample_modulus = event.sample_modulus;
  if (events_.size() >= kMaxEvents) {
    events_.erase(events_.begin());
    ++events_dropped_;
  }
  events_.push_back(event);
}

StreamAggregates::WindowReport StreamAggregates::report() const {
  WindowReport report;
  if (window_.empty()) return report;
  report.first_day = window_.front().day;
  report.last_day = window_.back().day;
  report.days = window_.size();
  analysis::QuantileSketch merged(options_.sketch_k);
  for (const DayStats& day : window_) {
    report.handovers += day.handovers;
    report.failures += day.failures;
    for (std::size_t v = 0; v < day.by_vendor.size(); ++v) {
      report.by_vendor[v].handovers += day.by_vendor[v].handovers;
      report.by_vendor[v].failures += day.by_vendor[v].failures;
    }
    for (std::size_t t = 0; t < day.by_target.size(); ++t) {
      report.by_target[t].handovers += day.by_target[t].handovers;
      report.by_target[t].failures += day.by_target[t].failures;
    }
    for (const auto& [district, tally] : day.by_district) {
      Tally& merged_tally = report.by_district[district];
      merged_tally.handovers += tally.handovers;
      merged_tally.failures += tally.failures;
    }
    if (day.degrade_level != DegradeLevel::kExact) ++report.degraded_days;
    report.max_sample_modulus =
        std::max(report.max_sample_modulus, day.sample_modulus);
    if (!day.by_district.empty()) ++report.district_detail_days;
    merged.merge(day.durations);
  }
  report.sketch_count = merged.count();
  if (!merged.empty()) {
    report.p50_ms = merged.quantile(0.50);
    report.p90_ms = merged.quantile(0.90);
    report.p99_ms = merged.quantile(0.99);
    report.quantile_rank_error = merged.quantile_rank_error_bound();
  }
  return report;
}

std::size_t StreamAggregates::stored_sketch_items() const noexcept {
  std::size_t items = open_.durations.stored_items();
  for (const DayStats& day : window_) items += day.durations.stored_items();
  return items;
}

namespace {

std::size_t approximate_day_bytes(const StreamAggregates::DayStats& day) {
  // ~64 B per rb-tree map node (key + tally + node overhead), 8 B per
  // stored sketch item plus ~48 B per sketch level vector, and the struct
  // itself. Deliberately a function of *sizes*, never capacities: restored
  // and uninterrupted replicas must report the same value.
  return sizeof(StreamAggregates::DayStats) + day.by_district.size() * 64 +
         day.durations.stored_items() * 8 + day.durations.levels() * 48;
}

}  // namespace

std::size_t StreamAggregates::approximate_bytes() const noexcept {
  std::size_t bytes = sizeof(StreamAggregates);
  bytes += sectors_.size() * 64;
  bytes += approximate_day_bytes(open_);
  for (const DayStats& day : window_) bytes += approximate_day_bytes(day);
  bytes += events_.size() * sizeof(DegradationEvent);
  return bytes;
}

namespace {

void put_day(std::vector<std::uint8_t>& out,
             const StreamAggregates::DayStats& day) {
  put_u32(out, static_cast<std::uint32_t>(day.day));
  put_u64(out, day.handovers);
  put_u64(out, day.failures);
  out.push_back(static_cast<std::uint8_t>(day.degrade_level));
  put_u32(out, day.sample_modulus);
  for (const auto& t : day.by_vendor) put_tally(out, t);
  for (const auto& t : day.by_target) put_tally(out, t);
  put_tally_map(out, day.by_district);
  day.durations.serialize(out);
}

StreamAggregates::DayStats read_day(Reader& r, std::size_t sketch_k) {
  StreamAggregates::DayStats day(sketch_k);
  day.day = static_cast<std::int32_t>(r.u32());
  day.handovers = r.u64();
  day.failures = r.u64();
  if (day.failures > day.handovers) Reader::corrupt("day failures > handovers");
  const std::uint8_t level = r.u8();
  if (level > static_cast<std::uint8_t>(DegradeLevel::kSampled)) {
    Reader::corrupt("day degrade level out of range");
  }
  day.degrade_level = static_cast<DegradeLevel>(level);
  day.sample_modulus = r.u32();
  if (day.sample_modulus == 0) Reader::corrupt("day sample modulus zero");
  for (auto& t : day.by_vendor) t = read_tally(r);
  for (auto& t : day.by_target) t = read_tally(r);
  day.by_district = read_tally_map(r);
  day.durations = analysis::QuantileSketch::deserialize(r.bytes, r.pos);
  if (day.durations.k() != sketch_k) Reader::corrupt("sketch k mismatch");
  return day;
}

}  // namespace

void StreamAggregates::serialize(std::vector<std::uint8_t>& out) const {
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  out.push_back(kVersion);
  put_u32(out, static_cast<std::uint32_t>(options_.window_days));
  put_u32(out, static_cast<std::uint32_t>(options_.sketch_k));
  put_u32(out, options_.sample_modulus);
  put_u64(out, total_records_);
  put_u64(out, total_failures_);
  put_u64(out, days_sealed_);
  put_u32(out, static_cast<std::uint32_t>(last_sealed_day_));
  out.push_back(static_cast<std::uint8_t>(level_));
  put_u64(out, events_dropped_);
  put_u32(out, static_cast<std::uint32_t>(events_.size()));
  for (const DegradationEvent& event : events_) {
    put_u32(out, static_cast<std::uint32_t>(event.effective_day));
    out.push_back(static_cast<std::uint8_t>(event.from));
    out.push_back(static_cast<std::uint8_t>(event.to));
    put_u64(out, event.used_bytes);
    put_u64(out, event.budget_bytes);
    put_u32(out, event.sample_modulus);
    put_u64(out, event.shed_district_keys);
    put_u64(out, event.shed_sector_keys);
  }
  put_tally_map(out, sectors_);
  put_u32(out, static_cast<std::uint32_t>(window_.size()));
  for (const DayStats& day : window_) put_day(out, day);
  put_day(out, open_);
}

StreamAggregates StreamAggregates::deserialize(
    std::span<const std::uint8_t> bytes, std::size_t& offset) {
  Reader r{bytes, offset};
  r.need(sizeof kMagic + 1);
  for (char expected : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(expected)) {
      Reader::corrupt("bad magic");
    }
  }
  if (r.u8() != kVersion) Reader::corrupt("unsupported version");
  Options options;
  options.window_days = r.u32();
  options.sketch_k = r.u32();
  options.sample_modulus = r.u32();
  if (options.window_days == 0 || options.window_days > (1u << 20)) {
    Reader::corrupt("window_days out of range");
  }
  if (options.sample_modulus == 0) Reader::corrupt("sample_modulus zero");
  StreamAggregates aggs(options);  // validates sketch_k via the open sketch
  aggs.total_records_ = r.u64();
  aggs.total_failures_ = r.u64();
  aggs.days_sealed_ = r.u64();
  aggs.last_sealed_day_ = static_cast<std::int32_t>(r.u32());
  if (aggs.total_failures_ > aggs.total_records_) {
    Reader::corrupt("total failures > total records");
  }
  const std::uint8_t level = r.u8();
  if (level > static_cast<std::uint8_t>(DegradeLevel::kSampled)) {
    Reader::corrupt("degrade level out of range");
  }
  aggs.level_ = static_cast<DegradeLevel>(level);
  aggs.events_dropped_ = r.u64();
  const std::uint32_t event_count = r.u32();
  if (event_count > StreamAggregates::kMaxEvents) {
    Reader::corrupt("event journal larger than cap");
  }
  // 42 bytes per event entry on the wire.
  if (event_count > (r.bytes.size() - r.pos) / 42) {
    Reader::corrupt("event journal size");
  }
  std::int64_t previous_event_day = INT64_MIN;
  for (std::uint32_t i = 0; i < event_count; ++i) {
    DegradationEvent event;
    event.effective_day = static_cast<std::int32_t>(r.u32());
    const std::uint8_t from = r.u8();
    const std::uint8_t to = r.u8();
    if (from > static_cast<std::uint8_t>(DegradeLevel::kSampled) ||
        to > static_cast<std::uint8_t>(DegradeLevel::kSampled) || from == to) {
      Reader::corrupt("event levels invalid");
    }
    event.from = static_cast<DegradeLevel>(from);
    event.to = static_cast<DegradeLevel>(to);
    event.used_bytes = r.u64();
    event.budget_bytes = r.u64();
    event.sample_modulus = r.u32();
    if (event.sample_modulus == 0) Reader::corrupt("event modulus zero");
    event.shed_district_keys = r.u64();
    event.shed_sector_keys = r.u64();
    if (event.effective_day < previous_event_day) {
      Reader::corrupt("event days not nondecreasing");
    }
    previous_event_day = event.effective_day;
    aggs.events_.push_back(event);
  }
  if (!aggs.events_.empty() && aggs.events_.back().to != aggs.level_) {
    Reader::corrupt("last event disagrees with instance level");
  }
  aggs.sectors_ = read_tally_map(r);
  const std::uint32_t ring = r.u32();
  if (ring > options.window_days) Reader::corrupt("ring larger than window");
  int previous_day = -2;
  for (std::uint32_t i = 0; i < ring; ++i) {
    DayStats day = read_day(r, options.sketch_k);
    if (day.day < 0 || day.day <= previous_day) {
      Reader::corrupt("ring days not strictly increasing");
    }
    previous_day = day.day;
    aggs.window_.push_back(std::move(day));
  }
  if (!aggs.window_.empty() &&
      aggs.window_.back().day != aggs.last_sealed_day_) {
    Reader::corrupt("last sealed day disagrees with ring");
  }
  aggs.open_ = read_day(r, options.sketch_k);
  if (aggs.open_.day != -1) Reader::corrupt("open day carries a day index");
  if (aggs.open_.degrade_level != aggs.level_) {
    Reader::corrupt("open day level disagrees with instance level");
  }
  const std::uint32_t expected_modulus =
      aggs.level_ == DegradeLevel::kSampled ? options.sample_modulus : 1;
  if (aggs.open_.sample_modulus != expected_modulus) {
    Reader::corrupt("open day modulus disagrees with instance level");
  }
  offset = r.pos;
  return aggs;
}

StreamAggregates StreamAggregates::deserialize(
    std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  StreamAggregates aggs = deserialize(bytes, offset);
  if (offset != bytes.size()) {
    throw std::runtime_error{
        "StreamAggregates::deserialize: trailing bytes after state"};
  }
  return aggs;
}

}  // namespace tl::serve
