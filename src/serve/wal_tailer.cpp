#include "serve/wal_tailer.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/crc32c.hpp"

namespace tl::serve {
namespace {

constexpr std::uint8_t kCheckpointVersion = 1;
// magic + version + cursor (4+8+4+8) + payload length + CRC trailer.
constexpr std::size_t kCheckpointOverhead = 8 + 1 + 24 + 8 + 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

DegradeLevel ladder_for(govern::PressureLevel pressure) noexcept {
  switch (pressure) {
    case govern::PressureLevel::kSteady: return DegradeLevel::kExact;
    case govern::PressureLevel::kElevated: return DegradeLevel::kSketchOnly;
    case govern::PressureLevel::kCritical: return DegradeLevel::kSampled;
  }
  return DegradeLevel::kExact;
}

govern::PressureLevel pressure_for(DegradeLevel level) noexcept {
  switch (level) {
    case DegradeLevel::kExact: return govern::PressureLevel::kSteady;
    case DegradeLevel::kSketchOnly: return govern::PressureLevel::kElevated;
    case DegradeLevel::kSampled: return govern::PressureLevel::kCritical;
  }
  return govern::PressureLevel::kSteady;
}

}  // namespace

WalTailer::WalTailer(io::FileSystem& fs, Options options)
    : fs_(fs),
      options_(std::move(options)),
      aggregates_(StreamAggregates::Options{options_.window_days,
                                            options_.sketch_k,
                                            options_.sample_modulus}) {
  if (options_.wal_directory.empty() || options_.checkpoint_path.empty()) {
    throw std::invalid_argument{
        "WalTailer: wal_directory and checkpoint_path are required"};
  }
  if (options_.checkpoint_every_days == 0) {
    throw std::invalid_argument{"WalTailer: checkpoint_every_days must be >= 1"};
  }
  if (options_.max_days_per_poll == 0) {
    throw std::invalid_argument{"WalTailer: max_days_per_poll must be >= 1"};
  }
}

void WalTailer::open() {
  resolve_obs();
  resolve_governor();
  // A .tmp is a checkpoint attempt that died before its rename: the real
  // checkpoint (if any) is still intact, the tmp is garbage.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  if (fs_.exists(tmp)) fs_.remove(tmp);
  if (fs_.exists(options_.checkpoint_path)) {
    load_checkpoint(options_.checkpoint_path);
  }
  install_degrade_policy();
  if (governor_ != nullptr) {
    // Re-seed the governor's deterministic state from the recovered
    // aggregates so the remainder of a pressure plan replays exactly as an
    // uninterrupted run: the injection clock ticks once per sealed day, and
    // the hysteresis memory is whatever level the last seal decided.
    governor_->set_tick(aggregates_.days_sealed());
    governor_->set_level(pressure_for(aggregates_.level()));
    sync_govern_account();
  }
  open_ = true;
}

void WalTailer::resolve_governor() {
  const std::uint64_t epoch = govern::global_epoch();
  if (epoch == govern_epoch_) return;
  govern_epoch_ = epoch;
  governor_ = govern::global_governor();
  govern_account_ = governor_ != nullptr
                        ? governor_->accountant("serve_aggregates")
                        : govern::Accountant{};
  accounted_bytes_ = 0;
}

void WalTailer::sync_govern_account() {
  const std::uint64_t now = aggregates_.approximate_bytes();
  if (now >= accounted_bytes_) {
    govern_account_.add(now - accounted_bytes_);
  } else {
    govern_account_.sub(accounted_bytes_ - now);
  }
  accounted_bytes_ = now;
}

void WalTailer::install_degrade_policy() {
  aggregates_.set_degrade_policy(
      [this](int) { return consult_governor(); });
}

StreamAggregates::DegradeDecision WalTailer::consult_governor() {
  StreamAggregates::DegradeDecision decision;
  decision.level = aggregates_.level();
  if (governor_ == nullptr) return decision;  // governance off: hold level
  sync_govern_account();
  governor_->tick();
  decision.level = ladder_for(governor_->level());
  decision.used_bytes = governor_->used_bytes();
  decision.budget_bytes = governor_->budget_bytes();
  return decision;
}

void WalTailer::load_checkpoint(const std::string& path) {
  const std::uint64_t size = fs_.file_size(path);
  if (size < kCheckpointOverhead) {
    throw io::IoError{"serve checkpoint truncated: " + path};
  }
  std::vector<std::uint8_t> bytes(size);
  {
    auto file = fs_.open(path, io::OpenMode::kRead);
    std::size_t have = 0;
    while (have < bytes.size()) {
      const std::size_t n = file->read(bytes.data() + have, bytes.size() - have);
      if (n == 0) throw io::IoError{"serve checkpoint short read: " + path};
      have += n;
    }
  }
  const std::size_t body = bytes.size() - 4;
  const std::uint32_t stored = util::unmask_crc32c(get_u32(bytes.data() + body));
  if (stored != util::crc32c(bytes.data(), body)) {
    throw io::IoError{"serve checkpoint CRC mismatch: " + path};
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof kCheckpointMagic) != 0 ||
      bytes[8] != kCheckpointVersion) {
    throw io::IoError{"serve checkpoint bad magic/version: " + path};
  }
  telemetry::LogCursor cursor;
  cursor.segment = get_u32(bytes.data() + 9);
  cursor.offset = get_u64(bytes.data() + 13);
  cursor.day = static_cast<std::int32_t>(get_u32(bytes.data() + 21));
  cursor.records = get_u64(bytes.data() + 25);
  const std::uint64_t payload_len = get_u64(bytes.data() + 33);
  if (payload_len != body - (kCheckpointOverhead - 4)) {
    throw io::IoError{"serve checkpoint payload length mismatch: " + path};
  }
  StreamAggregates aggs = [&] {
    try {
      return StreamAggregates::deserialize(
          std::span<const std::uint8_t>(bytes.data() + 41, payload_len));
    } catch (const std::runtime_error& error) {
      throw io::IoError{"serve checkpoint aggregate state invalid (" + path +
                        "): " + error.what()};
    }
  }();
  if (aggs.options().window_days != options_.window_days ||
      aggs.options().sketch_k != options_.sketch_k ||
      aggs.options().sample_modulus != options_.sample_modulus) {
    throw io::IoError{
        "serve checkpoint was written with different window/sketch options; "
        "refusing to mix streams (" + path + ")"};
  }
  if (cursor.day != aggs.last_sealed_day()) {
    throw io::IoError{
        "serve checkpoint cursor and aggregates disagree on the last day: " +
        path};
  }
  cursor_ = cursor;
  durable_cursor_ = cursor;
  have_checkpoint_ = true;
  days_since_checkpoint_ = 0;
  aggregates_ = std::move(aggs);
}

void WalTailer::checkpoint() {
  if (!open_) throw std::logic_error{"WalTailer: open() before checkpoint()"};
  if (have_checkpoint_ && days_since_checkpoint_ == 0) return;
  if (!have_checkpoint_ && aggregates_.days_sealed() == 0) return;

  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), kCheckpointMagic,
               kCheckpointMagic + sizeof kCheckpointMagic);
  bytes.push_back(kCheckpointVersion);
  put_u32(bytes, cursor_.segment);
  put_u64(bytes, cursor_.offset);
  put_u32(bytes, static_cast<std::uint32_t>(cursor_.day));
  put_u64(bytes, cursor_.records);
  std::vector<std::uint8_t> payload;
  aggregates_.serialize(payload);
  put_u64(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  put_u32(bytes, util::mask_crc32c(util::crc32c(bytes.data(), bytes.size())));

  // tmp + sync + rename: the rename is the commit point. Any failure or
  // crash before it leaves the previous checkpoint untouched (open()
  // sweeps the tmp); after it the new one is complete and CRC-sealed.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  {
    auto file = fs_.open(tmp, io::OpenMode::kTruncate);
    if (file->write(bytes.data(), bytes.size()) != bytes.size()) {
      throw io::IoError{"serve checkpoint short write: " + tmp};
    }
    file->sync();
    file->close();
  }
  fs_.rename(tmp, options_.checkpoint_path);

  durable_cursor_ = cursor_;
  have_checkpoint_ = true;
  days_since_checkpoint_ = 0;
  obs_checkpoints_.inc();
  obs_checkpoint_bytes_.inc(bytes.size());
}

WalTailer::PollResult WalTailer::poll() {
  if (!open_) throw std::logic_error{"WalTailer: open() before poll()"};
  resolve_obs();
  resolve_governor();
  PollResult result;
  const telemetry::TailReadResult tail = telemetry::RecordLog::follow(
      fs_, options_.wal_directory, cursor_, aggregates_,
      options_.max_days_per_poll);
  result.state = tail.state;
  result.days_delivered = tail.days_delivered;
  result.records_delivered = tail.records_delivered;
  days_since_checkpoint_ += tail.days_delivered;

  if (days_since_checkpoint_ >= options_.checkpoint_every_days) {
    checkpoint();
    result.checkpointed = true;
  }
  if (options_.retention && have_checkpoint_) {
    result.segments_retired = retire_segments();
  }

  // Keep the accountant fresh between seals too (open-day sketch growth);
  // degrade decisions still read only the seal-time sync in
  // consult_governor, so this does not affect determinism.
  if (governor_ != nullptr) sync_govern_account();

  obs_polls_.inc();
  obs_days_.inc(tail.days_delivered);
  obs_records_.inc(tail.records_delivered);
  obs_cursor_day_.set(static_cast<double>(cursor_.day));
  obs_sketch_items_.set(static_cast<double>(aggregates_.stored_sketch_items()));
  return result;
}

supervise::RetryReport WalTailer::poll_supervised(
    const supervise::RetryPolicy& policy, PollResult* result) {
  return supervise::run_with_retries(
      policy, "serve poll of " + options_.wal_directory,
      [&](const supervise::CancelToken& token) {
        token.throw_if_cancelled();
        const PollResult r = poll();
        if (result) *result = r;
      });
}

std::uint64_t WalTailer::retire_segments() {
  // Strictly behind the *durable* cursor: a restart replays from the
  // checkpoint, so every byte at or after its segment must stay. Oldest
  // first, so a crash mid-sweep leaves the chain contiguous.
  if (durable_cursor_.fresh()) return 0;
  std::uint64_t retired = 0;
  for (const std::string& name : fs_.list(options_.wal_directory, "wal-")) {
    std::uint32_t index = 0;
    if (std::sscanf(name.c_str(), "wal-%9u.tlseg", &index) != 1 ||
        name != telemetry::RecordLog::segment_name(index)) {
      continue;  // foreign file under our prefix; leave it alone
    }
    if (index >= durable_cursor_.segment) break;  // sorted ascending
    fs_.remove(options_.wal_directory + "/" + name);
    ++retired;
  }
  obs_segments_retired_.inc(retired);
  return retired;
}

void WalTailer::resolve_obs() {
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_polls_ = {};
    obs_days_ = {};
    obs_records_ = {};
    obs_checkpoints_ = {};
    obs_checkpoint_bytes_ = {};
    obs_segments_retired_ = {};
    obs_cursor_day_ = {};
    obs_sketch_items_ = {};
    return;
  }
  obs_polls_ = reg->counter("tl_serve_polls_total", "tail polls executed");
  obs_days_ = reg->counter("tl_serve_days_total", "committed days ingested");
  obs_records_ =
      reg->counter("tl_serve_records_total", "records ingested from the WAL");
  obs_checkpoints_ =
      reg->counter("tl_serve_checkpoints_total", "durable checkpoints written");
  obs_checkpoint_bytes_ = reg->counter("tl_serve_checkpoint_bytes_total",
                                       "bytes written to checkpoint files");
  obs_segments_retired_ = reg->counter("tl_serve_segments_retired_total",
                                       "WAL segments deleted by retention");
  obs_cursor_day_ =
      reg->gauge("tl_serve_cursor_day", "last committed day consumed");
  obs_sketch_items_ = reg->gauge("tl_serve_sketch_items",
                                 "retained sketch samples across the window");
}

}  // namespace tl::serve
