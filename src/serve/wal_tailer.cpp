#include "serve/wal_tailer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "supervise/status.hpp"
#include "telemetry/scrub.hpp"
#include "util/crc32c.hpp"

namespace tl::serve {
namespace {

constexpr std::uint8_t kCheckpointVersion = 1;
// v2 appends the certified-loss ledger (quarantined segments + accounting)
// after the aggregates payload; a v1 file (no losses ever certified) is
// still accepted, and a tailer with an empty ledger still writes v1 — the
// formats only diverge once data was actually lost.
constexpr std::uint8_t kCheckpointVersionQuarantine = 2;
// magic + version + cursor (4+8+4+8) + payload length + CRC trailer.
constexpr std::size_t kCheckpointOverhead = 8 + 1 + 24 + 8 + 4;
// v2 ledger: segment count + records/days lost + day range + exact flag.
constexpr std::size_t kLossLedgerMinBytes = 4 + 8 + 8 + 4 + 4 + 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

DegradeLevel ladder_for(govern::PressureLevel pressure) noexcept {
  switch (pressure) {
    case govern::PressureLevel::kSteady: return DegradeLevel::kExact;
    case govern::PressureLevel::kElevated: return DegradeLevel::kSketchOnly;
    case govern::PressureLevel::kCritical: return DegradeLevel::kSampled;
  }
  return DegradeLevel::kExact;
}

govern::PressureLevel pressure_for(DegradeLevel level) noexcept {
  switch (level) {
    case DegradeLevel::kExact: return govern::PressureLevel::kSteady;
    case DegradeLevel::kSketchOnly: return govern::PressureLevel::kElevated;
    case DegradeLevel::kSampled: return govern::PressureLevel::kCritical;
  }
  return govern::PressureLevel::kSteady;
}

}  // namespace

WalTailer::WalTailer(io::FileSystem& fs, Options options)
    : fs_(fs),
      options_(std::move(options)),
      aggregates_(StreamAggregates::Options{options_.window_days,
                                            options_.sketch_k,
                                            options_.sample_modulus}) {
  if (options_.wal_directory.empty() || options_.checkpoint_path.empty()) {
    throw std::invalid_argument{
        "WalTailer: wal_directory and checkpoint_path are required"};
  }
  if (options_.checkpoint_every_days == 0) {
    throw std::invalid_argument{"WalTailer: checkpoint_every_days must be >= 1"};
  }
  if (options_.max_days_per_poll == 0) {
    throw std::invalid_argument{"WalTailer: max_days_per_poll must be >= 1"};
  }
}

void WalTailer::open() {
  resolve_obs();
  resolve_governor();
  // A .tmp is a checkpoint attempt that died before its rename: the real
  // checkpoint (if any) is still intact, the tmp is garbage.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  if (fs_.exists(tmp)) fs_.remove(tmp);
  if (fs_.exists(options_.checkpoint_path)) {
    load_checkpoint(options_.checkpoint_path);
  }
  install_degrade_policy();
  if (governor_ != nullptr) {
    // Re-seed the governor's deterministic state from the recovered
    // aggregates so the remainder of a pressure plan replays exactly as an
    // uninterrupted run: the injection clock ticks once per sealed day, and
    // the hysteresis memory is whatever level the last seal decided.
    governor_->set_tick(aggregates_.days_sealed());
    governor_->set_level(pressure_for(aggregates_.level()));
    sync_govern_account();
  }
  open_ = true;
}

void WalTailer::resolve_governor() {
  const std::uint64_t epoch = govern::global_epoch();
  if (epoch == govern_epoch_) return;
  govern_epoch_ = epoch;
  governor_ = govern::global_governor();
  govern_account_ = governor_ != nullptr
                        ? governor_->accountant("serve_aggregates")
                        : govern::Accountant{};
  accounted_bytes_ = 0;
}

void WalTailer::sync_govern_account() {
  const std::uint64_t now = aggregates_.approximate_bytes();
  if (now >= accounted_bytes_) {
    govern_account_.add(now - accounted_bytes_);
  } else {
    govern_account_.sub(accounted_bytes_ - now);
  }
  accounted_bytes_ = now;
}

void WalTailer::install_degrade_policy() {
  aggregates_.set_degrade_policy(
      [this](int) { return consult_governor(); });
}

StreamAggregates::DegradeDecision WalTailer::consult_governor() {
  StreamAggregates::DegradeDecision decision;
  decision.level = aggregates_.level();
  if (governor_ == nullptr) return decision;  // governance off: hold level
  sync_govern_account();
  governor_->tick();
  decision.level = ladder_for(governor_->level());
  decision.used_bytes = governor_->used_bytes();
  decision.budget_bytes = governor_->budget_bytes();
  return decision;
}

void WalTailer::load_checkpoint(const std::string& path) {
  const std::uint64_t size = fs_.file_size(path);
  if (size < kCheckpointOverhead) {
    throw io::IoError{"serve checkpoint truncated: " + path};
  }
  std::vector<std::uint8_t> bytes(size);
  {
    auto file = fs_.open(path, io::OpenMode::kRead);
    std::size_t have = 0;
    while (have < bytes.size()) {
      const std::size_t n = file->read(bytes.data() + have, bytes.size() - have);
      if (n == 0) throw io::IoError{"serve checkpoint short read: " + path};
      have += n;
    }
  }
  const std::size_t body = bytes.size() - 4;
  const std::uint32_t stored = util::unmask_crc32c(get_u32(bytes.data() + body));
  if (stored != util::crc32c(bytes.data(), body)) {
    throw io::IoError{"serve checkpoint CRC mismatch: " + path};
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof kCheckpointMagic) != 0 ||
      (bytes[8] != kCheckpointVersion &&
       bytes[8] != kCheckpointVersionQuarantine)) {
    throw io::IoError{"serve checkpoint bad magic/version: " + path};
  }
  const bool has_ledger = bytes[8] == kCheckpointVersionQuarantine;
  telemetry::LogCursor cursor;
  cursor.segment = get_u32(bytes.data() + 9);
  cursor.offset = get_u64(bytes.data() + 13);
  cursor.day = static_cast<std::int32_t>(get_u32(bytes.data() + 21));
  cursor.records = get_u64(bytes.data() + 25);
  const std::uint64_t payload_len = get_u64(bytes.data() + 33);
  const std::uint64_t fixed_len = body - (kCheckpointOverhead - 4);
  if (has_ledger ? payload_len + kLossLedgerMinBytes > fixed_len
                 : payload_len != fixed_len) {
    throw io::IoError{"serve checkpoint payload length mismatch: " + path};
  }
  std::vector<std::uint32_t> quarantined;
  std::uint64_t records_lost = 0, days_lost = 0;
  bool loss_exact = true;
  int loss_first = -1, loss_last = -1;
  if (has_ledger) {
    const std::uint8_t* p = bytes.data() + 41 + payload_len;
    const std::uint32_t count = get_u32(p);
    if (payload_len + kLossLedgerMinBytes + 4ull * count != fixed_len) {
      throw io::IoError{"serve checkpoint loss-ledger length mismatch: " + path};
    }
    p += 4;
    quarantined.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i, p += 4) {
      quarantined.push_back(get_u32(p));
    }
    records_lost = get_u64(p);
    days_lost = get_u64(p + 8);
    loss_first = static_cast<std::int32_t>(get_u32(p + 16));
    loss_last = static_cast<std::int32_t>(get_u32(p + 20));
    loss_exact = p[24] != 0;
  }
  StreamAggregates aggs = [&] {
    try {
      return StreamAggregates::deserialize(
          std::span<const std::uint8_t>(bytes.data() + 41, payload_len));
    } catch (const std::runtime_error& error) {
      throw io::IoError{"serve checkpoint aggregate state invalid (" + path +
                        "): " + error.what()};
    }
  }();
  if (aggs.options().window_days != options_.window_days ||
      aggs.options().sketch_k != options_.sketch_k ||
      aggs.options().sample_modulus != options_.sample_modulus) {
    throw io::IoError{
        "serve checkpoint was written with different window/sketch options; "
        "refusing to mix streams (" + path + ")"};
  }
  if (cursor.day != aggs.last_sealed_day()) {
    throw io::IoError{
        "serve checkpoint cursor and aggregates disagree on the last day: " +
        path};
  }
  cursor_ = cursor;
  durable_cursor_ = cursor;
  have_checkpoint_ = true;
  days_since_checkpoint_ = 0;
  aggregates_ = std::move(aggs);
  quarantined_ = std::move(quarantined);
  records_lost_ = records_lost;
  days_lost_ = days_lost;
  loss_exact_ = loss_exact;
  loss_first_day_ = loss_first;
  loss_last_day_ = loss_last;
}

void WalTailer::checkpoint() {
  if (!open_) throw std::logic_error{"WalTailer: open() before checkpoint()"};
  if (have_checkpoint_ && days_since_checkpoint_ == 0 && !ledger_dirty_) return;
  if (!have_checkpoint_ && aggregates_.days_sealed() == 0 && !ledger_dirty_) {
    return;
  }

  // Until a loss is certified the image stays byte-for-byte a v1 file; the
  // ledger (and the version bump) only appear once there is one to keep.
  const bool ledger = !quarantined_.empty() || records_lost_ > 0 ||
                      days_lost_ > 0 || !loss_exact_;
  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), kCheckpointMagic,
               kCheckpointMagic + sizeof kCheckpointMagic);
  bytes.push_back(ledger ? kCheckpointVersionQuarantine : kCheckpointVersion);
  put_u32(bytes, cursor_.segment);
  put_u64(bytes, cursor_.offset);
  put_u32(bytes, static_cast<std::uint32_t>(cursor_.day));
  put_u64(bytes, cursor_.records);
  std::vector<std::uint8_t> payload;
  aggregates_.serialize(payload);
  put_u64(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  if (ledger) {
    put_u32(bytes, static_cast<std::uint32_t>(quarantined_.size()));
    for (const std::uint32_t seg : quarantined_) put_u32(bytes, seg);
    put_u64(bytes, records_lost_);
    put_u64(bytes, days_lost_);
    put_u32(bytes, static_cast<std::uint32_t>(loss_first_day_));
    put_u32(bytes, static_cast<std::uint32_t>(loss_last_day_));
    bytes.push_back(loss_exact_ ? 1 : 0);
  }
  put_u32(bytes, util::mask_crc32c(util::crc32c(bytes.data(), bytes.size())));

  // tmp + sync + rename: the rename is the commit point. Any failure or
  // crash before it leaves the previous checkpoint untouched (open()
  // sweeps the tmp); after it the new one is complete and CRC-sealed.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  {
    auto file = fs_.open(tmp, io::OpenMode::kTruncate);
    if (file->write(bytes.data(), bytes.size()) != bytes.size()) {
      throw io::IoError{"serve checkpoint short write: " + tmp};
    }
    file->sync();
    file->close();
  }
  fs_.rename(tmp, options_.checkpoint_path);

  durable_cursor_ = cursor_;
  have_checkpoint_ = true;
  days_since_checkpoint_ = 0;
  ledger_dirty_ = false;
  obs_checkpoints_.inc();
  obs_checkpoint_bytes_.inc(bytes.size());
}

WalTailer::PollResult WalTailer::poll() {
  if (!open_) throw std::logic_error{"WalTailer: open() before poll()"};
  resolve_obs();
  resolve_governor();
  PollResult result;

  // Fold one follow attempt into the poll result and the certified-loss
  // ledger. Quarantine accounting commits inside follow() in the same step
  // as the cursor advance past the hole, so absorbing every attempt (not
  // just the final one) is what keeps the ledger exactly-once: an attempt
  // that crossed a hole and then stopped (kTorn, kMore) already carries the
  // hole's numbers, and a re-poll of the same hole contributes zero.
  const auto absorb = [&](const telemetry::TailReadResult& t) {
    result.days_delivered += t.days_delivered;
    result.records_delivered += t.records_delivered;
    days_since_checkpoint_ += t.days_delivered;
    days_since_scrub_ += t.days_delivered;
    if (t.days_quarantined > 0 || t.records_quarantined > 0 ||
        !t.quarantine_exact) {
      records_lost_ += t.records_quarantined;
      days_lost_ += t.days_quarantined;
      result.records_quarantined += t.records_quarantined;
      if (!t.quarantine_exact) loss_exact_ = false;
      if (t.quarantine_first_day >= 0 &&
          (loss_first_day_ < 0 || t.quarantine_first_day < loss_first_day_)) {
        loss_first_day_ = t.quarantine_first_day;
      }
      if (t.quarantine_last_day > loss_last_day_) {
        loss_last_day_ = t.quarantine_last_day;
      }
      ledger_dirty_ = true;
    }
  };

  telemetry::FollowOptions fopts;
  fopts.max_days = options_.max_days_per_poll;
  telemetry::TailReadResult tail;
  bool integrity_ran = false;
  for (;;) {
    fopts.quarantined = quarantined_;  // may have grown since last attempt
    const std::uint32_t segment_before = cursor_.segment;
    try {
      tail = telemetry::RecordLog::follow(fs_, options_.wal_directory, cursor_,
                                          aggregates_, fopts);
    } catch (const io::IoError&) {
      // The attempt's result died with the exception. If the attempt had
      // already crossed a quarantined hole (cursor only passes a hole when
      // the post-hole marker is delivered), the accounting it carried is
      // gone — certify the ledger inexact rather than undercount silently.
      for (const std::uint32_t q : quarantined_) {
        if (q >= segment_before && q < cursor_.segment) {
          loss_exact_ = false;
          ledger_dirty_ = true;
        }
      }
      // Structurally impossible chain under the cursor: run one storage-
      // integrity pass (read-repair from the mirror, else certified
      // quarantine) and retry; if integrity changes nothing, it is real.
      if (integrity_ran || !run_integrity(&result)) throw;
      integrity_ran = true;
      continue;
    }
    absorb(tail);
    if (tail.state == telemetry::TailState::kTorn && !integrity_ran) {
      // A complete frame with a bad CRC: latent rot in a sealed region is
      // repairable (or certifiable); a torn writer tail is the writer's
      // recovery to redo — retry only when integrity actually changed
      // something, else surface the torn state as before.
      integrity_ran = true;
      if (run_integrity(&result)) continue;
    }
    break;
  }
  result.state = tail.state;

  // Proactive scrub cadence — deterministic in the delivered-day count.
  // Runs before the checkpoint so a quarantine it certifies lands in the
  // same durable image as the cursor that will skip it.
  if (options_.scrub_every_days > 0 &&
      days_since_scrub_ >= options_.scrub_every_days) {
    days_since_scrub_ = 0;
    run_integrity(&result);
  }

  if (days_since_checkpoint_ >= options_.checkpoint_every_days ||
      ledger_dirty_) {
    checkpoint();
    result.checkpointed = true;
  }
  if (options_.retention && have_checkpoint_) {
    result.segments_retired = retire_segments();
  }

  // Keep the accountant fresh between seals too (open-day sketch growth);
  // degrade decisions still read only the seal-time sync in
  // consult_governor, so this does not affect determinism.
  if (governor_ != nullptr) sync_govern_account();

  obs_polls_.inc();
  obs_days_.inc(result.days_delivered);
  obs_records_.inc(result.records_delivered);
  obs_cursor_day_.set(static_cast<double>(cursor_.day));
  obs_sketch_items_.set(static_cast<double>(aggregates_.stored_sketch_items()));
  return result;
}

supervise::RetryReport WalTailer::poll_supervised(
    const supervise::RetryPolicy& policy, PollResult* result) {
  return supervise::run_with_retries(
      policy, "serve poll of " + options_.wal_directory,
      [&](const supervise::CancelToken& token) {
        token.throw_if_cancelled();
        const PollResult r = poll();
        if (result) *result = r;
      });
}

bool WalTailer::run_integrity(PollResult* result) {
  telemetry::LogIntegrity integrity{
      fs_, telemetry::ScrubOptions{options_.wal_directory,
                                   options_.mirror_directory}};
  const telemetry::IntegrityReport report = integrity.check_and_repair();
  if (result != nullptr) ++result->scrubs_run;
  std::uint64_t repaired = 0;
  for (const telemetry::RepairEvent& e : report.events) {
    if (e.action != telemetry::RepairAction::kQuarantined) ++repaired;
  }
  // The ledger's day/record numbers accumulate at skip time in follow()
  // (they anchor on what the reader actually passes over); here we only
  // adopt the set of segments certified unreadable.
  std::uint64_t newly_quarantined = 0;
  for (const std::uint32_t seg : report.quarantined_segments) {
    if (!std::binary_search(quarantined_.begin(), quarantined_.end(), seg)) {
      quarantined_.push_back(seg);
      ++newly_quarantined;
    }
  }
  if (newly_quarantined > 0) {
    std::sort(quarantined_.begin(), quarantined_.end());
    ledger_dirty_ = true;
    // A hole with no closing marker anchor (e.g. at the very end of the
    // chain, tail still empty) cannot be counted until the writer commits
    // past it; until then the ledger must not claim exactness.
    if (!report.accounting_exact) loss_exact_ = false;
  }
  if (result != nullptr) {
    result->segments_repaired += repaired;
    result->segments_quarantined += newly_quarantined;
  }
  if (newly_quarantined > 0 && options_.fail_on_data_loss) {
    throw supervise::DataLossError{
        "certified data loss in " + options_.wal_directory + ": " +
        std::to_string(newly_quarantined) +
        " segment(s) unreadable in every replica"};
  }
  return repaired > 0 || newly_quarantined > 0;
}

bool WalTailer::scrub_now() {
  if (!open_) throw std::logic_error{"WalTailer: open() before scrub_now()"};
  resolve_obs();
  PollResult scratch;
  const bool changed = run_integrity(&scratch);
  days_since_scrub_ = 0;
  if (changed && ledger_dirty_) checkpoint();
  return changed;
}

std::uint64_t WalTailer::retire_segments() {
  // Strictly behind the *durable* cursor: a restart replays from the
  // checkpoint, so every byte at or after its segment must stay. Oldest
  // first, so a crash mid-sweep leaves the chain contiguous.
  if (durable_cursor_.fresh()) return 0;
  std::uint64_t retired = 0;
  for (const std::string& name : fs_.list(options_.wal_directory, "wal-")) {
    std::uint32_t index = 0;
    if (std::sscanf(name.c_str(), "wal-%9u.tlseg", &index) != 1 ||
        name != telemetry::RecordLog::segment_name(index)) {
      continue;  // foreign file under our prefix; leave it alone
    }
    if (index >= durable_cursor_.segment) break;  // sorted ascending
    fs_.remove(options_.wal_directory + "/" + name);
    ++retired;
  }
  // Mirror lockstep: a replica is needed exactly as long as its primary can
  // still be read (read-repair is segment-for-segment), so the same
  // strictly-behind-the-durable-cursor rule applies. Primaries are removed
  // first, so a crash between the sweeps leaves orphan replicas — which
  // this same rule reclaims on the next pass.
  if (!options_.mirror_directory.empty() &&
      fs_.exists(options_.mirror_directory)) {
    for (const std::string& name :
         fs_.list(options_.mirror_directory, "wal-")) {
      std::uint32_t index = 0;
      if (std::sscanf(name.c_str(), "wal-%9u.tlseg", &index) != 1 ||
          name != telemetry::RecordLog::segment_name(index)) {
        continue;
      }
      if (index >= durable_cursor_.segment) break;
      fs_.remove(options_.mirror_directory + "/" + name);
    }
  }
  obs_segments_retired_.inc(retired);
  return retired;
}

void WalTailer::resolve_obs() {
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_polls_ = {};
    obs_days_ = {};
    obs_records_ = {};
    obs_checkpoints_ = {};
    obs_checkpoint_bytes_ = {};
    obs_segments_retired_ = {};
    obs_cursor_day_ = {};
    obs_sketch_items_ = {};
    return;
  }
  obs_polls_ = reg->counter("tl_serve_polls_total", "tail polls executed");
  obs_days_ = reg->counter("tl_serve_days_total", "committed days ingested");
  obs_records_ =
      reg->counter("tl_serve_records_total", "records ingested from the WAL");
  obs_checkpoints_ =
      reg->counter("tl_serve_checkpoints_total", "durable checkpoints written");
  obs_checkpoint_bytes_ = reg->counter("tl_serve_checkpoint_bytes_total",
                                       "bytes written to checkpoint files");
  obs_segments_retired_ = reg->counter("tl_serve_segments_retired_total",
                                       "WAL segments deleted by retention");
  obs_cursor_day_ =
      reg->gauge("tl_serve_cursor_day", "last committed day consumed");
  obs_sketch_items_ = reg->gauge("tl_serve_sketch_items",
                                 "retained sketch samples across the window");
}

}  // namespace tl::serve
