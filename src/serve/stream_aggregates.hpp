#pragma once

// Incremental aggregates for the serve-mode tailer.
//
// The batch aggregators (telemetry/aggregates.hpp) assume a fixed study
// horizon — they allocate [sector x day] lattices up front and answer after
// the whole stream has passed. A long-running ingest has neither luxury:
// days keep arriving, and reports cover a *rolling window* (the paper's
// four weeks) over whatever has landed so far. StreamAggregates is the
// bounded-memory counterpart:
//
//  - per sealed day, exact HO/HOF tallies nationally, per vendor, per
//    target RAT class, and per district, plus a mergeable QuantileSketch of
//    successful-HO signaling times (analysis/quantile_sketch.hpp) — the
//    piece that keeps per-day memory flat where a reservoir would neither
//    merge nor bound rank error;
//  - a deque ring of the last `window_days` sealed days (older days retire
//    as new ones seal, so RSS does not grow with stream length);
//  - lifetime exact totals and a per-sector HO/HOF map that outlive the
//    window (bounded by the sector universe, not the stream).
//
// report() merges the ring into one WindowReport: exact counters summed,
// sketches merged, quantiles carrying a certified rank-error bound.
//
// State is byte-serializable, deterministically: two instances fed the
// same day sequence serialize identically, which is the property the chaos
// harness leans on to prove kill/recover convergence bit-for-bit. The
// serve checkpoint embeds these bytes next to the WAL cursor.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "analysis/quantile_sketch.hpp"
#include "telemetry/records.hpp"
#include "telemetry/sinks.hpp"

namespace tl::serve {

class StreamAggregates : public telemetry::RecordSink {
 public:
  struct Options {
    /// Sealed days retained for rolling reports (the paper's study window).
    std::size_t window_days = 28;
    /// QuantileSketch buffer size; rank error ~ levels/(2k).
    std::size_t sketch_k = 128;
  };

  struct Tally {
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    double hof_rate() const noexcept {
      return handovers ? static_cast<double>(failures) /
                             static_cast<double>(handovers)
                       : 0.0;
    }
  };

  /// One sealed (or in-progress) day of exact tallies plus its sketch.
  struct DayStats {
    explicit DayStats(std::size_t sketch_k) : durations(sketch_k) {}
    int day = -1;  ///< -1 while in progress; set by on_day_end
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    std::array<Tally, 4> by_vendor{};  ///< indexed by topology::Vendor
    std::array<Tally, 3> by_target{};  ///< indexed by topology::ObservedRat
    std::map<std::uint32_t, Tally> by_district;
    analysis::QuantileSketch durations;  ///< successful-HO signaling ms
  };

  StreamAggregates() : StreamAggregates(Options{}) {}
  explicit StreamAggregates(Options options);

  /// RecordSink: consume accumulates into the open day; on_day_end seals it
  /// into the ring (retiring the oldest day past window_days). Days must
  /// seal in increasing order (std::logic_error otherwise) — the WAL
  /// delivers them that way.
  void consume(const telemetry::HandoverRecord& record) override;
  void on_day_end(int day) override;

  // --- lifetime exacts (survive window retirement) ---
  std::uint64_t total_records() const noexcept { return total_records_; }
  std::uint64_t total_failures() const noexcept { return total_failures_; }
  std::uint64_t days_sealed() const noexcept { return days_sealed_; }
  int last_sealed_day() const noexcept { return last_sealed_day_; }
  /// Per-source-sector lifetime tallies (bounded by the sector universe).
  const std::map<std::uint32_t, Tally>& sectors() const noexcept {
    return sectors_;
  }

  // --- the rolling window ---
  const std::deque<DayStats>& window() const noexcept { return window_; }
  const Options& options() const noexcept { return options_; }

  /// Merge of the current window: exact counters summed, day sketches
  /// merged front-to-back (deterministic given the window contents).
  struct WindowReport {
    int first_day = -1;
    int last_day = -1;
    std::size_t days = 0;
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    std::array<Tally, 4> by_vendor{};
    std::array<Tally, 3> by_target{};
    std::map<std::uint32_t, Tally> by_district;
    /// Signaling-time quantiles (ms) of successful HOs in the window, with
    /// the certified bound the merged sketch reports.
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double quantile_rank_error = 0.0;
    std::uint64_t sketch_count = 0;
    double hof_rate() const noexcept {
      return handovers ? static_cast<double>(failures) /
                             static_cast<double>(handovers)
                       : 0.0;
    }
  };
  WindowReport report() const;

  /// Retained sketch items across the ring — the term that must stay flat
  /// for the bench's RSS assertion.
  std::size_t stored_sketch_items() const noexcept;

  /// Deterministic byte image of the full state (options, lifetime, ring,
  /// open day). Equal states produce equal bytes.
  void serialize(std::vector<std::uint8_t>& out) const;
  /// Inverse; validates structure and throws std::runtime_error on any
  /// malformed input. `offset` advances past the consumed bytes.
  static StreamAggregates deserialize(std::span<const std::uint8_t> bytes,
                                      std::size_t& offset);
  static StreamAggregates deserialize(std::span<const std::uint8_t> bytes);

 private:
  Options options_;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_failures_ = 0;
  std::uint64_t days_sealed_ = 0;
  int last_sealed_day_ = -1;
  std::map<std::uint32_t, Tally> sectors_;
  std::deque<DayStats> window_;  ///< sealed days, oldest first
  DayStats open_;                ///< the day currently accumulating
};

}  // namespace tl::serve
