#pragma once

// Incremental aggregates for the serve-mode tailer.
//
// The batch aggregators (telemetry/aggregates.hpp) assume a fixed study
// horizon — they allocate [sector x day] lattices up front and answer after
// the whole stream has passed. A long-running ingest has neither luxury:
// days keep arriving, and reports cover a *rolling window* (the paper's
// four weeks) over whatever has landed so far. StreamAggregates is the
// bounded-memory counterpart:
//
//  - per sealed day, exact HO/HOF tallies nationally, per vendor, per
//    target RAT class, and per district, plus a mergeable QuantileSketch of
//    successful-HO signaling times (analysis/quantile_sketch.hpp) — the
//    piece that keeps per-day memory flat where a reservoir would neither
//    merge nor bound rank error;
//  - a deque ring of the last `window_days` sealed days (older days retire
//    as new ones seal, so RSS does not grow with stream length);
//  - lifetime exact totals and a per-sector HO/HOF map that outlive the
//    window (bounded by the sector universe, not the stream).
//
// report() merges the ring into one WindowReport: exact counters summed,
// sketches merged, quantiles carrying a certified rank-error bound.
//
// Degradation ladder (resource governance): under memory pressure the
// aggregates shed detail, never data, and every step is recorded:
//
//   kExact      everything above;
//   kSketchOnly the per-district day maps and the lifetime per-sector map
//               stop accumulating and already-held keys are shed (they are
//               the unbounded-cardinality terms); national/vendor/RAT
//               tallies stay exact, the sketch stays full-rate;
//   kSampled    additionally, sketch inserts are hash-sampled 1-in-modulus.
//
// Level changes happen only at day-seal boundaries, decided by an installed
// DegradePolicy (the WalTailer consults the governor there). Each change
// appends a DegradationEvent — old level, new level, the byte readings that
// forced it, and the sampling modulus — to an event journal that rides in
// the serialized state, so degradation is explicit, auditable, and survives
// restarts. The sampling is *content-keyed* (a pure hash of record identity
// fields, util::derive_seed), not positional: the admitted substream is
// independent of thread count, arrival order, and crash/replay boundaries,
// and the sketch's certified rank-error bound applies exactly to that
// declared substream — which the chaos harness checks against an exact ECDF
// computed over the same substream. National totals stay exact at every
// level, so "no silent drops" is a testable equality.
//
// State is byte-serializable, deterministically: two instances fed the
// same day sequence serialize identically, which is the property the chaos
// harness leans on to prove kill/recover convergence bit-for-bit. The
// serve checkpoint embeds these bytes next to the WAL cursor.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "analysis/quantile_sketch.hpp"
#include "telemetry/records.hpp"
#include "telemetry/sinks.hpp"

namespace tl::serve {

enum class DegradeLevel : std::uint8_t {
  kExact = 0,
  kSketchOnly = 1,
  kSampled = 2,
};

const char* to_string(DegradeLevel level) noexcept;

class StreamAggregates : public telemetry::RecordSink {
 public:
  struct Options {
    /// Sealed days retained for rolling reports (the paper's study window).
    std::size_t window_days = 28;
    /// QuantileSketch buffer size; rank error ~ levels/(2k).
    std::size_t sketch_k = 128;
    /// 1-in-N content-keyed sketch sampling at DegradeLevel::kSampled.
    std::uint32_t sample_modulus = 8;
  };

  struct Tally {
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    double hof_rate() const noexcept {
      return handovers ? static_cast<double>(failures) /
                             static_cast<double>(handovers)
                       : 0.0;
    }
  };

  /// One sealed (or in-progress) day of exact tallies plus its sketch.
  struct DayStats {
    explicit DayStats(std::size_t sketch_k) : durations(sketch_k) {}
    int day = -1;  ///< -1 while in progress; set by on_day_end
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    std::array<Tally, 4> by_vendor{};  ///< indexed by topology::Vendor
    std::array<Tally, 3> by_target{};  ///< indexed by topology::ObservedRat
    std::map<std::uint32_t, Tally> by_district;
    analysis::QuantileSketch durations;  ///< successful-HO signaling ms
    /// Level the day accumulated under, and the sketch-sampling modulus in
    /// force (1 = every successful HO inserted) — the declared basis the
    /// day's quantiles are certified against.
    DegradeLevel degrade_level = DegradeLevel::kExact;
    std::uint32_t sample_modulus = 1;
  };

  /// One recorded step of the degradation ladder (either direction).
  struct DegradationEvent {
    int effective_day = -1;  ///< first day accumulated at `to`
    DegradeLevel from = DegradeLevel::kExact;
    DegradeLevel to = DegradeLevel::kExact;
    /// Governor readings that forced the step (0 when policy-less callers
    /// degrade manually).
    std::uint64_t used_bytes = 0;
    std::uint64_t budget_bytes = 0;
    /// Sketch-sampling modulus from `effective_day` on.
    std::uint32_t sample_modulus = 1;
    /// Detail shed by this step (down-steps into kSketchOnly and beyond).
    std::uint64_t shed_district_keys = 0;
    std::uint64_t shed_sector_keys = 0;
  };

  /// Degrade decision hook, invoked after every day seal with the index the
  /// *next* accumulated day will carry. Must be deterministic for the
  /// bit-identity proofs (the tailer's governor consult is: accounted bytes
  /// and the clamp plan are pure functions of the delivered stream).
  struct DegradeDecision {
    DegradeLevel level = DegradeLevel::kExact;
    std::uint64_t used_bytes = 0;
    std::uint64_t budget_bytes = 0;
  };
  using DegradePolicy = std::function<DegradeDecision(int next_day)>;

  StreamAggregates() : StreamAggregates(Options{}) {}
  explicit StreamAggregates(Options options);

  /// RecordSink: consume accumulates into the open day; on_day_end seals it
  /// into the ring (retiring the oldest day past window_days). Days must
  /// seal in increasing order (std::logic_error otherwise) — the WAL
  /// delivers them that way.
  void consume(const telemetry::HandoverRecord& record) override;
  void on_day_end(int day) override;

  // --- lifetime exacts (survive window retirement) ---
  std::uint64_t total_records() const noexcept { return total_records_; }
  std::uint64_t total_failures() const noexcept { return total_failures_; }
  std::uint64_t days_sealed() const noexcept { return days_sealed_; }
  int last_sealed_day() const noexcept { return last_sealed_day_; }
  /// Per-source-sector lifetime tallies (bounded by the sector universe).
  const std::map<std::uint32_t, Tally>& sectors() const noexcept {
    return sectors_;
  }

  // --- the rolling window ---
  const std::deque<DayStats>& window() const noexcept { return window_; }
  const Options& options() const noexcept { return options_; }

  // --- degradation ladder ---
  /// Installs (or clears) the per-seal degrade hook. Not serialized: the
  /// owner re-installs after restoring from a checkpoint.
  void set_degrade_policy(DegradePolicy policy) {
    degrade_policy_ = std::move(policy);
  }
  /// Applies a decision immediately (also what the policy path uses).
  /// Records an event when the level changes; sheds district/sector maps
  /// when first crossing into kSketchOnly. `effective_day` is the day the
  /// new level first applies to (the currently-open day).
  void apply_degrade(const DegradeDecision& decision, int effective_day);
  DegradeLevel level() const noexcept { return level_; }
  const std::vector<DegradationEvent>& degradation_events() const noexcept {
    return events_;
  }
  /// Events beyond the retained journal cap (kMaxEvents), dropped oldest
  /// first — surfaced, never silent.
  std::uint64_t degradation_events_dropped() const noexcept {
    return events_dropped_;
  }
  static constexpr std::size_t kMaxEvents = 1024;

  /// Whether a record's successful-HO duration is admitted to the sketch at
  /// 1-in-`modulus` sampling. Pure content-keyed hash of the record's
  /// identity (user, timestamp): the same record is admitted or not
  /// regardless of position, thread count, or replay boundaries — this IS
  /// the declared basis of a sampled day's certified quantile bound.
  static bool sample_admits(const telemetry::HandoverRecord& record,
                            std::uint32_t modulus) noexcept;

  /// Conservative estimate of this instance's heap footprint, a pure
  /// function of logical state (sizes, not capacities) so restored and
  /// uninterrupted replicas report the same value — what the governor
  /// accountant is fed.
  std::size_t approximate_bytes() const noexcept;

  /// Merge of the current window: exact counters summed, day sketches
  /// merged front-to-back (deterministic given the window contents).
  struct WindowReport {
    int first_day = -1;
    int last_day = -1;
    std::size_t days = 0;
    std::uint64_t handovers = 0;
    std::uint64_t failures = 0;
    std::array<Tally, 4> by_vendor{};
    std::array<Tally, 3> by_target{};
    std::map<std::uint32_t, Tally> by_district;
    /// Signaling-time quantiles (ms) of successful HOs in the window, with
    /// the certified bound the merged sketch reports.
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double quantile_rank_error = 0.0;
    std::uint64_t sketch_count = 0;
    /// Degradation visibility: window days that accumulated below kExact,
    /// the worst sampling modulus among them (1 = none sampled), and the
    /// count of window days that still carry district detail.
    std::size_t degraded_days = 0;
    std::uint32_t max_sample_modulus = 1;
    std::size_t district_detail_days = 0;
    double hof_rate() const noexcept {
      return handovers ? static_cast<double>(failures) /
                             static_cast<double>(handovers)
                       : 0.0;
    }
  };
  WindowReport report() const;

  /// Retained sketch items across the ring — the term that must stay flat
  /// for the bench's RSS assertion.
  std::size_t stored_sketch_items() const noexcept;

  /// Deterministic byte image of the full state (options, lifetime, ring,
  /// open day). Equal states produce equal bytes.
  void serialize(std::vector<std::uint8_t>& out) const;
  /// Inverse; validates structure and throws std::runtime_error on any
  /// malformed input. `offset` advances past the consumed bytes.
  static StreamAggregates deserialize(std::span<const std::uint8_t> bytes,
                                      std::size_t& offset);
  static StreamAggregates deserialize(std::span<const std::uint8_t> bytes);

 private:
  Options options_;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_failures_ = 0;
  std::uint64_t days_sealed_ = 0;
  int last_sealed_day_ = -1;
  std::map<std::uint32_t, Tally> sectors_;
  std::deque<DayStats> window_;  ///< sealed days, oldest first
  DayStats open_;                ///< the day currently accumulating
  DegradeLevel level_ = DegradeLevel::kExact;
  std::vector<DegradationEvent> events_;
  std::uint64_t events_dropped_ = 0;
  DegradePolicy degrade_policy_;  ///< not serialized; re-install on restore
};

}  // namespace tl::serve
