#pragma once

// Access Point Names and the IoT-vertical keyword heuristic (§3.1).
//
// The paper classifies devices by combining GSMA catalog attributes with
// the APN configured for the UE: APNs of IoT verticals carry recognizable
// keywords ("m2m", "smart-meter", ...). We synthesize realistic APNs per
// device and reproduce the keyword matcher.

#include <string>
#include <string_view>

#include "devices/device_type.hpp"
#include "util/rng.hpp"

namespace tl::devices {

/// Synthesizes an APN string for a device of the given ground-truth type.
/// Most M2M devices receive an IoT-vertical APN; consumer devices get the
/// generic internet APNs. A minority of M2M UEs use consumer APNs, which is
/// exactly what makes classification a heuristic.
std::string sample_apn(DeviceType type, util::Rng& rng);

/// True when the APN contains an IoT-vertical keyword.
bool is_iot_apn(std::string_view apn) noexcept;

}  // namespace tl::devices
