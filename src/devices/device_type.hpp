#pragma once

// The three device classes the paper distinguishes (§3.1, Fig. 4):
// smartphones (59.1%), M2M/IoT devices (39.8%), low-tier feature phones (1.1%).

#include <array>
#include <cstdint>
#include <string_view>

namespace tl::devices {

enum class DeviceType : std::uint8_t {
  kSmartphone = 0,
  kM2mIot,
  kFeaturePhone,
};

inline constexpr std::array<DeviceType, 3> kAllDeviceTypes{
    DeviceType::kSmartphone, DeviceType::kM2mIot, DeviceType::kFeaturePhone};

constexpr std::string_view to_string(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kSmartphone: return "Smartphone";
    case DeviceType::kM2mIot: return "M2M/IoT";
    case DeviceType::kFeaturePhone: return "Feature phone";
  }
  return "?";
}

}  // namespace tl::devices
