#pragma once

// The UE population: ~40M devices at full scale, scaled down linearly.
//
// Each UE carries its device identity (TAC -> catalog), home location
// (postcode/district, proportional to census population with market-share
// noise — the source of Fig. 5's R^2 = 0.92), SRVCC subscription, and
// per-device behaviour multipliers combining manufacturer effects with
// individual variation.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "devices/catalog.hpp"
#include "devices/device_type.hpp"
#include "geo/country.hpp"
#include "topology/rat.hpp"

namespace tl::devices {

using UeId = std::uint32_t;

struct Ue {
  UeId id = 0;
  /// Keyed hash of IMSI/IMEI — the only identity telemetry ever sees.
  std::uint64_t anon_id = 0;
  Tac tac = 0;
  DeviceType type = DeviceType::kSmartphone;
  ManufacturerId manufacturer = 0;
  topology::RatSupport rat_support = topology::RatSupport::kUpTo4G;
  geo::PostcodeId home_postcode = 0;
  geo::DistrictId home_district = 0;
  /// Whether the subscriber has the SRVCC service (HOF Cause #6 hinges on it).
  bool srvcc_subscribed = true;
  std::string apn;
  /// Per-device multipliers on HO volume and failure propensity
  /// (manufacturer effect x individual lognormal variation).
  float ho_rate_multiplier = 1.0f;
  float hof_multiplier = 1.0f;
};

struct PopulationConfig {
  std::uint32_t count = 100'000;
  /// Log-scale sigma of the per-district market-share noise; drives how far
  /// the MNO-inferred population deviates from census (Fig. 5).
  double market_noise_sigma = 0.32;
  std::uint64_t anonymization_key = 0xbeefcafe12345678ULL;
  std::uint64_t seed = 23;
};

class Population {
 public:
  static Population build(const geo::Country& country, const Catalog& catalog,
                          const PopulationConfig& config);

  std::span<const Ue> ues() const noexcept { return ues_; }
  const Ue& ue(UeId id) const { return ues_.at(id); }
  std::size_t size() const noexcept { return ues_.size(); }

  /// UEs with the given home district.
  std::span<const UeId> in_district(geo::DistrictId d) const;

  /// Share of UEs per device type (Fig. 4a check).
  std::array<double, 3> type_shares() const;

  /// Share of UEs per supported-RAT ceiling (Fig. 4b check).
  std::array<double, 4> rat_support_shares() const;

 private:
  std::vector<Ue> ues_;
  std::vector<std::vector<UeId>> by_district_;
};

}  // namespace tl::devices
