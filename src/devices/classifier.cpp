#include "devices/classifier.hpp"

#include "devices/apn.hpp"

namespace tl::devices {

DeviceType classify_device(const DeviceModel* model, std::string_view apn) noexcept {
  const bool iot_apn = is_iot_apn(apn);
  if (model == nullptr) {
    // No catalog entry: the APN is the only signal.
    return iot_apn ? DeviceType::kM2mIot : DeviceType::kSmartphone;
  }
  // The catalog's own type attribute is authoritative for phones; the APN
  // signal rescues M2M modules that the catalog lists ambiguously and
  // reclassifies retail-catalogued devices wired into IoT verticals.
  if (model->type == DeviceType::kM2mIot || iot_apn) return DeviceType::kM2mIot;
  return model->type;
}

}  // namespace tl::devices
