#include "devices/population.hpp"

#include <cmath>
#include <stdexcept>

#include "devices/apn.hpp"
#include "util/distributions.hpp"
#include "util/hash.hpp"

namespace tl::devices {

Population Population::build(const geo::Country& country, const Catalog& catalog,
                             const PopulationConfig& config) {
  if (config.count == 0) throw std::invalid_argument{"PopulationConfig: zero UEs"};
  Population pop;
  util::Rng rng = util::Rng::derive(config.seed, 0x90b5u);

  // --- Home-district weights: census population with market-share noise. ---
  const auto districts = country.districts();
  std::vector<double> district_weight(districts.size());
  for (std::size_t i = 0; i < districts.size(); ++i) {
    district_weight[i] = static_cast<double>(districts[i].population) *
                         std::exp(rng.normal(0.0, config.market_noise_sigma));
  }
  util::DiscreteSampler district_sampler{district_weight};

  // Within a district, homes follow postcode residents.
  std::vector<util::DiscreteSampler> postcode_samplers;
  postcode_samplers.reserve(districts.size());
  for (const auto& d : districts) {
    std::vector<double> w;
    w.reserve(d.postcodes.size());
    for (const geo::PostcodeId pc : d.postcodes) {
      w.push_back(static_cast<double>(country.postcode(pc).residents) + 1.0);
    }
    postcode_samplers.emplace_back(w);
  }

  util::DiscreteSampler type_sampler{kDeviceTypeShares};

  pop.ues_.reserve(config.count);
  pop.by_district_.resize(districts.size());
  for (UeId id = 0; id < config.count; ++id) {
    Ue ue;
    ue.id = id;
    ue.anon_id = util::anonymize(id, config.anonymization_key);
    ue.type = static_cast<DeviceType>(type_sampler.sample(rng));
    const DeviceModel& model = catalog.sample_model(ue.type, rng);
    ue.tac = model.tac;
    ue.manufacturer = model.manufacturer;
    ue.rat_support = model.rat_support;

    ue.home_district = static_cast<geo::DistrictId>(district_sampler.sample(rng));
    const auto& district = districts[ue.home_district];
    ue.home_postcode =
        district.postcodes[postcode_samplers[ue.home_district].sample(rng)];

    switch (ue.type) {
      case DeviceType::kSmartphone: ue.srvcc_subscribed = rng.chance(0.92); break;
      case DeviceType::kFeaturePhone: ue.srvcc_subscribed = rng.chance(0.80); break;
      case DeviceType::kM2mIot: ue.srvcc_subscribed = rng.chance(0.30); break;
    }
    ue.apn = sample_apn(ue.type, rng);

    const Manufacturer& maker = catalog.manufacturer(ue.manufacturer);
    ue.ho_rate_multiplier =
        static_cast<float>(maker.ho_multiplier * std::exp(rng.normal(0.0, 0.18)));
    ue.hof_multiplier =
        static_cast<float>(maker.hof_multiplier * std::exp(rng.normal(0.0, 0.25)));

    pop.by_district_[ue.home_district].push_back(id);
    pop.ues_.push_back(std::move(ue));
  }
  return pop;
}

std::span<const UeId> Population::in_district(geo::DistrictId d) const {
  return by_district_.at(d);
}

std::array<double, 3> Population::type_shares() const {
  std::array<double, 3> counts{};
  for (const auto& ue : ues_) counts[static_cast<std::size_t>(ue.type)] += 1.0;
  for (auto& c : counts) c /= static_cast<double>(ues_.size());
  return counts;
}

std::array<double, 4> Population::rat_support_shares() const {
  std::array<double, 4> counts{};
  for (const auto& ue : ues_) counts[static_cast<std::size_t>(ue.rat_support)] += 1.0;
  for (auto& c : counts) c /= static_cast<double>(ues_.size());
  return counts;
}

}  // namespace tl::devices
