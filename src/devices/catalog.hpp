#pragma once

// GSMA-like device catalog.
//
// The paper joins the first 8 IMEI digits (the Type Allocation Code) against
// a commercial GSMA database to recover manufacturer, device type, and
// supported RATs. This module synthesizes that database: a manufacturer
// roster with the paper's market shares and per-manufacturer behaviour
// multipliers (Fig. 11's outliers: KVD and HMD at +600% HOF rate, Simcom at
// +293% HOs per UE, Google at -27% HOF), plus a TAC-indexed model table.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "devices/device_type.hpp"
#include "topology/rat.hpp"
#include "util/rng.hpp"

namespace tl::devices {

using ManufacturerId = std::uint16_t;
using Tac = std::uint32_t;  // 8-digit Type Allocation Code

struct Manufacturer {
  ManufacturerId id = 0;
  std::string name;
  DeviceType type = DeviceType::kSmartphone;
  /// Market share within its device type.
  double share = 0.0;
  /// Behaviour multipliers vs the average device in the same district.
  double ho_multiplier = 1.0;
  double hof_multiplier = 1.0;
  /// Distribution over RatSupport {2G, 3G, 4G, 5G} for this maker's models.
  std::array<double, 4> capability_weights{0.0, 0.0, 0.5, 0.5};
};

struct DeviceModel {
  Tac tac = 0;
  ManufacturerId manufacturer = 0;
  DeviceType type = DeviceType::kSmartphone;
  topology::RatSupport rat_support = topology::RatSupport::kUpTo4G;
};

struct CatalogConfig {
  /// Approximate number of TAC entries to generate.
  std::uint32_t models = 2'000;
  std::uint64_t seed = 17;
};

class Catalog {
 public:
  static Catalog build(const CatalogConfig& config);

  std::span<const Manufacturer> manufacturers() const noexcept { return manufacturers_; }
  std::span<const DeviceModel> models() const noexcept { return models_; }

  const Manufacturer& manufacturer(ManufacturerId id) const { return manufacturers_.at(id); }

  /// TAC lookup, as the operator pipeline does with the daily GSMA dump.
  const DeviceModel* find(Tac tac) const;

  /// Samples a model of the given device type according to market shares.
  const DeviceModel& sample_model(DeviceType type, util::Rng& rng) const;

  /// The manufacturer named `name`; throws if absent.
  const Manufacturer& by_name(const std::string& name) const;

 private:
  std::vector<Manufacturer> manufacturers_;
  std::vector<DeviceModel> models_;
  std::unordered_map<Tac, std::size_t> tac_index_;
  // Per device type: model indices and their sampling weights.
  std::array<std::vector<std::size_t>, 3> models_by_type_;
  std::array<std::vector<double>, 3> model_weights_by_type_;
};

/// The paper's device-type shares (Fig. 4a).
inline constexpr std::array<double, 3> kDeviceTypeShares{0.591, 0.398, 0.011};

}  // namespace tl::devices
