#include "devices/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/distributions.hpp"

namespace tl::devices {

namespace {

using topology::RatSupport;

/// Capability mixes per device type, solved so the population marginals land
/// on the paper's Fig. 4b: overall 12.6% 2G-only, 20.1% up-to-3G, 67.2%
/// 4G/5G; smartphones 51.4% up-to-4G / 48.5% 5G; >80% of M2M and >50% of
/// feature phones at most 3G.
constexpr std::array<double, 4> kSmartphoneCaps{0.000, 0.001, 0.514, 0.485};
constexpr std::array<double, 4> kM2mCaps{0.310, 0.490, 0.170, 0.030};
constexpr std::array<double, 4> kFeatureCaps{0.250, 0.350, 0.390, 0.010};

struct Seed {
  const char* name;
  DeviceType type;
  double share;
  double ho_mult;
  double hof_mult;
  // Optional capability override (all -1 = use the type default).
  std::array<double, 4> caps{-1.0, -1.0, -1.0, -1.0};
};

/// Market roster. Shares are within-type; the Fig. 11 outliers carry their
/// measured behaviour multipliers.
constexpr Seed kRoster[] = {
    // Smartphones (Fig. 4a: Apple 54.8%, Samsung 30.2%, then the tail).
    {"Apple", DeviceType::kSmartphone, 0.548, 1.04, 1.08, {}},
    {"Samsung", DeviceType::kSmartphone, 0.302, 1.00, 1.00, {}},
    {"Motorola", DeviceType::kSmartphone, 0.045, 0.97, 1.02, {}},
    {"Google", DeviceType::kSmartphone, 0.031, 1.02, 0.73, {}},
    {"Huawei", DeviceType::kSmartphone, 0.029, 0.95, 1.05, {}},
    {"Xiaomi", DeviceType::kSmartphone, 0.020, 1.05, 1.10, {}},
    {"Oppo", DeviceType::kSmartphone, 0.012, 1.03, 1.15, {}},
    {"KVD", DeviceType::kSmartphone, 0.005, 1.45, 7.00, {0.0, 0.02, 0.90, 0.08}},
    {"OtherSmart", DeviceType::kSmartphone, 0.008, 1.00, 1.30, {}},
    // M2M/IoT: diversified; >27% outside the top-5.
    {"Simcom", DeviceType::kM2mIot, 0.180, 3.93, 1.60, {0.45, 0.40, 0.15, 0.00}},
    {"Quectel", DeviceType::kM2mIot, 0.160, 1.05, 1.05, {}},
    {"Telit", DeviceType::kM2mIot, 0.130, 0.95, 1.00, {}},
    {"SierraWireless", DeviceType::kM2mIot, 0.080, 1.10, 1.10, {}},
    {"HuaweiM2M", DeviceType::kM2mIot, 0.070, 1.00, 1.00, {}},
    {"Teltonika", DeviceType::kM2mIot, 0.060, 1.15, 1.05, {}},
    {"NetModule", DeviceType::kM2mIot, 0.050, 1.20, 1.10, {}},
    {"OtherM2M", DeviceType::kM2mIot, 0.270, 0.90, 1.00, {}},
    // Feature phones: HMD is the +600% HOF outlier.
    {"HMD", DeviceType::kFeaturePhone, 0.280, 1.10, 7.00, {}},
    {"NokiaLegacy", DeviceType::kFeaturePhone, 0.220, 0.90, 1.20, {}},
    {"Alcatel", DeviceType::kFeaturePhone, 0.180, 0.95, 1.30, {}},
    {"Doro", DeviceType::kFeaturePhone, 0.120, 0.85, 1.25, {}},
    {"SamsungFeature", DeviceType::kFeaturePhone, 0.080, 0.90, 1.10, {}},
    {"OtherFeature", DeviceType::kFeaturePhone, 0.120, 0.95, 1.40, {}},
};

constexpr std::array<double, 4> type_default_caps(DeviceType t) {
  switch (t) {
    case DeviceType::kSmartphone: return kSmartphoneCaps;
    case DeviceType::kM2mIot: return kM2mCaps;
    case DeviceType::kFeaturePhone: return kFeatureCaps;
  }
  return kSmartphoneCaps;
}

}  // namespace

Catalog Catalog::build(const CatalogConfig& config) {
  Catalog catalog;
  util::Rng rng = util::Rng::derive(config.seed, 0xca7au);

  for (const Seed& seed : kRoster) {
    Manufacturer m;
    m.id = static_cast<ManufacturerId>(catalog.manufacturers_.size());
    m.name = seed.name;
    m.type = seed.type;
    m.share = seed.share;
    m.ho_multiplier = seed.ho_mult;
    m.hof_multiplier = seed.hof_mult;
    const double cap_sum = seed.caps[0] + seed.caps[1] + seed.caps[2] + seed.caps[3];
    m.capability_weights = cap_sum > 0.0 ? seed.caps : type_default_caps(seed.type);
    catalog.manufacturers_.push_back(std::move(m));
  }

  // Spread TAC entries over manufacturers proportionally to share, with at
  // least a handful of models each. Model capability follows the maker's mix.
  Tac next_tac = 35'000'000;  // 8-digit codes, GSMA "35" reporting-body prefix
  for (const auto& m : catalog.manufacturers_) {
    const auto n_models = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(m.share * config.models /
                                      3.0 * kDeviceTypeShares.size()));
    util::DiscreteSampler cap_sampler{m.capability_weights};
    for (std::uint32_t i = 0; i < n_models; ++i) {
      DeviceModel model;
      model.tac = next_tac;
      next_tac += static_cast<Tac>(1 + rng.below(90));
      model.manufacturer = m.id;
      model.type = m.type;
      model.rat_support = static_cast<RatSupport>(cap_sampler.sample(rng));
      catalog.tac_index_.emplace(model.tac, catalog.models_.size());
      catalog.models_.push_back(model);
    }
  }

  // Per-type samplers: model weight = manufacturer share split evenly over
  // its models, with a mild popularity skew (flagship models dominate).
  std::array<std::vector<double>, 3> per_model_weight;
  std::array<std::uint32_t, 32> model_counts{};
  for (const auto& model : catalog.models_) model_counts[model.manufacturer]++;
  for (std::size_t i = 0; i < catalog.models_.size(); ++i) {
    const auto& model = catalog.models_[i];
    const auto& maker = catalog.manufacturers_[model.manufacturer];
    const double base = maker.share / model_counts[model.manufacturer];
    const double skew = std::exp(rng.normal(0.0, 0.8));
    const auto type_idx = static_cast<std::size_t>(model.type);
    catalog.models_by_type_[type_idx].push_back(i);
    catalog.model_weights_by_type_[type_idx].push_back(base * skew);
  }
  return catalog;
}

const DeviceModel* Catalog::find(Tac tac) const {
  const auto it = tac_index_.find(tac);
  return it == tac_index_.end() ? nullptr : &models_[it->second];
}

const DeviceModel& Catalog::sample_model(DeviceType type, util::Rng& rng) const {
  const auto type_idx = static_cast<std::size_t>(type);
  const auto& indices = models_by_type_[type_idx];
  const auto& weights = model_weights_by_type_[type_idx];
  if (indices.empty()) throw std::logic_error{"Catalog: no models for type"};
  // Linear CDF walk is fine here: sampling happens once per UE at build time
  // and the per-type model lists are short.
  double total = 0.0;
  for (const double w : weights) total += w;
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return models_[indices[i]];
  }
  return models_[indices.back()];
}

const Manufacturer& Catalog::by_name(const std::string& name) const {
  for (const auto& m : manufacturers_) {
    if (m.name == name) return m;
  }
  throw std::out_of_range{"Catalog::by_name: unknown manufacturer " + name};
}

}  // namespace tl::devices
