#include "devices/apn.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace tl::devices {

namespace {

constexpr std::array<std::string_view, 8> kIotKeywords{
    "m2m", "iot", "smart-meter", "smartmeter", "telemetry",
    "fleet", "scada", "vending",
};

constexpr std::array<std::string_view, 6> kIotApns{
    "m2m.operator.net",      "iot.operator.net",       "smart-meter.energy.net",
    "fleet.telemetry.net",   "scada.industrial.net",   "vending.m2m.net",
};

constexpr std::array<std::string_view, 4> kConsumerApns{
    "internet.operator.net",
    "web.operator.net",
    "wap.operator.net",
    "broadband.operator.net",
};

std::string to_lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::string sample_apn(DeviceType type, util::Rng& rng) {
  if (type == DeviceType::kM2mIot) {
    // ~88% of M2M devices are provisioned on vertical APNs; the rest ride
    // consumer APNs (retail SIMs in routers etc.).
    if (rng.chance(0.88)) {
      return std::string{kIotApns[rng.below(kIotApns.size())]};
    }
    return std::string{kConsumerApns[rng.below(kConsumerApns.size())]};
  }
  return std::string{kConsumerApns[rng.below(kConsumerApns.size())]};
}

bool is_iot_apn(std::string_view apn) noexcept {
  const std::string lower = to_lower(apn);
  for (const std::string_view kw : kIotKeywords) {
    if (lower.find(kw) != std::string::npos) return true;
  }
  return false;
}

}  // namespace tl::devices
