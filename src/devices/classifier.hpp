#pragma once

// Device-type classification heuristic (§3.1).
//
// Mirrors the paper's method: start from the GSMA catalog attributes for
// the device's TAC and refine with the APN keyword signal. The classifier
// is evaluated against ground truth in the test suite (it is a heuristic,
// so accuracy is high but deliberately not perfect).

#include <string_view>

#include "devices/catalog.hpp"
#include "devices/device_type.hpp"

namespace tl::devices {

/// Classifies a device given its catalog entry (may be null for unknown
/// TACs) and configured APN. Unknown TACs fall back to the APN signal alone,
/// defaulting to smartphone — the dominant class.
DeviceType classify_device(const DeviceModel* model, std::string_view apn) noexcept;

}  // namespace tl::devices
