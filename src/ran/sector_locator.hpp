#pragma once

// Serving/target sector location on the deployment.
//
// Extracted from the simulator's hot loop so the handover policy engine
// (src/policy) shares the exact lookup the calibrated pipeline uses: the
// baseline policy replays locate() verbatim (same RNG draws, same energy /
// fault semantics), while measurement-driven policies enumerate candidates()
// — a deterministic, draw-free view of the same neighborhood.

#include <vector>

#include "devices/population.hpp"
#include "faults/fault_schedule.hpp"
#include "ran/target_selection.hpp"
#include "topology/deployment.hpp"
#include "topology/energy_saving.hpp"
#include "util/geo_point.hpp"
#include "util/rng.hpp"

namespace tl::ran {

class SectorLocator {
 public:
  SectorLocator(const topology::Deployment& deployment, const TargetSelector& selector,
                const topology::EnergySavingPolicy& energy) noexcept
      : deployment_(deployment), selector_(selector), energy_(energy) {}

  /// Borrowed fault schedule (nullptr clears). Faulted sectors suppress
  /// their site in locate() and are excluded from candidates().
  void set_fault_schedule(const faults::FaultSchedule* schedule) noexcept {
    faults_ = schedule;
  }
  const faults::FaultSchedule* fault_schedule() const noexcept { return faults_; }

  /// Serving/target sector on the site nearest `position` for the UE's RAT
  /// class, honoring the energy-saving schedule. kInvalidSector if none.
  ///
  /// Moved verbatim from Simulator::locate_sector: the byte-identity of the
  /// calibrated record stream depends on this call's RNG-draw sequence
  /// (TargetSelector::pick_sector per candidate site) staying fixed.
  topology::SectorId locate(const util::GeoPoint& position, topology::ObservedRat rat_class,
                            const devices::Ue& ue, int day, int bin, util::Rng& rng) const;

  /// Deterministic candidate enumeration for measurement-driven policies:
  /// every sector of `rat_class` the UE supports on the `max_sites` nearest
  /// sites that could execute a handover right now — active, or a sleeping
  /// booster that would wake for the HO; faulted sectors are excluded, like
  /// locate()'s outage veto. Consumes no RNG draws, and the order (site
  /// proximity, then site-local sector order) is stable, so policies that
  /// rank candidates stay seed-deterministic. Appends to `out` (cleared
  /// first).
  void candidates(const util::GeoPoint& position, topology::ObservedRat rat_class,
                  const devices::Ue& ue, int day, int bin, std::size_t max_sites,
                  std::vector<topology::SectorId>& out) const;

 private:
  const topology::Deployment& deployment_;
  const TargetSelector& selector_;
  const topology::EnergySavingPolicy& energy_;
  const faults::FaultSchedule* faults_ = nullptr;
};

}  // namespace tl::ran
