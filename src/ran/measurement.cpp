#include "ran/measurement.hpp"

namespace tl::ran {

bool a2_fires(const MobilityConfig& config, const CellMeasurement& serving) noexcept {
  return serving.rsrp_dbm + config.hysteresis_db < config.a2_threshold_dbm;
}

bool a3_fires(const MobilityConfig& config, const CellMeasurement& serving,
              const CellMeasurement& neighbor) noexcept {
  return neighbor.rsrp_dbm > serving.rsrp_dbm + config.a3_offset_db + config.hysteresis_db;
}

TriggerEvent evaluate_report(const MobilityConfig& config, const MeasurementReport& report,
                             CellMeasurement* best_neighbor) {
  const CellMeasurement* best = nullptr;
  for (const auto& n : report.neighbors) {
    if (a3_fires(config, report.serving, n) &&
        (best == nullptr || n.rsrp_dbm > best->rsrp_dbm)) {
      best = &n;
    }
  }
  if (best != nullptr) {
    if (best_neighbor != nullptr) *best_neighbor = *best;
    return TriggerEvent::kA3;
  }
  if (a2_fires(config, report.serving)) return TriggerEvent::kA2;
  return TriggerEvent::kNone;
}

}  // namespace tl::ran
