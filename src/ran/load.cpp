#include "ran/load.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"

namespace tl::ran {

double LoadModel::utilization(const topology::RadioSector& sector, int day,
                              int half_hour_bin) const noexcept {
  const double diurnal = activity_.weight(day, half_hour_bin, sector.area_type);
  // Stable per-sector busy factor: urban sectors run hotter (dense areas
  // saturate at peak, the mechanism behind Cause #4 claiming 42% of urban
  // failures), rural ones rarely approach capacity.
  const double u01 =
      static_cast<double>(util::anonymize(sector.id, seed_ ^ 0x10adULL)) /
      static_cast<double>(~0ULL);
  const double busy = sector.area_type == geo::AreaType::kUrban ? 0.50 + 1.05 * u01
                                                                : 0.40 + 0.55 * u01;
  // Per-(sector, day, bin) jitter, deterministic.
  const double jitter_u01 =
      static_cast<double>(util::anonymize(
          sector.id * 977ULL + static_cast<std::uint64_t>(day) * 53ULL +
              static_cast<std::uint64_t>(half_hour_bin),
          seed_)) /
      static_cast<double>(~0ULL);
  const double jitter = 0.9 + 0.2 * jitter_u01;
  return diurnal * busy * jitter / static_cast<double>(sector.capacity);
}

double LoadModel::overload_rejection_probability(double utilization) noexcept {
  constexpr double kSoftThreshold = 0.92;
  if (utilization <= kSoftThreshold) return 0.0;
  // Quadratic ramp above the soft threshold, saturating at 60%.
  const double over = utilization - kSoftThreshold;
  return std::min(0.60, 4.0 * over * over + 0.25 * over);
}

}  // namespace tl::ran
