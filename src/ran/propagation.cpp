#include "ran/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace tl::ran {

RadioParams radio_params(topology::Rat rat) noexcept {
  switch (rat) {
    case topology::Rat::kG2: return {44.0, 900.0, 3.3, 7.0};
    case topology::Rat::kG3: return {43.0, 2100.0, 3.6, 7.0};
    case topology::Rat::kG4: return {46.0, 1800.0, 3.6, 6.0};
    case topology::Rat::kG5Nr: return {47.0, 3500.0, 3.9, 6.0};
  }
  return {};
}

double reference_path_loss_db(double frequency_mhz) noexcept {
  // Free-space loss at d0 = 1 km: 32.45 + 20 log10(f_MHz) + 20 log10(d_km).
  return 32.45 + 20.0 * std::log10(frequency_mhz);
}

double path_loss_db(const RadioParams& params, double distance_km) noexcept {
  const double d = std::max(distance_km, 0.01);  // near-field clamp
  return reference_path_loss_db(params.frequency_mhz) +
         10.0 * params.path_loss_exponent * std::log10(d);
}

double rsrp_dbm(const RadioParams& params, double distance_km, util::Rng& rng) noexcept {
  return params.tx_power_dbm - path_loss_db(params, distance_km) +
         rng.normal(0.0, params.shadowing_sigma_db);
}

double median_rsrp_dbm(const RadioParams& params, double distance_km) noexcept {
  return params.tx_power_dbm - path_loss_db(params, distance_km);
}

double rsrq_db(double rsrp_dbm_value, double cell_load) noexcept {
  // RSRQ = N * RSRP / RSSI; model RSSI growth with load as up to 10 dB of
  // interference-and-traffic rise over an unloaded cell.
  const double load = std::clamp(cell_load, 0.0, 1.0);
  return -10.8 + (rsrp_dbm_value + 95.0) * 0.08 - 10.0 * load * 0.6;
}

double coverage_threshold_dbm(topology::Rat rat) noexcept {
  switch (rat) {
    case topology::Rat::kG2: return -108.0;
    case topology::Rat::kG3: return -106.0;
    case topology::Rat::kG4: return -110.0;
    case topology::Rat::kG5Nr: return -105.0;
  }
  return -110.0;
}

double cell_radius_km(topology::Rat rat) noexcept {
  const RadioParams p = radio_params(rat);
  const double budget_db =
      p.tx_power_dbm - coverage_threshold_dbm(rat) - reference_path_loss_db(p.frequency_mhz);
  return std::pow(10.0, budget_db / (10.0 * p.path_loss_exponent));
}

}  // namespace tl::ran
