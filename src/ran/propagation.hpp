#pragma once

// Radio propagation: log-distance path loss with lognormal shadowing, and
// the RSRP/RSRQ measurements the UE reports (§2). Used directly by the
// measurement-event machinery and, at country scale, distilled once into
// per-postcode coverage profiles.

#include "topology/rat.hpp"
#include "util/geo_point.hpp"
#include "util/rng.hpp"

namespace tl::ran {

/// Per-RAT radio parameters; carrier frequency drives the path-loss anchor.
struct RadioParams {
  double tx_power_dbm = 46.0;     // typical macro sector EIRP
  double frequency_mhz = 1800.0;  // carrier
  double path_loss_exponent = 3.6;
  double shadowing_sigma_db = 6.0;
};

/// Canonical parameters per RAT: 2G at 900 MHz propagates farthest; 5G-NR
/// at 3.5 GHz has the tightest cells.
RadioParams radio_params(topology::Rat rat) noexcept;

/// Free-space path loss at the 1 km reference distance for `frequency_mhz`.
double reference_path_loss_db(double frequency_mhz) noexcept;

/// Log-distance path loss (dB) at `distance_km`, without shadowing.
double path_loss_db(const RadioParams& params, double distance_km) noexcept;

/// RSRP (dBm) at `distance_km` including a shadowing draw.
double rsrp_dbm(const RadioParams& params, double distance_km, util::Rng& rng) noexcept;

/// Deterministic (median) RSRP, for coverage-profile construction.
double median_rsrp_dbm(const RadioParams& params, double distance_km) noexcept;

/// Approximate RSRQ (dB) from RSRP and a cell-load-driven interference
/// level in [0, 1].
double rsrq_db(double rsrp_dbm_value, double cell_load) noexcept;

/// Minimum usable RSRP per RAT (below it the sector is out of coverage).
double coverage_threshold_dbm(topology::Rat rat) noexcept;

/// Effective cell radius: distance at which the median RSRP crosses the
/// coverage threshold.
double cell_radius_km(topology::Rat rat) noexcept;

}  // namespace tl::ran
