#pragma once

// Sector load model: diurnal utilization per sector driving RSRQ, the
// target-overload failure cause (#4 — "load on target sector is too high"),
// and the peak-hour concentration of urban HOFs.

#include "mobility/activity.hpp"
#include "topology/sector.hpp"
#include "util/rng.hpp"

namespace tl::ran {

class LoadModel {
 public:
  LoadModel(const mobility::ActivityModel& activity, std::uint64_t seed)
      : activity_(activity), seed_(seed) {}

  /// Utilization of `sector` in [0, ~1.3] for a half-hour bin: diurnal
  /// activity scaled by the sector's capacity and a stable per-sector busy
  /// factor, plus small per-bin noise. Values above 1.0 mean overload.
  double utilization(const topology::RadioSector& sector, int day,
                     int half_hour_bin) const noexcept;

  /// Probability that an incoming HO is rejected for load (Cause #4 input).
  /// Zero below the soft threshold, rising steeply as the target saturates.
  static double overload_rejection_probability(double utilization) noexcept;

 private:
  const mobility::ActivityModel& activity_;
  std::uint64_t seed_;
};

}  // namespace tl::ran
