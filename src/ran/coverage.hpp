#pragma once

// Per-postcode coverage profiles.
//
// The micro-level radio machinery (propagation + A2/A3) is exact but too
// slow to evaluate per handover at country scale. This module distills the
// deployment once into per-postcode profiles: RAT availability, 4G/5G
// sector density, typical signal quality, and — the load-bearing quantity —
// the probability that a 4G/5G-capable UE's handover falls back to 3G/2G
// there. Fallback probabilities are calibrated so the national, volume-
// weighted shares land on Table 2 (5.86% to 3G, ~0.001% to 2G), while
// sparse rural districts reach the 26.5-58.1% extremes of Fig. 9b.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "devices/device_type.hpp"
#include "geo/country.hpp"
#include "topology/deployment.hpp"

namespace tl::ran {

struct CoverageProfile {
  /// Live sector availability per ground-truth RAT.
  std::array<bool, 4> has_rat{};
  /// 4G+5G sectors per square km around the postcode.
  double density_4g5g = 0.0;
  /// Median RSRP (dBm) a UE sees from the 4G layer at typical distance.
  double median_rsrp_4g_dbm = -140.0;
  /// Per-handover probability that a 4G/5G-capable smartphone falls back.
  double p_fallback_3g = 0.0;
  double p_fallback_2g = 0.0;
  /// Coverage hole: the area is essentially 4G-free, so the fallback
  /// probability is pinned high and exempt from national recalibration —
  /// these postcodes create Fig. 9b's 26.5-58.1% remote-district extremes.
  bool pinned_3g = false;
};

struct CoverageConfig {
  /// National target share of observed HOs that go 4G/5G -> 3G (Table 2).
  double target_share_3g = 0.0586;
  /// National target share of observed HOs that go 4G/5G -> 2G.
  double target_share_2g = 1e-5;
  /// Number of remote districts with anomalously high 2G fallback (Fig. 9c
  /// reports ~0.5% in 4 specific districts).
  int legacy_2g_districts = 4;
  /// Smartphone share of observed HO volume — converts the national target
  /// into the smartphone-level probability that the profiles store (M2M and
  /// feature phones apply their own multipliers on top).
  double smartphone_volume_share = 0.94;
};

class CoverageMap {
 public:
  static CoverageMap build(const geo::Country& country,
                           const topology::Deployment& deployment,
                           const CoverageConfig& config = {});

  const CoverageProfile& at(geo::PostcodeId pc) const { return profiles_.at(pc); }
  std::span<const CoverageProfile> profiles() const noexcept { return profiles_; }

  /// Device-type multiplier on the fallback probability (Table 2: M2M and
  /// feature phones on 4G almost never downgrade — their legacy siblings
  /// simply never appear in the observed dataset).
  static double device_fallback_multiplier(devices::DeviceType type) noexcept;

  /// Second calibration pass with empirical per-postcode HO volume.
  ///
  /// The build-time pass weights postcodes by residents, but realized HO
  /// volume concentrates along commute paths in dense (low-fallback) areas,
  /// and a drawn fallback only executes where a 3G target sector actually
  /// exists. The simulator probes a sample of traces, measures where events
  /// land (`total_volume`) and where a 3G target was locatable
  /// (`volume_with_3g_target`), and re-scales the fallback probabilities so
  /// the nationally *realized* share hits `target_smartphone_p`.
  void recalibrate(std::span<const double> total_volume,
                   std::span<const double> volume_with_3g_target,
                   double target_smartphone_p);

 private:
  std::vector<CoverageProfile> profiles_;
};

}  // namespace tl::ran
