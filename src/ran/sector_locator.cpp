#include "ran/sector_locator.hpp"

namespace tl::ran {

topology::SectorId SectorLocator::locate(const util::GeoPoint& position,
                                         topology::ObservedRat rat_class,
                                         const devices::Ue& ue, int day, int bin,
                                         util::Rng& rng) const {
  // Try the nearest few sites; a site may lack the requested layer.
  const auto near = deployment_.site_index().nearest_k(position, 3);
  for (const topology::SiteId site : near) {
    const auto sector = selector_.pick_sector(site, rat_class, ue, rng);
    if (!sector) continue;
    const auto& s = deployment_.sector(*sector);
    if (energy_.is_active(s, day, bin)) return *sector;
    // Inactive: an asleep booster, or a scripted outage. Fall back to any
    // active always-on sector of the same class on this site.
    for (const topology::SectorId sid : deployment_.site(site).sectors) {
      const auto& alt = deployment_.sector(sid);
      if (!alt.capacity_booster && topology::observe(alt.rat) == rat_class &&
          topology::supports(ue.rat_support, alt.rat) && energy_.is_active(alt, day, bin)) {
        return sid;
      }
    }
    // A plainly sleeping booster wakes for the HO; a faulted sector cannot —
    // the outage suppresses this site and the UE tries the next-nearest one.
    const bool faulted =
        faults_ != nullptr && !faults_->empty() && faults_->forced_off(s, day, bin);
    if (!faulted) return *sector;
  }
  return topology::kInvalidSector;
}

void SectorLocator::candidates(const util::GeoPoint& position,
                               topology::ObservedRat rat_class, const devices::Ue& ue,
                               int day, int bin, std::size_t max_sites,
                               std::vector<topology::SectorId>& out) const {
  out.clear();
  const auto near = deployment_.site_index().nearest_k(position, max_sites);
  for (const topology::SiteId site : near) {
    for (const topology::SectorId sid : deployment_.site(site).sectors) {
      const auto& s = deployment_.sector(sid);
      if (topology::observe(s.rat) != rat_class) continue;
      if (!topology::supports(ue.rat_support, s.rat)) continue;
      if (faults_ != nullptr && !faults_->empty() && faults_->forced_off(s, day, bin)) {
        continue;
      }
      // A sleeping booster wakes for the HO, so inactivity alone does not
      // disqualify a candidate — only a scripted outage (above) does.
      out.push_back(sid);
    }
  }
}

}  // namespace tl::ran
