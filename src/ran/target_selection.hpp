#pragma once

// Handover target selection: given the UE, its serving context and the local
// coverage, decide the target RAT class and the concrete target sector.
//
// Only handovers whose *source* is 4G/5G-NSA are in the paper's scope (the
// EPC observation point); the selector therefore answers "does this 4G/5G
// UE stay intra 4G/5G-NSA, or fall back to 3G/2G here?", plus the SRVCC
// voice path that underlies failure Causes #6/#7.

#include <optional>

#include "devices/population.hpp"
#include "ran/coverage.hpp"
#include "topology/deployment.hpp"
#include "topology/rat.hpp"
#include "util/rng.hpp"

namespace tl::ran {

struct TargetDecision {
  topology::ObservedRat target_rat = topology::ObservedRat::kG45Nsa;
  /// The HO is an SRVCC (packet-to-circuit voice continuity) procedure.
  bool srvcc = false;
};

class TargetSelector {
 public:
  TargetSelector(const topology::Deployment& deployment, const CoverageMap& coverage)
      : deployment_(deployment), coverage_(coverage) {}

  /// Target RAT class for a handover of `ue` occurring in postcode `pc`.
  /// `voice_active` marks an ongoing voice call (raises the SRVCC path).
  TargetDecision decide(const devices::Ue& ue, geo::PostcodeId pc, bool voice_active,
                        util::Rng& rng) const;

  /// Concrete target sector on `site` for the decided RAT class; prefers NR
  /// when the UE supports it and the site has a 5G layer. Returns nullopt if
  /// the site carries no sector of the class (caller then retries on the
  /// next-nearest site).
  std::optional<topology::SectorId> pick_sector(topology::SiteId site,
                                                topology::ObservedRat rat_class,
                                                const devices::Ue& ue,
                                                util::Rng& rng) const;

 private:
  const topology::Deployment& deployment_;
  const CoverageMap& coverage_;
};

}  // namespace tl::ran
