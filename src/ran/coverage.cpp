#include "ran/coverage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ran/propagation.hpp"

namespace tl::ran {

double CoverageMap::device_fallback_multiplier(devices::DeviceType type) noexcept {
  switch (type) {
    case devices::DeviceType::kSmartphone: return 1.0;
    case devices::DeviceType::kM2mIot: return 0.056;
    case devices::DeviceType::kFeaturePhone: return 0.10;
  }
  return 1.0;
}

void CoverageMap::recalibrate(std::span<const double> total_volume,
                              std::span<const double> volume_with_3g_target,
                              double target_smartphone_p) {
  if (total_volume.size() != profiles_.size() ||
      volume_with_3g_target.size() != profiles_.size()) {
    throw std::invalid_argument{"CoverageMap::recalibrate: volume length mismatch"};
  }
  double weight = 0.0;
  for (const double v : total_volume) weight += v;
  if (weight <= 0.0) return;
  for (int iteration = 0; iteration < 10; ++iteration) {
    // Realized national share: a drawn fallback only executes where a 3G
    // target is locatable, so only that portion of the volume counts.
    double weighted = 0.0;
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
      weighted += volume_with_3g_target[i] * profiles_[i].p_fallback_3g;
    }
    const double current = weighted / weight;
    if (current <= 0.0) return;
    const double scale = target_smartphone_p / current;
    if (std::fabs(scale - 1.0) < 0.01) break;
    for (auto& p : profiles_) {
      if (!p.pinned_3g) {
        p.p_fallback_3g = std::clamp(p.p_fallback_3g * scale, 0.0005, 0.85);
      }
      // Keep the national 2G residual proportional, except where a legacy
      // district override pinned it higher.
      if (p.p_fallback_2g < 0.0015) p.p_fallback_2g = p.p_fallback_3g * 2e-5;
    }
  }
}

CoverageMap CoverageMap::build(const geo::Country& country,
                               const topology::Deployment& deployment,
                               const CoverageConfig& config) {
  CoverageMap map;
  const auto postcodes = country.postcodes();
  map.profiles_.resize(postcodes.size());

  // --- Raw profiles from the deployment. ------------------------------------
  // A postcode is served by every site within radio range of it, not only
  // by sites planted inside its boundary (most postcodes host no site at
  // all): collect sectors over a serving disc around the centroid, sized by
  // the postcode's own extent.
  for (const auto& pc : postcodes) {
    CoverageProfile& p = map.profiles_[pc.id];
    const double radius_km =
        std::clamp(1.5 * std::sqrt(pc.area_km2 / M_PI) + 2.0, 3.0, 15.0);
    double count_4g5g = 0.0;
    for (const topology::SiteId site_id :
         deployment.site_index().query_radius(pc.centroid, radius_km)) {
      for (const topology::SectorId sid : deployment.site(site_id).sectors) {
        const auto& sector = deployment.sector(sid);
        p.has_rat[static_cast<std::size_t>(sector.rat)] = true;
        if (sector.rat == topology::Rat::kG4 || sector.rat == topology::Rat::kG5Nr) {
          count_4g5g += 1.0;
        }
      }
    }
    p.density_4g5g = count_4g5g / (M_PI * radius_km * radius_km);
    // Essentially 4G-free area: 4G-capable UEs passing through must ride
    // the legacy layers for most handovers.
    if (p.density_4g5g < 0.004 &&
        p.has_rat[static_cast<std::size_t>(topology::Rat::kG3)]) {
      p.pinned_3g = true;
    }
    // Typical serving distance scales with sector density; the median RSRP
    // follows from the 4G propagation model at that distance.
    const double typical_km =
        p.density_4g5g > 0.0 ? 0.6 / std::sqrt(p.density_4g5g)
                             : 2.0 * cell_radius_km(topology::Rat::kG4);
    p.median_rsrp_4g_dbm =
        median_rsrp_dbm(radio_params(topology::Rat::kG4), typical_km);
    // Unnormalized fallback propensity: a gentle inverse-density gradient.
    // The urban/rural contrast is deliberately mild (the paper's Fig. 12
    // shows only +32.4% more rural HOFs per active sector at peak); the
    // extreme Fig. 9b districts come from the pinned coverage holes, whose
    // volume is tiny but whose fallback share is not.
    p.p_fallback_3g =
        p.pinned_3g ? 0.55 : 0.30 + 0.70 / (1.0 + 2.0 * p.density_4g5g);
  }

  // --- Calibrate the national 3G-fallback share. ----------------------------
  // HO volume per postcode is proportional to residents; iterate scaling to
  // absorb the clamp at both ends.
  const double target_p =
      config.target_share_3g / std::max(config.smartphone_volume_share, 0.5);
  for (int iteration = 0; iteration < 6; ++iteration) {
    double weighted = 0.0;
    double weight = 0.0;
    for (const auto& pc : postcodes) {
      const double w = static_cast<double>(pc.residents) + 1.0;
      weighted += w * map.profiles_[pc.id].p_fallback_3g;
      weight += w;
    }
    const double current = weighted / weight;
    if (current <= 0.0) break;
    const double scale = target_p / current;
    if (std::fabs(scale - 1.0) < 0.005) break;
    for (auto& p : map.profiles_) {
      if (p.pinned_3g) continue;
      p.p_fallback_3g = std::clamp(p.p_fallback_3g * scale, 0.0005, 0.70);
    }
  }

  // --- 2G fallback: negligible everywhere except a handful of remote
  // districts still anchored on 2G voice coverage. ---------------------------
  for (auto& p : map.profiles_) p.p_fallback_2g = p.p_fallback_3g * 2e-5;

  // Pick the least 4G-dense districts (with 2G coverage) as the anomalies.
  std::vector<std::pair<double, geo::DistrictId>> district_density;
  for (const auto& d : country.districts()) {
    double density_sum = 0.0;
    bool any_2g = false;
    for (const geo::PostcodeId pcid : d.postcodes) {
      density_sum += map.profiles_[pcid].density_4g5g;
      any_2g = any_2g || map.profiles_[pcid].has_rat[0];
    }
    if (any_2g) {
      district_density.emplace_back(density_sum / static_cast<double>(d.postcodes.size()),
                                    d.id);
    }
  }
  std::sort(district_density.begin(), district_density.end());
  const int n_legacy =
      std::min<int>(config.legacy_2g_districts, static_cast<int>(district_density.size()));
  for (int i = 0; i < n_legacy; ++i) {
    const auto& d = country.district(district_density[static_cast<std::size_t>(i)].second);
    for (const geo::PostcodeId pcid : d.postcodes) {
      map.profiles_[pcid].p_fallback_2g = 0.002;
    }
  }
  return map;
}

}  // namespace tl::ran
