#pragma once

// UE measurement reporting and the A2/A3 trigger events (§2).
//
// When a UE attaches, it receives mobility-management configuration
// (thresholds, offsets, hysteresis). It then measures serving and neighbor
// sectors and reports when an event fires: A2 — serving signal below a
// threshold; A3 — a neighbor becomes offset-better than serving.

#include <cstdint>
#include <vector>

#include "topology/sector.hpp"

namespace tl::ran {

/// Mobility-management configuration pushed to the UE at attach.
struct MobilityConfig {
  double a2_threshold_dbm = -105.0;
  double a3_offset_db = 3.0;
  double hysteresis_db = 1.0;
  std::int32_t time_to_trigger_ms = 160;
};

struct CellMeasurement {
  topology::SectorId sector = 0;
  double rsrp_dbm = -140.0;
  double rsrq_db = -20.0;
};

/// A Measurement Report: serving-cell measurement plus neighbor entries,
/// ordered as measured (the HO decision sorts as needed).
struct MeasurementReport {
  CellMeasurement serving;
  std::vector<CellMeasurement> neighbors;
};

enum class TriggerEvent : std::uint8_t {
  kNone = 0,
  kA2,  // serving below threshold
  kA3,  // neighbor offset-better than serving
};

/// Whether an A2 event fires for the serving measurement.
bool a2_fires(const MobilityConfig& config, const CellMeasurement& serving) noexcept;

/// Whether an A3 event fires for a specific neighbor.
bool a3_fires(const MobilityConfig& config, const CellMeasurement& serving,
              const CellMeasurement& neighbor) noexcept;

/// Evaluates a full report: returns the triggering event and, for A3, the
/// best offset-better neighbor (written to `best_neighbor`).
TriggerEvent evaluate_report(const MobilityConfig& config, const MeasurementReport& report,
                             CellMeasurement* best_neighbor);

}  // namespace tl::ran
