#include "ran/target_selection.hpp"

#include <vector>

namespace tl::ran {

using topology::ObservedRat;
using topology::Rat;

TargetDecision TargetSelector::decide(const devices::Ue& ue, geo::PostcodeId pc,
                                      bool voice_active, util::Rng& rng) const {
  const CoverageProfile& profile = coverage_.at(pc);
  const double mult = CoverageMap::device_fallback_multiplier(ue.type);

  TargetDecision decision;

  // Voice raises the fallback pressure: where VoLTE coverage is thin the
  // network moves active calls to the circuit-switched 3G layer via SRVCC.
  const double voice_boost =
      voice_active && profile.has_rat[static_cast<std::size_t>(Rat::kG3)] ? 1.6 : 1.0;

  const double u = rng.uniform();
  if (u < profile.p_fallback_2g * mult &&
      profile.has_rat[static_cast<std::size_t>(Rat::kG2)]) {
    decision.target_rat = ObservedRat::kG2;
  } else if (u < (profile.p_fallback_2g + profile.p_fallback_3g * voice_boost) * mult &&
             profile.has_rat[static_cast<std::size_t>(Rat::kG3)]) {
    decision.target_rat = ObservedRat::kG3;
    // A fallback carrying an active call is executed as SRVCC (PS -> CS).
    decision.srvcc = voice_active;
  } else {
    decision.target_rat = ObservedRat::kG45Nsa;
  }
  return decision;
}

std::optional<topology::SectorId> TargetSelector::pick_sector(topology::SiteId site_id,
                                                              ObservedRat rat_class,
                                                              const devices::Ue& ue,
                                                              util::Rng& rng) const {
  const auto& site = deployment_.site(site_id);
  std::vector<topology::SectorId> candidates;
  std::vector<topology::SectorId> nr_candidates;
  for (const topology::SectorId sid : site.sectors) {
    const auto& sector = deployment_.sector(sid);
    if (topology::observe(sector.rat) != rat_class) continue;
    if (sector.rat == Rat::kG5Nr) {
      if (topology::supports(ue.rat_support, Rat::kG5Nr)) nr_candidates.push_back(sid);
      continue;
    }
    candidates.push_back(sid);
  }
  // EN-DC: a 5G-capable UE on a site with an NR layer anchors there.
  if (!nr_candidates.empty() && rng.chance(0.8)) {
    return nr_candidates[rng.below(nr_candidates.size())];
  }
  if (!candidates.empty()) return candidates[rng.below(candidates.size())];
  if (!nr_candidates.empty()) return nr_candidates[rng.below(nr_candidates.size())];
  return std::nullopt;
}

}  // namespace tl::ran
