#pragma once

// Crash-consistent durable persistence for the handover record stream.
//
// The operator-side pipeline ingests ~8 TB of signaling records per day;
// partial writes, torn files, and mid-run process death are operational
// reality there. This module makes the bytes on disk trustworthy:
//
//  - RecordLog: a segmented, length-prefixed, CRC32C-framed binary
//    write-ahead log of HandoverRecords. Records buffer in memory for the
//    current study day; commit_day() appends the day's record frames plus a
//    *day commit marker* (which embeds an opaque application checkpoint),
//    then flushes and fsyncs — the marker hitting disk IS the commit point.
//  - Recovery: open() scans segments front to back, stops at the first
//    invalid byte (bad CRC, truncated frame, torn header), truncates the
//    log back to the last committed day marker, and reports exactly what
//    was dropped. The surviving log is always a committed-day prefix of an
//    uninterrupted run — byte-identical to it, which the chaos harness
//    (tests/test_durability.cpp) proves across seeded kill schedules.
//  - Replay: a reader that streams the committed records back through the
//    ordinary RecordSink interface, so every existing analysis entry point
//    consumes a recovered log exactly like a live simulation.
//  - Tail-follow: an incremental reader (LogCursor + follow()) for a
//    long-running consumer that polls the log while a writer is still
//    appending. It delivers whole committed days exactly once, and tells
//    pending tail bytes (an in-flight commit that may yet complete) apart
//    from torn ones (provably invalid; only the writer's recovery may
//    truncate them). The serve-mode WalTailer is built on this.
//
// Retention: the chain may start at any index (segments before a durable
// consumer cursor can be deleted); recovery and replay accept a contiguous
// chain wal-<base>..wal-<n> and adopt the cumulative record count from the
// first day marker when base > 0.
//
// All I/O goes through io::FileSystem so the chaos harness can inject
// short writes, EIO, failed fsyncs, and hard crash points underneath.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "govern/governor.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "telemetry/sinks.hpp"

namespace tl::telemetry {

/// What open() found and did. After a clean shutdown the dropped_* fields
/// are zero; after a torn tail they say how much un-committed data the
/// recovery discarded (the resumed run regenerates it deterministically).
struct LogRecoveryReport {
  bool log_existed = false;
  int last_committed_day = -1;          // -1: nothing committed yet
  std::uint64_t committed_records = 0;  // record frames behind the last marker
  std::uint64_t dropped_bytes = 0;      // torn/uncommitted bytes truncated away
  std::uint64_t dropped_records = 0;    // complete record frames among them
  std::vector<std::uint8_t> app_state;  // checkpoint embedded in the last marker
};

/// Position of an incremental reader in the segment chain. A fresh cursor
/// sits at the chain base with nothing consumed; otherwise the offset sits
/// just past the newest *committed* day marker delivered — follow() never
/// rests a cursor inside a segment with nothing committed, so `segment`
/// always pins the segment holding that marker (and retention strictly
/// behind it can never strand a writer's recovery without its day
/// high-water mark). Writer recovery never truncates behind the last
/// committed marker, so a persisted cursor stays valid across crashes.
struct LogCursor {
  std::uint32_t segment = 0;   ///< segment index (as in the file name)
  std::uint64_t offset = 0;    ///< byte offset within that segment
  int day = -1;                ///< last day delivered through this cursor
  std::uint64_t records = 0;   ///< cumulative committed records through `day`
  /// A cursor that has never touched the log (follow() will position it at
  /// the chain base, wherever retention left that).
  bool fresh() const noexcept { return day == -1 && offset == 0; }
  friend bool operator==(const LogCursor&, const LogCursor&) = default;
};

/// What the tail looked like when follow() stopped.
enum class TailState : std::uint8_t {
  kClean = 0,  ///< cursor is at the committed end; no bytes follow
  kPending,    ///< well-formed but incomplete bytes follow (a commit may be
               ///< in flight — or a crashed writer; bytes alone cannot tell,
               ///< only the writer's recovery may truncate)
  kTorn,       ///< provably invalid bytes follow (bad CRC on a complete
               ///< frame, bad length, foreign frame type): they can never
               ///< become a valid commit; writer recovery will drop them
  kMore,       ///< stopped at max_days with committed data still unread
  kQuarantined,  ///< caught up, but quarantined segments were skipped on the
                 ///< way: the stream is certified-degraded, not complete
};

const char* to_string(TailState state) noexcept;

/// Knobs for follow() beyond the cursor itself.
struct FollowOptions {
  /// Days delivered per call before reporting kMore.
  std::uint64_t max_days = UINT64_MAX;
  /// Sealed segments certified lost by storage integrity (both replicas
  /// damaged; ascending, as produced by LogIntegrity). follow() skips them
  /// without reading a byte, adopts the next surviving marker's cumulative
  /// total, and reports the skipped range — days_quarantined /
  /// records_quarantined are exact whenever the anchor markers survive.
  std::span<const std::uint32_t> quarantined;
};

struct TailReadResult {
  TailState state = TailState::kClean;
  std::uint64_t days_delivered = 0;
  std::uint64_t records_delivered = 0;
  /// Checkpoint payload embedded in the newest marker delivered (empty when
  /// none was, or the writer committed without app state).
  std::vector<std::uint8_t> last_app_state;
  /// Quarantine accounting for this call (non-zero only when quarantined
  /// segments were actually skipped between the cursor and the end).
  bool quarantine_skipped = false;   ///< at least one segment was skipped
  std::uint64_t days_quarantined = 0;
  std::uint64_t records_quarantined = 0;
  bool quarantine_exact = true;  ///< false when an anchor marker is missing
  int quarantine_first_day = -1;
  int quarantine_last_day = -1;
};

class RecordLog {
 public:
  struct Options {
    std::string directory;
    /// Commit-aligned segment roll threshold: a segment that reaches this
    /// size after a commit is sealed and a fresh one is started.
    std::uint64_t max_segment_bytes = 64ull << 20;
    /// Commits stream the day buffer in chunks of this size, so a crash can
    /// land between any two chunks (more torn-write surface for chaos).
    std::size_t write_chunk_bytes = 4096;
    /// Opt-in segment mirroring: when set, every segment is copied here at
    /// seal time (tmp + fsync + rename, read back and CRC-verified), and
    /// open() first runs a storage-integrity pass — restoring any damaged
    /// sealed primary from its clean mirror (and catching the mirror up)
    /// BEFORE recovery scans the chain, so a single-copy latent defect
    /// never costs committed days. The active tail segment is not mirrored
    /// (its torn-tail story is recovery + deterministic regeneration).
    std::string mirror_directory;
  };

  /// `fs` is borrowed and must outlive the log.
  RecordLog(io::FileSystem& fs, Options options);
  ~RecordLog();

  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Recovers the on-disk state (creating the directory and first segment
  /// if absent) and arms the writer. Must be called before append/commit;
  /// call again to re-arm after an IoError aborted a commit.
  LogRecoveryReport open();
  bool is_open() const noexcept { return open_; }
  /// Report of the most recent open().
  const LogRecoveryReport& recovery() const noexcept { return recovery_; }

  /// Buffers one record for the current day. No I/O happens here.
  void append(const HandoverRecord& record);

  /// Durably commits the buffered day: record frames + a day marker carrying
  /// `app_state` (e.g. a serialized simulator checkpoint), chunk-written,
  /// flushed and fsynced. On any I/O failure the log disarms (recovery on
  /// the next open() discards the partial commit) and the error propagates.
  /// Days must be committed in increasing order.
  void commit_day(int day, std::span<const std::uint8_t> app_state);

  /// Drops the buffered, not-yet-committed day without any I/O. The
  /// simulator's day-rollback path calls this when a day aborts after some
  /// records were already appended — otherwise the next commit_day would
  /// smuggle the aborted day's partial records into a later day's frame.
  void discard_day() noexcept;

  int last_committed_day() const noexcept { return last_committed_day_; }
  std::uint64_t committed_records() const noexcept { return committed_records_; }
  std::size_t buffered_records() const noexcept { return buffered_records_; }

  /// Streams every committed record of the log at `directory` into `sink`,
  /// calling sink.on_day_end() at each day marker — a recovered log replays
  /// into the analysis entry points exactly like a live run. Returns the
  /// number of records delivered. Uncommitted tail data is ignored (not
  /// modified; use open() to truncate it).
  static std::uint64_t replay(io::FileSystem& fs, const std::string& directory,
                              RecordSink& sink);

  /// Convenience: all committed records, in order.
  static std::vector<HandoverRecord> read_all(io::FileSystem& fs,
                                              const std::string& directory);

  /// Tail-follow: delivers every committed day between `cursor` and the end
  /// of the log into `sink` (records first, then on_day_end), advancing the
  /// cursor past each day marker as it is delivered — whole days, exactly
  /// once, across any number of calls and process restarts (persist the
  /// cursor to resume). Safe to call while a writer is appending: the day
  /// buffered past the last marker is reported as kPending, never torn and
  /// never delivered twice. Delivers at most `max_days` days per call so a
  /// supervised poll loop keeps bounded latency (kMore = call again).
  ///
  /// Throws io::IoError when the chain is corrupt in a way bytes cannot
  /// explain away (marker counts disagreeing with frames, non-monotonic
  /// days, the cursor's segment deleted from under it). Note: CRC-valid
  /// frames are trusted even before the writer's fsync; if the writer can
  /// lose committed-but-unsynced data it must regenerate the same bytes on
  /// recovery (ours does, deterministically), or the cursor waits at
  /// kPending until the tail regrows.
  static TailReadResult follow(io::FileSystem& fs, const std::string& directory,
                               LogCursor& cursor, RecordSink& sink,
                               std::uint64_t max_days = UINT64_MAX);

  /// follow() with certified-degradation support: segments listed in
  /// `options.quarantined` are skipped without being read, delivery resumes
  /// at the next surviving day, and the result carries the skipped range's
  /// exact day/record accounting (anchored on the marker totals around the
  /// hole). A call that skipped anything and would otherwise be kClean
  /// reports kQuarantined — the caller knows the stream is degraded, never
  /// wrong. Accounting for a skip whose closing anchor has not landed yet
  /// is deferred to the poll that first delivers a day past the hole.
  static TailReadResult follow(io::FileSystem& fs, const std::string& directory,
                               LogCursor& cursor, RecordSink& sink,
                               const FollowOptions& options);

  // --- wire format (exposed for tests and the design doc) ---
  static constexpr char kMagic[8] = {'T', 'L', 'W', 'A', 'L', 'O', 'G', '1'};
  static constexpr std::size_t kSegmentHeaderSize = 16;  // magic + index + crc
  static constexpr std::size_t kFrameHeaderSize = 9;     // len + crc + type
  static constexpr std::uint8_t kRecordFrame = 1;
  static constexpr std::uint8_t kDayMarkerFrame = 2;
  static constexpr std::size_t kRecordEncodedSize = 49;

  static void encode_record(const HandoverRecord& record,
                            std::vector<std::uint8_t>& out);
  /// Throws std::runtime_error on a malformed payload.
  static HandoverRecord decode_record(std::span<const std::uint8_t> payload);
  static std::string segment_name(std::uint32_t index);

 private:
  struct Scan;
  static Scan scan(io::FileSystem& fs, const std::string& directory,
                   RecordSink* sink);
  void append_frame(std::uint8_t type, std::span<const std::uint8_t> payload);
  void roll_segment();
  /// Seal-time mirroring: copies the just-sealed segment into
  /// mirror_directory (atomic + CRC-verified). No-op when mirroring is off.
  void mirror_sealed_segment(std::uint32_t index);
  void write_segment_header(io::File& file, std::uint32_t index);
  std::string segment_path(std::uint32_t index) const;
  /// Epoch-checked obs handle refresh; called at open() and commit_day()
  /// (both single-threaded boundaries). Logs outlive registry swaps.
  void resolve_obs();
  /// Epoch-checked governor accountant refresh plus day-buffer capacity
  /// sync. Same boundaries as resolve_obs; on a governor swap the counted
  /// bytes restart from zero against the new slot (the obs contract: the
  /// old governor is gone, its totals with it).
  void sync_govern_account();

  io::FileSystem& fs_;
  Options options_;
  LogRecoveryReport recovery_;
  bool open_ = false;

  std::unique_ptr<io::File> current_;  // append handle for the tail segment
  std::uint32_t segment_index_ = 0;
  std::uint64_t segment_size_ = 0;

  int last_committed_day_ = -1;
  std::uint64_t committed_records_ = 0;

  std::vector<std::uint8_t> day_buffer_;  // framed records of the open day
  std::size_t buffered_records_ = 0;

  govern::Accountant govern_account_;  // day-buffer capacity, "wal_day_buffer"
  std::uint64_t govern_epoch_ = UINT64_MAX;
  std::uint64_t accounted_bytes_ = 0;

  std::uint64_t obs_epoch_ = UINT64_MAX;
  obs::Counter obs_bytes_;
  obs::Counter obs_records_;
  obs::Counter obs_fsyncs_;
  obs::Counter obs_segments_;
  obs::Counter obs_dropped_bytes_;
  obs::Counter obs_dropped_records_;
  obs::Histogram obs_commit_seconds_;
};

/// RecordSink adapter: buffers each simulated day into a RecordLog and
/// commits it at on_day_end. When a checkpoint provider is set (the
/// simulator installs one), its bytes ride inside the day marker, making
/// "records through day D" and "resume state after day D" one atomic unit.
class DurableRecordSink final : public RecordSink {
 public:
  using CheckpointProvider = std::function<std::vector<std::uint8_t>()>;

  /// `log` is borrowed; open() it before the first simulated day.
  explicit DurableRecordSink(RecordLog& log) : log_(log) {}

  void set_checkpoint_provider(CheckpointProvider provider) {
    provider_ = std::move(provider);
  }

  void consume(const HandoverRecord& record) override { log_.append(record); }
  void on_day_end(int day) override {
    std::vector<std::uint8_t> state;
    if (provider_) state = provider_();
    log_.commit_day(day, state);
  }

  RecordLog& log() noexcept { return log_; }
  const RecordLog& log() const noexcept { return log_; }

 private:
  RecordLog& log_;
  CheckpointProvider provider_;
};

}  // namespace tl::telemetry
