#pragma once

// Ping-pong handover detection (related work §7: [15], [55]).
//
// A ping-pong (PP) HO bounces a UE from source to target and back to the
// source within a short window — wasted signaling plus two service
// interruptions. The paper's related work measures PP on operator data; we
// reproduce the detector as a streaming sink and expose the knobs those
// studies sweep (the return-window threshold).

#include <cstdint>
#include <unordered_map>

#include "telemetry/sinks.hpp"

namespace tl::telemetry {

class PingPongDetector : public RecordSink {
 public:
  /// `window_ms`: maximum time between the outbound HO and the return HO
  /// for the pair to count as a ping-pong (commonly a few seconds).
  explicit PingPongDetector(util::TimestampMs window_ms = 5'000)
      : window_ms_(window_ms) {}

  void consume(const HandoverRecord& record) override;

  std::uint64_t total_handovers() const noexcept { return total_; }
  std::uint64_t ping_pongs() const noexcept { return ping_pongs_; }
  double ping_pong_rate() const noexcept {
    return total_ ? static_cast<double>(ping_pongs_) / static_cast<double>(total_) : 0.0;
  }

  /// PP counts split by area class of the source sector.
  std::uint64_t ping_pongs_in(geo::AreaType area) const noexcept {
    return by_area_[static_cast<std::size_t>(area)];
  }

  /// Wasted signaling time (ms) spent on the returning leg of PP pairs.
  double wasted_signaling_ms() const noexcept { return wasted_ms_; }

  util::TimestampMs window_ms() const noexcept { return window_ms_; }

 private:
  struct LastHo {
    topology::SectorId source = 0;
    topology::SectorId target = 0;
    util::TimestampMs time = 0;
  };

  util::TimestampMs window_ms_;
  std::unordered_map<std::uint64_t, LastHo> last_by_ue_;
  std::uint64_t total_ = 0;
  std::uint64_t ping_pongs_ = 0;
  std::array<std::uint64_t, 2> by_area_{};
  double wasted_ms_ = 0.0;
};

}  // namespace tl::telemetry
