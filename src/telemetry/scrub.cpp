#include "telemetry/scrub.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/crc32c.hpp"

namespace tl::telemetry {
namespace {

// Mirrors record_log.cpp's garbage-length guard: a frame longer than this is
// a rotted length field, not a payload.
constexpr std::uint32_t kMaxFrameLen = 1u << 28;

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

bool parse_segment_index(const std::string& name, std::uint32_t& index) {
  unsigned value = 0;
  if (std::sscanf(name.c_str(), "wal-%9u.tlseg", &value) != 1) return false;
  index = static_cast<std::uint32_t>(value);
  return name == RecordLog::segment_name(index);
}

std::vector<std::uint8_t> read_file(io::FileSystem& fs, const std::string& path) {
  const std::uint64_t size = fs.file_size(path);
  std::vector<std::uint8_t> bytes(size);
  auto file = fs.open(path, io::OpenMode::kRead);
  std::size_t have = 0;
  while (have < bytes.size()) {
    const std::size_t n = file->read(bytes.data() + have, bytes.size() - have);
    if (n == 0) throw io::IoError{"scrub: short read of " + path};
    have += n;
  }
  return bytes;
}

std::string seg_path(const std::string& dir, std::uint32_t index) {
  return dir + "/" + RecordLog::segment_name(index);
}

/// Maps an audit's first defect into a SegmentDefect entry.
SegmentDefect defect_from(const SegmentAudit& a, bool in_mirror,
                          std::string detail) {
  SegmentDefect d;
  d.segment = a.index;
  d.in_mirror = in_mirror;
  if (!a.exists) {
    d.defect = DefectClass::kChainGap;
  } else if (!a.header_valid) {
    d.defect = DefectClass::kBadSegmentHeader;
    d.length = std::min<std::uint64_t>(a.size, RecordLog::kSegmentHeaderSize);
  } else if (a.has_defect) {
    d.defect = a.defect;
    d.offset = a.defect_offset;
    d.length = a.defect_length;
  } else {
    // Fully CRC-valid but not commit-terminated: a sealed segment must end
    // at a day marker (rolls are commit-aligned), so truncation ate its
    // tail without leaving an invalid byte.
    d.defect = DefectClass::kNoSealMarker;
    d.offset = a.valid_bytes;
  }
  d.detail = std::move(detail);
  return d;
}

}  // namespace

const char* to_string(DefectClass defect) noexcept {
  switch (defect) {
    case DefectClass::kBadSegmentHeader: return "bad segment header";
    case DefectClass::kBadFrameCrc: return "frame CRC mismatch";
    case DefectClass::kTruncatedFrame: return "truncated frame";
    case DefectClass::kBadFrameStructure: return "bad frame structure";
    case DefectClass::kMarkerMismatch: return "marker count mismatch";
    case DefectClass::kNoSealMarker: return "sealed segment missing its seal marker";
    case DefectClass::kChainGap: return "segment missing from chain";
    case DefectClass::kMirrorMissing: return "mirror replica missing";
    case DefectClass::kMirrorDiverged: return "mirror replica diverged";
  }
  return "?";
}

const char* to_string(RepairAction action) noexcept {
  switch (action) {
    case RepairAction::kPrimaryRestored: return "primary restored from mirror";
    case RepairAction::kMirrorRestored: return "mirror restored from primary";
    case RepairAction::kQuarantined: return "quarantined (both copies damaged)";
  }
  return "?";
}

SegmentAudit audit_segment(io::FileSystem& fs, const std::string& path,
                           std::uint32_t expect_index) {
  SegmentAudit a;
  a.index = expect_index;
  if (!fs.exists(path)) return a;
  a.exists = true;
  const std::vector<std::uint8_t> bytes = read_file(fs, path);
  a.size = bytes.size();

  if (bytes.size() < RecordLog::kSegmentHeaderSize ||
      std::memcmp(bytes.data(), RecordLog::kMagic, sizeof RecordLog::kMagic) != 0 ||
      get_u32(bytes.data() + 8) != expect_index ||
      util::unmask_crc32c(get_u32(bytes.data() + 12)) !=
          util::crc32c(bytes.data(), 12)) {
    return a;  // header_valid stays false; nothing after it is trustworthy
  }
  a.header_valid = true;
  a.valid_bytes = RecordLog::kSegmentHeaderSize;

  std::uint64_t offset = RecordLog::kSegmentHeaderSize;
  std::uint64_t records_since_marker = 0;
  auto fail = [&](DefectClass defect, std::uint64_t at, std::uint64_t len) {
    a.has_defect = true;
    a.defect = defect;
    a.defect_offset = at;
    a.defect_length = len;
  };
  while (offset < bytes.size() && !a.has_defect) {
    if (offset + RecordLog::kFrameHeaderSize > bytes.size()) {
      fail(DefectClass::kTruncatedFrame, offset, bytes.size() - offset);
      break;
    }
    const std::uint8_t* fh = bytes.data() + offset;
    const std::uint32_t len = get_u32(fh);
    const std::uint32_t stored_crc = util::unmask_crc32c(get_u32(fh + 4));
    const std::uint8_t type = fh[8];
    if (len > kMaxFrameLen) {
      fail(DefectClass::kBadFrameStructure, offset, RecordLog::kFrameHeaderSize);
      break;
    }
    if (offset + RecordLog::kFrameHeaderSize + len > bytes.size()) {
      fail(DefectClass::kTruncatedFrame, offset, bytes.size() - offset);
      break;
    }
    const std::uint8_t* payload = fh + RecordLog::kFrameHeaderSize;
    std::uint32_t crc = util::crc32c(&type, 1);
    crc = util::crc32c(payload, len, crc);
    if (crc != stored_crc) {
      fail(DefectClass::kBadFrameCrc, offset, RecordLog::kFrameHeaderSize + len);
      break;
    }
    ++a.frames;
    a.ends_at_marker = false;
    if (type == RecordLog::kRecordFrame && len == RecordLog::kRecordEncodedSize) {
      ++a.records;
      ++records_since_marker;
    } else if (type == RecordLog::kDayMarkerFrame && len >= 24 &&
               len == 24 + static_cast<std::uint64_t>(get_u32(payload + 20))) {
      const int day = static_cast<int>(get_u32(payload));
      const std::uint64_t in_day = get_u64(payload + 4);
      const std::uint64_t total = get_u64(payload + 12);
      // Within one segment the marker arithmetic is fully checkable: each
      // day's count must match the frames since the previous marker, each
      // total must advance by exactly that count, and days must ascend.
      if (in_day != records_since_marker ||
          (a.markers > 0 && (total != a.last_total + in_day || day <= a.last_day))) {
        fail(DefectClass::kMarkerMismatch, offset,
             RecordLog::kFrameHeaderSize + len);
        break;
      }
      if (a.markers == 0) {
        a.first_day = day;
        a.first_in_day = in_day;
        a.first_total = total;
      }
      ++a.markers;
      a.last_day = day;
      a.last_total = total;
      a.ends_at_marker = true;
      records_since_marker = 0;
    } else {
      fail(DefectClass::kBadFrameStructure, offset,
           RecordLog::kFrameHeaderSize + len);
      break;
    }
    offset += RecordLog::kFrameHeaderSize + len;
    a.valid_bytes = offset;
  }
  return a;
}

LogScrubber::LogScrubber(io::FileSystem& fs, ScrubOptions options)
    : fs_(fs), options_(std::move(options)) {
  if (options_.directory.empty()) {
    throw std::invalid_argument{"LogScrubber: empty directory"};
  }
}

ScrubReport LogScrubber::run() {
  ScrubReport report;
  const std::vector<std::string> names = fs_.list(options_.directory, "wal-");
  std::uint32_t lo = UINT32_MAX, hi = 0;
  for (const std::string& name : names) {
    std::uint32_t index = 0;
    if (!parse_segment_index(name, index)) continue;  // foreign file
    lo = std::min(lo, index);
    hi = std::max(hi, index);
  }
  if (lo == UINT32_MAX) return report;  // empty chain: vacuously clean
  report.base = lo;
  report.tail_index = hi;
  report.has_tail = true;
  const bool mirrored = !options_.mirror_directory.empty();

  for (std::uint32_t index = lo; index <= hi; ++index) {
    const bool sealed = index < hi;
    SegmentAudit a =
        audit_segment(fs_, seg_path(options_.directory, index), index);
    if (a.exists) {
      ++report.segments_scanned;
      report.bytes_scanned += a.size;
      report.frames_scanned += a.frames;
      report.records_scanned += a.records;
      report.markers_scanned += a.markers;
    }
    if (a.markers > 0) {
      if (report.first_day < 0) report.first_day = a.first_day;
      report.last_day = std::max(report.last_day, a.last_day);
    }
    if (sealed) {
      ++report.sealed_segments;
      if (!a.clean_sealed()) {
        report.defects.push_back(
            defect_from(a, false, seg_path(options_.directory, index)));
      } else if (!report.audits.empty() && report.audits.back().clean_sealed()) {
        // Cross-segment chain arithmetic: this segment's first marker must
        // continue the previous clean segment's cumulative total (both are
        // absolute counts, so this holds even on a retention-pruned chain).
        const SegmentAudit& prev = report.audits.back();
        if (a.first_total - a.first_in_day != prev.last_total ||
            a.first_day <= prev.last_day) {
          SegmentDefect d;
          d.segment = index;
          d.defect = DefectClass::kMarkerMismatch;
          d.detail = "first marker disagrees with " +
                     RecordLog::segment_name(prev.index) + " totals";
          report.defects.push_back(std::move(d));
        }
      }
    } else {
      // The active tail: the writer owns its irregularities. Classify like
      // follow() would — short/truncated growth is pending, anything
      // provably invalid is torn.
      report.tail_suspect_bytes = a.size - a.valid_bytes;
      if (!a.exists) {
        report.tail_state = TailState::kTorn;  // gap at the chain's end
      } else if (!a.header_valid) {
        report.tail_state = a.size < RecordLog::kSegmentHeaderSize
                                ? TailState::kPending
                                : TailState::kTorn;
        report.tail_suspect_bytes = a.size;
      } else if (a.has_defect) {
        report.tail_state = a.defect == DefectClass::kTruncatedFrame
                                ? TailState::kPending
                                : TailState::kTorn;
      } else if (a.valid_bytes == a.size && !a.ends_at_marker && a.frames > 0) {
        report.tail_state = TailState::kPending;  // day mid-commit
      } else {
        report.tail_state = TailState::kClean;
      }
    }
    report.audits.push_back(std::move(a));

    if (mirrored && sealed) {
      SegmentAudit m = audit_segment(
          fs_, seg_path(options_.mirror_directory, index), index);
      if (m.exists) {
        ++report.mirror_segments_scanned;
        report.bytes_scanned += m.size;
      }
      const SegmentAudit& p = report.audits.back();
      if (!m.exists) {
        SegmentDefect d;
        d.segment = index;
        d.in_mirror = true;
        d.defect = DefectClass::kMirrorMissing;
        d.detail = seg_path(options_.mirror_directory, index);
        report.defects.push_back(std::move(d));
      } else if (!m.clean_sealed()) {
        report.defects.push_back(
            defect_from(m, true, seg_path(options_.mirror_directory, index)));
      } else if (p.clean_sealed() &&
                 (m.size != p.size || m.last_total != p.last_total ||
                  file_crc32c(fs_, seg_path(options_.mirror_directory, index)) !=
                      file_crc32c(fs_, seg_path(options_.directory, index)))) {
        SegmentDefect d;
        d.segment = index;
        d.in_mirror = true;
        d.defect = DefectClass::kMirrorDiverged;
        d.detail = seg_path(options_.mirror_directory, index);
        report.defects.push_back(std::move(d));
      }
      report.mirror_audits.push_back(std::move(m));
    }
  }
  return report;
}

LogIntegrity::LogIntegrity(io::FileSystem& fs, ScrubOptions options)
    : fs_(fs), options_(std::move(options)) {
  if (options_.directory.empty()) {
    throw std::invalid_argument{"LogIntegrity: empty directory"};
  }
}

void LogIntegrity::resolve_obs() {
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_scrub_runs_ = {};
    obs_scrub_segments_ = {};
    obs_scrub_bytes_ = {};
    obs_scrub_defects_ = {};
    obs_repair_primary_ = {};
    obs_repair_mirror_ = {};
    obs_repair_quarantined_ = {};
    obs_repair_records_lost_ = {};
    return;
  }
  obs_scrub_runs_ = reg->counter("tl_scrub_runs_total", "Scrub passes executed");
  obs_scrub_segments_ = reg->counter("tl_scrub_segments_total",
                                     "Segment files audited by scrub");
  obs_scrub_bytes_ =
      reg->counter("tl_scrub_bytes_total", "Bytes CRC-verified by scrub");
  obs_scrub_defects_ = reg->counter("tl_scrub_defects_total",
                                    "Latent defects detected by scrub");
  obs_repair_primary_ = reg->counter(
      "tl_repair_primary_restored_total",
      "Damaged primary segments restored from their mirror replica");
  obs_repair_mirror_ = reg->counter(
      "tl_repair_mirror_restored_total",
      "Missing/damaged mirror replicas restored from their primary");
  obs_repair_quarantined_ =
      reg->counter("tl_repair_segments_quarantined_total",
                   "Sealed segments certified lost (both copies damaged)");
  obs_repair_records_lost_ =
      reg->counter("tl_repair_records_lost_total",
                   "Committed records inside quarantined day ranges");
}

IntegrityReport LogIntegrity::check_and_repair() {
  resolve_obs();
  IntegrityReport report;
  report.scrub = LogScrubber{fs_, options_}.run();
  obs_scrub_runs_.inc();
  obs_scrub_segments_.inc(report.scrub.segments_scanned +
                          report.scrub.mirror_segments_scanned);
  obs_scrub_bytes_.inc(report.scrub.bytes_scanned);
  obs_scrub_defects_.inc(report.scrub.defects.size());
  if (!report.scrub.has_tail) return report;

  const bool mirrored = !options_.mirror_directory.empty();
  // A wholly lost replica directory must not wedge mirror restoration.
  if (mirrored) fs_.create_directories(options_.mirror_directory);
  const std::uint32_t base = report.scrub.base;
  const std::uint32_t tail = report.scrub.tail_index;

  // Effective post-repair audits of the sealed chain, used below as marker
  // anchors for quarantine accounting. nullptr = segment certified lost.
  std::vector<const SegmentAudit*> effective(tail - base, nullptr);

  for (std::uint32_t index = base; index < tail; ++index) {
    const std::size_t slot = index - base;
    const SegmentAudit& p = report.scrub.audits[slot];
    const SegmentAudit* m =
        mirrored ? &report.scrub.mirror_audits[slot] : nullptr;
    const std::string primary_path = seg_path(options_.directory, index);
    const std::string mirror_path =
        mirrored ? seg_path(options_.mirror_directory, index) : std::string{};

    if (p.clean_sealed()) {
      effective[slot] = &p;
      if (mirrored &&
          (!m->clean_sealed() || m->size != p.size ||
           m->last_total != p.last_total ||
           file_crc32c(fs_, mirror_path) != file_crc32c(fs_, primary_path))) {
        RepairEvent event;
        event.action = RepairAction::kMirrorRestored;
        event.segment = index;
        event.first_day = p.first_day;
        event.last_day = p.last_day;
        event.crc32c = copy_file_atomic(fs_, primary_path, mirror_path);
        event.detail = m->exists ? "mirror diverged/damaged" : "mirror missing";
        report.events.push_back(std::move(event));
        obs_repair_mirror_.inc();
      }
      continue;
    }
    if (mirrored && m->clean_sealed()) {
      RepairEvent event;
      event.action = RepairAction::kPrimaryRestored;
      event.segment = index;
      event.first_day = m->first_day;
      event.last_day = m->last_day;
      event.crc32c = copy_file_atomic(fs_, mirror_path, primary_path);
      event.detail =
          std::string{"primary "} + to_string(defect_from(p, false, {}).defect);
      report.events.push_back(std::move(event));
      obs_repair_primary_.inc();
      // The restored primary is byte-identical to the clean mirror, so the
      // mirror's audit now describes the primary too.
      effective[slot] = m;
      continue;
    }
    // Both copies damaged (or no mirror exists to repair from): the segment
    // run is certified lost; readers skip it with exact accounting.
    report.quarantined_segments.push_back(index);
  }

  // Group contiguous quarantined segments and anchor each run's accounting
  // on the surviving neighbours' marker totals: records lost inside the run
  // = (first total after the run minus its own day's count) - (last total
  // before the run).
  const SegmentAudit* tail_audit = &report.scrub.audits.back();
  for (std::size_t i = 0; i < report.quarantined_segments.size();) {
    std::size_t j = i;
    while (j + 1 < report.quarantined_segments.size() &&
           report.quarantined_segments[j + 1] ==
               report.quarantined_segments[j] + 1) {
      ++j;
    }
    const std::uint32_t run_first = report.quarantined_segments[i];
    const std::uint32_t run_last = report.quarantined_segments[j];

    bool prev_known = false;
    std::uint64_t prev_total = 0;
    int prev_day = -1;
    if (run_first == base) {
      // Nothing survives before the run; with an unpruned chain the totals
      // still anchor at zero (the chain demonstrably started at 0 records).
      prev_known = base == 0;
    } else if (const SegmentAudit* prev = effective[run_first - 1 - base]) {
      prev_known = prev->markers > 0;
      prev_total = prev->last_total;
      prev_day = prev->last_day;
    }

    bool next_known = false;
    std::uint64_t next_first_total = 0, next_first_in_day = 0;
    int next_day = -1;
    const SegmentAudit* next = run_last + 1 == tail
                                   ? tail_audit
                                   : effective[run_last + 1 - base];
    if (next != nullptr && next->header_valid && next->markers > 0) {
      // A tail anchor is usable as long as it carries at least one marker:
      // markers only count inside the CRC-verified prefix.
      next_known = true;
      next_first_total = next->first_total;
      next_first_in_day = next->first_in_day;
      next_day = next->first_day;
    }

    RepairEvent event;
    event.action = RepairAction::kQuarantined;
    event.segment = run_first;
    event.exact = prev_known && next_known;
    if (prev_day >= 0) event.first_day = prev_day + 1;
    if (next_known) event.last_day = next_day - 1;
    if (event.exact) {
      event.records_dropped = next_first_total - next_first_in_day - prev_total;
    }
    event.detail = run_first == run_last
                       ? RecordLog::segment_name(run_first)
                       : RecordLog::segment_name(run_first) + ".." +
                             RecordLog::segment_name(run_last);
    report.records_lost += event.records_dropped;
    report.accounting_exact = report.accounting_exact && event.exact;
    if (event.first_day >= 0 &&
        (report.quarantine_first_day < 0 ||
         event.first_day < report.quarantine_first_day)) {
      report.quarantine_first_day = event.first_day;
    }
    if (event.last_day >= 0) {
      report.quarantine_last_day =
          std::max(report.quarantine_last_day, event.last_day);
    }
    obs_repair_quarantined_.inc(run_last - run_first + 1);
    obs_repair_records_lost_.inc(event.records_dropped);
    report.events.push_back(std::move(event));
    i = j + 1;
  }
  return report;
}

std::uint32_t file_crc32c(io::FileSystem& fs, const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(fs, path);
  return util::crc32c(bytes.data(), bytes.size());
}

std::uint32_t copy_file_atomic(io::FileSystem& fs, const std::string& src,
                               const std::string& dst) {
  const std::vector<std::uint8_t> bytes = read_file(fs, src);
  const std::uint32_t want = util::crc32c(bytes.data(), bytes.size());
  const std::string tmp = dst + ".tmp";
  {
    auto file = fs.open(tmp, io::OpenMode::kTruncate);
    if (file->write(bytes.data(), bytes.size()) != bytes.size()) {
      throw io::IoError{"segment copy short write: " + tmp};
    }
    file->sync();
    file->close();
  }
  fs.rename(tmp, dst);
  // Trust nothing: the repair is only a repair if the bytes now on disk
  // hash back to the source. (Also catches a transient read fault having
  // forged the source bytes we copied.)
  const std::uint32_t got = file_crc32c(fs, dst);
  if (got != want) {
    throw io::IoError{"segment copy verification failed: " + dst};
  }
  return got;
}

}  // namespace tl::telemetry
