#include "telemetry/record_log.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <algorithm>

#include "obs/scoped_timer.hpp"
#include "telemetry/scrub.hpp"
#include "util/crc32c.hpp"

namespace tl::telemetry {
namespace {

// Frames larger than this are assumed to be garbage lengths read from a torn
// header, not real payloads (a full bench-scale day is far smaller).
constexpr std::uint32_t kMaxFrameLen = 1u << 28;

void put_u8(std::vector<std::uint8_t>& v, std::uint8_t x) { v.push_back(x); }
void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}
void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Writes `data` in `chunk` slices, treating any short write as a failed
/// durable write (ENOSPC-style): the commit must not pretend it happened.
void write_fully(io::File& file, std::span<const std::uint8_t> data,
                 std::size_t chunk) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n = std::min(chunk, data.size() - offset);
    const std::size_t written = file.write(data.data() + offset, n);
    if (written < n) {
      throw io::IoError{"record log: short write (device full?)"};
    }
    offset += n;
  }
}

struct VectorSink final : RecordSink {
  std::vector<HandoverRecord> records;
  void consume(const HandoverRecord& record) override { records.push_back(record); }
};

/// Recovers the segment index from a file name, accepting only names this
/// module itself would produce (round-trip check).
bool parse_segment_index(const std::string& name, std::uint32_t& index) {
  unsigned value = 0;
  if (std::sscanf(name.c_str(), "wal-%9u.tlseg", &value) != 1) return false;
  index = static_cast<std::uint32_t>(value);
  return name == RecordLog::segment_name(index);
}

}  // namespace

const char* to_string(TailState state) noexcept {
  switch (state) {
    case TailState::kClean: return "clean";
    case TailState::kPending: return "pending";
    case TailState::kTorn: return "torn";
    case TailState::kMore: return "more";
    case TailState::kQuarantined: return "quarantined";
  }
  return "?";
}

RecordLog::RecordLog(io::FileSystem& fs, Options options)
    : fs_(fs), options_(std::move(options)) {
  if (options_.directory.empty()) {
    throw std::invalid_argument{"RecordLog: empty directory"};
  }
  if (options_.write_chunk_bytes == 0) options_.write_chunk_bytes = 4096;
  if (options_.max_segment_bytes < kSegmentHeaderSize + kFrameHeaderSize) {
    throw std::invalid_argument{"RecordLog: max_segment_bytes too small"};
  }
}

RecordLog::~RecordLog() { govern_account_.sub(accounted_bytes_); }

std::string RecordLog::segment_name(std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%05u.tlseg", index);
  return buf;
}

std::string RecordLog::segment_path(std::uint32_t index) const {
  return options_.directory + "/" + segment_name(index);
}

void RecordLog::resolve_obs() {
  const std::uint64_t epoch = obs::global_epoch();
  if (epoch == obs_epoch_) return;
  obs_epoch_ = epoch;
  obs::MetricsRegistry* reg = obs::global_registry();
  if (reg == nullptr) {
    obs_bytes_ = obs::Counter{};
    obs_records_ = obs::Counter{};
    obs_fsyncs_ = obs::Counter{};
    obs_segments_ = obs::Counter{};
    obs_dropped_bytes_ = obs::Counter{};
    obs_dropped_records_ = obs::Counter{};
    obs_commit_seconds_ = obs::Histogram{};
    return;
  }
  obs_bytes_ = reg->counter("tl_wal_bytes_total",
                            "Bytes durably committed to the record log");
  obs_records_ = reg->counter("tl_wal_records_total",
                              "Record frames durably committed");
  obs_fsyncs_ = reg->counter("tl_wal_fsyncs_total", "fsync calls issued");
  obs_segments_ = reg->counter("tl_wal_segments_total",
                               "Segment files created (rolls + fresh opens)");
  obs_dropped_bytes_ =
      reg->counter("tl_wal_recovery_dropped_bytes_total",
                   "Uncommitted bytes truncated away during recovery");
  obs_dropped_records_ =
      reg->counter("tl_wal_recovery_dropped_records_total",
                   "Complete record frames dropped during recovery");
  obs_commit_seconds_ =
      reg->histogram("tl_wal_commit_seconds",
                     obs::MetricsRegistry::latency_edges_s(),
                     "Wall time per durable day commit (write + fsync)");
}

void RecordLog::sync_govern_account() {
  const std::uint64_t epoch = govern::global_epoch();
  if (epoch != govern_epoch_) {
    govern_epoch_ = epoch;
    govern_account_ = govern::account("wal_day_buffer");
    accounted_bytes_ = 0;
  }
  const std::uint64_t bytes = day_buffer_.capacity();
  if (bytes >= accounted_bytes_) {
    govern_account_.add(bytes - accounted_bytes_);
  } else {
    govern_account_.sub(accounted_bytes_ - bytes);
  }
  accounted_bytes_ = bytes;
}

void RecordLog::write_segment_header(io::File& file, std::uint32_t index) {
  std::vector<std::uint8_t> header;
  header.reserve(kSegmentHeaderSize);
  header.insert(header.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(header, index);
  put_u32(header, util::mask_crc32c(util::crc32c(header.data(), header.size())));
  write_fully(file, header, options_.write_chunk_bytes);
  file.sync();
  obs_segments_.inc();
  obs_fsyncs_.inc();
}

void RecordLog::append_frame(std::uint8_t type, std::span<const std::uint8_t> payload) {
  put_u32(day_buffer_, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = util::crc32c(&type, 1);
  crc = util::crc32c(payload.data(), payload.size(), crc);
  put_u32(day_buffer_, util::mask_crc32c(crc));
  put_u8(day_buffer_, type);
  day_buffer_.insert(day_buffer_.end(), payload.begin(), payload.end());
}

void RecordLog::append(const HandoverRecord& record) {
  if (!open_) throw std::logic_error{"RecordLog::append: log not open"};
  std::vector<std::uint8_t> payload;
  payload.reserve(kRecordEncodedSize);
  encode_record(record, payload);
  append_frame(kRecordFrame, payload);
  ++buffered_records_;
  // Cheap guard (capacity compare) on the hot path; the accountant is only
  // touched when the buffer actually grew.
  if (day_buffer_.capacity() != accounted_bytes_) sync_govern_account();
}

void RecordLog::commit_day(int day, std::span<const std::uint8_t> app_state) {
  if (!open_) throw std::logic_error{"RecordLog::commit_day: log not open"};
  resolve_obs();
  if (day <= last_committed_day_) {
    throw std::logic_error{"RecordLog::commit_day: day " + std::to_string(day) +
                           " already committed (last: " +
                           std::to_string(last_committed_day_) + ")"};
  }
  std::vector<std::uint8_t> marker;
  marker.reserve(24 + app_state.size());
  put_u32(marker, static_cast<std::uint32_t>(day));
  put_u64(marker, buffered_records_);
  put_u64(marker, committed_records_ + buffered_records_);
  put_u32(marker, static_cast<std::uint32_t>(app_state.size()));
  marker.insert(marker.end(), app_state.begin(), app_state.end());
  append_frame(kDayMarkerFrame, marker);

  // Disarm until the commit (and any segment roll) fully succeeds: if an
  // exception escapes below, the on-disk state is indeterminate and the
  // caller must re-open (recovery discards whatever partially landed).
  open_ = false;
  obs::ScopedTimer commit_span{obs_commit_seconds_};
  write_fully(*current_, day_buffer_, options_.write_chunk_bytes);
  current_->sync();  // the day marker reaching disk IS the commit point
  commit_span.stop();
  obs_fsyncs_.inc();
  obs_bytes_.inc(day_buffer_.size());
  obs_records_.inc(buffered_records_);

  segment_size_ += day_buffer_.size();
  committed_records_ += buffered_records_;
  last_committed_day_ = day;
  // Release the day buffer's capacity now that the day is durable: holding
  // a committed day's worth of staging forever is exactly the unbounded
  // footprint the governor exists to prevent. The swap cannot throw.
  std::vector<std::uint8_t>().swap(day_buffer_);
  sync_govern_account();
  buffered_records_ = 0;
  if (segment_size_ >= options_.max_segment_bytes) roll_segment();
  open_ = true;
}

void RecordLog::discard_day() noexcept {
  std::vector<std::uint8_t>().swap(day_buffer_);
  // noexcept path: settle the accountant directly (no epoch re-resolution,
  // which may allocate); every Accountant operation is noexcept.
  govern_account_.sub(accounted_bytes_);
  accounted_bytes_ = 0;
  buffered_records_ = 0;
}

void RecordLog::mirror_sealed_segment(std::uint32_t index) {
  if (options_.mirror_directory.empty()) return;
  copy_file_atomic(fs_, segment_path(index),
                   options_.mirror_directory + "/" + segment_name(index));
}

void RecordLog::roll_segment() {
  current_->close();
  current_.reset();
  // The seal point: the segment will never change again, so this is where
  // its durable replica is cut. A failure here propagates (the day is
  // already committed on the primary; the caller re-opens and open()'s
  // integrity pass redoes the mirror catch-up).
  mirror_sealed_segment(segment_index_);
  ++segment_index_;
  current_ = fs_.open(segment_path(segment_index_), io::OpenMode::kTruncate);
  write_segment_header(*current_, segment_index_);
  segment_size_ = kSegmentHeaderSize;
}

// --- recovery / replay -------------------------------------------------------

/// Forward scan over the segment chain. Stops at the first invalid byte —
/// truncated frame, CRC mismatch, bad header, non-contiguous segment — and
/// reports the position of the last committed day marker before it.
struct RecordLog::Scan {
  std::vector<std::string> segments;  // listing at scan time, sorted
  std::vector<std::uint64_t> sizes;   // parallel to `segments`
  std::uint32_t base = 0;             // index of the first listed segment
  bool first_header_valid = false;
  bool any_marker = false;
  std::size_t marker_seg = 0;            // listing POSITION of the last marker
  std::uint64_t marker_offset = 0;       // offset just past that marker frame
  int last_day = -1;
  std::uint64_t committed_records = 0;   // from the last marker
  std::vector<std::uint8_t> app_state;   // from the last marker
  std::uint64_t dropped_records = 0;     // complete record frames past it
};

RecordLog::Scan RecordLog::scan(io::FileSystem& fs, const std::string& directory,
                                RecordSink* sink) {
  Scan s;
  s.segments = fs.list(directory, "wal-");
  // Retention may have deleted a committed prefix of the chain: the first
  // listed name fixes the base index everything else must be contiguous
  // with. An unparseable first name means nothing in the listing is ours.
  if (!s.segments.empty() && !parse_segment_index(s.segments[0], s.base)) {
    s.base = 0;
  }
  std::uint64_t records_seen = 0;        // record frames since log start
  // With a pruned chain the records before `base` are gone; the cumulative
  // count in the first marker is adopted rather than verified. A chain from
  // index 0 has nothing before it, so its first marker is fully verified.
  bool have_total = s.base == 0;
  std::uint64_t records_since_marker = 0;
  std::vector<HandoverRecord> pending;   // decoded records of the open day

  bool torn = false;
  for (std::size_t si = 0; si < s.segments.size() && !torn; ++si) {
    const std::string path = directory + "/" + s.segments[si];
    s.sizes.push_back(fs.file_size(path));
    const std::uint32_t seg_index = s.base + static_cast<std::uint32_t>(si);
    // The chain must be contiguous wal-<base>, wal-<base+1>, ...; anything
    // else (a gap, a stray file) ends the valid prefix.
    if (s.segments[si] != segment_name(seg_index)) {
      torn = true;
      break;
    }
    auto file = fs.open(path, io::OpenMode::kRead);
    const std::uint64_t size = s.sizes[si];

    std::uint8_t header[kSegmentHeaderSize];
    if (file->read(header, sizeof header) != sizeof header ||
        std::memcmp(header, kMagic, sizeof kMagic) != 0 ||
        get_u32(header + 8) != seg_index ||
        util::unmask_crc32c(get_u32(header + 12)) != util::crc32c(header, 12)) {
      torn = true;  // torn/foreign header: this and all later segments drop
      break;
    }
    if (si == 0) s.first_header_valid = true;

    std::uint64_t offset = kSegmentHeaderSize;
    std::vector<std::uint8_t> buf;
    while (offset < size) {
      std::uint8_t fh[kFrameHeaderSize];
      if (offset + kFrameHeaderSize > size ||
          file->read(fh, sizeof fh) != sizeof fh) {
        torn = true;
        break;
      }
      const std::uint32_t len = get_u32(fh);
      const std::uint32_t stored_crc = util::unmask_crc32c(get_u32(fh + 4));
      const std::uint8_t type = fh[8];
      if (len > kMaxFrameLen || offset + kFrameHeaderSize + len > size) {
        torn = true;
        break;
      }
      buf.resize(len);
      if (file->read(buf.data(), len) != len) {
        torn = true;
        break;
      }
      std::uint32_t crc = util::crc32c(&type, 1);
      crc = util::crc32c(buf.data(), len, crc);
      if (crc != stored_crc) {
        torn = true;
        break;
      }
      if (type == kRecordFrame && len == kRecordEncodedSize) {
        ++records_seen;
        ++records_since_marker;
        if (sink != nullptr) pending.push_back(decode_record(buf));
      } else if (type == kDayMarkerFrame && len >= 24 &&
                 len == 24 + static_cast<std::uint64_t>(get_u32(buf.data() + 20))) {
        const int day = static_cast<int>(get_u32(buf.data()));
        const std::uint64_t in_day = get_u64(buf.data() + 4);
        const std::uint64_t total = get_u64(buf.data() + 12);
        if (in_day != records_since_marker ||
            (have_total && total != records_seen)) {
          // A CRC-valid marker whose counts disagree with the frames on disk
          // means a writer bug or tampering, not a torn tail: fail loudly
          // rather than silently serving a record stream of unknown shape.
          throw io::IoError{"record log corrupt: marker record counts disagree "
                            "with the frames preceding it (" +
                            path + ")"};
        }
        if (!have_total) {
          // First marker of a retention-pruned chain: adopt the cumulative
          // count (the frames it counts were deleted); verify from here on.
          records_seen = total;
          have_total = true;
        }
        s.any_marker = true;
        s.marker_seg = si;
        s.marker_offset = offset + kFrameHeaderSize + len;
        s.last_day = day;
        s.committed_records = total;
        s.app_state.assign(buf.begin() + 24, buf.end());
        records_since_marker = 0;
        if (sink != nullptr) {
          for (const auto& r : pending) sink->consume(r);
          pending.clear();
          sink->on_day_end(day);
        }
      } else {
        torn = true;  // unknown frame type or malformed marker structure
        break;
      }
      offset += kFrameHeaderSize + len;
    }
  }
  s.dropped_records = records_since_marker;
  return s;
}

LogRecoveryReport RecordLog::open() {
  resolve_obs();
  open_ = false;
  current_.reset();
  std::vector<std::uint8_t>().swap(day_buffer_);
  sync_govern_account();
  buffered_records_ = 0;

  fs_.create_directories(options_.directory);
  if (!options_.mirror_directory.empty()) {
    fs_.create_directories(options_.mirror_directory);
    // Integrity pass BEFORE the recovery scan: restore any latently damaged
    // sealed primary from its clean mirror and catch the mirror up (covers
    // a crash between seal and mirror copy). Without this, a single flipped
    // bit in a sealed segment would make scan() truncate every committed
    // day after it. Segments damaged in BOTH copies stay damaged — the
    // writer's certified fallback is truncate-and-regenerate, which the
    // scan below performs; certified *skipping* is the reader's job
    // (follow() + FollowOptions::quarantined).
    LogIntegrity{fs_, ScrubOptions{options_.directory,
                                   options_.mirror_directory}}
        .check_and_repair();
  }
  LogRecoveryReport report;

  const Scan s = scan(fs_, options_.directory, nullptr);
  report.log_existed = !s.segments.empty();
  report.last_committed_day = s.last_day;
  report.committed_records = s.committed_records;
  report.dropped_records = s.dropped_records;
  report.app_state = s.app_state;

  std::uint64_t bytes_before = 0;
  for (std::size_t i = 0; i < s.sizes.size(); ++i) bytes_before += s.sizes[i];
  // Unlisted trailing sizes (segments after a name-contiguity break) were
  // never measured; measure them now so dropped_bytes is complete.
  for (std::size_t i = s.sizes.size(); i < s.segments.size(); ++i) {
    bytes_before += fs_.file_size(options_.directory + "/" + s.segments[i]);
  }

  // Discard everything past the last committed marker: truncate the marker's
  // segment and delete every later file in the listing.
  const std::size_t keep_seg = s.any_marker ? s.marker_seg : 0;
  for (std::size_t i = s.segments.size(); i-- > keep_seg + 1;) {
    fs_.remove(options_.directory + "/" + s.segments[i]);
  }
  std::uint64_t bytes_after = 0;
  if (s.any_marker || s.first_header_valid) {
    const std::uint64_t keep =
        s.any_marker ? s.marker_offset : static_cast<std::uint64_t>(kSegmentHeaderSize);
    fs_.truncate(segment_path(s.base + static_cast<std::uint32_t>(keep_seg)), keep);
    segment_index_ = s.base + static_cast<std::uint32_t>(keep_seg);
    segment_size_ = keep;
    current_ = fs_.open(segment_path(segment_index_), io::OpenMode::kAppend);
    for (std::size_t i = 0; i < keep_seg; ++i) bytes_after += s.sizes[i];
    bytes_after += keep;
  } else {
    // Nothing usable (fresh directory, or segment 0's header itself is
    // torn): start the chain over.
    if (!s.segments.empty()) fs_.remove(options_.directory + "/" + s.segments[0]);
    segment_index_ = 0;
    current_ = fs_.open(segment_path(0), io::OpenMode::kTruncate);
    write_segment_header(*current_, 0);
    segment_size_ = kSegmentHeaderSize;
  }
  report.dropped_bytes = bytes_before - bytes_after;
  obs_dropped_bytes_.inc(report.dropped_bytes);
  obs_dropped_records_.inc(report.dropped_records);

  last_committed_day_ = s.last_day;
  committed_records_ = s.committed_records;
  // A sealed tail segment means the crash hit between a commit and its
  // roll; redo the roll so the byte layout matches an uninterrupted run.
  if (segment_size_ >= options_.max_segment_bytes) roll_segment();
  recovery_ = report;
  open_ = true;
  return report;
}

std::uint64_t RecordLog::replay(io::FileSystem& fs, const std::string& directory,
                                RecordSink& sink) {
  const Scan s = scan(fs, directory, &sink);
  return s.committed_records;
}

std::vector<HandoverRecord> RecordLog::read_all(io::FileSystem& fs,
                                                const std::string& directory) {
  VectorSink sink;
  replay(fs, directory, sink);
  return std::move(sink.records);
}

// --- tail-follow -------------------------------------------------------------

TailReadResult RecordLog::follow(io::FileSystem& fs, const std::string& directory,
                                 LogCursor& cursor, RecordSink& sink,
                                 std::uint64_t max_days) {
  FollowOptions options;
  options.max_days = max_days;
  return follow(fs, directory, cursor, sink, options);
}

TailReadResult RecordLog::follow(io::FileSystem& fs, const std::string& directory,
                                 LogCursor& cursor, RecordSink& sink,
                                 const FollowOptions& options) {
  const std::uint64_t max_days = options.max_days;
  const auto is_quarantined = [&options](std::uint32_t segment) {
    return std::binary_search(options.quarantined.begin(),
                              options.quarantined.end(), segment);
  };
  // True between skipping a quarantined segment and the next delivered
  // marker: that marker's cumulative total is adopted (with a plausibility
  // floor) instead of verified, and the gap it reveals is accounted.
  bool pending_adopt = false;
  TailReadResult result;
  const std::vector<std::string> names = fs.list(directory, "wal-");
  if (names.empty()) return result;  // no log yet: caught up by definition
  std::uint32_t base = 0;
  if (!parse_segment_index(names[0], base)) {
    result.state = TailState::kTorn;  // nothing in the listing is ours
    return result;
  }
  if (cursor.fresh()) {
    cursor.segment = base;  // start wherever retention left the chain
  } else if (cursor.segment < base) {
    throw io::IoError{"record log tail: cursor segment " +
                      segment_name(cursor.segment) +
                      " was deleted from under the reader (" + directory + ")"};
  }
  // Cumulative counts are verifiable once the cursor has consumed a marker;
  // a fresh cursor on a pruned chain adopts the first marker's total.
  bool have_total = cursor.day >= 0 || base == 0;

  // Scan position. The durable cursor itself only ever advances past a
  // consumed day marker (below) — never into a segment with nothing
  // committed — so a persisted cursor always pins the segment holding the
  // newest marker it has seen, and retention behind it cannot strand a
  // writer's recovery without a day high-water mark.
  std::uint32_t seg = cursor.segment;
  std::uint64_t pos = cursor.offset;

  while (true) {
    if (is_quarantined(seg)) {
      // Certified loss: skip the whole segment without reading a byte. The
      // durable cursor does NOT move (it only rests past delivered markers);
      // the next surviving marker both re-anchors the totals and accounts
      // for the hole. Days never span segments, so a skip always lands on a
      // day boundary — no partial day can leak out of it.
      result.quarantine_skipped = true;
      pending_adopt = true;
      if (!fs.exists(directory + "/" + segment_name(seg + 1))) {
        result.state = TailState::kQuarantined;  // hole reaches the end
        return result;
      }
      seg += 1;
      pos = 0;
      continue;
    }
    const std::string path = directory + "/" + segment_name(seg);
    if (!fs.exists(path)) {
      if (cursor.fresh()) return result;  // chain raced away; nothing to do
      throw io::IoError{"record log tail: cursor segment missing: " + path};
    }
    const std::uint64_t size = fs.file_size(path);
    auto file = fs.open(path, io::OpenMode::kRead);
    if (pos == 0) {
      // First entry into this segment: validate its header before trusting
      // any frame in it.
      if (size < kSegmentHeaderSize) {
        // Shorter than a header: the writer is mid-creation — unless a
        // successor segment exists. Segments are header-first and rolls are
        // commit-aligned, so a short segment mid-chain can never grow (a
        // crash at segment creation under ENOSPC leaves exactly this);
        // report it torn so the reader does not wait on it forever.
        result.state = fs.exists(directory + "/" + segment_name(seg + 1))
                           ? TailState::kTorn
                           : TailState::kPending;
        return result;
      }
      std::uint8_t header[kSegmentHeaderSize];
      if (file->read(header, sizeof header) != sizeof header ||
          std::memcmp(header, kMagic, sizeof kMagic) != 0 ||
          get_u32(header + 8) != seg ||
          util::unmask_crc32c(get_u32(header + 12)) != util::crc32c(header, 12)) {
        result.state = TailState::kTorn;
        return result;
      }
      pos = kSegmentHeaderSize;
    } else {
      if (pos > size) {
        // A crash rolled back bytes the writer had not fsynced past a point
        // we read optimistically. The deterministic writer will regenerate
        // the identical bytes; wait for the tail to regrow.
        result.state = TailState::kPending;
        return result;
      }
      file->seek(pos);
    }

    std::uint64_t offset = pos;
    std::vector<HandoverRecord> pending;  // records of the not-yet-marked day
    std::vector<std::uint8_t> buf;
    while (offset < size) {
      // A frame running past end-of-file is a write still in flight — but
      // only in the newest segment. Sealed segments never grow (rolls are
      // commit-aligned), so the same truncation mid-chain is damage (e.g.
      // rot in a length field) that waiting can never heal.
      const auto truncated = [&] {
        return fs.exists(directory + "/" + segment_name(seg + 1))
                   ? TailState::kTorn
                   : TailState::kPending;
      };
      std::uint8_t fh[kFrameHeaderSize];
      if (offset + kFrameHeaderSize > size ||
          file->read(fh, sizeof fh) != sizeof fh) {
        result.state = truncated();
        return result;
      }
      const std::uint32_t len = get_u32(fh);
      const std::uint32_t stored_crc = util::unmask_crc32c(get_u32(fh + 4));
      const std::uint8_t type = fh[8];
      if (len > kMaxFrameLen) {
        result.state = TailState::kTorn;  // garbage length can never heal
        return result;
      }
      if (offset + kFrameHeaderSize + len > size) {
        result.state = truncated();
        return result;
      }
      buf.resize(len);
      if (file->read(buf.data(), len) != len) {
        result.state = truncated();
        return result;
      }
      std::uint32_t crc = util::crc32c(&type, 1);
      crc = util::crc32c(buf.data(), len, crc);
      if (crc != stored_crc) {
        // A complete frame with a bad CRC is not an in-flight write — the
        // writer lays every byte down in order, so this can only be a torn
        // tail from a crash (or rot). Never deliverable.
        result.state = TailState::kTorn;
        return result;
      }
      if (type == kRecordFrame && len == kRecordEncodedSize) {
        pending.push_back(decode_record(buf));
      } else if (type == kDayMarkerFrame && len >= 24 &&
                 len == 24 + static_cast<std::uint64_t>(get_u32(buf.data() + 20))) {
        const int day = static_cast<int>(get_u32(buf.data()));
        const std::uint64_t in_day = get_u64(buf.data() + 4);
        const std::uint64_t total = get_u64(buf.data() + 12);
        if (day <= cursor.day) {
          throw io::IoError{"record log corrupt: non-monotonic day marker in " +
                            path};
        }
        if (in_day != pending.size() ||
            (!pending_adopt && have_total && total != cursor.records + in_day)) {
          throw io::IoError{"record log corrupt: marker record counts disagree "
                            "with the frames preceding it (" +
                            path + ")"};
        }
        if (pending_adopt && have_total && total < cursor.records + in_day) {
          // Even across a hole the chain can only have grown: a total below
          // what the cursor already consumed is corruption, not loss.
          throw io::IoError{"record log corrupt: marker total ran backwards "
                            "across a quarantined range (" +
                            path + ")"};
        }
        if (result.days_delivered == max_days) {
          result.state = TailState::kMore;  // committed data remains; re-poll
          return result;
        }
        // Commit point for the reader: deliver the whole day, then advance
        // the cursor past the marker — records and cursor move in lockstep,
        // so an exception anywhere above leaves both at the previous day.
        for (const HandoverRecord& r : pending) sink.consume(r);
        sink.on_day_end(day);
        pending.clear();
        if (pending_adopt) {
          // First surviving marker past a quarantined hole: its cumulative
          // total quantifies exactly what the hole swallowed. Committed
          // together with the cursor advance, so a re-poll that skips the
          // same hole never double-counts.
          if (have_total) {
            result.records_quarantined += total - in_day - cursor.records;
          } else {
            result.quarantine_exact = false;  // pruned-chain base anchor gone
          }
          if (cursor.day >= 0) {
            result.days_quarantined +=
                static_cast<std::uint64_t>(day - cursor.day - 1);
            if (result.quarantine_first_day < 0) {
              result.quarantine_first_day = cursor.day + 1;
            }
            result.quarantine_last_day = day - 1;
          } else {
            result.quarantine_exact = false;  // first lost day unknowable
          }
          pending_adopt = false;
        }
        cursor.day = day;
        cursor.records = total;
        cursor.segment = seg;
        cursor.offset = offset + kFrameHeaderSize + len;
        have_total = true;
        ++result.days_delivered;
        result.records_delivered += in_day;
        result.last_app_state.assign(buf.begin() + 24, buf.end());
      } else {
        result.state = TailState::kTorn;  // foreign frame type / bad marker
        return result;
      }
      offset += kFrameHeaderSize + len;
    }

    if (!pending.empty()) {
      // Record frames with no marker at the end of the segment: an in-flight
      // (or crashed) commit. Days never span segments — rolls are
      // commit-aligned — so a successor segment here would be structural
      // corruption, not a pending write.
      result.state = fs.exists(directory + "/" + segment_name(seg + 1))
                         ? TailState::kTorn
                         : TailState::kPending;
      return result;
    }
    const std::string next = directory + "/" + segment_name(seg + 1);
    if (!fs.exists(next)) {
      // Caught up with the writer. A clean catch-up that skipped certified
      // holes is reported as such: complete where it counts, degraded where
      // it was certified to be.
      if (result.quarantine_skipped) result.state = TailState::kQuarantined;
      return result;
    }
    seg += 1;
    pos = 0;  // validate the new header at the top of the loop
  }
}

// --- record codec ------------------------------------------------------------

void RecordLog::encode_record(const HandoverRecord& r, std::vector<std::uint8_t>& out) {
  put_u64(out, static_cast<std::uint64_t>(r.timestamp));
  put_u64(out, r.anon_user_id);
  put_u32(out, r.source_sector);
  put_u32(out, r.target_sector);
  put_u32(out, std::bit_cast<std::uint32_t>(r.duration_ms));
  put_u32(out, r.postcode);
  put_u32(out, r.district);
  put_u16(out, r.cause);
  put_u16(out, r.manufacturer);
  put_u8(out, r.success ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(r.source_rat));
  put_u8(out, static_cast<std::uint8_t>(r.target_rat));
  put_u8(out, static_cast<std::uint8_t>(r.device_type));
  put_u8(out, static_cast<std::uint8_t>(r.area));
  put_u8(out, static_cast<std::uint8_t>(r.region));
  put_u8(out, static_cast<std::uint8_t>(r.vendor));
  put_u8(out, r.srvcc ? 1 : 0);
  put_u8(out, r.attempt);
}

HandoverRecord RecordLog::decode_record(std::span<const std::uint8_t> payload) {
  if (payload.size() != kRecordEncodedSize) {
    throw std::runtime_error{"RecordLog::decode_record: bad payload size"};
  }
  const std::uint8_t* p = payload.data();
  HandoverRecord r;
  r.timestamp = static_cast<util::TimestampMs>(get_u64(p));
  r.anon_user_id = get_u64(p + 8);
  r.source_sector = get_u32(p + 16);
  r.target_sector = get_u32(p + 20);
  r.duration_ms = std::bit_cast<float>(get_u32(p + 24));
  r.postcode = get_u32(p + 28);
  r.district = get_u32(p + 32);
  r.cause = get_u16(p + 36);
  r.manufacturer = get_u16(p + 38);
  r.success = p[40] != 0;
  r.source_rat = static_cast<topology::ObservedRat>(p[41]);
  r.target_rat = static_cast<topology::ObservedRat>(p[42]);
  r.device_type = static_cast<devices::DeviceType>(p[43]);
  r.area = static_cast<geo::AreaType>(p[44]);
  r.region = static_cast<geo::Region>(p[45]);
  r.vendor = static_cast<topology::Vendor>(p[46]);
  r.srvcc = p[47] != 0;
  r.attempt = p[48];
  return r;
}

}  // namespace tl::telemetry
