#include "telemetry/records.hpp"

#include <cmath>

namespace tl::telemetry {

const char* to_string(RecordDefect defect) noexcept {
  switch (defect) {
    case RecordDefect::kNone: return "none";
    case RecordDefect::kBadSectorId: return "bad sector id";
    case RecordDefect::kSelfHandover: return "self handover";
    case RecordDefect::kBadDuration: return "bad duration";
    case RecordDefect::kBadTimestamp: return "bad timestamp";
    case RecordDefect::kTimeRegression: return "time regression";
    case RecordDefect::kCauseMismatch: return "cause mismatch";
  }
  return "?";
}

RecordDefect inspect(const HandoverRecord& record, const ValidationLimits& limits,
                     int completed_day) noexcept {
  if (record.source_sector == topology::kInvalidSector ||
      record.target_sector == topology::kInvalidSector) {
    return RecordDefect::kBadSectorId;
  }
  if (limits.sector_count > 0 && (record.source_sector >= limits.sector_count ||
                                  record.target_sector >= limits.sector_count)) {
    return RecordDefect::kBadSectorId;
  }
  if (record.source_sector == record.target_sector) return RecordDefect::kSelfHandover;
  if (std::isnan(record.duration_ms) || record.duration_ms < 0.0f ||
      record.duration_ms > limits.max_duration_ms) {
    return RecordDefect::kBadDuration;
  }
  if (record.timestamp < 0) return RecordDefect::kBadTimestamp;
  if (record.day() <= completed_day) return RecordDefect::kTimeRegression;
  if (record.success && record.cause != corenet::kCauseNone) {
    return RecordDefect::kCauseMismatch;
  }
  if (!record.success && record.cause == corenet::kCauseNone) {
    return RecordDefect::kCauseMismatch;
  }
  return RecordDefect::kNone;
}

}  // namespace tl::telemetry
