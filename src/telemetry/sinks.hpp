#pragma once

// Streaming consumption of telemetry.
//
// The operator's pipeline cannot retain raw records at 1.7B HOs/day; ours
// streams each record through registered sinks and lets aggregators reduce
// online. Full retention (SignalingDataset) is itself just another sink.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "telemetry/records.hpp"

namespace tl::telemetry {

class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void consume(const HandoverRecord& record) = 0;
  /// Batch form: consume a contiguous run of records in order. The default
  /// forwards record-by-record, so every sink keeps working unchanged; hot
  /// sinks may override to amortize per-record dispatch. The parallel
  /// engine's ordered merge drains each shard buffer through one
  /// consume_span call per sink instead of records × sinks virtual calls —
  /// same records, same order, same bytes.
  virtual void consume_span(std::span<const HandoverRecord> records) {
    for (const auto& record : records) consume(record);
  }
  /// Called once per simulated day after all of the day's records.
  virtual void on_day_end(int day) { (void)day; }
};

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void consume(const UeDayMetrics& metrics) = 0;
  /// Batch form, mirroring RecordSink::consume_span.
  virtual void consume_span(std::span<const UeDayMetrics> rows) {
    for (const auto& row : rows) consume(row);
  }
};

/// Degradation-tolerant decorator: validates every record against
/// ValidationLimits and a day watermark, forwards clean ones to the wrapped
/// sink and quarantines malformed ones with per-defect counters — the
/// pipeline degrades (loses the bad records, keeps counting them) instead
/// of aborting or corrupting downstream aggregates. A bounded sample of
/// quarantined records is retained for post-mortem inspection.
class ValidatingSink final : public RecordSink {
 public:
  explicit ValidatingSink(RecordSink& inner, ValidationLimits limits = {},
                          std::size_t quarantine_capacity = 64);

  void consume(const HandoverRecord& record) override;
  void on_day_end(int day) override;

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t quarantined() const noexcept { return quarantined_; }
  std::uint64_t count(RecordDefect defect) const noexcept {
    return counts_[static_cast<std::size_t>(defect)];
  }
  /// Retained sample of quarantined records (first `quarantine_capacity`).
  std::span<const HandoverRecord> quarantine_sample() const noexcept {
    return quarantine_;
  }
  /// Last day closed via on_day_end (-1 before the first).
  int completed_day() const noexcept { return completed_day_; }
  /// Resume support: fast-forwards the day watermark (e.g. to a recovered
  /// checkpoint's last completed day) so a resumed stream keeps rejecting
  /// records that regress into days closed before the crash. Never moves
  /// the watermark backwards.
  void restore_watermark(int completed_day) noexcept {
    if (completed_day > completed_day_) completed_day_ = completed_day;
  }

 private:
  RecordSink& inner_;
  ValidationLimits limits_;
  std::size_t quarantine_capacity_;
  int completed_day_ = -1;
  std::uint64_t forwarded_ = 0;
  std::uint64_t quarantined_ = 0;
  std::array<std::uint64_t, kRecordDefectKinds> counts_{};
  std::vector<HandoverRecord> quarantine_;
};

}  // namespace tl::telemetry
