#pragma once

// Streaming consumption of telemetry.
//
// The operator's pipeline cannot retain raw records at 1.7B HOs/day; ours
// streams each record through registered sinks and lets aggregators reduce
// online. Full retention (SignalingDataset) is itself just another sink.

#include "telemetry/records.hpp"

namespace tl::telemetry {

class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void consume(const HandoverRecord& record) = 0;
  /// Called once per simulated day after all of the day's records.
  virtual void on_day_end(int day) { (void)day; }
};

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void consume(const UeDayMetrics& metrics) = 0;
};

}  // namespace tl::telemetry
