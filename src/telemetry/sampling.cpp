#include "telemetry/sampling.hpp"

#include <stdexcept>

namespace tl::telemetry {

SamplingSink::SamplingSink(RecordSink& inner, SamplingPolicy policy, double rate,
                           std::uint64_t seed)
    : inner_(inner), policy_(policy), rate_(rate), seed_(seed), rng_(seed) {
  if (rate <= 0.0 || rate > 1.0) {
    throw std::invalid_argument{"SamplingSink: rate must be in (0, 1]"};
  }
}

bool SamplingSink::keeps(const HandoverRecord& record) noexcept {
  switch (policy_) {
    case SamplingPolicy::kUniform:
      return rng_.uniform() < rate_;
    case SamplingPolicy::kPerUe: {
      // Stable per-UE coin: the same subscriber is either fully in or fully
      // out of the panel.
      const double u = static_cast<double>(util::anonymize(record.anon_user_id, seed_)) /
                       static_cast<double>(~0ULL);
      return u < rate_;
    }
    case SamplingPolicy::kStratifiedByTarget:
      if (record.target_rat != topology::ObservedRat::kG45Nsa) return true;
      return rng_.uniform() < rate_;
  }
  return true;
}

void SamplingSink::consume(const HandoverRecord& record) {
  ++seen_;
  if (!keeps(record)) return;
  ++kept_;
  inner_.consume(record);
}

double SamplingSink::weight_of(const HandoverRecord& record) const noexcept {
  switch (policy_) {
    case SamplingPolicy::kUniform:
    case SamplingPolicy::kPerUe:
      return 1.0 / rate_;
    case SamplingPolicy::kStratifiedByTarget:
      return record.target_rat != topology::ObservedRat::kG45Nsa ? 1.0 : 1.0 / rate_;
  }
  return 1.0;
}

}  // namespace tl::telemetry
