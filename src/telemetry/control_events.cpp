#include "telemetry/control_events.hpp"

#include <stdexcept>

namespace tl::telemetry {

void ControlEventCounter::consume(const ControlPlaneEvent& event) {
  const auto type = static_cast<std::size_t>(event.type);
  const int hour = util::SimCalendar::hour_of_day(event.timestamp);
  ++totals_[type];
  ++by_hour_[type][static_cast<std::size_t>(hour)];
}

std::uint64_t ControlEventCounter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto v : totals_) sum += v;
  return sum;
}

std::uint64_t ControlEventCounter::count_at(ControlEventType type, int hour) const {
  if (hour < 0 || hour >= 24) throw std::out_of_range{"ControlEventCounter::count_at"};
  return by_hour_[static_cast<std::size_t>(type)][static_cast<std::size_t>(hour)];
}

}  // namespace tl::telemetry
