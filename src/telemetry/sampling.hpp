#pragma once

// Record-stream sampling (§8: "large-scale analyses ... underscore the need
// for further research into efficient data sampling techniques").
//
// Three estimator-friendly policies over the record firehose:
//   - uniform:        keep each record with probability `rate`
//   - per-UE:         keep *all* records of a `rate`-fraction of UEs (via a
//                     keyed hash of the anonymized id) — preserves per-user
//                     sequences, e.g. for ping-pong or mobility analysis
//   - stratified:     keep all rare vertical HOs, sample the intra mass —
//                     preserves tail statistics at a fraction of the volume
//
// Kept records flow to the wrapped sink; `weight_of` returns the inverse
// inclusion probability so downstream estimators stay unbiased
// (Horvitz-Thompson).

#include <cstdint>

#include "telemetry/sinks.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace tl::telemetry {

enum class SamplingPolicy : std::uint8_t {
  kUniform = 0,
  kPerUe,
  kStratifiedByTarget,
};

class SamplingSink : public RecordSink {
 public:
  /// `rate` in (0, 1]: target inclusion probability (for stratified, the
  /// rate applied to intra 4G/5G-NSA records; vertical records always pass).
  SamplingSink(RecordSink& inner, SamplingPolicy policy, double rate,
               std::uint64_t seed = 0x5a3d);

  void consume(const HandoverRecord& record) override;
  void on_day_end(int day) override { inner_.on_day_end(day); }

  std::uint64_t seen() const noexcept { return seen_; }
  std::uint64_t kept() const noexcept { return kept_; }
  double realized_rate() const noexcept {
    return seen_ ? static_cast<double>(kept_) / static_cast<double>(seen_) : 0.0;
  }

  /// Horvitz-Thompson weight of a kept record under this policy.
  double weight_of(const HandoverRecord& record) const noexcept;

 private:
  bool keeps(const HandoverRecord& record) noexcept;

  RecordSink& inner_;
  SamplingPolicy policy_;
  double rate_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::uint64_t seen_ = 0;
  std::uint64_t kept_ = 0;
};

}  // namespace tl::telemetry
